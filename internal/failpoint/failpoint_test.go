package failpoint

import "testing"

func TestHitDisarmedIsNoop(t *testing.T) {
	// Nothing armed: must not panic, must stay free.
	Hit(FlushPlanned)
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after no-op hit, want 0", got)
	}
}

func TestArmFiresOnceAndDisarms(t *testing.T) {
	fired := 0
	Arm(LockHeld, 0, func() { fired++ })
	Hit(LockHeld)
	Hit(LockHeld)
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1 (one-shot)", fired)
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after firing, want 0", got)
	}
}

func TestSkipCount(t *testing.T) {
	fired := 0
	Arm(GatePark, 2, func() { fired++ })
	Hit(GatePark)
	Hit(GatePark)
	if fired != 0 {
		t.Fatalf("hook fired during skip window")
	}
	Hit(GatePark)
	if fired != 1 {
		t.Fatalf("hook fired %d times after skip window, want 1", fired)
	}
}

func TestDisarm(t *testing.T) {
	fired := 0
	Arm(FlushSent, 0, func() { fired++ })
	Disarm(FlushSent)
	Hit(FlushSent)
	if fired != 0 {
		t.Fatalf("hook fired after Disarm")
	}
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after Disarm, want 0", got)
	}
}

func TestArmReplacesWithoutLeakingCount(t *testing.T) {
	Arm(LockGranted, 0, func() {})
	Arm(LockGranted, 0, func() {})
	if got := armed.Load(); got != 1 {
		t.Fatalf("armed = %d after re-arming same point, want 1", got)
	}
	DisarmAll()
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed = %d after DisarmAll, want 0", got)
	}
}

func TestArmCrashSpecParsing(t *testing.T) {
	// Arm with a harmless hook by parsing the spec ourselves through
	// ArmCrash would install crashSelf; instead verify the error cases
	// and that a good spec arms something.
	for _, bad := range []string{"", ":1", "flush.sent:x", "flush.sent:-1"} {
		if err := ArmCrash(bad); err == nil {
			DisarmAll()
			t.Fatalf("ArmCrash(%q) = nil error, want error", bad)
		}
	}
	if err := ArmCrash("flush.sent:3"); err != nil {
		t.Fatalf("ArmCrash: %v", err)
	}
	if got := armed.Load(); got != 1 {
		t.Fatalf("armed = %d after ArmCrash, want 1", got)
	}
	DisarmAll()
}
