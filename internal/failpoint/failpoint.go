// Package failpoint provides named, injectable crash points threaded
// through the protocol's hot paths (flush, lock grant, run gate).
//
// A failpoint is a named place in the code where a test can arrange
// for something to happen — typically killing the process outright to
// simulate a crash at exactly that protocol step. Production code
// calls Hit(name) at each step; when nothing is armed this is a single
// atomic load, so the hooks are free in steady state.
//
// Crash specs take the form "name" or "name:skip", where skip is the
// number of hits to let pass before firing (so a test can crash on the
// second flush, or at the exit run gate rather than the entry one).
// Child processes arm themselves from the MUNIN_FAILPOINT environment
// variable at startup, which is how the bench harness reaches into a
// re-exec'd member.
package failpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Named protocol steps. Each constant marks one place in the protocol
// where a member can die mid-operation and the cluster must recover.
const (
	// FlushPlanned fires after a flush has been planned (diffs taken,
	// batches grouped) but before anything is sent: the delayed update
	// queue has been drained, yet no home has seen a byte.
	FlushPlanned = "flush.planned"
	// FlushSent fires after the flush batches have been written and
	// fenced but before the settle acknowledgements are awaited: homes
	// may hold partial state from a writer that then dies.
	FlushSent = "flush.sent"
	// LockGranted fires on the requester after a distributed lock
	// grant reply arrives but before the requester records ownership.
	LockGranted = "lock.granted"
	// LockHeld fires on the requester immediately after it takes the
	// lock, i.e. the member dies inside the critical section.
	LockHeld = "lock.held"
	// GatePark fires just before a member parks in the run gate
	// (sends its arrival to node 0 and blocks on the verdict).
	GatePark = "gate.park"
)

// names is the registry of every declared failpoint. A Hit or ArmCrash
// site must reference one of these (the muninvet failpointref analyzer
// enforces it statically), and the E17 crash-point sweep must cover all
// of them (bench asserts it against Names).
var names = []string{FlushPlanned, FlushSent, LockGranted, LockHeld, GatePark}

// Names returns every registered failpoint name, in declaration order.
// The returned slice is a copy.
func Names() []string { return append([]string(nil), names...) }

// IsRegistered reports whether name is a declared failpoint.
func IsRegistered(name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

var (
	// armed counts the currently armed points; Hit is a single atomic
	// load when it is zero.
	armed atomic.Int32

	mu     sync.Mutex
	points map[string]*point
)

type point struct {
	skip int32 // hits to let pass before firing
	fn   func()
}

// Hit marks that execution reached the named step. If a hook is armed
// for it and its skip count is exhausted, the hook fires (once) and
// the point disarms. Hit is safe for concurrent use and costs one
// atomic load when nothing is armed.
func Hit(name string) {
	if armed.Load() == 0 {
		return
	}
	var fn func()
	mu.Lock()
	if p, ok := points[name]; ok {
		if p.skip > 0 {
			p.skip--
		} else {
			fn = p.fn
			delete(points, name)
			armed.Add(-1)
		}
	}
	mu.Unlock()
	if fn != nil {
		fn()
	}
}

// Arm installs fn at the named point, replacing any previous hook
// there. The first skip hits pass through untouched; the next hit
// fires fn and disarms the point.
func Arm(name string, skip int, fn func()) {
	mu.Lock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{skip: int32(skip), fn: fn}
	mu.Unlock()
}

// Disarm removes any hook at the named point.
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// DisarmAll removes every armed hook.
func DisarmAll() {
	mu.Lock()
	for name := range points {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// crashSelf kills the current process with SIGKILL semantics: no
// deferred cleanup, no goodbye message, indistinguishable from an
// external kill -9.
func crashSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		os.Exit(137)
	}
	_ = p.Kill()
	// Kill is asynchronous on some platforms; never return from a
	// crash point.
	select {}
}

// ArmCrash parses a "name" or "name:skip" spec and arms a
// self-SIGKILL at that point.
func ArmCrash(spec string) error {
	name, skip := spec, 0
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = spec[:i]
		n, err := strconv.Atoi(spec[i+1:])
		if err != nil || n < 0 {
			return fmt.Errorf("failpoint: bad skip in spec %q", spec)
		}
		skip = n
	}
	if name == "" {
		return fmt.Errorf("failpoint: empty name in spec %q", spec)
	}
	Arm(name, skip, crashSelf)
	return nil
}

// EnvVar is the environment variable child processes read at startup
// to arm a crash point injected by a parent test harness.
const EnvVar = "MUNIN_FAILPOINT"

// ArmCrashFromEnv arms a crash point from the MUNIN_FAILPOINT
// environment variable, if set. It returns the spec armed (empty if
// none).
func ArmCrashFromEnv() (string, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return "", nil
	}
	if err := ArmCrash(spec); err != nil {
		return "", err
	}
	return spec, nil
}
