// Package stats provides low-overhead counters, histograms and table
// rendering used throughout the Munin runtime and its benchmark harness.
//
// All counters are safe for concurrent use; the hot-path cost of an
// increment is a single atomic add. Snapshots are consistent enough for
// reporting (individual counters are read atomically; cross-counter skew
// is acceptable for traffic accounting).
package stats

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (or explicitly reset) 64-bit
// counter safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.v.Store(0) }

// Set is a named collection of counters. The zero value is ready to use.
type Set struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// Counter returns (creating if necessary) the counter with the given name.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Add is shorthand for s.Counter(name).Add(delta).
func (s *Set) Add(name string, delta int64) { s.Counter(name).Add(delta) }

// Get returns the value of the named counter (zero if it does not exist).
func (s *Set) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.counters[name]; ok {
		return c.Load()
	}
	return 0
}

// Snapshot returns a copy of all counter values, keyed by name.
func (s *Set) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, c := range s.counters {
		out[k] = c.Load()
	}
	return out
}

// Reset zeroes every counter in the set.
func (s *Set) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		c.Reset()
	}
}

// Names returns the sorted counter names present in the set.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Histogram is a fixed-bucket histogram of int64 samples, safe for
// concurrent use. Buckets are defined by their upper bounds; samples
// greater than the last bound land in an overflow bucket.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
	min    atomic.Int64
	max    atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. It panics if bounds is empty or not strictly ascending.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	h.max.Store(-1 << 63)               // MinInt64
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean of the samples, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest observed sample, or 0 with no samples.
func (h *Histogram) Min() int64 {
	if h.n.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observed sample, or 0 with no samples.
func (h *Histogram) Max() int64 {
	if h.n.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using
// bucket upper bounds as representative values.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(n))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}

// Buckets returns (bound, count) pairs plus the overflow bucket reported
// with bound = -1.
func (h *Histogram) Buckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		b := Bucket{Count: h.counts[i].Load()}
		if i < len(h.bounds) {
			b.UpperBound = h.bounds[i]
		} else {
			b.UpperBound = -1
		}
		out = append(out, b)
	}
	return out
}

// Bucket is one histogram bucket.
type Bucket struct {
	UpperBound int64 // -1 for the overflow bucket
	Count      int64
}

func (b Bucket) String() string {
	if b.UpperBound < 0 {
		return fmt.Sprintf("(+Inf: %d)", b.Count)
	}
	return fmt.Sprintf("(<=%d: %d)", b.UpperBound, b.Count)
}
