// Counter name registry. Every counter the runtime increments is
// declared here, once, as a typed constant; call sites reference the
// constant instead of retyping the string. The muninvet counterreg
// analyzer flags any Add/Inc/Get/Counter call whose name literal is
// not registered, and internal/analysis/regsync cross-checks this
// registry against the docs/ARCHITECTURE.md counters table, so a
// counter added in code without a registry entry and a docs row fails
// the build rather than silently drifting.
package stats

import "strings"

// Counter names, grouped by the layer that owns them. The layer
// strings match the Layer column of the ARCHITECTURE.md counters
// table.
const (
	// protocol: application-level accesses and coherence traffic.
	CReads                 = "reads"
	CWrites                = "writes"
	CFaultRead             = "fault.read"
	CFaultWrite            = "fault.write"
	CFetchRetry            = "fetch.retry"
	CFetchServed           = "fetch.served"
	CTwin                  = "twin"
	CWriteBuffered         = "write.buffered"
	CDiffSent              = "diff.sent"
	CDiffBytes             = "diff.bytes"
	CBatchSent             = "batch.sent"
	CBatchObjs             = "batch.objs"
	CBatchBytes            = "batch.bytes"
	CFlushPipelined        = "flush.pipelined"
	CEagerPush             = "eager.push"
	CConsumerStall         = "consumer.stall"
	CApplyReceived         = "apply.received"
	CApplyGap              = "apply.gap"
	CInvReceived           = "inv.received"
	CEvict                 = "evict"
	CRemoteLoad            = "remote.load"
	CRemoteStore           = "remote.store"
	CRMRemoteReads         = "rm.remote_reads"
	CLeaseLocalReads       = "lease.local_reads"
	CLeaseExpiredReads     = "lease.expired_reads"
	CLeaseGranted          = "lease.granted"
	CLeaseRenewed          = "lease.renewed"
	CLeaseBumps            = "lease.bumps"
	CModeSwitch            = "mode.switch"
	CRaceDetected          = "race.detected"
	CHomeRead              = "home.read"
	CHomeWriteOwn          = "home.writeown"
	CHomeInv               = "home.inv"
	CHomeDiff              = "home.diff"
	CHomeFetch             = "home.fetch"
	CHomeRelay             = "home.relay"
	CHomeRemRead           = "home.remread"
	CHomeRemWrite          = "home.remwrite"
	CMemberGone            = "member.gone"
	CMemberPrunedCopies    = "member.pruned_copies"
	CMemberPrunedConsumers = "member.pruned_consumers"
	CMemberReclaimedOwner  = "member.reclaimed_owner"
	CRelayGone             = "relay.gone"
	CMemberRecovered       = "member.recovered"
	CRecoverAnnounced      = "recover.announced"
	CRecoverObjects        = "recover.objects"
	CRecoverRejected       = "recover.rejected"
	CRecoverDone           = "recover.done"
	CDropMalformed         = "drop.malformed"

	// core (counted on the protocol node): run-gate lifecycle.
	CRecoverGateSynced = "recover.gate_synced"
	CRecoverGateResync = "recover.gate_resync"
	CMemberDownWait    = "member.down_wait"
	CMemberReconnected = "member.reconnected"
	CGateStalePurged   = "gate.stale_purged"
	CGateDropMalformed = "gate.drop_malformed"

	// dlock (counted on the kernel set): departure/recovery handling.
	CDlockGoneDequeued    = "dlock.gone_dequeued"
	CDlockGoneOwner       = "dlock.gone_owner"
	CDlockRecoverDequeued = "dlock.recover_dequeued"
	CDlockRecoverOwner    = "dlock.recover_owner"
	CDlockDropMalformed   = "dlock.drop_malformed"

	// vkernel: pending-call failure accounting.
	CCallFailedPeer = "call.failed_peer"
	CCallFailedGone = "call.failed_gone"

	// transport: wire-level accounting.
	CWireWrites       = "wire.writes"
	CWireFrames       = "wire.frames"
	CWireCoalesced    = "wire.coalesced"
	CWireDials        = "wire.dials"
	CWirePeerDown     = "wire.peer_down"
	CWirePeerGone     = "wire.peer_gone"
	CWireReconnects   = "wire.reconnects"
	CWireMisrouted    = "wire.misrouted"
	CWireQueueStall   = "wire.queue_stall"
	CWireQueueStallNs = "wire.queue_stall.ns"
)

// registered maps every exact counter name to the layer that owns it.
var registered = map[string]string{
	CReads:                 "protocol",
	CWrites:                "protocol",
	CFaultRead:             "protocol",
	CFaultWrite:            "protocol",
	CFetchRetry:            "protocol",
	CFetchServed:           "protocol",
	CTwin:                  "protocol",
	CWriteBuffered:         "protocol",
	CDiffSent:              "protocol",
	CDiffBytes:             "protocol",
	CBatchSent:             "protocol",
	CBatchObjs:             "protocol",
	CBatchBytes:            "protocol",
	CFlushPipelined:        "protocol",
	CEagerPush:             "protocol",
	CConsumerStall:         "protocol",
	CApplyReceived:         "protocol",
	CApplyGap:              "protocol",
	CInvReceived:           "protocol",
	CEvict:                 "protocol",
	CRemoteLoad:            "protocol",
	CRemoteStore:           "protocol",
	CRMRemoteReads:         "protocol",
	CLeaseLocalReads:       "protocol",
	CLeaseExpiredReads:     "protocol",
	CLeaseGranted:          "protocol",
	CLeaseRenewed:          "protocol",
	CLeaseBumps:            "protocol",
	CModeSwitch:            "protocol",
	CRaceDetected:          "protocol",
	CHomeRead:              "protocol",
	CHomeWriteOwn:          "protocol",
	CHomeInv:               "protocol",
	CHomeDiff:              "protocol",
	CHomeFetch:             "protocol",
	CHomeRelay:             "protocol",
	CHomeRemRead:           "protocol",
	CHomeRemWrite:          "protocol",
	CMemberGone:            "protocol",
	CMemberPrunedCopies:    "protocol",
	CMemberPrunedConsumers: "protocol",
	CMemberReclaimedOwner:  "protocol",
	CRelayGone:             "protocol",
	CMemberRecovered:       "protocol",
	CRecoverAnnounced:      "protocol",
	CRecoverObjects:        "protocol",
	CRecoverRejected:       "protocol",
	CRecoverDone:           "protocol",
	CDropMalformed:         "protocol",

	CRecoverGateSynced: "core",
	CRecoverGateResync: "core",
	CMemberDownWait:    "core",
	CMemberReconnected: "core",
	CGateStalePurged:   "core",
	CGateDropMalformed: "core",

	CDlockGoneDequeued:    "dlock",
	CDlockGoneOwner:       "dlock",
	CDlockRecoverDequeued: "dlock",
	CDlockRecoverOwner:    "dlock",
	CDlockDropMalformed:   "dlock",

	CCallFailedPeer: "vkernel",
	CCallFailedGone: "vkernel",

	CWireWrites:       "transport",
	CWireFrames:       "transport",
	CWireCoalesced:    "transport",
	CWireDials:        "transport",
	CWirePeerDown:     "transport",
	CWirePeerGone:     "transport",
	CWireReconnects:   "transport",
	CWireMisrouted:    "transport",
	CWireQueueStall:   "transport",
	CWireQueueStallNs: "transport",
}

// TrafficClasses are the transport's per-class accounting families:
// each class name is itself a message counter, "<class>.bytes" its
// byte counter, and "wire.coalesced.<class>" its frame-sharing
// counter (see transport.ClassOf).
var TrafficClasses = []string{"control", "lock", "coherence", "ivy", "sync", "app"}

// transportAggregates are the transport's whole-link counters kept as
// struct fields rather than Set entries, listed so the docs
// cross-check covers them.
var transportAggregates = []string{"msgs", "bytes"}

// Registered returns every exact registered counter name (parametrized
// per-class families excluded), in map order.
func Registered() []string {
	out := make([]string, 0, len(registered))
	for name := range registered {
		out = append(out, name)
	}
	return out
}

// LayerOf returns the owning layer of an exact registered name ("" if
// unregistered).
func LayerOf(name string) string { return registered[name] }

// IsRegistered reports whether name is a declared counter: an exact
// registry entry, a transport traffic-class counter ("app",
// "app.bytes", ...), a whole-link aggregate, or a per-class coalescing
// counter ("wire.coalesced.<class>").
func IsRegistered(name string) bool {
	if _, ok := registered[name]; ok {
		return true
	}
	for _, c := range TrafficClasses {
		if name == c || name == c+".bytes" || name == CWireCoalesced+"."+c {
			return true
		}
	}
	for _, a := range transportAggregates {
		if name == a {
			return true
		}
	}
	return false
}

// LooksLikeCounterName reports whether a string literal is shaped like
// a counter name (lowercase dotted identifier). The counterreg
// analyzer uses it to ignore obviously-unrelated string arguments.
func LooksLikeCounterName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		ok := r == '.' || r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return !strings.HasPrefix(s, ".") && !strings.HasSuffix(s, ".")
}
