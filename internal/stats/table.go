package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned ASCII tables for the benchmark harness and the
// sharing-study reports, in the spirit of the rows a paper table prints.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for i, h := range t.headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		sep := make([]string, ncol)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}
