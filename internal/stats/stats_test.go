package stats

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatalf("after reset = %d, want 0", c.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestSetCreatesAndAccumulates(t *testing.T) {
	var s Set
	s.Add("msgs", 3)
	s.Add("msgs", 4)
	s.Add("bytes", 100)
	if got := s.Get("msgs"); got != 7 {
		t.Fatalf("msgs = %d, want 7", got)
	}
	if got := s.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	snap := s.Snapshot()
	if snap["bytes"] != 100 || snap["msgs"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "bytes" || names[1] != "msgs" {
		t.Fatalf("names = %v", names)
	}
	s.Reset()
	if s.Get("msgs") != 0 || s.Get("bytes") != 0 {
		t.Fatalf("reset failed: %v", s.Snapshot())
	}
}

func TestSetConcurrentSameName(t *testing.T) {
	var s Set
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Add("x", 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Get("x"); got != 4000 {
		t.Fatalf("x = %d, want 4000", got)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []int64{1, 5, 10, 11, 100, 999, 5000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Min() != 1 || h.Max() != 5000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	b := h.Buckets()
	wantCounts := []int64{3, 2, 1, 1}
	if len(b) != 4 {
		t.Fatalf("buckets = %v", b)
	}
	for i, w := range wantCounts {
		if b[i].Count != w {
			t.Fatalf("bucket %d (%s) count = %d, want %d", i, b[i], b[i].Count, w)
		}
	}
	if got := h.Sum(); got != 1+5+10+11+100+999+5000 {
		t.Fatalf("sum = %d", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1)
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16, 32)
	for i := int64(1); i <= 32; i++ {
		h.Observe(i)
	}
	// Median of 1..32 should land at a mid-to-upper bucket bound; the
	// estimator returns bucket upper bounds, so allow [8,32].
	q := h.Quantile(0.5)
	if q < 8 || q > 32 {
		t.Fatalf("median estimate = %d, want within [8,32]", q)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatalf("quantiles not monotone")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{{}, {5, 5}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramMeanProperty(t *testing.T) {
	// Property: Mean()*Count() == Sum() (within float error) and
	// Min() <= Mean() <= Max() for any non-empty sample set.
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(16, 256, 4096, 65536)
		for _, v := range vals {
			h.Observe(int64(v))
		}
		mean := h.Mean()
		if mean < float64(h.Min()) || mean > float64(h.Max()) {
			return false
		}
		diff := mean*float64(h.Count()) - float64(h.Sum())
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(10, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < 100; j++ {
				h.Observe(base + j)
			}
		}(int64(i))
	}
	wg.Wait()
	if h.Count() != 800 {
		t.Fatalf("count = %d, want 800", h.Count())
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Traffic", "app", "msgs", "bytes")
	tab.AddRow("matmul", 10, 2048)
	tab.AddRow("life", 7, 99)
	out := tab.String()
	if !strings.Contains(out, "Traffic") || !strings.Contains(out, "matmul") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tab.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("", "x")
	tab.AddRow(3.14159)
	if !strings.Contains(tab.String(), "3.14") {
		t.Fatalf("float not formatted: %q", tab.String())
	}
}

func ExampleTable() {
	tab := NewTable("demo", "k", "v")
	tab.AddRow("a", 1)
	fmt.Print(tab.String())
	// Output:
	// demo
	// k  v
	// -  -
	// a  1
}
