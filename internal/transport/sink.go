package transport

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
)

// RawSink is a mesh-shaped byte bucket: a listener that completes the
// hello handshake like a real peer, then reads and discards every
// frame into a fixed buffer without parsing, queuing, or allocating.
//
// It exists so allocation benchmarks (bench E15, the transport
// zero-alloc tests) can measure the SENDER's wire path in isolation:
// testing.AllocsPerRun counts mallocs across all goroutines in the
// process, so a real receiving endpoint — whose reader must copy each
// frame off the wire — would drown the measurement. The sink's
// steady-state read loop touches only preallocated buffers.
//
// Goodbyes are acknowledged (so a graceful Close of the sending mesh
// still drains), but the sink never initiates traffic.
type RawSink struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewRawSink binds a loopback listener and starts accepting.
func NewRawSink() (*RawSink, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &RawSink{ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address, for use in a Topology.
func (s *RawSink) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and severs every connection.
func (s *RawSink) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *RawSink) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serve(conn)
	}
}

// serve runs one connection: validate the hello, accept it echoing the
// dialer's proposed epoch, then discard frames forever. All buffers
// are allocated up front — the loop body is malloc-free.
func (s *RawSink) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return
	}
	if string(hello[:4]) != meshMagic ||
		binary.BigEndian.Uint16(hello[4:6]) != meshProtoVersion {
		return
	}
	var ack [helloAcceptLen]byte
	ack[0] = helloAccept
	copy(ack[1:], hello[10:18]) // agree to whatever epoch the dialer proposed
	if _, err := conn.Write(ack[:]); err != nil {
		return
	}

	var word [4]byte
	buf := make([]byte, 64<<10)
	for {
		if _, err := io.ReadFull(conn, word[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(word[:])
		if n > maxFrameLen {
			// Control word. Ack goodbyes so a graceful sender Close
			// gets its drain proof; ignore everything else.
			if n == ctrlGoodbye {
				binary.BigEndian.PutUint32(word[:], ctrlGoodbyeAck)
				if _, err := conn.Write(word[:]); err != nil {
					return
				}
			}
			continue
		}
		left := int(n)
		for left > 0 {
			chunk := left
			if chunk > len(buf) {
				chunk = len(buf)
			}
			rn, err := conn.Read(buf[:chunk])
			if err != nil {
				return
			}
			left -= rn
		}
	}
}
