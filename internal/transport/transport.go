// Package transport provides the message-passing substrate the simulated
// cluster runs on. It replaces the paper's Ethernet-of-SUN-workstations:
// nodes share nothing and exchange only serialized messages, so every
// byte of coherence traffic crosses an explicit, counted boundary.
//
// Three implementations are provided:
//
//   - ChanNetwork: in-process, one goroutine-safe queue per node. This is
//     the default substrate for experiments; it is deterministic-enough,
//     fast, and charges every message against a configurable cost model
//     (per-message latency + per-byte bandwidth) accumulated as modeled
//     network time rather than slept, so benchmarks stay fast.
//   - TCPNetwork: real sockets over loopback (package net), all nodes in
//     one process — used to demonstrate that the runtime's messaging
//     layer works over an actual network stack and to measure it at
//     syscall granularity.
//   - MeshNetwork: one node per OS process, connected by a Topology
//     (node ID → host:port). Lazy per-peer dialing with a versioned,
//     epoch-carrying hello handshake, one bidirectional connection per
//     pair (duplicate dials tie-broken deterministically by lower
//     dialer ID; stale-epoch dials rejected), and real failure
//     semantics with a two-sided vocabulary: a dead peer latches
//     ErrPeerDown into sends, fences, and — via PeerDownNotifier —
//     vkernel's pending-call table, while a peer that leaves cleanly
//     (goodbye handshake; Close/Leave) is marked departed
//     (ErrPeerGone, PeerGoneNotifier) with every in-flight frame
//     delivered first. An opt-in ReconnectPolicy revives latched pairs
//     on a fresh epoch.
//
// # The writer pipeline
//
// Sending is asynchronous and coalescing. On TCPNetwork every node pair
// has a dedicated connection owned by a writer goroutine fed from a
// bounded send queue: Send marshals the message and queues it without
// waiting; the writer drains whatever has accumulated for
// that peer and emits it as one multi-message frame (see msg.EncodeFrame)
// through a single vectored write (net.Buffers). A batched protocol
// flush therefore costs O(1) write syscalls per destination no matter
// how many messages it carries — the same software-overhead
// amortization Munin's delayed-update queue performs at the protocol
// level, applied to the wire.
//
// Flush is the fence: it returns once everything the endpoint enqueued
// before the call has been written to the sockets. It deliberately does
// NOT imply remote processing; protocols that need the paper's
// ack-awaited flush semantics enqueue, fence, and then wait for replies
// (vkernel.Pending), which keeps the visibility guarantee while letting
// all destinations' traffic leave in coalesced frames. ChanNetwork
// implements the same interface trivially — its queue push already
// delivers whole batches instantly, so Flush is a no-op.
//
// Closing a TCPNetwork quiesces the pipeline deterministically: send
// queues close first (blocked senders get ErrClosed), writers drain
// what was already queued onto the wire and exit — nothing ever writes
// on a closed connection — and readers consume every drained frame
// before receive queues report ErrClosed.
//
// Choosing a substrate: ChanNetwork for experiments, unit tests, and
// anything that wants modeled network costs without real latency;
// TCPNetwork when the measurement is about the wire itself (write
// syscalls, framing, coalescing — bench E11) or to validate against a
// real byte stream; MeshNetwork when nodes must be separately
// addressable processes or hosts (bench E12, `munin-bench -peers`).
//
// Both count messages and bytes per node and per traffic class, plus
// wire-level counters (wire.writes, wire.frames, wire.coalesced) that
// make the coalescing observable; the benchmark harness reads these
// counters to regenerate the paper's traffic comparisons.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"munin/internal/bufpool"
	"munin/internal/msg"
	"munin/internal/stats"
)

// ErrClosed is returned by operations on a closed endpoint or network.
var ErrClosed = errors.New("transport: closed")

// ErrPeerDown reports that a peer's wire has failed: a dial could not
// be completed, a write error was latched on the peer's send queue, or
// an established connection died. Once latched, every later Send,
// Flush fence, and (through vkernel's pending-call table) every
// outstanding call aimed at that peer fails with this error instead of
// hanging until Close. Detect it with errors.As; Unwrap exposes the
// underlying network error.
type ErrPeerDown struct {
	// Node is the peer whose wire failed.
	Node msg.NodeID
	// Cause is the underlying dial/write/read error.
	Cause error
}

func (e *ErrPeerDown) Error() string {
	return fmt.Sprintf("transport: peer %d down: %v", e.Node, e.Cause)
}

func (e *ErrPeerDown) Unwrap() error { return e.Cause }

// ErrPeerGone reports that a peer left the computation deliberately: it
// announced departure with a goodbye frame, drained everything it had
// already sent, and closed. Unlike *ErrPeerDown nothing was lost — every
// frame the peer put on the wire before the goodbye was delivered — but
// the peer will accept no new traffic, so later Sends and calls aimed
// at it fail with this error. Detect it with errors.As.
type ErrPeerGone struct {
	// Node is the peer that departed.
	Node msg.NodeID
}

func (e *ErrPeerGone) Error() string {
	return fmt.Sprintf("transport: peer %d departed", e.Node)
}

// PeerDownNotifier is implemented by transports that detect peer death
// (MeshNetwork). vkernel registers a callback at construction so a
// latched wire failure fails exactly the pending calls aimed at the
// dead peer.
type PeerDownNotifier interface {
	// OnPeerDown registers fn to be invoked (once per outage) when a
	// peer's wire is latched as failed. epoch identifies the connection
	// generation that died (see PeerEpochs) so subscribers can ignore a
	// stale notification that races a reconnect. fn runs on a transport
	// goroutine and must not block.
	OnPeerDown(fn func(peer msg.NodeID, epoch uint64, err error))
}

// PeerReconnectNotifier is implemented by transports that can revive
// a latched pair (MeshNetwork under a ReconnectPolicy). The callback
// fires once per successful rejoin — whichever side completes the
// epoch-bumped handshake — strictly before any frame from the new
// connection is delivered, so subscribers can rebuild protocol state
// for the returning peer ahead of its first message.
type PeerReconnectNotifier interface {
	// OnPeerReconnect registers fn to be invoked when a previously
	// latched peer's wire is re-established. epoch is the fresh
	// connection generation (always greater than the one that died).
	// fn runs on a transport goroutine and must not block.
	OnPeerReconnect(fn func(peer msg.NodeID, epoch uint64))
}

// PeerGoneNotifier is implemented by transports that distinguish a
// deliberate departure (goodbye frame) from wire death (MeshNetwork).
// The callback fires on the receiving endpoint's Recv path, strictly
// AFTER every frame the departed peer sent has been returned by Recv —
// that ordering is what lets vkernel fail only the calls whose replies
// truly never arrived, instead of racing an in-flight reply against
// the latch.
type PeerGoneNotifier interface {
	// OnPeerGone registers fn to be invoked (once per peer departure)
	// when a peer announces a clean goodbye. fn runs on the endpoint's
	// Recv goroutine and must not block.
	OnPeerGone(fn func(peer msg.NodeID, err error))
}

// Leaver is implemented by endpoints and networks that support a
// graceful departure from the computation (MeshNetwork): Leave
// announces a goodbye to every connected peer, drains everything
// already enqueued onto the wire, and waits (bounded) for the peers to
// confirm they consumed the drain. Peers mark the leaver departed
// (*ErrPeerGone for new sends) instead of latching it down, and no
// in-flight frame is lost.
type Leaver interface {
	// Leave announces departure and drains. Idempotent; Close implies
	// it on transports that implement both.
	Leave() error
}

// PeerEpochs is implemented by transports whose connections are
// versioned (MeshNetwork): every established connection generation for
// a pair carries an epoch number agreed in the handshake. Callers that
// record the epoch alongside a request can tell whether a later
// peer-down notification concerns their generation or a newer one.
type PeerEpochs interface {
	// PeerEpoch returns the current connection epoch for the pair
	// (self, peer); 0 means no connection has ever been established.
	PeerEpoch(peer msg.NodeID) uint64
}

// Endpoint is one node's attachment to the network.
//
// Sends are asynchronous: Send is a non-blocking enqueue onto the
// transport's outgoing path; on TCPNetwork a per-peer writer goroutine
// coalesces everything queued for a peer into one wire frame and emits
// it with a single vectored write. Flush is the completion fence: it
// returns once every message this endpoint enqueued before the call
// has been handed to the wire, which is what lets a protocol enqueue a
// whole batched flush and then fence once.
type Endpoint interface {
	// Node returns the node this endpoint belongs to.
	Node() msg.NodeID
	// Send enqueues m for transmission to m.To. It does not wait for
	// the message to reach the wire (use Flush to fence); it may block
	// briefly on a full bounded send queue, and fails only if the
	// network is closed, the destination does not exist, or the peer's
	// wire previously failed.
	Send(m *msg.Msg) error
	// Flush blocks until every message enqueued by this endpoint
	// before the call has been written to the underlying wire. It does
	// NOT wait for delivery or processing at the receiver — protocols
	// that need acknowledgement wait for replies on top of this fence.
	Flush() error
	// Recv blocks until a message arrives or the endpoint is closed.
	Recv() (*msg.Msg, error)
}

// EncodedSender is the zero-copy variant of Endpoint.Send, implemented
// by the wire transports (TCPNetwork, MeshNetwork). The caller builds
// the complete marshalled message — msg.HeaderSize reserved bytes
// stamped with msg.FillHeader, payload behind them — directly in a
// pooled buffer and hands the buffer over.
//
// Ownership transfers unconditionally: whether the enqueue succeeds or
// fails, the transport is responsible for releasing wb (after the
// writer's vectored write completes on the success path). The caller
// must not touch wb or any slice aliasing wb.B after the call. The
// transport stamps the sender field itself (msg.SetFrom), exactly as
// Send stamps m.From.
type EncodedSender interface {
	SendOwned(wb *bufpool.Buffer) error
}

// Network connects a fixed set of nodes, 0..Nodes()-1.
type Network interface {
	// Endpoint returns node n's endpoint. The same Endpoint is
	// returned on every call.
	Endpoint(n msg.NodeID) Endpoint
	// Nodes returns the number of nodes.
	Nodes() int
	// Multicast delivers m to every member. Implementations that
	// model hardware multicast (ChanNetwork) charge it as a single
	// wire message; others fall back to unicast.
	Multicast(m *msg.Msg, members []msg.NodeID) error
	// Stats returns the network's traffic accounting.
	Stats() *Stats
	// Close shuts the network down; blocked Recv calls return ErrClosed.
	Close() error
}

// CostModel charges each message with a modeled cost. The default models
// a 10 Mbit/s Ethernet with 1 ms small-message latency — the class of
// network the paper's prototype targeted.
type CostModel struct {
	// LatencyNs is the fixed per-message cost in nanoseconds.
	LatencyNs int64
	// NsPerByte is the per-byte cost in nanoseconds
	// (10 Mbit/s = 1.25 MB/s ≈ 800 ns/byte).
	NsPerByte int64
}

// DefaultCostModel approximates the 1990 prototype network: 1 ms latency,
// 10 Mbit/s bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{LatencyNs: 1_000_000, NsPerByte: 800}
}

// Cost returns the modeled transmission time for a message of size bytes.
func (c CostModel) Cost(size int) int64 {
	return c.LatencyNs + c.NsPerByte*int64(size)
}

// Stats accumulates traffic accounting for a network.
type Stats struct {
	msgs      atomic.Int64
	bytes     atomic.Int64
	modeledNs atomic.Int64
	perNode   []nodeStats
	byClass   stats.Set
}

type nodeStats struct {
	sent, recvd, sentBytes atomic.Int64
}

func newStats(n int) *Stats {
	return &Stats{perNode: make([]nodeStats, n)}
}

// Messages returns the total number of wire messages sent.
func (s *Stats) Messages() int64 { return s.msgs.Load() }

// Bytes returns the total number of wire bytes sent.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// ModeledNetworkNs returns the accumulated modeled network time in
// nanoseconds under the network's cost model.
func (s *Stats) ModeledNetworkNs() int64 { return s.modeledNs.Load() }

// NodeSent returns the number of messages node n has sent.
func (s *Stats) NodeSent(n msg.NodeID) int64 { return s.perNode[n].sent.Load() }

// NodeReceived returns the number of messages node n has received.
func (s *Stats) NodeReceived(n msg.NodeID) int64 { return s.perNode[n].recvd.Load() }

// NodeSentBytes returns the number of bytes node n has sent.
func (s *Stats) NodeSentBytes(n msg.NodeID) int64 { return s.perNode[n].sentBytes.Load() }

// ByClass returns a snapshot of per-class (kind-range) message counts.
func (s *Stats) ByClass() map[string]int64 { return s.byClass.Snapshot() }

// Reset zeroes all counters. Callers must ensure the network is quiescent.
func (s *Stats) Reset() {
	s.msgs.Store(0)
	s.bytes.Store(0)
	s.modeledNs.Store(0)
	for i := range s.perNode {
		s.perNode[i].sent.Store(0)
		s.perNode[i].recvd.Store(0)
		s.perNode[i].sentBytes.Store(0)
	}
	s.byClass.Reset()
}

// ClassOf maps a message kind to a human-readable traffic class used in
// per-class accounting.
func ClassOf(k msg.Kind) string {
	switch {
	case k >= msg.KindAppBase:
		return "app"
	case k >= msg.KindSyncBase:
		return "sync"
	case k >= msg.KindIvyBase:
		return "ivy"
	case k >= msg.KindCohBase:
		return "coherence"
	case k >= msg.KindLockBase:
		return "lock"
	default:
		return "control"
	}
}

// classBytesOf returns the precomputed "<class>.bytes" counter key for
// a kind. The obvious ClassOf(k)+".bytes" concatenation allocates on
// every charge — one of the per-message heap allocations the zero-copy
// flush path eliminates.
func classBytesOf(k msg.Kind) string {
	switch {
	case k >= msg.KindAppBase:
		return "app.bytes"
	case k >= msg.KindSyncBase:
		return "sync.bytes"
	case k >= msg.KindIvyBase:
		return "ivy.bytes"
	case k >= msg.KindCohBase:
		return "coherence.bytes"
	case k >= msg.KindLockBase:
		return "lock.bytes"
	default:
		return "control.bytes"
	}
}

// coalescedClassOf returns the precomputed "wire.coalesced.<class>"
// counter key for a class name produced by ClassOf (same reasoning as
// classBytesOf: the concatenation is a hot-path allocation).
func coalescedClassOf(class string) string {
	switch class {
	case "app":
		return "wire.coalesced.app"
	case "sync":
		return "wire.coalesced.sync"
	case "ivy":
		return "wire.coalesced.ivy"
	case "coherence":
		return "wire.coalesced.coherence"
	case "lock":
		return "wire.coalesced.lock"
	default:
		return "wire.coalesced.control"
	}
}

func (s *Stats) charge(m *msg.Msg, cost CostModel, from msg.NodeID) {
	s.chargeEncoded(m.Kind, m.WireSize(), cost, from)
}

// chargeEncoded is charge for an already-marshalled buffer: the caller
// supplies the kind and wire size from the header instead of a Msg.
func (s *Stats) chargeEncoded(kind msg.Kind, size int, cost CostModel, from msg.NodeID) {
	s.msgs.Add(1)
	s.bytes.Add(int64(size))
	s.modeledNs.Add(cost.Cost(size))
	if int(from) < len(s.perNode) && from >= 0 {
		s.perNode[from].sent.Add(1)
		s.perNode[from].sentBytes.Add(int64(size))
	}
	s.byClass.Add(ClassOf(kind), 1)
	s.byClass.Add(classBytesOf(kind), int64(size))
}

// chargeWire records one coalesced wire emission: frames frame
// envelopes issued as a single write. sharedClasses holds the traffic
// class of every message that rode in a frame with at least one other
// message — the coalescing the batched flush is supposed to produce,
// counted per class so it stays observable.
func (s *Stats) chargeWire(frames int, sharedClasses []string) {
	s.byClass.Add(stats.CWireWrites, 1)
	s.byClass.Add(stats.CWireFrames, int64(frames))
	if len(sharedClasses) > 0 {
		s.byClass.Add(stats.CWireCoalesced, int64(len(sharedClasses)))
		for _, c := range sharedClasses {
			s.byClass.Add(coalescedClassOf(c), 1)
		}
	}
}

// chargeStall records one Send blocked on a full peer send queue and
// how long it waited — the writer-side backpressure that makes
// saturated peers visible in benchmark output.
func (s *Stats) chargeStall(ns int64) {
	s.byClass.Add(stats.CWireQueueStall, 1)
	s.byClass.Add(stats.CWireQueueStallNs, ns)
}

// WireWrites returns the number of coalesced write operations issued to
// the underlying wire: one per successful vectored write on TCP (the OS
// may split an enormous iovec list at IOV_MAX; that kernel-level
// chunking is not modeled), one per message on the chan transport,
// which has no wire to coalesce for.
func (s *Stats) WireWrites() int64 { return s.byClass.Get(stats.CWireWrites) }

// WireFrames returns the number of frame envelopes emitted.
func (s *Stats) WireFrames() int64 { return s.byClass.Get(stats.CWireFrames) }

// WireCoalesced returns the number of messages that shared a wire frame
// with at least one other message.
func (s *Stats) WireCoalesced() int64 { return s.byClass.Get(stats.CWireCoalesced) }

// WireDials returns the number of connection attempts the mesh
// transport made (lazy per-peer dialing; retries count individually).
func (s *Stats) WireDials() int64 { return s.byClass.Get(stats.CWireDials) }

// WirePeerDown returns the number of peers whose wire has been latched
// as failed.
func (s *Stats) WirePeerDown() int64 { return s.byClass.Get(stats.CWirePeerDown) }

// WirePeerGone returns the number of peers that departed cleanly (a
// goodbye frame was received and their in-flight frames drained).
func (s *Stats) WirePeerGone() int64 { return s.byClass.Get(stats.CWirePeerGone) }

// WireReconnects returns the number of times a latched peer's wire was
// re-established under a reconnect policy (either side: an accepted
// rejoin dial from the peer, or this side's successful re-dial).
func (s *Stats) WireReconnects() int64 { return s.byClass.Get(stats.CWireReconnects) }

// WireMisrouted returns the number of inbound frames whose destination
// header named some other node — dropped, but counted, so a topology
// misconfiguration shows up in the counter dump instead of as silence.
func (s *Stats) WireMisrouted() int64 { return s.byClass.Get(stats.CWireMisrouted) }

// WireQueueStalls returns how many Sends blocked on a full peer send
// queue (writer-side backpressure).
func (s *Stats) WireQueueStalls() int64 { return s.byClass.Get(stats.CWireQueueStall) }

// WireQueueStallNs returns the total nanoseconds Sends spent blocked on
// full peer send queues.
func (s *Stats) WireQueueStallNs() int64 { return s.byClass.Get(stats.CWireQueueStallNs) }

// ClassMessages returns the message count for one traffic class.
func (s *Stats) ClassMessages(class string) int64 { return s.byClass.Get(class) }

// ClassBytes returns the byte count for one traffic class.
func (s *Stats) ClassBytes(class string) int64 { return s.byClass.Get(class + ".bytes") }

func (s *Stats) delivered(to msg.NodeID) {
	if int(to) < len(s.perNode) && to >= 0 {
		s.perNode[to].recvd.Add(1)
	}
}

// String summarizes total traffic.
func (s *Stats) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d modeled=%.3fms",
		s.Messages(), s.Bytes(), float64(s.ModeledNetworkNs())/1e6)
}

// Fence channel pooling. A flush fences every peer queue with a
// buffered chan error; allocating those per flush was a steady-state
// allocation on the hot path. The invariant that makes pooling safe:
// only a channel that has been RECEIVED from goes back to the pool (the
// writer's single send has completed and it holds no value). A fence
// abandoned on an error path is simply dropped — never pooled — so a
// stale writer send can never leak into a later flush.
var fencePool sync.Pool

func getFence() chan error {
	if v := fencePool.Get(); v != nil {
		return v.(chan error)
	}
	return make(chan error, 1)
}

func putFence(ch chan error) { fencePool.Put(ch) }

// fenceSet is pooled per-flush scratch: the fence channels awaiting
// receipt and (mesh only) the peer snapshot.
type fenceSet struct {
	chans []chan error
	peers []*meshPeer
}

var fenceSetPool sync.Pool

func getFenceSet() *fenceSet {
	if v := fenceSetPool.Get(); v != nil {
		return v.(*fenceSet)
	}
	return &fenceSet{}
}

// release returns the scratch (not the channels it references — those
// are pooled individually, and only after being received from).
func (fs *fenceSet) release() {
	clear(fs.chans)
	clear(fs.peers)
	fs.chans = fs.chans[:0]
	fs.peers = fs.peers[:0]
	fenceSetPool.Put(fs)
}

// recvItem is one unit in a receive queue: a marshalled message, or —
// buf == nil — a peer-departure marker the mesh enqueues behind the
// departed peer's last delivered frame, so consumers observe the
// departure strictly after everything the peer sent.
type recvItem struct {
	buf  []byte
	peer msg.NodeID // departure marker only: the peer that said goodbye
}

// queue is an unbounded MPSC message queue with blocking receive.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []recvItem
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(b []byte) error {
	return q.pushItem(recvItem{buf: b})
}

// pushGone enqueues a departure marker for peer, ordered behind every
// frame already delivered.
func (q *queue) pushGone(peer msg.NodeID) error {
	return q.pushItem(recvItem{peer: peer})
}

func (q *queue) pushItem(it recvItem) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return nil
}

func (q *queue) pop() (recvItem, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return recvItem{}, ErrClosed
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, nil
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
