// Package transport provides the message-passing substrate the simulated
// cluster runs on. It replaces the paper's Ethernet-of-SUN-workstations:
// nodes share nothing and exchange only serialized messages, so every
// byte of coherence traffic crosses an explicit, counted boundary.
//
// Two implementations are provided:
//
//   - ChanNetwork: in-process, one goroutine-safe queue per node. This is
//     the default substrate for experiments; it is deterministic-enough,
//     fast, and charges every message against a configurable cost model
//     (per-message latency + per-byte bandwidth) accumulated as modeled
//     network time rather than slept, so benchmarks stay fast.
//   - TCPNetwork: real sockets over loopback (package net), used to
//     demonstrate that the runtime's messaging layer works over an actual
//     network stack.
//
// Both count messages and bytes per node and per traffic class; the
// benchmark harness reads these counters to regenerate the paper's
// traffic comparisons.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"munin/internal/msg"
	"munin/internal/stats"
)

// ErrClosed is returned by operations on a closed endpoint or network.
var ErrClosed = errors.New("transport: closed")

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// Node returns the node this endpoint belongs to.
	Node() msg.NodeID
	// Send transmits m to m.To. It never blocks on the receiver
	// (queues are effectively unbounded); it fails only if the
	// network is closed or the destination does not exist.
	Send(m *msg.Msg) error
	// Recv blocks until a message arrives or the endpoint is closed.
	Recv() (*msg.Msg, error)
}

// Network connects a fixed set of nodes, 0..Nodes()-1.
type Network interface {
	// Endpoint returns node n's endpoint. The same Endpoint is
	// returned on every call.
	Endpoint(n msg.NodeID) Endpoint
	// Nodes returns the number of nodes.
	Nodes() int
	// Multicast delivers m to every member. Implementations that
	// model hardware multicast (ChanNetwork) charge it as a single
	// wire message; others fall back to unicast.
	Multicast(m *msg.Msg, members []msg.NodeID) error
	// Stats returns the network's traffic accounting.
	Stats() *Stats
	// Close shuts the network down; blocked Recv calls return ErrClosed.
	Close() error
}

// CostModel charges each message with a modeled cost. The default models
// a 10 Mbit/s Ethernet with 1 ms small-message latency — the class of
// network the paper's prototype targeted.
type CostModel struct {
	// LatencyNs is the fixed per-message cost in nanoseconds.
	LatencyNs int64
	// NsPerByte is the per-byte cost in nanoseconds
	// (10 Mbit/s = 1.25 MB/s ≈ 800 ns/byte).
	NsPerByte int64
}

// DefaultCostModel approximates the 1990 prototype network: 1 ms latency,
// 10 Mbit/s bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{LatencyNs: 1_000_000, NsPerByte: 800}
}

// Cost returns the modeled transmission time for a message of size bytes.
func (c CostModel) Cost(size int) int64 {
	return c.LatencyNs + c.NsPerByte*int64(size)
}

// Stats accumulates traffic accounting for a network.
type Stats struct {
	msgs      atomic.Int64
	bytes     atomic.Int64
	modeledNs atomic.Int64
	perNode   []nodeStats
	byClass   stats.Set
}

type nodeStats struct {
	sent, recvd, sentBytes atomic.Int64
}

func newStats(n int) *Stats {
	return &Stats{perNode: make([]nodeStats, n)}
}

// Messages returns the total number of wire messages sent.
func (s *Stats) Messages() int64 { return s.msgs.Load() }

// Bytes returns the total number of wire bytes sent.
func (s *Stats) Bytes() int64 { return s.bytes.Load() }

// ModeledNetworkNs returns the accumulated modeled network time in
// nanoseconds under the network's cost model.
func (s *Stats) ModeledNetworkNs() int64 { return s.modeledNs.Load() }

// NodeSent returns the number of messages node n has sent.
func (s *Stats) NodeSent(n msg.NodeID) int64 { return s.perNode[n].sent.Load() }

// NodeReceived returns the number of messages node n has received.
func (s *Stats) NodeReceived(n msg.NodeID) int64 { return s.perNode[n].recvd.Load() }

// NodeSentBytes returns the number of bytes node n has sent.
func (s *Stats) NodeSentBytes(n msg.NodeID) int64 { return s.perNode[n].sentBytes.Load() }

// ByClass returns a snapshot of per-class (kind-range) message counts.
func (s *Stats) ByClass() map[string]int64 { return s.byClass.Snapshot() }

// Reset zeroes all counters. Callers must ensure the network is quiescent.
func (s *Stats) Reset() {
	s.msgs.Store(0)
	s.bytes.Store(0)
	s.modeledNs.Store(0)
	for i := range s.perNode {
		s.perNode[i].sent.Store(0)
		s.perNode[i].recvd.Store(0)
		s.perNode[i].sentBytes.Store(0)
	}
	s.byClass.Reset()
}

// ClassOf maps a message kind to a human-readable traffic class used in
// per-class accounting.
func ClassOf(k msg.Kind) string {
	switch {
	case k >= msg.KindAppBase:
		return "app"
	case k >= msg.KindSyncBase:
		return "sync"
	case k >= msg.KindIvyBase:
		return "ivy"
	case k >= msg.KindCohBase:
		return "coherence"
	case k >= msg.KindLockBase:
		return "lock"
	default:
		return "control"
	}
}

func (s *Stats) charge(m *msg.Msg, cost CostModel, from msg.NodeID) {
	size := m.WireSize()
	s.msgs.Add(1)
	s.bytes.Add(int64(size))
	s.modeledNs.Add(cost.Cost(size))
	if int(from) < len(s.perNode) && from >= 0 {
		s.perNode[from].sent.Add(1)
		s.perNode[from].sentBytes.Add(int64(size))
	}
	s.byClass.Add(ClassOf(m.Kind), 1)
	s.byClass.Add(ClassOf(m.Kind)+".bytes", int64(size))
}

// ClassMessages returns the message count for one traffic class.
func (s *Stats) ClassMessages(class string) int64 { return s.byClass.Get(class) }

// ClassBytes returns the byte count for one traffic class.
func (s *Stats) ClassBytes(class string) int64 { return s.byClass.Get(class + ".bytes") }

func (s *Stats) delivered(to msg.NodeID) {
	if int(to) < len(s.perNode) && to >= 0 {
		s.perNode[to].recvd.Add(1)
	}
}

// String summarizes total traffic.
func (s *Stats) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d modeled=%.3fms",
		s.Messages(), s.Bytes(), float64(s.ModeledNetworkNs())/1e6)
}

// queue is an unbounded MPSC message queue with blocking receive.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  [][]byte
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(b []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, b)
	q.cond.Signal()
	return nil
}

func (q *queue) pop() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, ErrClosed
	}
	b := q.items[0]
	q.items = q.items[1:]
	return b, nil
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
