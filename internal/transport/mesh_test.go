package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"munin/internal/msg"
	"munin/internal/netutil"
)

// reserveAddrs grabs n loopback addresses for a topology
// (netutil.ReserveAddrs; the bind race is tolerable in tests).
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs, err := netutil.ReserveAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

// newMeshPair builds a live two-node mesh (both members in this test
// process, each with its own listener and real TCP between them).
func newMeshPair(t *testing.T) (a, b *MeshNetwork) {
	t.Helper()
	addrs := reserveAddrs(t, 2)
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewMeshNetwork(Topology{Self: 1, Peers: peers}, CostModel{})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestMeshSendRecv(t *testing.T) {
	a, b := newMeshPair(t)
	// B dials lazily on first send.
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m, err := a.Endpoint(0).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 1 || string(m.Payload) != "hi" {
		t.Fatalf("got %v", m)
	}
	// The reverse direction reuses the established inbound connection:
	// no dial from A.
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("yo")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Endpoint(0).Flush(); err != nil {
		t.Fatal(err)
	}
	m, err = b.Endpoint(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || string(m.Payload) != "yo" {
		t.Fatalf("got %v", m)
	}
	if d := a.Stats().WireDials(); d != 0 {
		t.Fatalf("A dialed %d times; the pair should share B's connection", d)
	}
	if d := b.Stats().WireDials(); d != 1 {
		t.Fatalf("B dialed %d times, want 1", d)
	}
	// Self-sends never touch the wire.
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("me")}); err != nil {
		t.Fatal(err)
	}
	if m, err = a.Endpoint(0).Recv(); err != nil || string(m.Payload) != "me" {
		t.Fatalf("self-send: %v, %v", m, err)
	}
}

func TestMeshSimultaneousFirstSendsConverge(t *testing.T) {
	// Both sides' first sends race: each writer dials, and the
	// duplicate connection must be resolved (lower dialer ID wins)
	// without losing either message. Repeat to hit different
	// interleavings.
	for i := 0; i < 5; i++ {
		a, b := func() (*MeshNetwork, *MeshNetwork) {
			addrs := reserveAddrs(t, 2)
			peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
			a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewMeshNetwork(Topology{Self: 1, Peers: peers}, CostModel{})
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		}()
		errs := make(chan error, 2)
		go func() {
			errs <- a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("a")})
		}()
		go func() {
			errs <- b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("b")})
		}()
		for j := 0; j < 2; j++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
		if m, err := a.Endpoint(0).Recv(); err != nil || string(m.Payload) != "b" {
			t.Fatalf("iter %d: A got %v, %v", i, m, err)
		}
		if m, err := b.Endpoint(1).Recv(); err != nil || string(m.Payload) != "a" {
			t.Fatalf("iter %d: B got %v, %v", i, m, err)
		}
		a.Close()
		b.Close()
	}
}

// acceptWithHello accepts one connection on ln, validates the hello,
// and acks it — a test stand-in for a remote mesh process.
func acceptWithHello(t *testing.T, ln net.Listener, wantFrom msg.NodeID) net.Conn {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatal(err)
	}
	if string(hello[:4]) != meshMagic {
		t.Fatalf("bad magic %q", hello[:4])
	}
	if v := binary.BigEndian.Uint16(hello[4:6]); v != meshProtoVersion {
		t.Fatalf("bad version %d", v)
	}
	if from := msg.NodeID(binary.BigEndian.Uint32(hello[6:10])); from != wantFrom {
		t.Fatalf("hello from node %d, want %d", from, wantFrom)
	}
	if _, err := conn.Write([]byte{helloAccept}); err != nil {
		t.Fatal(err)
	}
	return conn
}

// dialWithHello dials a mesh listener pretending to be the given node
// and returns the connection plus the acceptor's verdict byte.
func dialWithHello(t *testing.T, addr string, as msg.NodeID) (net.Conn, byte) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(encodeHello(as)); err != nil {
		t.Fatal(err)
	}
	var ack [1]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		t.Fatalf("reading handshake verdict: %v", err)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, ack[0]
}

// readWireMsg reads one frame off a raw connection and returns its
// first message.
func readWireMsg(t *testing.T, conn net.Conn) *msg.Msg {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var lenbuf [4]byte
	if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
		t.Fatalf("reading frame length: %v", err)
	}
	frame := make([]byte, binary.BigEndian.Uint32(lenbuf[:]))
	if _, err := io.ReadFull(conn, frame); err != nil {
		t.Fatalf("reading frame: %v", err)
	}
	msgs, err := msg.DecodeFrame(frame)
	if err != nil || len(msgs) == 0 {
		t.Fatalf("decoding frame: %v (%d msgs)", err, len(msgs))
	}
	return msgs[0]
}

// TestMeshTiebreakRejectsHigherDialer pins the acceptor side of the
// duplicate-connection rule: a node that already owns the pair's
// connection as the LOWER-ID dialer rejects an inbound duplicate from
// the higher-ID side, and traffic keeps flowing on the original.
func TestMeshTiebreakRejectsHigherDialer(t *testing.T) {
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	selfAddr := reserveAddrs(t, 1)[0]
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: selfAddr, 1: fake.Addr().String()},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Establish: node 0 dials the fake node 1 (dialer = 0, the low ID).
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	orig := acceptWithHello(t, fake, 0)
	defer orig.Close()
	if got := readWireMsg(t, orig); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}

	// Duplicate: "node 1" dials back. Dialer ID 1 > 0 loses.
	dup, verdict := dialWithHello(t, m.Addr(), 1)
	defer dup.Close()
	if verdict != helloReject {
		t.Fatalf("duplicate from higher dialer got verdict %d, want reject", verdict)
	}

	// The established connection must still carry traffic.
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if got := readWireMsg(t, orig); string(got.Payload) != "two" {
		t.Fatalf("after duplicate rejection, got %v", got)
	}
}

// TestMeshTiebreakLowerDialerReplaces pins the other half: a node
// holding the pair's connection as the HIGHER-ID dialer yields to an
// inbound connection dialed by the lower ID — the old stream closes
// and subsequent traffic rides the winner.
func TestMeshTiebreakLowerDialerReplaces(t *testing.T) {
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	selfAddr := reserveAddrs(t, 1)[0]
	m, err := NewMeshNetwork(Topology{
		Self:  1,
		Peers: map[msg.NodeID]string{0: fake.Addr().String(), 1: selfAddr},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Establish: node 1 dials the fake node 0 (dialer = 1, the high ID).
	if err := m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	orig := acceptWithHello(t, fake, 1)
	defer orig.Close()
	if got := readWireMsg(t, orig); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}

	// Duplicate: "node 0" dials in. Dialer ID 0 < 1 wins.
	winner, verdict := dialWithHello(t, m.Addr(), 0)
	defer winner.Close()
	if verdict != helloAccept {
		t.Fatalf("duplicate from lower dialer got verdict %d, want accept", verdict)
	}

	// The old connection is closed by the mesh...
	orig.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := orig.Read(make([]byte, 1)); err == nil {
		t.Fatal("old connection still open after losing the tiebreak")
	}
	// ...and new traffic rides the winner.
	if err := m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if got := readWireMsg(t, winner); string(got.Payload) != "two" {
		t.Fatalf("after replacement, got %v", got)
	}
}

func TestMeshDialFailureLatchesErrPeerDown(t *testing.T) {
	// Node 1's topology points node 0 at a port nobody listens on:
	// the lazy dial fails, the peer latches, and both the fence and
	// later sends surface *ErrPeerDown.
	addrs := reserveAddrs(t, 2) // both released; addr[0] is dead
	m, err := NewMeshNetwork(Topology{
		Self:  1,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	downCh := make(chan msg.NodeID, 1)
	m.OnPeerDown(func(peer msg.NodeID, err error) { downCh <- peer })

	if err := m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0}); err != nil {
		t.Fatalf("async send should enqueue: %v", err)
	}
	// The fence waits out the failed dial but reports nil — peer death
	// surfaces through OnPeerDown and fast-failing sends, not through
	// the write-completion fence (see meshEndpoint.Flush).
	if err := m.Endpoint(1).Flush(); err != nil {
		t.Fatalf("fence after dial failure = %v, want nil", err)
	}
	var pd *ErrPeerDown
	select {
	case peer := <-downCh:
		if peer != 0 {
			t.Fatalf("OnPeerDown fired for node %d", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnPeerDown never fired")
	}
	// Later sends fail fast with the same typed error.
	err = m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0})
	if !errors.As(err, &pd) {
		t.Fatalf("send after latch = %v, want *ErrPeerDown", err)
	}
	if got := m.Stats().WirePeerDown(); got != 1 {
		t.Fatalf("wire.peer_down = %d, want 1", got)
	}
	if m.Stats().WireDials() < 1 {
		t.Fatal("wire.dials not counted")
	}
}

func TestMeshConnectionDeathLatchesErrPeerDown(t *testing.T) {
	a, b := newMeshPair(t)
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Endpoint(0).Recv(); err != nil {
		t.Fatal(err)
	}

	downCh := make(chan error, 1)
	b.OnPeerDown(func(peer msg.NodeID, err error) { downCh <- err })
	// "Kill" node 0: its shutdown closes the pair's connection while B
	// stays up, so B's reader must latch peer 0 down.
	a.Close()
	select {
	case err := <-downCh:
		var pd *ErrPeerDown
		if !errors.As(err, &pd) || pd.Node != 0 {
			t.Fatalf("peer-down error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnPeerDown never fired after the connection died")
	}
	var pd *ErrPeerDown
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0}); !errors.As(err, &pd) {
		t.Fatalf("send after connection death = %v, want *ErrPeerDown", err)
	}
}

func TestMeshEndpointForOtherNodePanics(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Endpoint(1) on node 0's mesh did not panic")
		}
	}()
	m.Endpoint(1)
}

func TestMeshRejectsBadHello(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	expectClosed := func(conn net.Conn, what string) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatalf("%s: connection left open", what)
		}
		conn.Close()
	}

	// Wrong magic.
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("XXXX000000"))
	expectClosed(conn, "bad magic")

	// Wrong version.
	conn, err = net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	bad := encodeHello(1)
	binary.BigEndian.PutUint16(bad[4:6], meshProtoVersion+1)
	conn.Write(bad)
	expectClosed(conn, "bad version")

	// Unknown node ID.
	conn, err = net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(encodeHello(7))
	expectClosed(conn, "unknown node")

	// A node cannot claim to be us.
	conn, err = net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(encodeHello(0))
	expectClosed(conn, "self hello")
}

func TestMeshFlushFencesHealthyPeersDespiteDeadOne(t *testing.T) {
	// Three-node topology in one process: node 1 (self) talks to a
	// live node 0 and a dead node 2. The fence must still drain node
	// 0's traffic and report the dead peer's error.
	addrs := reserveAddrs(t, 3)
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1], 2: addrs[2]}
	a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewMeshNetwork(Topology{Self: 1, Peers: peers}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Node 2 never starts.

	downCh := make(chan msg.NodeID, 1)
	b.OnPeerDown(func(peer msg.NodeID, err error) { downCh <- peer })
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("alive")}); err != nil {
		t.Fatal(err)
	}
	// The fence drains the healthy peer and does NOT surface the dead
	// peer: its loss is reported through OnPeerDown (and, in a kernel,
	// the pending-call fan-in). Returning ErrPeerDown from every later
	// fence would poison flushes that involve only healthy peers.
	if err := b.Endpoint(1).Flush(); err != nil {
		t.Fatalf("fence = %v, want nil despite the dead peer", err)
	}
	m, err := a.Endpoint(0).Recv()
	if err != nil || string(m.Payload) != "alive" {
		t.Fatalf("healthy peer: %v, %v", m, err)
	}
	select {
	case peer := <-downCh:
		if peer != 2 {
			t.Fatalf("OnPeerDown fired for node %d, want 2", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead peer never reported via OnPeerDown")
	}
	// Direct sends to the latched peer still fail fast and typed.
	var pd *ErrPeerDown
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 2}); !errors.As(err, &pd) || pd.Node != 2 {
		t.Fatalf("send to latched peer = %v, want *ErrPeerDown{Node: 2}", err)
	}
}

var _ = fmt.Sprint // keep fmt for debugging edits
