package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"munin/internal/msg"
	"munin/internal/netutil"
)

// reserveAddrs grabs n loopback addresses for a topology
// (netutil.ReserveAddrs; the bind race is tolerable in tests).
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs, err := netutil.ReserveAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

// newMeshPair builds a live two-node mesh (both members in this test
// process, each with its own listener and real TCP between them).
func newMeshPair(t *testing.T) (a, b *MeshNetwork) {
	t.Helper()
	addrs := reserveAddrs(t, 2)
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	b, err = NewMeshNetwork(Topology{Self: 1, Peers: peers}, CostModel{})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestMeshSendRecv(t *testing.T) {
	a, b := newMeshPair(t)
	// B dials lazily on first send.
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	m, err := a.Endpoint(0).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 1 || string(m.Payload) != "hi" {
		t.Fatalf("got %v", m)
	}
	// The reverse direction reuses the established inbound connection:
	// no dial from A.
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("yo")}); err != nil {
		t.Fatal(err)
	}
	if err := a.Endpoint(0).Flush(); err != nil {
		t.Fatal(err)
	}
	m, err = b.Endpoint(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || string(m.Payload) != "yo" {
		t.Fatalf("got %v", m)
	}
	if d := a.Stats().WireDials(); d != 0 {
		t.Fatalf("A dialed %d times; the pair should share B's connection", d)
	}
	if d := b.Stats().WireDials(); d != 1 {
		t.Fatalf("B dialed %d times, want 1", d)
	}
	// Self-sends never touch the wire.
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("me")}); err != nil {
		t.Fatal(err)
	}
	if m, err = a.Endpoint(0).Recv(); err != nil || string(m.Payload) != "me" {
		t.Fatalf("self-send: %v, %v", m, err)
	}
}

func TestMeshSimultaneousFirstSendsConverge(t *testing.T) {
	// Both sides' first sends race: each writer dials, and the
	// duplicate connection must be resolved (lower dialer ID wins)
	// without losing either message. Repeat to hit different
	// interleavings.
	for i := 0; i < 5; i++ {
		a, b := func() (*MeshNetwork, *MeshNetwork) {
			addrs := reserveAddrs(t, 2)
			peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
			a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewMeshNetwork(Topology{Self: 1, Peers: peers}, CostModel{})
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		}()
		errs := make(chan error, 2)
		go func() {
			errs <- a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("a")})
		}()
		go func() {
			errs <- b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("b")})
		}()
		for j := 0; j < 2; j++ {
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		}
		if m, err := a.Endpoint(0).Recv(); err != nil || string(m.Payload) != "b" {
			t.Fatalf("iter %d: A got %v, %v", i, m, err)
		}
		if m, err := b.Endpoint(1).Recv(); err != nil || string(m.Payload) != "a" {
			t.Fatalf("iter %d: B got %v, %v", i, m, err)
		}
		a.Close()
		b.Close()
	}
}

// acceptWithHello accepts one connection on ln, validates the hello,
// and acks it (agreeing to the proposed epoch) — a test stand-in for a
// remote mesh process. It returns the connection and the epoch the
// dialer proposed.
func acceptWithHello(t *testing.T, ln net.Listener, wantFrom msg.NodeID) (net.Conn, uint64) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		t.Fatal(err)
	}
	if string(hello[:4]) != meshMagic {
		t.Fatalf("bad magic %q", hello[:4])
	}
	if v := binary.BigEndian.Uint16(hello[4:6]); v != meshProtoVersion {
		t.Fatalf("bad version %d", v)
	}
	if from := msg.NodeID(binary.BigEndian.Uint32(hello[6:10])); from != wantFrom {
		t.Fatalf("hello from node %d, want %d", from, wantFrom)
	}
	epoch := binary.BigEndian.Uint64(hello[10:18])
	ack := make([]byte, 0, helloAcceptLen)
	ack = append(ack, helloAccept)
	ack = binary.BigEndian.AppendUint64(ack, epoch)
	if _, err := conn.Write(ack); err != nil {
		t.Fatal(err)
	}
	return conn, epoch
}

// dialWithHello dials a mesh listener pretending to be the given node
// proposing the given epoch, and returns the connection, the acceptor's
// verdict byte, and (on accept) the agreed epoch.
func dialWithHello(t *testing.T, addr string, as msg.NodeID, epoch uint64) (net.Conn, byte, uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(encodeHello(as, epoch)); err != nil {
		t.Fatal(err)
	}
	var ack [helloAcceptLen]byte
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, ack[:1]); err != nil {
		t.Fatalf("reading handshake verdict: %v", err)
	}
	agreed := uint64(0)
	if ack[0] == helloAccept {
		if _, err := io.ReadFull(conn, ack[1:]); err != nil {
			t.Fatalf("reading agreed epoch: %v", err)
		}
		agreed = binary.BigEndian.Uint64(ack[1:])
	}
	conn.SetReadDeadline(time.Time{})
	return conn, ack[0], agreed
}

// readWireMsg reads one frame off a raw connection and returns its
// first message.
func readWireMsg(t *testing.T, conn net.Conn) *msg.Msg {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var lenbuf [4]byte
	if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
		t.Fatalf("reading frame length: %v", err)
	}
	frame := make([]byte, binary.BigEndian.Uint32(lenbuf[:]))
	if _, err := io.ReadFull(conn, frame); err != nil {
		t.Fatalf("reading frame: %v", err)
	}
	msgs, err := msg.DecodeFrame(frame)
	if err != nil || len(msgs) == 0 {
		t.Fatalf("decoding frame: %v (%d msgs)", err, len(msgs))
	}
	return msgs[0]
}

// TestMeshTiebreakRejectsHigherDialer pins the acceptor side of the
// duplicate-connection rule: a node that already owns the pair's
// connection as the LOWER-ID dialer rejects an inbound duplicate from
// the higher-ID side, and traffic keeps flowing on the original.
func TestMeshTiebreakRejectsHigherDialer(t *testing.T) {
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	selfAddr := reserveAddrs(t, 1)[0]
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: selfAddr, 1: fake.Addr().String()},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Establish: node 0 dials the fake node 1 (dialer = 0, the low ID).
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	orig, _ := acceptWithHello(t, fake, 0)
	defer orig.Close()
	if got := readWireMsg(t, orig); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}

	// Duplicate: "node 1" dials back. Dialer ID 1 > 0 loses.
	dup, verdict, _ := dialWithHello(t, m.Addr(), 1, 1)
	defer dup.Close()
	if verdict != helloReject {
		t.Fatalf("duplicate from higher dialer got verdict %d, want reject", verdict)
	}

	// The established connection must still carry traffic.
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if got := readWireMsg(t, orig); string(got.Payload) != "two" {
		t.Fatalf("after duplicate rejection, got %v", got)
	}
}

// TestMeshTiebreakLowerDialerReplaces pins the other half: a node
// holding the pair's connection as the HIGHER-ID dialer yields to an
// inbound connection dialed by the lower ID — the old stream closes
// and subsequent traffic rides the winner.
func TestMeshTiebreakLowerDialerReplaces(t *testing.T) {
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	selfAddr := reserveAddrs(t, 1)[0]
	m, err := NewMeshNetwork(Topology{
		Self:  1,
		Peers: map[msg.NodeID]string{0: fake.Addr().String(), 1: selfAddr},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Establish: node 1 dials the fake node 0 (dialer = 1, the high ID).
	if err := m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	orig, _ := acceptWithHello(t, fake, 1)
	defer orig.Close()
	if got := readWireMsg(t, orig); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}

	// Duplicate: "node 0" dials in. Dialer ID 0 < 1 wins.
	winner, verdict, _ := dialWithHello(t, m.Addr(), 0, 1)
	defer winner.Close()
	if verdict != helloAccept {
		t.Fatalf("duplicate from lower dialer got verdict %d, want accept", verdict)
	}

	// The old connection is closed by the mesh...
	orig.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := orig.Read(make([]byte, 1)); err == nil {
		t.Fatal("old connection still open after losing the tiebreak")
	}
	// ...and new traffic rides the winner.
	if err := m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if got := readWireMsg(t, winner); string(got.Payload) != "two" {
		t.Fatalf("after replacement, got %v", got)
	}
}

func TestMeshDialFailureLatchesErrPeerDown(t *testing.T) {
	// Node 1's topology points node 0 at a port nobody listens on:
	// the lazy dial fails, the peer latches, and both the fence and
	// later sends surface *ErrPeerDown.
	addrs := reserveAddrs(t, 2) // both released; addr[0] is dead
	m, err := NewMeshNetwork(Topology{
		Self:  1,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	downCh := make(chan msg.NodeID, 1)
	m.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })

	if err := m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0}); err != nil {
		t.Fatalf("async send should enqueue: %v", err)
	}
	// The fence waits out the failed dial but reports nil — peer death
	// surfaces through OnPeerDown and fast-failing sends, not through
	// the write-completion fence (see meshEndpoint.Flush).
	if err := m.Endpoint(1).Flush(); err != nil {
		t.Fatalf("fence after dial failure = %v, want nil", err)
	}
	var pd *ErrPeerDown
	select {
	case peer := <-downCh:
		if peer != 0 {
			t.Fatalf("OnPeerDown fired for node %d", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnPeerDown never fired")
	}
	// Later sends fail fast with the same typed error.
	err = m.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0})
	if !errors.As(err, &pd) {
		t.Fatalf("send after latch = %v, want *ErrPeerDown", err)
	}
	if got := m.Stats().WirePeerDown(); got != 1 {
		t.Fatalf("wire.peer_down = %d, want 1", got)
	}
	if m.Stats().WireDials() < 1 {
		t.Fatal("wire.dials not counted")
	}
}

func TestMeshConnectionDeathLatchesErrPeerDown(t *testing.T) {
	a, b := newMeshPair(t)
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Endpoint(0).Recv(); err != nil {
		t.Fatal(err)
	}

	downCh := make(chan error, 1)
	b.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- err })
	// Kill node 0 abruptly (no goodbye — a graceful Close would mark
	// the peer departed instead): the pair's connection dies while B
	// stays up, so B's reader must latch peer 0 down.
	a.Kill()
	select {
	case err := <-downCh:
		var pd *ErrPeerDown
		if !errors.As(err, &pd) || pd.Node != 0 {
			t.Fatalf("peer-down error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnPeerDown never fired after the connection died")
	}
	var pd *ErrPeerDown
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0}); !errors.As(err, &pd) {
		t.Fatalf("send after connection death = %v, want *ErrPeerDown", err)
	}
}

func TestMeshEndpointForOtherNodePanics(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Endpoint(1) on node 0's mesh did not panic")
		}
	}()
	m.Endpoint(1)
}

func TestMeshRejectsBadHello(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	expectClosed := func(conn net.Conn, what string) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatalf("%s: connection left open", what)
		}
		conn.Close()
	}

	// Wrong magic.
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("XXXX000000"))
	expectClosed(conn, "bad magic")

	// Wrong version.
	conn, err = net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	bad := encodeHello(1, 1)
	binary.BigEndian.PutUint16(bad[4:6], meshProtoVersion+1)
	conn.Write(bad)
	expectClosed(conn, "bad version")

	// Unknown node ID.
	conn, err = net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(encodeHello(7, 1))
	expectClosed(conn, "unknown node")

	// A node cannot claim to be us.
	conn, err = net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(encodeHello(0, 1))
	expectClosed(conn, "self hello")
}

func TestMeshFlushFencesHealthyPeersDespiteDeadOne(t *testing.T) {
	// Three-node topology in one process: node 1 (self) talks to a
	// live node 0 and a dead node 2. The fence must still drain node
	// 0's traffic and report the dead peer's error.
	addrs := reserveAddrs(t, 3)
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1], 2: addrs[2]}
	a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewMeshNetwork(Topology{Self: 1, Peers: peers}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// Node 2 never starts.

	downCh := make(chan msg.NodeID, 1)
	b.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("alive")}); err != nil {
		t.Fatal(err)
	}
	// The fence drains the healthy peer and does NOT surface the dead
	// peer: its loss is reported through OnPeerDown (and, in a kernel,
	// the pending-call fan-in). Returning ErrPeerDown from every later
	// fence would poison flushes that involve only healthy peers.
	if err := b.Endpoint(1).Flush(); err != nil {
		t.Fatalf("fence = %v, want nil despite the dead peer", err)
	}
	m, err := a.Endpoint(0).Recv()
	if err != nil || string(m.Payload) != "alive" {
		t.Fatalf("healthy peer: %v, %v", m, err)
	}
	select {
	case peer := <-downCh:
		if peer != 2 {
			t.Fatalf("OnPeerDown fired for node %d, want 2", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead peer never reported via OnPeerDown")
	}
	// Direct sends to the latched peer still fail fast and typed.
	var pd *ErrPeerDown
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 2}); !errors.As(err, &pd) || pd.Node != 2 {
		t.Fatalf("send to latched peer = %v, want *ErrPeerDown{Node: 2}", err)
	}
}

// TestMeshGoodbyeMarksPeerDepartedNotDown pins the graceful half of
// the failure vocabulary: a peer that Closes cleanly says goodbye,
// drains, and is marked DEPARTED — its in-flight frames are all
// delivered (observed strictly before the gone notification), no
// peer-down latch fires anywhere, and only new sends fail, with the
// typed *ErrPeerGone.
func TestMeshGoodbyeMarksPeerDepartedNotDown(t *testing.T) {
	a, b := newMeshPair(t)
	goneCh := make(chan msg.NodeID, 1)
	b.OnPeerGone(func(peer msg.NodeID, err error) { goneCh <- peer })
	downCh := make(chan msg.NodeID, 1)
	b.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })

	// Establish the pair first (the race shape is an established
	// connection with a frame in flight at close time).
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Endpoint(0).Recv(); err != nil || string(m.Payload) != "hello" {
		t.Fatalf("establish: %v, %v", m, err)
	}
	// The reply-vs-EOF race shape: a message is still in flight when
	// the sender closes. The goodbye drain must deliver it.
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("last")}); err != nil {
		t.Fatal(err)
	}
	a.Close() // graceful: drains "last", goodbye, waits for B's ack

	m, err := b.Endpoint(1).Recv()
	if err != nil || string(m.Payload) != "last" {
		t.Fatalf("in-flight frame lost to the departure: %v, %v", m, err)
	}
	// The departure marker sits behind the last frame; the next Recv
	// consumes it and fires the gone callbacks.
	go b.Endpoint(1).Recv()
	select {
	case peer := <-goneCh:
		if peer != 0 {
			t.Fatalf("OnPeerGone fired for node %d, want 0", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnPeerGone never fired after the goodbye")
	}
	var pg *ErrPeerGone
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0}); !errors.As(err, &pg) || pg.Node != 0 {
		t.Fatalf("send to departed peer = %v, want *ErrPeerGone{Node: 0}", err)
	}
	if got := b.Stats().WirePeerDown(); got != 0 {
		t.Fatalf("wire.peer_down = %d after a clean goodbye, want 0", got)
	}
	if got := b.Stats().WirePeerGone(); got != 1 {
		t.Fatalf("wire.peer_gone = %d, want 1", got)
	}
	select {
	case peer := <-downCh:
		t.Fatalf("OnPeerDown fired for node %d on a clean goodbye", peer)
	default:
	}
}

// TestMeshLeaveAnnouncesDeparture: Endpoint.Leave is the goodbye
// handshake without the teardown — peers mark this node departed, and
// this node's own endpoint refuses new sends with ErrClosed.
func TestMeshLeaveAnnouncesDeparture(t *testing.T) {
	a, b := newMeshPair(t)
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Endpoint(1).Recv(); err != nil || string(m.Payload) != "hi" {
		t.Fatalf("got %v, %v", m, err)
	}

	lv, ok := a.Endpoint(0).(Leaver)
	if !ok {
		t.Fatal("mesh endpoint does not implement Leaver")
	}
	if err := lv.Leave(); err != nil {
		t.Fatal(err)
	}
	// Leave returns only after the peers acked the drain, so B's
	// departed latch is already visible.
	var pg *ErrPeerGone
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0}); !errors.As(err, &pg) {
		t.Fatalf("send to left peer = %v, want *ErrPeerGone", err)
	}
	if err := a.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after own Leave = %v, want ErrClosed", err)
	}
	if got := b.Stats().WirePeerDown(); got != 0 {
		t.Fatalf("wire.peer_down = %d after Leave, want 0", got)
	}
}

// TestMeshStaleEpochHelloRejected pins the epoch half of the
// handshake: a live pair at epoch E rejects a hello proposing an older
// generation (a stale dial left over from a replaced stream), and
// accepts one proposing a NEWER generation — replacing the current
// connection, exactly the newer-wins rule a reconnecting peer relies
// on.
func TestMeshStaleEpochHelloRejected(t *testing.T) {
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	selfAddr := reserveAddrs(t, 1)[0]
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: selfAddr, 1: fake.Addr().String()},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Establish at epoch 1 (first dial proposes 0+1).
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	orig, epoch := acceptWithHello(t, fake, 0)
	defer orig.Close()
	if epoch != 1 {
		t.Fatalf("first dial proposed epoch %d, want 1", epoch)
	}
	if got := readWireMsg(t, orig); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}
	if got := m.PeerEpoch(1); got != 1 {
		t.Fatalf("PeerEpoch = %d, want 1", got)
	}

	// A stale generation (epoch 0 < current 1) must be rejected.
	stale, verdict, _ := dialWithHello(t, m.Addr(), 1, 0)
	defer stale.Close()
	if verdict != helloReject {
		t.Fatalf("stale-epoch hello got verdict %d, want reject", verdict)
	}

	// A newer generation (epoch 2 > current 1) wins and replaces.
	fresh, verdict, agreed := dialWithHello(t, m.Addr(), 1, 2)
	defer fresh.Close()
	if verdict != helloAccept || agreed != 2 {
		t.Fatalf("newer-epoch hello got verdict %d agreed %d, want accept at 2", verdict, agreed)
	}
	if got := m.PeerEpoch(1); got != 2 {
		t.Fatalf("PeerEpoch after replacement = %d, want 2", got)
	}
	// The old stream is closed by the mesh; new traffic rides the
	// replacement.
	orig.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := orig.Read(make([]byte, 1)); err == nil {
		t.Fatal("old connection still open after an accepted newer epoch")
	}
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("two")}); err != nil {
		t.Fatal(err)
	}
	if got := readWireMsg(t, fresh); string(got.Payload) != "two" {
		t.Fatalf("after replacement, got %v", got)
	}
}

// TestMeshReconnectRedialsAndClearsLatch: with the policy enabled, a
// latched peer is an outage, not a death sentence — the mesh re-dials
// in the background, the handshake agrees on the next epoch, the latch
// clears, and new sends flow. During the outage sends still fail fast
// with *ErrPeerDown, and nothing is replayed.
func TestMeshReconnectRedialsAndClearsLatch(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	fake, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	m, err := NewMeshNetwork(Topology{
		Self:      0,
		Peers:     map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
		Reconnect: ReconnectPolicy{Enabled: true, Backoff: 100 * time.Millisecond},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	conn1, epoch1 := acceptWithHello(t, fake, 0)
	if epoch1 != 1 {
		t.Fatalf("first epoch %d, want 1", epoch1)
	}
	if got := readWireMsg(t, conn1); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}

	downCh := make(chan msg.NodeID, 1)
	m.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })
	conn1.Close() // abrupt: wire death, not goodbye
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never latched down")
	}
	// During the outage, sends fail fast and typed.
	var pd *ErrPeerDown
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 0x1}); !errors.As(err, &pd) {
		t.Fatalf("send during outage = %v, want *ErrPeerDown", err)
	}

	// The peer "recovers": accept the background re-dial, which must
	// propose the next generation.
	conn2, epoch2 := acceptWithHello(t, fake, 0)
	defer conn2.Close()
	if epoch2 != 2 {
		t.Fatalf("re-dial proposed epoch %d, want 2", epoch2)
	}
	// The latch clears once the handshake completes; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("two")})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send never recovered after re-dial: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := readWireMsg(t, conn2); string(got.Payload) != "two" {
		t.Fatalf("after reconnect, got %v", got)
	}
	if got := m.Stats().WireReconnects(); got != 1 {
		t.Fatalf("wire.reconnects = %d, want 1", got)
	}
	if got := m.PeerEpoch(1); got != 2 {
		t.Fatalf("PeerEpoch after reconnect = %d, want 2", got)
	}
}

// TestMeshRejoinAcceptedWithPolicy: the other reconnect path — a
// restarted peer process dials IN after this side latched it down. The
// policy accepts the rejoin, bumps the epoch past the dead generation
// (the restarted process proposes from scratch), and clears the latch.
func TestMeshRejoinAcceptedWithPolicy(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	fake, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
		// MaxAttempts 1: after one failed background re-dial the loop
		// stops, so the inbound rejoin below is the only path back.
		Reconnect: ReconnectPolicy{Enabled: true, MaxAttempts: 1, Backoff: 10 * time.Millisecond},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	conn1, _ := acceptWithHello(t, fake, 0)
	if got := readWireMsg(t, conn1); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}
	downCh := make(chan msg.NodeID, 1)
	m.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })
	// The peer "crashes": its listener disappears and the connection
	// dies, so the background re-dial cannot succeed.
	fake.Close()
	conn1.Close()
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never latched down")
	}

	// The restarted process dials in, proposing epoch 1 from scratch
	// (it has no memory of the pair). Retry while the one background
	// re-dial might still hold the dialing flag.
	var conn2 net.Conn
	var verdict byte
	var agreed uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn2, verdict, agreed = dialWithHello(t, m.Addr(), 1, 1)
		if verdict == helloAccept {
			break
		}
		conn2.Close()
		if time.Now().After(deadline) {
			t.Fatal("rejoin dial never accepted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn2.Close()
	if agreed != 2 {
		t.Fatalf("rejoin agreed epoch %d, want 2 (past the dead generation)", agreed)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("two")})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("send never recovered after rejoin: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := readWireMsg(t, conn2); string(got.Payload) != "two" {
		t.Fatalf("after rejoin, got %v", got)
	}
	if got := m.Stats().WireReconnects(); got != 1 {
		t.Fatalf("wire.reconnects = %d, want 1", got)
	}
}

// TestMeshNoReconnectWithoutPolicy preserves the original contract:
// with the policy off (the default), a latch is permanent — no
// background re-dial ever happens, an inbound rejoin is rejected, and
// sends keep failing typed for the life of the mesh.
func TestMeshNoReconnectWithoutPolicy(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	fake, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	conn1, _ := acceptWithHello(t, fake, 0)
	if got := readWireMsg(t, conn1); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}
	downCh := make(chan msg.NodeID, 1)
	m.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })
	conn1.Close()
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never latched down")
	}

	// No background re-dial arrives within a generous window.
	fake.(*net.TCPListener).SetDeadline(time.Now().Add(500 * time.Millisecond))
	if conn, err := fake.Accept(); err == nil {
		conn.Close()
		t.Fatal("mesh re-dialed a latched peer without a reconnect policy")
	}
	// An inbound rejoin is rejected.
	conn2, verdict, _ := dialWithHello(t, m.Addr(), 1, 1)
	conn2.Close()
	if verdict != helloReject {
		t.Fatalf("rejoin without policy got verdict %d, want reject", verdict)
	}
	// And the latch is still in force.
	var pd *ErrPeerDown
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1}); !errors.As(err, &pd) {
		t.Fatalf("send after latch = %v, want *ErrPeerDown", err)
	}
	if got := m.Stats().WireReconnects(); got != 0 {
		t.Fatalf("wire.reconnects = %d without a policy, want 0", got)
	}
}

// TestMeshMisroutedFramesCounted: an inbound frame whose destination
// header names another node is dropped but counted, so topology
// misconfigurations are visible in the counter dump.
func TestMeshMisroutedFramesCounted(t *testing.T) {
	a, b := newMeshPair(t)
	// Establish the pair.
	if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Endpoint(0).Recv(); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a frame addressed to a node that is not A, and push
	// it down B's established connection by sending a legitimate
	// message whose To header was tampered... simplest: dial A
	// directly as node 1 with a fresh (newer) epoch and write a
	// misrouted frame on the accepted connection.
	conn, verdict, _ := dialWithHello(t, a.Addr(), 1, 99)
	defer conn.Close()
	if verdict != helloAccept {
		t.Fatalf("handshake verdict %d, want accept", verdict)
	}
	writeFrame := func(m *msg.Msg) {
		t.Helper()
		frame := msg.EncodeFrame([][]byte{m.Marshal()})
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
		if _, err := conn.Write(append(hdr[:], frame...)); err != nil {
			t.Fatal(err)
		}
	}
	writeFrame(&msg.Msg{Kind: msg.KindPing, From: 1, To: 7, Payload: []byte("lost")})
	// And a well-routed one behind it, so we can sync on delivery.
	writeFrame(&msg.Msg{Kind: msg.KindPing, From: 1, To: 0, Payload: []byte("ok")})
	if m, err := a.Endpoint(0).Recv(); err != nil || string(m.Payload) != "ok" {
		t.Fatalf("got %v, %v", m, err)
	}
	if got := a.Stats().WireMisrouted(); got != 1 {
		t.Fatalf("wire.misrouted = %d, want 1", got)
	}
	_ = b
}

// TestMeshOwnerRedialFromScratchAccepted: a peer that restarted
// WITHOUT this side ever observing its death (half-open pair, no RST)
// proposes an epoch below the current generation. Because it is the
// node that dialed the current connection, the hello is an owner
// re-dial, not a stale leftover: it must be accepted, with the agreed
// epoch advanced past the current generation — rejecting it would lock
// the restarted peer out until this side happened to write.
func TestMeshOwnerRedialFromScratchAccepted(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// "Node 1" dials in at epoch 2 (as if one reconnect already
	// happened) — the current connection's dialer is node 1.
	orig, verdict, agreed := dialWithHello(t, m.Addr(), 1, 2)
	defer orig.Close()
	if verdict != helloAccept || agreed != 2 {
		t.Fatalf("establish: verdict %d agreed %d, want accept at 2", verdict, agreed)
	}
	// Node 1 "restarts" and dials again proposing epoch 1 from
	// scratch, while this side still believes the old stream is live.
	fresh, verdict, agreed := dialWithHello(t, m.Addr(), 1, 1)
	defer fresh.Close()
	if verdict != helloAccept {
		t.Fatalf("owner re-dial from scratch got verdict %d, want accept", verdict)
	}
	if agreed != 3 {
		t.Fatalf("owner re-dial agreed epoch %d, want 3 (past the replaced generation)", agreed)
	}
	if got := m.PeerEpoch(1); got != 3 {
		t.Fatalf("PeerEpoch = %d, want 3", got)
	}
	// Traffic rides the replacement.
	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	if got := readWireMsg(t, fresh); string(got.Payload) != "hi" {
		t.Fatalf("after owner re-dial, got %v", got)
	}
}

// TestMeshGoodbyeRejoinGoodbyeCycle runs a full departure → rejoin →
// departure cycle between two real meshes with the policy on: the
// second incarnation's goodbye must behave exactly like the first
// (fresh departure marker, re-armed ack wait, second wire.peer_gone),
// proving the per-pair goodbye state re-arms on reconnect.
func TestMeshGoodbyeRejoinGoodbyeCycle(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	policy := ReconnectPolicy{Enabled: true, Backoff: 20 * time.Millisecond}
	a, err := NewMeshNetwork(Topology{Self: 0, Peers: peers, Reconnect: policy}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	goneCh := make(chan msg.NodeID, 2)
	a.OnPeerGone(func(peer msg.NodeID, err error) { goneCh <- peer })
	recvCh := make(chan string, 4)
	go func() { // drive A's receive path so departure markers are consumed
		for {
			m, err := a.Endpoint(0).Recv()
			if err != nil {
				return
			}
			recvCh <- string(m.Payload)
		}
	}()

	runIncarnation := func(payload string) {
		t.Helper()
		b, err := NewMeshNetwork(Topology{Self: 1, Peers: peers, Reconnect: policy}, CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 0, Payload: []byte(payload)}); err != nil {
			t.Fatal(err)
		}
		// Wait for delivery: the goodbye drain covers established
		// pairs, so the pair must be established before Close.
		select {
		case got := <-recvCh:
			if got != payload {
				t.Fatalf("got %q, want %q", got, payload)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("incarnation %q: frame never delivered", payload)
		}
		start := time.Now()
		b.Close() // graceful goodbye; must complete promptly via the real ack
		if elapsed := time.Since(start); elapsed >= meshCloseDrain {
			t.Fatalf("incarnation %q: Close took %v, ack wait not satisfied", payload, elapsed)
		}
		select {
		case peer := <-goneCh:
			if peer != 1 {
				t.Fatalf("OnPeerGone fired for node %d, want 1", peer)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("incarnation %q: departure never surfaced", payload)
		}
	}

	runIncarnation("first life")
	runIncarnation("second life") // rejoin-after-gone, then depart again
	if got := a.Stats().WirePeerGone(); got != 2 {
		t.Fatalf("wire.peer_gone = %d after two departures, want 2", got)
	}
	if got := a.Stats().WirePeerDown(); got != 0 {
		t.Fatalf("wire.peer_down = %d across clean departures, want 0", got)
	}
	if got := a.Stats().WireReconnects(); got != 1 {
		t.Fatalf("wire.reconnects = %d, want 1 (the second incarnation's rejoin)", got)
	}
}

// TestMeshReconnectNotifyFiresBeforeTraffic: OnPeerReconnect fires
// exactly once per rejoin — on whichever side completes the handshake
// — with the fresh epoch, strictly before any frame from the new
// connection is dispatched. Protocol recovery keys off this ordering:
// state for the returning peer is rebuilt before its first message.
func TestMeshReconnectNotifyFiresBeforeTraffic(t *testing.T) {
	addrs := reserveAddrs(t, 2)
	fake, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMeshNetwork(Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
		// MaxAttempts 1 so the inbound-rejoin phase below isn't raced
		// by a background re-dial.
		Reconnect: ReconnectPolicy{Enabled: true, MaxAttempts: 1, Backoff: 10 * time.Millisecond},
	}, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	type reconn struct {
		peer  msg.NodeID
		epoch uint64
	}
	reconnCh := make(chan reconn, 4)
	m.OnPeerReconnect(func(peer msg.NodeID, epoch uint64) {
		reconnCh <- reconn{peer, epoch}
	})
	downCh := make(chan msg.NodeID, 4)
	m.OnPeerDown(func(peer msg.NodeID, epoch uint64, err error) { downCh <- peer })

	if err := m.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	conn1, _ := acceptWithHello(t, fake, 0)
	if got := readWireMsg(t, conn1); string(got.Payload) != "one" {
		t.Fatalf("got %v", got)
	}
	select {
	case r := <-reconnCh:
		t.Fatalf("notifier fired on first connect: %+v", r)
	default:
	}

	// Outage 1: wire death, then the background re-dial revives the
	// pair (this side dials out).
	conn1.Close()
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never latched down")
	}
	conn2, epoch2 := acceptWithHello(t, fake, 0)
	if epoch2 != 2 {
		t.Fatalf("re-dial proposed epoch %d, want 2", epoch2)
	}
	select {
	case r := <-reconnCh:
		if r.peer != 1 || r.epoch != 2 {
			t.Fatalf("re-dial notify = %+v, want peer 1 epoch 2", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notifier never fired after re-dial reconnect")
	}

	// Outage 2: the peer "crashes" (listener gone) and a restarted
	// incarnation dials IN from scratch. The accept path must notify
	// before the accepted connection's reader delivers anything.
	fake.Close()
	conn2.Close()
	select {
	case <-downCh:
	case <-time.After(5 * time.Second):
		t.Fatal("peer never latched down after second outage")
	}
	var conn3 net.Conn
	var verdict byte
	var agreed uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn3, verdict, agreed = dialWithHello(t, m.Addr(), 1, 1)
		if verdict == helloAccept {
			break
		}
		conn3.Close()
		if time.Now().After(deadline) {
			t.Fatal("rejoin dial never accepted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn3.Close()
	select {
	case r := <-reconnCh:
		if r.peer != 1 || r.epoch != agreed {
			t.Fatalf("rejoin notify = %+v, want peer 1 epoch %d", r, agreed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notifier never fired after inbound rejoin")
	}
	if got := m.Stats().WireReconnects(); got != 2 {
		t.Fatalf("wire.reconnects = %d, want 2", got)
	}
}

var _ = fmt.Sprint // keep fmt for debugging edits
