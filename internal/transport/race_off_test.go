//go:build !race

package transport

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-pinning tests skip.
const raceEnabled = false
