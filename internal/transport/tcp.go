package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"munin/internal/bufpool"
	"munin/internal/msg"
)

// sendQueueDepth bounds each peer connection's send queue, in messages.
// Send blocks (backpressure) when the queue is full; fences never
// count against the bound.
const sendQueueDepth = 1024

// maxFrameLen bounds a frame envelope's outer length word. Length
// words above it are control words (the mesh goodbye vocabulary), so
// the two spaces can never collide on the wire.
const maxFrameLen = 1 << 30

// TCPNetwork runs the same message abstraction over real loopback
// sockets. Every node pair has a dedicated TCP connection owned by a
// writer goroutine: senders enqueue marshalled messages on a bounded
// per-peer send queue, and the writer drains whatever is queued and
// emits it as ONE multi-message frame (msg.EncodeFrame layout) via a
// single vectored write (net.Buffers). That is what keeps a batched
// protocol flush at O(1) wire writes per destination instead of one
// write syscall per message. Flush is the fence that waits for queued
// messages to reach the wire.
type TCPNetwork struct {
	eps      []*tcpEndpoint
	stats    *Stats
	cost     CostModel
	ln       net.Listener
	mu       sync.Mutex
	closed   bool
	wg       sync.WaitGroup // accept loop + per-conn readers
	writerWG sync.WaitGroup // per-peer writer goroutines
}

// NewTCPNetwork creates an n-node network over loopback TCP. All nodes
// live in this process but every message traverses the OS socket layer.
func NewTCPNetwork(n int, cost CostModel) (*TCPNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: need at least one node")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tn := &TCPNetwork{stats: newStats(n), cost: cost, ln: ln}
	tn.eps = make([]*tcpEndpoint, n)
	for i := range tn.eps {
		tn.eps[i] = &tcpEndpoint{net: tn, node: msg.NodeID(i), q: newQueue()}
	}

	// Accept loop: each inbound connection carries one sender->receiver
	// stream of frames; messages are routed to destination queues by
	// their headers.
	tn.wg.Add(1)
	go func() {
		defer tn.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			tn.wg.Add(1)
			go func() {
				defer tn.wg.Done()
				tn.serveConn(conn)
			}()
		}
	}()

	// Each node dials one connection per peer; each connection gets a
	// bounded send queue and a dedicated writer goroutine.
	for i := range tn.eps {
		tn.eps[i].peers = make([]*tcpPeer, n)
		for j := range tn.eps[i].peers {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				tn.Close()
				return nil, err
			}
			p := &tcpPeer{conn: conn, q: newSendQueue(sendQueueDepth, tn.stats.chargeStall)}
			tn.eps[i].peers[j] = p
			tn.writerWG.Add(1)
			go func(ep *tcpEndpoint) {
				defer tn.writerWG.Done()
				ep.writeLoop(p)
			}(tn.eps[i])
		}
	}
	return tn, nil
}

// serveConn reads frames from one sender connection and routes the
// contained messages to destination queues.
func (tn *TCPNetwork) serveConn(conn net.Conn) {
	defer conn.Close()
	readFrameStream(bufio.NewReader(conn), func(entry []byte, m *msg.Msg) {
		if int(m.To) >= len(tn.eps) || m.To < 0 {
			return
		}
		if tn.eps[m.To].q.push(entry) == nil {
			tn.stats.delivered(m.To)
		}
	}, nil)
}

// readFrameStream is the inbound wire path shared by the loopback
// harness and the mesh: it reads length-prefixed frame envelopes from r
// and invokes deliver for every contained message until the stream ends
// or a frame fails to decode. entry is the still-marshalled message
// (aliasing the frame buffer); m is its decoded header.
//
// Length words above maxFrameLen are control words, not frames: when
// ctrl is non-nil it is invoked with the word and decides whether the
// stream continues (the mesh's goodbye vocabulary rides here); when
// ctrl is nil any such word kills the stream, exactly the pre-control
// behavior the loopback harness keeps.
func readFrameStream(r *bufio.Reader, deliver func(entry []byte, m *msg.Msg), ctrl func(word uint32) bool) {
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n > maxFrameLen {
			if ctrl != nil && ctrl(n) {
				continue
			}
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(r, frame); err != nil {
			return
		}
		entries, err := msg.DecodeFrameRaw(frame)
		if err != nil {
			return
		}
		for _, entry := range entries {
			m, err := msg.Unmarshal(entry)
			if err != nil {
				return
			}
			deliver(entry, m)
		}
	}
}

// Endpoint implements Network.
func (tn *TCPNetwork) Endpoint(id msg.NodeID) Endpoint { return tn.eps[id] }

// Nodes implements Network.
func (tn *TCPNetwork) Nodes() int { return len(tn.eps) }

// Stats implements Network.
func (tn *TCPNetwork) Stats() *Stats { return tn.stats }

// Multicast falls back to unicast sends (no hardware multicast on TCP),
// charging one wire message per member — exactly the penalty the paper
// notes for refresh without multicast support. The copies are enqueued,
// not flushed: each member's writer coalesces its copy with whatever
// else is bound for that peer.
func (tn *TCPNetwork) Multicast(m *msg.Msg, members []msg.NodeID) error {
	for _, dst := range members {
		cp := *m
		cp.To = dst
		if err := tn.eps[m.From].Send(&cp); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the network down in an order that quiesces the writer
// pipeline deterministically:
//
//  1. send queues close — blocked or late senders get ErrClosed;
//  2. writers drain what was already queued onto the wire and exit, so
//     nothing ever writes on a closed connection;
//  3. the write sides shut down, giving each reader a clean EOF after
//     it has consumed every drained frame;
//  4. readers exit, having routed everything that made it to the wire;
//  5. receive queues close — blocked Recv calls return ErrClosed.
func (tn *TCPNetwork) Close() error {
	tn.mu.Lock()
	if tn.closed {
		tn.mu.Unlock()
		return nil
	}
	tn.closed = true
	tn.mu.Unlock()

	for _, ep := range tn.eps {
		for _, p := range ep.peers {
			if p != nil {
				p.q.close()
			}
		}
	}
	tn.writerWG.Wait()
	for _, ep := range tn.eps {
		for _, p := range ep.peers {
			if p == nil {
				continue
			}
			if tc, ok := p.conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				p.conn.Close()
			}
		}
	}
	tn.ln.Close()
	tn.wg.Wait()
	for _, ep := range tn.eps {
		ep.q.close()
	}
	for _, ep := range tn.eps {
		for _, p := range ep.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	}
	return nil
}

type tcpEndpoint struct {
	net   *TCPNetwork
	node  msg.NodeID
	q     *queue     // receive side
	peers []*tcpPeer // outgoing pipeline, one per destination node
}

// tcpPeer is one node's outgoing connection to one peer: a bounded send
// queue drained by a dedicated writer goroutine.
type tcpPeer struct {
	conn net.Conn
	q    *sendQueue
}

func (e *tcpEndpoint) Node() msg.NodeID { return e.node }

// Send implements Endpoint: marshal, charge, and queue on the
// destination peer's writer, which coalesces the message with whatever
// else is bound for that peer. It does not wait for the wire — Flush
// is the fence.
func (e *tcpEndpoint) Send(m *msg.Msg) error {
	if int(m.To) >= len(e.peers) || m.To < 0 {
		return fmt.Errorf("transport: send to unknown node %d", m.To)
	}
	m.From = e.node
	enc := m.Marshal()
	e.net.stats.charge(m, e.net.cost, e.node)
	return e.peers[m.To].q.put(sendItem{enc: enc, class: ClassOf(m.Kind)})
}

// SendOwned implements EncodedSender: enqueue an already-marshalled
// wire buffer, taking ownership. The buffer is released by the writer
// after its vectored write completes — or right here on any failure —
// so the hot path moves payload bytes exactly once (diff scratch →
// wire buffer) and the kernel copies them off the iovec.
func (e *tcpEndpoint) SendOwned(wb *bufpool.Buffer) error {
	kind, to, err := msg.PeekHeader(wb.B)
	if err != nil {
		wb.Release()
		return err
	}
	if int(to) >= len(e.peers) || to < 0 {
		wb.Release()
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	msg.SetFrom(wb.B, e.node)
	e.net.stats.chargeEncoded(kind, len(wb.B), e.net.cost, e.node)
	if err := e.peers[to].q.put(sendItem{enc: wb.B, own: wb, class: ClassOf(kind)}); err != nil {
		wb.Release()
		return err
	}
	return nil
}

// Flush implements Endpoint: fence every peer queue and wait until all
// messages enqueued before the call have been written to the sockets.
func (e *tcpEndpoint) Flush() error {
	fs := getFenceSet()
	defer fs.release()
	for _, p := range e.peers {
		ch := getFence()
		if err := p.q.put(sendItem{fence: ch}); err != nil {
			// Queue already closed: nothing of ours remains unwritten
			// beyond what the shutdown drain handles. The fences already
			// enqueued are abandoned, not pooled — a writer may still
			// send into them.
			return err
		}
		fs.chans = append(fs.chans, ch)
	}
	var first error
	for _, ch := range fs.chans {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
		putFence(ch)
	}
	return first
}

func (e *tcpEndpoint) Recv() (*msg.Msg, error) {
	it, err := e.q.pop()
	if err != nil {
		return nil, err
	}
	return msg.Unmarshal(it.buf)
}

// writeLoop is one peer connection's writer: it drains whatever is
// queued and emits it as one vectored write, then satisfies any fences
// that were queued behind those messages. A write error is latched on
// the queue: the failed batch's messages are gone, so every later send
// or fence on this peer must fail loudly rather than let callers wait
// for replies that can never come.
func (e *tcpEndpoint) writeLoop(p *tcpPeer) {
	ws := &writeScratch{}
	for {
		items, ok := p.q.drain()
		if len(items) > 0 {
			err := p.q.err()
			if err == nil {
				if err = e.writeBatch(p, items, ws); err != nil {
					p.q.fail(err)
				}
			}
			// The batch is finished (written or failed): satisfy fences
			// and release owned buffers — this is the explicit release
			// point for pooled wire buffers handed over via SendOwned —
			// then recycle the batch's backing storage to the queue.
			for _, it := range items {
				if it.fence != nil {
					it.fence <- err
				}
				it.own.Release()
			}
			p.q.recycle(items)
		}
		if !ok {
			return
		}
	}
}

// writeBatch emits every message in items as frame envelopes — split
// only by the msg.MaxFrameMessages cap — issued to the socket as a
// single vectored write.
func (e *tcpEndpoint) writeBatch(p *tcpPeer, items []sendItem, ws *writeScratch) error {
	frames, shared, err := writeItems(p.conn, items, ws)
	if err != nil {
		if e.net.isClosed() {
			return ErrClosed
		}
		return err
	}
	if frames > 0 {
		// One wire.writes tick per successful WriteTo. That is one write
		// *operation*; the OS may split very large iovec lists (IOV_MAX)
		// into a few syscalls, which this counter deliberately does not
		// model — it measures the coalescing, not the kernel's chunking.
		e.net.stats.chargeWire(frames, shared)
	}
	return nil
}

// writeScratch is one writer goroutine's reusable frame-assembly
// storage: the frame headers/entry prefixes, the iovec list handed to
// net.Buffers.WriteTo, and the coalescing-accounting class list. Each
// drain rebuilds all three from [:0], so the capacities grow to the
// peer's steady batch shape once and every later drain assembles its
// vectored write with zero heap allocations.
type writeScratch struct {
	hdr    []byte
	bufs   net.Buffers
	shared []string
	// io is the consumable slice header handed to net.Buffers.WriteTo,
	// which advances it as bytes drain. WriteTo takes its receiver's
	// address through an interface, so calling it on a stack local
	// heap-escapes the header — one allocation per drain. Living here
	// (ws is allocated once per writer) the address is already on the
	// heap and the write is allocation-free.
	io net.Buffers
}

// writeItems is the outbound wire path shared by the loopback harness
// and the mesh: it lays the batch's messages out as frame envelopes —
// split only by the msg.MaxFrameMessages cap — and issues them to the
// connection as a single vectored write. Control words ride at the end
// of the same write (a drained batch never holds data queued after a
// goodbye: the queue closes right behind it, and a goodbye-ack's order
// against data is immaterial). It returns the number of frames emitted
// and the traffic classes of messages that shared a frame with at
// least one other (for coalescing accounting; the slice aliases
// ws.shared and is valid until the next writeItems on the same ws);
// frames is 0 when items held only fences or control words.
func writeItems(conn net.Conn, items []sendItem, ws *writeScratch) (frames int, shared []string, err error) {
	hdr := ws.hdr[:0]
	bufs := ws.bufs[:0]
	shared = ws.shared[:0]
	count, ctrls := 0, 0
	for _, it := range items {
		if it.enc != nil {
			count++
		} else if it.ctrl != 0 {
			ctrls++
		}
	}
	if count == 0 && ctrls == 0 {
		return 0, nil, nil
	}
	if count == 0 {
		for _, it := range items {
			if it.ctrl != 0 {
				hdr = binary.BigEndian.AppendUint32(hdr, it.ctrl)
			}
		}
		ws.hdr = hdr
		if _, werr := conn.Write(hdr); werr != nil {
			return 0, nil, werr
		}
		return 0, nil, nil
	}

	// Lay the frames out. Each frame contributes [4B outer length]
	// [4B message count], then per message [uvarint length][bytes]; the
	// headers and prefixes live in hdr and the message bytes are
	// referenced in place, so the whole batch goes out without copying
	// payloads.
	frames = (count + msg.MaxFrameMessages - 1) / msg.MaxFrameMessages
	i := 0
	for f := 0; f < frames; f++ {
		k := count - f*msg.MaxFrameMessages
		if k > msg.MaxFrameMessages {
			k = msg.MaxFrameMessages
		}
		// Outer length = frame header + per-message prefixes + bodies.
		frameLen := 4
		j := i
		for n := 0; n < k; n++ {
			for items[j].enc == nil {
				j++
			}
			frameLen += uvarintLen(len(items[j].enc)) + len(items[j].enc)
			j++
		}
		mark := len(hdr)
		hdr = binary.BigEndian.AppendUint32(hdr, uint32(frameLen))
		hdr = msg.AppendFrameHeader(hdr, k)
		bufs = append(bufs, hdr[mark:])
		for n := 0; n < k; n++ {
			for items[i].enc == nil {
				i++
			}
			mark = len(hdr)
			hdr = msg.AppendEntryPrefix(hdr, len(items[i].enc))
			bufs = append(bufs, hdr[mark:], items[i].enc)
			if k > 1 {
				shared = append(shared, items[i].class)
			}
			i++
		}
	}

	if ctrls > 0 {
		mark := len(hdr)
		for _, it := range items {
			if it.ctrl != 0 {
				hdr = binary.BigEndian.AppendUint32(hdr, it.ctrl)
			}
		}
		bufs = append(bufs, hdr[mark:])
	}

	// Store the grown slices back BEFORE the write: WriteTo consumes the
	// list it is given (advancing both the slice and its elements as
	// bytes drain), so it gets its own header over the same backing
	// array while ws keeps the full-capacity storage for the next drain.
	ws.hdr = hdr
	ws.bufs = bufs
	ws.shared = shared
	ws.io = bufs
	if _, err := ws.io.WriteTo(conn); err != nil {
		return 0, nil, err
	}
	return frames, shared, nil
}

func (tn *TCPNetwork) isClosed() bool {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.closed
}

// uvarintLen returns the encoded size of n as a uvarint.
func uvarintLen(n int) int {
	l := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		l++
	}
	return l
}

// sendItem is one unit in a peer's send queue: a marshalled message, a
// fence awaiting write completion of everything queued before it, or a
// control word (the mesh goodbye vocabulary) emitted verbatim as a
// 4-byte length word outside the frame space.
type sendItem struct {
	enc   []byte          // marshalled message; nil for a fence or control word
	own   *bufpool.Buffer // pooled buffer backing enc (SendOwned); released by the writer
	class string          // traffic class, for coalescing accounting
	fence chan error
	ctrl  uint32 // control word (> maxFrameLen); 0 for messages/fences
}

// sendQueue is the bounded MPSC queue feeding one peer connection's
// writer goroutine.
type sendQueue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	items    []sendItem
	free     []sendItem // writer-recycled batch storage; next drain's items
	queued   int        // message items only; fences are exempt from the bound
	limit    int
	closed   bool
	failed   error       // latched first write error; the peer is dead
	rejected error       // soft latch: new puts fail, queued items still drain (peer departed)
	held     bool        // test hook: writer pauses so tests can stage a batch
	onStall  func(int64) // backpressure accounting: ns a put spent blocked
}

func newSendQueue(limit int, onStall func(int64)) *sendQueue {
	q := &sendQueue{limit: limit, onStall: onStall}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// put appends an item, blocking while the queue is at its bound. A
// sender blocked here when the queue closes is woken with ErrClosed; a
// latched write error fails the send immediately (the peer is dead and
// the writer only discards). Time spent blocked is reported through
// onStall (the wire.queue_stall counters) so saturated peers show up
// in benchmark output rather than as silent latency.
func (q *sendQueue) put(it sendItem) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if it.enc != nil && q.queued >= q.limit && !q.closed && q.failed == nil && q.rejected == nil {
		start := time.Now()
		for it.enc != nil && q.queued >= q.limit && !q.closed && q.failed == nil && q.rejected == nil {
			q.notFull.Wait()
		}
		if q.onStall != nil {
			q.onStall(time.Since(start).Nanoseconds())
		}
	}
	if q.closed {
		return ErrClosed
	}
	if q.failed != nil {
		return q.failed
	}
	if q.rejected != nil && it.ctrl == 0 {
		// Control words bypass the soft latch: the goodbye-ack must
		// still drain to a peer whose departure set the latch.
		return q.rejected
	}
	q.items = append(q.items, it)
	if it.enc != nil {
		q.queued++
	}
	q.notEmpty.Signal()
	return nil
}

// drain removes and returns everything queued. It blocks while the
// queue is empty (or held by the test hook). ok=false means the queue
// is closed AND fully drained: the writer must exit after handling the
// returned items — already-queued messages still reach the wire, which
// is what makes shutdown deterministic.
func (q *sendQueue) drain() (items []sendItem, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for (len(q.items) == 0 || q.held) && !q.closed {
		q.notEmpty.Wait()
	}
	items = q.items
	// Double-buffer: senders append into the storage the writer recycled
	// from the previous batch while the writer processes this one, so
	// steady-state puts allocate nothing.
	q.items = q.free
	q.free = nil
	q.queued = 0
	q.notFull.Broadcast()
	return items, !q.closed || len(items) > 0
}

// recycle returns a drained batch's backing storage for reuse. The
// writer calls it only after the batch is fully processed — owners
// released, fences signalled — and never touches the slice again;
// clearing drops the buffer/channel references so recycled storage
// pins nothing.
func (q *sendQueue) recycle(items []sendItem) {
	if cap(items) == 0 {
		return
	}
	clear(items)
	q.mu.Lock()
	if q.free == nil {
		q.free = items[:0]
	}
	q.mu.Unlock()
}

func (q *sendQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
	q.mu.Unlock()
}

// fail latches the first write error and wakes blocked senders so they
// observe it.
func (q *sendQueue) fail(err error) {
	q.mu.Lock()
	if q.failed == nil {
		q.failed = err
	}
	q.notFull.Broadcast()
	q.mu.Unlock()
}

// reject soft-latches the queue: new puts fail with err, but items
// already queued (and the writer draining them) are unaffected — a
// departed peer still reads until its goodbye is acknowledged, so
// residual traffic may drain to it even though new sends must not
// start.
func (q *sendQueue) reject(err error) {
	q.mu.Lock()
	if q.rejected == nil {
		q.rejected = err
	}
	q.notFull.Broadcast()
	q.mu.Unlock()
}

// clearFail lifts both latches after a successful reconnect: the pair
// has a fresh connection generation, so new sends may flow again.
// Nothing queued before the latch survives to be replayed — senders
// already observed their failures.
func (q *sendQueue) clearFail() {
	q.mu.Lock()
	q.failed = nil
	q.rejected = nil
	q.mu.Unlock()
}

// err returns the latched write error, if any.
func (q *sendQueue) err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failed
}

// hold/release pause and resume the writer's draining (tests only).
func (q *sendQueue) hold() {
	q.mu.Lock()
	q.held = true
	q.mu.Unlock()
}

func (q *sendQueue) release() {
	q.mu.Lock()
	q.held = false
	q.notEmpty.Broadcast()
	q.mu.Unlock()
}
