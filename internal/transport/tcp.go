package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"munin/internal/msg"
)

// TCPNetwork runs the same message abstraction over real loopback
// sockets. Each node pair shares one TCP connection; frames are
// length-prefixed. It exists to demonstrate the runtime is not tied to
// the in-process simulation and to exercise the codec against a real
// byte stream.
type TCPNetwork struct {
	eps    []*tcpEndpoint
	stats  *Stats
	cost   CostModel
	ln     net.Listener
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewTCPNetwork creates an n-node network over loopback TCP. All nodes
// live in this process but every message traverses the OS socket layer.
func NewTCPNetwork(n int, cost CostModel) (*TCPNetwork, error) {
	if n <= 0 {
		return nil, fmt.Errorf("transport: need at least one node")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	tn := &TCPNetwork{stats: newStats(n), cost: cost, ln: ln}
	tn.eps = make([]*tcpEndpoint, n)
	for i := range tn.eps {
		tn.eps[i] = &tcpEndpoint{net: tn, node: msg.NodeID(i), q: newQueue()}
	}

	// Accept loop: each inbound connection carries frames from one
	// sender; frames are routed to destination queues by header.
	tn.wg.Add(1)
	go func() {
		defer tn.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			tn.wg.Add(1)
			go func() {
				defer tn.wg.Done()
				tn.serveConn(conn)
			}()
		}
	}()

	// Each node dials one outgoing connection used for all its sends.
	for i := range tn.eps {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			tn.Close()
			return nil, err
		}
		tn.eps[i].conn = conn
		tn.eps[i].w = bufio.NewWriter(conn)
	}
	return tn, nil
}

// serveConn reads frames from one sender connection and routes them to
// destination queues.
func (tn *TCPNetwork) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n > 1<<30 {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(r, frame); err != nil {
			return
		}
		m, err := msg.Unmarshal(frame)
		if err != nil {
			return
		}
		if int(m.To) >= len(tn.eps) || m.To < 0 {
			continue
		}
		if tn.eps[m.To].q.push(frame) == nil {
			tn.stats.delivered(m.To)
		}
	}
}

// Endpoint implements Network.
func (tn *TCPNetwork) Endpoint(id msg.NodeID) Endpoint { return tn.eps[id] }

// Nodes implements Network.
func (tn *TCPNetwork) Nodes() int { return len(tn.eps) }

// Stats implements Network.
func (tn *TCPNetwork) Stats() *Stats { return tn.stats }

// Multicast falls back to unicast sends (no hardware multicast on TCP),
// charging one wire message per member — exactly the penalty the paper
// notes for refresh without multicast support.
func (tn *TCPNetwork) Multicast(m *msg.Msg, members []msg.NodeID) error {
	for _, dst := range members {
		cp := *m
		cp.To = dst
		if err := tn.eps[m.From].Send(&cp); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Network.
func (tn *TCPNetwork) Close() error {
	tn.mu.Lock()
	if tn.closed {
		tn.mu.Unlock()
		return nil
	}
	tn.closed = true
	tn.mu.Unlock()
	tn.ln.Close()
	for _, ep := range tn.eps {
		ep.q.close()
		ep.mu.Lock()
		if ep.conn != nil {
			ep.conn.Close()
		}
		ep.mu.Unlock()
	}
	tn.wg.Wait()
	return nil
}

type tcpEndpoint struct {
	net  *TCPNetwork
	node msg.NodeID
	q    *queue
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

func (e *tcpEndpoint) Node() msg.NodeID { return e.node }

func (e *tcpEndpoint) Send(m *msg.Msg) error {
	m.From = e.node
	frame := m.Marshal()
	e.net.stats.charge(m, e.net.cost, e.node)
	var lenbuf [4]byte
	binary.BigEndian.PutUint32(lenbuf[:], uint32(len(frame)))
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn == nil {
		return ErrClosed
	}
	if _, err := e.w.Write(lenbuf[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(frame); err != nil {
		return err
	}
	return e.w.Flush()
}

func (e *tcpEndpoint) Recv() (*msg.Msg, error) {
	buf, err := e.q.pop()
	if err != nil {
		return nil, err
	}
	return msg.Unmarshal(buf)
}
