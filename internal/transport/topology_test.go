package transport

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"munin/internal/msg"
)

func TestParsePeersValid(t *testing.T) {
	topo, err := ParsePeers("0=127.0.0.1:7000, 1=127.0.0.1:7001", 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Nodes() != 2 || topo.Self != 1 {
		t.Fatalf("topology = %+v", topo)
	}
	if topo.Addr(0) != "127.0.0.1:7000" || topo.Addr(1) != "127.0.0.1:7001" {
		t.Fatalf("addresses = %q, %q", topo.Addr(0), topo.Addr(1))
	}
}

func TestParsePeersFailures(t *testing.T) {
	cases := []struct {
		name, spec string
		self       msg.NodeID
		wantSub    string
	}{
		{"empty", "", 0, "no peers"},
		{"no equals", "0:127.0.0.1:7000", 0, "not id=host:port"},
		{"bad id", "x=127.0.0.1:7000", 0, "bad node ID"},
		{"negative id", "-1=127.0.0.1:7000", 0, "bad node ID"},
		{"duplicate", "0=a:1,0=b:2", 0, "duplicate node 0"},
		{"not dense", "0=a:1,2=b:2", 0, "not dense"},
		{"empty addr", "0=a:1,1=", 0, "empty address"},
		{"no port", "0=a:1,1=b", 0, "not host:port"},
		{"self out of range", "0=a:1,1=b:2", 5, "self 5 not in 0..1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePeers(tc.spec, tc.self)
			if err == nil {
				t.Fatalf("ParsePeers(%q, %d) succeeded, want error containing %q", tc.spec, tc.self, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	in := Topology{Self: 1, Peers: map[msg.NodeID]string{0: "h0:1", 1: "h1:2", 2: "h2:3"}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Topology
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Self != in.Self || len(out.Peers) != len(in.Peers) {
		t.Fatalf("round trip lost data: %+v", out)
	}
	for id, addr := range in.Peers {
		if out.Peers[id] != addr {
			t.Fatalf("node %d address %q != %q", id, out.Peers[id], addr)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `{"self": 1, "peers": {"0": "127.0.0.1:7000", "1": "127.0.0.1:7001"}}`)
	topo, err := LoadTopology(good)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Self != 1 || topo.Addr(0) != "127.0.0.1:7000" {
		t.Fatalf("loaded %+v", topo)
	}

	for name, tc := range map[string]struct{ content, wantSub string }{
		"syntax":    {`{"self": 0`, "topology"},
		"bad key":   {`{"self": 0, "peers": {"zero": "a:1"}}`, "not a node ID"},
		"bad self":  {`{"self": 9, "peers": {"0": "a:1"}}`, "self 9"},
		"not dense": {`{"self": 0, "peers": {"0": "a:1", "3": "b:2"}}`, "not dense"},
		"no port":   {`{"self": 0, "peers": {"0": "justahost"}}`, "not host:port"},
	} {
		t.Run(name, func(t *testing.T) {
			p := write(name+".json", tc.content)
			if _, err := LoadTopology(p); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("LoadTopology(%s) = %v, want error containing %q", name, err, tc.wantSub)
			}
		})
	}

	if _, err := LoadTopology(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
