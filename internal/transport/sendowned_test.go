package transport

import (
	"runtime/debug"
	"sync"
	"testing"

	"munin/internal/bufpool"
	"munin/internal/msg"
)

// newSinkMesh builds a single-process mesh whose only peer is a
// RawSink: everything node 0 sends to node 1 crosses a real TCP
// connection and is discarded without allocating on the receive side.
func newSinkMesh(t testing.TB) (*MeshNetwork, *RawSink) {
	t.Helper()
	sink, err := NewRawSink()
	if err != nil {
		t.Fatal(err)
	}
	peers := map[msg.NodeID]string{0: "127.0.0.1:0", 1: sink.Addr()}
	m, err := NewMeshNetwork(Topology{Self: 0, Peers: peers}, CostModel{})
	if err != nil {
		sink.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		// Kill, not Close: the sink acks goodbyes, but there is no
		// reason to spend the graceful drain in a test teardown.
		m.Kill()
		sink.Close()
	})
	return m, sink
}

// wireMsg builds a complete pooled wire message: header plus a payload
// of n bytes, each set to fill.
func wireMsg(to msg.NodeID, seq uint64, n int, fill byte) *bufpool.Buffer {
	wb := bufpool.Get(msg.HeaderSize + n)
	var b msg.Builder
	b.Reset(wb.B)
	b.Skip(msg.HeaderSize + n)
	wb.B = b.Bytes()
	for i := msg.HeaderSize; i < len(wb.B); i++ {
		wb.B[i] = fill
	}
	msg.FillHeader(wb.B, msg.KindPing, 0, 0, to, seq)
	return wb
}

// TestMeshSendOwnedZeroAllocs pins the tentpole guarantee: a
// steady-state flush on the send wire path — pooled encode, SendOwned
// hand-off, writer drain, fence — performs zero heap allocations.
// AllocsPerRun counts mallocs process-wide, which is why the receiver
// is a RawSink rather than a second endpoint.
func TestMeshSendOwnedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	m, _ := newSinkMesh(t)
	ep := m.Endpoint(0)
	es := ep.(EncodedSender)

	seq := uint64(0)
	send := func() {
		seq++
		if err := es.SendOwned(wireMsg(1, seq, 128, byte(seq))); err != nil {
			t.Fatal(err)
		}
		if err := ep.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Warmup: dial the connection, fault in the stats counters, grow
	// the queue/writer scratch and pools to steady-state capacity.
	for i := 0; i < 64; i++ {
		send()
	}

	// The GC clears sync.Pools; disable it so a collection mid-measure
	// cannot manufacture allocations that steady state never performs.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("steady-state SendOwned+Flush allocated %v times per op, want 0", allocs)
	}
}

// TestMeshSendOwnedNoAliasing hammers the ownership hand-off from many
// goroutines while aggressively churning the pool, and verifies on a
// real receiving mesh that no in-flight message was scribbled by a
// reused buffer. Run under -race this also catches any writer/pool
// data race directly.
func TestMeshSendOwnedNoAliasing(t *testing.T) {
	a, b := newMeshPair(t)
	es := b.Endpoint(1).(EncodedSender)

	const senders = 4
	const perSender = 200
	var wg sync.WaitGroup
	errc := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				seq := uint64(g*perSender + i)
				if err := es.SendOwned(wireMsg(0, seq, 64, byte(seq))); err != nil {
					errc <- err
					return
				}
				// Provoke reuse: grab a pooled buffer of the same class
				// and scribble it. If the transport released the sent
				// buffer before the wire write finished, this scribble
				// lands in an in-flight frame and the receiver sees it.
				sb := bufpool.Get(msg.HeaderSize + 64)
				junk := sb.B[:cap(sb.B)]
				for j := range junk {
					junk[j] = 0xEE
				}
				sb.Release()
			}
		}(g)
	}
	go func() { wg.Wait(); close(errc) }()

	for got := 0; got < senders*perSender; got++ {
		mm, err := a.Endpoint(0).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(mm.Payload) != 64 {
			t.Fatalf("msg seq=%d: payload %d bytes, want 64", mm.Seq, len(mm.Payload))
		}
		want := byte(mm.Seq)
		for j, v := range mm.Payload {
			if v != want {
				t.Fatalf("msg seq=%d corrupted at byte %d: got %#x want %#x", mm.Seq, j, v, want)
			}
		}
	}
	for err := range errc {
		t.Fatal(err)
	}
}

// BenchmarkMeshSendOwnedFlush measures the full send wire path per
// flushed message: pooled build, SendOwned, writer drain, fence.
func BenchmarkMeshSendOwnedFlush(b *testing.B) {
	m, _ := newSinkMesh(b)
	ep := m.Endpoint(0)
	es := ep.(EncodedSender)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := es.SendOwned(wireMsg(1, uint64(i), 128, byte(i))); err != nil {
			b.Fatal(err)
		}
		if err := ep.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}
