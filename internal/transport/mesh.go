package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"munin/internal/msg"
)

// Mesh connect handshake. Every connection opens with a fixed-size
// hello frame — magic, protocol version, the dialer's node ID — and the
// acceptor answers with a single accept/reject byte. The hello is what
// makes connections attributable (the acceptor learns who is on the
// other end before any traffic flows) and the version field is what
// lets a future frame-format change fail loudly instead of desyncing
// the stream.
const (
	meshMagic        = "MUNm"
	meshProtoVersion = 1
	helloLen         = 4 + 2 + 4 // magic + version + node ID
	helloAccept      = 1
	helloReject      = 0
)

// Dial/handshake tuning. Dials retry briefly (a peer process may be a
// beat behind in binding its listener); once the retries are exhausted
// the peer is latched down.
const (
	meshDialAttempts     = 4
	meshDialBackoff      = 50 * time.Millisecond
	meshDialTimeout      = 1 * time.Second
	meshHandshakeTimeout = 2 * time.Second
	// meshInboundWait bounds how long a dialer whose handshake was
	// rejected (it lost the duplicate-connection tiebreak) waits for
	// the winning inbound connection to be installed.
	meshInboundWait = 2 * time.Second
	// meshCloseDrain bounds how long Close waits for peers to finish
	// reading drained frames before reader connections are torn down.
	meshCloseDrain = 2 * time.Second
)

func encodeHello(self msg.NodeID) []byte {
	b := make([]byte, 0, helloLen)
	b = append(b, meshMagic...)
	b = binary.BigEndian.AppendUint16(b, meshProtoVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(self))
	return b
}

// MeshNetwork is the multi-process transport: one Network per OS
// process, holding exactly one usable endpoint (the topology's self
// node) and reaching every other node over real TCP connections at the
// addresses the Topology names. It is the layer that takes the writer
// pipeline off loopback: the per-peer send queues, coalescing writers,
// and frame codec are exactly the ones TCPNetwork uses — what changes
// is connection lifecycle (lazy dialing with a hello handshake instead
// of a fixed all-pairs dial at construction) and failure semantics
// (wire death latches an ErrPeerDown instead of being impossible).
//
// Connections are bidirectional and one per node pair: whichever side
// needs to send first dials, and the acceptor attributes the
// connection from the hello frame. If both sides dial at once the
// duplicate is resolved deterministically — the connection dialed by
// the lower node ID survives, the other is closed — so the pair always
// converges on a single stream with no configuration-order dependence.
//
// Failure: when a peer's dial fails (after brief retries), a write
// errors, or an established connection's read side dies, the peer is
// latched down. Later Sends fail fast with *ErrPeerDown, queued fences
// observe it, and registered OnPeerDown callbacks fire exactly once per
// peer — vkernel uses that to fail the pending calls whose replies can
// never arrive. There is no automatic reconnect after a latch (see
// ROADMAP).
type MeshNetwork struct {
	topo  Topology
	stats *Stats
	cost  CostModel
	ln    net.Listener
	ep    *meshEndpoint

	mu     sync.Mutex
	peers  map[msg.NodeID]*meshPeer
	conns  map[net.Conn]struct{} // every installed connection, for Close's teardown sweep
	onDown []func(msg.NodeID, error)
	closed bool

	wg       sync.WaitGroup // accept loop + per-connection readers
	writerWG sync.WaitGroup // per-peer writer goroutines
}

// NewMeshNetwork binds the topology's self address and starts the
// accept loop. No peer connections are opened yet — dialing is lazy,
// triggered by the first Send to each peer.
func NewMeshNetwork(topo Topology, cost CostModel) (*MeshNetwork, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", topo.Addr(topo.Self))
	if err != nil {
		return nil, fmt.Errorf("transport: mesh listen %s: %w", topo.Addr(topo.Self), err)
	}
	m := &MeshNetwork{
		topo:  topo,
		stats: newStats(topo.Nodes()),
		cost:  cost,
		ln:    ln,
		peers: make(map[msg.NodeID]*meshPeer),
		conns: make(map[net.Conn]struct{}),
	}
	m.ep = &meshEndpoint{m: m, q: newQueue()}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.handleInbound(conn)
			}()
		}
	}()
	return m, nil
}

// Addr returns the address the mesh actually bound (useful when the
// topology named port 0).
func (m *MeshNetwork) Addr() string { return m.ln.Addr().String() }

// Self returns this process's node ID.
func (m *MeshNetwork) Self() msg.NodeID { return m.topo.Self }

// Endpoint implements Network. Only the self node's endpoint exists in
// this process; asking for any other is a programming error.
func (m *MeshNetwork) Endpoint(n msg.NodeID) Endpoint {
	if n != m.topo.Self {
		panic(fmt.Sprintf("transport: mesh process for node %d has no endpoint for node %d",
			m.topo.Self, n))
	}
	return m.ep
}

// Nodes implements Network.
func (m *MeshNetwork) Nodes() int { return m.topo.Nodes() }

// Stats implements Network. The accounting covers this process's
// traffic only — each mesh member counts what it sends and receives.
func (m *MeshNetwork) Stats() *Stats { return m.stats }

// Multicast falls back to unicast sends, like TCPNetwork: each member's
// copy is enqueued on that peer's coalescing writer.
func (m *MeshNetwork) Multicast(mm *msg.Msg, members []msg.NodeID) error {
	for _, dst := range members {
		cp := *mm
		cp.To = dst
		if err := m.ep.Send(&cp); err != nil {
			return err
		}
	}
	return nil
}

// OnPeerDown implements PeerDownNotifier.
func (m *MeshNetwork) OnPeerDown(fn func(peer msg.NodeID, err error)) {
	m.mu.Lock()
	m.onDown = append(m.onDown, fn)
	m.mu.Unlock()
}

func (m *MeshNetwork) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// registerConn records an about-to-be-installed connection for Close's
// teardown sweep. It refuses once the mesh is closing, so no reader
// can attach to a connection the sweep will never see — the installer
// must close the connection and back out.
func (m *MeshNetwork) registerConn(c net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[c] = struct{}{}
	return true
}

// Close quiesces the mesh with the same discipline as TCPNetwork: send
// queues close first (blocked senders get ErrClosed), writers drain
// what was queued onto the wire and exit, write sides shut down so
// remote readers get a clean EOF, then local readers are torn down
// (bounded by meshCloseDrain if the remote side lingers) and the
// receive queue reports ErrClosed.
func (m *MeshNetwork) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	peers := make([]*meshPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()

	// Snapshot every installed connection (the registry, not the peer
	// snapshot: once closed is set, registerConn refuses new installs,
	// so this set is final). Give the write side a drain budget first —
	// a writer blocked in WriteTo against a stalled peer (full send
	// buffer, remote not reading) would otherwise hang writerWG.Wait
	// forever, since the connection teardown sits after the wait.
	m.mu.Lock()
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	for _, conn := range conns {
		conn.SetWriteDeadline(time.Now().Add(meshCloseDrain))
	}
	for _, p := range peers {
		p.q.close()
	}
	m.writerWG.Wait()
	// Write sides shut down: CloseWrite gives the remote a clean EOF
	// once it has consumed the drained frames; the read deadline bounds
	// our own reader if the remote lingers.
	for _, conn := range conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		conn.SetReadDeadline(time.Now().Add(meshCloseDrain))
	}
	m.ln.Close()
	m.wg.Wait()
	m.ep.q.close()
	for _, conn := range conns {
		conn.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		p.conn = nil
		p.mu.Unlock()
	}
	return nil
}

// peer returns (creating on first use) the outgoing pipeline state for
// one peer node, with its writer goroutine running.
func (m *MeshNetwork) peer(id msg.NodeID) *meshPeer {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[id]
	if p == nil {
		p = &meshPeer{node: id, dialer: -1, q: newSendQueue(sendQueueDepth, m.stats.chargeStall)}
		m.peers[id] = p
		if m.closed {
			p.q.close()
		} else {
			m.writerWG.Add(1)
			go m.writeLoop(p)
		}
	}
	return p
}

// meshPeer is one peer's outgoing pipeline: a bounded send queue
// drained by a dedicated writer goroutine, plus the pair's established
// connection (shared with the inbound reader) and handshake state.
type meshPeer struct {
	node msg.NodeID
	q    *sendQueue

	mu      sync.Mutex
	conn    net.Conn   // the pair's established connection; nil until dialed/accepted
	dialer  msg.NodeID // which side dialed conn (the tiebreak witness); -1 when conn is nil
	dialing bool       // this side's writer has a dial in flight
	down    bool       // wire latched as failed; never cleared
}

// handleInbound runs the acceptor side of the connect handshake: read
// and validate the hello, resolve any duplicate connection by the
// lower-dialer-ID tiebreak, answer accept/reject, and on accept attach
// the shared reader path.
func (m *MeshNetwork) handleInbound(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(meshHandshakeTimeout))
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return
	}
	if string(hello[:4]) != meshMagic ||
		binary.BigEndian.Uint16(hello[4:6]) != meshProtoVersion {
		conn.Close()
		return
	}
	from := msg.NodeID(binary.BigEndian.Uint32(hello[6:10]))
	if int(from) < 0 || int(from) >= m.topo.Nodes() || from == m.topo.Self {
		conn.Close()
		return
	}

	p := m.peer(from)
	if !m.registerConn(conn) {
		// Mesh is closing: refuse so no reader attaches to a
		// connection Close's teardown sweep cannot see.
		conn.Write([]byte{helloReject})
		conn.Close()
		return
	}
	p.mu.Lock()
	accept := false
	switch {
	case p.down:
		// The latch is permanent: accepting would create a half-open
		// pair where the peer's requests arrive but every reply dies
		// on the failed send queue — its Calls would hang with no
		// ErrPeerDown ever surfacing on its side. Rejecting tells the
		// dialer promptly.
	case p.conn == nil && !p.dialing:
		// No connection and none in flight: first contact wins.
		accept = true
	case p.conn == nil && p.dialing:
		// Duplicate in flight both ways: the connection dialed by the
		// lower node ID survives. The peer dialed this one.
		accept = from < m.topo.Self
	default: // p.conn != nil
		// Re-dial from the side that already owns the connection means
		// the old stream is dead (newer wins); otherwise apply the same
		// lower-dialer tiebreak against the established connection.
		accept = p.dialer == from || from < m.topo.Self
	}
	if !accept {
		p.mu.Unlock()
		conn.Write([]byte{helloReject})
		conn.Close()
		return
	}
	// The accept byte must be on the wire BEFORE p.conn is published:
	// the moment the connection is visible, this side's writer
	// (polling in connFor/awaitInbound) may emit data frames on it,
	// and a frame byte arriving ahead of the verdict would be read by
	// the remote dialer as a rejection — losing the frame and latching
	// a healthy pair down. The handshake deadline set above bounds
	// this write; p.mu is held across it only against other handshakes
	// for the same peer.
	if _, err := conn.Write([]byte{helloAccept}); err != nil {
		p.mu.Unlock()
		conn.Close()
		return
	}
	old := p.conn
	p.conn = conn
	p.dialer = from
	p.mu.Unlock()

	if old != nil {
		old.Close()
	}
	conn.SetDeadline(time.Time{})
	m.readConn(p, conn)
}

// startReader attaches the frame reader to an established connection on
// its own goroutine (dialer side; the acceptor reuses its goroutine).
func (m *MeshNetwork) startReader(p *meshPeer, conn net.Conn) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.readConn(p, conn)
	}()
}

// readConn routes one established connection's inbound frames through
// the shared reader path until the stream dies, then — if this was
// still the pair's connection and the mesh is not closing — latches the
// peer down: the stream's loss means replies already requested can
// never arrive.
func (m *MeshNetwork) readConn(p *meshPeer, conn net.Conn) {
	readFrameStream(bufio.NewReader(conn), func(entry []byte, mm *msg.Msg) {
		if mm.To != m.topo.Self {
			return // misrouted frame: drop, like an unknown port
		}
		if m.ep.q.push(entry) == nil {
			m.stats.delivered(m.topo.Self)
		}
	})
	conn.Close()
	p.mu.Lock()
	current := p.conn == conn
	if current {
		p.conn = nil
		p.dialer = -1
	}
	p.mu.Unlock()
	if current && !m.isClosed() {
		m.peerDown(p, fmt.Errorf("connection lost"))
	}
}

// peerDown latches one peer's wire as failed (exactly once): the send
// queue fails so blocked and future senders observe *ErrPeerDown, the
// established connection (if any) closes, and registered OnPeerDown
// callbacks fire so vkernel can fail the pending calls aimed at the
// dead peer.
func (m *MeshNetwork) peerDown(p *meshPeer, cause error) {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return
	}
	p.down = true
	conn := p.conn
	p.conn = nil
	p.dialer = -1
	p.mu.Unlock()

	if conn != nil {
		conn.Close()
	}
	err := &ErrPeerDown{Node: p.node, Cause: cause}
	p.q.fail(err)
	m.stats.byClass.Add("wire.peer_down", 1)
	m.mu.Lock()
	var cbs []func(msg.NodeID, error)
	cbs = append(cbs, m.onDown...)
	m.mu.Unlock()
	for _, cb := range cbs {
		cb(p.node, err)
	}
}

// connFor returns the peer's established connection, dialing it first
// if none exists. Only the peer's writer goroutine calls this, so at
// most one dial per peer is ever in flight from this side.
func (m *MeshNetwork) connFor(p *meshPeer) (net.Conn, error) {
	for {
		p.mu.Lock()
		if p.down {
			p.mu.Unlock()
			return nil, p.q.err()
		}
		if p.conn != nil {
			conn := p.conn
			p.mu.Unlock()
			return conn, nil
		}
		if m.isClosed() {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		p.dialing = true
		p.mu.Unlock()

		conn, accepted, err := m.dialPeer(p.node)

		p.mu.Lock()
		p.dialing = false
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if accepted {
			if p.conn == nil {
				if !m.registerConn(conn) {
					p.mu.Unlock()
					conn.Close()
					return nil, ErrClosed
				}
				p.conn = conn
				p.dialer = m.topo.Self
				p.mu.Unlock()
				m.startReader(p, conn)
				return conn, nil
			}
			// An inbound connection was installed while our dial was in
			// flight; the installed one stands, ours is redundant.
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.mu.Unlock()
		// Rejected: we lost the duplicate-connection tiebreak. The
		// surviving connection is the peer's own dial — wait for the
		// acceptor to install it.
		if c := m.awaitInbound(p); c != nil {
			return c, nil
		}
		return nil, fmt.Errorf("handshake rejected by node %d and no inbound connection arrived", p.node)
	}
}

// awaitInbound waits (bounded) for the acceptor to install the peer's
// inbound connection after this side's dial lost the tiebreak.
func (m *MeshNetwork) awaitInbound(p *meshPeer) net.Conn {
	deadline := time.Now().Add(meshInboundWait)
	for time.Now().Before(deadline) && !m.isClosed() {
		p.mu.Lock()
		conn, dead := p.conn, p.down
		p.mu.Unlock()
		if conn != nil || dead {
			return conn
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// dialPeer opens a connection to the peer's topology address and runs
// the dialer side of the handshake. accepted=false with a nil error
// means the acceptor rejected us (tiebreak); an error means the peer
// could not be reached within the retry budget.
func (m *MeshNetwork) dialPeer(node msg.NodeID) (conn net.Conn, accepted bool, err error) {
	addr := m.topo.Addr(node)
	var lastErr error
	for attempt := 0; attempt < meshDialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(meshDialBackoff)
		}
		if m.isClosed() {
			return nil, false, ErrClosed
		}
		m.stats.byClass.Add("wire.dials", 1)
		c, derr := net.DialTimeout("tcp", addr, meshDialTimeout)
		if derr != nil {
			lastErr = derr
			continue
		}
		c.SetDeadline(time.Now().Add(meshHandshakeTimeout))
		if _, werr := c.Write(encodeHello(m.topo.Self)); werr != nil {
			c.Close()
			lastErr = werr
			continue
		}
		var ack [1]byte
		if _, rerr := io.ReadFull(c, ack[:]); rerr != nil {
			c.Close()
			lastErr = rerr
			continue
		}
		c.SetDeadline(time.Time{})
		if ack[0] != helloAccept {
			c.Close()
			return nil, false, nil
		}
		return c, true, nil
	}
	return nil, false, fmt.Errorf("dial node %d (%s): %w", node, addr, lastErr)
}

// writeLoop is one peer's writer: identical in shape to the loopback
// writer (drain, one vectored write, satisfy fences), with connection
// establishment folded in and write/dial failures latched as peer
// death instead of only on the queue.
func (m *MeshNetwork) writeLoop(p *meshPeer) {
	defer m.writerWG.Done()
	for {
		items, ok := p.q.drain()
		if len(items) > 0 {
			err := p.q.err()
			if err == nil {
				err = m.writeToPeer(p, items)
				if err != nil {
					if m.isClosed() {
						err = ErrClosed
					} else {
						m.peerDown(p, err)
						err = p.q.err() // the latched *ErrPeerDown
					}
				}
			}
			for _, it := range items {
				if it.fence != nil {
					it.fence <- err
				}
			}
		}
		if !ok {
			return
		}
	}
}

// writeToPeer establishes (if needed) the peer's connection and emits
// one drained batch. A write that fails because the connection lost
// the duplicate tiebreak mid-write — it is no longer the pair's
// current connection — is retried once on the replacement rather than
// treated as peer death; unreachable in the current no-reconnect
// lifecycle, but the guard keeps a future reconnect policy from
// turning a handshake race into a false latch.
func (m *MeshNetwork) writeToPeer(p *meshPeer, items []sendItem) error {
	for attempt := 0; ; attempt++ {
		conn, err := m.connFor(p)
		if err != nil {
			return err
		}
		frames, shared, werr := writeItems(conn, items)
		if werr == nil {
			if frames > 0 {
				m.stats.chargeWire(frames, shared)
			}
			return nil
		}
		p.mu.Lock()
		replaced := p.conn != nil && p.conn != conn
		p.mu.Unlock()
		if !replaced || attempt >= 1 {
			return werr
		}
	}
}

// meshEndpoint is the self node's attachment to the mesh.
type meshEndpoint struct {
	m *MeshNetwork
	q *queue // receive side
}

func (e *meshEndpoint) Node() msg.NodeID { return e.m.topo.Self }

// Send implements Endpoint: marshal, charge, and queue on the
// destination peer's writer (which dials lazily on first use).
// Self-sends are delivered directly to the local receive queue — they
// have no wire to cross.
func (e *meshEndpoint) Send(mm *msg.Msg) error {
	if int(mm.To) < 0 || int(mm.To) >= e.m.topo.Nodes() {
		return fmt.Errorf("transport: send to unknown node %d", mm.To)
	}
	mm.From = e.m.topo.Self
	enc := mm.Marshal()
	e.m.stats.charge(mm, e.m.cost, e.m.topo.Self)
	if mm.To == e.m.topo.Self {
		if err := e.q.push(enc); err != nil {
			return err
		}
		e.m.stats.delivered(mm.To)
		return nil
	}
	return e.m.peer(mm.To).q.put(sendItem{enc: enc, class: ClassOf(mm.Kind)})
}

// Flush implements Endpoint: fence every peer pipeline this process has
// opened and wait until all messages enqueued before the call are on
// the wire.
//
// Dead peers do not fail the fence: a latched peer's loss is reported
// through the pending-call path (OnPeerDown → vkernel fails exactly
// the calls aimed at it), and returning *ErrPeerDown here would poison
// every later flush — including ones whose traffic involves only
// healthy peers — for as long as the mesh lives. The fence's contract
// stays "everything enqueued has reached a live wire or a latched
// failure"; only shutdown-class errors surface.
func (e *meshEndpoint) Flush() error {
	e.m.mu.Lock()
	peers := make([]*meshPeer, 0, len(e.m.peers))
	for _, p := range e.m.peers {
		peers = append(peers, p)
	}
	e.m.mu.Unlock()

	var first error
	var pd *ErrPeerDown
	fences := make([]chan error, 0, len(peers))
	for _, p := range peers {
		ch := make(chan error, 1)
		if err := p.q.put(sendItem{fence: ch}); err != nil {
			if !errors.As(err, &pd) && first == nil {
				first = err
			}
			continue
		}
		fences = append(fences, ch)
	}
	for _, ch := range fences {
		if err := <-ch; err != nil && !errors.As(err, &pd) && first == nil {
			first = err
		}
	}
	return first
}

func (e *meshEndpoint) Recv() (*msg.Msg, error) {
	buf, err := e.q.pop()
	if err != nil {
		return nil, err
	}
	return msg.Unmarshal(buf)
}
