package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"munin/internal/bufpool"
	"munin/internal/msg"
	"munin/internal/stats"
)

// Mesh connect handshake. Every connection opens with a fixed-size
// hello frame — magic, protocol version, the dialer's node ID, and the
// connection epoch the dialer proposes for the pair — and the acceptor
// answers with an accept/reject byte, followed (on accept) by the
// epoch it agreed to. The hello is what makes connections attributable
// (the acceptor learns who is on the other end before any traffic
// flows); the version field is what lets a future frame-format change
// fail loudly instead of desyncing the stream; and the epoch is what
// versions the pair's connection generations, so a stale dial left
// over from a replaced stream cannot resurrect or re-latch the pair
// after a reconnect.
const (
	meshMagic        = "MUNm"
	meshProtoVersion = 2
	helloLen         = 4 + 2 + 4 + 8 // magic + version + node ID + epoch
	helloAccept      = 1
	helloReject      = 0
	helloAcceptLen   = 1 + 8 // verdict byte + agreed epoch
)

// Control words: 4-byte length words outside the frame space (above
// the 1<<30 frame-length cap), carried in-order on the same stream as
// data frames. They are the goodbye vocabulary: a departing node
// drains its send queues, emits ctrlGoodbye as the last bytes it will
// ever send on the connection, and waits (bounded) for ctrlGoodbyeAck
// — proof the peer's reader consumed everything up to and including
// the goodbye, so no in-flight frame can lose a race against the
// peer-down latch.
const (
	ctrlGoodbye    = 0xFFFFFF01
	ctrlGoodbyeAck = 0xFFFFFF02
)

// Dial/handshake tuning. Dials retry briefly (a peer process may be a
// beat behind in binding its listener); once the retries are exhausted
// the peer is latched down.
const (
	meshDialAttempts     = 4
	meshDialBackoff      = 50 * time.Millisecond
	meshDialTimeout      = 1 * time.Second
	meshHandshakeTimeout = 2 * time.Second
	// meshInboundWait bounds how long a dialer whose handshake was
	// rejected (it lost the duplicate-connection tiebreak) waits for
	// the winning inbound connection to be installed.
	meshInboundWait = 2 * time.Second
	// meshCloseDrain bounds the graceful-shutdown waits: the write
	// drain budget, the goodbye-ack wait, and the reader teardown.
	meshCloseDrain = 2 * time.Second
	// meshReconnectBackoff is the default initial delay between
	// background re-dial attempts (ReconnectPolicy.Backoff overrides).
	meshReconnectBackoff = 50 * time.Millisecond
)

func encodeHello(self msg.NodeID, epoch uint64) []byte {
	b := make([]byte, 0, helloLen)
	b = append(b, meshMagic...)
	b = binary.BigEndian.AppendUint16(b, meshProtoVersion)
	b = binary.BigEndian.AppendUint32(b, uint32(self))
	b = binary.BigEndian.AppendUint64(b, epoch)
	return b
}

// MeshNetwork is the multi-process transport: one Network per OS
// process, holding exactly one usable endpoint (the topology's self
// node) and reaching every other node over real TCP connections at the
// addresses the Topology names. It is the layer that takes the writer
// pipeline off loopback: the per-peer send queues, coalescing writers,
// and frame codec are exactly the ones TCPNetwork uses — what changes
// is connection lifecycle (lazy dialing with a hello handshake instead
// of a fixed all-pairs dial at construction) and failure semantics
// (wire death latches an ErrPeerDown instead of being impossible).
//
// Connections are bidirectional and one per node pair: whichever side
// needs to send first dials, and the acceptor attributes the
// connection from the hello frame. If both sides dial at once the
// duplicate is resolved deterministically — the connection dialed by
// the lower node ID survives, the other is closed — so the pair always
// converges on a single stream with no configuration-order dependence.
// Every established generation of a pair's connection carries an epoch
// agreed in the handshake; a hello proposing an older epoch than the
// pair's current generation is a stale dial and is rejected.
//
// Failure comes in two distinct flavors:
//
//   - Wire death: a dial fails (after brief retries), a write errors,
//     or an established connection's read side dies. The peer is
//     latched DOWN — later Sends fail fast with *ErrPeerDown, queued
//     fences observe it, and OnPeerDown callbacks fire once per outage
//     with the epoch that died. Without a reconnect policy the latch
//     is permanent; with Topology.Reconnect enabled the mesh re-dials
//     in the background and accepts rejoin dials from the peer, and a
//     successful handshake clears the latch on a fresh epoch (counter
//     wire.reconnects), replaying nothing.
//   - Departure: the peer announced a goodbye and drained. The peer is
//     marked GONE, not down — every frame it sent is still delivered,
//     and only then do OnPeerGone callbacks fire; new Sends fail with
//     *ErrPeerGone. No OnPeerDown fires and nothing was lost.
type MeshNetwork struct {
	topo  Topology
	stats *Stats
	cost  CostModel
	ln    net.Listener
	ep    *meshEndpoint

	mu       sync.Mutex
	peers    map[msg.NodeID]*meshPeer
	conns    map[net.Conn]struct{} // every installed connection, for Close's teardown sweep
	onDown   []func(msg.NodeID, uint64, error)
	onGone   []func(msg.NodeID, error)
	onReconn []func(msg.NodeID, uint64)
	closed   bool

	closeCh   chan struct{} // closed when Leave/Close begins; wakes reconnect loops
	leaveOnce sync.Once
	closeOnce sync.Once

	wg       sync.WaitGroup // accept loop + per-connection readers
	writerWG sync.WaitGroup // per-peer writer goroutines
	reconnWG sync.WaitGroup // background reconnect loops
}

// NewMeshNetwork binds the topology's self address and starts the
// accept loop. No peer connections are opened yet — dialing is lazy,
// triggered by the first Send to each peer.
func NewMeshNetwork(topo Topology, cost CostModel) (*MeshNetwork, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", topo.Addr(topo.Self))
	if err != nil {
		return nil, fmt.Errorf("transport: mesh listen %s: %w", topo.Addr(topo.Self), err)
	}
	m := &MeshNetwork{
		topo:    topo,
		stats:   newStats(topo.Nodes()),
		cost:    cost,
		ln:      ln,
		peers:   make(map[msg.NodeID]*meshPeer),
		conns:   make(map[net.Conn]struct{}),
		closeCh: make(chan struct{}),
	}
	m.ep = &meshEndpoint{m: m, q: newQueue()}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				m.handleInbound(conn)
			}()
		}
	}()
	return m, nil
}

// Addr returns the address the mesh actually bound (useful when the
// topology named port 0).
func (m *MeshNetwork) Addr() string { return m.ln.Addr().String() }

// Self returns this process's node ID.
func (m *MeshNetwork) Self() msg.NodeID { return m.topo.Self }

// Endpoint implements Network. Only the self node's endpoint exists in
// this process; asking for any other is a programming error.
func (m *MeshNetwork) Endpoint(n msg.NodeID) Endpoint {
	if n != m.topo.Self {
		panic(fmt.Sprintf("transport: mesh process for node %d has no endpoint for node %d",
			m.topo.Self, n))
	}
	return m.ep
}

// Nodes implements Network.
func (m *MeshNetwork) Nodes() int { return m.topo.Nodes() }

// Stats implements Network. The accounting covers this process's
// traffic only — each mesh member counts what it sends and receives.
func (m *MeshNetwork) Stats() *Stats { return m.stats }

// Multicast falls back to unicast sends, like TCPNetwork: each member's
// copy is enqueued on that peer's coalescing writer.
func (m *MeshNetwork) Multicast(mm *msg.Msg, members []msg.NodeID) error {
	for _, dst := range members {
		cp := *mm
		cp.To = dst
		if err := m.ep.Send(&cp); err != nil {
			return err
		}
	}
	return nil
}

// OnPeerDown implements PeerDownNotifier.
func (m *MeshNetwork) OnPeerDown(fn func(peer msg.NodeID, epoch uint64, err error)) {
	m.mu.Lock()
	m.onDown = append(m.onDown, fn)
	m.mu.Unlock()
}

// OnPeerGone implements PeerGoneNotifier. Callbacks run on the self
// endpoint's Recv path, after every frame the departed peer sent has
// been returned by Recv.
func (m *MeshNetwork) OnPeerGone(fn func(peer msg.NodeID, err error)) {
	m.mu.Lock()
	m.onGone = append(m.onGone, fn)
	m.mu.Unlock()
}

// OnPeerReconnect implements PeerReconnectNotifier. Callbacks run on
// the transport goroutine that completed the rejoin handshake, before
// any frame from the fresh connection is dispatched.
func (m *MeshNetwork) OnPeerReconnect(fn func(peer msg.NodeID, epoch uint64)) {
	m.mu.Lock()
	m.onReconn = append(m.onReconn, fn)
	m.mu.Unlock()
}

// notifyReconnect fires the reconnect callbacks for a revived pair.
// It must be called before the new connection's reader starts so
// subscribers finish rebuilding state ahead of the peer's first frame.
func (m *MeshNetwork) notifyReconnect(peer msg.NodeID, epoch uint64) {
	m.mu.Lock()
	cbs := append([]func(msg.NodeID, uint64){}, m.onReconn...)
	m.mu.Unlock()
	for _, cb := range cbs {
		cb(peer, epoch)
	}
}

// PeerEpoch implements PeerEpochs: the current connection epoch agreed
// with the peer (0 before any connection is established).
func (m *MeshNetwork) PeerEpoch(peer msg.NodeID) uint64 {
	m.mu.Lock()
	p := m.peers[peer]
	m.mu.Unlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch
}

func (m *MeshNetwork) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// registerConn records an about-to-be-installed connection for Close's
// teardown sweep. It refuses once the mesh is closing, so no reader
// can attach to a connection the sweep will never see — the installer
// must close the connection and back out.
func (m *MeshNetwork) registerConn(c net.Conn) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.conns[c] = struct{}{}
	return true
}

// unregisterConn drops a finished connection from the teardown
// registry. Without this the registry grows by one dead entry per
// rejected duplicate and — once a reconnect policy is in play — per
// replaced generation, pinning closed sockets for the mesh's life.
func (m *MeshNetwork) unregisterConn(c net.Conn) {
	m.mu.Lock()
	delete(m.conns, c)
	m.mu.Unlock()
}

// Leave announces this node's departure to every connected peer and
// drains: each live pair's writer flushes everything already queued,
// emits a goodbye as the last bytes this node will ever send, and
// Leave waits (bounded by meshCloseDrain) for the peers' goodbye-acks
// — proof their readers consumed the drain. Receivers mark this node
// departed, deliver every frame already on the wire, and fail only new
// sends with *ErrPeerGone; no peer-down latch fires anywhere. After
// Leave the endpoint accepts no new sends (they fail with ErrClosed);
// the receive side stays open until Close. Idempotent, and Close calls
// it first, so a bare Close is also a graceful goodbye.
func (m *MeshNetwork) Leave() error {
	m.leaveOnce.Do(m.doLeave)
	return nil
}

func (m *MeshNetwork) doLeave() {
	m.mu.Lock()
	m.closed = true
	close(m.closeCh)
	peers := make([]*meshPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	// Snapshot every installed connection (the registry, not the peer
	// snapshot: once closed is set, registerConn refuses new installs,
	// so this set is final).
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()
	// Reconnect loops check closeCh and exit; after this no goroutine
	// installs a connection or touches the wait groups.
	m.reconnWG.Wait()

	// Give the write side a drain budget — a writer blocked in WriteTo
	// against a stalled peer (full send buffer, remote not reading)
	// would otherwise hang writerWG.Wait forever.
	for _, conn := range conns {
		conn.SetWriteDeadline(time.Now().Add(meshCloseDrain))
	}
	// Goodbye rides each live pair's send queue behind whatever is
	// already draining, and the queue closes right behind it: the
	// goodbye is guaranteed to be the last thing the writer emits. A
	// pair whose very first dial is still in flight has no established
	// connection to say goodbye on — it is torn down unannounced, and
	// the remote records wire death (the conservative outcome).
	var await []chan struct{}
	for _, p := range peers {
		p.mu.Lock()
		live := p.conn != nil && !p.down && !p.gone
		ack := p.ackCh
		p.mu.Unlock()
		if live && p.q.put(sendItem{ctrl: ctrlGoodbye}) == nil {
			await = append(await, ack)
		}
	}
	for _, p := range peers {
		p.q.close()
	}
	m.writerWG.Wait()
	// Every goodbye is on the wire. Wait for each peer to confirm it
	// consumed the drain — its explicit goodbye-ack, or its own
	// goodbye (mutual departure), both close the ack channel. The
	// budget is shared: a crashed peer costs at most meshCloseDrain
	// total.
	deadline := time.NewTimer(meshCloseDrain)
	defer deadline.Stop()
	for _, ack := range await {
		select {
		case <-ack:
		case <-deadline.C:
			return // budget exhausted; stragglers get the EOF path
		}
	}
}

// Close quiesces the mesh gracefully: Leave first (goodbye, drain,
// ack-wait — see Leave), then teardown — write sides shut down so
// remote readers get a clean EOF, local readers are torn down (bounded
// by meshCloseDrain if the remote side lingers) and the receive queue
// reports ErrClosed.
func (m *MeshNetwork) Close() error {
	m.Leave()
	m.closeOnce.Do(m.teardown)
	return nil
}

// Kill tears the mesh down abruptly: no goodbye, no drain — every
// connection closes mid-stream, so peers observe wire death
// (*ErrPeerDown) exactly as if the process had crashed. This is the
// chaos/test path; production shutdown is Close, whose goodbye keeps
// departure from being mistaken for failure.
func (m *MeshNetwork) Kill() error {
	m.leaveOnce.Do(func() {
		m.mu.Lock()
		m.closed = true
		close(m.closeCh)
		m.mu.Unlock()
	})
	m.closeOnce.Do(func() {
		m.mu.Lock()
		peers := make([]*meshPeer, 0, len(m.peers))
		for _, p := range m.peers {
			peers = append(peers, p)
		}
		conns := make([]net.Conn, 0, len(m.conns))
		for c := range m.conns {
			conns = append(conns, c)
		}
		m.mu.Unlock()
		m.reconnWG.Wait()
		for _, p := range peers {
			p.q.close()
		}
		for _, conn := range conns {
			conn.Close()
		}
		m.ln.Close()
		m.writerWG.Wait()
		m.wg.Wait()
		m.ep.q.close()
		for _, p := range peers {
			p.mu.Lock()
			p.conn = nil
			p.mu.Unlock()
		}
	})
	return nil
}

func (m *MeshNetwork) teardown() {
	m.mu.Lock()
	peers := make([]*meshPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(m.conns))
	for c := range m.conns {
		conns = append(conns, c)
	}
	m.mu.Unlock()

	// Write sides shut down: CloseWrite gives the remote a clean EOF
	// once it has consumed the drained frames; the read deadline bounds
	// our own reader if the remote lingers.
	for _, conn := range conns {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		conn.SetReadDeadline(time.Now().Add(meshCloseDrain))
	}
	m.ln.Close()
	m.wg.Wait()
	m.ep.q.close()
	for _, conn := range conns {
		conn.Close()
	}
	for _, p := range peers {
		p.mu.Lock()
		p.conn = nil
		p.mu.Unlock()
	}
}

// peer returns (creating on first use) the outgoing pipeline state for
// one peer node, with its writer goroutine running.
func (m *MeshNetwork) peer(id msg.NodeID) *meshPeer {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[id]
	if p == nil {
		p = &meshPeer{
			node:   id,
			dialer: -1,
			q:      newSendQueue(sendQueueDepth, m.stats.chargeStall),
			ackCh:  make(chan struct{}),
		}
		m.peers[id] = p
		if m.closed {
			p.q.close()
		} else {
			m.writerWG.Add(1)
			go m.writeLoop(p)
		}
	}
	return p
}

// meshPeer is one peer's outgoing pipeline: a bounded send queue
// drained by a dedicated writer goroutine, plus the pair's established
// connection (shared with the inbound reader) and handshake state.
type meshPeer struct {
	node msg.NodeID
	q    *sendQueue

	mu       sync.Mutex
	acked    bool          // the peer acked our goodbye (or sent its own)
	ackCh    chan struct{} // closed when acked flips; replaced on a reconnect
	conn     net.Conn      // the pair's established connection; nil until dialed/accepted
	dialer   msg.NodeID    // which side dialed conn (the tiebreak witness); -1 when conn is nil
	dialing  bool          // this side has a dial in flight
	proposed uint64        // epoch the in-flight dial proposes; 0 when not dialing
	epoch    uint64        // current connection generation agreed in the handshake
	down     bool          // wire latched as failed; cleared only by a policy reconnect
	gone     bool          // peer announced a clean departure (goodbye)
}

// ackArrived satisfies this side's goodbye-ack wait.
func (p *meshPeer) ackArrived() {
	p.mu.Lock()
	if !p.acked {
		p.acked = true
		close(p.ackCh)
	}
	p.mu.Unlock()
}

// resetAck re-arms the goodbye-ack wait after a reconnect, so a later
// Leave on the revived pair waits for a REAL ack instead of observing
// the previous generation's. Caller holds p.mu.
func (p *meshPeer) resetAck() {
	if p.acked {
		p.acked = false
		p.ackCh = make(chan struct{})
	}
}

// handleInbound runs the acceptor side of the connect handshake: read
// and validate the hello, resolve stale epochs and duplicate
// connections, answer accept/reject (the accept carries the agreed
// epoch), and on accept attach the shared reader path.
func (m *MeshNetwork) handleInbound(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(meshHandshakeTimeout))
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		conn.Close()
		return
	}
	if string(hello[:4]) != meshMagic ||
		binary.BigEndian.Uint16(hello[4:6]) != meshProtoVersion {
		conn.Close()
		return
	}
	from := msg.NodeID(binary.BigEndian.Uint32(hello[6:10]))
	hepoch := binary.BigEndian.Uint64(hello[10:18])
	if int(from) < 0 || int(from) >= m.topo.Nodes() || from == m.topo.Self {
		conn.Close()
		return
	}

	p := m.peer(from)
	if !m.registerConn(conn) {
		// Mesh is closing: refuse so no reader attaches to a
		// connection Close's teardown sweep cannot see.
		conn.Write([]byte{helloReject})
		conn.Close()
		return
	}
	p.mu.Lock()
	// The pair's effective epoch includes this side's in-flight dial
	// proposal, so two simultaneous first dials (both proposing
	// epoch+1) land in the duplicate tiebreak instead of each side
	// accepting the other's "newer" generation and installing two
	// connections.
	cur := p.epoch
	if p.dialing && p.proposed > cur {
		cur = p.proposed
	}
	rejoin := p.down || p.gone
	accept := false
	switch {
	case rejoin && !m.topo.Reconnect.Enabled:
		// The latch is permanent without a reconnect policy: accepting
		// would create a half-open pair where the peer's requests
		// arrive but every reply dies on the failed send queue — its
		// Calls would hang with no ErrPeerDown ever surfacing on its
		// side. Rejecting tells the dialer promptly.
	case !rejoin && hepoch < cur && !(p.conn != nil && p.dialer == from):
		// Stale dial: a leftover from a generation this pair has
		// already replaced. Accepting it would resurrect a dead stream
		// over the live one. The exemption: a LOWER epoch from the
		// node that dialed the current connection is not stale — it is
		// a restarted process that lost its epoch memory while we
		// never observed its death (half-open pair, no RST); rejecting
		// it would lock the restarted peer out until this side happens
		// to write and latch. Its dial falls through to the owner
		// re-dial rule below and the agreed epoch advances past cur.
	case p.conn == nil && !p.dialing:
		// No connection and none in flight: first contact wins.
		accept = true
	case p.conn == nil && p.dialing:
		// Duplicate in flight both ways: the connection dialed by the
		// lower node ID survives. The peer dialed this one.
		accept = from < m.topo.Self
	default: // p.conn != nil
		// Re-dial from the side that already owns the connection, or a
		// strictly newer epoch, means the old stream is dead on the
		// peer's side (newer wins); otherwise apply the same
		// lower-dialer tiebreak against the established connection.
		accept = p.dialer == from || from < m.topo.Self || hepoch > cur
	}
	if !accept {
		p.mu.Unlock()
		conn.Write([]byte{helloReject})
		conn.Close()
		m.unregisterConn(conn)
		return
	}
	// The agreed epoch never regresses: normally it is the dialer's
	// proposal (>= cur by the cases above), but a rejoin after a latch
	// — or an owner re-dial proposing below cur (a restarted process
	// with no epoch memory) — advances past the current generation.
	// The fresh epoch is what keeps the dead generation's leftovers
	// stale.
	agreed := hepoch
	if (rejoin || hepoch < cur) && cur+1 > agreed {
		agreed = cur + 1
	}
	// The accept verdict must be on the wire BEFORE p.conn is
	// published: the moment the connection is visible, this side's
	// writer (polling in connFor/awaitInbound) may emit data frames on
	// it, and a frame byte arriving ahead of the verdict would be read
	// by the remote dialer as part of the handshake — losing the frame
	// and latching a healthy pair down. The handshake deadline set
	// above bounds this write; p.mu is held across it only against
	// other handshakes for the same peer.
	ack := make([]byte, 0, helloAcceptLen)
	ack = append(ack, helloAccept)
	ack = binary.BigEndian.AppendUint64(ack, agreed)
	if _, err := conn.Write(ack); err != nil {
		p.mu.Unlock()
		conn.Close()
		m.unregisterConn(conn)
		return
	}
	old := p.conn
	p.conn = conn
	p.dialer = from
	p.epoch = agreed
	p.down, p.gone = false, false
	if rejoin {
		p.q.clearFail()
		p.resetAck()
	}
	p.mu.Unlock()

	if rejoin {
		m.stats.byClass.Add(stats.CWireReconnects, 1)
		m.notifyReconnect(p.node, agreed)
	}
	if old != nil {
		old.Close()
	}
	conn.SetDeadline(time.Time{})
	m.readConn(p, conn)
}

// startReader attaches the frame reader to an established connection on
// its own goroutine (dialer side; the acceptor reuses its goroutine).
func (m *MeshNetwork) startReader(p *meshPeer, conn net.Conn) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.readConn(p, conn)
	}()
}

// readConn routes one established connection's inbound frames through
// the shared reader path until the stream dies, then — if this was
// still the pair's connection, the peer did not say goodbye, and the
// mesh is not closing — latches the peer down: the stream's loss means
// replies already requested can never arrive.
func (m *MeshNetwork) readConn(p *meshPeer, conn net.Conn) {
	readFrameStream(bufio.NewReader(conn), func(entry []byte, mm *msg.Msg) {
		if mm.To != m.topo.Self {
			// Misrouted frame: drop, like an unknown port — but
			// counted, so a topology misconfiguration is visible.
			m.stats.byClass.Add(stats.CWireMisrouted, 1)
			return
		}
		if m.ep.q.push(entry) == nil {
			m.stats.delivered(m.topo.Self)
		}
	}, func(word uint32) bool {
		switch word {
		case ctrlGoodbye:
			m.peerGoodbye(p)
			return true
		case ctrlGoodbyeAck:
			p.ackArrived()
			return true
		}
		return false
	})
	conn.Close()
	m.unregisterConn(conn)
	p.mu.Lock()
	current := p.conn == conn
	gone := p.gone
	if current {
		p.conn = nil
		p.dialer = -1
	}
	p.mu.Unlock()
	if current && !gone && !m.isClosed() {
		m.peerDown(p, fmt.Errorf("connection lost"))
	}
}

// peerGoodbye handles a peer's goodbye: acknowledge it (through the
// writer, so the ack cannot interleave a frame mid-write), mark the
// peer departed, and enqueue the departure marker behind every frame
// the peer delivered — consumers observe the departure strictly after
// everything the peer sent, which is what makes the goodbye race-free
// against in-flight replies.
func (m *MeshNetwork) peerGoodbye(p *meshPeer) {
	// The peer's goodbye also satisfies our own goodbye's ack wait:
	// both sides announcing departure means both have drained.
	p.ackArrived()
	p.mu.Lock()
	fresh := !p.gone && !p.down
	if fresh {
		p.gone = true
	}
	p.mu.Unlock()
	if fresh {
		// The soft latch is set BEFORE the ack goes back: once the
		// departing side's Close returns (it saw the ack), this side
		// is guaranteed to already fail new sends with *ErrPeerGone.
		p.q.reject(&ErrPeerGone{Node: p.node})
		m.stats.byClass.Add(stats.CWirePeerGone, 1)
		m.ep.q.pushGone(p.node)
	}
	// Control items bypass the soft latch; if this mesh is itself
	// closing (queue closed) the put fails and the peer's ack-wait is
	// satisfied by our own goodbye instead — mutual departure.
	p.q.put(sendItem{ctrl: ctrlGoodbyeAck})
}

// peerDown latches one peer's wire as failed (once per outage): the
// send queue fails so blocked and future senders observe *ErrPeerDown,
// the established connection (if any) closes, and registered
// OnPeerDown callbacks fire with the epoch that died so vkernel can
// fail exactly the pending calls aimed at the dead generation. With a
// reconnect policy, a background re-dial loop starts; without one the
// latch is permanent.
func (m *MeshNetwork) peerDown(p *meshPeer, cause error) {
	p.mu.Lock()
	if p.down || p.gone {
		p.mu.Unlock()
		return
	}
	p.down = true
	epoch := p.epoch
	conn := p.conn
	p.conn = nil
	p.dialer = -1
	p.mu.Unlock()

	if conn != nil {
		conn.Close()
	}
	err := &ErrPeerDown{Node: p.node, Cause: cause}
	p.q.fail(err)
	m.stats.byClass.Add(stats.CWirePeerDown, 1)
	m.mu.Lock()
	var cbs []func(msg.NodeID, uint64, error)
	cbs = append(cbs, m.onDown...)
	if m.topo.Reconnect.Enabled && !m.closed {
		m.reconnWG.Add(1)
		go m.reconnectLoop(p)
	}
	m.mu.Unlock()
	for _, cb := range cbs {
		cb(p.node, epoch, err)
	}
}

// reconnectLoop is this side's background re-dial after a latch,
// governed by the topology's ReconnectPolicy. Each attempt proposes
// the next epoch; a success installs the fresh connection and clears
// the latch. The loop stops when the peer rejoins inbound first (a
// restarted process dials in with no memory of the pair — the acceptor
// handles that path), when attempts are exhausted, or when the mesh
// closes.
func (m *MeshNetwork) reconnectLoop(p *meshPeer) {
	defer m.reconnWG.Done()
	policy := m.topo.Reconnect
	backoff := policy.Backoff
	if backoff <= 0 {
		backoff = meshReconnectBackoff
	}
	for attempt := 0; policy.MaxAttempts == 0 || attempt < policy.MaxAttempts; attempt++ {
		select {
		case <-time.After(backoff):
		case <-m.closeCh:
			return
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
		p.mu.Lock()
		if !p.down {
			// An inbound rejoin beat us; the pair is healthy again.
			p.mu.Unlock()
			return
		}
		proposed := p.epoch + 1
		p.dialing = true
		p.proposed = proposed
		p.mu.Unlock()

		conn, agreed, accepted, err := m.dialPeerOnce(p.node, proposed)

		p.mu.Lock()
		p.dialing = false
		p.proposed = 0
		if err != nil || !accepted {
			// Unreachable (still restarting?) or rejected (the peer's
			// own dial won, or it latched us without a policy): keep
			// trying until something changes or attempts run out.
			p.mu.Unlock()
			continue
		}
		if !p.down || p.conn != nil || !m.registerConn(conn) {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conn = conn
		p.dialer = m.topo.Self
		p.epoch = agreed
		p.down, p.gone = false, false
		p.q.clearFail()
		p.resetAck()
		p.mu.Unlock()
		m.stats.byClass.Add(stats.CWireReconnects, 1)
		m.notifyReconnect(p.node, agreed)
		m.startReader(p, conn)
		return
	}
}

// connFor returns the peer's established connection, dialing it first
// if none exists. Only the peer's writer goroutine calls this, so at
// most one dial per peer is ever in flight from this side (the
// background reconnect loop runs only while the peer is latched, when
// the writer cannot have items to write).
func (m *MeshNetwork) connFor(p *meshPeer) (net.Conn, error) {
	for {
		p.mu.Lock()
		if p.conn != nil {
			conn := p.conn
			p.mu.Unlock()
			return conn, nil
		}
		if p.down {
			p.mu.Unlock()
			return nil, p.q.err()
		}
		if p.gone {
			p.mu.Unlock()
			return nil, &ErrPeerGone{Node: p.node}
		}
		if m.isClosed() {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		p.dialing = true
		p.proposed = p.epoch + 1
		proposed := p.proposed
		p.mu.Unlock()

		conn, agreed, accepted, err := m.dialPeer(p.node, proposed)

		p.mu.Lock()
		p.dialing = false
		p.proposed = 0
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		if accepted {
			if p.conn == nil {
				if !m.registerConn(conn) {
					p.mu.Unlock()
					conn.Close()
					return nil, ErrClosed
				}
				p.conn = conn
				p.dialer = m.topo.Self
				p.epoch = agreed
				p.mu.Unlock()
				m.startReader(p, conn)
				return conn, nil
			}
			// An inbound connection was installed while our dial was in
			// flight; the installed one stands, ours is redundant.
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.mu.Unlock()
		// Rejected: we lost the duplicate-connection tiebreak. The
		// surviving connection is the peer's own dial — wait for the
		// acceptor to install it.
		if c := m.awaitInbound(p); c != nil {
			return c, nil
		}
		return nil, fmt.Errorf("handshake rejected by node %d and no inbound connection arrived", p.node)
	}
}

// awaitInbound waits (bounded) for the acceptor to install the peer's
// inbound connection after this side's dial lost the tiebreak.
func (m *MeshNetwork) awaitInbound(p *meshPeer) net.Conn {
	deadline := time.Now().Add(meshInboundWait)
	for time.Now().Before(deadline) && !m.isClosed() {
		p.mu.Lock()
		conn, dead := p.conn, p.down || p.gone
		p.mu.Unlock()
		if conn != nil || dead {
			return conn
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// dialPeer opens a connection to the peer's topology address and runs
// the dialer side of the handshake, retrying briefly (a peer process
// may be a beat behind in binding its listener). accepted=false with a
// nil error means the acceptor rejected us (tiebreak); an error means
// the peer could not be reached within the retry budget.
func (m *MeshNetwork) dialPeer(node msg.NodeID, epoch uint64) (conn net.Conn, agreed uint64, accepted bool, err error) {
	var lastErr error
	for attempt := 0; attempt < meshDialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(meshDialBackoff)
		}
		if m.isClosed() {
			return nil, 0, false, ErrClosed
		}
		c, a, ok, derr := m.dialPeerOnce(node, epoch)
		if derr != nil {
			lastErr = derr
			continue
		}
		return c, a, ok, nil
	}
	return nil, 0, false, fmt.Errorf("dial node %d (%s): %w", node, m.topo.Addr(node), lastErr)
}

// dialPeerOnce runs a single dial + hello exchange proposing the given
// epoch. On accept, agreed is the epoch the acceptor stamped into its
// ack — the pair's new generation.
func (m *MeshNetwork) dialPeerOnce(node msg.NodeID, epoch uint64) (conn net.Conn, agreed uint64, accepted bool, err error) {
	m.stats.byClass.Add(stats.CWireDials, 1)
	c, derr := net.DialTimeout("tcp", m.topo.Addr(node), meshDialTimeout)
	if derr != nil {
		return nil, 0, false, derr
	}
	c.SetDeadline(time.Now().Add(meshHandshakeTimeout))
	if _, werr := c.Write(encodeHello(m.topo.Self, epoch)); werr != nil {
		c.Close()
		return nil, 0, false, werr
	}
	var ack [helloAcceptLen]byte
	if _, rerr := io.ReadFull(c, ack[:1]); rerr != nil {
		c.Close()
		return nil, 0, false, rerr
	}
	if ack[0] != helloAccept {
		c.Close()
		return nil, 0, false, nil
	}
	if _, rerr := io.ReadFull(c, ack[1:]); rerr != nil {
		c.Close()
		return nil, 0, false, rerr
	}
	c.SetDeadline(time.Time{})
	return c, binary.BigEndian.Uint64(ack[1:]), true, nil
}

// writeLoop is one peer's writer: identical in shape to the loopback
// writer (drain, one vectored write, satisfy fences), with connection
// establishment folded in and write/dial failures latched as peer
// death instead of only on the queue.
func (m *MeshNetwork) writeLoop(p *meshPeer) {
	defer m.writerWG.Done()
	ws := &writeScratch{}
	for {
		items, ok := p.q.drain()
		if len(items) > 0 {
			err := p.q.err()
			if err == nil {
				err = m.writeToPeer(p, items, ws)
				if err != nil {
					if m.isClosed() {
						err = ErrClosed
					} else {
						m.peerDown(p, err)
						// The latched *ErrPeerDown — unless the peer
						// was gone (no latch), where the raw write
						// error stands.
						if le := p.q.err(); le != nil {
							err = le
						}
					}
				}
			}
			// Batch finished (written or failed): fences observe the
			// outcome, owned wire buffers return to the pool, and the
			// batch storage recycles to the queue.
			for _, it := range items {
				if it.fence != nil {
					it.fence <- err
				}
				it.own.Release()
			}
			p.q.recycle(items)
		}
		if !ok {
			return
		}
	}
}

// writeToPeer establishes (if needed) the peer's connection and emits
// one drained batch. A write that fails because the connection was
// replaced mid-write — it is no longer the pair's current connection
// (a reconnect or a lost duplicate tiebreak swapped the stream under
// us) — is retried once on the replacement rather than treated as peer
// death, so a handshake race never turns into a false latch.
func (m *MeshNetwork) writeToPeer(p *meshPeer, items []sendItem, ws *writeScratch) error {
	for attempt := 0; ; attempt++ {
		conn, err := m.connFor(p)
		if err != nil {
			return err
		}
		frames, shared, werr := writeItems(conn, items, ws)
		if werr == nil {
			if frames > 0 {
				m.stats.chargeWire(frames, shared)
			}
			return nil
		}
		p.mu.Lock()
		replaced := p.conn != nil && p.conn != conn
		p.mu.Unlock()
		if !replaced || attempt >= 1 {
			return werr
		}
	}
}

// meshEndpoint is the self node's attachment to the mesh.
type meshEndpoint struct {
	m *MeshNetwork
	q *queue // receive side
}

func (e *meshEndpoint) Node() msg.NodeID { return e.m.topo.Self }

// Leave implements Leaver: announce departure to every connected peer,
// drain, and wait for their acks. See MeshNetwork.Leave.
func (e *meshEndpoint) Leave() error { return e.m.Leave() }

// Send implements Endpoint: marshal, charge, and queue on the
// destination peer's writer (which dials lazily on first use).
// Self-sends are delivered directly to the local receive queue — they
// have no wire to cross.
func (e *meshEndpoint) Send(mm *msg.Msg) error {
	if int(mm.To) < 0 || int(mm.To) >= e.m.topo.Nodes() {
		return fmt.Errorf("transport: send to unknown node %d", mm.To)
	}
	mm.From = e.m.topo.Self
	enc := mm.Marshal()
	e.m.stats.charge(mm, e.m.cost, e.m.topo.Self)
	if mm.To == e.m.topo.Self {
		if err := e.q.push(enc); err != nil {
			return err
		}
		e.m.stats.delivered(mm.To)
		return nil
	}
	return e.m.peer(mm.To).q.put(sendItem{enc: enc, class: ClassOf(mm.Kind)})
}

// SendOwned implements EncodedSender; see tcpEndpoint.SendOwned.
// Self-sends have no writer to release the buffer after a wire write,
// so the bytes are copied into the receive queue (whose consumer owns
// its buffers until Recv) and the pooled buffer returns immediately.
func (e *meshEndpoint) SendOwned(wb *bufpool.Buffer) error {
	kind, to, err := msg.PeekHeader(wb.B)
	if err != nil {
		wb.Release()
		return err
	}
	if int(to) < 0 || int(to) >= e.m.topo.Nodes() {
		wb.Release()
		return fmt.Errorf("transport: send to unknown node %d", to)
	}
	msg.SetFrom(wb.B, e.m.topo.Self)
	e.m.stats.chargeEncoded(kind, len(wb.B), e.m.cost, e.m.topo.Self)
	if to == e.m.topo.Self {
		enc := append([]byte(nil), wb.B...)
		wb.Release()
		if err := e.q.push(enc); err != nil {
			return err
		}
		e.m.stats.delivered(to)
		return nil
	}
	if err := e.m.peer(to).q.put(sendItem{enc: wb.B, own: wb, class: ClassOf(kind)}); err != nil {
		wb.Release()
		return err
	}
	return nil
}

// Flush implements Endpoint: fence every peer pipeline this process has
// opened and wait until all messages enqueued before the call are on
// the wire.
//
// Dead and departed peers do not fail the fence: a latched peer's loss
// is reported through the pending-call path (OnPeerDown/OnPeerGone →
// vkernel fails exactly the calls aimed at it), and returning the
// typed error here would poison every later flush — including ones
// whose traffic involves only healthy peers — for as long as the latch
// holds. The fence's contract stays "everything enqueued has reached a
// live wire or a latched failure"; only shutdown-class errors surface.
func (e *meshEndpoint) Flush() error {
	fs := getFenceSet()
	defer fs.release()
	e.m.mu.Lock()
	for _, p := range e.m.peers {
		fs.peers = append(fs.peers, p)
	}
	e.m.mu.Unlock()

	var first error
	latched := func(err error) bool {
		var pd *ErrPeerDown
		var pg *ErrPeerGone
		return errors.As(err, &pd) || errors.As(err, &pg)
	}
	for _, p := range fs.peers {
		ch := getFence()
		if err := p.q.put(sendItem{fence: ch}); err != nil {
			putFence(ch) // never enqueued: no writer will touch it
			if !latched(err) && first == nil {
				first = err
			}
			continue
		}
		fs.chans = append(fs.chans, ch)
	}
	for _, ch := range fs.chans {
		if err := <-ch; err != nil && !latched(err) && first == nil {
			first = err
		}
		putFence(ch)
	}
	return first
}

func (e *meshEndpoint) Recv() (*msg.Msg, error) {
	for {
		it, err := e.q.pop()
		if err != nil {
			return nil, err
		}
		if it.buf == nil {
			// Departure marker: every frame the peer sent has been
			// returned by earlier Recv calls; only now do the gone
			// callbacks fire, so nothing in flight is ever failed.
			e.m.notifyPeerGone(it.peer)
			continue
		}
		return msg.Unmarshal(it.buf)
	}
}

func (m *MeshNetwork) notifyPeerGone(peer msg.NodeID) {
	m.mu.Lock()
	var cbs []func(msg.NodeID, error)
	cbs = append(cbs, m.onGone...)
	m.mu.Unlock()
	err := &ErrPeerGone{Node: peer}
	for _, cb := range cbs {
		cb(peer, err)
	}
}
