package transport

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"munin/internal/msg"
)

// ReconnectPolicy controls whether a MeshNetwork tries to revive a
// peer after its wire latched as failed. The zero value — disabled —
// preserves the original lifecycle: ErrPeerDown is permanent for the
// life of the network.
//
// With Enabled set, a latch is an outage instead of a death sentence:
// the mesh re-dials the peer in the background (Backoff between
// attempts, doubling up to one second, at most MaxAttempts tries) and
// also accepts a rejoin dial FROM the latched peer — the path a
// restarted process takes, since it holds no memory of the old pair.
// Either way the latch clears, the pair agrees on a fresh connection
// epoch in the hello handshake, and nothing is replayed: every send
// and call that failed during the outage already reported its error.
type ReconnectPolicy struct {
	// Enabled turns reconnect-after-latch on.
	Enabled bool `json:"enabled"`
	// MaxAttempts bounds this side's background re-dial attempts per
	// outage; 0 means unlimited (until the mesh closes or the peer
	// rejoins inbound).
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Backoff is the initial delay before the first re-dial attempt,
	// doubling per attempt up to one second. 0 means the 50ms default.
	Backoff time.Duration `json:"backoff,omitempty"`
}

// Topology describes a multi-process cluster to a MeshNetwork: which
// node this process is, and where every node (including itself) can be
// reached. Node IDs must be dense, 0..Nodes()-1, exactly as in-process
// networks number their endpoints, so the layers above (vkernel,
// protocol home hashing) work unchanged across one process or many.
type Topology struct {
	// Self is this process's node ID.
	Self msg.NodeID `json:"self"`
	// Peers maps every node ID to its listen address (host:port).
	// Self's entry is the address this process binds.
	Peers map[msg.NodeID]string `json:"-"`
	// Reconnect is the opt-in reconnect-after-latch policy. The zero
	// value keeps ErrPeerDown permanent.
	Reconnect ReconnectPolicy `json:"reconnect"`
}

// topologyJSON is the on-disk form: {"self": 0, "peers": {"0": "127.0.0.1:7000", ...}}.
type topologyJSON struct {
	Self      msg.NodeID        `json:"self"`
	Peers     map[string]string `json:"peers"`
	Reconnect ReconnectPolicy   `json:"reconnect"`
}

// Nodes returns the cluster size.
func (t *Topology) Nodes() int { return len(t.Peers) }

// Addr returns node n's listen address.
func (t *Topology) Addr(n msg.NodeID) string { return t.Peers[n] }

// Validate checks the invariants a MeshNetwork relies on: at least one
// node, dense IDs 0..n-1, a non-empty address for every node, and a
// self ID that is one of the nodes.
func (t *Topology) Validate() error {
	if len(t.Peers) == 0 {
		return fmt.Errorf("transport: topology has no peers")
	}
	for i := 0; i < len(t.Peers); i++ {
		addr, ok := t.Peers[msg.NodeID(i)]
		if !ok {
			return fmt.Errorf("transport: topology peer IDs not dense: missing node %d (have %s)",
				i, t.peerIDs())
		}
		if strings.TrimSpace(addr) == "" {
			return fmt.Errorf("transport: topology node %d has an empty address", i)
		}
		host, port, found := strings.Cut(addr, ":")
		if !found || host == "" || port == "" {
			return fmt.Errorf("transport: topology node %d address %q is not host:port", i, addr)
		}
	}
	if int(t.Self) < 0 || int(t.Self) >= len(t.Peers) {
		return fmt.Errorf("transport: topology self %d not in 0..%d", t.Self, len(t.Peers)-1)
	}
	return nil
}

// peerIDs renders the declared IDs for error messages.
func (t *Topology) peerIDs() string {
	ids := make([]int, 0, len(t.Peers))
	for id := range t.Peers {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// MarshalJSON implements json.Marshaler using the string-keyed form.
func (t Topology) MarshalJSON() ([]byte, error) {
	out := topologyJSON{Self: t.Self, Reconnect: t.Reconnect, Peers: make(map[string]string, len(t.Peers))}
	for id, addr := range t.Peers {
		out.Peers[strconv.Itoa(int(id))] = addr
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Topology) UnmarshalJSON(data []byte) error {
	var raw topologyJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("transport: topology: %w", err)
	}
	t.Self = raw.Self
	t.Reconnect = raw.Reconnect
	t.Peers = make(map[msg.NodeID]string, len(raw.Peers))
	for k, addr := range raw.Peers {
		id, err := strconv.Atoi(k)
		if err != nil || id < 0 {
			return fmt.Errorf("transport: topology peer key %q is not a node ID", k)
		}
		t.Peers[msg.NodeID(id)] = addr
	}
	return nil
}

// LoadTopology reads and validates a topology JSON file:
//
//	{"self": 1, "peers": {"0": "10.0.0.1:7000", "1": "10.0.0.2:7000"}}
func LoadTopology(path string) (Topology, error) {
	var t Topology
	data, err := os.ReadFile(path)
	if err != nil {
		return t, fmt.Errorf("transport: topology: %w", err)
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("transport: topology %s: %w", path, err)
	}
	return t, t.Validate()
}

// ParsePeers builds a validated topology from the flag form used by
// munin-bench: a comma-separated "id=host:port" list plus the self ID,
// e.g. ParsePeers("0=127.0.0.1:7000,1=127.0.0.1:7001", 1).
func ParsePeers(spec string, self msg.NodeID) (Topology, error) {
	t := Topology{Self: self, Peers: make(map[msg.NodeID]string)}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, addr, found := strings.Cut(part, "=")
		if !found {
			return t, fmt.Errorf("transport: peer entry %q is not id=host:port", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil || id < 0 {
			return t, fmt.Errorf("transport: peer entry %q: bad node ID", part)
		}
		if _, dup := t.Peers[msg.NodeID(id)]; dup {
			return t, fmt.Errorf("transport: peer entry %q: duplicate node %d", part, id)
		}
		t.Peers[msg.NodeID(id)] = strings.TrimSpace(addr)
	}
	return t, t.Validate()
}
