package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"munin/internal/msg"
)

func testNetworks(t *testing.T, n int) map[string]Network {
	t.Helper()
	nets := map[string]Network{
		"chan": NewChanNetwork(n, CostModel{}),
	}
	tcp, err := NewTCPNetwork(n, CostModel{})
	if err != nil {
		t.Fatalf("tcp network: %v", err)
	}
	nets["tcp"] = tcp
	return nets
}

func TestSendRecvBothTransports(t *testing.T) {
	for name, net := range testNetworks(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			m := &msg.Msg{Kind: msg.KindPing, To: 2, Seq: 7, Payload: []byte("hi")}
			if err := net.Endpoint(0).Send(m); err != nil {
				t.Fatal(err)
			}
			got, err := net.Endpoint(2).Recv()
			if err != nil {
				t.Fatal(err)
			}
			if got.From != 0 || got.Seq != 7 || string(got.Payload) != "hi" {
				t.Fatalf("got %v", got)
			}
		})
	}
}

func TestSendToSelf(t *testing.T) {
	net := NewChanNetwork(2, CostModel{})
	defer net.Close()
	if err := net.Endpoint(1).Send(&msg.Msg{Kind: msg.KindPing, To: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := net.Endpoint(1).Recv()
	if err != nil || got.From != 1 {
		t.Fatalf("self send: %v %v", got, err)
	}
}

func TestSendUnknownNode(t *testing.T) {
	net := NewChanNetwork(2, CostModel{})
	defer net.Close()
	if err := net.Endpoint(0).Send(&msg.Msg{To: 9}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
	if err := net.Endpoint(0).Send(&msg.Msg{To: -1}); err == nil {
		t.Fatal("send to negative node succeeded")
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	for name, net := range testNetworks(t, 2) {
		t.Run(name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				_, err := net.Endpoint(1).Recv()
				done <- err
			}()
			net.Close()
			if err := <-done; !errors.Is(err, ErrClosed) {
				t.Fatalf("err = %v, want ErrClosed", err)
			}
		})
	}
}

func TestFIFOPerSenderReceiver(t *testing.T) {
	for name, net := range testNetworks(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			const n = 200
			for i := 0; i < n; i++ {
				m := &msg.Msg{Kind: msg.KindPing, To: 1, Seq: uint64(i)}
				if err := net.Endpoint(0).Send(m); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				got, err := net.Endpoint(1).Recv()
				if err != nil {
					t.Fatal(err)
				}
				if got.Seq != uint64(i) {
					t.Fatalf("out of order: got seq %d want %d", got.Seq, i)
				}
			}
		})
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, net := range testNetworks(t, 5) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			const per = 100
			var wg sync.WaitGroup
			for s := 1; s < 5; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						m := &msg.Msg{Kind: msg.KindPing, To: 0, Seq: uint64(i)}
						if err := net.Endpoint(msg.NodeID(s)).Send(m); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(s)
			}
			counts := make(map[msg.NodeID]int)
			for i := 0; i < 4*per; i++ {
				got, err := net.Endpoint(0).Recv()
				if err != nil {
					t.Fatal(err)
				}
				counts[got.From]++
			}
			wg.Wait()
			for s := msg.NodeID(1); s < 5; s++ {
				if counts[s] != per {
					t.Fatalf("node %d delivered %d, want %d", s, counts[s], per)
				}
			}
		})
	}
}

func TestStatsAccounting(t *testing.T) {
	net := NewChanNetwork(2, DefaultCostModel())
	defer net.Close()
	m := &msg.Msg{Kind: msg.KindCohBase, To: 1, Payload: make([]byte, 100)}
	size := int64(m.WireSize())
	if err := net.Endpoint(0).Send(m); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint(1).Recv(); err != nil {
		t.Fatal(err)
	}
	s := net.Stats()
	if s.Messages() != 1 || s.Bytes() != size {
		t.Fatalf("stats = %v, want 1 msg %d bytes", s, size)
	}
	if s.NodeSent(0) != 1 || s.NodeReceived(1) != 1 || s.NodeSentBytes(0) != size {
		t.Fatalf("per-node stats wrong: sent=%d recvd=%d bytes=%d",
			s.NodeSent(0), s.NodeReceived(1), s.NodeSentBytes(0))
	}
	want := DefaultCostModel().Cost(int(size))
	if s.ModeledNetworkNs() != want {
		t.Fatalf("modeled = %d, want %d", s.ModeledNetworkNs(), want)
	}
	if s.ByClass()["coherence"] != 1 {
		t.Fatalf("by-class = %v", s.ByClass())
	}
	s.Reset()
	if s.Messages() != 0 || s.Bytes() != 0 || s.ModeledNetworkNs() != 0 {
		t.Fatalf("reset failed: %v", s)
	}
}

func TestMulticastChargedOnceOnChan(t *testing.T) {
	net := NewChanNetwork(4, CostModel{})
	defer net.Close()
	m := &msg.Msg{Kind: msg.KindCohBase, From: 0, Payload: []byte("update")}
	if err := net.Multicast(m, []msg.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Hardware multicast: one wire message, three deliveries.
	if got := net.Stats().Messages(); got != 1 {
		t.Fatalf("multicast charged %d messages, want 1", got)
	}
	for _, n := range []msg.NodeID{1, 2, 3} {
		got, err := net.Endpoint(n).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got.Payload) != "update" || got.Flags&msg.FlagMulticast == 0 {
			t.Fatalf("node %d got %v", n, got)
		}
	}
}

func TestMulticastUnicastFallbackOnTCP(t *testing.T) {
	tcp, err := NewTCPNetwork(3, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	m := &msg.Msg{Kind: msg.KindCohBase, From: 0, Payload: []byte("u")}
	if err := tcp.Multicast(m, []msg.NodeID{1, 2}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []msg.NodeID{1, 2} {
		if _, err := tcp.Endpoint(n).Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if got := tcp.Stats().Messages(); got != 2 {
		t.Fatalf("tcp multicast charged %d messages, want 2 (unicast fallback)", got)
	}
}

// TestTCPCoalescesQueuedMessages stages N messages for one peer while
// its writer is held, then releases it: everything queued must leave in
// one vectored write (one frame) and still arrive complete and in
// order.
func TestTCPCoalescesQueuedMessages(t *testing.T) {
	tcp, err := NewTCPNetwork(2, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	ep := tcp.eps[0]
	peer := ep.peers[1]

	peer.q.hold()
	const n = 50
	for i := 0; i < n; i++ {
		m := &msg.Msg{Kind: msg.KindCohBase, To: 1, Seq: uint64(i), Payload: []byte("diff")}
		if err := ep.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	baseWrites := tcp.Stats().WireWrites()
	baseFrames := tcp.Stats().WireFrames()
	peer.q.release()
	if err := ep.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	for i := 0; i < n; i++ {
		got, err := tcp.Endpoint(1).Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != uint64(i) || string(got.Payload) != "diff" {
			t.Fatalf("message %d: got %v", i, got)
		}
	}
	if w := tcp.Stats().WireWrites() - baseWrites; w != 1 {
		t.Errorf("%d queued messages took %d wire writes, want 1", n, w)
	}
	if f := tcp.Stats().WireFrames() - baseFrames; f != 1 {
		t.Errorf("%d queued messages took %d frames, want 1", n, f)
	}
	if c := tcp.Stats().WireCoalesced(); c < n {
		t.Errorf("wire.coalesced = %d, want >= %d", c, n)
	}
	if c := tcp.Stats().ClassMessages("wire.coalesced.coherence"); c < n {
		t.Errorf("wire.coalesced.coherence = %d, want >= %d", c, n)
	}
}

// TestTCPWriteErrorLatched kills one peer connection under its writer:
// the failed batch's error must be latched so the fence reports it and
// later sends fail fast instead of being silently dropped.
func TestTCPWriteErrorLatched(t *testing.T) {
	tcp, err := NewTCPNetwork(2, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	ep := tcp.eps[0]
	peer := ep.peers[1]
	peer.q.hold()
	if err := ep.Send(&msg.Msg{Kind: msg.KindPing, To: 1}); err != nil {
		t.Fatal(err)
	}
	peer.conn.Close() // the wire dies with a message queued
	peer.q.release()
	if err := ep.Flush(); err == nil {
		t.Fatal("flush after wire failure reported success")
	}
	if err := ep.Send(&msg.Msg{Kind: msg.KindPing, To: 1}); err == nil {
		t.Fatal("send after wire failure reported success")
	}
	// Other peers are unaffected (self-connection still works).
	if err := ep.Send(&msg.Msg{Kind: msg.KindPing, To: 0}); err != nil {
		t.Fatalf("send to healthy peer: %v", err)
	}
	if got, err := tcp.Endpoint(0).Recv(); err != nil || got.From != 0 {
		t.Fatalf("healthy peer recv: %v %v", got, err)
	}
}

// TestTCPCloseWakesBlockedSender fills a peer's bounded send queue with
// the writer held, leaves one sender blocked on the bound, and closes
// the network: the blocked sender must get ErrClosed (not a write on a
// closed connection), and Close must return.
func TestTCPCloseWakesBlockedSender(t *testing.T) {
	tcp, err := NewTCPNetwork(2, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	ep := tcp.eps[0]
	ep.peers[1].q.hold()
	for i := 0; i < sendQueueDepth; i++ {
		if err := ep.Send(&msg.Msg{Kind: msg.KindPing, To: 1}); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- ep.Send(&msg.Msg{Kind: msg.KindPing, To: 1})
	}()
	// The close must both wake the blocked sender with ErrClosed and
	// still drain the already-queued messages to the wire.
	if err := tcp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-blocked; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked sender got %v, want ErrClosed", err)
	}
	if err := ep.Send(&msg.Msg{Kind: msg.KindPing, To: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close got %v, want ErrClosed", err)
	}
	if err := ep.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close got %v, want ErrClosed", err)
	}
}

// TestTCPCloseDeliversQueued checks the deterministic drain: messages
// enqueued (but not yet written) when Close starts are still delivered
// to their destination queues before Recv reports ErrClosed.
func TestTCPCloseDeliversQueued(t *testing.T) {
	tcp, err := NewTCPNetwork(2, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	ep := tcp.eps[0]
	ep.peers[1].q.hold()
	const n = 7
	for i := 0; i < n; i++ {
		if err := ep.Send(&msg.Msg{Kind: msg.KindPing, To: 1, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tcp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i := 0; i < n; i++ {
		got, err := tcp.Endpoint(1).Recv()
		if err != nil {
			t.Fatalf("recv %d after close: %v", i, err)
		}
		if got.Seq != uint64(i) {
			t.Fatalf("recv %d: got seq %d", i, got.Seq)
		}
	}
	if _, err := tcp.Endpoint(1).Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained recv got %v, want ErrClosed", err)
	}
}

// TestChanSendFlush pins the chan transport to the same extended
// interface: Send delivers immediately and Flush is a trivial fence.
func TestChanSendFlush(t *testing.T) {
	net := NewChanNetwork(2, CostModel{})
	defer net.Close()
	if err := net.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("q")}); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint(0).Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, err := net.Endpoint(1).Recv()
	if err != nil || string(got.Payload) != "q" {
		t.Fatalf("recv: %v %v", got, err)
	}
	if net.Stats().WireWrites() != 1 || net.Stats().WireCoalesced() != 0 {
		t.Fatalf("chan wire counters: writes=%d coalesced=%d",
			net.Stats().WireWrites(), net.Stats().WireCoalesced())
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{LatencyNs: 1000, NsPerByte: 2}
	if got := c.Cost(100); got != 1200 {
		t.Fatalf("cost = %d, want 1200", got)
	}
	if DefaultCostModel().Cost(0) <= 0 {
		t.Fatal("default cost model has no latency")
	}
}

func TestClassOf(t *testing.T) {
	cases := map[msg.Kind]string{
		msg.KindPing:         "control",
		msg.KindLockBase + 1: "lock",
		msg.KindCohBase:      "coherence",
		msg.KindIvyBase + 5:  "ivy",
		msg.KindSyncBase:     "sync",
		msg.KindAppBase + 2:  "app",
	}
	for k, want := range cases {
		if got := ClassOf(k); got != want {
			t.Errorf("ClassOf(%#x) = %q, want %q", uint16(k), got, want)
		}
	}
}

func TestNewChanNetworkPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 nodes")
		}
	}()
	NewChanNetwork(0, CostModel{})
}

func TestTCPLargePayload(t *testing.T) {
	tcp, err := NewTCPNetwork(2, CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	m := &msg.Msg{Kind: msg.KindPing, To: 1, Payload: payload}
	if err := tcp.Endpoint(0).Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := tcp.Endpoint(1).Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != len(payload) {
		t.Fatalf("len = %d, want %d", len(got.Payload), len(payload))
	}
	for i := range payload {
		if got.Payload[i] != payload[i] {
			t.Fatalf("payload corrupt at %d", i)
		}
	}
}

func ExampleChanNetwork() {
	net := NewChanNetwork(2, CostModel{})
	defer net.Close()
	net.Endpoint(0).Send(&msg.Msg{Kind: msg.KindPing, To: 1, Payload: []byte("ping")})
	m, _ := net.Endpoint(1).Recv()
	fmt.Println(string(m.Payload), "from", m.From)
	// Output: ping from 0
}
