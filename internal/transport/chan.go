package transport

import (
	"fmt"

	"munin/internal/msg"
)

// ChanNetwork is the in-process network: one unbounded queue per node.
// Messages are fully serialized on send and deserialized on receive, so
// no Go pointer ever crosses a node boundary — the same no-shared-state
// discipline a real distributed memory machine enforces.
type ChanNetwork struct {
	eps   []*chanEndpoint
	stats *Stats
	cost  CostModel
}

// NewChanNetwork creates an in-process network of n nodes with the given
// cost model.
func NewChanNetwork(n int, cost CostModel) *ChanNetwork {
	if n <= 0 {
		panic("transport: network needs at least one node")
	}
	net := &ChanNetwork{stats: newStats(n), cost: cost}
	net.eps = make([]*chanEndpoint, n)
	for i := range net.eps {
		net.eps[i] = &chanEndpoint{net: net, node: msg.NodeID(i), q: newQueue()}
	}
	return net
}

// Endpoint implements Network.
func (n *ChanNetwork) Endpoint(id msg.NodeID) Endpoint {
	return n.eps[id]
}

// Nodes implements Network.
func (n *ChanNetwork) Nodes() int { return len(n.eps) }

// Stats implements Network.
func (n *ChanNetwork) Stats() *Stats { return n.stats }

// Multicast models hardware (Ethernet) multicast: the message is charged
// once on the wire but delivered to every member.
func (n *ChanNetwork) Multicast(m *msg.Msg, members []msg.NodeID) error {
	m.Flags |= msg.FlagMulticast
	buf := m.Marshal()
	n.stats.charge(m, n.cost, m.From)
	n.stats.chargeWire(1, nil)
	for _, dst := range members {
		if int(dst) >= len(n.eps) || dst < 0 {
			return fmt.Errorf("transport: multicast to unknown node %d", dst)
		}
		// Each member gets its own copy of the buffer; payload slices
		// must not be shared across nodes.
		cp := append([]byte(nil), buf...)
		if err := n.eps[dst].q.push(cp); err != nil {
			return err
		}
		n.stats.delivered(dst)
	}
	return nil
}

// Close implements Network.
func (n *ChanNetwork) Close() error {
	for _, ep := range n.eps {
		ep.q.close()
	}
	return nil
}

type chanEndpoint struct {
	net  *ChanNetwork
	node msg.NodeID
	q    *queue
}

func (e *chanEndpoint) Node() msg.NodeID { return e.node }

func (e *chanEndpoint) Send(m *msg.Msg) error {
	if int(m.To) >= len(e.net.eps) || m.To < 0 {
		return fmt.Errorf("transport: send to unknown node %d", m.To)
	}
	m.From = e.node
	buf := m.Marshal()
	e.net.stats.charge(m, e.net.cost, e.node)
	// In-process delivery is one queue push — the chan transport's
	// "wire write". Charging it keeps the wire counters comparable
	// across backends (no coalescing to observe here: the win the TCP
	// writer pipeline buys is exactly what this substrate gets for
	// free).
	e.net.stats.chargeWire(1, nil)
	if err := e.net.eps[m.To].q.push(buf); err != nil {
		return err
	}
	e.net.stats.delivered(m.To)
	return nil
}

// Flush implements Endpoint. Sends are delivered synchronously, so the
// fence is trivially satisfied.
func (e *chanEndpoint) Flush() error { return nil }

func (e *chanEndpoint) Recv() (*msg.Msg, error) {
	it, err := e.q.pop()
	if err != nil {
		return nil, err
	}
	return msg.Unmarshal(it.buf)
}
