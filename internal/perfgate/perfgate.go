// Package perfgate declares which benchmark metrics the perf gate
// guards. cmd/perfdiff consumes this spec to diff the two newest
// BENCH_<n>.json trajectory files, and internal/analysis/regsync
// cross-checks it against the newest trajectory file itself — a gate
// key that no experiment emits anymore (a silent rename in bench code)
// fails a test instead of quietly disabling its regression check.
//
// Keeping the spec apart from the diff logic is the same move as
// internal/stats' counter registry: the names that CI enforcement
// hangs off live in exactly one place.
package perfgate

import "strings"

// Gate selects the guarded metrics of one experiment, by exact name or
// by prefix (optionally narrowed by a suffix, for families like
// munin.<app>.msgs).
type Gate struct {
	Exp    string // experiment ID, e.g. "E16"
	Exact  string // exact metric name, or ""
	Prefix string // metric name prefix, or ""
	Suffix string // with Prefix: required suffix
}

// Match reports whether metric is guarded by this gate.
func (g Gate) Match(metric string) bool {
	if g.Exact != "" {
		return metric == g.Exact
	}
	return strings.HasPrefix(metric, g.Prefix) &&
		(g.Suffix == "" || strings.HasSuffix(metric, g.Suffix))
}

// String renders the gate's key shape for error messages.
func (g Gate) String() string {
	if g.Exact != "" {
		return g.Exp + " " + g.Exact
	}
	return g.Exp + " " + g.Prefix + "*" + g.Suffix
}

// Headline is the relative (ratio-thresholded, lower-is-better) gate
// spec: count metrics at the tight threshold, wall-clock metrics
// (TimeBased) at the loose one.
var Headline = []Gate{
	{Exp: "E1", Prefix: "munin.", Suffix: ".msgs"},
	{Exp: "E10", Prefix: "batched."},
	{Exp: "E11", Prefix: "batched.writes."},
	{Exp: "E12", Prefix: "batched.writes."},
	{Exp: "E14", Prefix: "batched.writes."},
	{Exp: "E15", Exact: MetricFlushWireNs},
	{Exp: "E15", Prefix: "flush.ns."},
	{Exp: "E16", Prefix: "lease.write.ns."},
	{Exp: "E16", Prefix: "copyset.write.ns."},
	{Exp: "E17", Exact: MetricRejoinFirstReadMs},
	{Exp: "E17", Exact: MetricRejoinReprimeMsgs},
}

// Absolute is the non-ratio gate spec; the semantics of each key are
// enforced by cmd/perfdiff (zero allocations, flat fan-out, digests
// exactly 1, crash-point floor).
var Absolute = []Gate{
	{Exp: "E15", Exact: MetricFlushAllocs},
	{Exp: "E16", Prefix: LeaseMsgsPerWritePrefix},
	{Exp: "E17", Prefix: DigestMatchPrefix},
	{Exp: "E17", Exact: MetricCrashPoints},
}

// Absolutely-gated metric keys and the headline exacts, named so bench
// emitters, perfdiff and the sync test agree on one spelling.
const (
	MetricFlushAllocs       = "flush.allocs"
	MetricFlushWireNs       = "flush.wire.ns"
	MetricRejoinFirstReadMs = "rejoin.first_read_ms"
	MetricRejoinReprimeMsgs = "rejoin.reprime_msgs"
	MetricCrashPoints       = "crash.points"
	LeaseMsgsPerWritePrefix = "lease.msgs_per_write."
	DigestMatchPrefix       = "digest.match."

	// MinCrashPoints is the floor perfdiff holds crash.points to: the
	// E17 sweep must keep covering the named protocol steps.
	MinCrashPoints = 4
)

// Experiments returns the guarded experiment IDs in diff order.
func Experiments() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range Headline {
		if !seen[g.Exp] {
			seen[g.Exp] = true
			out = append(out, g.Exp)
		}
	}
	return out
}

// IsHeadline reports whether metric is relatively gated for exp.
func IsHeadline(exp, metric string) bool {
	for _, g := range Headline {
		if g.Exp == exp && g.Match(metric) {
			return true
		}
	}
	return false
}

// TimeBased reports whether a metric is a wall-clock measurement
// (nanoseconds or milliseconds) rather than a deterministic count —
// gated at the looser threshold because shared runners jitter.
func TimeBased(metric string) bool {
	return strings.Contains(metric, ".ns") || strings.HasSuffix(metric, "_ms")
}
