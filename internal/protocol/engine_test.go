package protocol

import (
	"bytes"
	"testing"

	"munin/internal/duq"
	"munin/internal/msg"
)

// leaseOpts pins the home and selects the lease engine per object.
func leaseOpts(home int) Options {
	o := DefaultOptions()
	o.Home = msg.NodeID(home)
	o.Engine = EngineLease
	return o
}

// ---------------------------------------------------------------------
// Engine selection and resolution

func TestEngineKindStrings(t *testing.T) {
	if EngineDefault.String() != "default" || EngineDirectory.String() != "directory" ||
		EngineLease.String() != "lease" {
		t.Fatal("engine names wrong")
	}
	if EngineKind(9).String() == "" {
		t.Fatal("unknown engine empty")
	}
}

func TestEngineResolvesPerAnnotation(t *testing.T) {
	r := newRig(t, 2)
	r.nodes[0].SetAnnotationEngine(ReadMostly, EngineLease)
	meta := Meta{Annot: ReadMostly}
	if e := r.nodes[0].resolveEngine(&meta); e != EngineLease {
		t.Fatalf("annotation selection ignored: %v", e)
	}
	// Per-object option overrides the table.
	meta.Opts.Engine = EngineDirectory
	if e := r.nodes[0].resolveEngine(&meta); e != EngineDirectory {
		t.Fatalf("per-object override ignored: %v", e)
	}
	// Everything else defaults to the directory machine.
	conv := Meta{Annot: Conventional}
	if e := r.nodes[0].resolveEngine(&conv); e != EngineDirectory {
		t.Fatalf("default engine: %v", e)
	}
}

func TestEngineTravelsInAnnounce(t *testing.T) {
	// Only node 0 selects the lease engine for read-mostly objects; the
	// announce must carry the resolved kind so node 1 installs the same
	// engine anyway.
	r := newRig(t, 2)
	r.nodes[0].SetAnnotationEngine(ReadMostly, EngineLease)
	r.alloc(2, "rm", 8, ReadMostly, DefaultOptions(), u64bytes(5)) // home = node 0
	for i, n := range r.nodes {
		if k := n.mustObj(2).eng.kind(); k != EngineLease {
			t.Fatalf("node %d installed %v", i, k)
		}
	}
}

func TestLeaseRequiresReadMostly(t *testing.T) {
	r := newRig(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("lease engine on a conventional object did not panic")
		}
	}()
	opts := DefaultOptions()
	opts.Engine = EngineLease
	r.alloc(1, "bad", 8, Conventional, opts, nil)
}

func TestSetAnnotationEngineRejectsLeaseForOthers(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetAnnotationEngine(WriteMany, lease) did not panic")
		}
	}()
	r.nodes[0].SetAnnotationEngine(WriteMany, EngineLease)
}

// ---------------------------------------------------------------------
// Lease protocol behavior

// TestLeaseReadLocalUntilSync: the first read takes a lease (one round
// trip), repeats are free, and the lease lapses exactly at the reader's
// next synchronization point.
func TestLeaseReadLocalUntilSync(t *testing.T) {
	r := newRig(t, 3)
	q := duq.New()
	r.alloc(3, "rm", 8, ReadMostly, leaseOpts(0), u64bytes(7))

	if got := readU64(r.nodes[1], q, 3, 0); got != 7 {
		t.Fatalf("first read = %d", got)
	}
	if g := r.nodes[0].C.Snapshot()["lease.granted"]; g != 1 {
		t.Fatalf("lease.granted = %d", g)
	}
	before := msgs(r)
	for i := 0; i < 5; i++ {
		if got := readU64(r.nodes[1], q, 3, 0); got != 7 {
			t.Fatalf("leased read = %d", got)
		}
	}
	if msgs(r) != before {
		t.Fatal("leased reads sent messages")
	}

	// The home writes; the unsynchronized reader legally still sees the
	// old version locally (§3.2 loose coherence).
	r.nodes[0].Write(q, 3, 0, u64bytes(8))
	if msgs(r) != before {
		t.Fatal("home write under the lease engine sent messages")
	}
	if got := readU64(r.nodes[1], q, 3, 0); got != 7 {
		t.Fatalf("unsynchronized read = %d, want stale 7", got)
	}

	// Synchronize: the lease lapses, the next read revalidates and the
	// grant ships the fresh bytes.
	r.nodes[1].FlushQueue(q)
	if got := readU64(r.nodes[1], q, 3, 0); got != 8 {
		t.Fatalf("post-sync read = %d, want 8", got)
	}
	c := r.nodes[1].C.Snapshot()
	if c["lease.expired_reads"] == 0 {
		t.Fatal("lease.expired_reads not counted")
	}
	if c["rm.remote_reads"] != 2 {
		t.Fatalf("rm.remote_reads = %d, want 2 (take + revalidate)", c["rm.remote_reads"])
	}
	if g := r.nodes[0].C.Snapshot()["lease.renewed"]; g != 1 {
		t.Fatalf("lease.renewed = %d", g)
	}
}

// TestLeaseRenewalUnchangedIsDataFree: revalidating an unchanged object
// costs a version echo, not the bytes.
func TestLeaseRenewalUnchangedIsDataFree(t *testing.T) {
	r := newRig(t, 2)
	q := duq.New()
	size := 1 << 12
	init := bytes.Repeat([]byte{0xAB}, size)
	r.alloc(2, "big", size, ReadMostly, leaseOpts(0), init)

	buf := make([]byte, size)
	r.nodes[1].Read(q, 2, 0, buf) // take
	bytesBefore := r.c.Stats().Bytes()
	r.nodes[1].FlushQueue(q) // lapse the lease; object unchanged
	r.nodes[1].Read(q, 2, 0, buf)
	renewal := r.c.Stats().Bytes() - bytesBefore
	if renewal >= int64(size) {
		t.Fatalf("unchanged renewal moved %d bytes (object is %d)", renewal, size)
	}
	if g := r.nodes[0].C.Snapshot()["lease.renewed"]; g != 1 {
		t.Fatalf("lease.renewed = %d", g)
	}
}

// TestLeaseWriteThroughReadYourWrites: a remote writer whose lease was
// current installs its own bytes and keeps reading locally.
func TestLeaseWriteThroughReadYourWrites(t *testing.T) {
	r := newRig(t, 2)
	q := duq.New()
	r.alloc(2, "rm", 8, ReadMostly, leaseOpts(0), u64bytes(1))

	if got := readU64(r.nodes[1], q, 2, 0); got != 1 {
		t.Fatalf("prime read = %d", got)
	}
	r.nodes[1].Write(q, 2, 0, u64bytes(2)) // write-through; ver contiguous
	before := msgs(r)
	if got := readU64(r.nodes[1], q, 2, 0); got != 2 {
		t.Fatalf("read-your-write = %d", got)
	}
	if msgs(r) != before {
		t.Fatal("read after own write left the node")
	}
	// And the home really has the bytes.
	if got := readU64(r.nodes[0], q, 2, 0); got != 2 {
		t.Fatalf("home = %d", got)
	}
}

// TestLeaseWriteRaceDropsLease: when another node's write slips between
// a writer's lease version and its own write-through, the writer's copy
// is missing bytes — the lease must drop so the next read refetches.
func TestLeaseWriteRaceDropsLease(t *testing.T) {
	r := newRig(t, 3)
	q := duq.New()
	r.alloc(3, "rm", 16, ReadMostly, leaseOpts(0), nil)

	var b [16]byte
	r.nodes[1].Read(q, 3, 0, b[:]) // node 1 leases ver 0
	// Node 2 writes the low half: home ver -> 1.
	r.nodes[2].Write(q, 3, 0, u64bytes(0xAA))
	// Node 1 writes the high half: home ver -> 2, but node 1's copy
	// never saw ver 1, so installing would lose node 2's bytes.
	r.nodes[1].Write(q, 3, 8, u64bytes(0xBB))
	o := r.nodes[1].mustObj(3)
	o.mu.Lock()
	valid := o.leaseValid
	o.mu.Unlock()
	if valid {
		t.Fatal("non-contiguous write-through kept the lease")
	}
	// The refetch sees both halves.
	if lo, hi := readU64(r.nodes[1], q, 3, 0), readU64(r.nodes[1], q, 3, 8); lo != 0xAA || hi != 0xBB {
		t.Fatalf("refetched %x %x", lo, hi)
	}
}

// TestLeaseWriteNoFanOut is the E16 claim in miniature: with K leased
// readers, a home write costs ZERO messages under the lease engine,
// while the directory machine's replicated mode relays to every copy.
func TestLeaseWriteNoFanOut(t *testing.T) {
	const nodes = 4
	q := duq.New()

	perWrite := func(opts Options) int64 {
		r := newRig(t, nodes)
		r.alloc(4, "rm", 8, ReadMostly, opts, u64bytes(1)) // home = node 0
		for i := 1; i < nodes; i++ {
			readU64(r.nodes[i], q, 4, 0) // prime every reader's copy
		}
		before := msgs(r)
		r.nodes[0].Write(q, 4, 0, u64bytes(2))
		return msgs(r) - before
	}

	dir := DefaultOptions()
	dir.Home = msg.NodeID(0)
	dir.ForceReplicated = true
	if d := perWrite(dir); d < int64(nodes-1) {
		t.Fatalf("directory replicated write sent %d messages, want >= %d fan-out", d, nodes-1)
	}
	if d := perWrite(leaseOpts(0)); d != 0 {
		t.Fatalf("lease write sent %d messages, want 0", d)
	}
}

// ---------------------------------------------------------------------
// ReadMostly && ForceReplicated under both engines

// TestForceReplicatedBothEngines: a force-replicated read-mostly object
// must serve repeat reads locally from the very first access under BOTH
// engines — one priming fetch, then zero traffic.
func TestForceReplicatedBothEngines(t *testing.T) {
	for _, eng := range []EngineKind{EngineDirectory, EngineLease} {
		t.Run(eng.String(), func(t *testing.T) {
			r := newRig(t, 3)
			q := duq.New()
			opts := DefaultOptions()
			opts.Home = msg.NodeID(0)
			opts.ForceReplicated = true
			opts.Engine = eng
			r.alloc(3, "rm", 8, ReadMostly, opts, u64bytes(9))

			if got := readU64(r.nodes[2], q, 3, 0); got != 9 {
				t.Fatalf("priming read = %d", got)
			}
			before := msgs(r)
			for i := 0; i < 4; i++ {
				if got := readU64(r.nodes[2], q, 3, 0); got != 9 {
					t.Fatalf("replicated read = %d", got)
				}
			}
			if d := msgs(r) - before; d != 0 {
				t.Fatalf("replicated re-reads sent %d messages under %v", d, eng)
			}
			if c := r.nodes[2].C.Snapshot()["rm.remote_reads"]; c != 1 {
				t.Fatalf("rm.remote_reads = %d, want 1 priming fetch", c)
			}
		})
	}
}

// ---------------------------------------------------------------------
// §3.4.2 refresh→invalidate adaptation (directory engine)

// TestUpdModeAdaptsInvalidateToRefresh drives the untested dynamic
// update-mode machine: start in invalidate mode, make the dropped
// copies refetch, and assert the home switches to refresh — after which
// readers stay valid across writes.
func TestUpdModeAdaptsInvalidateToRefresh(t *testing.T) {
	r := newRig(t, 3)
	q := duq.New()
	opts := DefaultOptions()
	opts.Home = msg.NodeID(0)
	opts.ForceReplicated = true
	opts.Dynamic = true
	opts.Update = Invalidate
	r.alloc(3, "adapt", 8, ReadMostly, opts, u64bytes(0))

	// Both remote nodes join the copyset.
	readU64(r.nodes[1], q, 3, 0)
	readU64(r.nodes[2], q, 3, 0)

	// Write #1 (invalidate mode): drops both copies.
	r.nodes[2].Write(q, 3, 0, u64bytes(1))
	if got := r.nodes[0].C.Snapshot()["mode.switch"]; got != 0 {
		t.Fatalf("premature mode.switch = %d", got)
	}
	// Both dropped copies refetch before the next write — rereads(2)*2
	// >= dropped(1): refreshing would have been cheaper.
	if a, b := readU64(r.nodes[1], q, 3, 0), readU64(r.nodes[2], q, 3, 0); a != 1 || b != 1 {
		t.Fatalf("refetch = %d %d", a, b)
	}

	// Write #2: the home notices and switches to refresh.
	r.nodes[2].Write(q, 3, 0, u64bytes(2))
	if got := r.nodes[0].C.Snapshot()["mode.switch"]; got != 1 {
		t.Fatalf("mode.switch = %d, want 1", got)
	}
	// Refresh mode: node 1's copy was pushed the new bytes — reading it
	// costs nothing.
	before := msgs(r)
	if got := readU64(r.nodes[1], q, 3, 0); got != 2 {
		t.Fatalf("refreshed read = %d", got)
	}
	if msgs(r) != before {
		t.Fatal("refreshed copy still refetched")
	}

	// Every copy byte-identical after the adaptation.
	for i, n := range r.nodes {
		if got := readU64(n, q, 3, 0); got != 2 {
			t.Fatalf("node %d sees %d after adaptation", i, got)
		}
	}
}

// TestUpdModeRefreshProbesEveryEighth: in dynamic refresh mode the home
// re-measures with an invalidation on every 8th update.
func TestUpdModeRefreshProbesEveryEighth(t *testing.T) {
	r := newRig(t, 2)
	q := duq.New()
	opts := DefaultOptions()
	opts.Home = msg.NodeID(0)
	opts.ForceReplicated = true
	opts.Dynamic = true
	opts.Update = Refresh
	r.alloc(2, "probe", 8, ReadMostly, opts, u64bytes(0))

	readU64(r.nodes[1], q, 2, 0) // join the copyset
	for i := 1; i <= 8; i++ {
		r.nodes[0].Write(q, 2, 0, u64bytes(uint64(i)))
	}
	// Write #8 probed with an invalidation: node 1's copy is invalid
	// and the next read must refetch (but still sees the final value).
	o := r.nodes[1].mustObj(2)
	o.mu.Lock()
	st := o.state
	o.mu.Unlock()
	if st != Invalid {
		t.Fatalf("state after probe = %v, want invalid", st)
	}
	if got := readU64(r.nodes[1], q, 2, 0); got != 8 {
		t.Fatalf("post-probe read = %d", got)
	}
}

// ---------------------------------------------------------------------
// Differential oracle: one scripted read-mostly workload, every engine
// configuration, byte-identical final memory everywhere.

func TestEnginesDifferentialOracle(t *testing.T) {
	const nodes, size = 3, 64

	run := func(opts Options) [][]byte {
		r := newRig(t, nodes)
		q := duq.New()
		r.alloc(3, "oracle", size, ReadMostly, opts, nil)
		// Interleave reads and writes from every node, with sync points
		// scattered through (writes go through the home, so later
		// writes win regardless of engine — the schedule is
		// deterministic).
		for step := 0; step < 24; step++ {
			w := r.nodes[(step*7)%nodes]
			w.Write(q, 3, (step%8)*8, u64bytes(uint64(step*131+17)))
			rd := r.nodes[(step*5+1)%nodes]
			var b [8]byte
			rd.Read(q, 3, (step%8)*8, b[:])
			if step%5 == 0 {
				rd.FlushQueue(q)
			}
		}
		// Final synchronization + read on every node.
		out := make([][]byte, nodes)
		for i, n := range r.nodes {
			n.FlushQueue(q)
			out[i] = make([]byte, size)
			n.Read(q, 3, 0, out[i])
		}
		return out
	}

	configs := map[string]Options{}
	dir := DefaultOptions()
	dir.Home = msg.NodeID(0)
	configs["directory-remote"] = dir
	rep := dir
	rep.ForceReplicated = true
	configs["directory-replicated"] = rep
	dyn := rep
	dyn.Dynamic = true
	dyn.Update = Invalidate
	configs["directory-dynamic-invalidate"] = dyn
	configs["lease"] = leaseOpts(0)

	var want []byte
	for name, opts := range configs {
		outs := run(opts)
		for i := 1; i < nodes; i++ {
			if !bytes.Equal(outs[i], outs[0]) {
				t.Fatalf("%s: node %d diverged from node 0\n%x\n%x", name, i, outs[i], outs[0])
			}
		}
		if want == nil {
			want = outs[0]
		} else if !bytes.Equal(outs[0], want) {
			t.Fatalf("%s: final memory differs from other engines\n%x\n%x", name, outs[0], want)
		}
	}
	if want == nil || bytes.Equal(want, make([]byte, size)) {
		t.Fatal("oracle workload left memory zero — vacuous")
	}
}
