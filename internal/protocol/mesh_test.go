package protocol

import (
	"errors"
	"net"
	"testing"
	"time"

	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/transport"
)

// TestFlushSurfacesErrPeerDownOverMesh: when the home's process dies,
// a subsequent flush on the writer fails with the typed
// *transport.ErrPeerDown instead of panicking opaquely or hanging —
// the contract multi-process drivers (bench E12, munin-bench -peers)
// rely on.
func TestFlushSurfacesErrPeerDownOverMesh(t *testing.T) {
	addrs := make([]string, 0, 2)
	lns := make([]net.Listener, 0, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	build := func(self msg.NodeID) (*cluster.Cluster, *Node) {
		topo := transport.Topology{Self: self, Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		k := clu.Kernel(self)
		return clu, NewNode(k, dlock.NewService(k))
	}
	homeClu, _ := build(0)
	writerClu, writerNode := build(1)
	defer writerClu.Close()

	// Allocate and prime over the live mesh.
	q := duq.New()
	opts := DefaultOptions()
	opts.Home = 0
	id := memory.ObjectID(1)
	writerNode.Alloc(Meta{ID: id, Name: "wm", Size: 64, Annot: WriteMany, Opts: opts}, nil)
	buf := make([]byte, 8)
	writerNode.Read(q, id, 0, buf)

	// Dirty the object, then kill the home "process" abruptly before
	// the flush — no goodbye, so the writer observes wire death (a
	// graceful Close would surface *transport.ErrPeerGone instead; see
	// TestFlushSurfacesErrPeerGoneAfterHomeLeaves).
	writerNode.Write(q, id, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	homeClu.Kill()

	start := time.Now()
	err := writerNode.TryFlushQueue(q)
	var pd *transport.ErrPeerDown
	if !errors.As(err, &pd) || pd.Node != 0 {
		t.Fatalf("TryFlushQueue after home death = %v, want *transport.ErrPeerDown{Node: 0}", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("flush took %v to fail, want < 1s", elapsed)
	}
	// The failed flush commits the attempted entry: its diff was
	// consumed and the dead peer can never receive it (the latch is
	// permanent), so keeping it queued would only let a retry succeed
	// vacuously. The typed error above is the loss report.
	if q.Contains(id) {
		t.Fatal("failed flush left a consumed entry queued (a retry would succeed vacuously)")
	}
	if err := writerNode.TryFlushQueue(q); err != nil {
		t.Fatalf("empty retry after reported loss = %v, want nil", err)
	}
}

// TestFlushSurfacesErrPeerGoneAfterHomeLeaves pins the other half of
// the failure vocabulary: a home that departs CLEANLY (graceful Close
// → goodbye handshake) makes a later flush fail with the typed
// *transport.ErrPeerGone — distinguishable from wire death, because
// nothing was lost: the home drained everything it had sent before
// leaving.
func TestFlushSurfacesErrPeerGoneAfterHomeLeaves(t *testing.T) {
	addrs := make([]string, 0, 2)
	lns := make([]net.Listener, 0, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	build := func(self msg.NodeID) (*cluster.Cluster, *Node) {
		topo := transport.Topology{Self: self, Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		k := clu.Kernel(self)
		return clu, NewNode(k, dlock.NewService(k))
	}
	homeClu, _ := build(0)
	writerClu, writerNode := build(1)
	defer writerClu.Close()

	q := duq.New()
	opts := DefaultOptions()
	opts.Home = 0
	id := memory.ObjectID(1)
	writerNode.Alloc(Meta{ID: id, Name: "wm", Size: 64, Annot: WriteMany, Opts: opts}, nil)
	buf := make([]byte, 8)
	writerNode.Read(q, id, 0, buf)

	writerNode.Write(q, id, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	homeClu.Close() // graceful: goodbye, drain, ack

	start := time.Now()
	err := writerNode.TryFlushQueue(q)
	var pg *transport.ErrPeerGone
	if !errors.As(err, &pg) || pg.Node != 0 {
		t.Fatalf("TryFlushQueue after home departure = %v, want *transport.ErrPeerGone{Node: 0}", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("flush took %v to fail, want < 1s", elapsed)
	}
	// No peer-down latch anywhere: the departure was clean.
	if got := writerClu.Stats().WirePeerDown(); got != 0 {
		t.Fatalf("wire.peer_down = %d after a clean departure, want 0", got)
	}
	if got := writerClu.Stats().WirePeerGone(); got != 1 {
		t.Fatalf("wire.peer_gone = %d, want 1", got)
	}
}

// TestPeerGonePrunesCopyset: a copy holder departs cleanly; the home
// prunes it from the object's directory copy set (departure-aware
// membership), so the next flush at the home relays to nobody instead
// of paying a failed send to the departed member on every update.
func TestPeerGonePrunesCopyset(t *testing.T) {
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	build := func(self msg.NodeID) (*cluster.Cluster, *Node) {
		topo := transport.Topology{Self: self, Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		k := clu.Kernel(self)
		node := NewNode(k, dlock.NewService(k))
		// The SPMD runtime's membership wiring.
		clu.OnPeerGone(func(peer msg.NodeID, _ error) { node.PeerGone(peer) })
		return clu, node
	}
	homeClu, homeNode := build(0)
	defer homeClu.Close()
	readerClu, readerNode := build(1)

	q := duq.New()
	opts := DefaultOptions()
	opts.Home = 0
	id := memory.ObjectID(1)
	// SPMD-style deterministic allocation: both members install their
	// own view locally, no announce traffic.
	meta := Meta{ID: id, Name: "wm", Size: 64, Annot: WriteMany, Opts: opts}
	homeNode.InstallLocal(meta, nil)
	readerNode.InstallLocal(meta, nil)

	// The reader faults a copy in (joining the copyset at the home),
	// then departs cleanly.
	buf := make([]byte, 8)
	readerNode.Read(duq.New(), id, 0, buf)
	readerClu.Close()

	// Wait for the home to observe the departure (the goodbye rides the
	// frame stream; OnPeerGone fires on the home's Recv path).
	deadline := time.Now().Add(5 * time.Second)
	for homeNode.C.Get("member.gone") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("home never observed the departure")
		}
		time.Sleep(time.Millisecond)
	}
	if got := homeNode.C.Get("member.pruned_copies"); got != 1 {
		t.Fatalf("member.pruned_copies = %d, want 1", got)
	}

	// A flush at the home now relays to nobody: no relay attempted, no
	// failed sends, no panic.
	homeNode.Write(q, id, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	relaysBefore := homeNode.C.Get("home.relay")
	if err := homeNode.TryFlushQueue(q); err != nil {
		t.Fatalf("flush after clean departure: %v", err)
	}
	if got := homeNode.C.Get("home.relay"); got != relaysBefore {
		t.Fatalf("home.relay grew %d -> %d: still relaying to the departed member", relaysBefore, got)
	}
	if got := homeNode.C.Get("relay.gone"); got != 0 {
		t.Fatalf("relay.gone = %d: relay raced the pruning in a test where it should not", got)
	}
}

// TestPeerGoneReclaimsExclusiveOwner: a member departs cleanly while
// holding exclusive ownership of a conventional object; the home
// reclaims ownership, so survivors' reads and writes run the ownership
// protocol against the home instead of panicking in a fetch aimed at a
// member that no longer exists. (The departed member's unsynchronized
// bytes are lost with it, like a lock abandoned by a departing owner.)
func TestPeerGoneReclaimsExclusiveOwner(t *testing.T) {
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	build := func(self msg.NodeID) (*cluster.Cluster, *Node) {
		topo := transport.Topology{Self: self, Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		k := clu.Kernel(self)
		node := NewNode(k, dlock.NewService(k))
		clu.OnPeerGone(func(peer msg.NodeID, _ error) { node.PeerGone(peer) })
		return clu, node
	}
	homeClu, homeNode := build(0)
	defer homeClu.Close()
	writerClu, writerNode := build(1)

	opts := DefaultOptions()
	opts.Home = 0
	id := memory.ObjectID(1)
	meta := Meta{ID: id, Name: "conv", Size: 8, Annot: Conventional, Opts: opts}
	homeNode.InstallLocal(meta, nil)
	writerNode.InstallLocal(meta, nil)

	// The writer takes exclusive ownership (the home's directory now
	// points at node 1), then departs without synchronizing.
	q := duq.New()
	writerNode.Write(q, id, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	writerClu.Close()

	deadline := time.Now().Add(5 * time.Second)
	for homeNode.C.Get("member.gone") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("home never observed the departure")
		}
		time.Sleep(time.Millisecond)
	}
	if got := homeNode.C.Get("member.reclaimed_owner"); got != 1 {
		t.Fatalf("member.reclaimed_owner = %d, want 1", got)
	}

	// Survivors' accesses must not panic (before the fix: fetchFrom the
	// departed owner panicked the home's dispatcher). The departed
	// member's unsynchronized write is lost; the home serves its own
	// copy.
	buf := make([]byte, 8)
	homeNode.Read(duq.New(), id, 0, buf)
	homeNode.Write(duq.New(), id, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	homeNode.Read(duq.New(), id, 0, buf)
	if buf[0] != 9 {
		t.Fatalf("home write after reclaim not visible: %v", buf)
	}
}
