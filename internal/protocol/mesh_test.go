package protocol

import (
	"errors"
	"net"
	"testing"
	"time"

	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/transport"
)

// TestFlushSurfacesErrPeerDownOverMesh: when the home's process dies,
// a subsequent flush on the writer fails with the typed
// *transport.ErrPeerDown instead of panicking opaquely or hanging —
// the contract multi-process drivers (bench E12, munin-bench -peers)
// rely on.
func TestFlushSurfacesErrPeerDownOverMesh(t *testing.T) {
	addrs := make([]string, 0, 2)
	lns := make([]net.Listener, 0, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	build := func(self msg.NodeID) (*cluster.Cluster, *Node) {
		topo := transport.Topology{Self: self, Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		k := clu.Kernel(self)
		return clu, NewNode(k, dlock.NewService(k))
	}
	homeClu, _ := build(0)
	writerClu, writerNode := build(1)
	defer writerClu.Close()

	// Allocate and prime over the live mesh.
	q := duq.New()
	opts := DefaultOptions()
	opts.Home = 0
	id := memory.ObjectID(1)
	writerNode.Alloc(Meta{ID: id, Name: "wm", Size: 64, Annot: WriteMany, Opts: opts}, nil)
	buf := make([]byte, 8)
	writerNode.Read(q, id, 0, buf)

	// Dirty the object, then kill the home "process" abruptly before
	// the flush — no goodbye, so the writer observes wire death (a
	// graceful Close would surface *transport.ErrPeerGone instead; see
	// TestFlushSurfacesErrPeerGoneAfterHomeLeaves).
	writerNode.Write(q, id, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	homeClu.Kill()

	start := time.Now()
	err := writerNode.TryFlushQueue(q)
	var pd *transport.ErrPeerDown
	if !errors.As(err, &pd) || pd.Node != 0 {
		t.Fatalf("TryFlushQueue after home death = %v, want *transport.ErrPeerDown{Node: 0}", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("flush took %v to fail, want < 1s", elapsed)
	}
	// The failed flush commits the attempted entry: its diff was
	// consumed and the dead peer can never receive it (the latch is
	// permanent), so keeping it queued would only let a retry succeed
	// vacuously. The typed error above is the loss report.
	if q.Contains(id) {
		t.Fatal("failed flush left a consumed entry queued (a retry would succeed vacuously)")
	}
	if err := writerNode.TryFlushQueue(q); err != nil {
		t.Fatalf("empty retry after reported loss = %v, want nil", err)
	}
}

// TestFlushSurfacesErrPeerGoneAfterHomeLeaves pins the other half of
// the failure vocabulary: a home that departs CLEANLY (graceful Close
// → goodbye handshake) makes a later flush fail with the typed
// *transport.ErrPeerGone — distinguishable from wire death, because
// nothing was lost: the home drained everything it had sent before
// leaving.
func TestFlushSurfacesErrPeerGoneAfterHomeLeaves(t *testing.T) {
	addrs := make([]string, 0, 2)
	lns := make([]net.Listener, 0, 2)
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	build := func(self msg.NodeID) (*cluster.Cluster, *Node) {
		topo := transport.Topology{Self: self, Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		k := clu.Kernel(self)
		return clu, NewNode(k, dlock.NewService(k))
	}
	homeClu, _ := build(0)
	writerClu, writerNode := build(1)
	defer writerClu.Close()

	q := duq.New()
	opts := DefaultOptions()
	opts.Home = 0
	id := memory.ObjectID(1)
	writerNode.Alloc(Meta{ID: id, Name: "wm", Size: 64, Annot: WriteMany, Opts: opts}, nil)
	buf := make([]byte, 8)
	writerNode.Read(q, id, 0, buf)

	writerNode.Write(q, id, 0, []byte{9, 9, 9, 9, 9, 9, 9, 9})
	homeClu.Close() // graceful: goodbye, drain, ack

	start := time.Now()
	err := writerNode.TryFlushQueue(q)
	var pg *transport.ErrPeerGone
	if !errors.As(err, &pg) || pg.Node != 0 {
		t.Fatalf("TryFlushQueue after home departure = %v, want *transport.ErrPeerGone{Node: 0}", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("flush took %v to fail, want < 1s", elapsed)
	}
	// No peer-down latch anywhere: the departure was clean.
	if got := writerClu.Stats().WirePeerDown(); got != 0 {
		t.Fatalf("wire.peer_down = %d after a clean departure, want 0", got)
	}
	if got := writerClu.Stats().WirePeerGone(); got != 1 {
		t.Fatalf("wire.peer_gone = %d, want 1", got)
	}
}
