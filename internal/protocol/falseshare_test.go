package protocol

import (
	"fmt"
	"sync"
	"testing"

	"munin/internal/duq"
)

// TestConventionalFalseSharingPhases mimics the access pattern that
// page-granularity DSM sees under false sharing: several nodes
// concurrently write disjoint slots of the same object within a phase,
// then after a (host-level) barrier every node must observe every
// slot's new value. Any miss is a strict-coherence violation.
func TestConventionalFalseSharingPhases(t *testing.T) {
	const nodes = 4
	const phases = 40
	const slot = 32
	r := newRig(t, nodes)
	r.alloc(1, "page", nodes*slot, Conventional, DefaultOptions(), nil)

	var wg sync.WaitGroup
	// Roomy buffer: a persistent stale copy can produce one error per
	// slot per phase per node; a full channel must never block a
	// worker or the phase barriers wedge.
	errs := make(chan string, nodes*nodes*phases)
	bars := make([]*sync.WaitGroup, phases*2)
	for i := range bars {
		bars[i] = &sync.WaitGroup{}
		bars[i].Add(nodes)
	}
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			q := duq.New()
			buf := make([]byte, slot)
			for ph := 0; ph < phases; ph++ {
				// Phase part 1: write my slot (read-modify-write of
				// the shared object, like a row update inside a page).
				for i := range buf {
					buf[i] = byte(ph + node + i)
				}
				r.nodes[node].Write(q, 1, node*slot, buf)
				bars[ph*2].Done()
				bars[ph*2].Wait()
				// Phase part 2: read every slot and verify.
				got := make([]byte, slot)
				for s := 0; s < nodes; s++ {
					r.nodes[node].Read(q, 1, s*slot, got)
					for i := range got {
						if got[i] != byte(ph+s+i) {
							o := r.nodes[node].obj(1)
							o.mu.Lock()
							st, gen := o.state, o.genInv
							o.mu.Unlock()
							home := r.nodes[node].homeOf(&o.meta)
							d := r.nodes[home].dirEntryOf(1)
							d.mu.Lock()
							owner := d.owner
							cs := fmt.Sprintf("%v", d.copyset)
							d.mu.Unlock()
							errs <- fmt.Sprintf("phase %d node %d slot %d byte %d = %d, want %d | state=%v gen=%d dir.owner=%d copyset=%s",
								ph, node, s, i, got[i], byte(ph+s+i), st, gen, owner, cs)
							break
						}
					}
				}
				bars[ph*2+1].Done()
				bars[ph*2+1].Wait()
			}
		}(node)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
		break
	}
}
