package protocol

import (
	"errors"

	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/transport"
)

// PeerGone prunes a cleanly departed member from this node's protocol
// state: the node is removed from every directory entry's copy set (so
// home-side update relays stop addressing it), it stops being any
// object's registered producer, and it is dropped from every cached
// producer-side consumer set. The runtime calls this when the transport
// reports a goodbye (transport.PeerGoneNotifier) — the departed peer
// took its copies with it, so relaying to it would only pay one failed
// send per update forever after.
//
// The callback ordering of the goodbye protocol makes this safe:
// OnPeerGone fires strictly after every frame the peer sent has been
// dispatched, so no diff or registration from the departed member is
// still in flight when the pruning runs. A relay that raced the
// departure and was already started is handled separately — the relay
// paths treat *transport.ErrPeerGone as a benign skip (see isGone).
//
// An ownership-protocol object (conventional/general-rw) the departed
// member still owned exclusively is reclaimed by the home: the home
// becomes owner of its own — possibly stale — copy, so survivors'
// reads and writes run the ownership protocol against the home instead
// of panicking in a fetch aimed at a member that no longer exists.
// Like a lock abandoned by a departing owner (dlock.Service.PeerGone),
// unsynchronized bytes the owner held are lost with it; the reclaim
// keeps the failure local to that object's last unsynchronized writes.
//
// Counters: member.gone (departures observed), member.pruned_copies
// (copy-set entries removed), member.pruned_consumers (cached consumer
// entries removed), member.reclaimed_owner (exclusive ownerships taken
// back by the home).
func (n *Node) PeerGone(peer msg.NodeID) {
	copies, consumers, owners := n.prunePeer(peer)
	n.C.Add(stats.CMemberGone, 1)
	if copies > 0 {
		n.C.Add(stats.CMemberPrunedCopies, copies)
	}
	if consumers > 0 {
		n.C.Add(stats.CMemberPrunedConsumers, consumers)
	}
	if owners > 0 {
		n.C.Add(stats.CMemberReclaimedOwner, owners)
	}
}

// prunePeer removes peer from every directory entry's copy set,
// producer slot, and cached consumer set, and reclaims any exclusive
// ownership it held. It is the shared mechanism behind PeerGone (a
// clean departure took its copies with it) and PeerRecovered (a
// restarted incarnation comes back with empty state, so every record
// of its old copies is stale and must go before it re-primes lazily).
func (n *Node) prunePeer(peer msg.NodeID) (copies, consumers, owners int64) {
	for i := range n.stripes {
		s := &n.stripes[i]
		s.mu.Lock()
		type idDir struct {
			id memory.ObjectID
			d  *dirEntry
		}
		dirs := make([]idDir, 0, len(s.dir))
		for id, d := range s.dir {
			dirs = append(dirs, idDir{id, d})
		}
		objs := make([]*Obj, 0, len(s.objs))
		for _, o := range s.objs {
			objs = append(objs, o)
		}
		s.mu.Unlock()
		for _, e := range dirs {
			d := e.d
			d.mu.Lock()
			if d.copyset[peer] {
				delete(d.copyset, peer)
				copies++
			}
			if d.producer == peer {
				d.producer = -1
			}
			if d.owner == peer {
				if o := n.obj(e.id); o != nil {
					o.mu.Lock() // d.mu → o.mu is the established order
					if o.state == Invalid {
						o.state = Shared // serveable, though possibly stale
					}
					o.dirtyOwner = false
					o.mu.Unlock()
				}
				d.owner = n.id
				d.copyset[n.id] = true
				owners++
			}
			d.mu.Unlock()
		}
		for _, o := range objs {
			o.mu.Lock()
			for j, c := range o.consumers {
				if c == peer {
					o.consumers = append(o.consumers[:j], o.consumers[j+1:]...)
					consumers++
					break
				}
			}
			o.mu.Unlock()
		}
	}
	return copies, consumers, owners
}

// isGone reports whether err is a clean peer departure. Update relays
// and eager pushes treat it as a benign skip: the departed member's
// copy left with it, so there is nothing to keep coherent — unlike
// *transport.ErrPeerDown, where the peer may still believe it holds a
// valid copy. The skip is counted (relay.gone) so a departure racing a
// flush stays observable.
func isGone(err error) bool {
	var gone *transport.ErrPeerGone
	return errors.As(err, &gone)
}

// relayBenign reports whether a relay/push/invalidate error is benign:
// the cluster is shutting down, or the destination departed cleanly.
func (n *Node) relayBenign(err error) bool {
	if isShutdown(err) {
		return true
	}
	if isGone(err) {
		n.C.Add(stats.CRelayGone, 1)
		return true
	}
	return false
}
