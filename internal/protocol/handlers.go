package protocol

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// allOtherNodes returns every node ID except this one.
func (n *Node) allOtherNodes() []msg.NodeID {
	out := make([]msg.NodeID, 0, n.nodes-1)
	for i := 0; i < n.nodes; i++ {
		if msg.NodeID(i) != n.id {
			out = append(out, msg.NodeID(i))
		}
	}
	return out
}

// handleRead serves a copy of the object to a faulting reader. This node
// is the object's home.
func (n *Node) handleRead(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	d := n.dirEntryOf(id)
	n.C.Add(stats.CHomeRead, 1)

	switch o.meta.Annot {
	case Conventional:
		d.mu.Lock()
		if d.owner != n.id {
			// Ivy-like: fetch from the current owner, write the data
			// back to the home, downgrade the owner to reader.
			data := n.fetchFrom(d.owner, id, fetchForRead)
			o.mu.Lock()
			copy(o.data, data)
			o.mu.Unlock()
			d.copyset[d.owner] = true
			d.owner = n.id
			d.copyset[n.id] = true
		}
		o.mu.Lock()
		// Wait out any pending local grant install (see
		// handleWriteOwn), then downgrade the home's own copy so a
		// later local write re-runs the invalidation round instead
		// of silently staying exclusive.
		for o.grantPending {
			o.cond.Wait()
		}
		o.state = Shared
		data := append([]byte(nil), o.data...)
		o.mu.Unlock()
		d.copyset[req.From] = true
		d.mu.Unlock()
		n.replyData(req, data, 0)

	case GeneralRW:
		d.mu.Lock()
		var data []byte
		if d.owner != n.id {
			// Berkeley dirty sharing: the dirty owner serves the read
			// and stays owner; the home's copy is not updated.
			data = n.fetchFrom(d.owner, id, fetchDirty)
		} else {
			o.mu.Lock()
			for o.grantPending {
				o.cond.Wait()
			}
			// Home keeps dirty ownership but must downgrade to
			// shared so its next write invalidates the new reader.
			o.state = Shared
			o.dirtyOwner = true
			data = append([]byte(nil), o.data...)
			o.mu.Unlock()
		}
		d.copyset[req.From] = true
		d.mu.Unlock()
		n.replyData(req, data, 0)

	default:
		// Replication protocols: the home copy is authoritative.
		d.mu.Lock()
		o.mu.Lock()
		data := append([]byte(nil), o.data...)
		seq := o.applySeq
		o.mu.Unlock()
		d.copyset[req.From] = true
		d.rereads++
		d.mu.Unlock()
		n.replyData(req, data, seq)
	}
}

func (n *Node) replyData(req *msg.Msg, data []byte, seq uint64) {
	b := msg.NewBuilder(16 + len(data))
	b.BytesN(data).U64(seq)
	n.k.Reply(req, b.Bytes())
}

// fetchFrom asks a remote owner for the object's current contents.
func (n *Node) fetchFrom(owner msg.NodeID, id memory.ObjectID, mode uint8) []byte {
	n.C.Add(stats.CHomeFetch, 1)
	reply, err := n.k.Call(owner, kindFetch,
		msg.NewBuilder(5).U32(uint32(id)).U8(mode).Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: fetch object %d from node %d: %v", id, owner, err))
	}
	return append([]byte(nil), msg.NewReader(reply.Payload).BytesN()...)
}

// handleWriteOwn grants exclusive ownership to the requester after
// invalidating every other copy (strict coherence for the ownership
// protocols). This node is the home; d.mu serializes conflicting
// requests for the same object.
func (n *Node) handleWriteOwn(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	d := n.dirEntryOf(id)
	n.C.Add(stats.CHomeWriteOwn, 1)

	d.mu.Lock()
	requester := req.From
	oldOwner := d.owner
	var fresh []byte
	hasData := oldOwner != requester
	if hasData {
		if oldOwner == n.id {
			// The home itself owns the copy. One of its own threads
			// may have a grant install pending on the local
			// dispatcher; wait for it, or we would grab the
			// pre-install bytes and lose the home's write.
			o.mu.Lock()
			for o.grantPending {
				o.cond.Wait()
			}
			fresh = append([]byte(nil), o.data...)
			o.state = Invalid
			o.genInv++
			o.mu.Unlock()
		} else {
			fresh = n.fetchFrom(oldOwner, id, fetchForWrite)
		}
		delete(d.copyset, oldOwner)
	}
	for member := range d.copyset {
		if member == requester || member == oldOwner {
			continue
		}
		if member == n.id {
			o.mu.Lock()
			o.state = Invalid
			o.genInv++
			o.mu.Unlock()
		} else {
			n.C.Add(stats.CHomeInv, 1)
			// A member that departed cleanly mid-invalidation took its
			// copy with it — dropping it from the copyset below is the
			// whole invalidation.
			if _, err := n.k.Call(member, kindInv,
				msg.NewBuilder(4).U32(uint32(id)).Bytes()); err != nil && !n.relayBenign(err) {
				panic(fmt.Sprintf("munin: invalidate object %d at node %d: %v", id, member, err))
			}
		}
		delete(d.copyset, member)
	}
	d.owner = requester
	d.copyset = map[msg.NodeID]bool{requester: true}
	if requester == n.id {
		// Granting to one of our own threads: mark the local copy
		// until the inline install runs, so home-side handlers do not
		// grab pre-install bytes.
		o.mu.Lock()
		o.grantPending = true
		o.mu.Unlock()
	}
	d.mu.Unlock()

	b := msg.NewBuilder(8 + len(fresh))
	b.Bool(hasData)
	if hasData {
		b.BytesN(fresh)
	}
	n.k.Reply(req, b.Bytes())
}

// handleInv invalidates the local copy. It must not wait for any
// in-flight ownership request: an invalidation can legitimately arrive
// while this node's own WriteOwn is queued behind another node's at the
// home, and the later grant will overwrite with fresh data anyway.
func (n *Node) handleInv(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	o.mu.Lock()
	o.state = Invalid
	o.genInv++
	o.dirtyOwner = false
	o.mu.Unlock()
	n.C.Add(stats.CInvReceived, 1)
	n.k.Reply(req, nil)
}

// handleFetch serves the object's current contents to the home on
// behalf of a faulting node. No wait is needed for an in-flight grant:
// grants install inline on the dispatcher (CallInline), so if the home
// granted this node ownership before issuing this fetch, the install —
// including the write that triggered it — already ran when this
// handler was spawned.
func (n *Node) handleFetch(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	mode := r.U8()
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	o.mu.Lock()
	data := append([]byte(nil), o.data...)
	switch mode {
	case fetchForRead:
		o.state = Shared
		o.dirtyOwner = false
	case fetchForWrite:
		o.state = Invalid
		o.genInv++
		o.dirtyOwner = false
	case fetchDirty:
		o.state = Shared
		o.dirtyOwner = true
	}
	o.mu.Unlock()
	n.C.Add(stats.CFetchServed, 1)
	n.k.Reply(req, msg.NewBuilder(8+len(data)).BytesN(data).Bytes())
}

// decodeScratch is the receive-side pooled scratch: a handler decodes
// a message's spans into it, installs them under the object locks
// (copying into o.data, or cloning when an out-of-order update must be
// parked — see applyRefresh), and returns it before replying. Nothing
// decoded into it may outlive the handler.
type decodeScratch struct {
	spans   []memory.Span
	buf     []byte
	entries []batchEntry
}

var decodeScratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

func getDecodeScratch() *decodeScratch { return decodeScratchPool.Get().(*decodeScratch) }

func putDecodeScratch(ds *decodeScratch) {
	clear(ds.entries) // entries hold span headers; drop them, keep capacity
	ds.spans, ds.buf, ds.entries = ds.spans[:0], ds.buf[:0], ds.entries[:0]
	decodeScratchPool.Put(ds)
}

// handleDiff merges a delayed-update diff into the home copy and
// redistributes it to the other copy holders.
func (n *Node) handleDiff(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	ds := getDecodeScratch()
	defer putDecodeScratch(ds)
	ds.spans, ds.buf = memory.DecodeSpansInto(ds.spans, ds.buf, r)
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	// The merge both installs the spans (copying into the home copy) and
	// relays them (copying into the relay payloads), so the scratch is
	// dead by the time the reply goes out.
	seq := n.homeMergeDiff(id, ds.spans, req.From, false)
	// The reply carries the sequence number assigned to this diff: the
	// relay excludes the sender, so the sender advances its own copy's
	// sequence from the reply instead (otherwise every later relay to
	// it would look like a gap and park forever).
	n.k.Reply(req, msg.NewBuilder(8).U64(seq).Bytes())
}

// mergeStamp applies one delayed-update diff to the authoritative home
// copy, stamps it with the object's next update sequence number, and
// returns the sequence plus the copy holders the update must be
// relayed to (write-many only; result objects stop at the home — the
// collector reads the merged copy there). The caller must hold the
// object's relayMu.
func (n *Node) mergeStamp(id memory.ObjectID, spans []memory.Span, from msg.NodeID, alreadyApplied bool) (uint64, []msg.NodeID) {
	o := n.mustObj(id)
	d := n.dirEntryOf(id)
	n.C.Add(stats.CHomeDiff, 1)

	d.mu.Lock()
	o.mu.Lock()
	if !alreadyApplied {
		if o.twin != nil && memory.Overlap(spans, memory.DiffAlloc(o.twin, o.data, 0)) {
			// Diagnostic only: concurrent overlapping updates mean the
			// application raced (loose coherence allows either value).
			n.C.Add(stats.CRaceDetected, 1)
		}
		memory.ApplySpans(o.data, spans)
	}
	o.applySeq++
	seq := o.applySeq
	var members []msg.NodeID
	if o.meta.Annot == WriteMany {
		for m := range d.copyset {
			if m != n.id && m != from {
				members = append(members, m)
			}
		}
	}
	d.rereads = 0
	o.mu.Unlock()
	d.mu.Unlock()
	return seq, members
}

// homeMergeDiff is the home-side half of the write-many protocol for a
// single-object diff: merge, stamp, and multicast to every other copy
// holder (refresh).
func (n *Node) homeMergeDiff(id memory.ObjectID, spans []memory.Span, from msg.NodeID, alreadyApplied bool) uint64 {
	d := n.dirEntryOf(id)
	// relayMu serializes the stamp+relay+ack round per object: an
	// acknowledged diff implies every earlier diff for the object has
	// been installed at every copy, which is what lets a flush-then-
	// synchronize sequence guarantee visibility.
	d.relayMu.Lock()
	defer d.relayMu.Unlock()

	seq, members := n.mergeStamp(id, spans, from, alreadyApplied)
	if len(members) == 0 {
		return seq
	}
	n.C.Add(stats.CHomeRelay, 1)
	payload := encodeApply(applyEntry{id: id, seq: seq, spans: spans})
	if _, err := n.k.MulticastCall(members, kindApply, payload); err != nil && !n.relayBenign(err) {
		panic(fmt.Sprintf("munin: relay diff for object %d: %v", id, err))
	}
	return seq
}

// batchEntry is one (object, spans) element of a delayed-update batch.
type batchEntry struct {
	id    memory.ObjectID
	spans []memory.Span
}

// applyEntry is one (object, sequence, spans) element of a sequenced
// refresh — a kindApply payload, or one entry of a kindApplyBatch.
type applyEntry struct {
	id    memory.ObjectID
	seq   uint64
	spans []memory.Span
}

// encodeApply builds the single-object kindApply refresh payload.
func encodeApply(e applyEntry) []byte {
	b := msg.NewBuilder(32 + memory.SpanBytes(e.spans))
	b.U32(uint32(e.id)).U64(e.seq).U8(uint8(Refresh))
	memory.EncodeSpans(b, e.spans)
	return b.Bytes()
}

// encodeApplyBatch builds the kindApplyBatch payload: a count followed
// by length-prefixed entries in the given order.
func encodeApplyBatch(entries []applyEntry) []byte {
	b := msg.NewBuilder(64)
	b.U32(uint32(len(entries)))
	for _, e := range entries {
		b.Entry(func(eb *msg.Builder) {
			eb.U32(uint32(e.id)).U64(e.seq)
			memory.EncodeSpans(eb, e.spans)
		})
	}
	return b.Bytes()
}

// countBatch records the counters for one multi-entry batch message of
// the given payload size.
func (n *Node) countBatch(objs, payloadBytes int) {
	n.C.Add(stats.CBatchSent, 1)
	n.C.Add(stats.CBatchObjs, int64(objs))
	n.C.Add(stats.CBatchBytes, int64(payloadBytes))
}

// homeMergeBatch merges a whole delayed-update batch in entry order
// and redistributes the updates to the other copy holders, grouped so
// each holder receives a single message carrying its updates in entry
// order (per-receiver program order). It returns the assigned sequence
// numbers, in entry order.
func (n *Node) homeMergeBatch(entries []batchEntry, from msg.NodeID, alreadyApplied bool) []uint64 {
	// Hold every touched object's relayMu across the stamp+relay+ack
	// round, exactly as the single-object path does. Lock in object-ID
	// order: entry order is the sender's first-modification order, so
	// two concurrent batches could otherwise lock in conflicting
	// orders and deadlock.
	ids := make([]memory.ObjectID, 0, len(entries))
	for _, e := range entries {
		ids = append(ids, e.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	locked := make([]*dirEntry, 0, len(ids))
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		d := n.dirEntryOf(id)
		d.relayMu.Lock()
		locked = append(locked, d)
	}
	defer func() {
		for _, d := range locked {
			d.relayMu.Unlock()
		}
	}()

	seqs := make([]uint64, len(entries))
	holderEntries := make(map[msg.NodeID][]int) // copy holder -> entry indexes
	for i, e := range entries {
		seq, members := n.mergeStamp(e.id, e.spans, from, alreadyApplied)
		seqs[i] = seq
		for _, m := range members {
			holderEntries[m] = append(holderEntries[m], i)
		}
	}
	if len(holderEntries) == 0 {
		return seqs
	}

	// Group holders that need the identical update list so the common
	// case — every object replicated at the same nodes — is one
	// multicast for the whole batch.
	groups := make(map[string][]msg.NodeID)
	var keys []string
	idxOf := make(map[string][]int)
	for m, idx := range holderEntries {
		key := fmt.Sprint(idx)
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
			idxOf[key] = idx
		}
		groups[key] = append(groups[key], m)
	}

	// Start every holder group's relay on the coalescing writer, then
	// collect the acks: distinct groups overlap in the per-peer writers
	// (a holder appearing in several groups receives them in one frame)
	// with no goroutine hop per group.
	pends := make([]*vkernel.Pending, 0, len(keys))
	for _, key := range keys {
		members, idx := groups[key], idxOf[key]
		n.C.Add(stats.CHomeRelay, 1)
		var payload []byte
		kind := kindApply
		if len(idx) == 1 {
			payload = encodeApply(applyEntry{id: entries[idx[0]].id, seq: seqs[idx[0]], spans: entries[idx[0]].spans})
		} else {
			kind = kindApplyBatch
			batch := make([]applyEntry, 0, len(idx))
			for _, i := range idx {
				batch = append(batch, applyEntry{id: entries[i].id, seq: seqs[i], spans: entries[i].spans})
			}
			payload = encodeApplyBatch(batch)
			n.countBatch(len(idx), len(payload))
		}
		p, err := n.k.MulticastCallStart(members, kind, payload)
		if err != nil && !n.relayBenign(err) {
			panic(fmt.Sprintf("munin: relay diff batch: %v", err))
		}
		pends = append(pends, p)
	}
	for _, p := range pends {
		if _, err := p.Wait(); err != nil && !n.relayBenign(err) {
			panic(fmt.Sprintf("munin: relay diff batch: %v", err))
		}
	}
	return seqs
}

// handleDiffBatch merges a batched flush from one sender into the home
// copies in entry order and replies with the per-entry sequence
// numbers (the relay excludes the sender; see handleDiff).
func (n *Node) handleDiffBatch(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	count := int(r.U32())
	// Each entry costs at least 9 bytes on the wire (1-byte length
	// prefix, 4-byte object ID, 4-byte span count), so a count word
	// claiming more is corrupt — reject before trusting it.
	if r.Err() != nil || count < 0 || count > r.Remaining()/9 {
		return
	}
	ds := getDecodeScratch()
	defer putDecodeScratch(ds)
	for i := 0; i < count; i++ {
		e := r.Entry()
		id := memory.ObjectID(e.U32())
		lo := len(ds.spans)
		ds.spans, ds.buf = memory.DecodeSpansInto(ds.spans, ds.buf, e)
		if e.Err() != nil || r.Err() != nil {
			return
		}
		ds.entries = append(ds.entries, batchEntry{id: id, spans: ds.spans[lo:len(ds.spans):len(ds.spans)]})
	}
	seqs := n.homeMergeBatch(ds.entries, req.From, false)
	b := msg.NewBuilder(4 + 8*len(seqs))
	b.U32(uint32(len(seqs)))
	for _, s := range seqs {
		b.U64(s)
	}
	n.k.Reply(req, b.Bytes())
}

// handleApplyBatch installs a batch of sequenced refreshes at a copy,
// in entry order, so a local reader can never observe a later entry's
// update while missing an earlier one.
func (n *Node) handleApplyBatch(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	count := int(r.U32())
	if r.Err() != nil || count < 0 || count > r.Remaining()/9 {
		return
	}
	ds := getDecodeScratch()
	defer putDecodeScratch(ds)
	for i := 0; i < count; i++ {
		e := r.Entry()
		id := memory.ObjectID(e.U32())
		seq := e.U64()
		lo := len(ds.spans)
		ds.spans, ds.buf = memory.DecodeSpansInto(ds.spans, ds.buf, e)
		if e.Err() != nil || r.Err() != nil {
			return
		}
		n.applyRefresh(n.mustObj(id), seq, ds.spans[lo:len(ds.spans):len(ds.spans)])
	}
	n.k.Reply(req, nil)
}

// isShutdown reports whether an error is a benign consequence of the
// cluster shutting down while asynchronous relays were in flight.
func isShutdown(err error) bool {
	return errors.Is(err, transport.ErrClosed) || errors.Is(err, vkernel.ErrClosed)
}

// handleApply installs a refresh (spans) or invalidation at a copy.
// Refreshes are ordered by the sender's sequence numbers; a gap means a
// multicast missed this node (possible only for producer-consumer
// registration races), so the copy resynchronizes from the home.
func (n *Node) handleApply(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	seq := r.U64()
	mode := UpdateMode(r.U8())
	var spans []memory.Span
	if mode == Refresh {
		ds := getDecodeScratch()
		defer putDecodeScratch(ds)
		ds.spans, ds.buf = memory.DecodeSpansInto(ds.spans, ds.buf, r)
		spans = ds.spans
	}
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)

	if mode == Invalidate {
		o.mu.Lock()
		o.state = Invalid
		o.genInv++
		o.mu.Unlock()
		n.C.Add(stats.CInvReceived, 1)
		n.k.Reply(req, nil)
		return
	}

	n.applyRefresh(o, seq, spans)
	n.k.Reply(req, nil)
}

// applyRefresh installs one sequenced refresh at a local copy, parking
// out-of-order updates. Shared by the single-object and batched apply
// paths.
func (n *Node) applyRefresh(o *Obj, seq uint64, spans []memory.Span) {
	o.mu.Lock()
	n.C.Add(stats.CApplyReceived, 1)
	switch {
	case o.state == Invalid:
		// No installed copy. A fetch may be in flight (the home added
		// us to the copyset when it started serving it), so the update
		// must not be dropped: park it. The fetch install drains every
		// parked update newer than its snapshot (alignSeq); parked
		// updates at or below the snapshot are discarded there. The
		// spans alias the handler's pooled decode scratch, so parking —
		// the one place they outlive the handler — clones them.
		o.pendApply[seq] = memory.CloneSpans(spans)
		o.mu.Unlock()
	case seq <= o.applySeq:
		// Duplicate/old update (we fetched a newer snapshot already).
		o.mu.Unlock()
	case seq == o.applySeq+1:
		memory.ApplySpans(o.data, spans)
		o.applySeq = seq
		// Drain any parked successors.
		for {
			next, ok := o.pendApply[o.applySeq+1]
			if !ok {
				break
			}
			delete(o.pendApply, o.applySeq+1)
			memory.ApplySpans(o.data, next)
			o.applySeq++
		}
		o.mu.Unlock()
	default:
		// Gap. For write-many/read-mostly objects the missing
		// sequence numbers are this node's own in-flight diffs (the
		// home's relay excludes the sender; the diff reply advances
		// our sequence and drains parked updates), so parking is both
		// sufficient and required — a refetch here could install a
		// home snapshot that predates our in-flight diff and revert
		// our own writes. Only producer-consumer copies resync from
		// the home: their gaps are registration races (a push that
		// predates our registration never reached us and no reply
		// will ever advance past it), and consumers hold no buffered
		// writes, so the wholesale install is safe for them.
		n.C.Add(stats.CApplyGap, 1)
		o.pendApply[seq] = memory.CloneSpans(spans) // see the Invalid case

		if o.meta.Annot == ProducerConsumer && !o.isProducer && o.twin == nil {
			o.state = Invalid
			o.genInv++
			o.mu.Unlock()
			n.ensureReadable(o) // refetch + alignSeq drains pendApply
		} else {
			o.mu.Unlock()
		}
	}
}

// handleRemRead serves a remote load (read-mostly remote mode, result
// readers away from the collector). The home tracks the read/write mix
// to drive the §3.4.1 dynamic decision.
func (n *Node) handleRemRead(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	off := r.Int()
	ln := r.Int()
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	checkRange(o, off, ln)
	o.mu.Lock()
	data := append([]byte(nil), o.data[off:off+ln]...)
	o.mu.Unlock()
	n.C.Add(stats.CHomeRemRead, 1)
	n.k.Reply(req, msg.NewBuilder(8+len(data)).BytesN(data).Bytes())

	if o.meta.Annot != ReadMostly || !o.meta.Opts.Dynamic {
		return
	}
	d := n.dirEntryOf(id)
	d.mu.Lock()
	d.reads++
	switchIt := false
	o.mu.Lock()
	if !o.replicated && d.reads >= 32 && d.reads >= 4*(d.writes+1) {
		o.replicated = true
		switchIt = true
	}
	o.mu.Unlock()
	d.mu.Unlock()
	if switchIt {
		n.C.Add(stats.CModeSwitch, 1)
		n.k.MulticastTo(n.allOtherNodes(), kindModeSw,
			msg.NewBuilder(5).U32(uint32(id)).Bool(true).Bytes())
	}
}

// handleRemWrite applies a remote store at the home and, for replicated
// read-mostly objects, redistributes per the object's update mode.
func (n *Node) handleRemWrite(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	off := r.Int()
	data := append([]byte(nil), r.BytesN()...)
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	checkRange(o, off, len(data))
	o.mu.Lock()
	copy(o.data[off:], data)
	o.mu.Unlock()
	n.C.Add(stats.CHomeRemWrite, 1)

	d := n.dirEntryOf(id)
	d.mu.Lock()
	d.writes++
	d.mu.Unlock()

	seq := n.homeAfterRemoteWrite(id, []memory.Span{{Off: off, Data: data}}, req.From)
	n.k.Reply(req, msg.NewBuilder(8).U64(seq).Bytes())
}

// homeAfterRemoteWrite redistributes a write at the home of a
// replicated read-mostly object: refresh pushes the new bytes to every
// copy, invalidate drops the copies (§3.4.2). With Options.Dynamic the
// mode adapts: in invalidate mode, if at least half the dropped copies
// refetched before the next write, refreshing would have been cheaper,
// so switch; in refresh mode, probe with an invalidation every 8th
// update to re-measure.
func (n *Node) homeAfterRemoteWrite(id memory.ObjectID, spans []memory.Span, from msg.NodeID) uint64 {
	o := n.mustObj(id)
	if o.meta.Annot != ReadMostly {
		return 0
	}
	o.mu.Lock()
	replicated := o.replicated
	o.mu.Unlock()
	if !replicated {
		return 0 // remote-mode: no copies to maintain
	}

	d := n.dirEntryOf(id)
	d.relayMu.Lock()
	defer d.relayMu.Unlock()
	d.mu.Lock()
	if !d.updModeSet {
		d.updMode = o.meta.Opts.Update
		d.updModeSet = true
	}
	if o.meta.Opts.Dynamic {
		if d.updMode == Invalidate && d.dropped > 0 && d.rereads*2 >= d.dropped {
			d.updMode = Refresh
			n.C.Add(stats.CModeSwitch, 1)
		}
	}
	o.mu.Lock()
	o.applySeq++
	seq := o.applySeq
	o.mu.Unlock()
	probe := o.meta.Opts.Dynamic && d.updMode == Refresh && seq%8 == 0
	mode := d.updMode
	if probe {
		mode = Invalidate
	}
	var members []msg.NodeID
	for m := range d.copyset {
		if m != n.id && m != from {
			members = append(members, m)
		}
	}
	if mode == Invalidate {
		for _, m := range members {
			delete(d.copyset, m)
		}
		d.dropped = int64(len(members))
	}
	d.rereads = 0
	d.mu.Unlock()

	if len(members) == 0 {
		return seq
	}
	b := msg.NewBuilder(32 + memory.SpanBytes(spans))
	b.U32(uint32(id)).U64(seq).U8(uint8(mode))
	if mode == Refresh {
		memory.EncodeSpans(b, spans)
	}
	n.C.Add(stats.CHomeRelay, 1)
	if _, err := n.k.MulticastCall(members, kindApply, b.Bytes()); err != nil && !n.relayBenign(err) {
		panic(fmt.Sprintf("munin: redistribute object %d: %v", id, err))
	}
	return seq
}

// handleRegCons registers a producer or consumer for a
// producer-consumer object and returns the current contents + sequence.
func (n *Node) handleRegCons(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	isProducer := r.Bool()
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	d := n.dirEntryOf(id)

	d.mu.Lock()
	if isProducer {
		if d.producer >= 0 && d.producer != req.From {
			d.mu.Unlock()
			panic(fmt.Sprintf("munin: producer-consumer object %q has two producing nodes (%d and %d)",
				o.meta.Name, d.producer, req.From))
		}
		d.producer = req.From
	} else {
		d.copyset[req.From] = true
	}
	consumers := make([]msg.NodeID, 0, len(d.copyset))
	for m := range d.copyset {
		if m != n.id && m != d.producer {
			consumers = append(consumers, m)
		}
	}
	producer := d.producer
	d.mu.Unlock()

	// A new consumer must be known to the producer before its first
	// read returns, so every subsequent push reaches it. The update is
	// therefore a Call, acknowledged before we snapshot the contents:
	// any push that raced the registration lands at the home before
	// the snapshot and is covered by the consumer's base sequence.
	if !isProducer && producer >= 0 && producer != req.From {
		ub := msg.NewBuilder(16)
		ub.U32(uint32(id)).U32(uint32(len(consumers)))
		for _, c := range consumers {
			ub.U32(uint32(c))
		}
		if _, err := n.k.Call(producer, kindConsUpd, ub.Bytes()); err != nil && !n.relayBenign(err) {
			panic(fmt.Sprintf("munin: consumer-set update for object %d: %v", id, err))
		}
	}

	o.mu.Lock()
	data := append([]byte(nil), o.data...)
	seq := o.applySeq
	o.mu.Unlock()

	b := msg.NewBuilder(32 + len(data))
	b.BytesN(data).U64(seq)
	if isProducer {
		b.U32(uint32(len(consumers)))
		for _, c := range consumers {
			b.U32(uint32(c))
		}
	} else {
		b.U32(0)
	}
	n.k.Reply(req, b.Bytes())
}

// handleConsUpd refreshes the producer's cached consumer set.
func (n *Node) handleConsUpd(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	nc := int(r.U32())
	consumers := make([]msg.NodeID, 0, nc)
	for i := 0; i < nc; i++ {
		consumers = append(consumers, msg.NodeID(r.U32()))
	}
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	o.mu.Lock()
	o.consumers = consumers
	o.mu.Unlock()
	n.k.Reply(req, nil)
}

// handleEvict removes a node from the copyset after it paged the copy
// out.
func (n *Node) handleEvict(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	d := n.dirEntryOf(id)
	d.mu.Lock()
	delete(d.copyset, req.From)
	d.mu.Unlock()
}

// handleModeSw switches a read-mostly object to replicated mode on this
// node.
func (n *Node) handleModeSw(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	replicated := r.Bool()
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	o.mu.Lock()
	o.replicated = replicated
	o.mu.Unlock()
}
