package protocol

import (
	"bytes"
	"runtime/debug"
	"testing"

	"munin/internal/memory"
)

// TestFlushPlanEncodeZeroAllocs pins the protocol half of the
// zero-copy flush pipeline: in steady state, taking a twin snapshot,
// diffing into the pooled flush scratch, and encoding the complete
// wire message into a pooled buffer performs zero heap allocations.
// (The vkernel call bookkeeping and the transport writer are measured
// separately; this is the plan+encode stage TryFlushQueue runs.)
func TestFlushPlanEncodeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	o := &Obj{data: make([]byte, 4096)}
	step := func() {
		fs := getFlushScratch()
		defer putFlushScratch(fs)
		o.mu.Lock()
		o.snapTwin()
		for i := 0; i < len(o.data); i += 256 {
			o.data[i]++
		}
		o.mu.Unlock()
		// The takeDiff body, minus the Node: diff into the arenas and
		// return the twin's pooled buffer.
		o.mu.Lock()
		lo := len(fs.spans)
		fs.spans, fs.buf = memory.Diff(fs.spans, fs.buf, o.twin, o.data, 0)
		o.dropTwin()
		spans := fs.spans[lo:len(fs.spans):len(fs.spans)]
		o.mu.Unlock()
		if len(spans) == 0 {
			t.Fatal("diff found no spans")
		}
		// Encode both shapes: a singleton (kindDiff) and a batch.
		fs.grouped = append(fs.grouped,
			batchEntry{id: 1, spans: spans},
			batchEntry{id: 2, spans: spans})
		wb, kind := encodeDiffBatch(fs.grouped[:1])
		if kind != kindDiff {
			t.Fatalf("singleton encoded as kind %#x", kind)
		}
		wb.Release()
		wb, kind = encodeDiffBatch(fs.grouped)
		if kind != kindDiffBatch {
			t.Fatalf("batch encoded as kind %#x", kind)
		}
		wb.Release()
	}

	for i := 0; i < 32; i++ {
		step() // warm the pools and grow the arenas to steady state
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("steady-state flush plan+encode allocated %v times per op, want 0", allocs)
	}
}

// TestTwinPoolLifecycle verifies the pooled twin discipline: snapTwin
// captures the data snapshot into an arena buffer, repeated snaps
// reuse that buffer, and dropTwin both clears the twin and returns the
// buffer so a later snap can pool-hit.
func TestTwinPoolLifecycle(t *testing.T) {
	o := &Obj{data: []byte("the quick brown fox")}
	o.mu.Lock()
	defer o.mu.Unlock()

	o.snapTwin()
	if !bytes.Equal(o.twin, o.data) {
		t.Fatalf("twin %q != data %q", o.twin, o.data)
	}
	buf := o.twinBuf
	if buf == nil {
		t.Fatal("snapTwin left twinBuf nil")
	}

	// Mutate: the twin must keep the snapshot.
	o.data[4] = 'Q'
	if o.twin[4] != 'q' {
		t.Fatal("twin aliases live data")
	}

	// A second snap on a still-armed twin reuses the same buffer.
	o.snapTwin()
	if o.twinBuf != buf {
		t.Fatal("re-snap did not reuse the held twin buffer")
	}

	o.dropTwin()
	if o.twin != nil || o.twinBuf != nil {
		t.Fatalf("dropTwin left twin=%v twinBuf=%v", o.twin, o.twinBuf)
	}
	o.dropTwin() // idempotent
}

// BenchmarkEncodeDiffBatch measures the one-pass pooled encode of a
// multi-object delayed-update batch.
func BenchmarkEncodeDiffBatch(b *testing.B) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	entries := make([]batchEntry, 16)
	for i := range entries {
		entries[i] = batchEntry{
			id:    memory.ObjectID(i + 1),
			spans: []memory.Span{{Off: 0, Data: data[:64]}, {Off: 128, Data: data[128:]}},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wb, kind := encodeDiffBatch(entries)
		if kind != kindDiffBatch {
			b.Fatal("wrong kind")
		}
		wb.Release()
	}
}
