package protocol

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
)

// rig is an n-node Munin cluster for protocol tests.
type rig struct {
	c     *cluster.Cluster
	locks []*dlock.Service
	nodes []*Node
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{c: c}
	for i := 0; i < n; i++ {
		k := c.Kernel(msg.NodeID(i))
		ls := dlock.NewService(k)
		r.locks = append(r.locks, ls)
		r.nodes = append(r.nodes, NewNode(k, ls))
	}
	t.Cleanup(c.Close)
	return r
}

func (r *rig) alloc(id memory.ObjectID, name string, size int, a Annotation, opts Options, init []byte) {
	r.nodes[0].Alloc(Meta{ID: id, Name: name, Size: size, Annot: a, Opts: opts}, init)
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func readU64(n *Node, q *duq.Queue, id memory.ObjectID, off int) uint64 {
	var b [8]byte
	n.Read(q, id, off, b[:])
	return binary.BigEndian.Uint64(b[:])
}

func msgs(r *rig) int64 { return r.c.Stats().Messages() }

// ---------------------------------------------------------------------
// Write-once

func TestWriteOnceReplicatesOnDemand(t *testing.T) {
	r := newRig(t, 3)
	init := []byte("constant table!!")
	r.alloc(1, "tbl", len(init), WriteOnce, DefaultOptions(), init)
	q := duq.New()

	buf := make([]byte, len(init))
	r.nodes[2].Read(q, 1, 0, buf)
	if string(buf) != string(init) {
		t.Fatalf("read %q", buf)
	}
	// Second read is local: no new traffic.
	before := msgs(r)
	r.nodes[2].Read(q, 1, 0, buf)
	if msgs(r) != before {
		t.Fatal("re-read of replicated write-once object sent messages")
	}
}

func TestWriteOnceRejectsLateWrites(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(1, "tbl", 8, WriteOnce, DefaultOptions(), nil) // home = node 1
	q := duq.New()
	defer func() {
		if recover() == nil {
			t.Fatal("write-once write from non-home did not panic")
		}
	}()
	r.nodes[0].Write(q, 1, 0, []byte{1})
}

func TestWriteOnceInitThenFreeze(t *testing.T) {
	r := newRig(t, 2)
	// Object 2 is homed on node 0 (2 % 2).
	r.alloc(2, "tbl", 8, WriteOnce, DefaultOptions(), nil)
	q := duq.New()
	// Home may initialize while sole copy.
	r.nodes[0].Write(q, 2, 0, u64bytes(42))
	if got := readU64(r.nodes[0], q, 2, 0); got != 42 {
		t.Fatalf("home read = %d", got)
	}
	// Replicate to node 1, then home writes must panic.
	if got := readU64(r.nodes[1], q, 2, 0); got != 42 {
		t.Fatalf("remote read = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("write after replication did not panic")
		}
	}()
	r.nodes[0].Write(q, 2, 0, u64bytes(7))
}

func TestWriteOncePageoutAndRefetch(t *testing.T) {
	r := newRig(t, 2)
	init := []byte("bigreadonlydata!")
	r.alloc(2, "big", len(init), WriteOnce, DefaultOptions(), init)
	q := duq.New()
	buf := make([]byte, len(init))
	r.nodes[1].Read(q, 2, 0, buf)
	r.nodes[1].Evict(2)
	before := msgs(r)
	r.nodes[1].Read(q, 2, 0, buf) // must refetch
	if msgs(r) == before {
		t.Fatal("no refetch after pageout")
	}
	if string(buf) != string(init) {
		t.Fatalf("refetched %q", buf)
	}
	// Evicting the home copy is a no-op.
	r.nodes[0].Evict(2)
	r.nodes[0].Read(q, 2, 0, buf)
	if string(buf) != string(init) {
		t.Fatal("home copy lost after Evict")
	}
}

// ---------------------------------------------------------------------
// Conventional (Ivy-like default)

func TestConventionalReadWrite(t *testing.T) {
	r := newRig(t, 3)
	r.alloc(1, "x", 8, Conventional, DefaultOptions(), u64bytes(5))
	q := duq.New()
	if got := readU64(r.nodes[0], q, 1, 0); got != 5 {
		t.Fatalf("initial read = %d", got)
	}
	r.nodes[0].Write(q, 1, 0, u64bytes(6))
	// Strict coherence: every node sees the latest write immediately.
	for i := 0; i < 3; i++ {
		if got := readU64(r.nodes[i], q, 1, 0); got != 6 {
			t.Fatalf("node %d read %d, want 6", i, got)
		}
	}
	r.nodes[2].Write(q, 1, 0, u64bytes(7))
	for i := 0; i < 3; i++ {
		if got := readU64(r.nodes[i], q, 1, 0); got != 7 {
			t.Fatalf("after second write node %d read %d, want 7", i, got)
		}
	}
}

func TestConventionalOwnerWritesAreLocal(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(1, "x", 8, Conventional, DefaultOptions(), nil)
	q := duq.New()
	r.nodes[0].Write(q, 1, 0, u64bytes(1)) // acquires ownership
	before := msgs(r)
	for i := uint64(2); i < 50; i++ {
		r.nodes[0].Write(q, 1, 0, u64bytes(i))
	}
	if msgs(r) != before {
		t.Fatal("owner writes sent messages")
	}
}

func TestConventionalConcurrentWritersSerialize(t *testing.T) {
	r := newRig(t, 4)
	r.alloc(3, "ctr", 8, Conventional, DefaultOptions(), nil)
	// Concurrent read-modify-write without locks is racy by design;
	// here each node writes a distinct value repeatedly and we only
	// assert the final value is one of them and nothing deadlocks.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := duq.New()
			for j := 0; j < 25; j++ {
				r.nodes[i].Write(q, 3, 0, u64bytes(uint64(i)+1))
				_ = readU64(r.nodes[i], q, 3, 0)
			}
		}(i)
	}
	wg.Wait()
	q := duq.New()
	got := readU64(r.nodes[0], q, 3, 0)
	if got < 1 || got > 4 {
		t.Fatalf("final value %d not written by anyone", got)
	}
}

// ---------------------------------------------------------------------
// General read-write (Berkeley ownership)

func TestGeneralRWDirtyOwnerServesReads(t *testing.T) {
	r := newRig(t, 3)
	r.alloc(1, "g", 8, GeneralRW, DefaultOptions(), nil)
	q := duq.New()
	r.nodes[2].Write(q, 1, 0, u64bytes(9)) // node 2 becomes dirty owner
	// A read from node 0 must see 9, served via the dirty owner.
	if got := readU64(r.nodes[0], q, 1, 0); got != 9 {
		t.Fatalf("read = %d, want 9", got)
	}
	// Owner can still write after sharing — requires invalidation round.
	r.nodes[2].Write(q, 1, 0, u64bytes(10))
	if got := readU64(r.nodes[0], q, 1, 0); got != 10 {
		t.Fatalf("read = %d, want 10", got)
	}
}

func TestGeneralRWOwnershipMoves(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(1, "g", 8, GeneralRW, DefaultOptions(), nil)
	q := duq.New()
	r.nodes[0].Write(q, 1, 0, u64bytes(1))
	r.nodes[1].Write(q, 1, 0, u64bytes(2))
	r.nodes[0].Write(q, 1, 0, u64bytes(3))
	if got := readU64(r.nodes[1], q, 1, 0); got != 3 {
		t.Fatalf("read = %d, want 3", got)
	}
}

// ---------------------------------------------------------------------
// Write-many + delayed updates

func TestWriteManyBuffersUntilFlush(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(1, "wm", 16, WriteMany, DefaultOptions(), nil)
	q0, q1 := duq.New(), duq.New()

	// Node 1 reads first so it holds a copy (and is in the copyset).
	buf := make([]byte, 16)
	r.nodes[1].Read(q1, 1, 0, buf)

	r.nodes[0].Write(q0, 1, 0, u64bytes(11))
	// Before flush: node 1 still sees the old value (loose coherence).
	if got := readU64(r.nodes[1], q1, 1, 0); got != 0 {
		t.Fatalf("unflushed write visible remotely: %d", got)
	}
	// Writer sees its own write.
	if got := readU64(r.nodes[0], q0, 1, 0); got != 11 {
		t.Fatalf("writer does not see own write: %d", got)
	}
	r.nodes[0].FlushQueue(q0)
	// After flush + relay, node 1's copy is refreshed. Relay is
	// asynchronous (one-way), so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := readU64(r.nodes[1], q1, 1, 0); got == 11 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh never arrived: %d", readU64(r.nodes[1], q1, 1, 0))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWriteManyCombinesWritesIntoOneDiff(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(2, "wm", 64, WriteMany, DefaultOptions(), nil) // home = node 0
	q := duq.New()
	// 32 writes by node 1, one flush: exactly one DIFF message.
	for i := 0; i < 32; i++ {
		r.nodes[1].Write(q, 2, i, []byte{byte(i)})
	}
	// First write fetched the object (2 messages); measure from here.
	before := msgs(r)
	r.nodes[1].FlushQueue(q)
	sent := msgs(r) - before
	if sent != 2 { // one combined diff + its acknowledgment
		t.Fatalf("flush sent %d messages, want 2 (combined diff + ack)", sent)
	}
	if got := r.nodes[1].C.Get("diff.sent"); got != 1 {
		t.Fatalf("diff.sent = %d", got)
	}
}

func TestWriteManyConcurrentDisjointWritesMerge(t *testing.T) {
	r := newRig(t, 4)
	r.alloc(1, "wm", 32, WriteMany, DefaultOptions(), nil)
	// Four nodes each write their own 8-byte slot, then flush.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := duq.New()
			r.nodes[i].Write(q, 1, i*8, u64bytes(uint64(i)+100))
			r.nodes[i].FlushQueue(q)
		}(i)
	}
	wg.Wait()
	// The home (node 1) has every slot merged.
	q := duq.New()
	home := r.nodes[1]
	for i := 0; i < 4; i++ {
		if got := readU64(home, q, 1, i*8); got != uint64(i)+100 {
			t.Fatalf("slot %d = %d, want %d", i, got, i+100)
		}
	}
}

func TestWriteManyFlushWithoutWritesIsFree(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(1, "wm", 8, WriteMany, DefaultOptions(), nil)
	q := duq.New()
	before := msgs(r)
	r.nodes[1].FlushQueue(q)
	if msgs(r) != before {
		t.Fatal("empty flush sent messages")
	}
}

func TestWriteManyIdenticalWriteProducesEmptyDiff(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(1, "wm", 8, WriteMany, DefaultOptions(), u64bytes(5))
	q := duq.New()
	r.nodes[1].Write(q, 1, 0, u64bytes(5)) // same value: diff is empty
	before := msgs(r)
	r.nodes[1].FlushQueue(q)
	if got := msgs(r) - before; got != 0 {
		t.Fatalf("flush of no-op write sent %d messages", got)
	}
}

// ---------------------------------------------------------------------
// Result

func TestResultMergesAtHome(t *testing.T) {
	r := newRig(t, 4)
	opts := DefaultOptions()
	opts.Home = 0 // collector runs on node 0
	r.alloc(9, "res", 32, Result, opts, nil)
	var wg sync.WaitGroup
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := duq.New()
			r.nodes[i].Write(q, 9, i*8, u64bytes(uint64(i*i)))
			r.nodes[i].FlushQueue(q)
		}(i)
	}
	wg.Wait()
	q := duq.New()
	for i := 1; i < 4; i++ {
		if got := readU64(r.nodes[0], q, 9, i*8); got != uint64(i*i) {
			t.Fatalf("slot %d = %d, want %d", i, got, i*i)
		}
	}
}

func TestResultDoesNotRelayToOtherCopies(t *testing.T) {
	r := newRig(t, 3)
	opts := DefaultOptions()
	opts.Home = 0
	r.alloc(9, "res", 16, Result, opts, nil)
	q1, q2 := duq.New(), duq.New()
	// Node 2 writes+flushes its slot first.
	r.nodes[2].Write(q2, 9, 8, u64bytes(7))
	r.nodes[2].FlushQueue(q2)
	// Node 1 writes+flushes: exactly 2 messages (fetch happened at
	// write; flush = 1 one-way diff)... write fetches copy (2 msgs),
	// flush sends 1 diff, and no relay to node 2.
	r.nodes[1].Write(q1, 9, 0, u64bytes(3))
	before := msgs(r)
	r.nodes[1].FlushQueue(q1)
	if got := msgs(r) - before; got != 2 {
		t.Fatalf("result flush sent %d messages, want 2 (diff + ack, no relay)", got)
	}
}

func TestResultRemoteReadSeesMerged(t *testing.T) {
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Home = 0
	r.alloc(9, "res", 8, Result, opts, nil)
	q := duq.New()
	r.nodes[1].Write(q, 9, 0, u64bytes(77))
	r.nodes[1].FlushQueue(q)
	if got := readU64(r.nodes[1], q, 9, 0); got != 77 {
		t.Fatalf("remote result read = %d", got)
	}
}

// ---------------------------------------------------------------------
// Migratory

func TestMigratoryTravelsWithLock(t *testing.T) {
	r := newRig(t, 3)
	opts := DefaultOptions()
	opts.Lock = 40
	r.alloc(5, "mig", 8, Migratory, opts, u64bytes(100))
	q := duq.New()
	// Ring of increments under the lock.
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			r.locks[i].Acquire(40)
			v := readU64(r.nodes[i], q, 5, 0)
			r.nodes[i].Write(q, 5, 0, u64bytes(v+1))
			r.locks[i].Release(40)
		}
	}
	r.locks[0].Acquire(40)
	if got := readU64(r.nodes[0], q, 5, 0); got != 109 {
		t.Fatalf("migratory value = %d, want 109", got)
	}
	r.locks[0].Release(40)
}

func TestMigratoryAccessWithoutLockPanics(t *testing.T) {
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Lock = 41
	r.alloc(5, "mig", 8, Migratory, opts, nil)
	q := duq.New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lockless migratory access")
		}
	}()
	_ = readU64(r.nodes[1], q, 5, 0)
}

func TestMigratoryZeroExtraMessages(t *testing.T) {
	// The entire point of §3.3.3: moving the object costs no messages
	// beyond the lock transfer itself.
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Lock = 42 // homed on node 0
	r.alloc(6, "mig", 8, Migratory, opts, nil)

	q := duq.New()
	r.locks[1].Acquire(42)
	cohBefore := r.c.Stats().ByClass()["coherence"]
	v := readU64(r.nodes[1], q, 6, 0)
	r.nodes[1].Write(q, 6, 0, u64bytes(v+1))
	r.locks[1].Release(42)
	cohAfter := r.c.Stats().ByClass()["coherence"]
	if cohAfter != cohBefore {
		t.Fatalf("migratory access sent %d coherence messages, want 0", cohAfter-cohBefore)
	}
}

// ---------------------------------------------------------------------
// Producer-consumer

func TestProducerConsumerEagerPush(t *testing.T) {
	r := newRig(t, 3)
	r.alloc(7, "pc", 8, ProducerConsumer, DefaultOptions(), nil)
	qp, qc := duq.New(), duq.New()

	// Consumer on node 2 registers by reading (one stall).
	_ = readU64(r.nodes[2], qc, 7, 0)
	if got := r.nodes[2].C.Get("consumer.stall"); got != 1 {
		t.Fatalf("stalls = %d", got)
	}

	// Producer on node 0 writes + flushes.
	r.nodes[0].Write(qp, 7, 0, u64bytes(1))
	r.nodes[0].FlushQueue(qp)

	// The push is eager: the consumer's copy updates without it asking.
	deadline := time.Now().Add(2 * time.Second)
	for readU64(r.nodes[2], qc, 7, 0) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("eager push never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	// And the consumer never stalled again.
	if got := r.nodes[2].C.Get("consumer.stall"); got != 1 {
		t.Fatalf("stalls after push = %d, want still 1", got)
	}
}

func TestProducerConsumerSequencedUpdates(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(7, "pc", 8, ProducerConsumer, DefaultOptions(), nil)
	qp, qc := duq.New(), duq.New()
	_ = readU64(r.nodes[1], qc, 7, 0) // register consumer

	for i := uint64(1); i <= 20; i++ {
		r.nodes[0].Write(qp, 7, 0, u64bytes(i))
		r.nodes[0].FlushQueue(qp)
	}
	deadline := time.Now().Add(2 * time.Second)
	for readU64(r.nodes[1], qc, 7, 0) != 20 {
		if time.Now().After(deadline) {
			t.Fatalf("consumer stuck at %d", readU64(r.nodes[1], qc, 7, 0))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestProducerConsumerLateConsumerCatchesUp(t *testing.T) {
	r := newRig(t, 3)
	r.alloc(7, "pc", 8, ProducerConsumer, DefaultOptions(), nil)
	qp := duq.New()
	// Producer pushes several updates before anyone consumes.
	for i := uint64(1); i <= 5; i++ {
		r.nodes[0].Write(qp, 7, 0, u64bytes(i))
		r.nodes[0].FlushQueue(qp)
	}
	// Late consumer reads: must see the latest value via registration.
	qc := duq.New()
	if got := readU64(r.nodes[2], qc, 7, 0); got != 5 {
		t.Fatalf("late consumer read %d, want 5", got)
	}
	// And receives subsequent pushes.
	r.nodes[0].Write(qp, 7, 0, u64bytes(6))
	r.nodes[0].FlushQueue(qp)
	deadline := time.Now().Add(2 * time.Second)
	for readU64(r.nodes[2], qc, 7, 0) != 6 {
		if time.Now().After(deadline) {
			t.Fatal("late consumer never got the push")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------
// Read-mostly

func TestReadMostlyRemoteLoadStore(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(8, "rm", 8, ReadMostly, DefaultOptions(), u64bytes(3))
	q := duq.New()
	if got := readU64(r.nodes[1], q, 8, 0); got != 3 {
		t.Fatalf("remote load = %d", got)
	}
	r.nodes[1].Write(q, 8, 0, u64bytes(4))
	if got := readU64(r.nodes[1], q, 8, 0); got != 4 {
		t.Fatalf("after remote store = %d", got)
	}
	// Every remote access costs messages (no caching in remote mode).
	before := msgs(r)
	_ = readU64(r.nodes[1], q, 8, 0)
	if msgs(r) == before {
		t.Fatal("remote-mode read was served locally")
	}
	if r.nodes[1].C.Get("remote.load") < 2 {
		t.Fatal("remote.load counter not incremented")
	}
}

func TestReadMostlyDynamicSwitchesToReplication(t *testing.T) {
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Dynamic = true
	r.alloc(8, "rm", 8, ReadMostly, opts, u64bytes(1))
	q := duq.New()
	// Hammer reads until the home switches the object to replication.
	for i := 0; i < 64; i++ {
		_ = readU64(r.nodes[1], q, 8, 0)
	}
	// Wait for the mode switch to land on node 1.
	deadline := time.Now().Add(2 * time.Second)
	for {
		before := msgs(r)
		_ = readU64(r.nodes[1], q, 8, 0)
		_ = readU64(r.nodes[1], q, 8, 0) // second read after caching
		if msgs(r)-before <= 2 {         // first may fetch; second must be local
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("object never switched to replicated mode")
		}
	}
	// Writes still propagate (refresh) to the cached copy.
	r.nodes[0].Write(q, 8, 0, u64bytes(2))
	deadline = time.Now().Add(2 * time.Second)
	for readU64(r.nodes[1], q, 8, 0) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("refresh after mode switch never arrived")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestReadMostlyInvalidateModeDropsCopies(t *testing.T) {
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Dynamic = true
	opts.Update = Invalidate
	r.alloc(8, "rm", 8, ReadMostly, opts, u64bytes(1))
	q := duq.New()
	for i := 0; i < 64; i++ {
		_ = readU64(r.nodes[1], q, 8, 0)
	}
	// After the switch, node 1 caches; a write invalidates, so the next
	// read refetches and still sees the new value.
	r.nodes[0].Write(q, 8, 0, u64bytes(9))
	deadline := time.Now().Add(2 * time.Second)
	for readU64(r.nodes[1], q, 8, 0) != 9 {
		if time.Now().After(deadline) {
			t.Fatal("invalidate-mode copy stuck on stale value")
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------
// Private

func TestPrivateIsNodeLocal(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(4, "priv", 8, Private, DefaultOptions(), u64bytes(50))
	q := duq.New()
	r.nodes[0].Write(q, 4, 0, u64bytes(60))
	// Node 1's private copy is untouched.
	if got := readU64(r.nodes[1], q, 4, 0); got != 50 {
		t.Fatalf("node 1 private = %d, want 50", got)
	}
	before := msgs(r)
	for i := 0; i < 10; i++ {
		r.nodes[0].Write(q, 4, 0, u64bytes(uint64(i)))
		_ = readU64(r.nodes[1], q, 4, 0)
	}
	if msgs(r) != before {
		t.Fatal("private object accesses sent messages")
	}
}

// ---------------------------------------------------------------------
// Cross-cutting

func TestAllocRejectsBadMeta(t *testing.T) {
	r := newRig(t, 1)
	for _, tc := range []struct {
		name string
		meta Meta
		init []byte
	}{
		{"zero size", Meta{ID: 1, Size: 0}, nil},
		{"init mismatch", Meta{ID: 1, Size: 4}, []byte{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			r.nodes[0].Alloc(tc.meta, tc.init)
		}()
	}
}

func TestAccessUnallocatedPanics(t *testing.T) {
	r := newRig(t, 1)
	q := duq.New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.nodes[0].Read(q, 99, 0, make([]byte, 1))
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	r := newRig(t, 1)
	r.alloc(1, "x", 8, Conventional, DefaultOptions(), nil)
	q := duq.New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.nodes[0].Read(q, 1, 4, make([]byte, 8))
}

func TestAnnotationAndModeStrings(t *testing.T) {
	if WriteMany.String() != "write-many" || Conventional.String() != "conventional" {
		t.Fatal("annotation names wrong")
	}
	if Annotation(99).String() == "" {
		t.Fatal("unknown annotation empty")
	}
	if Refresh.String() != "refresh" || Invalidate.String() != "invalidate" {
		t.Fatal("update mode names wrong")
	}
	if Invalid.String() != "invalid" || Shared.String() != "shared" || Exclusive.String() != "exclusive" {
		t.Fatal("copy state names wrong")
	}
}

func TestMetaRoundTripThroughAlloc(t *testing.T) {
	meta := Meta{ID: 3, Name: "roundtrip", Size: 4, Annot: Migratory,
		Opts: Options{Home: 1, Lock: 9, Update: Invalidate, Dynamic: true, JoinGap: 3,
			Engine: EngineDirectory}}
	init := []byte{1, 2, 3, 4}
	gotMeta, gotInit := decodeAlloc(encodeAlloc(meta, init))
	if gotMeta != meta {
		t.Fatalf("meta round trip: %+v vs %+v", gotMeta, meta)
	}
	if string(gotInit) != string(init) {
		t.Fatalf("init round trip: %v", gotInit)
	}
}
