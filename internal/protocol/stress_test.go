package protocol

import (
	"fmt"
	"sync"
	"testing"

	"munin/internal/duq"
)

// TestGeneralRWUpgradeNoDeadlock exercises the scenario that can
// deadlock a naive owner-fetch design: a Berkeley dirty owner whose
// copy was downgraded to shared (after serving readers) requests
// exclusive ownership again while other nodes' requests are queued
// ahead of it at the home, and the home fetches from it mid-queue.
func TestGeneralRWUpgradeNoDeadlock(t *testing.T) {
	const nodes = 4
	r := newRig(t, nodes)
	r.alloc(1, "g", 8, GeneralRW, DefaultOptions(), nil)

	// Completion within go test's timeout is the assertion.
	var wg sync.WaitGroup
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			q := duq.New()
			buf := make([]byte, 8)
			for i := 0; i < 50; i++ {
				// Read (become a sharer / serve as dirty owner),
				// then immediately upgrade.
				r.nodes[node].Read(q, 1, 0, buf)
				r.nodes[node].Write(q, 1, 0, []byte{byte(node), byte(i), 0, 0, 0, 0, 0, 0})
			}
		}(node)
	}
	wg.Wait()
}

// TestGeneralRWStrictPhases is the strict-coherence phase stress over
// the Berkeley protocol (dirty sharing must still never serve stale
// data after a barrier).
func TestGeneralRWStrictPhases(t *testing.T) {
	const nodes = 4
	const rounds = 30
	r := newRig(t, nodes)
	r.alloc(1, "g", 8, GeneralRW, DefaultOptions(), nil)

	var wg sync.WaitGroup
	errs := make(chan string, nodes*rounds)
	phases := make([]*sync.WaitGroup, rounds*2)
	for i := range phases {
		phases[i] = &sync.WaitGroup{}
		phases[i].Add(nodes)
	}
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			q := duq.New()
			buf := make([]byte, 8)
			for round := 0; round < rounds; round++ {
				writer := (round / 2) % nodes
				if node == writer {
					buf[0], buf[1] = byte(round), byte(node)
					r.nodes[node].Write(q, 1, 0, buf)
				}
				phases[round*2].Done()
				phases[round*2].Wait()
				got := make([]byte, 8)
				r.nodes[node].Read(q, 1, 0, got)
				if got[0] != byte(round) || got[1] != byte(writer) {
					errs <- fmt.Sprintf("round %d node %d read (%d,%d), want (%d,%d)",
						round, node, got[0], got[1], round, writer)
				}
				phases[round*2+1].Done()
				phases[round*2+1].Wait()
			}
		}(node)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestWriteOnceEvictUnderConcurrentReads drops replicas while other
// threads on the same node keep reading.
func TestWriteOnceEvictUnderConcurrentReads(t *testing.T) {
	r := newRig(t, 2)
	init := []byte("0123456789abcdef")
	r.alloc(2, "big", len(init), WriteOnce, DefaultOptions(), init) // home = node 0
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := duq.New()
			buf := make([]byte, len(init))
			for j := 0; j < 50; j++ {
				if i == 0 && j%10 == 0 {
					r.nodes[1].Evict(2)
				}
				r.nodes[1].Read(q, 2, 0, buf)
				if string(buf) != string(init) {
					t.Errorf("corrupt read after eviction: %q", buf)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestReadMostlyDynamicUnderMixedLoad drives the dynamic switch while
// writes keep flowing: values must stay coherent across the transition.
func TestReadMostlyDynamicUnderMixedLoad(t *testing.T) {
	r := newRig(t, 3)
	opts := DefaultOptions()
	opts.Dynamic = true
	opts.Home = 0
	r.alloc(1, "rm", 8, ReadMostly, opts, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writer on node 0 (the home), monotonically increasing values.
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := duq.New()
		for i := uint64(1); i <= 60; i++ {
			var b [8]byte
			b[7] = byte(i)
			b[6] = byte(i >> 8)
			r.nodes[0].Write(q, 1, 0, b[:])
		}
		close(stop)
	}()
	// Readers on nodes 1,2: values must never go backwards.
	for n := 1; n < 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			q := duq.New()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := readU64(r.nodes[n], q, 1, 0)
				if v < last {
					t.Errorf("node %d: value went backwards %d -> %d", n, last, v)
					return
				}
				last = v
			}
		}(n)
	}
	wg.Wait()
}
