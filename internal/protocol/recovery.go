package protocol

import (
	"fmt"
	"sort"

	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/stats"
)

// Protocol-level recovery (ROADMAP "reconnect-aware protocol
// recovery"): PR 4's epoch-versioned reconnect revives the wire after
// a member crashes and restarts, but the protocol state above it is
// one-sided — survivors still record the dead incarnation's copies,
// ownership, producer registrations, and queued lock grants, while the
// restarted process comes back with nothing. The recovery handshake
// squares the two views:
//
//  1. The rejoining member re-announces its allocations (object IDs +
//     resolved engine kinds + setup-digest position) to every peer
//     with a kindRecover call. Each peer verifies the announce against
//     its own allocations — SPMD members allocate identically, so any
//     difference is program divergence, reported as a typed rejection
//     — and then rebuilds its state for the rejoined node: the old
//     incarnation's copy-set entries, producer slot, consumer cache,
//     exclusive ownership (prunePeer), and queued or held distributed
//     locks (dlock.Service.PeerRecovered) are all dropped or
//     reclaimed. Nothing of the dead incarnation survives; the fresh
//     one re-enters copy sets and lock queues the ordinary way.
//  2. Replicas are re-primed lazily: the rejoined member's objects
//     install Invalid (except at their home), so its first read of
//     each object runs the existing fault path (ensureReadable) and
//     fetches current bytes + sequence position from the home. No bulk
//     state transfer, no new data-movement machinery.
//  3. Until the handshake completes, the member's application reads
//     and writes block (awaitRecovered): a recovering member can never
//     serve pre-crash bytes, per §3.2's conservative visibility.
//
// The run-gate sequence resync (step 4 of the handshake) lives one
// layer up in internal/core, which owns the gate.

// BeginRecovery marks this node as recovering: application reads and
// writes block until FinishRecovery. It must be called during
// construction, before any application thread can touch shared memory.
func (n *Node) BeginRecovery() {
	n.recoverCh = make(chan struct{})
	n.recovering.Store(true)
}

// FinishRecovery completes the recovery handshake and releases every
// blocked reader and writer. Idempotent.
func (n *Node) FinishRecovery() {
	if n.recovering.CompareAndSwap(true, false) {
		close(n.recoverCh)
		n.C.Add(stats.CRecoverDone, 1)
	}
}

// Recovering reports whether the node is still inside its recovery
// handshake.
func (n *Node) Recovering() bool { return n.recovering.Load() }

// awaitRecovered parks the calling application thread while the node
// is recovering. One atomic load in steady state.
func (n *Node) awaitRecovered() {
	if n.recovering.Load() {
		<-n.recoverCh
	}
}

// SetSetupDigest registers the provider of this member's setup digest
// (the runtime's fold over its allocation sequence). When set, an
// incoming recovery announce must carry the identical digest.
func (n *Node) SetSetupDigest(f func() (sum uint64, n int)) {
	n.digestMu.Lock()
	n.setupDigest = f
	n.digestMu.Unlock()
}

func (n *Node) setupDigestFn() func() (uint64, int) {
	n.digestMu.Lock()
	defer n.digestMu.Unlock()
	return n.setupDigest
}

// RecoverAnnounce replays this member's allocations to every peer: the
// rejoining side of the handshake. The payload carries the setup
// digest (sum + fold count) and each local object's ID and resolved
// engine kind, sorted by ID. A peer that finds a mismatch — an object
// it never allocated, a different engine, a different digest — rejects
// the announce, and the error surfaces here as setup divergence.
// Peers that departed cleanly are skipped.
func (n *Node) RecoverAnnounce(setupSum uint64, setupN int) error {
	type objKind struct {
		id   memory.ObjectID
		kind EngineKind
	}
	var objs []objKind
	for i := range n.stripes {
		s := &n.stripes[i]
		s.mu.Lock()
		for id, o := range s.objs {
			objs = append(objs, objKind{id, o.eng.kind()})
		}
		s.mu.Unlock()
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].id < objs[j].id })

	b := msg.NewBuilder(32 + 5*len(objs))
	b.U64(setupSum).Int(setupN).Int(len(objs))
	for _, e := range objs {
		b.U32(uint32(e.id)).U8(uint8(e.kind))
	}
	payload := b.Bytes()

	for i := 0; i < n.nodes; i++ {
		dst := msg.NodeID(i)
		if dst == n.id {
			continue
		}
		reply, err := n.k.Call(dst, kindRecover, payload)
		if err != nil {
			if isGone(err) {
				continue // departed cleanly; nothing to rebuild there
			}
			return fmt.Errorf("munin: recover: announce to node %d: %w", dst, err)
		}
		r := msg.NewReader(reply.Payload)
		if verdict := r.U8(); verdict != recoverOK {
			return fmt.Errorf("munin: recover: node %d rejected announce: %s", dst, r.Str())
		}
	}
	n.C.Add(stats.CRecoverAnnounced, 1)
	n.C.Add(stats.CRecoverObjects, int64(len(objs)))
	return nil
}

// kindRecover reply verdicts.
const (
	recoverOK       = 0
	recoverMismatch = 1
)

// handleRecover is the surviving side of the handshake: validate the
// rejoining member's announced allocations against our own, then
// rebuild our state for it — prune every record of its dead
// incarnation (copy sets, producer slots, consumer caches, exclusive
// ownership) and reset its distributed-lock entries (queued grants
// dropped, a held lock force-released to the next waiter). The reply
// is the verdict; the pruning runs only on success, so a divergent
// member never mutates survivor state.
func (n *Node) handleRecover(req *msg.Msg) {
	reject := func(detail string) {
		n.C.Add(stats.CRecoverRejected, 1)
		n.k.Reply(req, msg.NewBuilder(4+len(detail)).U8(recoverMismatch).Str(detail).Bytes())
	}
	r := msg.NewReader(req.Payload)
	sum := r.U64()
	cnt := r.Int()
	k := r.Int()
	if f := n.setupDigestFn(); f != nil {
		mySum, myN := f()
		if mySum != sum || myN != cnt {
			reject(fmt.Sprintf("setup digest %016x/%d != local %016x/%d", sum, cnt, mySum, myN))
			return
		}
	}
	for i := 0; i < k; i++ {
		id := memory.ObjectID(r.U32())
		kind := EngineKind(r.U8())
		o := n.obj(id)
		if o == nil {
			reject(fmt.Sprintf("announced object %d was never allocated here", id))
			return
		}
		if got := o.eng.kind(); got != kind {
			reject(fmt.Sprintf("object %d engine %d != local engine %d", id, kind, got))
			return
		}
	}
	if r.Err() != nil {
		reject(fmt.Sprintf("corrupt announce: %v", r.Err()))
		return
	}
	n.PeerRecovered(req.From)
	n.k.Reply(req, msg.NewBuilder(1).U8(recoverOK).Bytes())
}

// PeerRecovered rebuilds this node's protocol state for a peer whose
// restarted incarnation is rejoining: every record of the dead
// incarnation is pruned (it lost all its copies with the crash, so
// relaying to it or fetching from it would be wrong), and its
// distributed-lock entries are reset. The fresh incarnation re-enters
// copy sets via its read faults and lock queues via ordinary acquires.
//
// Counters: member.recovered, plus the shared member.pruned_copies /
// member.pruned_consumers / member.reclaimed_owner from the prune.
func (n *Node) PeerRecovered(peer msg.NodeID) {
	copies, consumers, owners := n.prunePeer(peer)
	if n.locks != nil {
		n.locks.PeerRecovered(peer)
	}
	n.C.Add(stats.CMemberRecovered, 1)
	if copies > 0 {
		n.C.Add(stats.CMemberPrunedCopies, copies)
	}
	if consumers > 0 {
		n.C.Add(stats.CMemberPrunedConsumers, consumers)
	}
	if owners > 0 {
		n.C.Add(stats.CMemberReclaimedOwner, owners)
	}
}
