package protocol

import (
	"fmt"
	"sync"
	"testing"

	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
)

// newTCPRig is newRig over real loopback sockets, so the protocol's
// batched emission is exercised against the transport's coalescing
// writer pipeline rather than the in-process queues.
func newTCPRig(t *testing.T, n int) *rig {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: n, Transport: "tcp"})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{c: c}
	for i := 0; i < n; i++ {
		k := c.Kernel(msg.NodeID(i))
		ls := dlock.NewService(k)
		r.locks = append(r.locks, ls)
		r.nodes = append(r.nodes, NewNode(k, ls))
	}
	t.Cleanup(c.Close)
	return r
}

// TestBatchedFlushOverTCPIsOneWrite is the wire-level half of the
// batching claim: over real sockets, flushing K dirty write-many
// objects homed on one remote node must cost O(1) write syscalls (the
// batch leaves as one coalesced frame, the ack as another), not one
// write per message.
func TestBatchedFlushOverTCPIsOneWrite(t *testing.T) {
	const K = 8
	r := newTCPRig(t, 2)
	opts := DefaultOptions()
	opts.Home = 0
	for i := 1; i <= K; i++ {
		r.alloc(memory.ObjectID(i), fmt.Sprintf("wm%d", i), 8, WriteMany, opts, nil)
	}
	q := duq.New()
	for i := 1; i <= K; i++ {
		r.nodes[1].Write(q, memory.ObjectID(i), 0, u64bytes(uint64(i)*10))
	}
	st := r.c.Stats()
	beforeMsgs, beforeWrites := st.Messages(), st.WireWrites()
	r.nodes[1].FlushQueue(q)
	if sent := st.Messages() - beforeMsgs; sent != 2 {
		t.Fatalf("batched flush of %d objects sent %d messages, want 2", K, sent)
	}
	if w := st.WireWrites() - beforeWrites; w > 3 {
		t.Fatalf("batched flush of %d objects took %d wire writes, want O(1)", K, w)
	}
	for i := 1; i <= K; i++ {
		if got := readU64(r.nodes[0], q, memory.ObjectID(i), 0); got != uint64(i)*10 {
			t.Fatalf("home object %d = %d, want %d", i, got, i*10)
		}
	}
}

// TestConcurrentFlushesOverTCP drives multi-home, multi-thread flush
// traffic over the socket backend: three nodes, objects homed on every
// node, two writer threads per non-home node flushing concurrently.
// Everything must converge and nothing may deadlock in the per-peer
// writers — this is the test the CI race step leans on.
func TestConcurrentFlushesOverTCP(t *testing.T) {
	const objs = 12
	const rounds = 5
	r := newTCPRig(t, 3)
	for i := 1; i <= objs; i++ {
		opts := DefaultOptions()
		opts.Home = msg.NodeID(i % 3)
		r.alloc(memory.ObjectID(i), fmt.Sprintf("wm%d", i), 8, WriteMany, opts, nil)
	}
	var wg sync.WaitGroup
	for node := 1; node <= 2; node++ {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(node, th int) {
				defer wg.Done()
				q := duq.New()
				for round := 0; round < rounds; round++ {
					// Each worker owns a disjoint byte lane per object so
					// concurrent updates never overlap (write-many allows
					// either value on races; disjoint lanes make the
					// final state checkable).
					lane := (node-1)*2 + th
					for i := 1; i <= objs; i++ {
						r.nodes[node].Write(q, memory.ObjectID(i), lane, []byte{byte(round + 1)})
					}
					r.nodes[node].FlushQueue(q)
				}
			}(node, th)
		}
	}
	wg.Wait()
	// Every copy holder converged on every lane's final round.
	for i := 1; i <= objs; i++ {
		for node := 0; node < 3; node++ {
			buf := make([]byte, 4)
			r.nodes[node].Read(duq.New(), memory.ObjectID(i), 0, buf)
			for lane := 0; lane < 4; lane++ {
				if buf[lane] != rounds {
					t.Fatalf("node %d object %d lane %d = %d, want %d",
						node, i, lane, buf[lane], rounds)
				}
			}
		}
	}
}
