// Package protocol implements Munin's type-specific memory coherence:
// the shared-object model, the per-object directory, and one coherence
// mechanism per access-pattern annotation (paper §3.3):
//
//	WriteOnce          replication on demand; pageout supported
//	WriteMany          delayed updates (twin + diff through the DUQ)
//	ProducerConsumer   eager object movement (direct multicast to consumers)
//	Migratory          object rides inside lock-transfer messages
//	Result             buffered writes merged at a single home copy
//	Private            node-local, no coherence traffic
//	ReadMostly         remote load/store (§3.3.5 prototype choice),
//	                   dynamically switchable to replication (§3.4.1)
//	GeneralRW          Berkeley ownership protocol (dirty sharing)
//	Conventional       Ivy-like write-invalidate with home write-back —
//	                   the default when no annotation is given (§3.1)
//
// Every node runs one *Node (the paper's per-processor "Munin server").
// Application threads call Read/Write with their thread's delayed update
// queue; a miss suspends the thread and runs the protocol's fault
// handler, mirroring the paper's "suspend the faulting thread and invoke
// the associated server" discipline at object granularity.
//
// Flushes are batched and pipelined: FlushQueue plans the whole drained
// dirty set at once (duq.Drain/Commit), groups write-many and result
// diffs by home and producer-consumer pushes by consumer set into
// multi-object batch messages, starts every destination asynchronously
// on the transport's coalescing writer, fences once, and then awaits
// all acknowledgments — K dirty objects cost O(1) messages and O(1)
// wire writes per destination instead of 2K round trips (bench
// E10/E11/E12). SetSerialFlush selects the legacy one-object-per-round-
// trip path, kept as the measured baseline and differential oracle.
//
// On the multi-process mesh a destination can become unreachable
// mid-flush; the failure surfaces out of TryFlushQueue (and the fault
// handlers' panics) as a typed error rather than a hang —
// *transport.ErrPeerDown when the peer's wire died,
// *transport.ErrPeerGone when it departed cleanly via the goodbye
// handshake — because vkernel fails the pending acknowledgments the
// moment the transport latches the peer.
package protocol

import (
	"fmt"
	"sync"
	"sync/atomic"

	"munin/internal/bufpool"
	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/vkernel"
)

// Annotation is the semantic hint attached to a shared object at
// allocation — the paper's type-specific declaration.
type Annotation uint8

// The access-pattern annotations from Section 2 of the paper.
const (
	Conventional Annotation = iota // unannotated: Ivy-like default
	WriteOnce
	WriteMany
	ProducerConsumer
	Migratory
	Result
	Private
	ReadMostly
	GeneralRW
)

var annotNames = [...]string{
	"conventional", "write-once", "write-many", "producer-consumer",
	"migratory", "result", "private", "read-mostly", "general-rw",
}

func (a Annotation) String() string {
	if int(a) < len(annotNames) {
		return annotNames[a]
	}
	return fmt.Sprintf("annotation(%d)", uint8(a))
}

// UpdateMode selects how a replicated object's copies are brought up to
// date when it changes (paper §3.4.2).
type UpdateMode uint8

const (
	// Refresh propagates the new bytes to every copy.
	Refresh UpdateMode = iota
	// Invalidate drops remote copies; they refetch on next access.
	Invalidate
)

func (m UpdateMode) String() string {
	if m == Refresh {
		return "refresh"
	}
	return "invalidate"
}

// Options tune per-object protocol behaviour beyond the annotation.
type Options struct {
	// Home pins the object's home node. -1 (default) hashes the ID.
	// Result objects should be homed where the collector thread runs.
	Home msg.NodeID
	// Lock associates a migratory object with its guarding lock.
	Lock dlock.LockID
	// Update selects refresh vs invalidate for replicated write-many
	// and read-mostly objects. Default Refresh.
	Update UpdateMode
	// Dynamic lets the runtime adapt the mechanism from observed
	// behaviour (§3.4): read-mostly objects switch from remote
	// load/store to replication when reads dominate.
	Dynamic bool
	// ForceReplicated starts a read-mostly object in replicated mode
	// instead of remote load/store — the static other half of the
	// §3.4.1 replication-vs-remote comparison.
	ForceReplicated bool
	// JoinGap folds diff runs separated by at most this many equal
	// bytes into one span. Default 0 (exact diffs).
	JoinGap int
	// Engine selects the coherence engine for this object.
	// EngineDefault (zero) defers to the node's per-annotation
	// selection (SetAnnotationEngine), which itself defaults to the
	// directory engine. EngineLease is valid for read-mostly objects
	// only.
	Engine EngineKind
}

// DefaultOptions returns the zero-configuration options.
func DefaultOptions() Options { return Options{Home: -1} }

// Meta is an object's cluster-wide metadata, identical on every node.
type Meta struct {
	ID    memory.ObjectID
	Name  string
	Size  int
	Annot Annotation
	Opts  Options
}

// CopyState is the validity state of a node's local copy.
type CopyState uint8

const (
	// Invalid: no usable local copy.
	Invalid CopyState = iota
	// Shared: valid for reading (and buffered writing under loose
	// protocols).
	Shared
	// Exclusive: this node owns the object and may write directly
	// (ownership protocols).
	Exclusive
)

func (s CopyState) String() string {
	switch s {
	case Invalid:
		return "invalid"
	case Shared:
		return "shared"
	default:
		return "exclusive"
	}
}

// Obj is one node's view of a shared object.
type Obj struct {
	mu   sync.Mutex
	cond *sync.Cond

	meta Meta
	data []byte
	// twin is the snapshot for delayed-update diffing; nil when clean.
	// Its bytes live in twinBuf, a pooled buffer returned to the arena
	// when the twin is consumed (snapTwin/dropTwin).
	twin    []byte
	twinBuf *bufpool.Buffer

	state    CopyState
	fetching bool // a fetch/ownership request is in flight
	owning   bool // an ownership request by this node is outstanding
	// grantPending is set by the home when it has issued an ownership
	// grant to one of this node's own threads whose inline install has
	// not yet run. Home-side handlers that grab the local copy
	// directly must wait it out (the installer is the dispatcher and
	// needs only o.mu, so the wait cannot deadlock); a mere queued
	// request (owning set, grantPending clear) must NOT be waited on —
	// its grant cannot be processed while the waiter holds the
	// directory lock.
	grantPending bool
	genInv       uint64 // bumped on each invalidation (fetch-race detection)

	dirtyOwner bool // Berkeley: this copy is dirty and serves reads

	// Write-many / producer-consumer update ordering: home (or the
	// producer) stamps sequence numbers; receivers apply in order.
	applySeq  uint64                   // last update sequence applied
	pendApply map[uint64][]memory.Span // out-of-order updates parked

	// Producer-consumer producer-side state.
	consumers  []msg.NodeID // cached consumer set
	isProducer bool
	prodSeq    uint64     // producer's outgoing update sequence
	pushMu     sync.Mutex // serializes eager pushes from this node

	registered bool // consumer has registered with home

	// Read-mostly dynamic mode: true once switched to replication.
	replicated bool

	// eng is the coherence engine driving this object's Read/Write
	// faults, resolved at install time (see resolveEngine).
	eng engine

	// Lease engine state (EngineLease only). The version of the cached
	// copy, and the node synchronization epoch its lease was granted
	// under: the lease is live while Node.syncEpoch still equals
	// leaseEpoch, and lapses — forcing a revalidation on next read —
	// the moment this node synchronizes. At the home the authoritative
	// version is applySeq; these fields stay zero there.
	leaseVer   uint64
	leaseEpoch uint64
	leaseValid bool
}

// Meta returns the object's metadata.
func (o *Obj) Meta() Meta { return o.meta }

// snapTwin snapshots o.data into a pooled twin buffer — the delayed
// update mechanism's copy, taken on the first buffered write after a
// flush. Caller holds o.mu.
func (o *Obj) snapTwin() {
	if o.twinBuf == nil {
		o.twinBuf = bufpool.Get(len(o.data))
	}
	o.twin = memory.MakeTwinInto(o.twinBuf.B[:0], o.data)
}

// dropTwin consumes the twin and returns its buffer to the arena.
// Caller holds o.mu. Safe immediately after diffing: memory.Diff copies
// differing bytes into its own span buffer, so no span aliases the twin.
func (o *Obj) dropTwin() {
	o.twin = nil
	if o.twinBuf != nil {
		o.twinBuf.Release()
		o.twinBuf = nil
	}
}

// dirEntry is the home node's directory record for one object.
type dirEntry struct {
	mu sync.Mutex
	// relayMu serializes update redistribution for this object so
	// receivers observe sequence numbers in order and an acknowledged
	// relay implies every earlier relay was installed. Held across the
	// stamp + multicast + ack round, never together with mu.
	relayMu  sync.Mutex
	owner    msg.NodeID // ownership protocols; home initially
	copyset  map[msg.NodeID]bool
	reads    int64 // remote reads observed (dynamic decisions)
	writes   int64 // remote writes observed
	rereads  int64 // reads since last update (invalidate-vs-refresh)
	dropped  int64 // copies dropped by the last invalidation round
	producer msg.NodeID

	updMode    UpdateMode // current refresh/invalidate choice
	updModeSet bool
}

// objStripes is the number of lock stripes over the per-node object and
// directory maps. A power of two so the stripe index is a mask; 32 is
// comfortably above any plausible per-node concurrency here while
// keeping the fixed footprint trivial.
const objStripes = 32

// objStripe is one stripe of the per-node object/directory tables: its
// mutex guards only map membership for the IDs that hash to it, never
// the objects themselves (Obj and dirEntry carry their own locks).
type objStripe struct {
	mu   sync.Mutex
	objs map[memory.ObjectID]*Obj
	dir  map[memory.ObjectID]*dirEntry
}

// Node is the per-processor Munin server.
type Node struct {
	k     *vkernel.Kernel
	locks *dlock.Service
	id    msg.NodeID
	nodes int

	// stripes holds the object and directory tables, lock-striped by
	// ObjectID: every fault, diff merge, and relay does at least one
	// lookup here, and a single map mutex would serialize unrelated
	// objects' hot paths as object and node counts grow.
	stripes [objStripes]objStripe

	// serialFlush selects the legacy one-round-trip-per-object flush
	// path instead of the batched pipeline (see FlushQueue).
	serialFlush atomic.Bool

	// syncEpoch counts this node's synchronization points: TryFlushQueue
	// bumps it before draining, so every acquire/release/barrier/atomic
	// and thread exit advances it. The lease engine binds leases to it —
	// a lease granted under one epoch lapses at the next sync, which is
	// exactly when §3.2 requires remote updates to become visible.
	syncEpoch atomic.Uint64

	// annotEngine is the per-annotation engine selection
	// (SetAnnotationEngine); the zero value defers to EngineDirectory.
	annotEngine [GeneralRW + 1]EngineKind

	// Recovery gate (recovery.go): a member constructed to rejoin an
	// existing cluster blocks application reads and writes until its
	// recovery handshake completes, so it can never serve pre-crash
	// bytes. recovering is a single atomic load on the hot path;
	// recoverCh is closed by FinishRecovery to release the waiters.
	recovering atomic.Bool
	recoverCh  chan struct{}

	// setupDigest, when set (SetSetupDigest), lets handleRecover
	// verify a rejoining member's announced setup digest against this
	// member's own — SPMD members allocate identically, so any
	// difference is program divergence.
	digestMu    sync.Mutex
	setupDigest func() (sum uint64, n int)

	// Counters feeding the experiments: faults, fetches, updates...
	C stats.Set
}

// stripeOf returns the stripe owning id's table entries.
func (n *Node) stripeOf(id memory.ObjectID) *objStripe {
	return &n.stripes[uint64(id)&(objStripes-1)]
}

// SetSerialFlush switches this node between the batched flush pipeline
// (default) and the legacy one-message-per-dirty-object flush. The
// benchmarks use the serial mode to measure the batching win, and the
// tests use it as a differential oracle.
func (n *Node) SetSerialFlush(v bool) { n.serialFlush.Store(v) }

// Message kinds (KindCohBase + n). Allocation announces are control
// traffic (msg.KindPing range), not coherence traffic: the benchmark
// harness separates one-time setup from steady-state sharing messages.
const (
	kindAlloc      = msg.KindPing + 1     // Call: install object metadata (+init data at home)
	kindRead       = msg.KindCohBase + 1  // Call: fetch a readable copy from home
	kindWriteOwn   = msg.KindCohBase + 2  // Call: acquire exclusive ownership
	kindInv        = msg.KindCohBase + 3  // Call: invalidate local copy (acked)
	kindDiff       = msg.KindCohBase + 4  // Call: delayed update diff to home (acked)
	kindFetch      = msg.KindCohBase + 5  // Call: home asks current owner for data
	kindApply      = msg.KindCohBase + 6  // Call/multicast: apply spans (or invalidate) at copies (acked)
	kindRemRead    = msg.KindCohBase + 7  // Call: remote load (read-mostly, result readers)
	kindRemWrite   = msg.KindCohBase + 8  // Call: remote store (read-mostly)
	kindRegCons    = msg.KindCohBase + 9  // Call: register as consumer; reply data+seq
	kindConsUpd    = msg.KindCohBase + 10 // Call: home tells producer the consumer set changed (acked)
	kindEvict      = msg.KindCohBase + 11 // Send: node dropped its copy (pageout)
	kindModeSw     = msg.KindCohBase + 12 // Send/multicast: dynamic mode switch
	kindDiffBatch  = msg.KindCohBase + 13 // Call: batched delayed-update diffs for one home
	kindApplyBatch = msg.KindCohBase + 14 // Call/multicast: batched sequenced refreshes at copies
	kindLeaseRead  = msg.KindCohBase + 15 // Call: lease take/renew (msg.LeaseReq -> msg.LeaseGrant)
	kindLeaseWrite = msg.KindCohBase + 16 // Call: lease write-through; reply is the new version
	kindRecover    = msg.KindCohBase + 17 // Call: rejoined member re-announces its allocations (recovery.go)
	kindCohMax     = msg.KindCohBase + 0x1f
)

// fetch sub-modes for kindFetch.
const (
	fetchForRead  = 1 // conventional read: owner downgrades, home takes ownership
	fetchForWrite = 2 // ownership transfer: owner invalidates
	fetchDirty    = 3 // Berkeley read: owner stays dirty owner
)

// NewNode creates the Munin server for this node and registers its
// message handlers. locks may be nil only if no migratory objects are
// used.
func NewNode(k *vkernel.Kernel, locks *dlock.Service) *Node {
	n := &Node{
		k:     k,
		locks: locks,
		id:    k.Node(),
		nodes: k.Nodes(),
	}
	for i := range n.stripes {
		n.stripes[i].objs = make(map[memory.ObjectID]*Obj)
		n.stripes[i].dir = make(map[memory.ObjectID]*dirEntry)
	}
	k.Handle(kindAlloc, kindAlloc, n.dispatch)
	k.Handle(kindRead, kindCohMax, n.dispatch)
	return n
}

// ID returns this node's ID.
func (n *Node) ID() msg.NodeID { return n.id }

// homeOf returns the home node for an object.
func (n *Node) homeOf(m *Meta) msg.NodeID {
	if m.Opts.Home >= 0 {
		return m.Opts.Home
	}
	return cluster.HomeOf(uint64(m.ID), n.nodes)
}

// obj returns the local view of id, or nil if the object was never
// allocated (announced) here.
func (n *Node) obj(id memory.ObjectID) *Obj {
	s := n.stripeOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objs[id]
}

// mustObj panics if the object is unknown — accessing unallocated
// shared memory is a program bug, the analogue of a wild pointer.
func (n *Node) mustObj(id memory.ObjectID) *Obj {
	o := n.obj(id)
	if o == nil {
		panic(fmt.Sprintf("munin: node %d: access to unallocated object %d", n.id, id))
	}
	return o
}

func (n *Node) dirEntryOf(id memory.ObjectID) *dirEntry {
	s := n.stripeOf(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.dir[id]
	if !ok {
		d = &dirEntry{owner: n.id, copyset: make(map[msg.NodeID]bool), producer: -1}
		s.dir[id] = d
	}
	return d
}

// checkAllocArgs validates allocation arguments and fills a nil init
// with zeroes.
func checkAllocArgs(meta Meta, init []byte) []byte {
	if meta.Size <= 0 {
		panic(fmt.Sprintf("munin: alloc %q: size must be positive", meta.Name))
	}
	if meta.Opts.Engine == EngineLease && meta.Annot != ReadMostly {
		panic(fmt.Sprintf("munin: alloc %q: lease engine supports read-mostly objects only, not %v",
			meta.Name, meta.Annot))
	}
	if init != nil && len(init) != meta.Size {
		panic(fmt.Sprintf("munin: alloc %q: init length %d != size %d", meta.Name, len(init), meta.Size))
	}
	if init == nil {
		init = make([]byte, meta.Size)
	}
	return init
}

// Alloc installs a new shared object cluster-wide. It must be called
// from single-threaded setup code (the driver), before worker threads
// touch the object. The initial data lives at the object's home;
// private objects get a full local copy on every node.
func (n *Node) Alloc(meta Meta, init []byte) {
	// Resolve the engine before announcing: the announce carries the
	// resolved kind, so every node installs the same engine no matter
	// what its own per-annotation selection says.
	meta.Opts.Engine = n.resolveEngine(&meta)
	init = checkAllocArgs(meta, init)
	payload := encodeAlloc(meta, init)
	// Synchronous install on every node: setup traffic, acked so no
	// worker can race an in-flight announce.
	for i := 0; i < n.nodes; i++ {
		dst := msg.NodeID(i)
		if dst == n.id {
			n.install(meta, init)
			continue
		}
		if _, err := n.k.Call(dst, kindAlloc, payload); err != nil {
			panic(fmt.Sprintf("munin: alloc %q: announce to node %d: %v", meta.Name, dst, err))
		}
	}
}

// InstallLocal installs a new shared object on this node only — the
// SPMD allocation path for the multi-process runtime. Every process of
// an SPMD program executes the same setup code in the same order, so
// each process installs its own view of the object under the identical,
// deterministically assigned ID and no announce traffic is needed at
// all (the runtime's run gate verifies the processes really did
// allocate identically; see internal/core). Alloc, by contrast, is the
// single-driver path that announces the object to every node of an
// in-process cluster.
func (n *Node) InstallLocal(meta Meta, init []byte) {
	meta.Opts.Engine = n.resolveEngine(&meta)
	init = checkAllocArgs(meta, init)
	n.install(meta, init)
}

// install creates the local view of a newly allocated object.
func (n *Node) install(meta Meta, init []byte) {
	o := &Obj{meta: meta, pendApply: make(map[uint64][]memory.Span)}
	o.cond = sync.NewCond(&o.mu)
	o.eng = engineFor(n.resolveEngine(&meta))
	// ForceReplicated: a read-mostly object serves reads from local
	// replicas from the very first access instead of remote load/store
	// — under the directory engine via the replicated-mode flag, under
	// the lease engine by construction (every read installs a leased
	// local copy), so the flag needs no engine-side state there.
	if meta.Annot == ReadMostly && meta.Opts.ForceReplicated && o.eng.kind() == EngineDirectory {
		o.replicated = true
	}
	home := n.homeOf(&meta)
	switch meta.Annot {
	case Private:
		// Every node gets its own independent copy.
		o.data = append([]byte(nil), init...)
		o.state = Exclusive
	case Migratory:
		// Data rides with the lock. Register the transfer hooks; the
		// seed lives at the lock's home (done by the allocator below).
		o.data = append([]byte(nil), init...)
		o.state = Invalid // valid only while the lock is held here
		if n.locks == nil {
			panic("munin: migratory object requires a lock service")
		}
		n.locks.AttachMigratory(meta.Opts.Lock,
			func() []byte { return o.migratorySnapshot() },
			func(b []byte) { o.migratoryInstall(b) })
	default:
		if home == n.id {
			o.data = append([]byte(nil), init...)
			o.state = Exclusive
		} else {
			o.data = make([]byte, meta.Size)
			o.state = Invalid
		}
	}
	s := n.stripeOf(meta.ID)
	s.mu.Lock()
	s.objs[meta.ID] = o
	s.mu.Unlock()
	if home == n.id {
		d := n.dirEntryOf(meta.ID)
		d.mu.Lock()
		d.owner = n.id
		d.copyset[n.id] = true
		d.mu.Unlock()
		if meta.Annot == Migratory {
			// Park the initial bytes with the lock so the first
			// acquirer anywhere receives them.
			if err := n.locks.SeedMigratory(meta.Opts.Lock, init); err != nil {
				panic(fmt.Sprintf("munin: seed migratory %q: %v", meta.Name, err))
			}
		}
	}
}

func (o *Obj) migratorySnapshot() []byte {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.state = Invalid
	return append([]byte(nil), o.data...)
}

func (o *Obj) migratoryInstall(b []byte) {
	o.mu.Lock()
	defer o.mu.Unlock()
	copy(o.data, b)
	o.state = Exclusive
}

// dispatch routes coherence messages to their handlers.
func (n *Node) dispatch(k *vkernel.Kernel, req *msg.Msg) {
	switch req.Kind {
	case kindAlloc:
		meta, init := decodeAlloc(req.Payload)
		n.install(meta, init)
		n.k.Reply(req, nil)
	case kindRead:
		n.handleRead(req)
	case kindWriteOwn:
		n.handleWriteOwn(req)
	case kindInv:
		n.handleInv(req)
	case kindDiff:
		n.handleDiff(req)
	case kindDiffBatch:
		n.handleDiffBatch(req)
	case kindApplyBatch:
		n.handleApplyBatch(req)
	case kindFetch:
		n.handleFetch(req)
	case kindApply:
		n.handleApply(req)
	case kindRemRead:
		n.handleRemRead(req)
	case kindRemWrite:
		n.handleRemWrite(req)
	case kindRegCons:
		n.handleRegCons(req)
	case kindConsUpd:
		n.handleConsUpd(req)
	case kindEvict:
		n.handleEvict(req)
	case kindModeSw:
		n.handleModeSw(req)
	case kindLeaseRead:
		n.handleLeaseRead(req)
	case kindLeaseWrite:
		n.handleLeaseWrite(req)
	case kindRecover:
		n.handleRecover(req)
	}
}

// encodeAlloc packs object metadata + initial contents.
func encodeAlloc(meta Meta, init []byte) []byte {
	b := msg.NewBuilder(64 + len(init))
	b.U32(uint32(meta.ID)).Str(meta.Name).Int(meta.Size).U8(uint8(meta.Annot))
	b.I64(int64(meta.Opts.Home)).U32(uint32(meta.Opts.Lock)).U8(uint8(meta.Opts.Update))
	b.Bool(meta.Opts.Dynamic).Bool(meta.Opts.ForceReplicated).Int(meta.Opts.JoinGap)
	b.U8(uint8(meta.Opts.Engine))
	b.BytesN(init)
	return b.Bytes()
}

func decodeAlloc(p []byte) (Meta, []byte) {
	r := msg.NewReader(p)
	var meta Meta
	meta.ID = memory.ObjectID(r.U32())
	meta.Name = r.Str()
	meta.Size = r.Int()
	meta.Annot = Annotation(r.U8())
	meta.Opts.Home = msg.NodeID(r.I64())
	meta.Opts.Lock = dlock.LockID(r.U32())
	meta.Opts.Update = UpdateMode(r.U8())
	meta.Opts.Dynamic = r.Bool()
	meta.Opts.ForceReplicated = r.Bool()
	meta.Opts.JoinGap = r.Int()
	meta.Opts.Engine = EngineKind(r.U8())
	init := append([]byte(nil), r.BytesN()...)
	if r.Err() != nil {
		panic(fmt.Sprintf("munin: corrupt alloc payload: %v", r.Err()))
	}
	return meta, init
}

// checkRange panics on out-of-bounds object access.
func checkRange(o *Obj, off, n int) {
	if off < 0 || n < 0 || off+n > o.meta.Size {
		panic(fmt.Sprintf("munin: access [%d,%d) out of range for %q (size %d)",
			off, off+n, o.meta.Name, o.meta.Size))
	}
}
