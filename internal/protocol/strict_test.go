package protocol

import (
	"fmt"
	"sync"
	"testing"

	"munin/internal/duq"
)

// TestConventionalStrictPhases hammers the Ivy-like protocol with
// barrier-phased rounds: each round one node writes a fresh value and
// every node must then read exactly that value. Any stale read is a
// strict-coherence violation.
func TestConventionalStrictPhases(t *testing.T) {
	const nodes = 4
	const rounds = 60
	r := newRig(t, nodes)
	r.alloc(1, "x", 8, Conventional, DefaultOptions(), nil)

	var wg sync.WaitGroup
	errs := make(chan string, nodes*rounds)
	// Host-level phase barriers (sync.WaitGroup), so dlock barrier bugs
	// cannot mask protocol bugs.
	phases := make([]*sync.WaitGroup, rounds*2)
	for i := range phases {
		phases[i] = &sync.WaitGroup{}
		phases[i].Add(nodes)
	}

	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			q := duq.New()
			buf := make([]byte, 8)
			for round := 0; round < rounds; round++ {
				// Each writer writes two consecutive rounds: the
				// second round catches owners that fail to downgrade
				// after serving readers (they'd write locally and
				// leave every reader stale).
				writer := (round / 2) % nodes
				if node == writer {
					buf[7] = byte(round)
					buf[6] = byte(node)
					r.nodes[node].Write(q, 1, 0, buf)
				}
				phases[round*2].Done()
				phases[round*2].Wait()
				got := make([]byte, 8)
				r.nodes[node].Read(q, 1, 0, got)
				if got[7] != byte(round) || got[6] != byte(writer) {
					errs <- fmt.Sprintf("round %d node %d read (%d,%d), want (%d,%d)",
						round, node, got[6], got[7], writer, round)
				}
				phases[round*2+1].Done()
				phases[round*2+1].Wait()
			}
		}(node)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
		break
	}
}
