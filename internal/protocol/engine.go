package protocol

import (
	"fmt"

	"munin/internal/duq"
)

// EngineKind names a coherence engine — the per-object state machine
// behind Read/Write faults. The paper's thesis is that coherence
// machinery should be chosen per data class; the engine split carries
// that one level further: not only the policy (refresh vs invalidate,
// eager vs lazy) but the whole mechanism is pluggable per object.
type EngineKind uint8

const (
	// EngineDefault defers to the node's per-annotation selection
	// (SetAnnotationEngine); unset, that selection is the directory
	// engine. The zero value, so plain Options pick up the default.
	EngineDefault EngineKind = iota
	// EngineDirectory is the classic home/directory machine: a copyset
	// per object at the home, updates pushed (refresh) or copies
	// dropped (invalidate) eagerly on every write — §3.3's protocols
	// as one engine.
	EngineDirectory
	// EngineLease is the Tardis-style logical-lease engine for
	// read-mostly objects: reads are served from a local replica while
	// its lease is live, writes bump a logical version at the home and
	// publish nothing — no invalidation multicast, no copyset. A
	// reader whose lease lapsed (it passed a synchronization point)
	// revalidates lazily on its next access.
	EngineLease
)

var engineNames = [...]string{"default", "directory", "lease"}

func (e EngineKind) String() string {
	if int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// engine is one coherence machine: it owns the fault path — what a
// read or write of an object does to keep copies coherent. The delayed
// update queue q belongs to the calling thread; only the directory
// engine's loose protocols (write-many, result, producer-consumer)
// buffer into it, but the signature is uniform so Node.Read/Write
// dispatch without knowing the engine.
//
// The DUQ flush pipeline (TryFlushQueue) is directory-engine
// machinery: only annotations the directory engine routes through the
// queue ever appear in a flush plan, so the engines need no flush
// hook. What every engine shares is the synchronization epoch the
// flush bumps — the lease engine's leases expire on it.
type engine interface {
	kind() EngineKind
	read(n *Node, q *duq.Queue, o *Obj, off int, buf []byte)
	write(n *Node, q *duq.Queue, o *Obj, off int, data []byte)
}

var (
	dirEngine   engine = directoryEngine{}
	leaseEngine engine = leaseEng{}
)

// engineFor maps a resolved EngineKind to its implementation.
func engineFor(k EngineKind) engine {
	if k == EngineLease {
		return leaseEngine
	}
	return dirEngine
}

// SetAnnotationEngine selects the coherence engine for every object of
// the given annotation allocated after the call (per-object
// Options.Engine still overrides). Only read-mostly objects may ride
// the lease engine: its stale-until-revalidated contract matches the
// remote-load/replication semantics of §3.3.5, not the ownership or
// delayed-update protocols. Call it during setup, before allocations,
// and identically on every node of the cluster.
func (n *Node) SetAnnotationEngine(a Annotation, e EngineKind) {
	if e == EngineLease && a != ReadMostly {
		panic(fmt.Sprintf("munin: lease engine supports read-mostly objects only, not %v", a))
	}
	n.annotEngine[a] = e
}

// resolveEngine pins down the engine an allocation will use: the
// per-object option if set, else the node's per-annotation selection,
// else the directory engine. Alloc resolves before announcing so every
// node installs the same engine regardless of local selections.
func (n *Node) resolveEngine(meta *Meta) EngineKind {
	e := meta.Opts.Engine
	if e == EngineDefault && int(meta.Annot) < len(n.annotEngine) {
		e = n.annotEngine[meta.Annot]
	}
	if e == EngineDefault {
		e = EngineDirectory
	}
	return e
}

// directoryEngine is engine #1: the home/directory/copyset machine the
// prototype always ran — one coherence mechanism per annotation
// (§3.3), updates redistributed eagerly by the home on every write.
type directoryEngine struct{}

func (directoryEngine) kind() EngineKind { return EngineDirectory }

func (directoryEngine) read(n *Node, q *duq.Queue, o *Obj, off int, buf []byte) {
	switch o.meta.Annot {
	case Private:
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
	case Migratory:
		o.mu.Lock()
		if o.state == Invalid {
			o.mu.Unlock()
			panic(fmt.Sprintf("munin: migratory object %q read without holding lock %d",
				o.meta.Name, o.meta.Opts.Lock))
		}
		copy(buf, o.data[off:])
		o.mu.Unlock()
	case ReadMostly:
		n.readMostlyRead(o, off, buf)
	case Result:
		n.resultRead(o, off, buf)
	case ProducerConsumer:
		n.ensureConsumer(o)
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
	default: // Conventional, GeneralRW, WriteOnce, WriteMany
		n.ensureReadable(o)
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
	}
}

func (directoryEngine) write(n *Node, q *duq.Queue, o *Obj, off int, data []byte) {
	switch o.meta.Annot {
	case Private:
		o.mu.Lock()
		copy(o.data[off:], data)
		o.mu.Unlock()
	case Migratory:
		o.mu.Lock()
		if o.state == Invalid {
			o.mu.Unlock()
			panic(fmt.Sprintf("munin: migratory object %q written without holding lock %d",
				o.meta.Name, o.meta.Opts.Lock))
		}
		copy(o.data[off:], data)
		o.mu.Unlock()
	case WriteOnce:
		n.writeOnceWrite(o, off, data)
	case WriteMany, Result:
		n.bufferedWrite(q, o, off, data)
	case ProducerConsumer:
		n.producerWrite(q, o, off, data)
	case ReadMostly:
		n.readMostlyWrite(o, off, data)
	default: // Conventional, GeneralRW
		n.ownershipWrite(o, off, data)
	}
}
