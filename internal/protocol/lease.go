package protocol

import (
	"fmt"

	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/stats"
)

// The Tardis-style lease engine (engine #2). The directory engine keeps
// replicas coherent by acting on every write: the home multicasts a
// refresh or invalidation to the whole copyset, so a write to a
// read-mostly object costs O(copyset) messages — exactly the fan-out
// the paper's §3.3.5 prototype avoided by not replicating at all
// (paying a round trip per read instead). TARDIS shows a third point:
// order reads with logical timestamps and leases instead of eager
// invalidation. Here:
//
//   - The home keeps one logical version counter per object (the
//     object's applySeq — the same counter the directory engine stamps
//     relays with). A write bumps it. Nothing is multicast, and the
//     home keeps NO copyset: the engine's home state is a counter, not
//     a membership list.
//   - A reader caches the object with the version it was granted and a
//     lease bound to its node's synchronization epoch (Node.syncEpoch,
//     bumped by every DUQ flush — i.e. at every acquire/release/
//     barrier/atomic and at thread exit). While the epoch stands, reads
//     are local. Once the node synchronizes, the lease has lapsed and
//     the next read revalidates with the home, sending the version it
//     holds; an unchanged object costs a tiny version-echo reply
//     (msg.LeaseGrant{Unchanged}) instead of the bytes.
//   - Writes are write-through: the writer sends the bytes to the home,
//     the home applies them and returns the new version. A writer whose
//     cached copy was current installs its own bytes locally (read-
//     your-writes stays local); otherwise its lease is dropped and the
//     next read refetches.
//
// Coherence contract (§3.2 loose coherence, preserved): a reader that
// has not synchronized may see a stale copy — legal, the directory
// engine's delayed updates expose the same window. A thread that
// synchronizes after a writer's synchronization point sees the write:
// the write reached the home before the writer's sync op completed, and
// the reader's own sync bumped its epoch, so its next read revalidates
// against the home. What the lease engine gives up is eager delivery
// between sync points; what it gains is a write cost independent of how
// many nodes are reading — the fan-out is gone (bench E16).

// leaseEng implements the engine interface for read-mostly objects.
type leaseEng struct{}

func (leaseEng) kind() EngineKind { return EngineLease }

func (leaseEng) read(n *Node, q *duq.Queue, o *Obj, off int, buf []byte) {
	n.leaseRead(o, off, buf)
}

func (leaseEng) write(n *Node, q *duq.Queue, o *Obj, off int, data []byte) {
	n.leaseWrite(o, off, data)
}

// leaseRead serves a read under the lease protocol: local while the
// lease is live, a take/renew round trip to the home otherwise.
func (n *Node) leaseRead(o *Obj, off int, buf []byte) {
	if n.homeOf(&o.meta) == n.id {
		// The home copy is the authority; its reads are always local.
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
		return
	}
	// The epoch is sampled before the call: if this thread's node
	// synchronizes while the renewal is in flight, the granted lease is
	// already stale and the next read revalidates again — conservative,
	// never unsafe.
	epoch := n.syncEpoch.Load()
	o.mu.Lock()
	if o.leaseValid && o.leaseEpoch == epoch {
		copy(buf, o.data[off:])
		o.mu.Unlock()
		n.C.Add(stats.CLeaseLocalReads, 1)
		return
	}
	if o.leaseValid {
		// We hold bytes but the lease lapsed at a synchronization
		// point — the lazy pull TARDIS trades the invalidation for.
		n.C.Add(stats.CLeaseExpiredReads, 1)
	}
	req := msg.LeaseReq{Obj: uint32(o.meta.ID), Have: o.leaseValid, Ver: o.leaseVer}
	o.mu.Unlock()

	n.C.Add(stats.CRMRemoteReads, 1)
	reply, err := n.k.Call(n.homeOf(&o.meta), kindLeaseRead, req.Encode())
	if err != nil {
		panic(fmt.Sprintf("munin: lease read %q: %v", o.meta.Name, err))
	}
	g, gerr := msg.DecodeLeaseGrant(reply.Payload)
	if gerr != nil {
		panic(fmt.Sprintf("munin: lease read %q: corrupt grant: %v", o.meta.Name, gerr))
	}

	o.mu.Lock()
	switch {
	case g.Unchanged:
		// Renewed: our copy is the home's current version — but only if
		// it still is what we asked about (a concurrent local write may
		// have advanced it; then its own reply settled the state).
		if o.leaseValid && o.leaseVer == req.Ver {
			o.leaseEpoch = epoch
		}
	case g.Ver >= o.leaseVer:
		copy(o.data, g.Data)
		o.leaseVer = g.Ver
		o.leaseEpoch = epoch
		o.leaseValid = true
	default:
		// The grant lost a race against this node's own write-through,
		// which already installed a newer version; keep the newer copy
		// and let the next read renew.
	}
	copy(buf, o.data[off:])
	o.mu.Unlock()
}

// leaseWrite applies a write under the lease protocol: bump-and-apply
// at the home, write-through from everywhere else. No multicast — the
// version bump is the entire publication.
func (n *Node) leaseWrite(o *Obj, off int, data []byte) {
	if n.homeOf(&o.meta) == n.id {
		o.mu.Lock()
		copy(o.data[off:], data)
		o.applySeq++
		o.mu.Unlock()
		n.C.Add(stats.CLeaseBumps, 1)
		return
	}
	n.C.Add(stats.CRemoteStore, 1)
	b := msg.NewBuilder(16 + len(data))
	b.U32(uint32(o.meta.ID)).Int(off).BytesN(data)
	reply, err := n.k.Call(n.homeOf(&o.meta), kindLeaseWrite, b.Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: lease write %q: %v", o.meta.Name, err))
	}
	ver := msg.NewReader(reply.Payload).U64()
	o.mu.Lock()
	switch {
	case o.leaseValid && ver == o.leaseVer+1:
		// Our cached copy was current when the home applied this write:
		// installing our own bytes keeps it current at the new version,
		// so read-your-writes stays local.
		copy(o.data[off:], data)
		o.leaseVer = ver
	case o.leaseValid:
		// Other writes landed between our version and this one; the
		// cached copy is missing them. Drop the lease — the next read
		// pulls the full fresh version (including this write).
		o.leaseValid = false
	}
	o.mu.Unlock()
}

// handleLeaseRead grants or renews a lease at the home: echo the
// version when the requester is current, ship version + bytes when it
// is behind (or taking its first lease).
func (n *Node) handleLeaseRead(req *msg.Msg) {
	lr, err := msg.DecodeLeaseReq(req.Payload)
	if err != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(memory.ObjectID(lr.Obj))
	o.mu.Lock()
	ver := o.applySeq
	if lr.Have && lr.Ver == ver {
		o.mu.Unlock()
		n.C.Add(stats.CLeaseRenewed, 1)
		n.k.Reply(req, msg.LeaseGrant{Ver: ver, Unchanged: true}.Encode())
		return
	}
	data := append([]byte(nil), o.data...)
	o.mu.Unlock()
	if lr.Have {
		n.C.Add(stats.CLeaseRenewed, 1)
	} else {
		n.C.Add(stats.CLeaseGranted, 1)
	}
	n.k.Reply(req, msg.LeaseGrant{Ver: ver, Data: data}.Encode())
}

// handleLeaseWrite applies a write-through at the home and bumps the
// object's logical version. The reply carries the new version; nothing
// else moves — zero invalidation multicast, no copyset bookkeeping.
func (n *Node) handleLeaseWrite(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	id := memory.ObjectID(r.U32())
	off := r.Int()
	data := r.BytesN()
	if r.Err() != nil {
		n.C.Add(stats.CDropMalformed, 1)
		return
	}
	o := n.mustObj(id)
	checkRange(o, off, len(data))
	o.mu.Lock()
	copy(o.data[off:], data)
	o.applySeq++
	ver := o.applySeq
	o.mu.Unlock()
	n.C.Add(stats.CLeaseBumps, 1)
	n.k.Reply(req, msg.NewBuilder(8).U64(ver).Bytes())
}
