package protocol

import (
	"fmt"
	"sort"
	"sync"

	"munin/internal/bufpool"
	"munin/internal/failpoint"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/vkernel"

	"munin/internal/duq"
)

// Read copies object bytes [off, off+len(buf)) into buf, running the
// object's coherence protocol if the local copy is not valid. q is the
// calling thread's delayed update queue (used only to let loose
// protocols observe the thread's own buffered writes, which live in the
// local copy already — reads never flush).
func (n *Node) Read(q *duq.Queue, id memory.ObjectID, off int, buf []byte) {
	n.awaitRecovered()
	o := n.mustObj(id)
	checkRange(o, off, len(buf))
	o.eng.read(n, q, o, off, buf)
	n.C.Add(stats.CReads, 1)
}

// Write stores data at [off, off+len(data)), running the object's
// coherence protocol. Loose protocols (write-many, result) buffer the
// update in q until the thread's next synchronization point.
func (n *Node) Write(q *duq.Queue, id memory.ObjectID, off int, data []byte) {
	n.awaitRecovered()
	o := n.mustObj(id)
	checkRange(o, off, len(data))
	o.eng.write(n, q, o, off, data)
	n.C.Add(stats.CWrites, 1)
}

// FlushQueue propagates every delayed update in q. The runtime calls
// this before every synchronization operation and at thread exit ("the
// delayed update queue must be flushed whenever a thread
// synchronizes").
//
// The flush is planned as a whole (duq.Drain) and batched: write-many
// and result diffs are grouped by home node, producer-consumer pushes
// by consumer set, and one message per destination carries that
// destination's entries in first-modification order. Batches to
// distinct destinations go out concurrently; the flush returns only
// after every destination acknowledged, so a synchronization operation
// that follows still guarantees visibility everywhere.
//
// Ordering (§3.2): within one destination group the requirement that a
// remote thread never observe a later update while missing an earlier
// one holds outright — a home merges its batch in first-modification
// order, each copy holder receives all of that home's updates in one
// in-order message, and per-object sequence stamping orders updates
// across flushes. Across destination groups (objects homed at
// different nodes, or pushed to different consumer sets) the batches
// are deliberately pipelined, so mid-flush an unsynchronized third
// node may transiently observe a later-written object's update before
// an earlier-written one homed elsewhere; any thread that
// synchronizes sees everything, because the flush completed before
// the lock or barrier was released. ROADMAP.md ("cross-home flush
// ordering option") tracks a strict mode for programs that read
// unsynchronized across homes.
func (n *Node) FlushQueue(q *duq.Queue) {
	if err := n.TryFlushQueue(q); err != nil {
		panic(fmt.Sprintf("munin: flush: %v", err))
	}
}

// TryFlushQueue is FlushQueue with an error return instead of a panic.
// In-process runs never see an error outside shutdown, but on the
// multi-process mesh a destination can become unreachable, and the
// error distinguishes how (detect with errors.As):
//
//   - *transport.ErrPeerDown — the peer's wire DIED (crash, dial
//     failure, broken stream). Updates aimed at it may be lost; with a
//     reconnect policy the pair can come back on a fresh epoch, but
//     nothing from this flush is replayed.
//   - *transport.ErrPeerGone — the peer DEPARTED cleanly (goodbye
//     handshake). Everything it sent before leaving was delivered;
//     this flush simply has nowhere to go.
//
// Both surface promptly, because vkernel fails the pending
// acknowledgment the moment the transport latches the peer.
//
// Every destination is attempted even when one fails, so healthy homes
// still receive their batches. The drained entries are then committed
// regardless: their diffs were consumed by the attempt, and a latched
// peer cannot receive them later anyway (even a reconnect replays
// nothing), so leaving them queued would only make a retry succeed
// vacuously. The returned error is the loss report.
func (n *Node) TryFlushQueue(q *duq.Queue) error {
	// This is the node's synchronization point: every acquire, release,
	// barrier, atomic and thread exit flushes before proceeding. Bumping
	// the epoch here — even when the queue is empty — lapses every
	// lease-engine lease on the node, so the next read of a leased
	// object revalidates against its home (lease.go).
	n.syncEpoch.Add(1)
	if n.serialFlush.Load() {
		return q.Flush(func(id memory.ObjectID) error {
			n.flushObject(id)
			return nil
		})
	}
	fs := getFlushScratch()
	defer putFlushScratch(fs)
	fs.ids = q.DrainInto(fs.ids[:0])
	if len(fs.ids) == 0 {
		return nil
	}
	err := n.flushBatched(fs)
	q.Commit(fs.ids)
	return err
}

// flushScratch is the reusable state of one batched flush: the drained
// dirty set, the span and span-data arenas every diff appends into, the
// per-destination grouping, and the await list. Entries and spans alias
// the arenas, which outlive the whole flush (the scratch is returned to
// the pool only after every destination settled), so a steady-state
// flush plans and diffs without allocating. Concurrent flushing threads
// each take their own scratch.
type flushScratch struct {
	ids      []memory.ObjectID
	spans    []memory.Span // span arena; per-object diffs subslice it
	buf      []byte        // span-data arena behind the spans
	entries  []dstEntry    // planned emissions in first-modification order
	dstOrder []msg.NodeID  // distinct homes in first-appearance order
	grouped  []batchEntry  // entries regrouped contiguously per home
	groups   []dstGroup    // remote homes' [lo,hi) ranges over grouped
	awaits   []flushAwait
}

// dstEntry is one planned diff emission: the home it goes to and the
// (object, spans) batch entry.
type dstEntry struct {
	dst msg.NodeID
	e   batchEntry
}

// dstGroup is one remote destination's contiguous range of
// flushScratch.grouped.
type dstGroup struct {
	dst    msg.NodeID
	lo, hi int
}

var flushScratchPool = sync.Pool{New: func() any { return new(flushScratch) }}

func getFlushScratch() *flushScratch { return flushScratchPool.Get().(*flushScratch) }

func putFlushScratch(fs *flushScratch) {
	// Truncate the arenas (capacity is the point of pooling) but clear
	// the awaits: they hold Pendings and closures that would otherwise
	// outlive their flush inside the pool.
	clear(fs.awaits)
	fs.ids, fs.spans, fs.buf = fs.ids[:0], fs.spans[:0], fs.buf[:0]
	fs.entries, fs.dstOrder = fs.entries[:0], fs.dstOrder[:0]
	fs.grouped, fs.groups, fs.awaits = fs.grouped[:0], fs.groups[:0], fs.awaits[:0]
	flushScratchPool.Put(fs)
}

// pcGroup collects the producer-consumer objects of one flush that
// share a destination set, so their pushes travel as one multicast.
type pcGroup struct {
	members []msg.NodeID
	objs    []*Obj // in first-modification order
}

// flushBatched plans and executes one batched, pipelined flush over
// the drained dirty set (in first-modification order). A returned
// error means some destination could not be reached or did not
// acknowledge — notably *transport.ErrPeerDown from a dead peer.
func (n *Node) flushBatched(fs *flushScratch) error {
	// Producer-consumer planning state is built lazily: the steady-state
	// write-many/result flush (the allocation-gated hot path) never
	// touches it.
	var (
		pcGroups map[string]*pcGroup
		pcOrder  []string
	)
	for _, id := range fs.ids {
		o := n.mustObj(id)
		switch o.meta.Annot {
		case WriteMany, Result:
			spans := n.takeDiff(fs, o)
			if len(spans) == 0 {
				continue
			}
			n.C.Add(stats.CDiffSent, 1)
			n.C.Add(stats.CDiffBytes, int64(memory.SpanBytes(spans)))
			home := n.homeOf(&o.meta)
			known := false
			for _, d := range fs.dstOrder {
				if d == home {
					known = true
					break
				}
			}
			if !known {
				fs.dstOrder = append(fs.dstOrder, home)
			}
			fs.entries = append(fs.entries, dstEntry{dst: home, e: batchEntry{id: id, spans: spans}})
		case ProducerConsumer:
			n.becomeProducer(o)
			members := n.pushMembers(o)
			key := memberKey(members)
			if pcGroups == nil {
				pcGroups = make(map[string]*pcGroup)
			}
			g, ok := pcGroups[key]
			if !ok {
				g = &pcGroup{members: members}
				pcGroups[key] = g
				pcOrder = append(pcOrder, key)
			}
			g.objs = append(g.objs, o)
		default:
			// Other annotations never enter the DUQ.
		}
	}

	// Regroup each destination's entries contiguously in the scratch so
	// one home's batch is one subslice, preserving first-modification
	// order within the destination.
	var local []batchEntry // write-many/result homed on this node
	for _, dst := range fs.dstOrder {
		lo := len(fs.grouped)
		for _, de := range fs.entries {
			if de.dst == dst {
				fs.grouped = append(fs.grouped, de.e)
			}
		}
		if dst == n.id {
			local = fs.grouped[lo:len(fs.grouped):len(fs.grouped)]
		} else {
			fs.groups = append(fs.groups, dstGroup{dst: dst, lo: lo, hi: len(fs.grouped)})
		}
	}

	work := len(fs.groups) + len(pcOrder)
	if len(local) > 0 {
		work++
	}
	if work == 0 {
		return nil
	}
	// The flush is fully planned (diffs taken, batches grouped) but
	// nothing has been handed to the wire yet: a member dying here
	// loses the whole drained dirty set.
	failpoint.Hit(failpoint.FlushPlanned)
	if work > 1 {
		n.C.Add(stats.CFlushPipelined, 1)
	}

	// Every producer-consumer object's pushMu is taken up front, in
	// global object-ID order (concurrent flushes from other threads
	// lock in the same order, so overlapping dirty sets cannot
	// deadlock), and held until the last acknowledgment: consumers see
	// each object's sequence numbers in order, and an acknowledged push
	// implies all earlier pushes landed.
	var pcObjs []*Obj
	for _, key := range pcOrder {
		pcObjs = append(pcObjs, pcGroups[key].objs...)
	}
	sort.Slice(pcObjs, func(i, j int) bool { return pcObjs[i].meta.ID < pcObjs[j].meta.ID })
	pcLocked := make(map[*Obj]bool, len(pcObjs))
	for _, o := range pcObjs {
		o.pushMu.Lock()
		pcLocked[o] = true
	}
	unlockGroup := func(g *pcGroup) {
		for _, o := range g.objs {
			if pcLocked[o] {
				o.pushMu.Unlock()
				delete(pcLocked, o)
			}
		}
	}
	defer func() {
		for o := range pcLocked {
			o.pushMu.Unlock()
		}
	}()

	// Start phase: every destination's batch is enqueued on the
	// transport's coalescing writer — nothing blocks on the wire, so
	// distinct destinations coalesce in the per-peer writers instead of
	// fanning out over ad-hoc goroutines. A destination that fails to
	// start (its peer's wire is already latched down) is recorded but
	// does NOT abort the others: the planning loop above consumed every
	// object's twin, so the only way to not lose the healthy
	// destinations' updates is to keep going and report the failure at
	// the end.
	var firstErr error
	noteErr := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, g := range fs.groups {
		a, err := n.startDiffBatch(g.dst, fs.grouped[g.lo:g.hi:g.hi])
		if err != nil {
			noteErr(err)
			continue
		}
		fs.awaits = append(fs.awaits, a)
	}
	type pcStarted struct {
		g      *pcGroup
		awaits []flushAwait
	}
	var pcAwaits []pcStarted
	for _, key := range pcOrder {
		g := pcGroups[key]
		as, err := n.startPushBatch(fs, g)
		pcAwaits = append(pcAwaits, pcStarted{g: g, awaits: as})
		if err != nil && !n.relayBenign(err) {
			noteErr(err)
		}
	}

	// Fence: everything started above has been handed to the wire in
	// coalesced frames. The local home-side merge then overlaps with
	// the remote round trips, and the flush completes only when every
	// destination has acknowledged — the §3.2 visibility rule intact.
	if err := n.k.Flush(); err != nil && !isShutdown(err) {
		noteErr(err)
	}
	// Batches are on the wire but not yet acknowledged: a member dying
	// here leaves homes holding whatever frames made it out intact.
	failpoint.Hit(failpoint.FlushSent)
	if len(local) > 0 {
		// Local flush at the home: the home copy already holds the
		// bytes; just run the home-side merge + redistribution.
		n.homeMergeBatch(local, n.id, true)
	}
	settle := func(a flushAwait) error {
		replies, err := a.p.Wait()
		if err != nil {
			if a.benign && n.relayBenign(err) {
				return nil
			}
			return err
		}
		if a.finish != nil {
			return a.finish(replies)
		}
		return nil
	}
	// Producer-consumer groups settle first (in flush order), each
	// releasing its objects' pushMu once its own acks have landed —
	// before the write-many diff round trips are waited on. A group
	// later in the order still waits out earlier groups' acks; fully
	// independent release would need per-group settlement goroutines,
	// which is exactly the fan-out this path removed.
	for _, ps := range pcAwaits {
		for _, a := range ps.awaits {
			noteErr(settle(a))
		}
		unlockGroup(ps.g)
	}
	for _, a := range fs.awaits {
		noteErr(settle(a))
	}
	return firstErr
}

// flushAwait is one started (enqueued, unacknowledged) flush emission:
// the Pending collecting its acks, the completion that settles sequence
// numbers from the replies, and whether shutdown errors are benign for
// it (eager pushes, whose consumers may already be gone).
type flushAwait struct {
	p      *vkernel.Pending
	finish func([]*msg.Msg) error
	benign bool
}

// takeDiff consumes o's twin, appending the combined update spans to
// the flush scratch arenas, and returns the object's subslice (nil if
// another thread's flush already consumed the twin or every buffered
// write was a no-op). The subslice is three-index so later arena growth
// cannot scribble over it.
func (n *Node) takeDiff(fs *flushScratch, o *Obj) []memory.Span {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.twin == nil {
		return nil
	}
	lo := len(fs.spans)
	fs.spans, fs.buf = memory.Diff(fs.spans, fs.buf, o.twin, o.data, o.meta.Opts.JoinGap)
	o.dropTwin()
	return fs.spans[lo:len(fs.spans):len(fs.spans)]
}

// encodeDiffBatch builds the complete wire message for one home's
// entries — header space reserved, payload behind it — in a pooled
// buffer sized exactly, so the encode is one pass with no intermediate
// Marshal copy. A batch of one uses the single-object kindDiff message,
// so it costs exactly what the unbatched protocol paid.
func encodeDiffBatch(entries []batchEntry) (*bufpool.Buffer, msg.Kind) {
	if len(entries) == 1 {
		e := entries[0]
		wb := bufpool.Get(msg.HeaderSize + 4 + memory.EncodedSpansSize(e.spans))
		var b msg.Builder
		b.Reset(wb.B)
		b.Skip(msg.HeaderSize)
		b.U32(uint32(e.id))
		memory.EncodeSpans(&b, e.spans)
		wb.B = b.Bytes()
		return wb, kindDiff
	}
	size := msg.HeaderSize + 4
	for _, e := range entries {
		esz := 4 + memory.EncodedSpansSize(e.spans)
		size += msg.UvarintLen(uint64(esz)) + esz
	}
	wb := bufpool.Get(size)
	var b msg.Builder
	b.Reset(wb.B)
	b.Skip(msg.HeaderSize)
	b.U32(uint32(len(entries)))
	for _, e := range entries {
		// The Entry-style length prefix, written directly from the
		// precomputed size instead of through a temporary Builder.
		b.Uvarint(uint64(4 + memory.EncodedSpansSize(e.spans)))
		b.U32(uint32(e.id))
		memory.EncodeSpans(&b, e.spans)
	}
	wb.B = b.Bytes()
	return wb, kindDiffBatch
}

// startDiffBatch enqueues one home's planned entries on the coalescing
// writer and returns the await that settles the assigned sequence
// numbers from the reply. Larger batches collapse 2K messages (K diffs
// + K acks) into one kindDiffBatch round trip; the wire message is
// built in a pooled buffer owned by the transport writer from here on.
func (n *Node) startDiffBatch(dst msg.NodeID, entries []batchEntry) (flushAwait, error) {
	wb, kind := encodeDiffBatch(entries)
	if kind == kindDiffBatch {
		n.countBatch(len(entries), len(wb.B)-msg.HeaderSize)
	}
	p, err := n.k.CallStartOwned(dst, kind, wb)
	if err != nil {
		return flushAwait{}, fmt.Errorf("diff batch to node %d: %w", dst, err)
	}
	if kind == kindDiff {
		e := entries[0]
		return flushAwait{p: p, finish: func(replies []*msg.Msg) error {
			n.settleOwnDiff(e.id, msg.NewReader(replies[0].Payload).U64())
			return nil
		}}, nil
	}
	return flushAwait{p: p, finish: func(replies []*msg.Msg) error {
		r := msg.NewReader(replies[0].Payload)
		if cnt := int(r.U32()); cnt != len(entries) || r.Err() != nil {
			return fmt.Errorf("diff batch to node %d: reply has %d seqs, want %d", dst, cnt, len(entries))
		}
		for _, e := range entries {
			n.settleOwnDiff(e.id, r.U64())
		}
		return nil
	}}, nil
}

// settleOwnDiff advances an object's update sequence past this node's
// own diff, whose home relay excluded us (see advanceOwn).
func (n *Node) settleOwnDiff(id memory.ObjectID, seq uint64) {
	o := n.mustObj(id)
	o.mu.Lock()
	o.advanceOwn(seq)
	o.mu.Unlock()
}

// withHome appends the object's home to a consumer-set snapshot unless
// it is already present or this node is the home.
func (n *Node) withHome(o *Obj, members []msg.NodeID) []msg.NodeID {
	home := n.homeOf(&o.meta)
	for _, m := range members {
		if m == home {
			return members
		}
	}
	if home != n.id {
		members = append(members, home)
	}
	return members
}

// pushMembers snapshots the destination set of one producer-consumer
// push: the cached consumer set plus the home.
func (n *Node) pushMembers(o *Obj) []msg.NodeID {
	o.mu.Lock()
	members := make([]msg.NodeID, 0, len(o.consumers)+1)
	members = append(members, o.consumers...)
	o.mu.Unlock()
	return n.withHome(o, members)
}

// memberKey is a canonical (order-independent) key for a member set.
func memberKey(members []msg.NodeID) string {
	s := append([]msg.NodeID(nil), members...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return fmt.Sprint(s)
}

// startPushBatch stamps one producer-consumer group's updates and
// enqueues them — the shared-destination batch plus any solo pushes —
// on the coalescing writer. The caller (flushBatched) already holds
// every group object's pushMu and keeps holding it until the awaits
// returned here are acknowledged, preserving flushProducer's guarantee:
// consumers see each object's sequence numbers in order, and an
// acknowledged push implies all earlier pushes landed.
func (n *Node) startPushBatch(fs *flushScratch, g *pcGroup) ([]flushAwait, error) {
	groupKey := memberKey(g.members)
	type solo struct {
		members []msg.NodeID
		entry   applyEntry
	}
	batch := make([]applyEntry, 0, len(g.objs))
	var solos []solo
	for _, o := range g.objs { // first-modification order
		o.mu.Lock()
		if o.twin == nil {
			o.mu.Unlock()
			continue
		}
		lo := len(fs.spans)
		fs.spans, fs.buf = memory.Diff(fs.spans, fs.buf, o.twin, o.data, o.meta.Opts.JoinGap)
		o.dropTwin()
		spans := fs.spans[lo:len(fs.spans):len(fs.spans)]
		if len(spans) == 0 {
			o.mu.Unlock()
			continue
		}
		o.prodSeq++
		seq := o.prodSeq
		o.applySeq = seq // our copy already reflects this update
		// Re-snapshot the destination set under the same o.mu hold as
		// the sequence stamp — the (members, seq) pairing the consumer
		// registration handshake relies on (see handleRegCons). The
		// plan-time set was only a grouping hint; if a registration
		// changed it since, the object leaves the batch and is pushed
		// alone to its fresh set.
		members := make([]msg.NodeID, 0, len(o.consumers)+1)
		members = append(members, o.consumers...)
		o.mu.Unlock()
		members = n.withHome(o, members)
		n.C.Add(stats.CDiffSent, 1)
		n.C.Add(stats.CDiffBytes, int64(memory.SpanBytes(spans)))
		n.C.Add(stats.CEagerPush, 1)
		e := applyEntry{id: o.meta.ID, seq: seq, spans: spans}
		if memberKey(members) == groupKey {
			batch = append(batch, e)
		} else {
			solos = append(solos, solo{members: members, entry: e})
		}
	}

	// Acknowledged eager pushes: consumers never wait for data, the
	// producer pays the wait at its own synchronization point (the
	// awaits returned to flushBatched).
	var awaits []flushAwait
	if len(batch) > 0 {
		kind := kindApply
		var payload []byte
		if len(batch) == 1 {
			payload = encodeApply(batch[0])
		} else {
			kind = kindApplyBatch
			payload = encodeApplyBatch(batch)
			n.countBatch(len(batch), len(payload))
		}
		p, err := n.k.MulticastCallStart(g.members, kind, payload)
		if err != nil {
			return awaits, fmt.Errorf("producer push: %w", err)
		}
		awaits = append(awaits, flushAwait{p: p, benign: true})
	}
	for _, s := range solos {
		p, err := n.k.MulticastCallStart(s.members, kindApply, encodeApply(s.entry))
		if err != nil {
			return awaits, fmt.Errorf("producer push: %w", err)
		}
		awaits = append(awaits, flushAwait{p: p, benign: true})
	}
	return awaits, nil
}

// ---------------------------------------------------------------------
// Replication fault path (write-once, write-many, conventional reads,
// general-rw reads, read-mostly in replicated mode).

// ensureReadable guarantees o has a valid local copy, fetching one from
// the home if necessary. The invalidation generation counter detects an
// invalidation racing the fetch reply, in which case the fetch retries.
func (n *Node) ensureReadable(o *Obj) {
	o.mu.Lock()
	for {
		if o.state != Invalid {
			o.mu.Unlock()
			return
		}
		if o.fetching {
			o.cond.Wait()
			continue
		}
		o.fetching = true
		gen := o.genInv
		o.mu.Unlock()

		n.C.Add(stats.CFaultRead, 1)
		reply, err := n.k.Call(n.homeOf(&o.meta), kindRead,
			msg.NewBuilder(4).U32(uint32(o.meta.ID)).Bytes())
		if err != nil {
			panic(fmt.Sprintf("munin: read fault %q: %v", o.meta.Name, err))
		}
		r := msg.NewReader(reply.Payload)
		data := r.BytesN()
		seq := r.U64()

		o.mu.Lock()
		o.fetching = false
		if o.genInv != gen {
			// Invalidated while the reply was in flight: retry.
			n.C.Add(stats.CFetchRetry, 1)
			o.cond.Broadcast()
			continue
		}
		copy(o.data, data)
		o.state = Shared
		o.alignSeq(seq)
		o.cond.Broadcast()
		o.mu.Unlock()
		return
	}
}

// advanceOwn advances the update sequence past this node's own diff,
// whose relay excluded us. Every relay with a smaller sequence number
// was acknowledged by this node before the home replied to our diff, so
// it is already applied; parked entries at or below seq (if any slipped
// in) are applied in ascending order, then contiguous successors drain.
// Caller holds o.mu.
func (o *Obj) advanceOwn(seq uint64) {
	if seq <= o.applySeq {
		return
	}
	for s := o.applySeq + 1; s <= seq; s++ {
		if spans, ok := o.pendApply[s]; ok {
			memory.ApplySpans(o.data, spans)
			delete(o.pendApply, s)
		}
	}
	o.applySeq = seq
	for {
		spans, ok := o.pendApply[o.applySeq+1]
		if !ok {
			break
		}
		delete(o.pendApply, o.applySeq+1)
		memory.ApplySpans(o.data, spans)
		o.applySeq++
	}
}

// alignSeq fast-forwards the update sequence to the fetched snapshot and
// applies any parked later updates. Caller holds o.mu.
func (o *Obj) alignSeq(seq uint64) {
	if seq < o.applySeq {
		return // fetched snapshot older than what we already applied (cannot happen via home, defensive)
	}
	o.applySeq = seq
	for {
		spans, ok := o.pendApply[o.applySeq+1]
		if !ok {
			break
		}
		delete(o.pendApply, o.applySeq+1)
		memory.ApplySpans(o.data, spans)
		o.applySeq++
	}
	// Drop parked updates at or below the snapshot.
	for s := range o.pendApply {
		if s <= o.applySeq {
			delete(o.pendApply, s)
		}
	}
}

// ---------------------------------------------------------------------
// Write-once (§3.3.1): replication on demand; writes only during
// initialization at the home while no other copies exist.

func (n *Node) writeOnceWrite(o *Obj, off int, data []byte) {
	home := n.homeOf(&o.meta)
	if home != n.id {
		panic(fmt.Sprintf("munin: write-once object %q written from node %d (home %d) after initialization",
			o.meta.Name, n.id, home))
	}
	d := n.dirEntryOf(o.meta.ID)
	d.mu.Lock()
	sole := len(d.copyset) == 1 && d.copyset[n.id]
	d.mu.Unlock()
	if !sole {
		panic(fmt.Sprintf("munin: write-once object %q written after replication", o.meta.Name))
	}
	o.mu.Lock()
	copy(o.data[off:], data)
	o.mu.Unlock()
}

// Evict drops this node's replica of a read-only (write-once or
// replicated read-mostly) object — the paper's "pageout" for large
// read-only objects. The next access refetches.
func (n *Node) Evict(id memory.ObjectID) {
	o := n.mustObj(id)
	home := n.homeOf(&o.meta)
	if home == n.id {
		return // the home copy is authoritative and never evicted
	}
	o.mu.Lock()
	if o.state == Invalid {
		o.mu.Unlock()
		return
	}
	o.state = Invalid
	o.genInv++
	o.mu.Unlock()
	n.C.Add(stats.CEvict, 1)
	n.k.Send(home, kindEvict, msg.NewBuilder(4).U32(uint32(id)).Bytes())
}

// ---------------------------------------------------------------------
// Write-many and result (§3.3.2, §3.2): buffered writes against a twin,
// propagated as diffs when the thread synchronizes.

func (n *Node) bufferedWrite(q *duq.Queue, o *Obj, off int, data []byte) {
	n.ensureReadable(o)
	o.mu.Lock()
	q.MarkDirty(o.meta.ID)
	// The twin is per-node while dirty marks are per-thread: another
	// thread's flush may have consumed the twin this thread's mark was
	// relying on, so a missing twin must be resnapshotted regardless of
	// whether the mark was fresh — otherwise writes after a co-located
	// thread's flush would never be diffed.
	if o.twin == nil {
		o.snapTwin()
		n.C.Add(stats.CTwin, 1)
	}
	copy(o.data[off:], data)
	o.mu.Unlock()
	n.C.Add(stats.CWriteBuffered, 1)
}

// flushObject emits the delayed update for one object (the legacy
// serial flush path; see SetSerialFlush).
func (n *Node) flushObject(id memory.ObjectID) {
	o := n.mustObj(id)
	switch o.meta.Annot {
	case WriteMany, Result:
		n.flushDiff(o)
	case ProducerConsumer:
		n.flushProducer(o)
	default:
		// Other annotations never enter the DUQ.
	}
}

// flushDiff sends the twin/current diff to the object's home, which
// merges it and (for write-many) redistributes to other copy holders.
func (n *Node) flushDiff(o *Obj) {
	o.mu.Lock()
	if o.twin == nil {
		o.mu.Unlock()
		return
	}
	spans := memory.DiffAlloc(o.twin, o.data, o.meta.Opts.JoinGap)
	o.dropTwin()
	o.mu.Unlock()
	if len(spans) == 0 {
		return
	}
	n.C.Add(stats.CDiffSent, 1)
	n.C.Add(stats.CDiffBytes, int64(memory.SpanBytes(spans)))
	home := n.homeOf(&o.meta)
	if home == n.id {
		// Local flush at the home: the home copy already holds the
		// bytes; just run the home-side redistribution.
		n.homeMergeDiff(o.meta.ID, spans, n.id, true)
		return
	}
	b := msg.NewBuilder(16 + memory.SpanBytes(spans))
	b.U32(uint32(o.meta.ID))
	memory.EncodeSpans(b, spans)
	// Acknowledged: the flush does not return until the home (and,
	// transitively, every copy holder) has installed the update, so a
	// synchronization operation that follows guarantees visibility.
	reply, err := n.k.Call(home, kindDiff, b.Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: diff %q: %v", o.meta.Name, err))
	}
	seq := msg.NewReader(reply.Payload).U64()
	o.mu.Lock()
	o.advanceOwn(seq)
	o.mu.Unlock()
}

// ---------------------------------------------------------------------
// Producer-consumer (§3.3.4): eager object movement. The producer
// multicasts updates directly to the registered consumer set (plus the
// home) as soon as its thread synchronizes — in the best case the new
// values arrive before consumers need them and they never wait.

func (n *Node) producerWrite(q *duq.Queue, o *Obj, off int, data []byte) {
	o.mu.Lock()
	if !o.isProducer && o.state == Invalid {
		// First touch by the producing node: fetch current contents
		// (producers usually wrote it first, via Alloc at home, but a
		// non-home producer needs a copy to diff against).
		o.mu.Unlock()
		n.becomeProducer(o)
		o.mu.Lock()
	}
	q.MarkDirty(o.meta.ID)
	if o.twin == nil { // see bufferedWrite: twin is per-node
		o.snapTwin()
		n.C.Add(stats.CTwin, 1)
	}
	copy(o.data[off:], data)
	o.mu.Unlock()
	n.C.Add(stats.CWriteBuffered, 1)
}

// becomeProducer registers this node as the object's producer with the
// home and caches the current consumer set.
func (n *Node) becomeProducer(o *Obj) {
	o.mu.Lock()
	if o.isProducer {
		o.mu.Unlock()
		return
	}
	o.mu.Unlock()
	reply, err := n.k.Call(n.homeOf(&o.meta), kindRegCons,
		msg.NewBuilder(5).U32(uint32(o.meta.ID)).Bool(true).Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: register producer %q: %v", o.meta.Name, err))
	}
	r := msg.NewReader(reply.Payload)
	data := r.BytesN()
	seq := r.U64()
	nc := int(r.U32())
	consumers := make([]msg.NodeID, 0, nc)
	for i := 0; i < nc; i++ {
		consumers = append(consumers, msg.NodeID(r.U32()))
	}
	o.mu.Lock()
	if o.state == Invalid {
		copy(o.data, data)
		o.state = Shared
		o.alignSeq(seq)
	}
	o.isProducer = true
	o.prodSeq = seq
	o.consumers = consumers
	o.mu.Unlock()
}

// flushProducer multicasts the producer's buffered update directly to
// every consumer and the home. pushMu serializes concurrent flushes by
// threads on the producing node so consumers see sequence numbers in
// order and an acknowledged push implies all earlier pushes landed.
func (n *Node) flushProducer(o *Obj) {
	n.becomeProducer(o)
	o.pushMu.Lock()
	defer o.pushMu.Unlock()
	o.mu.Lock()
	if o.twin == nil {
		o.mu.Unlock()
		return
	}
	spans := memory.DiffAlloc(o.twin, o.data, o.meta.Opts.JoinGap)
	o.dropTwin()
	if len(spans) == 0 {
		o.mu.Unlock()
		return
	}
	o.prodSeq++
	seq := o.prodSeq
	o.applySeq = seq // our copy already reflects this update
	members := make([]msg.NodeID, 0, len(o.consumers)+1)
	members = append(members, o.consumers...)
	home := n.homeOf(&o.meta)
	found := false
	for _, m := range members {
		if m == home {
			found = true
		}
	}
	if !found && home != n.id {
		members = append(members, home)
	}
	id := o.meta.ID
	o.mu.Unlock()

	n.C.Add(stats.CDiffSent, 1)
	n.C.Add(stats.CDiffBytes, int64(memory.SpanBytes(spans)))
	n.C.Add(stats.CEagerPush, 1)
	// Acknowledged eager push: consumers never wait for data, the
	// producer pays the wait at its own synchronization point.
	payload := encodeApply(applyEntry{id: id, seq: seq, spans: spans})
	if _, err := n.k.MulticastCall(members, kindApply, payload); err != nil && !n.relayBenign(err) {
		panic(fmt.Sprintf("munin: producer push %q: %v", o.meta.Name, err))
	}
}

// ensureConsumer registers this node as a consumer on first read and
// installs the current contents; afterwards the producer's eager pushes
// keep the copy fresh and reads are purely local.
func (n *Node) ensureConsumer(o *Obj) {
	o.mu.Lock()
	if o.registered || o.isProducer || o.state != Invalid {
		o.mu.Unlock()
		return
	}
	if o.fetching {
		for o.fetching {
			o.cond.Wait()
		}
		o.mu.Unlock()
		return
	}
	o.fetching = true
	o.mu.Unlock()

	n.C.Add(stats.CFaultRead, 1)
	n.C.Add(stats.CConsumerStall, 1) // a consumer had to wait for data
	reply, err := n.k.Call(n.homeOf(&o.meta), kindRegCons,
		msg.NewBuilder(5).U32(uint32(o.meta.ID)).Bool(false).Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: register consumer %q: %v", o.meta.Name, err))
	}
	r := msg.NewReader(reply.Payload)
	data := r.BytesN()
	seq := r.U64()

	o.mu.Lock()
	o.fetching = false
	copy(o.data, data)
	o.state = Shared
	o.registered = true
	o.alignSeq(seq)
	o.cond.Broadcast()
	o.mu.Unlock()
}

// ---------------------------------------------------------------------
// Read-mostly (§3.3.5): the prototype uses remote load/store. With
// Options.Dynamic the home observes the read/write mix and may switch
// the object to replication (§3.4.1), after which reads are local.

func (n *Node) readMostlyRead(o *Obj, off int, buf []byte) {
	o.mu.Lock()
	replicated := o.replicated
	o.mu.Unlock()
	home := n.homeOf(&o.meta)
	if home == n.id {
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
		return
	}
	if replicated {
		o.mu.Lock()
		miss := o.state == Invalid
		o.mu.Unlock()
		if miss {
			// The copy lapsed (or was never fetched): this read crosses
			// the wire, like a lease take/refresh does.
			n.C.Add(stats.CRMRemoteReads, 1)
		}
		n.ensureReadable(o)
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
		return
	}
	n.C.Add(stats.CRemoteLoad, 1)
	n.C.Add(stats.CRMRemoteReads, 1)
	reply, err := n.k.Call(home, kindRemRead,
		msg.NewBuilder(12).U32(uint32(o.meta.ID)).Int(off).Int(len(buf)).Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: remote load %q: %v", o.meta.Name, err))
	}
	copy(buf, msg.NewReader(reply.Payload).BytesN())
}

func (n *Node) readMostlyWrite(o *Obj, off int, data []byte) {
	home := n.homeOf(&o.meta)
	if home == n.id {
		// The home applies locally and, in replicated mode,
		// redistributes to the copyset.
		o.mu.Lock()
		copy(o.data[off:], data)
		o.mu.Unlock()
		n.homeAfterRemoteWrite(o.meta.ID, []memory.Span{{Off: off, Data: append([]byte(nil), data...)}}, n.id)
		return
	}
	n.C.Add(stats.CRemoteStore, 1)
	b := msg.NewBuilder(16 + len(data))
	b.U32(uint32(o.meta.ID)).Int(off).BytesN(data)
	reply, err := n.k.Call(home, kindRemWrite, b.Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: remote store %q: %v", o.meta.Name, err))
	}
	// In replicated mode the home's redistribution excludes us (we
	// sent the write), so install our own bytes and advance the
	// sequence from the reply.
	if seq := msg.NewReader(reply.Payload).U64(); seq > 0 {
		o.mu.Lock()
		if o.state != Invalid {
			copy(o.data[off:], data)
			o.advanceOwn(seq)
		}
		o.mu.Unlock()
	}
}

// resultRead serves reads of result objects: local at the home (where
// the collector runs), remote load elsewhere.
func (n *Node) resultRead(o *Obj, off int, buf []byte) {
	home := n.homeOf(&o.meta)
	if home == n.id {
		o.mu.Lock()
		copy(buf, o.data[off:])
		o.mu.Unlock()
		return
	}
	n.C.Add(stats.CRemoteLoad, 1)
	reply, err := n.k.Call(home, kindRemRead,
		msg.NewBuilder(12).U32(uint32(o.meta.ID)).Int(off).Int(len(buf)).Bytes())
	if err != nil {
		panic(fmt.Sprintf("munin: result read %q: %v", o.meta.Name, err))
	}
	copy(buf, msg.NewReader(reply.Payload).BytesN())
}

// ---------------------------------------------------------------------
// Ownership write path (conventional §3.1 and general read-write
// §3.3.6). The requester acquires exclusive ownership through the home,
// which invalidates every other copy first (strict coherence).

func (n *Node) ownershipWrite(o *Obj, off int, data []byte) {
	o.mu.Lock()
	for {
		if o.state == Exclusive {
			copy(o.data[off:], data)
			o.mu.Unlock()
			return
		}
		if o.fetching || o.owning {
			o.cond.Wait()
			continue
		}
		o.owning = true
		o.mu.Unlock()

		n.C.Add(stats.CFaultWrite, 1)
		// The grant is installed — and this write applied — inline on
		// the dispatcher goroutine, strictly before any later fetch or
		// invalidation from the home is dispatched. This closes the
		// "grant delivered but not yet installed" window: no other
		// node can ever be served this object's pre-install state.
		err := n.k.CallInline(n.homeOf(&o.meta), kindWriteOwn,
			msg.NewBuilder(4).U32(uint32(o.meta.ID)).Bytes(),
			func(reply *msg.Msg) {
				r := msg.NewReader(reply.Payload)
				hasData := r.Bool()
				var fresh []byte
				if hasData {
					fresh = r.BytesN()
				}
				o.mu.Lock()
				if hasData {
					copy(o.data, fresh)
				}
				o.state = Exclusive
				o.dirtyOwner = true
				copy(o.data[off:], data)
				o.owning = false
				o.grantPending = false
				o.cond.Broadcast()
				o.mu.Unlock()
			})
		if err != nil {
			panic(fmt.Sprintf("munin: write fault %q: %v", o.meta.Name, err))
		}
		return // the inline callback applied the write
	}
}
