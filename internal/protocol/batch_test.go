package protocol

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"munin/internal/duq"
	"munin/internal/memory"
)

// TestBatchedFlushIsO1PerHome is the headline property of the batched
// flush pipeline: flushing K dirty write-many objects homed on one
// remote node costs one batch message plus one acknowledgment, not the
// 2K round trips the serial path pays.
func TestBatchedFlushIsO1PerHome(t *testing.T) {
	const K = 8
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Home = 0
	for i := 1; i <= K; i++ {
		r.alloc(memory.ObjectID(i), fmt.Sprintf("wm%d", i), 8, WriteMany, opts, nil)
	}
	q := duq.New()
	for i := 1; i <= K; i++ {
		r.nodes[1].Write(q, memory.ObjectID(i), 0, u64bytes(uint64(i)*10))
	}
	before := msgs(r)
	r.nodes[1].FlushQueue(q)
	if sent := msgs(r) - before; sent != 2 {
		t.Fatalf("batched flush of %d objects sent %d messages, want 2 (batch + ack)", K, sent)
	}
	if got := r.nodes[1].C.Get("batch.sent"); got != 1 {
		t.Fatalf("batch.sent = %d, want 1", got)
	}
	if got := r.nodes[1].C.Get("batch.objs"); got != K {
		t.Fatalf("batch.objs = %d, want %d", got, K)
	}
	if got := r.nodes[1].C.Get("diff.sent"); got != K {
		t.Fatalf("diff.sent = %d, want %d (one combined diff per object)", got, K)
	}
	// The home merged every entry.
	for i := 1; i <= K; i++ {
		if got := readU64(r.nodes[0], q, memory.ObjectID(i), 0); got != uint64(i)*10 {
			t.Fatalf("home object %d = %d, want %d", i, got, i*10)
		}
	}
}

// TestSerialFlushCosts2KPerHome pins down the "before" side of the
// comparison: the legacy path pays one round trip per dirty object.
func TestSerialFlushCosts2KPerHome(t *testing.T) {
	const K = 8
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Home = 0
	for i := 1; i <= K; i++ {
		r.alloc(memory.ObjectID(i), fmt.Sprintf("wm%d", i), 8, WriteMany, opts, nil)
	}
	r.nodes[1].SetSerialFlush(true)
	q := duq.New()
	for i := 1; i <= K; i++ {
		r.nodes[1].Write(q, memory.ObjectID(i), 0, u64bytes(uint64(i)))
	}
	before := msgs(r)
	r.nodes[1].FlushQueue(q)
	if sent := msgs(r) - before; sent != 2*K {
		t.Fatalf("serial flush of %d objects sent %d messages, want %d", K, sent, 2*K)
	}
	if got := r.nodes[1].C.Get("batch.sent"); got != 0 {
		t.Fatalf("serial mode sent %d batches", got)
	}
}

// TestBatchOfOneUsesSingleDiff: a one-object flush must cost exactly
// what the unbatched protocol paid (no batch framing overhead).
func TestBatchOfOneUsesSingleDiff(t *testing.T) {
	r := newRig(t, 2)
	r.alloc(2, "wm", 8, WriteMany, DefaultOptions(), nil) // home = node 0
	q := duq.New()
	r.nodes[1].Write(q, 2, 0, u64bytes(7))
	before := msgs(r)
	r.nodes[1].FlushQueue(q)
	if sent := msgs(r) - before; sent != 2 {
		t.Fatalf("single-object flush sent %d messages, want 2", sent)
	}
	if got := r.nodes[1].C.Get("batch.sent"); got != 0 {
		t.Fatalf("batch.sent = %d for a batch of one, want 0", got)
	}
	if got := readU64(r.nodes[0], q, 2, 0); got != 7 {
		t.Fatalf("home = %d, want 7", got)
	}
}

// TestBatchedFlushPipelinesAcrossHomes: objects homed on different
// nodes flush concurrently, and the flush still returns only after
// every home acknowledged (contents are immediately visible there).
func TestBatchedFlushPipelinesAcrossHomes(t *testing.T) {
	r := newRig(t, 3)
	optsA, optsB := DefaultOptions(), DefaultOptions()
	optsA.Home = 1
	optsB.Home = 2
	r.alloc(1, "a1", 8, WriteMany, optsA, nil)
	r.alloc(2, "a2", 8, WriteMany, optsA, nil)
	r.alloc(3, "b1", 8, WriteMany, optsB, nil)
	q := duq.New()
	r.nodes[0].Write(q, 1, 0, u64bytes(11))
	r.nodes[0].Write(q, 2, 0, u64bytes(22))
	r.nodes[0].Write(q, 3, 0, u64bytes(33))
	r.nodes[0].FlushQueue(q)
	if got := r.nodes[0].C.Get("flush.pipelined"); got != 1 {
		t.Fatalf("flush.pipelined = %d, want 1", got)
	}
	// Acked flush: the homes hold the merged values synchronously.
	if got := readU64(r.nodes[1], q, 1, 0); got != 11 {
		t.Fatalf("home 1 object 1 = %d", got)
	}
	if got := readU64(r.nodes[1], q, 2, 0); got != 22 {
		t.Fatalf("home 1 object 2 = %d", got)
	}
	if got := readU64(r.nodes[2], q, 3, 0); got != 33 {
		t.Fatalf("home 2 object 3 = %d", got)
	}
}

// TestBatchedPushGroupsProducerConsumer: two producer-consumer objects
// with the same consumer set ride one multicast (plus one ack) when
// flushed together, and the consumer still sees sequenced updates.
func TestBatchedPushGroupsProducerConsumer(t *testing.T) {
	r := newRig(t, 2)
	opts := DefaultOptions()
	opts.Home = 0
	r.alloc(1, "pcA", 8, ProducerConsumer, opts, nil)
	r.alloc(2, "pcB", 8, ProducerConsumer, opts, nil)
	qp, qc := duq.New(), duq.New()
	// Consumer on node 1 registers for both.
	_ = readU64(r.nodes[1], qc, 1, 0)
	_ = readU64(r.nodes[1], qc, 2, 0)

	// Producer is the home (node 0): first flush registers it, so prime
	// that registration before measuring.
	r.nodes[0].Write(qp, 1, 0, u64bytes(1))
	r.nodes[0].Write(qp, 2, 0, u64bytes(1))
	r.nodes[0].FlushQueue(qp)

	r.nodes[0].Write(qp, 1, 0, u64bytes(5))
	r.nodes[0].Write(qp, 2, 0, u64bytes(6))
	before := msgs(r)
	r.nodes[0].FlushQueue(qp)
	if sent := msgs(r) - before; sent != 2 {
		t.Fatalf("batched producer push sent %d messages, want 2 (multicast + ack)", sent)
	}
	// The push is acknowledged, so the consumer's copy is already fresh.
	if got := readU64(r.nodes[1], qc, 1, 0); got != 5 {
		t.Fatalf("consumer object 1 = %d, want 5", got)
	}
	if got := readU64(r.nodes[1], qc, 2, 0); got != 6 {
		t.Fatalf("consumer object 2 = %d, want 6", got)
	}
	// No extra consumer stalls beyond the two registrations.
	if got := r.nodes[1].C.Get("consumer.stall"); got != 2 {
		t.Fatalf("consumer stalls = %d, want 2", got)
	}
}

// TestBatchedFlushPerReceiverOrdering is the §3.2 ordering stress: a
// writer updates K objects in program order and flushes; a remote
// reader scanning the objects in reverse program order must never
// observe a later object's update while missing an earlier one —
// i.e. the observed values must be non-increasing along program order
// reversed. Run with -race.
func TestBatchedFlushPerReceiverOrdering(t *testing.T) {
	const (
		K      = 6
		rounds = 50
	)
	r := newRig(t, 3)
	opts := DefaultOptions()
	opts.Home = 0
	for i := 1; i <= K; i++ {
		r.alloc(memory.ObjectID(i), fmt.Sprintf("ord%d", i), 8, WriteMany, opts, nil)
	}
	// Readers join every copyset before the writer starts, so relays
	// reach them from the first flush on.
	qr := make([]*duq.Queue, 3)
	for n := 1; n <= 2; n++ {
		qr[n] = duq.New()
		for i := 1; i <= K; i++ {
			_ = readU64(r.nodes[n], qr[n], memory.ObjectID(i), 0)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := duq.New()
		for i := uint64(1); i <= rounds; i++ {
			for obj := 1; obj <= K; obj++ {
				r.nodes[1].Write(q, memory.ObjectID(obj), 0, u64bytes(i))
			}
			r.nodes[1].FlushQueue(q)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := qr[2]
		deadline := time.Now().Add(10 * time.Second)
		for {
			// Scan in reverse program order: the writer updates object
			// j before object j+1, so at any instant v(j) >= v(j+1),
			// and v(j) is read after v(j+1) (values only grow). An
			// earlier object observed at an older round than a later
			// object means the reader saw a later update while missing
			// an earlier one — the §3.2 violation.
			prev := uint64(0)
			for obj := K; obj >= 1; obj-- {
				v := readU64(r.nodes[2], q, memory.ObjectID(obj), 0)
				if v < prev {
					errs <- fmt.Sprintf("object %d still at round %d while object %d already at %d",
						obj, v, obj+1, prev)
					return
				}
				prev = v
			}
			if readU64(r.nodes[2], q, 1, 0) == rounds {
				return
			}
			if time.Now().After(deadline) {
				errs <- fmt.Sprintf("reader stuck: object 1 at %d", readU64(r.nodes[2], q, 1, 0))
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestBatchedFlushConcurrentWritersConverge: several nodes batch-flush
// disjoint slots of the same object set concurrently; the homes must
// end up with every update merged (differential check against the
// writers' own values).
func TestBatchedFlushConcurrentWritersConverge(t *testing.T) {
	const (
		K     = 4
		nodes = 4
	)
	r := newRig(t, nodes)
	for i := 1; i <= K; i++ {
		r.alloc(memory.ObjectID(i), fmt.Sprintf("cw%d", i), nodes*8, WriteMany, DefaultOptions(), nil)
	}
	var wg sync.WaitGroup
	for node := 0; node < nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			q := duq.New()
			for round := 1; round <= 10; round++ {
				for i := 1; i <= K; i++ {
					r.nodes[node].Write(q, memory.ObjectID(i), node*8, u64bytes(uint64(100*node+round)))
				}
				r.nodes[node].FlushQueue(q)
			}
		}(node)
	}
	wg.Wait()
	q := duq.New()
	for i := 1; i <= K; i++ {
		home := r.nodes[int(i)%nodes] // cluster.HomeOf for default placement
		for node := 0; node < nodes; node++ {
			if got := readU64(home, q, memory.ObjectID(i), node*8); got != uint64(100*node+10) {
				t.Fatalf("object %d slot %d = %d, want %d", i, node, got, 100*node+10)
			}
		}
	}
}

// TestBatchedAndSerialFlushAgree runs the same multi-object workload
// under both flush paths and checks they produce identical home
// contents and identical per-object combined-update counts — the
// serial path is the differential oracle for the batch rewrite.
func TestBatchedAndSerialFlushAgree(t *testing.T) {
	run := func(serial bool) ([]uint64, int64) {
		r := newRig(t, 2)
		opts := DefaultOptions()
		opts.Home = 0
		const K = 5
		for i := 1; i <= K; i++ {
			r.alloc(memory.ObjectID(i), fmt.Sprintf("d%d", i), 16, WriteMany, opts, nil)
		}
		if serial {
			r.nodes[1].SetSerialFlush(true)
		}
		q := duq.New()
		for round := 0; round < 3; round++ {
			for i := 1; i <= K; i++ {
				r.nodes[1].Write(q, memory.ObjectID(i), (round%2)*8, u64bytes(uint64(round*K+i)))
			}
			r.nodes[1].FlushQueue(q)
		}
		out := make([]uint64, 0, 2*K)
		for i := 1; i <= K; i++ {
			out = append(out, readU64(r.nodes[0], q, memory.ObjectID(i), 0))
			out = append(out, readU64(r.nodes[0], q, memory.ObjectID(i), 8))
		}
		return out, r.nodes[1].C.Get("diff.sent")
	}
	batched, bDiffs := run(false)
	serial, sDiffs := run(true)
	for i := range batched {
		if batched[i] != serial[i] {
			t.Fatalf("slot %d: batched %d vs serial %d", i, batched[i], serial[i])
		}
	}
	if bDiffs != sDiffs {
		t.Fatalf("combined updates differ: batched %d vs serial %d", bDiffs, sDiffs)
	}
}
