// Package study reproduces the paper's Section 2: the analysis of
// sharing behaviour in the six study programs. A tracing wrapper records
// every shared-memory access and synchronization operation the programs
// make; the classifier then assigns each shared object to one of the
// paper's access-pattern categories using rules derived directly from
// the paper's definitions.
//
// The headline findings this package regenerates:
//   - very few objects (and very few accesses) are General Read-Write;
//   - the overwhelming majority of accesses are reads, except during
//     initialization;
//   - the latency between accesses to synchronization objects is much
//     higher than between accesses to ordinary shared data.
package study

import (
	"sync"
	"sync/atomic"

	"munin/internal/api"
	"munin/internal/dlock"
	"munin/internal/protocol"
)

// Class is an observed access-pattern category (paper Section 2).
type Class string

// The categories from the paper.
const (
	ClassPrivate          Class = "private"
	ClassWriteOnce        Class = "write-once"
	ClassResult           Class = "result"
	ClassProducerConsumer Class = "producer-consumer"
	ClassMigratory        Class = "migratory"
	ClassReadMostly       Class = "read-mostly"
	ClassWriteMany        Class = "write-many"
	ClassGeneralRW        Class = "general-rw"
)

// access is one recorded shared-memory access.
type access struct {
	ord    int64 // global order stamp
	thread int
	write  bool
}

// objTrace accumulates a single region's accesses.
type objTrace struct {
	name     string
	hint     protocol.Annotation
	mu       sync.Mutex
	accesses []access
}

// Tracer wraps an api.System, recording all accesses made through the
// contexts it hands out. It implements api.System.
type Tracer struct {
	inner api.System

	ord atomic.Int64 // global logical clock (one tick per event)

	mu      sync.Mutex
	objs    []*objTrace
	syncOps []syncOp

	initEnd atomic.Int64 // ordinal of the first synchronization op
}

type syncOp struct {
	ord    int64
	thread int
	kind   string // "lock", "unlock", "barrier", "fetchadd"
	id     uint64
}

var _ api.System = (*Tracer)(nil)

// NewTracer wraps sys.
func NewTracer(sys api.System) *Tracer {
	t := &Tracer{inner: sys}
	t.initEnd.Store(int64(1) << 62)
	return t
}

// Name implements api.System.
func (t *Tracer) Name() string { return t.inner.Name() + "+trace" }

// Nodes implements api.System.
func (t *Tracer) Nodes() int { return t.inner.Nodes() }

// Alloc implements api.System.
func (t *Tracer) Alloc(name string, size int, hint protocol.Annotation, opts protocol.Options, init []byte) api.RegionID {
	r := t.inner.Alloc(name, size, hint, opts, init)
	t.mu.Lock()
	for len(t.objs) <= int(r) {
		t.objs = append(t.objs, nil)
	}
	t.objs[r] = &objTrace{name: name, hint: hint}
	t.mu.Unlock()
	return r
}

// NewLock implements api.System.
func (t *Tracer) NewLock() dlock.LockID { return t.inner.NewLock() }

// NewBarrier implements api.System.
func (t *Tracer) NewBarrier() dlock.BarrierID { return t.inner.NewBarrier() }

// NewAtomic implements api.System.
func (t *Tracer) NewAtomic() dlock.AtomicID { return t.inner.NewAtomic() }

// Run implements api.System.
func (t *Tracer) Run(nthreads int, body func(c api.Ctx)) {
	t.inner.Run(nthreads, func(c api.Ctx) {
		body(&tracedCtx{Ctx: c, t: t})
	})
}

// Messages implements api.System.
func (t *Tracer) Messages() int64 { return t.inner.Messages() }

// Bytes implements api.System.
func (t *Tracer) Bytes() int64 { return t.inner.Bytes() }

// Close implements api.System.
func (t *Tracer) Close() { t.inner.Close() }

func (t *Tracer) record(r api.RegionID, thread int, write bool) {
	ord := t.ord.Add(1)
	t.mu.Lock()
	o := t.objs[r]
	t.mu.Unlock()
	o.mu.Lock()
	o.accesses = append(o.accesses, access{ord: ord, thread: thread, write: write})
	o.mu.Unlock()
}

func (t *Tracer) recordSync(kind string, id uint64, thread int) {
	ord := t.ord.Add(1)
	// First synchronization marks the end of the initialization phase
	// (the paper observes accesses are read-dominated *except during
	// initialization*).
	for {
		cur := t.initEnd.Load()
		if cur <= ord || t.initEnd.CompareAndSwap(cur, ord) {
			break
		}
	}
	t.mu.Lock()
	t.syncOps = append(t.syncOps, syncOp{ord: ord, thread: thread, kind: kind, id: id})
	t.mu.Unlock()
}

type tracedCtx struct {
	api.Ctx
	t *Tracer
}

func (c *tracedCtx) Read(r api.RegionID, off int, buf []byte) {
	c.t.record(r, c.ThreadID(), false)
	c.Ctx.Read(r, off, buf)
}

func (c *tracedCtx) Write(r api.RegionID, off int, data []byte) {
	c.t.record(r, c.ThreadID(), true)
	c.Ctx.Write(r, off, data)
}

func (c *tracedCtx) Acquire(l dlock.LockID) {
	c.t.recordSync("lock", uint64(l), c.ThreadID())
	c.Ctx.Acquire(l)
}

func (c *tracedCtx) Release(l dlock.LockID) {
	c.t.recordSync("unlock", uint64(l), c.ThreadID())
	c.Ctx.Release(l)
}

func (c *tracedCtx) Barrier(b dlock.BarrierID, n int) {
	c.t.recordSync("barrier", uint64(b), c.ThreadID())
	c.Ctx.Barrier(b, n)
}

func (c *tracedCtx) FetchAdd(a dlock.AtomicID, delta int64) int64 {
	c.t.recordSync("fetchadd", uint64(a), c.ThreadID())
	return c.Ctx.FetchAdd(a, delta)
}
