package study

import (
	"testing"

	"munin/internal/api"
	"munin/internal/apps"
	"munin/internal/core"
	"munin/internal/protocol"
)

func tracedSystem(t *testing.T, nodes int) *Tracer {
	t.Helper()
	s, err := core.New(core.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(s)
	t.Cleanup(tr.Close)
	return tr
}

func TestClassifyPrivate(t *testing.T) {
	accs := []access{{1, 0, true}, {2, 0, false}, {3, 0, true}}
	if got := classifyObject("p", accs); got.Class != ClassPrivate {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestClassifyWriteOnce(t *testing.T) {
	// Thread 0 initializes, then threads 1-3 only read.
	accs := []access{
		{1, 0, true}, {2, 0, true},
		{3, 1, false}, {4, 2, false}, {5, 3, false}, {6, 1, false},
	}
	if got := classifyObject("wo", accs); got.Class != ClassWriteOnce {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestClassifyResult(t *testing.T) {
	// Threads 1-3 write their slots; thread 0 reads everything.
	accs := []access{
		{1, 1, true}, {2, 2, true}, {3, 3, true},
		{4, 0, false}, {5, 0, false},
	}
	if got := classifyObject("res", accs); got.Class != ClassResult {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestClassifyProducerConsumer(t *testing.T) {
	// Thread 0 writes repeatedly; threads 1,2 read repeatedly.
	accs := []access{
		{1, 0, true}, {2, 1, false}, {3, 2, false},
		{4, 0, true}, {5, 1, false}, {6, 2, false},
	}
	if got := classifyObject("pc", accs); got.Class != ClassProducerConsumer {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestClassifyMigratory(t *testing.T) {
	// Runs of read+write by one thread at a time.
	accs := []access{
		{1, 0, false}, {2, 0, true},
		{3, 1, false}, {4, 1, true},
		{5, 2, false}, {6, 2, true},
		{7, 0, false}, {8, 0, true},
	}
	if got := classifyObject("mig", accs); got.Class != ClassMigratory {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestClassifyReadMostly(t *testing.T) {
	accs := []access{{1, 0, true}}
	for i := 2; i < 40; i++ {
		accs = append(accs, access{int64(i), i % 3, false})
	}
	// One early write by thread 0 then reads from everyone, including
	// writers: not write-once (writer reads), read/write ratio high.
	accs = append(accs, access{100, 1, true})
	for i := 101; i < 140; i++ {
		accs = append(accs, access{int64(i), i % 3, false})
	}
	if got := classifyObject("rm", accs); got.Class != ClassReadMostly {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestClassifyWriteMany(t *testing.T) {
	// Interleaved writes from several threads with reads mixed in.
	var accs []access
	for i := 0; i < 24; i++ {
		accs = append(accs, access{int64(2*i + 1), i % 4, false})
		accs = append(accs, access{int64(2*i + 2), i % 4, true})
	}
	// Break the migratory pattern: alternate threads every access.
	got := classifyObject("wm", accs)
	if got.Class != ClassWriteMany && got.Class != ClassMigratory {
		t.Fatalf("class = %s", got.Class)
	}
}

func TestStudyOnMatMul(t *testing.T) {
	tr := tracedSystem(t, 2)
	app := apps.MatMul{N: 12, Threads: 4, Seed: 1}
	app.Run(tr)
	rep := tr.Classify("matmul")
	// A and B must classify write-once; C result.
	classes := map[string]Class{}
	for _, o := range rep.Objects {
		classes[o.Name] = o.Class
	}
	if classes["matmul.A"] != ClassWriteOnce || classes["matmul.B"] != ClassWriteOnce {
		t.Fatalf("inputs misclassified: %v", classes)
	}
	if classes["matmul.C"] != ClassResult {
		t.Fatalf("result misclassified: %v", classes)
	}
	if rep.GeneralRWShare() > 0.05 {
		t.Fatalf("general-rw share = %v, want tiny", rep.GeneralRWShare())
	}
	if rep.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestStudyOnLife(t *testing.T) {
	tr := tracedSystem(t, 2)
	app := apps.Life{Rows: 12, Cols: 8, Generations: 3, Threads: 4, Seed: 6}
	app.Run(tr)
	rep := tr.Classify("life")
	// Boundary rows must classify producer-consumer; bands private.
	var pc, priv int
	for _, o := range rep.Objects {
		switch o.Class {
		case ClassProducerConsumer:
			pc++
		case ClassPrivate:
			priv++
		}
	}
	if pc == 0 {
		t.Fatalf("no producer-consumer objects found: %+v", rep.Objects)
	}
	if priv == 0 {
		t.Fatalf("no private objects found")
	}
}

func TestStudyReadDominanceAndSyncGap(t *testing.T) {
	// Gauss synchronizes every step, so the init/steady split is
	// meaningful; reads (pivot row + own row per update) dominate.
	tr := tracedSystem(t, 2)
	app := apps.Gauss{N: 16, Threads: 4, Seed: 2}
	app.Run(tr)
	rep := tr.Classify("gauss")
	if rf := rep.ReadFraction(); rf < 0.5 {
		t.Fatalf("steady-state read fraction = %v, want > 0.5", rf)
	}
	if rep.SteadyReads+rep.InitReads <= rep.SteadyWrites+rep.InitWrites {
		t.Fatal("reads do not dominate writes in gauss")
	}
}

func TestStudySyncLatencyClaim(t *testing.T) {
	// TSP hammers locks around long compute stretches: sync gaps must
	// exceed data gaps (paper finding 4).
	tr := tracedSystem(t, 2)
	app := apps.TSP{Cities: 7, Threads: 4, Seed: 5}
	app.Run(tr)
	rep := tr.Classify("tsp")
	if rep.SyncOps == 0 {
		t.Fatal("no sync ops traced")
	}
	if rep.MeanSyncGap <= rep.MeanDataGap {
		t.Fatalf("sync gap %v <= data gap %v; paper expects sync >> data",
			rep.MeanSyncGap, rep.MeanDataGap)
	}
}

func TestTracerPassesThrough(t *testing.T) {
	tr := tracedSystem(t, 2)
	r := tr.Alloc("x", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	lock := tr.NewLock()
	bar := tr.NewBarrier()
	at := tr.NewAtomic()
	tr.Run(2, func(c api.Ctx) {
		c.Acquire(lock)
		api.WriteU64(c, r, 0, api.ReadU64(c, r, 0)+1)
		c.Release(lock)
		c.FetchAdd(at, 1)
		c.Barrier(bar, 2)
	})
	var v uint64
	tr.Run(1, func(c api.Ctx) { v = api.ReadU64(c, r, 0) })
	if v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
	if tr.Messages() == 0 || tr.Nodes() != 2 || tr.Name() == "" {
		t.Fatal("pass-through accessors broken")
	}
	rep := tr.Classify("mini")
	if len(rep.Objects) != 1 {
		t.Fatalf("objects = %d", len(rep.Objects))
	}
	if rep.SyncOps != 2*4+1 { // 2 threads × (lock,unlock,fetchadd,barrier) + ... final run has none
		// 2 threads × 4 ops = 8 sync ops.
		if rep.SyncOps != 8 {
			t.Fatalf("sync ops = %d, want 8", rep.SyncOps)
		}
	}
}
