package study

import (
	"sort"

	"munin/internal/stats"
)

// ObjectReport is the classification of one shared object.
type ObjectReport struct {
	Name     string
	Class    Class
	Reads    int64
	Writes   int64
	NThreads int // distinct threads that touched it
}

// Report is the sharing-study result for one program run.
type Report struct {
	Program string
	Objects []ObjectReport
	// ByClassObjects / ByClassAccesses count objects and accesses per
	// class.
	ByClassObjects  map[Class]int
	ByClassAccesses map[Class]int64
	// Reads/Writes totals, split at the initialization boundary (the
	// first synchronization operation).
	InitReads, InitWrites     int64
	SteadyReads, SteadyWrites int64
	// MeanDataGap / MeanSyncGap are the mean logical-time gaps between
	// consecutive accesses to the same data object vs the same
	// synchronization object — the paper's "latency between accesses
	// to synchronization objects is significantly higher".
	MeanDataGap float64
	MeanSyncGap float64
	SyncOps     int64
}

// Classify analyzes the trace and produces the study report.
func (t *Tracer) Classify(program string) *Report {
	rep := &Report{
		Program:         program,
		ByClassObjects:  make(map[Class]int),
		ByClassAccesses: make(map[Class]int64),
	}
	initEnd := t.initEnd.Load()
	if initEnd >= int64(1)<<62 {
		// The program never synchronized (e.g. pure fork/join matmul):
		// there is no traced initialization phase — Alloc-side init
		// happens before tracing — so everything is steady state.
		initEnd = 0
	}

	t.mu.Lock()
	objs := append([]*objTrace(nil), t.objs...)
	syncOps := append([]syncOp(nil), t.syncOps...)
	t.mu.Unlock()

	var dataGapSum, dataGapN float64
	for _, o := range objs {
		if o == nil {
			continue
		}
		o.mu.Lock()
		accs := append([]access(nil), o.accesses...)
		o.mu.Unlock()
		if len(accs) == 0 {
			continue
		}
		sort.Slice(accs, func(i, j int) bool { return accs[i].ord < accs[j].ord })
		or := classifyObject(o.name, accs)
		rep.Objects = append(rep.Objects, or)
		rep.ByClassObjects[or.Class]++
		rep.ByClassAccesses[or.Class] += or.Reads + or.Writes
		for _, a := range accs {
			if a.ord < initEnd {
				if a.write {
					rep.InitWrites++
				} else {
					rep.InitReads++
				}
			} else {
				if a.write {
					rep.SteadyWrites++
				} else {
					rep.SteadyReads++
				}
			}
		}
		for i := 1; i < len(accs); i++ {
			dataGapSum += float64(accs[i].ord - accs[i-1].ord)
			dataGapN++
		}
	}
	if dataGapN > 0 {
		rep.MeanDataGap = dataGapSum / dataGapN
	}

	// Sync gaps: per synchronization object.
	byID := map[uint64][]int64{}
	for _, s := range syncOps {
		byID[s.id] = append(byID[s.id], s.ord)
		rep.SyncOps++
	}
	var syncGapSum, syncGapN float64
	for _, ords := range byID {
		sort.Slice(ords, func(i, j int) bool { return ords[i] < ords[j] })
		for i := 1; i < len(ords); i++ {
			syncGapSum += float64(ords[i] - ords[i-1])
			syncGapN++
		}
	}
	if syncGapN > 0 {
		rep.MeanSyncGap = syncGapSum / syncGapN
	}
	sort.Slice(rep.Objects, func(i, j int) bool { return rep.Objects[i].Name < rep.Objects[j].Name })
	return rep
}

// classifyObject applies the paper's category definitions to one
// object's ordered access trace.
func classifyObject(name string, accs []access) ObjectReport {
	var reads, writes int64
	threads := map[int]bool{}
	writers := map[int]bool{}
	readers := map[int]bool{}
	for _, a := range accs {
		threads[a.thread] = true
		if a.write {
			writes++
			writers[a.thread] = true
		} else {
			reads++
			readers[a.thread] = true
		}
	}
	or := ObjectReport{Name: name, Reads: reads, Writes: writes, NThreads: len(threads)}

	switch {
	case len(threads) == 1:
		// "Private objects are shared data objects that are only
		// accessed by a single thread."
		or.Class = ClassPrivate

	case writes == 0 || allWritesPrecedeForeignAccess(accs):
		// "Write-once objects are read but never written after
		// initialization."
		or.Class = ClassWriteOnce

	case len(readers) == 1 && len(writers) > 1 && writesAllPrecedeReads(accs):
		// "Result objects collect results: once they are written,
		// they are only read by a single thread" — many writers, one
		// reading (collector) thread, all writes before the reads.
		// The collector may itself have contributed a slice.
		or.Class = ClassResult

	case len(writers) == 1 && othersRead(readers, writers):
		// "Producer-consumer objects are written (produced) by one
		// thread and read (consumed) by a fixed set of other threads."
		// The producer may also re-read its own product; what matters
		// is the single producer and the non-producer consumer set.
		or.Class = ClassProducerConsumer

	case isMigratory(accs):
		// "Migratory objects are accessed in phases, where each phase
		// corresponds to a run of accesses by a single thread."
		or.Class = ClassMigratory

	case writes > 0 && reads >= 8*writes:
		// "Read-mostly objects are read significantly more frequently
		// than they are written."
		or.Class = ClassReadMostly

	case len(writers) > 1 && interleavedWrites(accs):
		// "Write-many objects are frequently modified by multiple
		// threads between synchronization points."
		or.Class = ClassWriteMany

	default:
		or.Class = ClassGeneralRW
	}

	return or
}

// allWritesPrecedeForeignAccess reports whether every write happened
// before any access by a thread other than the initializing writer —
// the write-once pattern with explicit initialization.
func allWritesPrecedeForeignAccess(accs []access) bool {
	writer := -1
	firstForeign := int64(1) << 62
	var lastWrite int64
	for _, a := range accs {
		if a.write {
			if writer == -1 {
				writer = a.thread
			}
			if a.thread != writer {
				return false // multiple writing threads: not write-once
			}
			if a.ord > lastWrite {
				lastWrite = a.ord
			}
		}
	}
	if writer == -1 {
		return true
	}
	for _, a := range accs {
		if a.thread != writer && a.ord < firstForeign {
			firstForeign = a.ord
		}
	}
	return lastWrite < firstForeign
}

// writesAllPrecedeReads reports whether every write's order stamp is
// below every read's (a strict produce-then-collect lifecycle).
func writesAllPrecedeReads(accs []access) bool {
	var lastWrite int64 = -1
	firstRead := int64(1) << 62
	for _, a := range accs {
		if a.write {
			if a.ord > lastWrite {
				lastWrite = a.ord
			}
		} else if a.ord < firstRead {
			firstRead = a.ord
		}
	}
	return lastWrite < firstRead
}

// othersRead reports whether at least one non-writer thread reads.
func othersRead(readers, writers map[int]bool) bool {
	for r := range readers {
		if !writers[r] {
			return true
		}
	}
	return false
}

// isMigratory detects phase behaviour: consecutive accesses group into
// runs by a single thread, runs contain both reads and writes, and the
// object moves between at least two threads with long runs relative to
// the number of moves.
func isMigratory(accs []access) bool {
	if len(accs) < 4 {
		return false
	}
	runs := 0
	curThread := -1
	runHasRead, runHasWrite := false, false
	mixedRuns := 0
	for _, a := range accs {
		if a.thread != curThread {
			if curThread != -1 && runHasRead && runHasWrite {
				mixedRuns++
			}
			runs++
			curThread = a.thread
			runHasRead, runHasWrite = false, false
		}
		if a.write {
			runHasWrite = true
		} else {
			runHasRead = true
		}
	}
	if runHasRead && runHasWrite {
		mixedRuns++
	}
	avgRun := float64(len(accs)) / float64(runs)
	return avgRun >= 2 && mixedRuns*2 >= runs
}

// interleavedWrites reports whether writes from different threads
// interleave over the trace (as opposed to strictly phased single-writer
// episodes).
func interleavedWrites(accs []access) bool {
	lastWriter := -1
	switches := 0
	for _, a := range accs {
		if !a.write {
			continue
		}
		if lastWriter != -1 && a.thread != lastWriter {
			switches++
		}
		lastWriter = a.thread
	}
	return switches >= 1
}

// Table renders the per-class summary the way the paper's study reports
// it: share of objects and share of accesses per category, plus the
// read/write split and the sync-latency observation.
func (r *Report) Table() string {
	tab := stats.NewTable("Sharing study: "+r.Program,
		"class", "objects", "accesses", "%accesses")
	var total int64
	for _, n := range r.ByClassAccesses {
		total += n
	}
	order := []Class{ClassWriteOnce, ClassWriteMany, ClassProducerConsumer,
		ClassMigratory, ClassResult, ClassPrivate, ClassReadMostly, ClassGeneralRW}
	for _, cl := range order {
		if r.ByClassObjects[cl] == 0 {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.ByClassAccesses[cl]) / float64(total)
		}
		tab.AddRow(string(cl), r.ByClassObjects[cl], r.ByClassAccesses[cl], pct)
	}
	return tab.String()
}

// ReadFraction returns the fraction of steady-state (post-init)
// accesses that are reads.
func (r *Report) ReadFraction() float64 {
	tot := r.SteadyReads + r.SteadyWrites
	if tot == 0 {
		return 0
	}
	return float64(r.SteadyReads) / float64(tot)
}

// GeneralRWShare returns the fraction of all accesses classified as
// general read-write — the paper's key "very few" claim.
func (r *Report) GeneralRWShare() float64 {
	var total int64
	for _, n := range r.ByClassAccesses {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(r.ByClassAccesses[ClassGeneralRW]) / float64(total)
}
