package msg

import (
	"encoding/binary"
	"errors"
	"math"
)

// Builder incrementally encodes a payload. The zero value is ready to use.
// All integers are big-endian; byte slices and strings are length-prefixed
// with a uvarint.
type Builder struct {
	buf []byte
}

// NewBuilder returns a Builder with capacity preallocated.
func NewBuilder(capacity int) *Builder {
	return &Builder{buf: make([]byte, 0, capacity)}
}

// Reset points the Builder at buf (appending from len(buf)) without
// allocating. The pooled encode path resets a stack Builder onto a
// pooled buffer sized for the whole message, so every append lands in
// reused storage.
func (b *Builder) Reset(buf []byte) { b.buf = buf }

// Skip extends the encoded payload by n bytes without defining their
// contents; the caller promises to overwrite them (FillHeader uses this
// to reserve header space at the front of a wire buffer).
func (b *Builder) Skip(n int) *Builder {
	l := len(b.buf)
	for cap(b.buf) < l+n {
		b.buf = append(b.buf[:cap(b.buf)], 0)
	}
	b.buf = b.buf[:l+n]
	return b
}

// Bytes returns the encoded payload.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the current encoded length.
func (b *Builder) Len() int { return len(b.buf) }

// U8 appends one byte.
func (b *Builder) U8(v uint8) *Builder {
	b.buf = append(b.buf, v)
	return b
}

// U16 appends a big-endian uint16.
func (b *Builder) U16(v uint16) *Builder {
	b.buf = binary.BigEndian.AppendUint16(b.buf, v)
	return b
}

// U32 appends a big-endian uint32.
func (b *Builder) U32(v uint32) *Builder {
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
	return b
}

// U64 appends a big-endian uint64.
func (b *Builder) U64(v uint64) *Builder {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
	return b
}

// I64 appends a big-endian int64 (two's complement).
func (b *Builder) I64(v int64) *Builder { return b.U64(uint64(v)) }

// Int appends an int as int64.
func (b *Builder) Int(v int) *Builder { return b.I64(int64(v)) }

// F64 appends a float64 in IEEE-754 bits.
func (b *Builder) F64(v float64) *Builder { return b.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (b *Builder) Bool(v bool) *Builder {
	if v {
		return b.U8(1)
	}
	return b.U8(0)
}

// Uvarint appends a bare uvarint (no following bytes). Together with a
// precomputed encoded size it lets a batch encoder write an Entry-style
// length prefix and then the entry contents directly into the same
// buffer, instead of building the entry in a temporary Builder and
// copying it (Builder.Entry) — the per-entry allocation the zero-copy
// flush path removes.
func (b *Builder) Uvarint(v uint64) *Builder {
	b.buf = binary.AppendUvarint(b.buf, v)
	return b
}

// UvarintLen returns the encoded size of v as a uvarint — what a batch
// encoder needs to size a wire buffer exactly before writing it.
func UvarintLen(v uint64) int {
	n := 1
	for ; v >= 0x80; v >>= 7 {
		n++
	}
	return n
}

// BytesN appends a uvarint length prefix followed by the bytes.
func (b *Builder) BytesN(p []byte) *Builder {
	b.buf = binary.AppendUvarint(b.buf, uint64(len(p)))
	b.buf = append(b.buf, p...)
	return b
}

// Str appends a length-prefixed string.
func (b *Builder) Str(s string) *Builder {
	b.buf = binary.AppendUvarint(b.buf, uint64(len(s)))
	b.buf = append(b.buf, s...)
	return b
}

// Entry appends a length-prefixed sub-payload built by fn. Multi-object
// batch messages frame each per-object entry this way, under a shared
// header, so a decoder can delimit entries without understanding their
// contents and a corrupt entry cannot desynchronize its neighbours.
func (b *Builder) Entry(fn func(e *Builder)) *Builder {
	var e Builder
	fn(&e)
	return b.BytesN(e.buf)
}

// ErrCodec is the error reported by Reader when decoding runs off the end
// of the payload or a length prefix is corrupt.
var ErrCodec = errors.New("msg: malformed payload")

// Reader decodes payloads written by Builder. Decoding errors are sticky:
// after the first failure every subsequent Get returns the zero value and
// Err() reports the failure, so call sites can decode a whole struct and
// check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Fail puts the reader into the (sticky) error state. Decoders use it
// to reject structurally impossible values — e.g. a count word that
// claims more elements than bytes remain — before acting on them.
func (r *Reader) Fail() {
	if r.err == nil {
		r.err = ErrCodec
	}
}

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrCodec
		return nil
	}
	p := r.buf[r.off : r.off+n]
	r.off += n
	return p
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

// U16 decodes a big-endian uint16.
func (r *Reader) U16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

// U32 decodes a big-endian uint32.
func (r *Reader) U32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

// U64 decodes a big-endian uint64.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

// I64 decodes a big-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int decodes an int encoded with Builder.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 decodes an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool decodes a one-byte boolean.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// BytesN decodes a length-prefixed byte slice. The result aliases the
// underlying payload buffer.
func (r *Reader) BytesN() []byte {
	if r.err != nil {
		return nil
	}
	n, sz := binary.Uvarint(r.buf[r.off:])
	if sz <= 0 || n > uint64(len(r.buf)-r.off-sz) {
		r.err = ErrCodec
		return nil
	}
	r.off += sz
	return r.take(int(n))
}

// Str decodes a length-prefixed string.
func (r *Reader) Str() string { return string(r.BytesN()) }

// Entry decodes one length-prefixed sub-payload written by
// Builder.Entry, returning a Reader positioned over just that entry.
// If the outer payload is malformed the returned Reader starts in the
// error state, so batch decoders can keep their per-entry decode loop
// unconditional and check errors once.
func (r *Reader) Entry() *Reader {
	p := r.BytesN()
	e := NewReader(p)
	e.err = r.err
	return e
}
