package msg

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMsgRoundTrip(t *testing.T) {
	m := &Msg{
		Kind:    KindLockBase + 3,
		Flags:   FlagReply,
		From:    2,
		To:      5,
		Seq:     0xdeadbeefcafe,
		Payload: []byte("hello world"),
	}
	buf := m.Marshal()
	if len(buf) != m.WireSize() {
		t.Fatalf("marshal len %d != WireSize %d", len(buf), m.WireSize())
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Flags != m.Flags || got.From != m.From ||
		got.To != m.To || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatalf("round trip mismatch: %v vs %v", got, m)
	}
	if !got.IsReply() {
		t.Fatal("IsReply = false, want true")
	}
}

func TestMsgEmptyPayload(t *testing.T) {
	m := &Msg{Kind: KindPing, From: 0, To: 1}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %v, want empty", got.Payload)
	}
	if got.IsReply() {
		t.Fatal("IsReply = true, want false")
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 5)); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("err = %v, want ErrShortMessage", err)
	}
	// Header claims a longer payload than present.
	m := &Msg{Kind: KindPing, Payload: []byte{1, 2, 3, 4}}
	buf := m.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-2]); !errors.Is(err, ErrShortMessage) {
		t.Fatalf("truncated payload err = %v, want ErrShortMessage", err)
	}
}

func TestMsgRoundTripProperty(t *testing.T) {
	f := func(kind uint16, flags uint16, from, to int32, seq uint64, payload []byte) bool {
		m := &Msg{Kind: Kind(kind), Flags: flags, From: NodeID(from),
			To: NodeID(to), Seq: seq, Payload: payload}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return got.Kind == m.Kind && got.Flags == m.Flags &&
			got.From == m.From && got.To == m.To && got.Seq == m.Seq &&
			bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderReaderRoundTrip(t *testing.T) {
	b := NewBuilder(64)
	b.U8(7).U16(1000).U32(70000).U64(1 << 40).I64(-42).Int(-1).
		F64(3.5).Bool(true).Bool(false).BytesN([]byte{9, 8, 7}).Str("munin")
	r := NewReader(b.Bytes())
	if v := r.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := r.U16(); v != 1000 {
		t.Fatalf("U16 = %d", v)
	}
	if v := r.U32(); v != 70000 {
		t.Fatalf("U32 = %d", v)
	}
	if v := r.U64(); v != 1<<40 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.Int(); v != -1 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.F64(); v != 3.5 {
		t.Fatalf("F64 = %g", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := r.BytesN(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Fatalf("BytesN = %v", v)
	}
	if v := r.Str(); v != "munin" {
		t.Fatalf("Str = %q", v)
	}
	if r.Err() != nil {
		t.Fatalf("err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U64() // runs off the end
	if !errors.Is(r.Err(), ErrCodec) {
		t.Fatalf("err = %v, want ErrCodec", r.Err())
	}
	// Subsequent reads return zero values, error stays.
	if v := r.U8(); v != 0 {
		t.Fatalf("after error U8 = %d, want 0", v)
	}
	if v := r.Str(); v != "" {
		t.Fatalf("after error Str = %q, want empty", v)
	}
	if !errors.Is(r.Err(), ErrCodec) {
		t.Fatalf("sticky error lost: %v", r.Err())
	}
}

func TestReaderCorruptLengthPrefix(t *testing.T) {
	b := NewBuilder(8)
	b.BytesN(bytes.Repeat([]byte{1}, 100))
	buf := b.Bytes()[:10] // truncate the body
	r := NewReader(buf)
	if v := r.BytesN(); v != nil {
		t.Fatalf("BytesN on truncated = %v, want nil", v)
	}
	if !errors.Is(r.Err(), ErrCodec) {
		t.Fatalf("err = %v, want ErrCodec", r.Err())
	}
}

func TestBuilderReaderProperty(t *testing.T) {
	f := func(a uint64, b int64, s string, p []byte, flag bool) bool {
		bld := NewBuilder(0)
		bld.U64(a).I64(b).Str(s).BytesN(p).Bool(flag)
		r := NewReader(bld.Bytes())
		ga, gb, gs, gp, gf := r.U64(), r.I64(), r.Str(), r.BytesN(), r.Bool()
		return r.Err() == nil && ga == a && gb == b && gs == s &&
			bytes.Equal(gp, p) && gf == flag && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEntryFramingRoundTrip(t *testing.T) {
	// A batch: shared header (count) then length-prefixed entries.
	b := NewBuilder(0)
	b.U32(2)
	b.Entry(func(e *Builder) { e.U32(7).BytesN([]byte("abc")) })
	b.Entry(func(e *Builder) { e.U32(9).BytesN(nil) })

	r := NewReader(b.Bytes())
	if n := r.U32(); n != 2 {
		t.Fatalf("count = %d", n)
	}
	e1 := r.Entry()
	if id := e1.U32(); id != 7 {
		t.Fatalf("entry1 id = %d", id)
	}
	if p := e1.BytesN(); string(p) != "abc" {
		t.Fatalf("entry1 body = %q", p)
	}
	if e1.Remaining() != 0 || e1.Err() != nil {
		t.Fatalf("entry1 remaining=%d err=%v", e1.Remaining(), e1.Err())
	}
	e2 := r.Entry()
	if id := e2.U32(); id != 9 {
		t.Fatalf("entry2 id = %d", id)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("outer remaining=%d err=%v", r.Remaining(), r.Err())
	}
}

func TestEntryOverrunStaysInsideFrame(t *testing.T) {
	// Reading past one entry's end must error that entry's Reader, not
	// leak into the next entry's bytes.
	b := NewBuilder(0)
	b.Entry(func(e *Builder) { e.U8(1) })
	b.Entry(func(e *Builder) { e.U8(2) })
	r := NewReader(b.Bytes())
	e1 := r.Entry()
	if v := e1.U8(); v != 1 {
		t.Fatalf("entry1 = %d", v)
	}
	if v := e1.U8(); v != 0 || !errors.Is(e1.Err(), ErrCodec) {
		t.Fatalf("overrun read = %d err = %v, want 0/ErrCodec", v, e1.Err())
	}
	// The outer reader is still positioned at entry 2.
	e2 := r.Entry()
	if v := e2.U8(); v != 2 || r.Err() != nil {
		t.Fatalf("entry2 = %d outer err = %v", v, r.Err())
	}
}

func TestEntryOnMalformedOuterIsErrored(t *testing.T) {
	r := NewReader([]byte{0xff}) // uvarint length prefix with no body
	e := r.Entry()
	if e.Err() == nil {
		t.Fatal("entry reader on malformed outer payload has no error")
	}
	if v := e.U32(); v != 0 {
		t.Fatalf("errored entry U32 = %d", v)
	}
}
