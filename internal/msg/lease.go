package msg

// Lease wire format: the take/renew request a reader sends its home and
// the grant the home answers with. The coherence layer's lease engine
// speaks these on kinds of its own in the KindCohBase range; the codec
// lives here with the other wire formats so the shapes are testable
// without a cluster and reusable by tooling that decodes captures.

// LeaseReq asks the home for a readable version of an object. Have/Ver
// carry the version already cached at the requester, letting the home
// answer a renewal with a tiny "unchanged" grant instead of the bytes.
// A first-time take sends Have=false.
type LeaseReq struct {
	Obj  uint32 // object ID
	Have bool   // requester holds a cached copy at Ver
	Ver  uint64 // version of that cached copy
}

// Encode packs the request.
func (q LeaseReq) Encode() []byte {
	return NewBuilder(16).U32(q.Obj).Bool(q.Have).U64(q.Ver).Bytes()
}

// DecodeLeaseReq unpacks a request.
func DecodeLeaseReq(p []byte) (LeaseReq, error) {
	r := NewReader(p)
	q := LeaseReq{Obj: r.U32(), Have: r.Bool(), Ver: r.U64()}
	return q, r.Err()
}

// LeaseGrant is the home's answer: the object's current version and —
// unless the requester's cached copy is already that version — the
// whole current contents. Unchanged grants carry no data at all, which
// is what makes lease renewal piggyback-cheap.
type LeaseGrant struct {
	Ver       uint64 // current version at the home
	Unchanged bool   // requester's cached copy is already current
	Data      []byte // full contents; nil when Unchanged
}

// Encode packs the grant.
func (g LeaseGrant) Encode() []byte {
	b := NewBuilder(16 + len(g.Data))
	b.U64(g.Ver).Bool(g.Unchanged)
	if !g.Unchanged {
		b.BytesN(g.Data)
	}
	return b.Bytes()
}

// DecodeLeaseGrant unpacks a grant. Data aliases p.
func DecodeLeaseGrant(p []byte) (LeaseGrant, error) {
	r := NewReader(p)
	g := LeaseGrant{Ver: r.U64(), Unchanged: r.Bool()}
	if !g.Unchanged {
		g.Data = r.BytesN()
	}
	return g, r.Err()
}
