package msg

import (
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	in := []*Msg{
		{Kind: KindPing, From: 0, To: 1, Seq: 7, Payload: []byte("hello")},
		{Kind: KindCohBase + 4, Flags: FlagReply, From: 2, To: 0, Seq: 8, Payload: nil},
		{Kind: KindSyncBase, From: 1, To: 3, Seq: 9, Payload: make([]byte, 4096)},
	}
	for i := range in[2].Payload {
		in[2].Payload[i] = byte(i * 7)
	}
	out, err := DecodeFrame(EncodeFrameMsgs(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d messages, want %d", len(out), len(in))
	}
	for i, m := range out {
		w := in[i]
		if m.Kind != w.Kind || m.Flags != w.Flags || m.From != w.From ||
			m.To != w.To || m.Seq != w.Seq || string(m.Payload) != string(w.Payload) {
			t.Errorf("message %d: got %v, want %v", i, m, w)
		}
	}
}

func TestFrameEmptyBatch(t *testing.T) {
	out, err := DecodeFrame(EncodeFrame(nil))
	if err != nil {
		t.Fatalf("decode empty frame: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty frame decoded to %d messages", len(out))
	}
}

func TestFrameTruncated(t *testing.T) {
	full := EncodeFrameMsgs([]*Msg{
		{Kind: KindPing, To: 1, Seq: 1, Payload: []byte("first")},
		{Kind: KindPing, To: 1, Seq: 2, Payload: []byte("second")},
	})
	// A corrupt frame must not deliver any prefix of its messages:
	// every truncation point fails outright.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

func TestFrameTrailingGarbage(t *testing.T) {
	full := EncodeFrameMsgs([]*Msg{{Kind: KindPing, To: 1, Seq: 1}})
	if _, err := DecodeFrame(append(full, 0xee)); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

func TestFrameOversizedCountRejected(t *testing.T) {
	b := NewBuilder(4)
	b.U32(MaxFrameMessages + 1)
	_, err := DecodeFrame(b.Bytes())
	if !errors.Is(err, ErrCodec) {
		t.Fatalf("oversized count: err = %v, want ErrCodec", err)
	}
}

func TestFrameCorruptEntryRejected(t *testing.T) {
	// A well-formed envelope whose entry is not a valid Msg.
	b := NewBuilder(16)
	b.U32(1)
	b.BytesN([]byte{1, 2, 3}) // shorter than a Msg header
	if _, err := DecodeFrame(b.Bytes()); err == nil {
		t.Fatal("corrupt entry decoded without error")
	}
}
