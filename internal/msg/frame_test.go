package msg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	in := []*Msg{
		{Kind: KindPing, From: 0, To: 1, Seq: 7, Payload: []byte("hello")},
		{Kind: KindCohBase + 4, Flags: FlagReply, From: 2, To: 0, Seq: 8, Payload: nil},
		{Kind: KindSyncBase, From: 1, To: 3, Seq: 9, Payload: make([]byte, 4096)},
	}
	for i := range in[2].Payload {
		in[2].Payload[i] = byte(i * 7)
	}
	out, err := DecodeFrame(EncodeFrameMsgs(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d messages, want %d", len(out), len(in))
	}
	for i, m := range out {
		w := in[i]
		if m.Kind != w.Kind || m.Flags != w.Flags || m.From != w.From ||
			m.To != w.To || m.Seq != w.Seq || string(m.Payload) != string(w.Payload) {
			t.Errorf("message %d: got %v, want %v", i, m, w)
		}
	}
}

func TestFrameEmptyBatch(t *testing.T) {
	out, err := DecodeFrame(EncodeFrame(nil))
	if err != nil {
		t.Fatalf("decode empty frame: %v", err)
	}
	if len(out) != 0 {
		t.Fatalf("empty frame decoded to %d messages", len(out))
	}
}

func TestFrameTruncated(t *testing.T) {
	full := EncodeFrameMsgs([]*Msg{
		{Kind: KindPing, To: 1, Seq: 1, Payload: []byte("first")},
		{Kind: KindPing, To: 1, Seq: 2, Payload: []byte("second")},
	})
	// A corrupt frame must not deliver any prefix of its messages:
	// every truncation point fails outright.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

func TestFrameTrailingGarbage(t *testing.T) {
	full := EncodeFrameMsgs([]*Msg{{Kind: KindPing, To: 1, Seq: 1}})
	if _, err := DecodeFrame(append(full, 0xee)); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

func TestFrameOversizedCountRejected(t *testing.T) {
	b := NewBuilder(4)
	b.U32(MaxFrameMessages + 1)
	_, err := DecodeFrame(b.Bytes())
	if !errors.Is(err, ErrCodec) {
		t.Fatalf("oversized count: err = %v, want ErrCodec", err)
	}
}

func TestFrameCorruptEntryRejected(t *testing.T) {
	// A well-formed envelope whose entry is not a valid Msg.
	b := NewBuilder(16)
	b.U32(1)
	b.BytesN([]byte{1, 2, 3}) // shorter than a Msg header
	if _, err := DecodeFrame(b.Bytes()); err == nil {
		t.Fatal("corrupt entry decoded without error")
	}
}

func TestFrameHostileCountRejectedBeforeAlloc(t *testing.T) {
	// A count within MaxFrameMessages but far beyond what the remaining
	// bytes could hold must be rejected before sizing the entry slice.
	b := NewBuilder(8)
	b.U32(MaxFrameMessages).U16(0)
	if _, err := DecodeFrameRaw(b.Bytes()); !errors.Is(err, ErrCodec) {
		t.Fatal("hostile count decoded without error")
	}
}

func TestFillHeaderMatchesMarshal(t *testing.T) {
	m := &Msg{Kind: KindLockBase + 3, Flags: FlagReply, From: 2, To: 5, Seq: 99,
		Payload: []byte{1, 2, 3, 4, 5}}
	want := m.Marshal()

	buf := make([]byte, 0, HeaderSize+len(m.Payload))
	var b Builder
	b.Reset(buf)
	b.Skip(HeaderSize)
	got := append(b.Bytes(), m.Payload...)
	FillHeader(got, m.Kind, m.Flags, m.From, m.To, m.Seq)
	if !bytes.Equal(got, want) {
		t.Fatalf("FillHeader wire bytes differ:\n got %x\nwant %x", got, want)
	}
}

func TestFillHeaderShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FillHeader(make([]byte, HeaderSize-1), KindPing, 0, 0, 0, 0)
}

func TestPeekHeader(t *testing.T) {
	m := &Msg{Kind: KindCohBase + 4, To: 7, Seq: 1, Payload: []byte{9}}
	kind, to, err := PeekHeader(m.Marshal())
	if err != nil || kind != m.Kind || to != m.To {
		t.Fatalf("PeekHeader = %v,%v,%v", kind, to, err)
	}
	if _, _, err := PeekHeader(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("short peek succeeded")
	}
}

func TestBuilderSkipAndUvarint(t *testing.T) {
	var b Builder
	b.Reset(make([]byte, 0, 4)) // force Skip to grow past capacity
	b.Skip(6)
	if b.Len() != 6 {
		t.Fatalf("Skip len = %d", b.Len())
	}
	for _, v := range []uint64{0, 1, 127, 128, 1 << 20, 1<<64 - 1} {
		var u Builder
		u.Uvarint(v)
		if u.Len() != UvarintLen(v) {
			t.Fatalf("UvarintLen(%d) = %d, encoded %d", v, UvarintLen(v), u.Len())
		}
		got, n := binary.Uvarint(u.Bytes())
		if got != v || n != u.Len() {
			t.Fatalf("Uvarint(%d) decoded to %d (%d bytes)", v, got, n)
		}
	}
}

func TestReaderFailIsSticky(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4})
	r.Fail()
	if !errors.Is(r.Err(), ErrCodec) {
		t.Fatalf("Fail err = %v", r.Err())
	}
	if r.U32() != 0 {
		t.Fatal("read after Fail returned data")
	}
}

// BenchmarkFrameAssembly measures the writer-side frame primitives the
// drain loop uses: header + per-entry prefixes into reused scratch.
func BenchmarkFrameAssembly(b *testing.B) {
	bodies := make([][]byte, 16)
	for i := range bodies {
		bodies[i] = make([]byte, 200)
	}
	hdr := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr = AppendFrameHeader(hdr[:0], len(bodies))
		for _, body := range bodies {
			hdr = AppendEntryPrefix(hdr, len(body))
		}
	}
}
