package msg

import (
	"bytes"
	"testing"
)

func TestLeaseReqRoundTrip(t *testing.T) {
	for _, q := range []LeaseReq{
		{Obj: 7, Have: false, Ver: 0},
		{Obj: 0xFFFF, Have: true, Ver: 1<<63 + 12345},
	} {
		got, err := DecodeLeaseReq(q.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip %+v -> %+v", q, got)
		}
	}
}

func TestLeaseGrantRoundTrip(t *testing.T) {
	full := LeaseGrant{Ver: 42, Data: []byte("fresh bytes")}
	got, err := DecodeLeaseGrant(full.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != 42 || got.Unchanged || !bytes.Equal(got.Data, full.Data) {
		t.Fatalf("full grant round trip: %+v", got)
	}

	echo := LeaseGrant{Ver: 42, Unchanged: true}
	enc := echo.Encode()
	if len(enc) >= len(full.Encode()) {
		t.Fatalf("unchanged grant (%dB) not smaller than full grant (%dB)",
			len(enc), len(full.Encode()))
	}
	got, err = DecodeLeaseGrant(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != 42 || !got.Unchanged || got.Data != nil {
		t.Fatalf("unchanged grant round trip: %+v", got)
	}
}

func TestLeaseDecodeCorrupt(t *testing.T) {
	if _, err := DecodeLeaseReq([]byte{1, 2}); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, err := DecodeLeaseGrant([]byte{9}); err == nil {
		t.Fatal("truncated grant accepted")
	}
}
