// Package msg defines the wire format used by every Munin component that
// crosses a node boundary: a fixed header (kind, routing, correlation)
// followed by an opaque payload, plus Builder/Reader helpers for encoding
// protocol payloads with encoding/binary semantics.
//
// All inter-node state in this repository travels as a serialized Msg;
// nothing shares pointers across nodes. That discipline is what makes the
// traffic accounting in internal/transport meaningful.
package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a node (processor) in the cluster. Node IDs are dense
// small integers assigned at cluster construction.
type NodeID int32

// Kind discriminates message types. Ranges are allocated per subsystem so
// a dispatcher can route on kind alone.
type Kind uint16

// Kind ranges. Each subsystem registers handlers for its range with the
// vkernel dispatcher.
const (
	KindInvalid Kind = 0

	// 0x0100: vkernel control
	KindPing Kind = 0x0100

	// 0x0200: distributed lock service
	KindLockBase Kind = 0x0200

	// 0x0300: Munin coherence protocols
	KindCohBase Kind = 0x0300

	// 0x0400: Ivy page DSM
	KindIvyBase Kind = 0x0400

	// 0x0500: barrier / misc sync
	KindSyncBase Kind = 0x0500

	// 0x0600: application-level message passing (internal/mp baselines)
	KindAppBase Kind = 0x0600
)

// Flags bits.
const (
	FlagReply uint16 = 1 << iota // message is a reply to Seq
	FlagMulticast
)

// Msg is one message on the wire.
type Msg struct {
	Kind    Kind
	Flags   uint16
	From    NodeID
	To      NodeID // destination node, or group ID if FlagMulticast
	Seq     uint64 // request/reply correlation token
	Payload []byte
}

// headerSize is the fixed encoded header length in bytes.
const headerSize = 2 + 2 + 4 + 4 + 8 + 4

// HeaderSize is the fixed encoded header length in bytes. The pooled
// encode path reserves this many bytes at the front of a wire buffer
// (Builder.Skip), builds the payload in place behind them, and stamps
// the header with FillHeader once routing and correlation are known —
// no Marshal copy.
const HeaderSize = headerSize

// ErrShortMessage is returned when decoding a buffer too small to contain
// a complete message.
var ErrShortMessage = errors.New("msg: short message")

// Marshal encodes m into a fresh byte slice.
func (m *Msg) Marshal() []byte {
	buf := make([]byte, headerSize+len(m.Payload))
	binary.BigEndian.PutUint16(buf[0:], uint16(m.Kind))
	binary.BigEndian.PutUint16(buf[2:], m.Flags)
	binary.BigEndian.PutUint32(buf[4:], uint32(m.From))
	binary.BigEndian.PutUint32(buf[8:], uint32(m.To))
	binary.BigEndian.PutUint64(buf[12:], m.Seq)
	binary.BigEndian.PutUint32(buf[20:], uint32(len(m.Payload)))
	copy(buf[headerSize:], m.Payload)
	return buf
}

// FillHeader stamps the fixed header into the first HeaderSize bytes
// of buf, which must already hold HeaderSize reserved bytes followed by
// the complete payload (the payload length word is derived from
// len(buf)). This is the in-place counterpart of Marshal for wire
// buffers built directly in pooled storage.
func FillHeader(buf []byte, kind Kind, flags uint16, from, to NodeID, seq uint64) {
	if len(buf) < headerSize {
		panic(ErrShortMessage)
	}
	binary.BigEndian.PutUint16(buf[0:], uint16(kind))
	binary.BigEndian.PutUint16(buf[2:], flags)
	binary.BigEndian.PutUint32(buf[4:], uint32(from))
	binary.BigEndian.PutUint32(buf[8:], uint32(to))
	binary.BigEndian.PutUint64(buf[12:], seq)
	binary.BigEndian.PutUint32(buf[20:], uint32(len(buf)-headerSize))
}

// PeekHeader decodes only the kind and destination from a marshalled
// message — what a transport needs to route and charge an already
// encoded buffer without materializing a Msg.
func PeekHeader(buf []byte) (kind Kind, to NodeID, err error) {
	if len(buf) < headerSize {
		return 0, 0, ErrShortMessage
	}
	return Kind(binary.BigEndian.Uint16(buf[0:])), NodeID(binary.BigEndian.Uint32(buf[8:])), nil
}

// SetFrom overwrites the sender field of a marshalled message in place.
// Transports stamp it on owned buffers the way Send stamps m.From, so
// an encoder never needs to know which endpoint will emit the buffer.
func SetFrom(buf []byte, from NodeID) {
	if len(buf) < headerSize {
		panic(ErrShortMessage)
	}
	binary.BigEndian.PutUint32(buf[4:], uint32(from))
}

// Unmarshal decodes a message from buf. The returned message's payload
// aliases buf; callers that retain the message must copy.
func Unmarshal(buf []byte) (*Msg, error) {
	if len(buf) < headerSize {
		return nil, ErrShortMessage
	}
	plen := binary.BigEndian.Uint32(buf[20:])
	if uint32(len(buf)-headerSize) < plen {
		return nil, fmt.Errorf("msg: payload truncated: have %d want %d: %w",
			len(buf)-headerSize, plen, ErrShortMessage)
	}
	return &Msg{
		Kind:    Kind(binary.BigEndian.Uint16(buf[0:])),
		Flags:   binary.BigEndian.Uint16(buf[2:]),
		From:    NodeID(binary.BigEndian.Uint32(buf[4:])),
		To:      NodeID(binary.BigEndian.Uint32(buf[8:])),
		Seq:     binary.BigEndian.Uint64(buf[12:]),
		Payload: buf[headerSize : headerSize+int(plen)],
	}, nil
}

// WireSize returns the encoded size of the message in bytes. The
// transport charges this size against the bandwidth model.
func (m *Msg) WireSize() int { return headerSize + len(m.Payload) }

// IsReply reports whether the reply flag is set.
func (m *Msg) IsReply() bool { return m.Flags&FlagReply != 0 }

func (m *Msg) String() string {
	return fmt.Sprintf("msg{kind=%#x from=%d to=%d seq=%d flags=%#x |payload|=%d}",
		uint16(m.Kind), m.From, m.To, m.Seq, m.Flags, len(m.Payload))
}
