package msg

import (
	"encoding/binary"
	"fmt"
)

// Frame envelope: the unit the transport's coalescing writer puts on the
// wire. One frame carries any number of complete Msgs, each as a
// length-prefixed entry (the same Entry framing multi-object batch
// payloads use), so the writer can emit everything queued for a peer as
// a single write and the reader can delimit the messages without
// understanding their contents.
//
// Layout: U32 message count, then per message a uvarint length prefix
// followed by the Marshal()ed message bytes.

// frameOverhead is the fixed frame envelope cost (the count word).
const frameOverhead = 4

// MaxFrameMessages bounds how many messages one frame may carry. The
// writer splits larger drains into multiple frames (still one vectored
// write); the reader rejects counts above the bound before allocating.
const MaxFrameMessages = 1 << 16

// EncodeFrame packs the already-marshalled messages into one frame.
// An empty batch encodes to a valid frame carrying zero messages.
func EncodeFrame(encoded [][]byte) []byte {
	size := frameOverhead
	for _, e := range encoded {
		size += binary.MaxVarintLen32 + len(e)
	}
	b := NewBuilder(size)
	b.U32(uint32(len(encoded)))
	for _, e := range encoded {
		b.BytesN(e)
	}
	return b.Bytes()
}

// EncodeFrameMsgs is EncodeFrame over unmarshalled messages.
func EncodeFrameMsgs(msgs []*Msg) []byte {
	encoded := make([][]byte, len(msgs))
	for i, m := range msgs {
		encoded[i] = m.Marshal()
	}
	return EncodeFrame(encoded)
}

// AppendFrameHeader appends the frame envelope header for count messages
// to buf. The transport writer uses it to build a vectored write —
// header, then each message's uvarint prefix and body as separate
// buffers — without copying message bytes into one flat slice.
func AppendFrameHeader(buf []byte, count int) []byte {
	return binary.BigEndian.AppendUint32(buf, uint32(count))
}

// AppendEntryPrefix appends the uvarint length prefix for one frame
// entry of n bytes.
func AppendEntryPrefix(buf []byte, n int) []byte {
	return binary.AppendUvarint(buf, uint64(n))
}

// DecodeFrameRaw unpacks a frame into its still-marshalled messages
// (each aliasing buf). A truncated or oversized frame returns an error
// rather than a partial result: a corrupt frame must not deliver any of
// its messages, or the sender's FIFO guarantee would silently turn into
// message loss mid-stream. The transport reader uses this form so it
// can route each entry by peeking only the header.
func DecodeFrameRaw(buf []byte) ([][]byte, error) {
	r := NewReader(buf)
	count := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("msg: frame header: %w", r.Err())
	}
	if count > MaxFrameMessages {
		return nil, fmt.Errorf("msg: frame claims %d messages (max %d): %w",
			count, MaxFrameMessages, ErrCodec)
	}
	// Every entry costs at least its one-byte length prefix, so a count
	// beyond the remaining bytes is corrupt; rejecting it here keeps a
	// hostile count word from sizing the preallocation below.
	if count > r.Remaining() {
		return nil, fmt.Errorf("msg: frame claims %d messages in %d bytes: %w",
			count, r.Remaining(), ErrCodec)
	}
	entries := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		e := r.BytesN()
		if r.Err() != nil {
			return nil, fmt.Errorf("msg: frame entry %d/%d: %w", i, count, r.Err())
		}
		entries = append(entries, e)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("msg: frame has %d trailing bytes: %w", r.Remaining(), ErrCodec)
	}
	return entries, nil
}

// DecodeFrame unpacks a frame into fully decoded messages. Payloads
// alias buf; callers that retain a message must copy.
func DecodeFrame(buf []byte) ([]*Msg, error) {
	entries, err := DecodeFrameRaw(buf)
	if err != nil {
		return nil, err
	}
	msgs := make([]*Msg, 0, len(entries))
	for i, e := range entries {
		m, err := Unmarshal(e)
		if err != nil {
			return nil, fmt.Errorf("msg: frame entry %d/%d: %w", i, len(entries), err)
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}
