package vkernel

import (
	"errors"
	"sync"
	"testing"
	"time"

	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/transport"
)

func newTestKernels(t *testing.T, n int) ([]*Kernel, transport.Network) {
	t.Helper()
	net := transport.NewChanNetwork(n, transport.CostModel{})
	ks := make([]*Kernel, n)
	for i := range ks {
		ks[i] = New(net, msg.NodeID(i))
	}
	t.Cleanup(func() {
		net.Close()
		for _, k := range ks {
			k.Wait()
		}
	})
	return ks, net
}

func TestCallReply(t *testing.T) {
	ks, _ := newTestKernels(t, 2)
	ks[1].Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, append([]byte("pong:"), req.Payload...))
	})
	reply, err := ks[0].Call(1, msg.KindPing, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply.Payload) != "pong:x" {
		t.Fatalf("reply = %q", reply.Payload)
	}
}

func TestCallSelf(t *testing.T) {
	ks, _ := newTestKernels(t, 1)
	ks[0].Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, []byte("self"))
	})
	reply, err := ks[0].Call(0, msg.KindPing, nil)
	if err != nil || string(reply.Payload) != "self" {
		t.Fatalf("self call: %v %v", reply, err)
	}
}

func TestHandlerCanCallOtherNodes(t *testing.T) {
	// Node 0 calls node 1; node 1's handler calls node 2 before replying.
	// This is the forwarding pattern directory protocols rely on.
	ks, _ := newTestKernels(t, 3)
	ks[2].Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, []byte("leaf"))
	})
	ks[1].Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		r, err := k.Call(2, msg.KindPing, nil)
		if err != nil {
			k.Reply(req, []byte("err"))
			return
		}
		k.Reply(req, append([]byte("via1:"), r.Payload...))
	})
	reply, err := ks[0].Call(1, msg.KindPing, nil)
	if err != nil || string(reply.Payload) != "via1:leaf" {
		t.Fatalf("forwarded call: %q %v", reply.Payload, err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	ks, _ := newTestKernels(t, 2)
	ks[1].Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, req.Payload)
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i byte) {
			defer wg.Done()
			reply, err := ks[0].Call(1, msg.KindPing, []byte{i})
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if len(reply.Payload) != 1 || reply.Payload[0] != i {
				t.Errorf("reply mismatch: %v want %d", reply.Payload, i)
			}
		}(byte(i))
	}
	wg.Wait()
}

func TestOneWaySend(t *testing.T) {
	ks, _ := newTestKernels(t, 2)
	got := make(chan []byte, 1)
	ks[1].Handle(msg.KindAppBase, msg.KindAppBase, func(k *Kernel, req *msg.Msg) {
		got <- req.Payload
	})
	if err := ks[0].Send(1, msg.KindAppBase, []byte("oneway")); err != nil {
		t.Fatal(err)
	}
	if p := <-got; string(p) != "oneway" {
		t.Fatalf("payload = %q", p)
	}
}

func TestMulticastGroup(t *testing.T) {
	ks, _ := newTestKernels(t, 4)
	var mu sync.Mutex
	received := map[msg.NodeID]bool{}
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 1; i < 4; i++ {
		ks[i].Handle(msg.KindAppBase, msg.KindAppBase, func(k *Kernel, req *msg.Msg) {
			mu.Lock()
			received[k.Node()] = true
			mu.Unlock()
			wg.Done()
		})
	}
	// Sender is a member too; it must not deliver to itself.
	ks[0].DefineGroup(7, []msg.NodeID{0, 1, 2, 3})
	if got := len(ks[0].Group(7)); got != 4 {
		t.Fatalf("group size = %d", got)
	}
	if err := ks[0].Multicast(7, msg.KindAppBase, []byte("m")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(received) != 3 || received[0] {
		t.Fatalf("received = %v", received)
	}
}

func TestMulticastToNobody(t *testing.T) {
	ks, net := newTestKernels(t, 2)
	before := net.Stats().Messages()
	if err := ks[0].MulticastTo([]msg.NodeID{0}, msg.KindAppBase, nil); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Messages() != before {
		t.Fatal("multicast to only-self sent wire traffic")
	}
}

func TestUnhandledKindDropped(t *testing.T) {
	ks, _ := newTestKernels(t, 2)
	// No handler registered on node 1 for this kind: message is dropped,
	// nothing crashes, and subsequent traffic still works.
	if err := ks[0].Send(1, msg.KindIvyBase, []byte("stray")); err != nil {
		t.Fatal(err)
	}
	ks[1].Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, nil)
	})
	if _, err := ks[0].Call(1, msg.KindPing, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlappingHandlerRangePanics(t *testing.T) {
	ks, _ := newTestKernels(t, 1)
	ks[0].Handle(msg.KindLockBase, msg.KindLockBase+10, func(*Kernel, *msg.Msg) {})
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping Handle did not panic")
		}
	}()
	ks[0].Handle(msg.KindLockBase+5, msg.KindLockBase+20, func(*Kernel, *msg.Msg) {})
}

func TestCallAfterCloseFails(t *testing.T) {
	net := transport.NewChanNetwork(2, transport.CostModel{})
	k0 := New(net, 0)
	k1 := New(net, 1)
	_ = k1
	k0.Close()
	if _, err := k0.Call(1, msg.KindPing, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	net.Close()
	k0.Wait()
	k1.Wait()
}

func TestPendingCallFailsOnClose(t *testing.T) {
	net := transport.NewChanNetwork(2, transport.CostModel{})
	k0 := New(net, 0)
	k1 := New(net, 1)
	// Node 1 never replies.
	k1.Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {})
	errc := make(chan error, 1)
	go func() {
		_, err := k0.Call(1, msg.KindPing, nil)
		errc <- err
	}()
	k0.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	net.Close()
	k0.Wait()
	k1.Wait()
}

func TestHandlerRangeDispatch(t *testing.T) {
	ks, _ := newTestKernels(t, 2)
	hits := make(chan string, 2)
	ks[1].Handle(msg.KindLockBase, msg.KindLockBase+0xff, func(k *Kernel, req *msg.Msg) {
		hits <- "lock"
		k.Reply(req, nil)
	})
	ks[1].Handle(msg.KindCohBase, msg.KindCohBase+0xff, func(k *Kernel, req *msg.Msg) {
		hits <- "coh"
		k.Reply(req, nil)
	})
	if _, err := ks[0].Call(1, msg.KindCohBase+7, nil); err != nil {
		t.Fatal(err)
	}
	if got := <-hits; got != "coh" {
		t.Fatalf("dispatched to %q, want coh", got)
	}
	if _, err := ks[0].Call(1, msg.KindLockBase+3, nil); err != nil {
		t.Fatal(err)
	}
	if got := <-hits; got != "lock" {
		t.Fatalf("dispatched to %q, want lock", got)
	}
}

// newMeshKernels builds a live two-process-shaped mesh inside this test
// process: two MeshNetworks over real loopback TCP, one kernel each.
func newMeshKernels(t *testing.T) (k0, k1 *Kernel, net0, net1 *transport.MeshNetwork) {
	t.Helper()
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	net0, err = transport.NewMeshNetwork(transport.Topology{Self: 0, Peers: peers}, transport.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	net1, err = transport.NewMeshNetwork(transport.Topology{Self: 1, Peers: peers}, transport.CostModel{})
	if err != nil {
		net0.Close()
		t.Fatal(err)
	}
	k0 = New(net0, 0)
	k1 = New(net1, 1)
	t.Cleanup(func() {
		k0.Close()
		k1.Close()
		net0.Close()
		net1.Close()
		k0.Wait()
		k1.Wait()
	})
	return k0, k1, net0, net1
}

// TestBlockedCallFailsWithErrPeerDownOnWireDeath is the ROADMAP's
// wire-death acceptance shape: a Call blocked on a reply returns
// *transport.ErrPeerDown promptly (well under a second) when the
// peer's connection dies mid-call, instead of hanging until Close.
func TestBlockedCallFailsWithErrPeerDownOnWireDeath(t *testing.T) {
	k0, k1, net0, _ := newMeshKernels(t)

	received := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	k0.Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		close(received)
		<-release // never replies while the test runs
	})

	type outcome struct {
		err     error
		elapsed time.Duration
	}
	res := make(chan outcome, 1)
	go func() {
		start := time.Now()
		_, err := k1.Call(0, msg.KindPing, []byte("stuck"))
		res <- outcome{err: err, elapsed: time.Since(start)}
	}()

	select {
	case <-received:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached node 0")
	}
	// Kill node 0's side of the wire abruptly while the call is
	// blocked — no goodbye, so this is wire death, not departure.
	killAt := time.Now()
	net0.Kill()

	select {
	case out := <-res:
		var pd *transport.ErrPeerDown
		if !errors.As(out.err, &pd) || pd.Node != 0 {
			t.Fatalf("blocked call returned %v, want *ErrPeerDown{Node: 0}", out.err)
		}
		if waited := time.Since(killAt); waited > time.Second {
			t.Fatalf("call took %v after the wire died, want < 1s", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked call never returned after the wire died")
	}
	if got := k1.Counters()["call.failed_peer"]; got != 1 {
		t.Fatalf("call.failed_peer = %d, want 1", got)
	}
}

// TestReplyBeatsLatePeerDeath: a call whose reply already arrived is
// not failed when its peer dies afterwards.
func TestReplyBeatsLatePeerDeath(t *testing.T) {
	k0, k1, net0, _ := newMeshKernels(t)
	k0.Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, []byte("ok"))
	})
	reply, err := k1.Call(0, msg.KindPing, nil)
	if err != nil || string(reply.Payload) != "ok" {
		t.Fatalf("call: %v, %v", reply, err)
	}
	net0.Close()
	// The completed call is untouched; only the counter stays zero.
	if got := k1.Counters()["call.failed_peer"]; got != 0 {
		t.Fatalf("call.failed_peer = %d after a completed call, want 0", got)
	}
}

// TestGoodbyeDeliversReplyAndFailsOnlyUnanswered is the reply-vs-EOF
// race the goodbye protocol closes, in miniature: node 0 replies to
// one call and departs IMMEDIATELY, with the reply still in flight,
// while a second call it never answered stays pending. The answered
// call must receive its reply — never a latch error — and exactly the
// unanswered call fails, with the typed *transport.ErrPeerGone and
// counted as call.failed_gone.
func TestGoodbyeDeliversReplyAndFailsOnlyUnanswered(t *testing.T) {
	k0, k1, net0, _ := newMeshKernels(t)

	parkedArrived := make(chan struct{})
	k0.Handle(msg.KindPing+1, msg.KindPing+1, func(k *Kernel, req *msg.Msg) {
		close(parkedArrived) // never replies
	})
	replied := make(chan struct{})
	k0.Handle(msg.KindPing, msg.KindPing, func(k *Kernel, req *msg.Msg) {
		k.Reply(req, []byte("bye"))
		close(replied)
	})

	parkedRes := make(chan error, 1)
	go func() {
		_, err := k1.Call(0, msg.KindPing+1, nil)
		parkedRes <- err
	}()
	select {
	case <-parkedArrived:
	case <-time.After(5 * time.Second):
		t.Fatal("parked request never arrived")
	}

	answeredRes := make(chan error, 1)
	var reply *msg.Msg
	go func() {
		var err error
		reply, err = k1.Call(0, msg.KindPing, nil)
		answeredRes <- err
	}()
	// Close node 0 the instant the reply is enqueued — the goodbye
	// drain must carry it out before the departure latches.
	<-replied
	net0.Close()

	select {
	case err := <-answeredRes:
		if err != nil || string(reply.Payload) != "bye" {
			t.Fatalf("answered call lost its reply to the departure: %v, %v", reply, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("answered call never returned")
	}
	select {
	case err := <-parkedRes:
		var pg *transport.ErrPeerGone
		if !errors.As(err, &pg) || pg.Node != 0 {
			t.Fatalf("unanswered call = %v, want *transport.ErrPeerGone{Node: 0}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unanswered call never failed after the departure")
	}
	if got := k1.Counters()["call.failed_gone"]; got != 1 {
		t.Fatalf("call.failed_gone = %d, want 1", got)
	}
	if got := k1.Counters()["call.failed_peer"]; got != 0 {
		t.Fatalf("call.failed_peer = %d after a clean departure, want 0", got)
	}
}
