// Package vkernel layers V-kernel-style communication primitives on the
// raw transport: blocking request/reply (Send-Receive-Reply in V
// terminology), one-way sends, and multicast to process groups.
//
// The paper's prototype used the V kernel for "high-speed communication
// between the different processors"; this package is that substrate.
// Every node runs one Kernel. Incoming messages are dispatched by message
// kind to registered handlers; each request runs in its own goroutine so
// a handler may itself issue Calls to other nodes (directory protocols
// need this: a home node forwards a request to the current owner while
// the requester stays blocked).
//
// Requests ride the transport's asynchronous writer pipeline: CallStart
// and MulticastCallStart enqueue without waiting for the wire, Flush
// fences everything enqueued so far, and Pending.Wait collects the
// replies — the shape a batched protocol flush uses to start every
// destination, fence once, and let all destinations' traffic leave in
// coalesced frames. The blocking Call/MulticastCall/CallInline forms
// are built on the same three steps.
//
// Every pending call records its destination set, each destination
// tagged with the connection epoch in force when the call started. On
// transports that detect peer death (transport.PeerDownNotifier — the
// multi-process mesh), a latched wire failure fails exactly the
// pending calls aimed at the dead peer's generation with
// *transport.ErrPeerDown instead of leaving them blocked until Close;
// the epoch tag keeps a stale outage notification from killing calls
// started after a policy reconnect. A peer that departs cleanly
// (goodbye — transport.PeerGoneNotifier) fails its remaining pending
// calls with *transport.ErrPeerGone, and only after every reply it
// actually sent has been dispatched, so an in-flight reply never loses
// a race to the latch. The kernel counts the failures as
// call.failed_peer / call.failed_gone (see Counters).
package vkernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"munin/internal/bufpool"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/transport"
)

// ErrClosed is returned by calls on a closed kernel.
var ErrClosed = errors.New("vkernel: closed")

// Handler processes one incoming request. If the sender used Call, the
// handler must eventually invoke k.Reply(req, ...) exactly once.
type Handler func(k *Kernel, req *msg.Msg)

// Kernel is one node's communication endpoint and dispatcher.
type Kernel struct {
	net    transport.Network
	ep     transport.Endpoint
	node   msg.NodeID
	epochs transport.PeerEpochs // nil when the transport is unversioned

	seq     atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]*pendingCall
	ranges  []handlerRange
	groups  map[int][]msg.NodeID
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup

	// C counts kernel-level events: call.failed_peer (pending calls
	// failed because their destination's wire died) and
	// call.failed_gone (pending calls failed because their destination
	// departed cleanly with nothing more to say).
	C stats.Set
}

type handlerRange struct {
	lo, hi msg.Kind // inclusive
	h      Handler
}

// pendingCall tracks an outstanding Call or MulticastCall: want replies
// are expected; each arrives on ch. If inline is non-nil it runs on the
// dispatcher goroutine, before any later incoming message is dispatched.
// dsts is the set of destinations whose replies are still outstanding —
// the record that lets a peer's wire death fail exactly the calls aimed
// at it (fail delivers the error to the waiter). deps holds, parallel
// to dsts, the connection epoch in force when the call started: a
// peer-down notification for epoch E fails only calls tagged <= E, so
// an outage report that races a reconnect cannot kill calls started on
// the fresh generation.
type pendingCall struct {
	ch     chan *msg.Msg
	want   int
	got    int
	inline func(*msg.Msg)
	dsts   []msg.NodeID
	deps   []uint64
	fail   chan error
}

// awaiting reports whether the call still expects a reply from node n,
// and drops one occurrence of n if so. Caller holds k.mu.
func (pc *pendingCall) awaiting(n msg.NodeID, drop bool) bool {
	for i, d := range pc.dsts {
		if d == n {
			if drop {
				last := len(pc.dsts) - 1
				pc.dsts[i] = pc.dsts[last]
				pc.dsts = pc.dsts[:last]
				pc.deps[i] = pc.deps[last]
				pc.deps = pc.deps[:last]
			}
			return true
		}
	}
	return false
}

// awaitingEpoch reports whether the call still expects a reply from
// node n that was started at epoch <= e. Caller holds k.mu.
func (pc *pendingCall) awaitingEpoch(n msg.NodeID, e uint64) bool {
	for i, d := range pc.dsts {
		if d == n && pc.deps[i] <= e {
			return true
		}
	}
	return false
}

// New creates and starts a kernel for node id on the given network. If
// the network reports peer death (transport.PeerDownNotifier), the
// kernel subscribes so pending calls aimed at a dead peer fail with
// *transport.ErrPeerDown instead of blocking until Close; if it
// reports clean departures (transport.PeerGoneNotifier), calls whose
// replies truly never arrived fail with *transport.ErrPeerGone — after
// every reply the peer did send has been dispatched.
func New(net transport.Network, node msg.NodeID) *Kernel {
	k := &Kernel{
		net:     net,
		ep:      net.Endpoint(node),
		node:    node,
		pending: make(map[uint64]*pendingCall),
		groups:  make(map[int][]msg.NodeID),
		done:    make(chan struct{}),
	}
	k.epochs, _ = net.(transport.PeerEpochs)
	if pn, ok := net.(transport.PeerDownNotifier); ok {
		pn.OnPeerDown(k.peerDown)
	}
	if gn, ok := net.(transport.PeerGoneNotifier); ok {
		gn.OnPeerGone(k.peerGone)
	}
	k.wg.Add(1)
	go k.dispatchLoop()
	return k
}

// peerEpoch returns the current connection epoch for a destination (0
// on unversioned transports, where every call trivially matches every
// outage).
func (k *Kernel) peerEpoch(dst msg.NodeID) uint64 {
	if k.epochs == nil || dst == k.node {
		return 0
	}
	return k.epochs.PeerEpoch(dst)
}

// peerDown fails every pending call still awaiting a reply from the
// dead peer's generation (epoch tags <= the epoch that died; calls
// started after a reconnect carry a newer tag and survive a stale
// notification). A multicast call that has already collected some
// replies fails whole: its synchronization guarantee (every
// destination acknowledged) can no longer be met.
func (k *Kernel) peerDown(peer msg.NodeID, epoch uint64, err error) {
	k.failAwaiting(err, stats.CCallFailedPeer, func(pc *pendingCall) bool {
		return pc.awaitingEpoch(peer, epoch)
	})
}

// peerGone fails every pending call still awaiting a reply from the
// departed peer. It runs on the dispatcher goroutine, strictly after
// every reply the peer sent before its goodbye was dispatched — so
// only calls whose replies genuinely never arrived are failed, which
// is the race the goodbye protocol exists to close.
func (k *Kernel) peerGone(peer msg.NodeID, err error) {
	k.failAwaiting(err, stats.CCallFailedGone, func(pc *pendingCall) bool {
		return pc.awaiting(peer, false)
	})
}

func (k *Kernel) failAwaiting(err error, counter string, match func(*pendingCall) bool) {
	k.mu.Lock()
	var failed []*pendingCall
	for seq, pc := range k.pending {
		if match(pc) {
			failed = append(failed, pc)
			delete(k.pending, seq)
		}
	}
	k.mu.Unlock()
	for _, pc := range failed {
		k.C.Add(counter, 1)
		select {
		case pc.fail <- err:
		default: // already failed (second peer died first)
		}
	}
}

// Counters returns a snapshot of the kernel's event counters.
func (k *Kernel) Counters() map[string]int64 { return k.C.Snapshot() }

// Node returns this kernel's node ID.
func (k *Kernel) Node() msg.NodeID { return k.node }

// Nodes returns the cluster size.
func (k *Kernel) Nodes() int { return k.net.Nodes() }

// Handle registers h for every message kind in [lo, hi]. Registration
// must happen before traffic for those kinds arrives; ranges must not
// overlap.
func (k *Kernel) Handle(lo, hi msg.Kind, h Handler) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, r := range k.ranges {
		if lo <= r.hi && r.lo <= hi {
			panic(fmt.Sprintf("vkernel: handler range [%#x,%#x] overlaps [%#x,%#x]",
				uint16(lo), uint16(hi), uint16(r.lo), uint16(r.hi)))
		}
	}
	k.ranges = append(k.ranges, handlerRange{lo, hi, h})
	sort.Slice(k.ranges, func(i, j int) bool { return k.ranges[i].lo < k.ranges[j].lo })
}

// DefineGroup registers a multicast group with the given member set.
// Groups are identified by small integers agreed on by all nodes.
func (k *Kernel) DefineGroup(id int, members []msg.NodeID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.groups[id] = append([]msg.NodeID(nil), members...)
}

// Group returns the members of a group defined with DefineGroup.
func (k *Kernel) Group(id int) []msg.NodeID {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]msg.NodeID(nil), k.groups[id]...)
}

// Pending is an outstanding asynchronous request started with CallStart
// or MulticastCallStart: the request has been enqueued on the
// transport's coalescing writer, and Wait collects the replies.
type Pending struct {
	k    *Kernel
	ch   chan *msg.Msg
	fail chan error
	want int
}

// register allocates a correlation sequence and a pending-call record
// expecting one reply from each destination in dsts, each tagged with
// the destination's current connection epoch (see pendingCall.deps).
func (k *Kernel) register(dsts []msg.NodeID, inline func(*msg.Msg)) (uint64, *Pending, error) {
	seq := k.seq.Add(1)
	want := len(dsts)
	ch := make(chan *msg.Msg, want)
	fail := make(chan error, 1)
	deps := make([]uint64, len(dsts))
	for i, d := range dsts {
		deps[i] = k.peerEpoch(d)
	}
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return 0, nil, ErrClosed
	}
	k.pending[seq] = &pendingCall{
		ch: ch, want: want, inline: inline, fail: fail,
		dsts: append([]msg.NodeID(nil), dsts...),
		deps: deps,
	}
	k.mu.Unlock()
	return seq, &Pending{k: k, ch: ch, fail: fail, want: want}, nil
}

func (k *Kernel) unregister(seq uint64) {
	k.mu.Lock()
	delete(k.pending, seq)
	k.mu.Unlock()
}

// Wait blocks until every expected reply has arrived and returns them
// in arrival order. Waiting on a nil Pending (a multicast that had no
// remote members) returns immediately.
//
// A request aimed at a peer whose wire dies — the dial failed, a write
// was lost, or the established connection broke — has no reply coming;
// on transports that detect peer death (the mesh), Wait returns
// *transport.ErrPeerDown for it promptly instead of blocking until the
// kernel closes. A request whose peer departs cleanly (goodbye) fails
// with *transport.ErrPeerGone, but only after every reply the peer
// actually sent has been dispatched — an in-flight reply always wins
// over the departure. On the loopback transports a connection only
// dies at shutdown, where Close unblocks every waiter with ErrClosed.
func (p *Pending) Wait() ([]*msg.Msg, error) {
	if p == nil || p.want == 0 {
		return nil, nil
	}
	replies := make([]*msg.Msg, 0, p.want)
	for len(replies) < p.want {
		select {
		case reply := <-p.ch:
			replies = append(replies, reply)
		case err := <-p.fail:
			return replies, err
		case <-p.k.done:
			return replies, ErrClosed
		}
	}
	return replies, nil
}

// CallStart enqueues a request to dst on the transport's coalescing
// writer and returns without waiting — neither for the wire nor for the
// reply. Batched protocol emissions start every destination's request
// this way, Flush once so everything leaves in coalesced frames, and
// then Wait each Pending; distinct destinations thus overlap without
// one goroutine per destination.
func (k *Kernel) CallStart(dst msg.NodeID, kind msg.Kind, payload []byte) (*Pending, error) {
	return k.callStart(dst, kind, payload, nil)
}

func (k *Kernel) callStart(dst msg.NodeID, kind msg.Kind, payload []byte, inline func(*msg.Msg)) (*Pending, error) {
	seq, p, err := k.register([]msg.NodeID{dst}, inline)
	if err != nil {
		return nil, err
	}
	m := &msg.Msg{Kind: kind, To: dst, Seq: seq, Payload: payload}
	if err := k.ep.Send(m); err != nil {
		k.unregister(seq)
		return nil, err
	}
	return p, nil
}

// CallStartOwned is CallStart for a request already marshalled into a
// pooled wire buffer: wb.B must hold msg.HeaderSize reserved bytes
// followed by the complete payload (Builder.Reset + Skip). The kernel
// assigns the correlation sequence, stamps the header in place
// (msg.FillHeader), and hands the buffer to the transport's zero-copy
// enqueue (transport.EncodedSender) — no Marshal copy on the wire
// transports. Ownership of wb transfers unconditionally: whatever the
// outcome, the caller must not touch wb afterwards.
func (k *Kernel) CallStartOwned(dst msg.NodeID, kind msg.Kind, wb *bufpool.Buffer) (*Pending, error) {
	seq, p, err := k.register([]msg.NodeID{dst}, nil)
	if err != nil {
		wb.Release()
		return nil, err
	}
	msg.FillHeader(wb.B, kind, 0, k.node, dst, seq)
	if es, ok := k.ep.(transport.EncodedSender); ok {
		if err := es.SendOwned(wb); err != nil { // transport released wb
			k.unregister(seq)
			return nil, err
		}
		return p, nil
	}
	// Loopback transports take a *msg.Msg whose payload they may retain;
	// copy out of the pooled buffer before releasing it.
	m, merr := msg.Unmarshal(wb.B)
	if merr != nil {
		wb.Release()
		k.unregister(seq)
		return nil, merr
	}
	cp := *m
	cp.Payload = append([]byte(nil), m.Payload...)
	wb.Release()
	if err := k.ep.Send(&cp); err != nil {
		k.unregister(seq)
		return nil, err
	}
	return p, nil
}

// Call sends a request to dst and blocks until the reply arrives. It is
// the V kernel's Send: the caller is suspended until the receiver
// replies.
func (k *Kernel) Call(dst msg.NodeID, kind msg.Kind, payload []byte) (*msg.Msg, error) {
	p, err := k.CallStart(dst, kind, payload)
	if err != nil {
		return nil, err
	}
	replies, err := p.Wait()
	if err != nil {
		return nil, err
	}
	return replies[0], nil
}

// CallInline is Call with a twist needed by coherence protocols: fn is
// executed on the dispatcher goroutine the moment the reply arrives,
// strictly before any message that the peer sent afterwards is
// dispatched. A protocol can therefore install an ownership grant and
// be certain no later fetch or invalidation for the same object can
// observe the pre-install state. fn must be short and must not block on
// network operations. CallInline returns after fn has run.
func (k *Kernel) CallInline(dst msg.NodeID, kind msg.Kind, payload []byte, fn func(*msg.Msg)) error {
	p, err := k.callStart(dst, kind, payload, fn)
	if err != nil {
		return err
	}
	_, err = p.Wait()
	return err
}

// MulticastCallStart enqueues one multicast request to every member
// (excluding this node) and returns a Pending that collects the
// members' replies. Like CallStart it does not wait for the wire: on
// TCP each member's copy coalesces with whatever else is bound for that
// peer. A nil Pending (with nil error) means no remote members.
func (k *Kernel) MulticastCallStart(members []msg.NodeID, kind msg.Kind, payload []byte) (*Pending, error) {
	dst := make([]msg.NodeID, 0, len(members))
	for _, n := range members {
		if n != k.node {
			dst = append(dst, n)
		}
	}
	if len(dst) == 0 {
		return nil, nil
	}
	seq, p, err := k.register(dst, nil)
	if err != nil {
		return nil, err
	}
	m := &msg.Msg{Kind: kind, From: k.node, Seq: seq, Payload: payload}
	if err := k.net.Multicast(m, dst); err != nil {
		k.unregister(seq)
		return nil, err
	}
	return p, nil
}

// MulticastCall sends one multicast message to every member (excluding
// this node) and blocks until each member has replied. It returns the
// replies in arrival order. This is the acknowledged update multicast
// the coherence protocols use: a delayed-update flush does not return
// until every copy holder has installed the update, so synchronization
// that follows the flush is guaranteed to make the updates visible.
func (k *Kernel) MulticastCall(members []msg.NodeID, kind msg.Kind, payload []byte) ([]*msg.Msg, error) {
	p, err := k.MulticastCallStart(members, kind, payload)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// Flush fences this node's outgoing pipeline: it returns once every
// message enqueued before the call has been written to the wire. It
// does not wait for replies — Pending.Wait does that.
func (k *Kernel) Flush() error { return k.ep.Flush() }

// Reply sends a reply to a request received via a handler.
func (k *Kernel) Reply(req *msg.Msg, payload []byte) error {
	m := &msg.Msg{
		Kind:    req.Kind,
		Flags:   msg.FlagReply,
		To:      req.From,
		Seq:     req.Seq,
		Payload: payload,
	}
	return k.ep.Send(m)
}

// Send transmits a one-way message (no reply expected).
func (k *Kernel) Send(dst msg.NodeID, kind msg.Kind, payload []byte) error {
	return k.ep.Send(&msg.Msg{Kind: kind, To: dst, Payload: payload})
}

// Multicast sends a one-way message to every member of group id,
// excluding this node if present. The transport decides whether this
// costs one wire message (hardware multicast) or one per member.
func (k *Kernel) Multicast(group int, kind msg.Kind, payload []byte) error {
	members := k.Group(group)
	return k.MulticastTo(members, kind, payload)
}

// MulticastTo sends a one-way message to an explicit member set,
// excluding this node if present.
func (k *Kernel) MulticastTo(members []msg.NodeID, kind msg.Kind, payload []byte) error {
	dst := make([]msg.NodeID, 0, len(members))
	for _, n := range members {
		if n != k.node {
			dst = append(dst, n)
		}
	}
	if len(dst) == 0 {
		return nil
	}
	m := &msg.Msg{Kind: kind, From: k.node, Payload: payload}
	return k.net.Multicast(m, dst)
}

// Close shuts the kernel down. Pending Calls fail with ErrClosed.
func (k *Kernel) Close() {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return
	}
	k.closed = true
	close(k.done)
	k.mu.Unlock()
}

// Wait blocks until the dispatch loop has exited (after the underlying
// network is closed).
func (k *Kernel) Wait() { k.wg.Wait() }

func (k *Kernel) dispatchLoop() {
	defer k.wg.Done()
	for {
		m, err := k.ep.Recv()
		if err != nil {
			// Network closed: fail all pending calls.
			k.Close()
			return
		}
		if m.IsReply() {
			k.mu.Lock()
			pc, ok := k.pending[m.Seq]
			if ok {
				pc.got++
				// This destination has answered: a later wire death of
				// that peer no longer concerns this call.
				pc.awaiting(m.From, true)
				if pc.got >= pc.want {
					delete(k.pending, m.Seq)
				}
			}
			k.mu.Unlock()
			if ok {
				// Copy payload: it aliases the receive buffer.
				cp := *m
				cp.Payload = append([]byte(nil), m.Payload...)
				if pc.inline != nil {
					// Run before dispatching anything the peer sent
					// later (see CallInline).
					pc.inline(&cp)
				}
				pc.ch <- &cp
			}
			continue
		}
		h := k.lookup(m.Kind)
		if h == nil {
			continue // no handler registered: drop, like an unbound port
		}
		cp := *m
		cp.Payload = append([]byte(nil), m.Payload...)
		k.wg.Add(1)
		go func() {
			defer k.wg.Done()
			h(k, &cp)
		}()
	}
}

func (k *Kernel) lookup(kind msg.Kind) Handler {
	k.mu.Lock()
	defer k.mu.Unlock()
	i := sort.Search(len(k.ranges), func(i int) bool { return k.ranges[i].hi >= kind })
	if i < len(k.ranges) && k.ranges[i].lo <= kind && kind <= k.ranges[i].hi {
		return k.ranges[i].h
	}
	return nil
}
