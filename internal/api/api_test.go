package api_test

import (
	"math"
	"testing"
	"testing/quick"

	"munin/internal/api"
	"munin/internal/core"
	"munin/internal/protocol"
)

// The typed helpers are exercised against a live 1-node system so the
// encode/decode pairing is validated through the real access path.
func TestTypedHelpersRoundTrip(t *testing.T) {
	s, err := core.New(core.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Alloc("vals", 64, protocol.Conventional, protocol.DefaultOptions(), nil)

	f := func(u uint64, i int64, fl float64, u32 uint32) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN; use a representative value
		}
		ok := true
		s.Run(1, func(c api.Ctx) {
			api.WriteU64(c, r, 0, u)
			api.WriteI64(c, r, 8, i)
			api.WriteF64(c, r, 16, fl)
			api.WriteU32(c, r, 24, u32)
			ok = api.ReadU64(c, r, 0) == u &&
				api.ReadI64(c, r, 8) == i &&
				api.ReadF64(c, r, 16) == fl &&
				api.ReadU32(c, r, 24) == u32
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHelpersPreserveNaNBits(t *testing.T) {
	s, err := core.New(core.Config{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := s.Alloc("nan", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	s.Run(1, func(c api.Ctx) {
		api.WriteF64(c, r, 0, math.NaN())
		if !math.IsNaN(api.ReadF64(c, r, 0)) {
			t.Error("NaN not preserved")
		}
	})
}
