// Package api defines the distributed-shared-memory programming
// interface that both the Munin runtime (internal/core) and the Ivy
// baseline (internal/ivy) implement. The study applications are written
// against this interface only, so the identical program runs over either
// system — that is what makes the paper's traffic comparisons apples to
// apples.
package api

import (
	"encoding/binary"
	"math"

	"munin/internal/dlock"
	"munin/internal/protocol"
)

// RegionID names an allocated shared region (an object in Munin, a
// range of pages in Ivy).
type RegionID int

// System is a running DSM instance over a simulated cluster.
type System interface {
	// Name identifies the implementation ("munin", "ivy", ...).
	Name() string
	// Nodes returns the number of processors.
	Nodes() int
	// Alloc creates a shared region. Must be called from setup code
	// before Run. The hint is Munin's type-specific annotation; Ivy
	// ignores it (its coherence is one-size-fits-all, which is the
	// point of the comparison). opts tunes placement and protocol
	// details — including, via opts.Engine, which coherence engine
	// serves the object (Munin's directory machine or the Tardis-style
	// lease engine for read-mostly data); implementations may ignore
	// fields they have no use for.
	Alloc(name string, size int, hint protocol.Annotation, opts protocol.Options, init []byte) RegionID
	// NewLock, NewBarrier and NewAtomic create distributed
	// synchronization objects (shared by both systems; Munin §3.3.8).
	NewLock() dlock.LockID
	NewBarrier() dlock.BarrierID
	NewAtomic() dlock.AtomicID
	// Run executes body on nthreads threads spread over the cluster
	// and waits for them. Each thread's delayed update queue is
	// flushed at thread exit.
	Run(nthreads int, body func(c Ctx))
	// Messages and Bytes report total wire traffic so far.
	Messages() int64
	Bytes() int64
	// Close shuts the system down.
	Close()
}

// Ctx is a thread's handle to shared memory and synchronization. All
// data access goes through Read/Write — the object-granularity stand-in
// for the paper's page-fault interception.
type Ctx interface {
	// ThreadID is this thread's dense index; NThreads the team size;
	// Node the processor it is placed on.
	ThreadID() int
	NThreads() int
	Node() int

	// Read copies from the region into buf, faulting the protocol as
	// needed. Write stores into the region; loose protocols buffer it
	// in the thread's delayed update queue until synchronization.
	Read(r RegionID, off int, buf []byte)
	Write(r RegionID, off int, data []byte)

	// Acquire/Release operate on a distributed lock; Barrier waits
	// for n participants; FetchAdd atomically adds to a distributed
	// counter. Every synchronization operation flushes the thread's
	// delayed update queue first (paper §3.2).
	Acquire(l dlock.LockID)
	Release(l dlock.LockID)
	Barrier(b dlock.BarrierID, n int)
	FetchAdd(a dlock.AtomicID, delta int64) int64

	// Flush forces the delayed update queue out without synchronizing.
	Flush()
}

// --- Typed access helpers -------------------------------------------

// ReadU64 reads a big-endian uint64 at off.
func ReadU64(c Ctx, r RegionID, off int) uint64 {
	var b [8]byte
	c.Read(r, off, b[:])
	return binary.BigEndian.Uint64(b[:])
}

// WriteU64 writes a big-endian uint64 at off.
func WriteU64(c Ctx, r RegionID, off int, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	c.Write(r, off, b[:])
}

// ReadI64 reads a big-endian int64 at off.
func ReadI64(c Ctx, r RegionID, off int) int64 { return int64(ReadU64(c, r, off)) }

// WriteI64 writes a big-endian int64 at off.
func WriteI64(c Ctx, r RegionID, off int, v int64) { WriteU64(c, r, off, uint64(v)) }

// ReadF64 reads a float64 at off.
func ReadF64(c Ctx, r RegionID, off int) float64 {
	return math.Float64frombits(ReadU64(c, r, off))
}

// WriteF64 writes a float64 at off.
func WriteF64(c Ctx, r RegionID, off int, v float64) {
	WriteU64(c, r, off, math.Float64bits(v))
}

// ReadU32 reads a big-endian uint32 at off.
func ReadU32(c Ctx, r RegionID, off int) uint32 {
	var b [4]byte
	c.Read(r, off, b[:])
	return binary.BigEndian.Uint32(b[:])
}

// WriteU32 writes a big-endian uint32 at off.
func WriteU32(c Ctx, r RegionID, off int, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	c.Write(r, off, b[:])
}
