// Package ivy implements the baseline the paper positions itself
// against (§5): Ivy-style shared virtual memory with strict coherence —
// a single directory-based write-invalidate protocol applied uniformly
// at page granularity, with a single writer per page.
//
// Implementation: the shared virtual address space is carved into
// fixed-size pages, each managed as one Conventional (Ivy-like
// write-invalidate) object by the same protocol engine Munin uses. All
// annotations passed to Alloc are ignored — that one-size-fits-all
// treatment is exactly the property under study. Regions are packed
// contiguously (8-byte alignment only), so unrelated data sharing a
// page contends for it: the false sharing the paper calls out ("all
// sharing is on a per-page basis, entailing the possibility of
// significant amounts of false sharing").
package ivy

import (
	"fmt"
	"sync"

	"munin/internal/api"
	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/protocol"
	"munin/internal/threads"
	"munin/internal/transport"
)

// DefaultPageSize matches the 1 KB pages of the era's workstations.
const DefaultPageSize = 1024

// Config configures an Ivy system.
type Config struct {
	// Nodes is the number of simulated processors.
	Nodes int
	// PageSize is the coherence granularity (default 1024 bytes).
	PageSize int
	// Transport and Cost mirror core.Config.
	Transport string
	Cost      transport.CostModel
	// Placement maps thread IDs to nodes; nil = round robin.
	Placement threads.Placement
}

// System is a running Ivy instance. It implements api.System.
type System struct {
	cfg   Config
	clu   *cluster.Cluster
	locks []*dlock.Service
	nodes []*protocol.Node

	mu       sync.Mutex
	regions  []region
	nextAddr int
	numPages int
	nextLck  uint32
	nextBar  uint32
	nextAtm  uint32
	closed   bool
}

type region struct {
	base, size int
}

var _ api.System = (*System)(nil)

// pageObjBase offsets page object IDs away from zero.
const pageObjBase = 1 << 20

// New builds and starts an Ivy system.
func New(cfg Config) (*System, error) {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	clu, err := cluster.New(cluster.Config{
		Nodes: cfg.Nodes, Transport: cfg.Transport, Cost: cfg.Cost,
	})
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, clu: clu, nextLck: 1, nextBar: 1, nextAtm: 1}
	for i := 0; i < cfg.Nodes; i++ {
		k := clu.Kernel(msg.NodeID(i))
		ls := dlock.NewService(k)
		s.locks = append(s.locks, ls)
		s.nodes = append(s.nodes, protocol.NewNode(k, ls))
	}
	return s, nil
}

// Name implements api.System.
func (s *System) Name() string { return "ivy" }

// Nodes implements api.System.
func (s *System) Nodes() int { return s.cfg.Nodes }

// PageSize returns the coherence granularity.
func (s *System) PageSize() int { return s.cfg.PageSize }

// Alloc implements api.System. The annotation and options are ignored:
// Ivy applies the same strict write-invalidate protocol to everything.
func (s *System) Alloc(name string, size int, _ protocol.Annotation, _ protocol.Options, init []byte) api.RegionID {
	if size <= 0 {
		panic(fmt.Sprintf("ivy: alloc %q: size must be positive", name))
	}
	s.mu.Lock()
	base := s.nextAddr
	s.nextAddr += (size + 7) &^ 7 // 8-byte alignment, no page alignment
	id := api.RegionID(len(s.regions))
	s.regions = append(s.regions, region{base: base, size: size})
	needPages := (s.nextAddr + s.cfg.PageSize - 1) / s.cfg.PageSize
	newPages := make([]int, 0)
	for p := s.numPages; p < needPages; p++ {
		newPages = append(newPages, p)
	}
	s.numPages = needPages
	s.mu.Unlock()

	// Install the newly needed pages cluster-wide.
	for _, p := range newPages {
		meta := protocol.Meta{
			ID:    memory.ObjectID(pageObjBase + p),
			Name:  fmt.Sprintf("page-%d", p),
			Size:  s.cfg.PageSize,
			Annot: protocol.Conventional,
			Opts:  protocol.DefaultOptions(),
		}
		s.nodes[0].Alloc(meta, nil)
	}

	if init != nil {
		if len(init) != size {
			panic(fmt.Sprintf("ivy: alloc %q: init length %d != size %d", name, len(init), size))
		}
		// Setup-time initialization through the normal write path.
		q := duq.New()
		s.access(q, 0, id, 0, init, true)
	}
	return id
}

// NewLock implements api.System.
func (s *System) NewLock() dlock.LockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := dlock.LockID(s.nextLck)
	s.nextLck++
	return id
}

// NewBarrier implements api.System.
func (s *System) NewBarrier() dlock.BarrierID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := dlock.BarrierID(s.nextBar)
	s.nextBar++
	return id
}

// NewAtomic implements api.System.
func (s *System) NewAtomic() dlock.AtomicID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := dlock.AtomicID(s.nextAtm)
	s.nextAtm++
	return id
}

// access translates a region access into per-page protocol operations.
func (s *System) access(q *duq.Queue, node int, r api.RegionID, off int, buf []byte, write bool) {
	s.mu.Lock()
	if int(r) < 0 || int(r) >= len(s.regions) {
		s.mu.Unlock()
		panic(fmt.Sprintf("ivy: unknown region %d", r))
	}
	reg := s.regions[r]
	s.mu.Unlock()
	if off < 0 || off+len(buf) > reg.size {
		panic(fmt.Sprintf("ivy: access [%d,%d) out of range for region %d (size %d)",
			off, off+len(buf), r, reg.size))
	}
	addr := reg.base + off
	ps := s.cfg.PageSize
	for len(buf) > 0 {
		page := addr / ps
		inPage := addr % ps
		n := ps - inPage
		if n > len(buf) {
			n = len(buf)
		}
		oid := memory.ObjectID(pageObjBase + page)
		if write {
			s.nodes[node].Write(q, oid, inPage, buf[:n])
		} else {
			s.nodes[node].Read(q, oid, inPage, buf[:n])
		}
		addr += n
		buf = buf[n:]
	}
}

// Run implements api.System.
func (s *System) Run(nthreads int, body func(c api.Ctx)) {
	threads.SPMD(s.cfg.Nodes, nthreads, s.cfg.Placement, func(t *threads.Thread) {
		body(&Ctx{sys: s, thread: t, queue: duq.New()})
	})
}

// Messages implements api.System.
func (s *System) Messages() int64 { return s.clu.Stats().Messages() }

// Bytes implements api.System.
func (s *System) Bytes() int64 { return s.clu.Stats().Bytes() }

// Stats exposes network accounting for the harness.
func (s *System) Stats() *transport.Stats { return s.clu.Stats() }

// Close implements api.System.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.clu.Close()
}

// Ctx is one thread's handle to the Ivy system. Strict coherence means
// there is nothing to flush: every write is globally visible before the
// Write call returns (single-writer invalidation).
type Ctx struct {
	sys    *System
	thread *threads.Thread
	queue  *duq.Queue // unused by Conventional pages; kept for interface symmetry
}

var _ api.Ctx = (*Ctx)(nil)

// ThreadID implements api.Ctx.
func (c *Ctx) ThreadID() int { return c.thread.ID }

// NThreads implements api.Ctx.
func (c *Ctx) NThreads() int { return c.thread.NThreads }

// Node implements api.Ctx.
func (c *Ctx) Node() int { return int(c.thread.Node) }

// Read implements api.Ctx.
func (c *Ctx) Read(r api.RegionID, off int, buf []byte) {
	c.sys.access(c.queue, int(c.thread.Node), r, off, buf, false)
}

// Write implements api.Ctx.
func (c *Ctx) Write(r api.RegionID, off int, data []byte) {
	c.sys.access(c.queue, int(c.thread.Node), r, off, data, true)
}

// Acquire implements api.Ctx.
func (c *Ctx) Acquire(l dlock.LockID) { c.sys.locks[c.thread.Node].Acquire(l) }

// Release implements api.Ctx.
func (c *Ctx) Release(l dlock.LockID) { c.sys.locks[c.thread.Node].Release(l) }

// Barrier implements api.Ctx.
func (c *Ctx) Barrier(b dlock.BarrierID, n int) { c.sys.locks[c.thread.Node].BarrierWait(b, n) }

// FetchAdd implements api.Ctx.
func (c *Ctx) FetchAdd(a dlock.AtomicID, delta int64) int64 {
	return c.sys.locks[c.thread.Node].FetchAdd(a, delta)
}

// Flush implements api.Ctx (no-op: strict coherence has no delayed
// updates).
func (c *Ctx) Flush() {}
