package ivy

import (
	"testing"

	"munin/internal/api"
	"munin/internal/protocol"
)

func newSys(t *testing.T, nodes, pageSize int) *System {
	t.Helper()
	s, err := New(Config{Nodes: nodes, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestStrictCoherenceAcrossNodes(t *testing.T) {
	s := newSys(t, 3, 128)
	r := s.Alloc("x", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	s.Run(3, func(c api.Ctx) {
		if c.ThreadID() == 0 {
			api.WriteU64(c, r, 0, 42)
		}
	})
	s.Run(3, func(c api.Ctx) {
		if got := api.ReadU64(c, r, 0); got != 42 {
			t.Errorf("thread %d read %d, want 42", c.ThreadID(), got)
		}
	})
}

func TestCrossPageAccess(t *testing.T) {
	s := newSys(t, 2, 64)
	// Region bigger than a page; write a value straddling the boundary.
	r := s.Alloc("big", 256, protocol.Conventional, protocol.DefaultOptions(), nil)
	s.Run(1, func(c api.Ctx) {
		api.WriteU64(c, r, 60, 0xdeadbeefcafef00d) // straddles page 0/1
		if got := api.ReadU64(c, r, 60); got != 0xdeadbeefcafef00d {
			t.Errorf("straddling read = %#x", got)
		}
		// Fill the whole region and read it back.
		data := make([]byte, 256)
		for i := range data {
			data[i] = byte(i)
		}
		c.Write(r, 0, data)
		got := make([]byte, 256)
		c.Read(r, 0, got)
		for i := range got {
			if got[i] != byte(i) {
				t.Fatalf("byte %d = %d", i, got[i])
			}
		}
	})
}

func TestInitData(t *testing.T) {
	s := newSys(t, 2, 64)
	init := make([]byte, 100)
	for i := range init {
		init[i] = byte(i * 3)
	}
	r := s.Alloc("init", 100, protocol.Conventional, protocol.DefaultOptions(), init)
	s.Run(2, func(c api.Ctx) {
		got := make([]byte, 100)
		c.Read(r, 0, got)
		for i := range got {
			if got[i] != byte(i*3) {
				t.Errorf("thread %d byte %d = %d", c.ThreadID(), i, got[i])
				return
			}
		}
	})
}

func TestRegionsPackIntoSharedPages(t *testing.T) {
	s := newSys(t, 2, 1024)
	a := s.Alloc("a", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	b := s.Alloc("b", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	// Both regions live in page 0: a write to either contends for the
	// same page. We verify by checking only one page was created.
	s.mu.Lock()
	pages := s.numPages
	s.mu.Unlock()
	if pages != 1 {
		t.Fatalf("2 small regions allocated %d pages, want 1 (packed)", pages)
	}
	_ = a
	_ = b
}

func TestFalseSharingCausesTraffic(t *testing.T) {
	// Two unrelated 8-byte counters in the same page, each written by a
	// different node: every write ping-pongs the page (false sharing).
	// The same workload in Munin with per-counter write-many objects
	// sends only flush diffs. Here we just assert Ivy's pathology.
	s := newSys(t, 2, 1024)
	a := s.Alloc("a", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	b := s.Alloc("b", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	bar := s.NewBarrier()
	before := s.Stats().ByClass()["coherence"]
	const iters = 20
	s.Run(2, func(c api.Ctx) {
		r := a
		if c.ThreadID() == 1 {
			r = b
		}
		for i := 0; i < iters; i++ {
			api.WriteU64(c, r, 0, uint64(i))
			c.Barrier(bar, 2) // forces the writes to interleave
		}
	})
	pingPong := s.Stats().ByClass()["coherence"] - before
	// Every interleaved round moves page ownership: at least one
	// WriteOwn round trip per iteration.
	if pingPong < iters {
		t.Fatalf("false sharing produced only %d coherence messages over %d rounds; expected page ping-pong",
			pingPong, iters)
	}
}

func TestLocksAndBarriersWork(t *testing.T) {
	s := newSys(t, 2, 256)
	ctr := s.Alloc("ctr", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	lock := s.NewLock()
	bar := s.NewBarrier()
	s.Run(4, func(c api.Ctx) {
		c.Acquire(lock)
		api.WriteU64(c, ctr, 0, api.ReadU64(c, ctr, 0)+1)
		c.Release(lock)
		c.Barrier(bar, 4)
		if got := api.ReadU64(c, ctr, 0); got != 4 {
			t.Errorf("after barrier counter = %d, want 4", got)
		}
	})
}

func TestFetchAddWorks(t *testing.T) {
	s := newSys(t, 2, 256)
	at := s.NewAtomic()
	s.Run(4, func(c api.Ctx) {
		c.FetchAdd(at, 1)
	})
	s.Run(1, func(c api.Ctx) {
		if got := c.FetchAdd(at, 0); got != 4 {
			t.Errorf("atomic = %d, want 4", got)
		}
	})
}

func TestOutOfRangePanics(t *testing.T) {
	s := newSys(t, 1, 64)
	r := s.Alloc("x", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Run(1, func(c api.Ctx) { c.Read(r, 4, make([]byte, 8)) })
}

func TestBadAllocPanics(t *testing.T) {
	s := newSys(t, 1, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Alloc("bad", 0, protocol.Conventional, protocol.DefaultOptions(), nil)
}

func TestNameAndPageSize(t *testing.T) {
	s := newSys(t, 1, 0) // 0 -> default
	if s.Name() != "ivy" || s.PageSize() != DefaultPageSize || s.Nodes() != 1 {
		t.Fatalf("basics: %s %d %d", s.Name(), s.PageSize(), s.Nodes())
	}
}
