package mp

import (
	"fmt"
	"sync"

	"munin/internal/msg"
	"munin/internal/vkernel"
)

// Gauss runs hand-coded message-passing forward elimination: rows are
// scattered cyclically, the owner of each pivot row multicasts it, and
// the reduced rows are gathered at the master. This is the minimal
// communication pattern for the algorithm: one broadcast per step plus
// scatter/gather.
func (h *Harness) Gauss(n int, elem func(i, j int) float64) float64 {
	p := h.Nodes()

	// Every node generates its own cyclic rows locally (the scatter is
	// free because the generator is a pure function; a real code would
	// scatter — we charge a scatter message per worker to stay honest).
	// Pivot broadcasts from different owners are not globally ordered
	// on the network, so each carries its step number and receivers
	// buffer by step.
	type nodeState struct {
		rows map[int][]float64
		mu   sync.Mutex
		cond *sync.Cond
		pivs map[int][]float64
	}
	states := make([]*nodeState, p)
	for w := 0; w < p; w++ {
		st := &nodeState{rows: make(map[int][]float64), pivs: make(map[int][]float64)}
		st.cond = sync.NewCond(&st.mu)
		for r := w; r < n; r += p {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = elem(r, j)
			}
			st.rows[r] = row
		}
		states[w] = st
		k := h.kernels[w]
		k.Handle(kindPivot, kindPivot, func(k *vkernel.Kernel, req *msg.Msg) {
			r := msg.NewReader(req.Payload)
			step := r.Int()
			row := bytesToF64s(r.BytesN())
			st.mu.Lock()
			st.pivs[step] = row
			st.cond.Broadcast()
			st.mu.Unlock()
		})
	}
	// Charge the scatter (master → workers: their row blocks).
	for w := 1; w < p; w++ {
		rows := (n + p - 1 - w) / p
		h.kernels[0].Send(msg.NodeID(w), kindScatter, make([]byte, rows*n*8))
	}

	members := make([]msg.NodeID, p)
	for i := range members {
		members[i] = msg.NodeID(i)
	}

	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := states[w]
			for k := 0; k < n-1; k++ {
				owner := k % p
				var piv []float64
				if owner == w {
					piv = st.rows[k]
					payload := msg.NewBuilder(16 + n*8).Int(k).BytesN(f64sToBytes(piv)).Bytes()
					if err := h.kernels[w].MulticastTo(members, kindPivot, payload); err != nil {
						panic(fmt.Sprintf("mp.gauss: %v", err))
					}
				} else {
					st.mu.Lock()
					for st.pivs[k] == nil {
						st.cond.Wait()
					}
					piv = st.pivs[k]
					delete(st.pivs, k)
					st.mu.Unlock()
				}
				for r, row := range st.rows {
					if r <= k {
						continue
					}
					factor := row[k] / piv[k]
					row[k] = 0
					for j := k + 1; j < n; j++ {
						row[j] -= factor * piv[j]
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Gather: workers send their reduced rows to the master.
	sum := 0.0
	for w := 0; w < p; w++ {
		if w != 0 {
			flat := make([]float64, 0, len(states[w].rows)*n)
			for r := w; r < n; r += p {
				flat = append(flat, states[w].rows[r]...)
			}
			h.kernels[msg.NodeID(w)].Send(0, kindGather, f64sToBytes(flat))
		}
		for _, row := range states[w].rows {
			for _, v := range row {
				sum += v
			}
		}
	}
	return sum
}

// Life runs the hand-coded message-passing game of life: bands are
// generated locally, each generation exchanges one boundary row with
// each neighbor (the textbook halo exchange), and live counts are
// gathered at the end.
func (h *Harness) Life(rows, cols, gens int, aliveAtInit func(r, c int) bool) int {
	p := h.Nodes()
	if p > rows {
		panic("mp.life: more nodes than rows")
	}

	// Handlers run concurrently, so halo messages are tagged with their
	// generation and direction and retrieved by key — one-way streams
	// have no ordering guarantee across handler goroutines.
	type halo struct {
		mu   sync.Mutex
		cond *sync.Cond
		rows map[[2]int][]byte // (generation, 0=fromAbove 1=fromBelow)
	}
	halos := make([]*halo, p)
	for w := 0; w < p; w++ {
		hl := &halo{rows: make(map[[2]int][]byte)}
		hl.cond = sync.NewCond(&hl.mu)
		halos[w] = hl
		k := h.kernels[w]
		me := msg.NodeID(w)
		k.Handle(kindHalo, kindHalo, func(k *vkernel.Kernel, req *msg.Msg) {
			r := msg.NewReader(req.Payload)
			gen := r.Int()
			row := append([]byte(nil), r.BytesN()...)
			dir := 1
			if req.From < me {
				dir = 0
			}
			hl.mu.Lock()
			hl.rows[[2]int{gen, dir}] = row
			hl.cond.Broadcast()
			hl.mu.Unlock()
		})
	}
	haloPayload := func(gen int, row []byte) []byte {
		return msg.NewBuilder(12 + len(row)).Int(gen).BytesN(row).Bytes()
	}
	waitHalo := func(w, gen, dir int) []byte {
		hl := halos[w]
		hl.mu.Lock()
		defer hl.mu.Unlock()
		key := [2]int{gen, dir}
		for hl.rows[key] == nil {
			hl.cond.Wait()
		}
		row := hl.rows[key]
		delete(hl.rows, key)
		return row
	}

	counts := make([]int, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := part(rows, p, w)
			nr := hi - lo
			cur := make([]byte, nr*cols)
			for r := 0; r < nr; r++ {
				for c := 0; c < cols; c++ {
					if aliveAtInit(lo+r, c) {
						cur[r*cols+c] = 1
					}
				}
			}
			next := make([]byte, nr*cols)
			dead := make([]byte, cols)
			for g := 0; g < gens; g++ {
				// Halo exchange: send boundary rows, receive neighbors'.
				if w > 0 {
					h.kernels[w].Send(msg.NodeID(w-1), kindHalo, haloPayload(g, cur[:cols]))
				}
				if w < p-1 {
					h.kernels[w].Send(msg.NodeID(w+1), kindHalo, haloPayload(g, cur[(nr-1)*cols:]))
				}
				above, below := dead, dead
				if w > 0 {
					above = waitHalo(w, g, 0)
				}
				if w < p-1 {
					below = waitHalo(w, g, 1)
				}
				rowAt := func(r int) []byte {
					switch {
					case r < 0:
						if w > 0 {
							return above
						}
						return nil
					case r >= nr:
						if w < p-1 {
							return below
						}
						return nil
					default:
						return cur[r*cols : (r+1)*cols]
					}
				}
				for r := 0; r < nr; r++ {
					up, mid, down := rowAt(r-1), rowAt(r), rowAt(r+1)
					for x := 0; x < cols; x++ {
						nn := 0
						for dx := -1; dx <= 1; dx++ {
							xx := x + dx
							if xx < 0 || xx >= cols {
								continue
							}
							if up != nil && up[xx] == 1 {
								nn++
							}
							if down != nil && down[xx] == 1 {
								nn++
							}
							if dx != 0 && mid[xx] == 1 {
								nn++
							}
						}
						alive := mid[x] == 1
						if alive && (nn == 2 || nn == 3) || !alive && nn == 3 {
							next[r*cols+x] = 1
						} else {
							next[r*cols+x] = 0
						}
					}
				}
				cur, next = next, cur
			}
			nAlive := 0
			for _, v := range cur {
				if v == 1 {
					nAlive++
				}
			}
			counts[w] = nAlive
			if w != 0 {
				h.kernels[w].Send(0, kindGather, []byte{byte(nAlive >> 8), byte(nAlive)})
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
