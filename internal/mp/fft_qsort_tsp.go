package mp

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"munin/internal/msg"
	"munin/internal/vkernel"
)

// FFT runs the hand-coded binary-exchange FFT: blocks of the
// bit-reversed signal are distributed, early stages are node-local,
// and each of the log2(P) final stages exchanges whole blocks with the
// partner node — the classic hypercube pattern.
func (h *Harness) FFT(n int, sample func(i int) complex128) float64 {
	p := h.Nodes()
	if n%p != 0 || p&(p-1) != 0 || n&(n-1) != 0 {
		panic("mp.fft: n and p must be powers of two with p | n")
	}
	blockLen := n / p
	bits := 0
	for 1<<bits < n {
		bits++
	}

	// Per-node exchange mailboxes keyed by stage.
	type mailbox struct {
		mu   sync.Mutex
		cond *sync.Cond
		blks map[int][]complex128
	}
	boxes := make([]*mailbox, p)
	for w := 0; w < p; w++ {
		mb := &mailbox{blks: make(map[int][]complex128)}
		mb.cond = sync.NewCond(&mb.mu)
		boxes[w] = mb
		k := h.kernels[w]
		k.Handle(kindBlock, kindBlock, func(k *vkernel.Kernel, req *msg.Msg) {
			r := msg.NewReader(req.Payload)
			stage := r.Int()
			raw := bytesToF64s(r.BytesN())
			blk := make([]complex128, len(raw)/2)
			for i := range blk {
				blk[i] = complex(raw[2*i], raw[2*i+1])
			}
			mb.mu.Lock()
			mb.blks[stage] = blk
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
	}
	sendBlock := func(from, to, stage int, blk []complex128) {
		raw := make([]float64, 2*len(blk))
		for i, v := range blk {
			raw[2*i], raw[2*i+1] = real(v), imag(v)
		}
		payload := msg.NewBuilder(16 + len(raw)*8).Int(stage).BytesN(f64sToBytes(raw)).Bytes()
		if err := h.kernels[from].Send(msg.NodeID(to), kindBlock, payload); err != nil {
			panic(fmt.Sprintf("mp.fft: %v", err))
		}
	}
	waitBlock := func(w, stage int) []complex128 {
		mb := boxes[w]
		mb.mu.Lock()
		defer mb.mu.Unlock()
		for mb.blks[stage] == nil {
			mb.cond.Wait()
		}
		blk := mb.blks[stage]
		delete(mb.blks, stage)
		return blk
	}

	sums := make([]float64, p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * blockLen
			blk := make([]complex128, blockLen)
			for i := range blk {
				// Each node generates its bit-reversed block locally.
				g := base + i
				blk[i] = 0
				// find source sample s with reverse(s)=g
				s := reverseBitsMP(g, bits)
				blk[i] = sample(s)
			}
			stage := 0
			for ln := 2; ln <= n; ln <<= 1 {
				half := ln / 2
				ang := -2 * math.Pi / float64(ln)
				wl := complex(math.Cos(ang), math.Sin(ang))
				if ln <= blockLen {
					// Node-local butterflies.
					for b := 0; b < blockLen; b += ln {
						wv := complex(1, 0)
						for j := 0; j < half; j++ {
							u := blk[b+j]
							v := blk[b+j+half] * wv
							blk[b+j] = u + v
							blk[b+j+half] = u - v
							wv *= wl
						}
					}
				} else {
					// Cross-node stage: exchange blocks with partner.
					partner := w ^ (half / blockLen)
					sendBlock(w, partner, stage, blk)
					other := waitBlock(w, stage)
					for i := range blk {
						g := base + i
						j := g & (half - 1)
						wv := cpow(wl, j)
						if g&half == 0 {
							blk[i] = blk[i] + other[i]*wv
						} else {
							blk[i] = other[i] - blk[i]*wv
						}
					}
				}
				stage++
			}
			s := 0.0
			for _, v := range blk {
				s += math.Hypot(real(v), imag(v))
			}
			sums[w] = s
			if w != 0 {
				h.kernels[w].Send(0, kindGather, f64sToBytes([]float64{s}))
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}

func reverseBitsMP(x, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

func cpow(w complex128, k int) complex128 {
	r := complex(1, 0)
	for ; k > 0; k >>= 1 {
		if k&1 == 1 {
			r *= w
		}
		w *= w
	}
	return r
}

// QSort runs the hand-coded parallel sort: blocks are sorted locally on
// each node and the sorted runs are gathered and merged at the master —
// 2(P-1) messages total.
func (h *Harness) QSort(n int, value func(i int) int64) int64 {
	p := h.Nodes()

	type sorted struct {
		mu   sync.Mutex
		cond *sync.Cond
		runs map[int][]int64
	}
	st := &sorted{runs: make(map[int][]int64)}
	st.cond = sync.NewCond(&st.mu)
	h.kernels[0].Handle(kindGather, kindGather, func(k *vkernel.Kernel, req *msg.Msg) {
		r := msg.NewReader(req.Payload)
		from := r.Int()
		raw := r.BytesN()
		vals := make([]int64, len(raw)/8)
		for i := range vals {
			vals[i] = int64(uint64(raw[i*8])<<56 | uint64(raw[i*8+1])<<48 |
				uint64(raw[i*8+2])<<40 | uint64(raw[i*8+3])<<32 |
				uint64(raw[i*8+4])<<24 | uint64(raw[i*8+5])<<16 |
				uint64(raw[i*8+6])<<8 | uint64(raw[i*8+7]))
		}
		st.mu.Lock()
		st.runs[from] = vals
		st.cond.Broadcast()
		st.mu.Unlock()
	})

	// Charge the scatter (workers' blocks) and run local sorts.
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := part(n, p, w)
		if w != 0 {
			h.kernels[0].Send(msg.NodeID(w), kindScatter, make([]byte, (hi-lo)*8))
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			vals := make([]int64, hi-lo)
			for i := range vals {
				vals[i] = value(lo + i)
			}
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			if w == 0 {
				st.mu.Lock()
				st.runs[0] = vals
				st.cond.Broadcast()
				st.mu.Unlock()
				return
			}
			buf := make([]byte, len(vals)*8)
			for i, v := range vals {
				u := uint64(v)
				buf[i*8], buf[i*8+1], buf[i*8+2], buf[i*8+3] = byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32)
				buf[i*8+4], buf[i*8+5], buf[i*8+6], buf[i*8+7] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
			}
			payload := msg.NewBuilder(16 + len(buf)).Int(w).BytesN(buf).Bytes()
			h.kernels[w].Send(0, kindGather, payload)
		}(w, lo, hi)
	}
	wg.Wait()

	// Master: wait for all runs, P-way merge, positional checksum.
	st.mu.Lock()
	for len(st.runs) < p {
		st.cond.Wait()
	}
	runs := make([][]int64, 0, p)
	for w := 0; w < p; w++ {
		runs = append(runs, st.runs[w])
	}
	st.mu.Unlock()

	var sum int64
	idx := make([]int, p)
	for pos := 1; pos <= n; pos++ {
		best, bestRun := int64(math.MaxInt64), -1
		for r := 0; r < p; r++ {
			if idx[r] < len(runs[r]) && runs[r][idx[r]] < best {
				best, bestRun = runs[r][idx[r]], r
			}
		}
		idx[bestRun]++
		sum += int64(pos) * best
	}
	return sum
}

// TSP runs the hand-coded master-worker branch and bound: the master
// expands the tree to a fixed depth and hands each frontier node to a
// worker together with the current bound; workers search their subtree
// locally and reply with any improvement.
func (h *Harness) TSP(cities, cutoff int, dist func(i, j int) int64) int64 {
	p := h.Nodes()
	n := cities
	d := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = dist(i, j)
		}
	}

	// Workers: solve a subtree given (path, visited, cost, bound).
	for w := 1; w < p; w++ {
		k := h.kernels[w]
		k.Handle(kindWork, kindWork, func(k *vkernel.Kernel, req *msg.Msg) {
			r := msg.NewReader(req.Payload)
			depth := r.Int()
			visited := r.I64()
			cost := r.I64()
			bound := r.I64()
			path := make([]int, depth)
			for i := range path {
				path[i] = r.Int()
			}
			best := tspSubtree(n, d, path, visited, cost, bound)
			k.Reply(req, msg.NewBuilder(8).I64(best).Bytes())
		})
	}

	// Master: BFS expansion to the cutoff depth.
	type item struct {
		path    []int
		visited int64
		cost    int64
	}
	frontier := []item{{path: []int{0}, visited: 1, cost: 0}}
	for depth := 1; depth < cutoff; depth++ {
		var next []item
		for _, it := range frontier {
			last := it.path[len(it.path)-1]
			for c := 1; c < n; c++ {
				if it.visited&(1<<c) != 0 {
					continue
				}
				next = append(next, item{
					path:    append(append([]int(nil), it.path...), c),
					visited: it.visited | 1<<c,
					cost:    it.cost + d[last*n+c],
				})
			}
		}
		frontier = next
	}

	best := int64(1) << 62
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, p-1+1)
	for i, it := range frontier {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, it item) {
			defer wg.Done()
			defer func() { <-sem }()
			mu.Lock()
			bound := best
			mu.Unlock()
			if it.cost >= bound {
				return
			}
			var got int64
			if p == 1 {
				got = tspSubtree(n, d, it.path, it.visited, it.cost, bound)
			} else {
				w := 1 + i%(p-1)
				b := msg.NewBuilder(64)
				b.Int(len(it.path)).I64(it.visited).I64(it.cost).I64(bound)
				for _, c := range it.path {
					b.Int(c)
				}
				reply, err := h.kernels[0].Call(msg.NodeID(w), kindWork, b.Bytes())
				if err != nil {
					panic(fmt.Sprintf("mp.tsp: %v", err))
				}
				got = msg.NewReader(reply.Payload).I64()
			}
			mu.Lock()
			if got < best {
				best = got
			}
			mu.Unlock()
		}(i, it)
	}
	wg.Wait()
	return best
}

// tspSubtree exhaustively searches below a partial tour.
func tspSubtree(n int, d []int64, path []int, visited, cost, bound int64) int64 {
	if len(path) == n {
		total := cost + d[path[n-1]*n+path[0]]
		if total < bound {
			return total
		}
		return bound
	}
	last := path[len(path)-1]
	for next := 1; next < n; next++ {
		if visited&(1<<next) != 0 {
			continue
		}
		ncost := cost + d[last*n+next]
		if ncost >= bound {
			continue
		}
		bound = tspSubtree(n, d, append(path, next), visited|1<<next, ncost, bound)
	}
	return bound
}
