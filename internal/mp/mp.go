// Package mp contains hand-coded message-passing implementations of the
// study applications — the traffic bar the paper says delayed updates
// should approach: "ideally, this would reduce the amount of network
// traffic to that achieved by a hand-coded message passing
// implementation". Each program computes exactly the same result as its
// internal/apps counterpart, using explicit sends over the same cluster
// substrate, so message and byte counts are directly comparable.
package mp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"munin/internal/cluster"
	"munin/internal/msg"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// Message kinds for the hand-coded programs.
const (
	kindScatter = msg.KindAppBase + 0 // Call: initial data distribution
	kindPivot   = msg.KindAppBase + 1 // Send/multicast: broadcast row/update
	kindGather  = msg.KindAppBase + 2 // Call: collect results
	kindHalo    = msg.KindAppBase + 3 // Send: boundary row exchange
	kindWork    = msg.KindAppBase + 4 // Call: work request / response
	kindBlock   = msg.KindAppBase + 6 // Call: bulk block transfer
)

// Harness is a running message-passing cluster: node 0 is the master.
type Harness struct {
	clu     *cluster.Cluster
	kernels []*vkernel.Kernel
}

// NewHarness builds an n-node message-passing cluster.
func NewHarness(nodes int, cost transport.CostModel) (*Harness, error) {
	clu, err := cluster.New(cluster.Config{Nodes: nodes, Cost: cost})
	if err != nil {
		return nil, err
	}
	h := &Harness{clu: clu}
	for i := 0; i < nodes; i++ {
		h.kernels = append(h.kernels, clu.Kernel(msg.NodeID(i)))
	}
	return h, nil
}

// Messages returns total wire messages so far.
func (h *Harness) Messages() int64 { return h.clu.Stats().Messages() }

// Bytes returns total wire bytes so far.
func (h *Harness) Bytes() int64 { return h.clu.Stats().Bytes() }

// Nodes returns the cluster size.
func (h *Harness) Nodes() int { return len(h.kernels) }

// Close shuts the cluster down.
func (h *Harness) Close() { h.clu.Close() }

func f64sToBytes(v []float64) []byte {
	b := make([]byte, len(v)*8)
	for i, x := range v {
		binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

func bytesToF64s(b []byte) []float64 {
	v := make([]float64, len(b)/8)
	for i := range v {
		v[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	return v
}

func part(n, p, i int) (lo, hi int) {
	per := n / p
	rem := n % p
	lo = i * per
	if i < rem {
		lo += i
	} else {
		lo += rem
	}
	hi = lo + per
	if i < rem {
		hi++
	}
	return lo, hi
}

// MatMul runs the hand-coded message-passing matrix multiply: scatter A
// row blocks + full B, compute, gather C blocks. elemA/elemB generate
// the inputs at the master (node 0).
func (h *Harness) MatMul(n int, elemA, elemB func(i, j int) float64) float64 {
	p := h.Nodes()
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = elemA(i, j)
			b[i*n+j] = elemB(i, j)
		}
	}
	c := make([]float64, n*n)

	compute := func(lo, hi int, arows, bmat []float64) []float64 {
		out := make([]float64, (hi-lo)*n)
		for i := 0; i < hi-lo; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += arows[i*n+k] * bmat[k*n+j]
				}
				out[i*n+j] = sum
			}
		}
		return out
	}

	// Worker handlers first (messages to unregistered kinds would be
	// dropped), then one round trip per worker: the minimal pattern —
	// scatter A rows + B, workers reply with their C block.
	for w := 1; w < p; w++ {
		k := h.kernels[w]
		k.Handle(kindBlock, kindBlock, func(k *vkernel.Kernel, req *msg.Msg) {
			r := msg.NewReader(req.Payload)
			lo := r.Int()
			hi := r.Int()
			arows := bytesToF64s(r.BytesN())
			bmat := bytesToF64s(r.BytesN())
			out := compute(lo, hi, arows, bmat)
			k.Reply(req, msg.NewBuilder(len(out)*8+8).BytesN(f64sToBytes(out)).Bytes())
		})
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 1; w < p; w++ {
		lo, hi := part(n, p, w)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			payload := msg.NewBuilder(16 + (hi-lo)*n*8 + n*n*8).
				Int(lo).Int(hi).
				BytesN(f64sToBytes(a[lo*n : hi*n])).
				BytesN(f64sToBytes(b)).Bytes()
			reply, err := h.kernels[0].Call(msg.NodeID(w), kindBlock, payload)
			if err != nil {
				panic(fmt.Sprintf("mp.matmul: %v", err))
			}
			out := bytesToF64s(msg.NewReader(reply.Payload).BytesN())
			mu.Lock()
			copy(c[lo*n:], out)
			mu.Unlock()
		}(w, lo, hi)
	}
	lo0, hi0 := part(n, p, 0)
	copy(c[lo0*n:], compute(lo0, hi0, a[lo0*n:hi0*n], b))
	wg.Wait()

	sum := 0.0
	for _, v := range c {
		sum += v
	}
	return sum
}
