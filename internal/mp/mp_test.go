package mp

import (
	"testing"

	"munin/internal/apps"
	"munin/internal/transport"
)

func newH(t *testing.T, nodes int) *Harness {
	t.Helper()
	h, err := NewHarness(nodes, transport.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func TestMatMulMatchesReference(t *testing.T) {
	m := apps.MatMul{N: 24, Threads: 4, Seed: 1}
	h := newH(t, 4)
	got := h.MatMul(m.N, m.ElemA, m.ElemB)
	want := m.Sequential()
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("mp matmul = %v, want %v", got, want)
	}
	if h.Messages() == 0 {
		t.Fatal("no messages counted")
	}
}

func TestGaussMatchesReference(t *testing.T) {
	g := apps.Gauss{N: 20, Threads: 4, Seed: 2}
	h := newH(t, 4)
	got := h.Gauss(g.N, g.Elem)
	want := g.Sequential()
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("mp gauss = %v, want %v", got, want)
	}
}

func TestLifeMatchesReference(t *testing.T) {
	l := apps.Life{Rows: 24, Cols: 16, Generations: 5, Threads: 4, Seed: 6}
	h := newH(t, 4)
	got := h.Life(l.Rows, l.Cols, l.Generations, l.AliveAtInit)
	want := l.Sequential()
	if got != want {
		t.Fatalf("mp life = %d, want %d", got, want)
	}
}

func TestSingleNodeDegenerate(t *testing.T) {
	m := apps.MatMul{N: 8, Threads: 1, Seed: 3}
	h := newH(t, 1)
	got := h.MatMul(m.N, m.ElemA, m.ElemB)
	if diff := got - m.Sequential(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("1-node mp matmul = %v", got)
	}
	if h.Messages() != 0 {
		t.Fatalf("1-node matmul sent %d messages, want 0", h.Messages())
	}
}

func TestTrafficFarBelowDSM(t *testing.T) {
	// The point of the baseline: hand-coded MP gauss should use at
	// most a few messages per step (1 broadcast) + scatter/gather.
	g := apps.Gauss{N: 20, Threads: 4, Seed: 2}
	h := newH(t, 4)
	h.Gauss(g.N, g.Elem)
	msgs := h.Messages()
	// scatter(3) + broadcasts(19, multicast=1 wire msg each) + gather(3)
	if msgs > 40 {
		t.Fatalf("mp gauss used %d messages, want <= 40", msgs)
	}
}
