package mp

import (
	"testing"

	"munin/internal/apps"
)

func TestFFTMatchesReference(t *testing.T) {
	f := apps.FFT{N: 128, Threads: 4, Seed: 3}
	h := newH(t, 4)
	got := h.FFT(f.N, f.Sample)
	want := f.Sequential()
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("mp fft = %v, want %v", got, want)
	}
	if h.Messages() == 0 {
		t.Fatal("no exchange messages counted")
	}
}

func TestFFTSingleNode(t *testing.T) {
	f := apps.FFT{N: 64, Threads: 1, Seed: 9}
	h := newH(t, 1)
	got := h.FFT(f.N, f.Sample)
	if diff := got - f.Sequential(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("1-node mp fft = %v, want %v", got, f.Sequential())
	}
	if h.Messages() != 0 {
		t.Fatalf("1-node fft sent %d messages", h.Messages())
	}
}

func TestQSortMatchesReference(t *testing.T) {
	q := apps.QSort{N: 500, Threads: 4, Seed: 4}
	h := newH(t, 4)
	got := h.QSort(q.N, q.Value)
	want := q.Sequential()
	if got != want {
		t.Fatalf("mp qsort = %d, want %d", got, want)
	}
	// Sample-sort traffic: scatter (P-1) + gather (P-1) only.
	if h.Messages() > 8 {
		t.Fatalf("mp qsort used %d messages, want <= 8", h.Messages())
	}
}

func TestTSPMatchesReference(t *testing.T) {
	p := apps.TSP{Cities: 8, Threads: 4, Seed: 5}
	h := newH(t, 4)
	got := h.TSP(p.Cities, 3, p.Dist)
	want := p.Sequential()
	if got != want {
		t.Fatalf("mp tsp = %d, want %d", got, want)
	}
}

func TestTSPSingleNode(t *testing.T) {
	p := apps.TSP{Cities: 7, Threads: 1, Seed: 11}
	h := newH(t, 1)
	if got := h.TSP(p.Cities, 2, p.Dist); got != p.Sequential() {
		t.Fatalf("1-node mp tsp = %d, want %d", got, p.Sequential())
	}
}
