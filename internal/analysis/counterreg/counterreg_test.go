package counterreg_test

import (
	"testing"

	"munin/internal/analysis/counterreg"
	"munin/internal/analysis/framework"
)

func TestCounterreg(t *testing.T) {
	framework.RunFixture(t, counterreg.Analyzer, "testdata/src/a")
}
