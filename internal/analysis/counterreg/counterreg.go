// Package counterreg implements the muninvet analyzer that keeps
// counter names honest. Counter names are load-bearing strings: the
// benchmark harness reads them back, the ARCHITECTURE.md table
// documents them, and perfdiff gates derived metrics — so a typo in
// an Inc/Add site silently creates a new counter and zeroes whatever
// was reading the old one.
//
// The rule: every compile-time-constant name reaching a stats.Set
// sink (Add, Get, Counter) or a vkernel Counters() map index must be
// registered in internal/stats/names.go, and call sites in production
// code must spell it via the registry constant, not a string literal.
// Dynamic names (per-class families built from ClassOf etc.) are
// outside the analyzer's reach and are covered by the registry's
// parametrized families instead.
package counterreg

import (
	"go/ast"

	"munin/internal/analysis/framework"
	"munin/internal/stats"
)

// Analyzer is the counterreg analyzer.
var Analyzer = &framework.Analyzer{
	Name: "counterreg",
	Doc:  "counter names must come from the internal/stats registry: no unregistered or ad-hoc literal counter names",
	Run:  run,
}

const statsPath = "munin/internal/stats"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, nn)
			case *ast.IndexExpr:
				checkCountersIndex(pass, nn)
			}
			return true
		})
	}
	return nil
}

// checkCall validates the name argument of stats.Set sinks.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sink := framework.FuncIs(fn, statsPath, "Set", "Add") ||
		framework.FuncIs(fn, statsPath, "Set", "Get") ||
		framework.FuncIs(fn, statsPath, "Set", "Counter")
	if !sink {
		return
	}
	name, ok := framework.StringArg(pass.TypesInfo, call, 0)
	if !ok {
		return // dynamic name: covered by the registry's families
	}
	switch {
	case !stats.IsRegistered(name):
		pass.Reportf(call.Args[0].Pos(), "counter name %q is not registered in internal/stats/names.go: register it (and document it in the ARCHITECTURE.md counters table) or fix the typo", name)
	case framework.IsStringLiteral(call, 0) && pass.Pkg.Path() != statsPath:
		pass.Reportf(call.Args[0].Pos(), "counter name %q spelled as a literal: use the stats registry constant so renames stay atomic", name)
	}
}

// checkCountersIndex validates literal keys indexing a vkernel
// Counters() snapshot — the read-side equivalent of an Add sink.
func checkCountersIndex(pass *framework.Pass, idx *ast.IndexExpr) {
	call, ok := ast.Unparen(idx.X).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Counters" {
		return
	}
	name, ok := framework.StringValue(pass.TypesInfo, idx.Index)
	if !ok {
		return
	}
	if !stats.IsRegistered(name) {
		pass.Reportf(idx.Index.Pos(), "counter name %q read from a Counters() snapshot is not registered in internal/stats/names.go", name)
	}
}
