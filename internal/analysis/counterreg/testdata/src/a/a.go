// Fixture for the counterreg analyzer, run against the real
// internal/stats registry.
package a

import "munin/internal/stats"

// Counters mimics the vkernel snapshot accessor the index check keys
// on (matched by name).
func Counters() map[string]int64 { return nil }

func sinks(s *stats.Set) {
	s.Add("munin.bogus.counter", 1) // want `counter name "munin.bogus.counter" is not registered`
	s.Add("reads", 1)               // want `counter name "reads" spelled as a literal`
	s.Add(stats.CReads, 1)
	s.Add(stats.CDiffBytes, 128)
	_ = s.Get(stats.CWrites)
	_ = s.Get("diff.snet") // want `counter name "diff.snet" is not registered`
	s.Counter(stats.CTwin).Add(1)
}

func dynamic(s *stats.Set, class string) {
	// Dynamic names are the registry's parametrized families; the
	// analyzer leaves non-constant arguments alone.
	s.Add(class+".bytes", 64)
}

func reads() int64 {
	total := Counters()[stats.CReads]
	total += Counters()["munin.bogus"] // want `counter name "munin.bogus" read from a Counters\(\) snapshot is not registered`
	return total
}
