// Fixture for the lockorder analyzer. Local struct mutexes stand in
// for the repo's long-lived locks: they are outside facts.LockLevels,
// so the cycle and same-key-nesting rules apply while the hierarchy
// rule stays out of the way.
package a

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// lockB acquires B.mu; callers holding other locks pick this up as a
// summary edge ("via call to a.lockB").
func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

// cycleAB holds A.mu while a callee acquires B.mu — one direction of
// the cycle, observed through the interprocedural summary.
func cycleAB(a *A, b *B) {
	a.mu.Lock()
	lockB(b) // want `potential deadlock: lock-order cycle among \{a\.A\.mu; a\.B\.mu\}`
	a.mu.Unlock()
}

// cycleBA holds B.mu while acquiring A.mu directly — the opposite
// direction, closing the cycle.
func cycleBA(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type obj struct{ mu sync.Mutex }

// sameKeyNest holds one obj.mu while acquiring another instance of the
// same field: field keying cannot order instances.
func sameKeyNest(o1, o2 *obj) {
	o1.mu.Lock()
	o2.mu.Lock() // want `nested acquisition of a\.obj\.mu while an instance of it is already held`
	o2.mu.Unlock()
	o1.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// orderedCD and orderedCD2 nest C.mu before D.mu consistently: a
// one-directional edge is fine.
func orderedCD(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func orderedCD2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}
