package lockorder_test

import (
	"testing"

	"munin/internal/analysis/framework"
	"munin/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	framework.RunFixture(t, lockorder.Analyzer, "testdata/src/a")
}
