// Package lockorder implements the whole-program lock-acquisition-order
// analyzer. It constructs the global mutex acquisition-order graph over
// every analyzed package — nodes are lock sites keyed by struct field
// (framework.LockKeyOf collapses every instance of protocol.Obj.mu to
// one node), edges mean "held A while acquiring B", including
// acquisitions that happen one or more calls below the holding frame
// (via the framework's bottom-up Acquires summaries) — and enforces two
// rules on it:
//
//   - The graph must be acyclic. A cycle means two executions can
//     acquire the same pair of locks in opposite orders — the classic
//     deadlock shape a 256-member mesh turns from "unlikely" into
//     "weekly". Every cycle is reported once, with the witness path
//     for each edge (who held what where, and through which call the
//     nested acquisition happens).
//
//   - Edges between locks in the documented hierarchy
//     (facts.LockLevels) must go from a strictly lower level to a
//     higher one. The hierarchy pins the order the tree actually uses,
//     so reordering a guarded pair fails the build immediately — even
//     before a second witness path closes a cycle.
//
// Same-key nesting (holding one protocol.Obj.mu while acquiring
// another instance of it) is reported as its own diagnostic: field
// keying cannot distinguish instances, and instance-order discipline
// (sorted-ID loops) is exactly what the lockhold fence rules exist
// for, so any new same-key nesting needs that treatment or a
// restructure.
//
// The analyzer also emits the graph as a DOT artifact
// ("lockorder.dot"), uploaded by CI and embedded in
// docs/ARCHITECTURE.md, so the global order is documentation that
// cannot go stale.
package lockorder

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"munin/internal/analysis/facts"
	"munin/internal/analysis/framework"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &framework.Analyzer{
	Name:       "lockorder",
	Doc:        "whole-program mutex acquisition-order graph: no cycles, documented hierarchy respected, same-key nesting flagged",
	RunProgram: run,
}

// edge is one "held From while acquiring To" observation with its
// first witness.
type edge struct {
	from, to string
	pos      token.Pos           // the acquiring site (or the call leading to it)
	fn       string              // function holding the lock
	via      *framework.FuncNode // callee the acquisition happens through (nil = direct)
	heldAt   token.Pos           // where From was acquired
}

type graph struct {
	edges map[[2]string]*edge
	nodes map[string]bool
}

func newGraph() *graph {
	return &graph{edges: map[[2]string]*edge{}, nodes: map[string]bool{}}
}

func (g *graph) add(e *edge) {
	g.nodes[e.from] = true
	g.nodes[e.to] = true
	k := [2]string{e.from, e.to}
	if _, ok := g.edges[k]; !ok {
		g.edges[k] = e
	}
}

func run(pp *framework.ProgramPass) error {
	g := newGraph()

	// Walk every declared function, then every function literal
	// (handlers, goroutine bodies) with its own empty lock set.
	for _, node := range pp.Prog.Nodes {
		collectEdges(pp, node.Pkg, node.Decl.Body, node.Name(), g)
	}
	for _, pkg := range pp.Prog.Pkgs {
		for _, file := range pkg.Files {
			collectFuncLits(pp, pkg, file, g)
		}
	}

	reportSameKeyNesting(pp, g)
	reportHierarchyViolations(pp, g)
	reportCycles(pp, g)

	pp.SetArtifact("lockorder.dot", dot(g))
	return nil
}

// collectEdges walks one body with the branch-sensitive lock walker,
// adding direct edges at every acquisition and summary edges at every
// call made while holding locks.
func collectEdges(pp *framework.ProgramPass, pkg *framework.Package, body *ast.BlockStmt, fname string, g *graph) {
	w := &framework.LockWalker{
		Info: pkg.Info,
		OnAcquire: func(key string, call *ast.CallExpr, held map[string]token.Pos) {
			if key == "" {
				return
			}
			for from, at := range held {
				g.add(&edge{from: from, to: key, pos: call.Pos(), fn: fname, heldAt: at})
			}
		},
		OnCall: func(call *ast.CallExpr, held map[string]token.Pos) {
			if len(held) == 0 {
				return
			}
			callees, _ := pp.Prog.Resolve(pkg.Info, call)
			for _, callee := range callees {
				for key, acq := range callee.Summary.Acquires {
					for from, at := range held {
						g.add(&edge{from: from, to: key, pos: call.Pos(), fn: fname, via: callee, heldAt: at})
					}
					_ = acq
				}
			}
		},
	}
	w.Walk(body)
}

// collectFuncLits walks function literals as their own roots: their
// bodies run under an empty lock set of their own (the lock walker of
// the enclosing function skips them).
func collectFuncLits(pp *framework.ProgramPass, pkg *framework.Package, file *ast.File, g *graph) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := pp.Fset.Position(lit.Pos())
		collectEdges(pp, pkg, lit.Body, fmt.Sprintf("func literal at %s:%d", pos.Filename, pos.Line), g)
		return true
	})
}

// reportSameKeyNesting flags edges A→A: two instances of the same lock
// field nested. Fence mutexes are exempt — their sorted-ID loop
// discipline is enforced by lockhold.
func reportSameKeyNesting(pp *framework.ProgramPass, g *graph) {
	for _, e := range sortedEdges(g) {
		if e.from != e.to || facts.IsFenceKey(e.from) {
			continue
		}
		pp.Reportf(e.pos, "nested acquisition of %s while an instance of it is already held (in %s%s): same-field nesting cannot be ordered by the hierarchy — use a sorted-ID loop or restructure",
			framework.LockLabel(e.from), e.fn, viaSuffix(e))
	}
}

// reportHierarchyViolations flags edges that contradict the documented
// lock hierarchy.
func reportHierarchyViolations(pp *framework.ProgramPass, g *graph) {
	for _, e := range sortedEdges(g) {
		if e.from == e.to {
			continue
		}
		lf, okf := facts.LockLevels[e.from]
		lt, okt := facts.LockLevels[e.to]
		if !okf || !okt {
			continue
		}
		if lf > lt {
			pp.Reportf(e.pos, "lock order violation: %s (level %d) acquired while holding %s (level %d) in %s%s — the documented hierarchy (facts.LockLevels) requires the opposite order",
				framework.LockLabel(e.to), lt, framework.LockLabel(e.from), lf, e.fn, viaSuffix(e))
		} else if lf == lt {
			pp.Reportf(e.pos, "unordered lock pair: %s and %s share hierarchy level %d but nest in %s%s — move one to its own level in facts.LockLevels or restructure",
				framework.LockLabel(e.from), framework.LockLabel(e.to), lf, e.fn, viaSuffix(e))
		}
	}
}

// reportCycles finds strongly connected components of size > 1 and
// reports each once with both witness paths.
func reportCycles(pp *framework.ProgramPass, g *graph) {
	adj := map[string][]string{}
	for _, e := range sortedEdges(g) {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	for _, scc := range stringSCCs(g, adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		// Reconstruct one concrete cycle through the SCC for the
		// message, then attach every in-SCC edge's witness.
		in := map[string]bool{}
		for _, k := range scc {
			in[k] = true
		}
		var witnesses []string
		var first *edge
		for _, e := range sortedEdges(g) {
			if e.from != e.to && in[e.from] && in[e.to] {
				if first == nil {
					first = e
				}
				p := pp.Fset.Position(e.pos)
				witnesses = append(witnesses, fmt.Sprintf("%s held (since %s:%d) while acquiring %s at %s:%d in %s%s",
					framework.LockLabel(e.from), shortFile(pp, e.heldAt), pp.Fset.Position(e.heldAt).Line,
					framework.LockLabel(e.to), shortFile2(p), p.Line, e.fn, viaSuffix(e)))
			}
		}
		labels := make([]string, len(scc))
		for i, k := range scc {
			labels[i] = framework.LockLabel(k)
		}
		pp.Reportf(first.pos, "potential deadlock: lock-order cycle among {%s}; witness paths: %s",
			join(labels), join(witnesses))
	}
}

func viaSuffix(e *edge) string {
	if e.via == nil {
		return ""
	}
	return fmt.Sprintf(" via call to %s", e.via.Name())
}

func shortFile(pp *framework.ProgramPass, pos token.Pos) string {
	return shortFile2(pp.Fset.Position(pos))
}

func shortFile2(p token.Position) string {
	f := p.Filename
	for i := len(f) - 1; i >= 0; i-- {
		if f[i] == '/' {
			return f[i+1:]
		}
	}
	return f
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

func sortedEdges(g *graph) []*edge {
	out := make([]*edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// stringSCCs runs Tarjan over the key graph.
func stringSCCs(g *graph, adj map[string][]string) [][]string {
	var keys []string
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	counter := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		lowlink[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return sccs
}

// dot renders the acquisition-order graph as Graphviz DOT, levels as
// clusters where documented, deterministic order throughout.
func dot(g *graph) []byte {
	var b bytes.Buffer
	b.WriteString("// Lock acquisition-order graph over the analyzed packages.\n")
	b.WriteString("// Generated by muninvet's lockorder analyzer; an edge A -> B means\n")
	b.WriteString("// \"some execution holds A while acquiring B\" (possibly through calls).\n")
	b.WriteString("digraph lockorder {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	var keys []string
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		level, ok := facts.LockLevels[k]
		if ok {
			fmt.Fprintf(&b, "  %q [label=%q, xlabel=\"L%d\"];\n", framework.LockLabel(k), framework.LockLabel(k), level)
		} else {
			fmt.Fprintf(&b, "  %q [label=%q, style=dashed];\n", framework.LockLabel(k), framework.LockLabel(k))
		}
	}
	for _, e := range sortedEdges(g) {
		attr := ""
		if e.via != nil {
			attr = fmt.Sprintf(" [label=%q, style=dotted]", "via "+e.via.Name())
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", framework.LockLabel(e.from), framework.LockLabel(e.to), attr)
	}
	b.WriteString("}\n")
	return b.Bytes()
}
