// Package pooledbuf implements the muninvet analyzer that enforces the
// bufpool ownership discipline from docs/ARCHITECTURE.md ("Buffer
// ownership & lifecycle"): a *bufpool.Buffer obtained from bufpool.Get
// must reach exactly one ownership end — Release, or a hand-over to
// the transport writer via SendOwned / CallStartOwned — and must not
// be touched on any path after its ownership ended.
//
// The check is intraprocedural and deliberately conservative:
//
//   - leak: a Get result that is never released, never handed to any
//     call, never returned, stored or captured cannot reach its pool
//     again. (Passing the buffer to any function, returning it, or
//     storing it counts as a potential transfer, so helpers that hand
//     ownership up or sideways stay clean.)
//
//   - use after transfer: once a statement unconditionally ends
//     ownership (v.Release(), SendOwned(v), CallStartOwned(…, v),
//     go f(v)), any later statement in the same block that mentions
//     the variable — including uses nested in branches, loops or
//     closures under those statements — races the pool's next owner.
//     A transfer inside a conditional branch only poisons the rest of
//     that branch, so release-and-return error paths stay clean; a
//     deferred Release ends ownership at function exit and poisons
//     nothing.
package pooledbuf

import (
	"go/ast"
	"go/token"
	"go/types"

	"munin/internal/analysis/framework"
)

const bufpoolPath = "munin/internal/bufpool"

// Analyzer is the pooledbuf analyzer.
var Analyzer = &framework.Analyzer{
	Name: "pooledbuf",
	Doc:  "enforce the bufpool single-owner discipline: every Get reaches exactly one Release/SendOwned, no use after hand-over",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function (or literal) body. Nested function
// literals are analyzed on their own by run; here they only matter as
// capture sites for this body's buffers.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	owners := map[types.Object]token.Pos{} // Get-created buffers -> Get position
	collectGets(pass, body, owners)
	if len(owners) == 0 {
		return
	}
	for obj, pos := range owners {
		if !hasOwnershipEvent(pass, body, obj) {
			pass.Reportf(pos, "pooled buffer %q is never released or handed over (bufpool.Get requires exactly one Release/SendOwned)", obj.Name())
		}
	}
	checkBlock(pass, body.List, owners)
}

// collectGets records variables directly assigned from bufpool.Get in
// this body, skipping nested function literals (they own their own
// buffers).
func collectGets(pass *framework.Pass, body *ast.BlockStmt, out map[types.Object]token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !framework.FuncIs(framework.CalleeFunc(pass.TypesInfo, call), bufpoolPath, "", "Get") {
			return true
		}
		if obj := framework.ObjectOf(pass.TypesInfo, as.Lhs[0]); obj != nil {
			out[obj] = call.Pos()
		}
		return true
	})
}

// hasOwnershipEvent reports whether obj's ownership can end or escape
// anywhere in the body: a method call on it, an appearance as a call
// argument, in a return, on either side of a later assignment, inside
// a composite literal, or captured by a function literal.
func hasOwnershipEvent(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			for _, arg := range nn.Args {
				if refersTo(pass.TypesInfo, arg, obj) {
					found = true
				}
			}
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok {
				if framework.ObjectOf(pass.TypesInfo, sel.X) == obj {
					found = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range nn.Results {
				if refersTo(pass.TypesInfo, r, obj) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range nn.Rhs {
				// The defining Get assignment itself does not count.
				if _, isGet := r.(*ast.CallExpr); isGet && len(nn.Rhs) == 1 &&
					len(nn.Lhs) == 1 && framework.ObjectOf(pass.TypesInfo, nn.Lhs[0]) == obj {
					continue
				}
				if refersTo(pass.TypesInfo, r, obj) {
					found = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range nn.Elts {
				if refersTo(pass.TypesInfo, el, obj) {
					found = true
				}
			}
		case *ast.FuncLit:
			if mentions(pass.TypesInfo, nn.Body, obj) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// checkBlock walks one statement list: after a statement that
// unconditionally transfers a tracked buffer, any later statement
// mentioning it is reported. Nested blocks are checked recursively
// with the same owner set (transfers inside them stay local to them).
func checkBlock(pass *framework.Pass, stmts []ast.Stmt, owners map[types.Object]token.Pos) {
	dead := map[types.Object]token.Pos{} // transferred -> transfer position
	for _, s := range stmts {
		// A statement that uses an already-dead buffer is the bug.
		for obj, tpos := range dead {
			if mentions(pass.TypesInfo, s, obj) {
				pass.Reportf(s.Pos(), "use of %q after its ownership was transferred at line %d (buffer may already be reused by another owner)",
					obj.Name(), pass.Fset.Position(tpos).Line)
			}
		}
		// Recurse into nested statement lists before recording this
		// statement's own transfers: a conditional transfer poisons only
		// the branch it is in.
		for _, nested := range nestedBlocks(s) {
			checkBlock(pass, nested, owners)
		}
		for obj, pos := range unconditionalTransfers(pass, s, owners) {
			if prev, ok := dead[obj]; ok {
				_ = prev // second transfer was already reported as a use above
				continue
			}
			dead[obj] = pos
		}
	}
}

// nestedBlocks returns the statement lists nested under s.
func nestedBlocks(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := s.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		if st.Else != nil {
			out = append(out, nestedBlocks(st.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			out = append(out, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			out = append(out, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			out = append(out, c.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(st.Stmt)...)
	}
	return out
}

// unconditionalTransfers returns the tracked buffers whose ownership
// statement s ends on every path through s: Release / SendOwned /
// CallStartOwned / go-statement hand-offs in the statement's
// always-evaluated expressions (an if's init/cond but not its body; a
// defer's Release counts as an ordered end only at function exit, so
// it is skipped here).
func unconditionalTransfers(pass *framework.Pass, s ast.Stmt, owners map[types.Object]token.Pos) map[types.Object]token.Pos {
	var exprs []ast.Expr
	switch st := s.(type) {
	case *ast.ExprStmt:
		exprs = append(exprs, st.X)
	case *ast.AssignStmt:
		exprs = append(exprs, st.Rhs...)
	case *ast.ReturnStmt:
		exprs = append(exprs, st.Results...)
	case *ast.IfStmt:
		if init, ok := st.Init.(*ast.AssignStmt); ok {
			exprs = append(exprs, init.Rhs...)
		}
		exprs = append(exprs, st.Cond)
	case *ast.GoStmt:
		// Handing a pooled buffer to a goroutine transfers ownership as
		// far as this function is concerned.
		exprs = append(exprs, st.Call)
	}
	out := map[types.Object]token.Pos{}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for obj, pos := range transfersOf(pass, call, owners) {
				out[obj] = pos
			}
			return true
		})
	}
	// go f(v): any tracked buffer in the args is handed off even if f
	// is not a known transfer function.
	if g, ok := s.(*ast.GoStmt); ok {
		for _, arg := range g.Call.Args {
			if obj := framework.ObjectOf(pass.TypesInfo, arg); obj != nil {
				if _, tracked := owners[obj]; tracked {
					out[obj] = arg.Pos()
				}
			}
		}
	}
	return out
}

// transfersOf returns the tracked buffers whose ownership this single
// call ends.
func transfersOf(pass *framework.Pass, call *ast.CallExpr, owners map[types.Object]token.Pos) map[types.Object]token.Pos {
	out := map[types.Object]token.Pos{}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return out
	}
	track := func(e ast.Expr) {
		if obj := framework.ObjectOf(pass.TypesInfo, e); obj != nil {
			if _, tracked := owners[obj]; tracked {
				out[obj] = call.Pos()
			}
		}
	}
	switch {
	case framework.FuncIs(fn, bufpoolPath, "Buffer", "Release"):
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			track(sel.X)
		}
	case fn.Name() == "SendOwned" && len(call.Args) == 1:
		track(call.Args[0])
	case fn.Name() == "CallStartOwned" && len(call.Args) >= 1:
		track(call.Args[len(call.Args)-1])
	}
	return out
}

// refersTo reports whether expr mentions obj anywhere.
func refersTo(info *types.Info, expr ast.Expr, obj types.Object) bool {
	return mentionsNode(info, expr, obj)
}

// mentions reports whether the statement mentions obj anywhere,
// including nested closures (a captured dead buffer is still a use).
func mentions(info *types.Info, s ast.Stmt, obj types.Object) bool {
	return mentionsNode(info, s, obj)
}

func mentionsNode(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		if id, ok := nn.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
