package pooledbuf_test

import (
	"testing"

	"munin/internal/analysis/framework"
	"munin/internal/analysis/pooledbuf"
)

func TestPooledbuf(t *testing.T) {
	framework.RunFixture(t, pooledbuf.Analyzer, "testdata/src/a")
}
