// Fixture for the pooledbuf analyzer: every case exercises one
// diagnostic (or its absence) against the real bufpool package.
package a

import "munin/internal/bufpool"

// SendOwned and CallStartOwned mirror the transport/vkernel hand-over
// shapes the analyzer recognizes by name and arity.
func SendOwned(wb *bufpool.Buffer) error               { return nil }
func CallStartOwned(dst int, wb *bufpool.Buffer) error { return nil }

func fill(wb *bufpool.Buffer) bool { return len(wb.B) >= 0 }

// leak: the buffer never reaches a release or hand-over.
func leak() {
	wb := bufpool.Get(64) // want `pooled buffer "wb" is never released or handed over`
	wb.B = nil
}

// useAfterRelease: touched after Release returned it to the pool.
func useAfterRelease() {
	wb := bufpool.Get(64)
	wb.Release()
	wb.B = nil // want `use of "wb" after its ownership was transferred`
}

// useAfterSend: touched after the writer goroutine took ownership.
func useAfterSend() {
	wb := bufpool.Get(64)
	_ = SendOwned(wb)
	wb.B = nil // want `use of "wb" after its ownership was transferred`
}

// cleanRelease: exactly one Release on the only path.
func cleanRelease() {
	wb := bufpool.Get(64)
	wb.B = append(wb.B[:0], 1)
	wb.Release()
}

// cleanDefer: a deferred Release ends ownership at function exit and
// poisons nothing before it.
func cleanDefer() {
	wb := bufpool.Get(16)
	defer wb.Release()
	wb.B = append(wb.B[:0], 2)
}

// cleanErrorPath: release-and-return inside a branch only poisons that
// branch; the happy path hands the buffer over exactly once.
func cleanErrorPath() bool {
	wb := bufpool.Get(32)
	if !fill(wb) {
		wb.Release()
		return false
	}
	return SendOwned(wb) == nil
}

// cleanStartOwned: ownership ends at the CallStartOwned hand-over.
func cleanStartOwned() error {
	wb := bufpool.Get(32)
	wb.B = append(wb.B[:0], 3)
	return CallStartOwned(1, wb)
}
