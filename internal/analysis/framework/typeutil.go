package framework

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CalleeFunc resolves the function or method a call expression invokes
// (nil for indirect calls through function values or conversions).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncIs reports whether fn is the named function or method: pkgPath
// is the defining package, recv the receiver type name ("" for a
// plain function, the named type for methods — pointerness ignored,
// interface methods match by the interface's name).
func FuncIs(fn *types.Func, pkgPath, recv, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return recv == "" && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
	}
	named := namedOf(sig.Recv().Type())
	if named == nil || named.Obj().Name() != recv {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkgPath
}

// namedOf unwraps pointers and aliases down to the named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// NamedTypeIs reports whether t (possibly behind pointers) is the
// named type pkgPath.name.
func NamedTypeIs(t types.Type, pkgPath, name string) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// StringArg returns the compile-time constant string value of call
// argument i, if it is one.
func StringArg(info *types.Info, call *ast.CallExpr, i int) (string, bool) {
	if i >= len(call.Args) {
		return "", false
	}
	return StringValue(info, call.Args[i])
}

// StringValue returns the compile-time constant string value of an
// expression, if it has one.
func StringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// IsStringLiteral reports whether call argument i is written as a
// string literal at the call site (as opposed to a named constant).
func IsStringLiteral(call *ast.CallExpr, i int) bool {
	if i >= len(call.Args) {
		return false
	}
	lit, ok := ast.Unparen(call.Args[i]).(*ast.BasicLit)
	return ok && lit.Kind.String() == "STRING"
}

// ExprString renders a (small) expression for diagnostics: selector
// chains and index expressions come out as written, everything else
// falls back to a best-effort sketch.
func ExprString(e ast.Expr) string {
	var b strings.Builder
	exprString(&b, e)
	return b.String()
}

func exprString(b *strings.Builder, e ast.Expr) {
	switch ex := e.(type) {
	case *ast.Ident:
		b.WriteString(ex.Name)
	case *ast.SelectorExpr:
		exprString(b, ex.X)
		b.WriteByte('.')
		b.WriteString(ex.Sel.Name)
	case *ast.IndexExpr:
		exprString(b, ex.X)
		b.WriteByte('[')
		exprString(b, ex.Index)
		b.WriteByte(']')
	case *ast.CallExpr:
		exprString(b, ex.Fun)
		b.WriteString("(…)")
	case *ast.ParenExpr:
		exprString(b, ex.X)
	case *ast.StarExpr:
		b.WriteByte('*')
		exprString(b, ex.X)
	case *ast.BasicLit:
		b.WriteString(ex.Value)
	default:
		b.WriteString("<expr>")
	}
}

// ObjectOf resolves an identifier expression (possibly parenthesized)
// to its object, or nil.
func ObjectOf(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
