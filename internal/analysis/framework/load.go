package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package under analysis.
type Package struct {
	Types *types.Package
	Files []*ast.File
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns rooted at dir with the go
// command, compiles their dependency set for export data, and
// type-checks the matched (non-dependency) packages from source. Test
// files are not included: the analyzers guard the production tree.
func Load(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	all, roots, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	exp := newExportImporter(fset, all)
	var pkgs []*Package
	for _, lp := range roots {
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, lp, exp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, nil
}

// LoadDir type-checks the .go files of one directory as a single
// package against the repository's real packages (resolved from dir's
// module). It is the fixture loader behind analysistest: testdata
// trees are invisible to `go list`, so their files are parsed directly
// and only their imports go through the export-data pipeline.
func LoadDir(fixtureDir, moduleDir string) (*Package, *token.FileSet, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(fixtureDir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", fixtureDir)
	}
	fset := token.NewFileSet()
	var asts []*ast.File
	importSet := map[string]bool{}
	name := ""
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		asts = append(asts, af)
		name = af.Name.Name
		for _, imp := range af.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	var all map[string]*listPackage
	if len(imports) > 0 {
		var err error
		all, _, err = goList(moduleDir, imports)
		if err != nil {
			return nil, nil, err
		}
	}
	exp := newExportImporter(fset, all)
	lp := &listPackage{ImportPath: name, Name: name}
	pkg, err := typeCheckFiles(fset, lp, asts, exp)
	if err != nil {
		return nil, nil, err
	}
	return pkg, fset, nil
}

// goList runs `go list -export -deps -json` and returns every listed
// package keyed by import path, plus the root (pattern-matched,
// in-module) packages in listing order.
func goList(dir string, patterns []string) (map[string]*listPackage, []*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	all := map[string]*listPackage{}
	var order []*listPackage
	dec := json.NewDecoder(out)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, nil, fmt.Errorf("go list: %v (stderr: %s)", err, stderr.String())
		}
		p := lp
		all[p.ImportPath] = &p
		order = append(order, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	// Roots are the non-standard packages that belong to the module
	// under analysis; -deps prepends the dependency closure.
	var roots []*listPackage
	for _, p := range order {
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.Standard && p.Module != nil {
			roots = append(roots, p)
		}
	}
	return all, roots, nil
}

// newExportImporter builds a gc-export-data importer over the listed
// packages' Export files.
func newExportImporter(fset *token.FileSet, all map[string]*listPackage) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		lp, ok := all[path]
		if !ok || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// resolvingImporter applies one package's ImportMap (vendored or
// module-replaced paths) before delegating to the shared export-data
// importer.
type resolvingImporter struct {
	m    map[string]string
	next types.Importer
}

func (r resolvingImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := r.m[path]; ok {
		path = mapped
	}
	return r.next.Import(path)
}

func typeCheck(fset *token.FileSet, lp *listPackage, exp types.Importer) (*Package, error) {
	var asts []*ast.File
	for _, f := range lp.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	return typeCheckFiles(fset, lp, asts, exp)
}

func typeCheckFiles(fset *token.FileSet, lp *listPackage, asts []*ast.File, exp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: resolvingImporter{m: lp.ImportMap, next: exp},
		Error:    func(err error) {}, // collect via the returned error below
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, err)
	}
	return &Package{Types: tpkg, Files: asts, Info: info}, nil
}
