package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view over the analyzed packages: every
// declared function, a call graph between them (class-hierarchy
// analysis with receiver-type narrowing: concrete-receiver calls
// resolve to the one method, interface-method calls fan out to every
// analyzed concrete type implementing the interface), and per-function
// summaries computed bottom-up over the graph's strongly connected
// components. Analyzers with a RunProgram hook receive it via
// ProgramPass.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	// ByFunc indexes every analyzed function declaration by FuncKey.
	// Keys, not *types.Func identity: each analyzed package sees its
	// dependencies through export data, so the same symbol is a
	// distinct object in every importing package.
	ByFunc map[string]*FuncNode
	// Nodes lists the same functions in source order (deterministic
	// iteration for stable diagnostics and artifacts).
	Nodes []*FuncNode

	concrete []*types.Named
}

// FuncNode is one analyzed function in the call graph.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Calls are the body's resolved call sites, in source order.
	// Function-literal bodies are excluded: a literal's execution is
	// not part of calling its enclosing function (it may run on
	// another goroutine, or as a registered handler long after).
	Calls []*CallSite

	// Summary is the bottom-up interprocedural summary; valid after
	// BuildProgram returns.
	Summary Summary

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// Name renders the function for diagnostics: Type.Method or func name,
// package-qualified.
func (n *FuncNode) Name() string { return funcLabel(n.Fn) }

func funcLabel(fn *types.Func) string {
	if fn == nil {
		return "<unknown>"
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		if p := fn.Pkg().Path(); p != "" {
			name = shortPkg(p) + "." + name
		}
	}
	return name
}

// FuncKey returns a stable program-wide key for a function or method:
// "pkgpath.Recv.Name" (receiver pointerness ignored, generic origin).
// The same symbol reached from source and from export data — distinct
// *types.Func objects — maps to one key, which is what makes
// cross-package call-graph edges resolve.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	fn = fn.Origin()
	key := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			key = named.Obj().Name() + "." + key
		}
	}
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + key
	}
	return key
}

func shortPkg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CallSite is one resolved call expression inside a function body.
type CallSite struct {
	Call *ast.CallExpr
	// Callees are the analyzed functions this call can reach (one for
	// a static call, several for an interface-method call under CHA,
	// none for calls through function values).
	Callees []*FuncNode
	// External is the resolved callee when it lives outside the
	// analyzed packages (export-data only, no body).
	External *types.Func
	// InGo / InDefer mark calls that are goroutine launches or
	// deferred: a `go` call runs concurrently (the caller does not
	// block and holds no locks on the spawned side), a deferred call
	// runs at function exit.
	InGo, InDefer bool
}

// Summary is one function's interprocedural summary, computed bottom-up
// over SCCs: whether calling it can park the caller on a remote
// rendezvous (with a witness), which canonical lock keys it may
// acquire (directly or transitively), and whether it returns an error.
type Summary struct {
	// Blocks reports that some path through the function reaches a
	// registered blocking rendezvous (see SetBlockingOracle).
	Blocks bool
	// BlockSite is the call inside this function that leads to the
	// rendezvous; BlockVia is the analyzed callee it goes through
	// (nil when BlockSite is itself the registry hit).
	BlockSite *CallSite
	BlockVia  *FuncNode

	// Acquires maps canonical lock keys (LockKeyOf) the function may
	// acquire anywhere inside, directly or through calls, to a
	// witness.
	Acquires map[string]AcquireInfo

	// ReturnsError reports that the function's last result is an
	// error.
	ReturnsError bool
}

// AcquireInfo is the witness for one summarized lock acquisition.
type AcquireInfo struct {
	Pos token.Pos
	// Via is the analyzed callee the acquisition happens through (nil
	// for a Lock call directly in this function's body).
	Via *FuncNode
}

// BlockChain renders the call chain from n down to the blocking
// rendezvous, for diagnostics: "f → g → vkernel.Call".
func (n *FuncNode) BlockChain() string {
	var parts []string
	seen := map[*FuncNode]bool{}
	cur := n
	for cur != nil && !seen[cur] {
		seen[cur] = true
		parts = append(parts, cur.Name())
		s := cur.Summary
		if s.BlockVia == nil {
			if s.BlockSite != nil && s.BlockSite.External != nil {
				parts = append(parts, funcLabel(s.BlockSite.External))
			}
			break
		}
		cur = s.BlockVia
	}
	return strings.Join(parts, " → ")
}

// blockingOracle classifies external (and analyzed) callees as
// blocking rendezvous entry points. Registered once by the repo's
// facts package; tests may override.
var blockingOracle = func(*types.Func) bool { return false }

// SetBlockingOracle installs the predicate BuildProgram uses to seed
// blocking summaries.
func SetBlockingOracle(f func(*types.Func) bool) {
	if f != nil {
		blockingOracle = f
	}
}

// BuildProgram indexes the packages' functions, resolves their call
// sites (CHA with receiver-type narrowing), and computes summaries
// bottom-up over SCCs.
func BuildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{Fset: fset, Pkgs: pkgs, ByFunc: map[string]*FuncNode{}}

	// Pass 1: index every declared function with a body.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg, index: -1}
				p.ByFunc[FuncKey(fn)] = node
				p.Nodes = append(p.Nodes, node)
			}
		}
	}
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].Decl.Pos() < p.Nodes[j].Decl.Pos() })

	// Concrete named types for interface-call fan-out.
	p.concrete = p.concreteTypes()

	// Pass 2: resolve call sites.
	for _, node := range p.Nodes {
		p.collectCalls(node)
	}

	// Pass 3: summaries, bottom-up over SCCs.
	p.summarize()
	return p
}

// concreteTypes collects every non-interface named type declared in
// the analyzed packages, for CHA fan-out of interface method calls.
func (p *Program) concreteTypes() []*types.Named {
	var out []*types.Named
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named.Underlying()) {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// collectCalls walks one function body recording resolved call sites.
// Function-literal bodies are skipped (see FuncNode.Calls); go/defer
// statements mark their direct call.
func (p *Program) collectCalls(node *FuncNode) {
	var walk func(n ast.Node, inGo, inDefer bool)
	walk = func(n ast.Node, inGo, inDefer bool) {
		ast.Inspect(n, func(nn ast.Node) bool {
			switch st := nn.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				walk(st.Call, true, inDefer)
				return false
			case *ast.DeferStmt:
				walk(st.Call, inGo, true)
				return false
			case *ast.CallExpr:
				callees, external := p.Resolve(node.Pkg.Info, st)
				if len(callees) == 0 && external == nil {
					return true // call through a function value: unresolvable
				}
				node.Calls = append(node.Calls, &CallSite{
					Call: st, Callees: callees, External: external,
					InGo: inGo, InDefer: inDefer,
				})
			}
			return true
		})
	}
	walk(node.Decl.Body, false, false)
}

// Resolve resolves one call expression to its possible analyzed
// callees (CHA with receiver-type narrowing for interface methods) or
// its external callee. Both results are empty for calls through
// function values.
func (p *Program) Resolve(info *types.Info, call *ast.CallExpr) (callees []*FuncNode, external *types.Func) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type().Underlying()) {
		// Interface method: CHA over analyzed concrete types
		// implementing the interface. (A concrete-typed receiver
		// expression already resolves to the concrete method via the
		// type checker, so reaching here means the static receiver
		// really is an interface.)
		iface := sig.Recv().Type().Underlying().(*types.Interface)
		for _, named := range p.concrete {
			m := methodOn(named, fn.Name())
			if m == nil {
				continue
			}
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			if tgt := p.ByFunc[FuncKey(m)]; tgt != nil {
				callees = append(callees, tgt)
			}
		}
		if len(callees) == 0 {
			return nil, fn
		}
		return callees, nil
	}
	if tgt := p.ByFunc[FuncKey(fn)]; tgt != nil {
		return []*FuncNode{tgt}, nil
	}
	return nil, fn
}

// methodOn finds the declared method named name on named (value or
// pointer receiver).
func methodOn(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// SCCs returns the program's strongly connected components in reverse
// topological order (callees before callers), Tarjan's algorithm.
func (p *Program) SCCs() [][]*FuncNode {
	var (
		sccs    [][]*FuncNode
		stack   []*FuncNode
		counter int
	)
	var strongconnect func(v *FuncNode)
	strongconnect = func(v *FuncNode) {
		v.index = counter
		v.lowlink = counter
		counter++
		stack = append(stack, v)
		v.onStack = true
		for _, site := range v.Calls {
			for _, w := range site.Callees {
				if w.index < 0 {
					strongconnect(w)
					if w.lowlink < v.lowlink {
						v.lowlink = w.lowlink
					}
				} else if w.onStack && w.index < v.lowlink {
					v.lowlink = w.index
				}
			}
		}
		if v.lowlink == v.index {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range p.Nodes {
		v.index = -1
		v.onStack = false
	}
	for _, v := range p.Nodes {
		if v.index < 0 {
			strongconnect(v)
		}
	}
	return sccs
}

// summarize computes Summary for every function, bottom-up: Tarjan
// emits SCCs callees-first, and within one SCC (mutual recursion) the
// members iterate to a fixpoint — Blocks and Acquires are monotone
// unions, so convergence is at most |SCC| rounds.
func (p *Program) summarize() {
	for _, scc := range p.SCCs() {
		for {
			changed := false
			for _, fn := range scc {
				if p.summarizeOne(fn) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// summarizeOne recomputes one function's summary from its body and its
// callees' current summaries, reporting whether it grew.
func (p *Program) summarizeOne(node *FuncNode) bool {
	s := &node.Summary
	changed := false
	if s.Acquires == nil {
		s.Acquires = map[string]AcquireInfo{}
		if sig, ok := node.Fn.Type().(*types.Signature); ok {
			res := sig.Results()
			if res.Len() > 0 {
				errType := types.Universe.Lookup("error").Type()
				s.ReturnsError = types.Identical(res.At(res.Len()-1).Type(), errType)
			}
		}
		// Direct lock acquisitions in the body.
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, locked, ok := MutexOp(node.Pkg.Info, call); ok && locked && key != "" {
				if _, have := s.Acquires[key]; !have {
					s.Acquires[key] = AcquireInfo{Pos: call.Pos()}
				}
			}
			return true
		})
		changed = true
	}
	for _, site := range node.Calls {
		if site.InGo {
			continue // runs concurrently: not this function's behavior
		}
		if !s.Blocks && !site.InDefer {
			if site.External != nil && blockingOracle(site.External) {
				s.Blocks, s.BlockSite, s.BlockVia = true, site, nil
				changed = true
			}
			for _, callee := range site.Callees {
				if blockingOracle(callee.Fn) {
					s.Blocks, s.BlockSite, s.BlockVia = true, site, nil
					changed = true
					break
				}
				if callee.Summary.Blocks {
					s.Blocks, s.BlockSite, s.BlockVia = true, site, callee
					changed = true
					break
				}
			}
		}
		for _, callee := range site.Callees {
			for key := range callee.Summary.Acquires {
				if _, have := s.Acquires[key]; !have {
					s.Acquires[key] = AcquireInfo{Pos: site.Call.Pos(), Via: callee}
					changed = true
				}
			}
		}
	}
	return changed
}

// MutexOp matches `X.Lock()` / `X.RLock()` / `X.Unlock()` / `X.RUnlock()`
// on sync mutexes, returning the canonical lock key (LockKeyOf) and
// whether the call acquires.
func MutexOp(info *types.Info, call *ast.CallExpr) (key string, locked, ok bool) {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return "", false, false
	}
	isMutex := FuncIs(fn, "sync", "Mutex", fn.Name()) ||
		FuncIs(fn, "sync", "RWMutex", fn.Name())
	if !isMutex {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return LockKeyOf(info, sel.X), true, true
	case "Unlock", "RUnlock":
		return LockKeyOf(info, sel.X), false, true
	}
	return "", false, false
}

// LockKeyOf canonicalizes a mutex expression to a stable program-wide
// key: struct fields collapse to "pkgpath.Type.field" (every instance
// of the same field is one lock-order node), package vars to
// "pkgpath.var", and locals to "pkgpath.local/name" (distinct
// functions' locals never alias, but they still participate in cycle
// checks through calls).
func LockKeyOf(info *types.Info, mutexExpr ast.Expr) string {
	e := ast.Unparen(mutexExpr)
	switch ex := e.(type) {
	case *ast.SelectorExpr:
		// Field selector: key by the owning named type.
		if sel, ok := info.Selections[ex]; ok && sel.Kind() == types.FieldVal {
			field := sel.Obj()
			if owner := namedOf(sel.Recv()); owner != nil && owner.Obj().Pkg() != nil {
				return owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + field.Name()
			}
		}
		// Qualified package var: pkg.Var.
		if obj := ObjectOf(info, ex.Sel); obj != nil && obj.Pkg() != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
	case *ast.Ident:
		obj := ObjectOf(info, ex)
		if obj == nil || obj.Pkg() == nil {
			return ExprString(e)
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return obj.Pkg().Path() + ".local/" + obj.Name()
	}
	return ExprString(e)
}

// LockLabel shortens a canonical lock key for diagnostics:
// "munin/internal/protocol.Obj.mu" → "protocol.Obj.mu".
func LockLabel(key string) string {
	return strings.TrimPrefix(key, "munin/internal/")
}
