package framework

import (
	"go/types"
	"strings"
	"testing"
)

// TestSummaryConvergenceMutualRecursion pins the bottom-up SCC
// fixpoint: facts seeded in one member of a mutual-recursion cycle
// (a blocking call in even's base case, a lock acquisition in ping's)
// must propagate to every member of the cycle — and to nothing outside
// it.
func TestSummaryConvergenceMutualRecursion(t *testing.T) {
	prev := blockingOracle
	defer func() { blockingOracle = prev }()
	SetBlockingOracle(func(fn *types.Func) bool {
		return fn != nil && fn.Name() == "block" && fn.Pkg() != nil && fn.Pkg().Path() == "recursion"
	})

	pkg, fset, err := LoadDir("testdata/src/recursion", moduleRoot(t, "testdata/src/recursion"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	prog := BuildProgram(fset, []*Package{pkg})

	node := func(key string) *FuncNode {
		t.Helper()
		n := prog.ByFunc[key]
		if n == nil {
			t.Fatalf("no node for %q (have %d nodes)", key, len(prog.Nodes))
		}
		return n
	}

	for _, key := range []string{"recursion.even", "recursion.odd"} {
		n := node(key)
		if !n.Summary.Blocks {
			t.Errorf("%s: Blocks = false, want true (blocking fact must cross the recursion cycle)", key)
		}
	}
	if chain := node("recursion.odd").BlockChain(); !strings.Contains(chain, "recursion.even") {
		t.Errorf("odd's block chain %q does not pass through even", chain)
	}

	for _, key := range []string{"recursion.ping", "recursion.pong"} {
		n := node(key)
		if _, ok := n.Summary.Acquires["recursion.guard.mu"]; !ok {
			t.Errorf("%s: Acquires lacks recursion.guard.mu (got %v)", key, keysOf(n.Summary.Acquires))
		}
	}
	if via := node("recursion.pong").Summary.Acquires["recursion.guard.mu"].Via; via == nil {
		t.Errorf("pong's acquisition of guard.mu should be witnessed through a callee, got direct")
	}

	s := node("recursion.straight").Summary
	if s.Blocks || len(s.Acquires) != 0 {
		t.Errorf("straight: summary smeared by the fixpoint: Blocks=%v Acquires=%v", s.Blocks, keysOf(s.Acquires))
	}
}

func keysOf(m map[string]AcquireInfo) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
