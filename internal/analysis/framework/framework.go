// Package framework is a self-contained, stdlib-only implementation of
// the subset of golang.org/x/tools/go/analysis that the muninvet suite
// needs: an Analyzer value with a Run function over a type-checked
// package, a Pass carrying the ASTs and type information, and
// Diagnostics reported against token positions.
//
// The real x/tools module is the natural home for this shape, but this
// repository builds offline with no dependencies beyond the standard
// library, so the driver is vendored here in miniature. The API
// mirrors x/tools deliberately — Analyzer{Name, Doc, Run}, Pass with
// Fset/Files/Pkg/TypesInfo/Report — so the analyzers would port to a
// real multichecker by changing one import path.
//
// Loading is built on the go command rather than a from-source
// recursive type-check: the driver shells out to
// `go list -export -deps -json`, which compiles the transitive
// dependency set and reports each package's export-data file, then
// type-checks only the packages under analysis from source with an
// importer that reads those export files. This is the same division
// of labour as `go vet`'s driver and keeps a whole-tree run fast.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name for diagnostics, a doc
// string, and a Run function applied once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass is the interface between the driver and one analyzer run on one
// package. The analyzer reads the ASTs and type information and calls
// Report (or Reportf) for each finding.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Result is the outcome of running a set of analyzers over a set of
// packages: every diagnostic, sorted by position.
type Result struct {
	Fset  *token.FileSet
	Diags []Diagnostic
}

// Run loads the packages matching patterns (go list syntax, e.g.
// "./...") rooted at dir and applies every analyzer to each. Analyzer
// errors (not diagnostics) abort the run.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, fset, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Fset: fset}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
			res.Diags = append(res.Diags, pass.diags...)
		}
	}
	sort.SliceStable(res.Diags, func(i, j int) bool {
		return res.Diags[i].Pos < res.Diags[j].Pos
	})
	return res, nil
}
