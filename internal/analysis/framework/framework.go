// Package framework is a self-contained, stdlib-only implementation of
// the subset of golang.org/x/tools/go/analysis that the muninvet suite
// needs: an Analyzer value with a Run function over a type-checked
// package, a Pass carrying the ASTs and type information, and
// Diagnostics reported against token positions.
//
// The real x/tools module is the natural home for this shape, but this
// repository builds offline with no dependencies beyond the standard
// library, so the driver is vendored here in miniature. The API
// mirrors x/tools deliberately — Analyzer{Name, Doc, Run}, Pass with
// Fset/Files/Pkg/TypesInfo/Report — so the analyzers would port to a
// real multichecker by changing one import path.
//
// Loading is built on the go command rather than a from-source
// recursive type-check: the driver shells out to
// `go list -export -deps -json`, which compiles the transitive
// dependency set and reports each package's export-data file, then
// type-checks only the packages under analysis from source with an
// importer that reads those export files. This is the same division
// of labour as `go vet`'s driver and keeps a whole-tree run fast.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name for diagnostics, a doc
// string, and a Run function applied once per package. Analyzers that
// need the whole-program view — the call graph and bottom-up summaries
// — set RunProgram (instead of, or in addition to, Run); the driver
// builds one Program per invocation and applies every RunProgram hook
// to it after the per-package passes.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass) error
	RunProgram func(*ProgramPass) error
}

// Pass is the interface between the driver and one analyzer run on one
// package. The analyzer reads the ASTs and type information and calls
// Report (or Reportf) for each finding.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ProgramPass is the interface between the driver and one
// whole-program analyzer run: the interprocedural Program (call graph
// + summaries) over every analyzed package, plus Report and an
// artifact sink for machine-readable outputs (e.g. the lock-order DOT
// graph).
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Prog     *Program

	diags     []Diagnostic
	artifacts map[string][]byte
}

// Report records a diagnostic.
func (p *ProgramPass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.diags = append(p.diags, d)
}

// Reportf records a diagnostic at pos with a formatted message.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SetArtifact attaches a named build artifact (collected into
// Result.Artifacts; cmd/muninvet writes them to -artifacts).
func (p *ProgramPass) SetArtifact(name string, data []byte) {
	if p.artifacts == nil {
		p.artifacts = map[string][]byte{}
	}
	p.artifacts[name] = data
}

// Result is the outcome of running a set of analyzers over a set of
// packages: every diagnostic, sorted by position, plus any artifacts
// the whole-program analyzers produced.
type Result struct {
	Fset      *token.FileSet
	Diags     []Diagnostic
	Artifacts map[string][]byte
}

// Run loads the packages matching patterns (go list syntax, e.g.
// "./...") rooted at dir and applies every analyzer to each. Analyzer
// errors (not diagnostics) abort the run.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	pkgs, fset, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{Fset: fset}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
			}
			res.Diags = append(res.Diags, pass.diags...)
		}
	}
	// Whole-program passes: one shared Program (the call graph and
	// summaries dominate the cost; every RunProgram analyzer reads the
	// same one).
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = BuildProgram(fset, pkgs)
		}
		pass := &ProgramPass{Analyzer: a, Fset: fset, Prog: prog}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		res.Diags = append(res.Diags, pass.diags...)
		for name, data := range pass.artifacts {
			if res.Artifacts == nil {
				res.Artifacts = map[string][]byte{}
			}
			res.Artifacts[name] = data
		}
	}
	sort.SliceStable(res.Diags, func(i, j int) bool {
		return res.Diags[i].Pos < res.Diags[j].Pos
	})
	return res, nil
}
