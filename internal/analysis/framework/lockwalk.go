package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockWalker walks one function body tracking the set of held mutexes
// (canonical LockKeyOf keys) with the same branch discipline the
// lockhold analyzer established: branches see a copy of the held set
// (a conditional Lock does not leak past its branch), a deferred
// Unlock keeps the mutex held to the end of the function, goroutine
// launches and function literals run under their own empty lock set,
// and deferred calls are skipped (they run at exit, after this body's
// explicit unlocks).
//
// Callbacks fire in source order with the held set at that point
// (key → acquisition position). The maps handed to callbacks are live
// walker state: copy, don't retain.
type LockWalker struct {
	Info *types.Info

	// OnAcquire fires for every mutex Lock/RLock, with the held set
	// BEFORE the acquisition.
	OnAcquire func(key string, call *ast.CallExpr, held map[string]token.Pos)
	// OnCall fires for every non-mutex call in always-evaluated
	// positions, with the current held set.
	OnCall func(call *ast.CallExpr, held map[string]token.Pos)
}

// Walk runs the walker over one function or literal body.
func (w *LockWalker) Walk(body *ast.BlockStmt) {
	w.stmts(body.List, map[string]token.Pos{})
}

func (w *LockWalker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *LockWalker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if key, locked, ok := MutexOp(w.Info, call); ok {
				if locked {
					if w.OnAcquire != nil {
						w.OnAcquire(key, call, held)
					}
					held[key] = st.Pos()
				} else {
					delete(held, key)
				}
				return
			}
		}
		w.exprCalls(st.X, held)
	case *ast.DeferStmt:
		// Deferred Unlock: the mutex stays held below; deferred calls
		// run at exit and are not walked.
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.exprCalls(r, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.exprCalls(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.exprCalls(st.Cond, held)
		w.stmts(st.Body.List, cloneHeld(held))
		if st.Else != nil {
			w.stmt(st.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.exprCalls(st.Cond, held)
		}
		w.stmts(st.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		w.exprCalls(st.X, held)
		w.stmts(st.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.exprCalls(st.Tag, held)
		}
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CommClause).Body, cloneHeld(held))
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.GoStmt:
		// The goroutine runs under its own empty lock set; its body
		// (when a literal) is walked separately by the analyzer.
	case *ast.SendStmt:
		w.exprCalls(st.Value, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprCalls(v, held)
					}
				}
			}
		}
	}
}

// exprCalls fires OnAcquire/OnCall for calls nested in an
// always-evaluated expression. Inline acquisitions inside expressions
// (rare) report but do not update the held set — matching statement
// granularity keeps branch copies sound.
func (w *LockWalker) exprCalls(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, locked, isLock := MutexOp(w.Info, call); isLock {
			if locked && w.OnAcquire != nil {
				w.OnAcquire(key, call, held)
			}
			return true
		}
		if w.OnCall != nil {
			w.OnCall(call, held)
		}
		return true
	})
}

func cloneHeld(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
