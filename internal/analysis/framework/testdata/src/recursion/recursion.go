// Fixture for the summary-convergence test: mutually recursive
// functions whose blocking and lock-acquisition facts must propagate
// around the recursion cycle to a fixpoint.
package recursion

import "sync"

// block is classified as a blocking rendezvous by the test's oracle.
func block() {}

// even/odd: mutual recursion reaching block() only through even's base
// case — both must summarize as blocking.
func even(n int) bool {
	if n == 0 {
		block()
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

type guard struct{ mu sync.Mutex }

// ping/pong: mutual recursion where only ping's base case acquires the
// lock — both must summarize as acquiring recursion.guard.mu.
func ping(g *guard, n int) {
	if n == 0 {
		g.mu.Lock()
		g.mu.Unlock()
		return
	}
	pong(g, n-1)
}

func pong(g *guard, n int) {
	if n == 0 {
		return
	}
	ping(g, n-1)
}

// straight never blocks and never locks: the fixpoint must not smear
// facts onto functions outside the cycle.
func straight(n int) int { return n + 1 }
