package framework

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// RunFixture applies one analyzer to the fixture package in
// testdata/src/<pkg> under the analyzer's directory and compares the
// diagnostics against `// want` comments, x/tools analysistest style:
//
//	bad() // want `regexp matching the diagnostic`
//
// A line with a want comment must produce a diagnostic on that line
// matching the regexp; a diagnostic on a line without one fails the
// test. Multiple want clauses on one line each need a match.
func RunFixture(t *testing.T, a *Analyzer, fixtureDir string) {
	t.Helper()
	moduleDir := moduleRoot(t, fixtureDir)
	pkg, fset, err := LoadDir(fixtureDir, moduleDir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixtureDir, err)
	}
	var diags []Diagnostic
	if a.Run != nil {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	if a.RunProgram != nil {
		prog := BuildProgram(fset, []*Package{pkg})
		ppass := &ProgramPass{Analyzer: a, Fset: fset, Prog: prog}
		if err := a.RunProgram(ppass); err != nil {
			t.Fatalf("%s (program): %v", a.Name, err)
		}
		diags = append(diags, ppass.diags...)
	}

	wants := collectWants(t, fixtureDir)
	got := map[posKey][]string{}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := posKey{filepath.Base(p.Filename), p.Line}
		got[k] = append(got[k], d.Message)
	}

	for k, patterns := range wants {
		msgs := got[k]
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", k.file, k.line, pat, err)
			}
			idx := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", k.file, k.line, pat, msgs)
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected extra diagnostics %q", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	var stray []string
	for k, msgs := range got {
		for _, m := range msgs {
			stray = append(stray, fmt.Sprintf("%s:%d: %s", k.file, k.line, m))
		}
	}
	sort.Strings(stray)
	for _, s := range stray {
		t.Errorf("unexpected diagnostic: %s", s)
	}
}

type posKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("// want (.*)$")
var clauseRe = regexp.MustCompile("`([^`]*)`")

// collectWants scans the fixture files for want comments, returning
// line -> expected-diagnostic regexps.
func collectWants(t *testing.T, dir string) map[posKey][]string {
	t.Helper()
	out := map[posKey][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			clauses := clauseRe.FindAllStringSubmatch(m[1], -1)
			if len(clauses) == 0 {
				t.Fatalf("%s:%d: want comment with no `backquoted` clause", e.Name(), i+1)
			}
			k := posKey{e.Name(), i + 1}
			for _, c := range clauses {
				out[k] = append(out[k], c[1])
			}
		}
	}
	return out
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(t *testing.T, dir string) string {
	t.Helper()
	d, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// Position renders a diagnostic position for the multichecker output.
func (r *Result) Position(d Diagnostic) token.Position { return r.Fset.Position(d.Pos) }
