// Fixture for the failpointref analyzer, run against the real
// failpoint registry.
package a

import "munin/internal/failpoint"

func hits() {
	failpoint.Hit(failpoint.FlushPlanned)
	failpoint.Hit("flush.planned")
	failpoint.Hit("flush.bogus") // want `failpoint name "flush.bogus" is not registered`
}

func arms() {
	failpoint.Arm(failpoint.LockGranted, 2, func() {})
	failpoint.Arm("lock.grnted", 0, nil) // want `failpoint name "lock.grnted" is not registered`
	failpoint.Disarm(failpoint.LockGranted)
	failpoint.Disarm("gate.prak") // want `failpoint name "gate.prak" is not registered`
}

func crashes() {
	_ = failpoint.ArmCrash("flush.sent:2")
	_ = failpoint.ArmCrash(failpoint.GatePark)
	_ = failpoint.ArmCrash("flush.snet:1") // want `failpoint name "flush.snet" is not registered`
}

func dynamic(spec string) {
	// Non-constant specs (e.g. from the environment) are runtime
	// territory; ArmCrash itself validates them.
	_ = failpoint.ArmCrash(spec)
}
