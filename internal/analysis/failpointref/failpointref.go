// Package failpointref implements the muninvet analyzer that keeps
// crash-point names resolvable. A failpoint name ties together three
// places: the failpoint.Hit site compiled into a protocol step, the
// ArmCrash spec a test or the bench harness injects (possibly with a
// ":skip" suffix), and E17's crash-point sweep that proves the cluster
// recovers from a kill at that step. A name that exists in only some
// of them is a crash test that silently never fires.
//
// The analyzer enforces the static half: every constant name reaching
// failpoint.Hit, Arm, Disarm or ArmCrash must be registered in
// failpoint.Names(). The dynamic half — E17's sweep covering every
// registered name — is asserted by TestE17CoversAllFailpoints in
// internal/bench.
package failpointref

import (
	"go/ast"
	"strings"

	"munin/internal/analysis/framework"
	"munin/internal/failpoint"
)

// Analyzer is the failpointref analyzer.
var Analyzer = &framework.Analyzer{
	Name: "failpointref",
	Doc:  "failpoint.Hit/Arm/ArmCrash names must be registered in failpoint.Names() so every crash point stays covered by E17",
	Run:  run,
}

const failpointPath = "munin/internal/failpoint"

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch {
			case framework.FuncIs(fn, failpointPath, "", "Hit"),
				framework.FuncIs(fn, failpointPath, "", "Disarm"),
				framework.FuncIs(fn, failpointPath, "", "Arm"):
				if name, ok := framework.StringArg(pass.TypesInfo, call, 0); ok {
					checkName(pass, call, name)
				}
			case framework.FuncIs(fn, failpointPath, "", "ArmCrash"):
				if spec, ok := framework.StringArg(pass.TypesInfo, call, 0); ok {
					// Specs carry an optional ":skip" hit count.
					checkName(pass, call, strings.SplitN(spec, ":", 2)[0])
				}
			}
			return true
		})
	}
	return nil
}

func checkName(pass *framework.Pass, call *ast.CallExpr, name string) {
	if failpoint.IsRegistered(name) {
		return
	}
	pass.Reportf(call.Args[0].Pos(), "failpoint name %q is not registered in failpoint.Names(): a crash armed here never fires and E17 cannot cover it", name)
}
