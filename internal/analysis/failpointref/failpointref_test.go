package failpointref_test

import (
	"testing"

	"munin/internal/analysis/failpointref"
	"munin/internal/analysis/framework"
)

func TestFailpointref(t *testing.T) {
	framework.RunFixture(t, failpointref.Analyzer, "testdata/src/a")
}
