// Fixture for the errflow analyzer: sentinel matching discipline and
// discarded rendezvous errors, against the real transport/vkernel
// taxonomy (loaded through export data).
package a

import (
	"errors"

	"munin/internal/transport"
	"munin/internal/vkernel"
)

// badEq: identity comparison with a sentinel breaks under wrapping.
func badEq(err error) bool {
	return err == transport.ErrClosed // want `sentinel error ErrClosed compared with ==: wrapping breaks identity — use errors\.Is\(err, ErrClosed\)`
}

// badNeq: same for inequality.
func badNeq(err error) bool {
	return err != transport.ErrClosed // want `sentinel error ErrClosed compared with !=: wrapping breaks identity — use !errors\.Is\(err, ErrClosed\)`
}

// goodIs: the sanctioned match.
func goodIs(err error) bool {
	return errors.Is(err, transport.ErrClosed)
}

// badAssert: concrete type assertion on a typed error.
func badAssert(err error) bool {
	_, ok := err.(*transport.ErrPeerDown) // want `type assertion on concrete error type \*munin/internal/transport\.ErrPeerDown: wrapping breaks it`
	return ok
}

// badSwitch: concrete sentinel type in a type-switch case.
func badSwitch(err error) string {
	switch err.(type) {
	case *transport.ErrPeerGone: // want `type switch on concrete error type \*munin/internal/transport\.ErrPeerGone: wrapping breaks it`
		return "gone"
	}
	return ""
}

// goodAs: the sanctioned extraction.
func goodAs(err error) (int, bool) {
	var down *transport.ErrPeerDown
	if errors.As(err, &down) {
		return int(down.Node), true
	}
	return 0, false
}

// badDiscard: a parked rendezvous whose failure is thrown away.
func badDiscard(k *vkernel.Kernel, p []byte) {
	k.Call(1, 0x0601, p) // want `error result of blocking call Kernel\.Call discarded`
}

// badBlank: same failure, laundered through the blank identifier.
func badBlank(k *vkernel.Kernel, p []byte) {
	_, _ = k.Call(1, 0x0601, p) // want `error result of blocking call Kernel\.Call assigned to _`
}

// goodHandle: the error is assigned and routed.
func goodHandle(k *vkernel.Kernel, p []byte) error {
	_, err := k.Call(1, 0x0601, p)
	return err
}
