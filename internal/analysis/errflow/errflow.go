// Package errflow enforces the typed-error discipline the transport
// and protocol layers depend on. The module's failure taxonomy —
// exported Err… sentinel variables (transport.ErrClosed) and Err…
// struct types (*transport.ErrPeerDown, *transport.ErrPeerGone) — is
// routinely wrapped: the reconnect path rewraps a peer's latched
// error, handlers annotate with %w, and the vkernel surfaces remote
// failures through its reply envelope. Identity comparison (err ==
// ErrClosed) and concrete type assertion (err.(*ErrPeerDown)) both
// pass the type checker and both silently stop matching the moment a
// wrap is introduced anywhere on the path, so the analyzer forbids
// them:
//
//   - an equality comparison (== or !=) between an error and a
//     sentinel Err… variable from a munin package must be errors.Is;
//   - a type assertion or type-switch case converting an error to a
//     concrete munin Err… type must be errors.As.
//
// It also forbids discarding the error result of a blocking
// rendezvous call (facts.Blocking): those are exactly the calls that
// fail with ErrPeerDown when a member crashes mid-round, and a
// dropped result turns a detectable membership failure into a silent
// hang or stale read. Assign the error and handle (or explicitly
// route) it; tests included — they are where the == habit breeds.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"munin/internal/analysis/facts"
	"munin/internal/analysis/framework"
)

// Analyzer is the errflow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "errflow",
	Doc:  "sentinel errors matched with errors.Is/As, never == or concrete type switch; rendezvous errors never discarded",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, node)
			case *ast.TypeAssertExpr:
				// A TypeAssertExpr with nil Type is the guard of a type
				// switch; its cases are checked below.
				if node.Type != nil {
					checkAssert(pass, node.X, node.Type)
				}
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, node)
			case *ast.ExprStmt:
				checkDiscardedCall(pass, node.X)
			case *ast.AssignStmt:
				checkBlankAssign(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags err == ErrSentinel / err != ErrSentinel.
func checkComparison(pass *framework.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		id := rootIdent(side)
		if id == nil {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !facts.IsSentinelErrorVar(obj) {
			continue
		}
		fix := "errors.Is(err, " + obj.Name() + ")"
		if be.Op == token.NEQ {
			fix = "!" + fix
		}
		pass.Reportf(be.Pos(), "sentinel error %s compared with %s: wrapping breaks identity — use %s",
			obj.Name(), be.Op, fix)
		return
	}
}

// checkAssert flags err.(*ErrPeerDown)-style assertions from an error
// to a concrete sentinel type.
func checkAssert(pass *framework.Pass, x ast.Expr, typ ast.Expr) {
	if !isErrorExpr(pass, x) {
		return
	}
	tv, ok := pass.TypesInfo.Types[typ]
	if !ok || !facts.IsSentinelErrorType(tv.Type) {
		return
	}
	pass.Reportf(typ.Pos(), "type assertion on concrete error type %s: wrapping breaks it — declare a target and use errors.As(err, &target)",
		types.TypeString(tv.Type, nil))
}

// checkTypeSwitch flags `switch err.(type)` cases naming concrete
// sentinel types.
func checkTypeSwitch(pass *framework.Pass, ts *ast.TypeSwitchStmt) {
	// The guard is either `x.(type)` or `v := x.(type)`.
	var guard ast.Expr
	switch a := ts.Assign.(type) {
	case *ast.ExprStmt:
		guard = a.X
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			guard = a.Rhs[0]
		}
	}
	ta, ok := ast.Unparen(guard).(*ast.TypeAssertExpr)
	if !ok || !isErrorExpr(pass, ta.X) {
		return
	}
	for _, clause := range ts.Body.List {
		cc := clause.(*ast.CaseClause)
		for _, t := range cc.List {
			tv, ok := pass.TypesInfo.Types[t]
			if !ok || !facts.IsSentinelErrorType(tv.Type) {
				continue
			}
			pass.Reportf(t.Pos(), "type switch on concrete error type %s: wrapping breaks it — use errors.As(err, &target)",
				types.TypeString(tv.Type, nil))
		}
	}
}

// checkDiscardedCall flags a blocking rendezvous call used as a bare
// statement when it returns an error.
func checkDiscardedCall(pass *framework.Pass, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if !facts.IsBlocking(fn) || !lastResultIsError(fn) {
		return
	}
	pass.Reportf(call.Pos(), "error result of blocking call %s.%s discarded: a member crash surfaces here as ErrPeerDown — assign and handle it",
		recvLabel(fn), fn.Name())
}

// checkBlankAssign flags `_ = k.Call(...)` / `v, _ := ...` where the
// error position of a blocking call lands in the blank identifier.
func checkBlankAssign(pass *framework.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if !facts.IsBlocking(fn) || !lastResultIsError(fn) {
		return
	}
	// The error is the last result; the last LHS receives it.
	last := as.Lhs[len(as.Lhs)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(id.Pos(), "error result of blocking call %s.%s assigned to _: a member crash surfaces here as ErrPeerDown — assign and handle it",
			recvLabel(fn), fn.Name())
	}
}

// rootIdent returns the identifier naming expr, looking through a
// package selector (pkg.ErrClosed) or a plain ident (ErrClosed).
func rootIdent(e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// isErrorExpr reports whether e has static type error (the interface).
func isErrorExpr(pass *framework.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
}

// lastResultIsError reports whether fn's final result is error.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// recvLabel renders fn's receiver type name for messages ("Kernel" for
// (*Kernel).Call, the package name for plain functions).
func recvLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := types.Unalias(t).(*types.Named); ok {
			return n.Obj().Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}
