package errflow_test

import (
	"testing"

	"munin/internal/analysis/errflow"
	"munin/internal/analysis/framework"
)

func TestErrflow(t *testing.T) {
	framework.RunFixture(t, errflow.Analyzer, "testdata/src/a")
}
