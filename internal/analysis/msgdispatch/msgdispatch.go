// Package msgdispatch checks the message-plumbing invariants that sit
// between the msg.Kind constant tables and the vkernel's range
// dispatcher — the places where adding, removing, or reordering a
// protocol message is easy to get subtly wrong:
//
//   - Exactly-once dispatch: every Kind constant a package declares
//     (excluding the …Base/…Max range markers) must appear in exactly
//     one case arm of the package's `switch req.Kind` dispatch, and
//     must fall inside one of the package's registered
//     k.Handle(lo, hi, …) ranges. Deleting a case arm, forgetting one
//     for a new kind, or declaring a kind past the registered range
//     all fail the build instead of silently dropping messages (the
//     vkernel drops unhandled kinds like an unbound port).
//
//   - Reply on every path: a kind used in a Kernel Call (the caller
//     parks on the reply) must have a handler that, on every return
//     path, either replies, forwards/parks the request (any use of
//     the request value beyond reading its fields), counts a
//     documented drop (a stats counter whose name contains "drop"),
//     or panics. A silent `return` in a Call handler leaves the
//     caller parked until the peer-down sweep — a hang with no
//     counter to find it by.
//
//   - Codec agreement: a straight-line encodeX/decodeX helper pair
//     must write and read the same wire-primitive sequence (Int and
//     I64 both widen to U64 on the wire and are compatible; U32
//     versus U64 is not).
package msgdispatch

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"munin/internal/analysis/framework"
)

// Analyzer is the msgdispatch analyzer.
var Analyzer = &framework.Analyzer{
	Name: "msgdispatch",
	Doc:  "message kinds dispatched exactly once within registered ranges; Call handlers reply on every path; codec pairs agree",
	Run:  run,
}

const msgPkgPath = "munin/internal/msg"

func run(pass *framework.Pass) error {
	c := &checker{pass: pass, visited: map[*types.Func]bool{}}
	c.collect()
	c.checkDispatch()
	c.checkHandleRanges()
	c.checkReplyPaths()
	c.checkCodecs()
	return nil
}

type checker struct {
	pass    *framework.Pass
	visited map[*types.Func]bool // handler funcs already path-checked

	kinds     map[*types.Const]*ast.Ident // package-level msg.Kind consts (markers excluded)
	switches  []*dispatchSwitch
	callKinds map[*types.Const]bool // kinds the package uses in Kernel Call-family sends
	ranges    [][2]constant.Value   // registered k.Handle(lo, hi) ranges
	decls     map[string]*ast.FuncDecl
}

type dispatchSwitch struct {
	stmt *ast.SwitchStmt
	req  types.Object // the *msg.Msg variable the switch dispatches on
	arms map[*types.Const][]*ast.CaseClause
}

// collect indexes the package: kind constants, dispatch switches,
// Call-family kind uses, Handle registrations, function declarations.
func (c *checker) collect() {
	c.kinds = map[*types.Const]*ast.Ident{}
	c.callKinds = map[*types.Const]bool{}
	c.decls = map[string]*ast.FuncDecl{}
	info := c.pass.TypesInfo

	for _, file := range c.pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fd.Recv == nil {
					c.decls[fd.Name.Name] = fd
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ValueSpec:
				for _, name := range node.Names {
					cst, ok := info.Defs[name].(*types.Const)
					if !ok || !isKindType(cst.Type()) || isRangeMarker(cst.Name()) {
						continue
					}
					if cst.Parent() == c.pass.Pkg.Scope() {
						c.kinds[cst] = name
					}
				}
			case *ast.SwitchStmt:
				if ds := c.dispatchSwitchOf(node); ds != nil {
					c.switches = append(c.switches, ds)
				}
			case *ast.CallExpr:
				c.collectKernelUse(node)
			}
			return true
		})
	}
}

// dispatchSwitchOf recognizes `switch req.Kind { … }` on a *msg.Msg.
func (c *checker) dispatchSwitchOf(sw *ast.SwitchStmt) *dispatchSwitch {
	sel, ok := ast.Unparen(sw.Tag).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Kind" {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || !isMsgPtr(obj.Type()) {
		return nil
	}
	ds := &dispatchSwitch{stmt: sw, req: obj, arms: map[*types.Const][]*ast.CaseClause{}}
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		for _, e := range cc.List {
			if cst := c.constOf(e); cst != nil {
				ds.arms[cst] = append(ds.arms[cst], cc)
			}
		}
	}
	return ds
}

// collectKernelUse records Call-family kind arguments and Handle
// registration ranges.
func (c *checker) collectKernelUse(call *ast.CallExpr) {
	fn := framework.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch {
	case framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "Call"),
		framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "CallStart"),
		framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "CallStartOwned"),
		framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "CallInline"),
		framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "MulticastCall"),
		framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "MulticastCallStart"):
		if len(call.Args) >= 2 {
			if cst := c.constOf(call.Args[1]); cst != nil {
				c.callKinds[cst] = true
			}
		}
	case framework.FuncIs(fn, "munin/internal/vkernel", "Kernel", "Handle"):
		if len(call.Args) >= 2 {
			lo := c.pass.TypesInfo.Types[call.Args[0]].Value
			hi := c.pass.TypesInfo.Types[call.Args[1]].Value
			if lo != nil && hi != nil {
				c.ranges = append(c.ranges, [2]constant.Value{lo, hi})
			}
		}
	}
}

// constOf resolves an expression to the constant it names, if any.
func (c *checker) constOf(e ast.Expr) *types.Const {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	cst, _ := c.pass.TypesInfo.Uses[id].(*types.Const)
	return cst
}

// checkDispatch enforces exactly-once dispatch for every declared kind
// in packages that have a dispatch switch.
func (c *checker) checkDispatch() {
	if len(c.switches) == 0 {
		return
	}
	for cst, ident := range c.kinds {
		var arms []*ast.CaseClause
		for _, ds := range c.switches {
			arms = append(arms, ds.arms[cst]...)
		}
		switch {
		case len(arms) == 0:
			c.pass.Reportf(ident.Pos(), "message kind %s is not dispatched: no `switch req.Kind` case arm handles it — the vkernel will drop it like an unbound port", cst.Name())
		case len(arms) > 1:
			c.pass.Reportf(arms[1].Pos(), "message kind %s is dispatched by %d case arms: exactly one arm must own each kind", cst.Name(), len(arms))
		}
	}
}

// checkHandleRanges flags kinds outside every registered
// k.Handle(lo, hi) range. Only kinds the package dispatches or Calls
// are held to this: a Call to an unbound kind parks the caller
// forever, and a dispatch arm for one is dead code — but a plain Send
// to an unbound kind is documented vkernel behavior (dropped like an
// unbound port; the mp package models one-way traffic that way).
func (c *checker) checkHandleRanges() {
	if len(c.ranges) == 0 {
		return
	}
	for cst, ident := range c.kinds {
		if !c.callKinds[cst] && !c.dispatched(cst) {
			continue
		}
		v := cst.Val()
		covered := false
		for _, r := range c.ranges {
			if constant.Compare(r[0], token.LEQ, v) && constant.Compare(v, token.LEQ, r[1]) {
				covered = true
				break
			}
		}
		if !covered {
			c.pass.Reportf(ident.Pos(), "message kind %s (= %s) lies outside every k.Handle range this package registers: messages of this kind will never reach the dispatch switch", cst.Name(), v)
		}
	}
}

// dispatched reports whether any dispatch switch has an arm for cst.
func (c *checker) dispatched(cst *types.Const) bool {
	for _, ds := range c.switches {
		if len(ds.arms[cst]) > 0 {
			return true
		}
	}
	return false
}

// checkReplyPaths verifies every Call-kind case arm resolves the
// request on all paths.
func (c *checker) checkReplyPaths() {
	for _, ds := range c.switches {
		for cst, arms := range ds.arms {
			if !c.callKinds[cst] {
				continue
			}
			for _, arm := range arms {
				w := &pathWalker{c: c, req: ds.req, kind: cst.Name()}
				resolved, terminated := w.stmts(arm.Body, false)
				if !terminated && !resolved {
					c.pass.Reportf(arm.Pos(), "handler arm for Call kind %s can fall through without replying, forwarding the request, or counting a documented drop — the caller stays parked", cst.Name())
				}
			}
		}
	}
}

// pathWalker is the branch-sensitive reply-path analysis for one
// request variable: "resolved" once the request value is used beyond
// field reads (replied, forwarded, parked), a drop counter is bumped,
// or a deferred resolution is registered.
type pathWalker struct {
	c    *checker
	req  types.Object
	kind string
}

// stmts walks a statement list; reports any return reached while
// unresolved. Returns (resolved at fall-through, all paths terminated).
func (w *pathWalker) stmts(list []ast.Stmt, resolved bool) (bool, bool) {
	for _, s := range list {
		var term bool
		resolved, term = w.stmt(s, resolved)
		if term {
			return resolved, true
		}
	}
	return resolved, false
}

func (w *pathWalker) stmt(s ast.Stmt, resolved bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		if !resolved && !w.exprResolves(st) {
			w.c.pass.Reportf(st.Pos(), "handler for Call kind %s returns without replying, forwarding the request, or counting a documented drop — the caller stays parked until the peer-down sweep", w.kind)
		}
		return resolved, true
	case *ast.ExprStmt:
		if isPanic(w.c.pass.TypesInfo, st.X) {
			return resolved, true
		}
		return resolved || w.exprResolves(st), false
	case *ast.DeferStmt:
		// A deferred reply/forward resolves every path from here on.
		return resolved || w.exprResolves(st.Call), false
	case *ast.GoStmt:
		// The goroutine owns the request from here (async reply).
		return resolved || w.exprResolves(st.Call), false
	case *ast.AssignStmt, *ast.DeclStmt, *ast.SendStmt, *ast.IncDecStmt:
		return resolved || w.exprResolves(s), false
	case *ast.IfStmt:
		if st.Init != nil {
			resolved, _ = w.stmt(st.Init, resolved)
		}
		resolved = resolved || w.exprResolves(st.Cond)
		bodyRes, bodyTerm := w.stmts(st.Body.List, resolved)
		if st.Else == nil {
			// Fall-through includes the cond-false path: resolution
			// inside the body does not carry past it.
			return resolved, false
		}
		elseRes, elseTerm := false, false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseRes, elseTerm = w.stmts(e.List, resolved)
		default:
			elseRes, elseTerm = w.stmt(st.Else, resolved)
		}
		covered := (bodyTerm || bodyRes) && (elseTerm || elseRes)
		return resolved || covered, bodyTerm && elseTerm
	case *ast.BlockStmt:
		return w.stmts(st.List, resolved)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return w.switchStmt(st, resolved)
	case *ast.SelectStmt:
		// A select with no default blocks until one clause runs, so
		// the clauses cover every path.
		allCover, allTerm, hasDefault := true, true, false
		for _, clause := range st.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				hasDefault = true
			}
			res, term := w.stmts(cc.Body, resolved)
			allCover = allCover && (term || res)
			allTerm = allTerm && term
		}
		_ = hasDefault
		return resolved || allCover, allTerm && len(st.Body.List) > 0
	case *ast.ForStmt:
		if st.Init != nil {
			resolved, _ = w.stmt(st.Init, resolved)
		}
		w.stmts(st.Body.List, resolved)
		return resolved, false
	case *ast.RangeStmt:
		resolved = resolved || w.exprResolves(st.X)
		w.stmts(st.Body.List, resolved)
		return resolved, false
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, resolved)
	case *ast.BranchStmt:
		// break/continue/goto end this path without leaving the
		// handler; resolution requirements re-apply wherever control
		// resumes, which the enclosing walk covers conservatively.
		return resolved, true
	}
	return resolved, false
}

func (w *pathWalker) switchStmt(s ast.Stmt, resolved bool) (bool, bool) {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			resolved, _ = w.stmt(st.Init, resolved)
		}
		if st.Tag != nil {
			resolved = resolved || w.exprResolves(st.Tag)
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		body = st.Body
	}
	hasDefault := false
	allCover, allTerm := true, true
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		res, term := w.stmts(cc.Body, resolved)
		allCover = allCover && (term || res)
		allTerm = allTerm && term
	}
	// Without a default the zero-case path falls through unresolved.
	covered := hasDefault && allCover
	return resolved || covered, hasDefault && allTerm && len(body.List) > 0
}

// exprResolves reports whether the node resolves the request: a bare
// use of the request value (anything beyond reading its fields), a
// drop-counter bump, or a call into a local handler function that is
// itself path-checked.
func (w *pathWalker) exprResolves(n ast.Node) bool {
	if n == nil {
		return false
	}
	resolved := false
	// Field reads (req.Payload, req.Kind, …) do not resolve; note the
	// identifiers appearing as a selector base so the bare-use scan
	// below can skip them.
	fieldBase := map[*ast.Ident]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		if sel, ok := x.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				fieldBase[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(x ast.Node) bool {
		if resolved {
			return false
		}
		switch node := x.(type) {
		case *ast.CallExpr:
			if w.dropCounterAdd(node) {
				resolved = true
				return false
			}
			// Forwarding into a local handler: check that handler's
			// paths too (once), then treat the forward as resolution.
			if w.forwardsToLocal(node) {
				resolved = true
				return false
			}
		case *ast.Ident:
			if w.c.pass.TypesInfo.Uses[node] == w.req && !fieldBase[node] {
				resolved = true
				return false
			}
		}
		return true
	})
	return resolved
}

// dropCounterAdd recognizes a stats counter bump whose registered name
// documents a drop (contains "drop").
func (w *pathWalker) dropCounterAdd(call *ast.CallExpr) bool {
	fn := framework.CalleeFunc(w.c.pass.TypesInfo, call)
	if fn == nil || (fn.Name() != "Add" && fn.Name() != "Inc") {
		return false
	}
	if !framework.FuncIs(fn, "munin/internal/stats", "Set", fn.Name()) {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	tv := w.c.pass.TypesInfo.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	return strings.Contains(constant.StringVal(tv.Value), "drop")
}

// forwardsToLocal reports whether call passes the request to a
// function or method declared in this package, and if so recursively
// path-checks that handler with its own request parameter.
func (w *pathWalker) forwardsToLocal(call *ast.CallExpr) bool {
	argIdx := -1
	for i, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && w.c.pass.TypesInfo.Uses[id] == w.req {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		return false
	}
	fn := framework.CalleeFunc(w.c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != w.c.pass.Pkg {
		return false
	}
	decl := w.declOf(fn)
	if decl == nil || decl.Body == nil {
		return true // request escaped into the package API; resolved here
	}
	if w.c.visited[fn] {
		return true
	}
	w.c.visited[fn] = true
	param := paramObject(w.c.pass.TypesInfo, decl, argIdx)
	if param == nil {
		return true
	}
	inner := &pathWalker{c: w.c, req: param, kind: w.kind}
	resolved, terminated := inner.stmts(decl.Body.List, false)
	if !terminated && !resolved {
		w.c.pass.Reportf(decl.Name.Pos(), "handler %s for Call kind %s can reach the end of the function without replying, forwarding the request, or counting a documented drop — the caller stays parked", fn.Name(), w.kind)
	}
	return true
}

// declOf finds the FuncDecl for fn in this package (methods included).
func (w *pathWalker) declOf(fn *types.Func) *ast.FuncDecl {
	for _, file := range w.c.pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if w.c.pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// paramObject maps a call-site argument index to the callee's
// parameter object.
func paramObject(info *types.Info, decl *ast.FuncDecl, idx int) types.Object {
	i := 0
	for _, field := range decl.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			if i == idx {
				return info.Defs[name]
			}
			i++
		}
	}
	return nil
}

// ---- codec agreement ----

// codecOp is one wire operation: the method name as written and the
// wire primitive it lowers to.
type codecOp struct {
	name string
	wire string
	pos  token.Pos
}

// wirePrimitive maps derived codec methods to their wire encoding;
// methods not listed encode as themselves.
var wirePrimitive = map[string]string{
	"I64": "U64", "Int": "U64", "F64": "U64",
	"Bool": "U8",
	"Str":  "BytesN",
}

// nonDataOps are Builder/Reader methods that move no wire data.
var nonDataOps = map[string]bool{
	"Reset": true, "Skip": true, "Bytes": true, "Len": true,
	"Err": true, "Fail": true, "Remaining": true,
}

// checkCodecs compares each straight-line encodeX/decodeX pair.
func (c *checker) checkCodecs() {
	for name, enc := range c.decls {
		if !strings.HasPrefix(name, "encode") {
			continue
		}
		dec, ok := c.decls["decode"+strings.TrimPrefix(name, "encode")]
		if !ok || enc.Body == nil || dec.Body == nil {
			continue
		}
		if hasControlFlow(enc.Body) || hasControlFlow(dec.Body) {
			continue // not a straight-line pair; sequence comparison unsound
		}
		writes := c.codecOps(enc, "Builder")
		reads := c.codecOps(dec, "Reader")
		for i := 0; i < len(writes) && i < len(reads); i++ {
			if writes[i].wire != reads[i].wire {
				c.pass.Reportf(reads[i].pos, "codec mismatch: %s reads %s at step %d but %s writes %s — field order or width disagree",
					dec.Name.Name, reads[i].name, i+1, enc.Name.Name, writes[i].name)
				return
			}
		}
		if len(writes) != len(reads) {
			c.pass.Reportf(dec.Name.Pos(), "codec mismatch: %s writes %d fields but %s reads %d",
				enc.Name.Name, len(writes), dec.Name.Name, len(reads))
		}
	}
}

// codecOps collects the msg.Builder or msg.Reader data operations in
// body, in source order (chained calls parse outside-in, so sort by
// the method-name position).
func (c *checker) codecOps(decl *ast.FuncDecl, recv string) []codecOp {
	var ops []codecOp
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || !framework.FuncIs(fn, msgPkgPath, recv, fn.Name()) {
			return true
		}
		if nonDataOps[fn.Name()] {
			return true
		}
		wire := fn.Name()
		if p, ok := wirePrimitive[wire]; ok {
			wire = p
		}
		sel := call.Fun.(*ast.SelectorExpr)
		ops = append(ops, codecOp{name: fn.Name(), wire: wire, pos: sel.Sel.Pos()})
		return true
	})
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].pos < ops[j-1].pos; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	return ops
}

// hasControlFlow reports whether body contains branching that makes a
// linear op-sequence comparison unsound.
func hasControlFlow(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			found = true
			return false
		}
		return true
	})
	return found
}

// ---- type helpers ----

// isKindType reports whether t is munin/internal/msg.Kind.
func isKindType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Kind" && obj.Pkg() != nil && obj.Pkg().Path() == msgPkgPath
}

// isMsgPtr reports whether t is *munin/internal/msg.Msg.
func isMsgPtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Msg" && obj.Pkg() != nil && obj.Pkg().Path() == msgPkgPath
}

// isRangeMarker reports whether a kind constant is a range delimiter
// rather than a message kind.
func isRangeMarker(name string) bool {
	return strings.HasSuffix(name, "Base") || strings.HasSuffix(name, "Max")
}

// isPanic reports whether e is a call to the builtin panic.
func isPanic(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
