package msgdispatch_test

import (
	"testing"

	"munin/internal/analysis/framework"
	"munin/internal/analysis/msgdispatch"
)

func TestMsgdispatch(t *testing.T) {
	framework.RunFixture(t, msgdispatch.Analyzer, "testdata/src/a")
}
