// Fixture for the msgdispatch analyzer: a miniature message plumbing
// package with kind constants, a dispatch switch, Call-family uses, a
// Handle registration, and codec helper pairs — each invariant has one
// firing and one clean case.
package a

import (
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/vkernel"
)

const (
	kindPing = msg.KindAppBase + 0 // Call: replies on every path (clean)
	kindDrop = msg.KindAppBase + 1 // Call: counts a documented drop on decode error (clean)
	kindLeak = msg.KindAppBase + 2 // Call: silent return on one path (firing)
	kindDup  = msg.KindAppBase + 3 // dispatched by two switches (firing)
	kindNone = msg.KindAppBase + 4 // want `message kind kindNone is not dispatched`
	kindFall = msg.KindAppBase + 5 // Call: arm can fall through unresolved (firing)
	kindOut  = msg.KindAppBase + 9 // want `message kind kindOut \(= 1545\) lies outside every k\.Handle range`
)

func register(k *vkernel.Kernel, c *stats.Set) {
	k.Handle(kindPing, kindFall, func(k *vkernel.Kernel, req *msg.Msg) {
		dispatch(k, c, req)
	})
}

func dispatch(k *vkernel.Kernel, c *stats.Set, req *msg.Msg) {
	switch req.Kind {
	case kindPing:
		k.Reply(req, nil)
	case kindDrop:
		r := msg.NewReader(req.Payload)
		if r.Err() != nil {
			c.Add(stats.CDropMalformed, 1)
			return
		}
		k.Reply(req, nil)
	case kindLeak:
		if len(req.Payload) == 0 {
			return // want `handler for Call kind kindLeak returns without replying, forwarding the request, or counting a documented drop`
		}
		k.Reply(req, nil)
	case kindDup:
		k.Reply(req, nil)
	case kindFall: // want `handler arm for Call kind kindFall can fall through without replying, forwarding the request, or counting a documented drop`
		if len(req.Payload) > 0 {
			k.Reply(req, nil)
		}
	case kindOut:
		k.Reply(req, nil)
	}
}

func dispatchAlt(k *vkernel.Kernel, req *msg.Msg) {
	switch req.Kind {
	case kindDup: // want `message kind kindDup is dispatched by 2 case arms`
		k.Reply(req, nil)
	}
}

func caller(k *vkernel.Kernel) error {
	if _, err := k.Call(0, kindPing, nil); err != nil {
		return err
	}
	if _, err := k.Call(0, kindDrop, nil); err != nil {
		return err
	}
	if _, err := k.Call(0, kindLeak, nil); err != nil {
		return err
	}
	if _, err := k.Call(0, kindFall, nil); err != nil {
		return err
	}
	_, err := k.Call(0, kindNone, nil)
	return err
}

// encodeEntry/decodeEntry agree on the wire sequence (clean).
func encodeEntry(id uint32, n int) []byte {
	return msg.NewBuilder(16).U32(id).Int(n).Bytes()
}

func decodeEntry(p []byte) (uint32, int) {
	r := msg.NewReader(p)
	return r.U32(), r.Int()
}

// encodeStamp/decodeStamp disagree: the reader pulls the fields in the
// opposite order (firing).
func encodeStamp(id uint32, off int) []byte {
	return msg.NewBuilder(16).U32(id).Int(off).Bytes()
}

func decodeStamp(p []byte) (int, uint32) {
	r := msg.NewReader(p)
	off := r.Int() // want `codec mismatch: decodeStamp reads Int at step 1 but encodeStamp writes U32 — field order or width disagree`
	id := r.U32()
	return off, id
}
