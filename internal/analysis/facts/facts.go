// Package facts centralizes the repo-specific knowledge the muninvet
// analyzers share: which callees park the caller on a remote
// rendezvous, which mutexes are documented fences or serialization
// exemptions, which error values and types form the typed failure
// taxonomy, and the documented global lock-acquisition hierarchy.
//
// PR 9's analyzers each carried a private copy of the fragment they
// needed; the interprocedural layer (framework.Program summaries) and
// the analyzers built on it — lockorder, msgdispatch, errflow, and the
// upgraded lockhold — all consult the same tables, so a new blocking
// call or a new lock field is added here once and every diagnostic
// sees it.
package facts

import (
	"go/types"
	"strings"

	"munin/internal/analysis/framework"
)

// Blocking is the registry of callees that park the caller on a remote
// round trip or rendezvous. A function whose body reaches any of these
// (transitively, per the framework call-graph summaries) "blocks".
var Blocking = []struct{ Pkg, Recv, Name string }{
	{"munin/internal/vkernel", "Kernel", "Call"},
	{"munin/internal/vkernel", "Kernel", "MulticastCall"},
	{"munin/internal/vkernel", "Kernel", "CallInline"},
	{"munin/internal/vkernel", "Kernel", "Flush"},
	{"munin/internal/vkernel", "Pending", "Wait"},
	{"munin/internal/transport", "Endpoint", "Flush"},
	{"munin/internal/protocol", "Node", "FlushQueue"},
	{"munin/internal/protocol", "Node", "TryFlushQueue"},
	{"munin/internal/dlock", "Service", "Acquire"},
	{"munin/internal/dlock", "Service", "Release"},
	{"munin/internal/dlock", "Service", "BarrierWait"},
	{"munin/internal/dlock", "Service", "FetchAdd"},
	{"munin/internal/core", "System", "runGate"},
	{"munin/internal/core", "System", "resyncGate"},
	{"sync", "WaitGroup", "Wait"},
}

// IsBlocking reports whether fn is one of the registered blocking
// rendezvous entry points.
func IsBlocking(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	for _, b := range Blocking {
		if framework.FuncIs(fn, b.Pkg, b.Recv, b.Name) {
			return true
		}
	}
	return false
}

// FenceNames are the protocol fence mutex field names: deliberately
// held across remote round trips (docs, "life of a flush"), exempt
// from the hold-across-blocking rule but subject to sorted-order
// multi-acquisition.
var FenceNames = map[string]bool{"relayMu": true, "pushMu": true}

// IsFenceKey reports whether a canonical framework.LockKey names a
// fence mutex field.
func IsFenceKey(key string) bool {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	return FenceNames[key]
}

// IsSerializationExemptKey reports whether the lock key is the home
// directory-entry mutex — the documented serialization exemption: the
// home pins a whole ownership-transfer round (including its remote
// invalidate/fetch round trips) under dirEntry.mu, and the remote
// handlers for those messages never call back into the home's
// directory, so the hold cannot cycle.
func IsSerializationExemptKey(key string) bool {
	return key == "munin/internal/protocol.dirEntry.mu"
}

// IsExemptFromBlockingRule reports whether holding this lock across a
// blocking call is documented as safe (fences and the dirEntry
// serialization mutex).
func IsExemptFromBlockingRule(key string) bool {
	return IsFenceKey(key) || IsSerializationExemptKey(key)
}

// LockLevels is the documented global lock-acquisition hierarchy over
// the repo's long-lived mutexes, keyed by framework.LockKey. An edge
// "held A while acquiring B" in the whole-program acquisition-order
// graph must go from a lower level to a strictly higher one; two locks
// on the same level must never nest. Locks not listed here (locals,
// test scaffolding, benchmark state) are constrained only by the
// cycle check.
//
// The levels encode the order the tree actually uses, read off the
// whole-program acquisition-order graph (the generated lockorder DOT
// graph embedded in docs/ARCHITECTURE.md): fences and gate locks
// first, then the protocol's directory/object state, then dlock's
// proxy-before-home order, then the transport peer and queue locks,
// with the vkernel pending table and the stats counters as leaves that
// everything above may touch. Reordering a nested pair — acquiring a
// higher-level lock and then a lower-level one — fails muninvet even
// before a second witness path closes a cycle.
var LockLevels = map[string]int{
	// Fences and front doors: deliberately held across whole rounds
	// (relay/push fences, the SPMD gate), so everything else must nest
	// inside them.
	"munin/internal/protocol.dirEntry.relayMu": 10,
	"munin/internal/core.System.mu":            10,
	"munin/internal/core.System.gateMu":        10,
	"munin/internal/protocol.Obj.pushMu":       12,

	// Protocol directory and object state: the home pins an ownership
	// round under dirEntry.mu, looking up objects (objStripe.mu) and
	// mutating them (Obj.mu) inside it.
	"munin/internal/protocol.dirEntry.mu":  14,
	"munin/internal/protocol.objStripe.mu": 16,
	"munin/internal/protocol.Obj.mu":       18,

	// dlock: the local proxy is pinned first, then the service's
	// table; home-side per-primitive state never nests with either.
	"munin/internal/dlock.proxy.mu":        20,
	"munin/internal/dlock.Service.mu":      22,
	"munin/internal/dlock.homeState.mu":    24,
	"munin/internal/dlock.barrierState.mu": 24,
	"munin/internal/dlock.atomicState.mu":  24,
	"munin/internal/dlock.condState.mu":    24,

	// Transport: per-peer state, then the network registry, then the
	// send queues (reached from every layer above via Send/Call).
	"munin/internal/transport.meshPeer.mu":    30,
	"munin/internal/transport.MeshNetwork.mu": 32,
	"munin/internal/transport.TCPNetwork.mu":  32,
	"munin/internal/transport.sendQueue.mu":   34,
	"munin/internal/transport.queue.mu":       34,

	// Leaves: the vkernel pending-call table and the counters.
	"munin/internal/vkernel.Kernel.mu": 40,
	"munin/internal/stats.Set.mu":      50,
}

// SentinelErrorPkgPrefix marks the module's packages: an exported
// Err-prefixed var or type from any package under this prefix is part
// of the typed error taxonomy and must be matched with
// errors.Is/errors.As, never == or a concrete type switch — wrapping
// (and the reconnect path's latch/clear rewrapping) breaks identity
// comparisons silently.
const SentinelErrorPkgPrefix = "munin/"

// IsSentinelErrorVar reports whether obj is a sentinel error variable
// of the module's taxonomy (an exported package-level var named
// Err... in a munin package, e.g. transport.ErrClosed).
func IsSentinelErrorVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if !strings.HasPrefix(v.Pkg().Path(), SentinelErrorPkgPrefix) {
		return false
	}
	return strings.HasPrefix(v.Name(), "Err") && v.Parent() == v.Pkg().Scope()
}

// IsSentinelErrorType reports whether t (possibly behind a pointer) is
// one of the module's typed errors (a named Err... type in a munin
// package, e.g. *transport.ErrPeerDown).
func IsSentinelErrorType(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		strings.HasPrefix(obj.Pkg().Path(), SentinelErrorPkgPrefix) &&
		strings.HasPrefix(obj.Name(), "Err")
}

func init() {
	// The framework computes blocking summaries during Program
	// construction; register the repo's registry as its oracle.
	framework.SetBlockingOracle(IsBlocking)
}
