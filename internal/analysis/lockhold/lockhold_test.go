package lockhold_test

import (
	"testing"

	"munin/internal/analysis/framework"
	"munin/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	framework.RunFixture(t, lockhold.Analyzer, "testdata/src/a")
}
