// Fixture for the lockhold analyzer. sync.WaitGroup.Wait and bare
// channel receives stand in for the repo's blocking protocol calls —
// they are in the same blocking registry, and using them keeps the
// fixture free of heavyweight vkernel setup.
package a

import (
	"sort"
	"sync"
)

type obj struct {
	mu      sync.Mutex
	relayMu sync.Mutex
	id      int
}

// blockUnderMutex: a rendezvous while a data mutex is held.
func blockUnderMutex(o *obj, wg *sync.WaitGroup) {
	o.mu.Lock()
	wg.Wait() // want `blocking call wg.Wait while holding mutex o.mu`
	o.mu.Unlock()
}

// recvUnderMutex: a channel receive parks the holder just the same.
func recvUnderMutex(o *obj, ch chan int) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return <-ch // want `channel receive while holding mutex o.mu`
}

// cleanUnlockFirst: release the data mutex, then rendezvous.
func cleanUnlockFirst(o *obj, wg *sync.WaitGroup) {
	o.mu.Lock()
	o.id++
	o.mu.Unlock()
	wg.Wait()
}

// cleanFenceHold: fence mutexes deliberately pin a pipeline across the
// round trip; holding one over a blocking call is the design.
func cleanFenceHold(o *obj, wg *sync.WaitGroup) {
	o.relayMu.Lock()
	wg.Wait()
	o.relayMu.Unlock()
}

// cleanBranchLock: a conditional Lock does not leak past its branch.
func cleanBranchLock(o *obj, wg *sync.WaitGroup, cond bool) {
	if cond {
		o.mu.Lock()
		o.id++
		o.mu.Unlock()
	}
	wg.Wait()
}

// badLoopLock: fence mutexes multi-acquired without an ordering sort.
func badLoopLock(objs []*obj) {
	for _, o := range objs {
		o.relayMu.Lock() // want `fence mutex o.relayMu acquired in a loop without a preceding sort`
	}
	for _, o := range objs {
		o.relayMu.Unlock()
	}
}

// goodLoopLock: the sorted-ID loop is the sanctioned multi-acquisition.
func goodLoopLock(objs []*obj) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].id < objs[j].id })
	for _, o := range objs {
		o.relayMu.Lock()
	}
	for _, o := range objs {
		o.relayMu.Unlock()
	}
}

// badFencePair: two distinct fences taken directly — textual order is
// not ID order.
func badFencePair(a, b *obj) {
	a.relayMu.Lock()
	b.relayMu.Lock() // want `second fence mutex b.relayMu acquired while a.relayMu may still be held`
	b.relayMu.Unlock()
	a.relayMu.Unlock()
}
