// Package lockhold implements the muninvet analyzer that enforces the
// repo's locking discipline, established by hand in PRs 1–2:
//
//   - No blocking protocol call — vkernel Call/MulticastCall/CallInline,
//     the Flush fence, Pending.Wait, dlock acquire/release/barrier, the
//     core run gate, a protocol FlushQueue, or a bare channel receive —
//     while a data mutex is held. Data mutexes (object mu, stripe mu,
//     digestMu, transport internals…) guard in-memory state; parking a
//     round trip under one stalls every peer that needs the same stripe
//     and invites lock-order deadlocks against the handler side.
//
//   - The two protocol *fence* mutexes — relayMu and pushMu — are the
//     deliberate exception: their whole purpose is to pin an object's
//     relay/push pipeline across the remote round trip (docs, "life of
//     a flush"). They are exempt from the hold-across-blocking rule,
//     but when more than one is taken the acquisition must happen in
//     sorted object-ID order, or two concurrent flushes with
//     overlapping dirty sets deadlock. The analyzer requires a sort
//     call before any loop that acquires fence mutexes and flags
//     back-to-back acquisitions of two distinct fence mutexes.
//
//   - The home directory-entry mutex (protocol dirEntry.mu) is the
//     other documented exception: the home serializes a whole
//     ownership-transfer round — including its remote invalidate and
//     fetch round trips — under the entry's mutex ("d.mu serializes
//     conflicting requests for the same object"). Remote handlers for
//     those messages never call back into the home's directory, so the
//     hold cannot cycle. The exemption is keyed on the receiver type,
//     not the variable name, so an object mutex spelled `d.mu` would
//     still be flagged.
//
// The per-package analysis is intraprocedural and syntactic over
// type-checked ASTs: lock state is tracked per statement list,
// branches see a copy (a conditional Lock does not leak past its
// branch), a deferred Unlock keeps the mutex held to the end of the
// function, and function literals start with an empty lock set (they
// run elsewhere). A whole-program pass (RunProgram) extends the same
// rule transitively: a call made under a data mutex is flagged when
// the callee's bottom-up summary shows SOME path through it reaches a
// blocking rendezvous, however many frames down — the direct-call
// check alone is one helper-extraction away from useless.
package lockhold

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"munin/internal/analysis/facts"
	"munin/internal/analysis/framework"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &framework.Analyzer{
	Name:       "lockhold",
	Doc:        "no blocking vkernel/dlock/gate call (even transitively) while a data mutex is held; fence mutexes (relayMu/pushMu) multi-acquired only in sorted ID order",
	Run:        run,
	RunProgram: runProgram,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			w := &walker{pass: pass, exempt: map[string]bool{}}
			w.sortPos = sortPositions(pass, fn.Body)
			w.stmts(fn.Body.List, map[string]token.Pos{})
			w.checkFenceOrder(fn)
			return true
		})
	}
	return nil
}

type walker struct {
	pass    *framework.Pass
	sortPos []token.Pos // positions of sort calls in the function

	directFence []fenceAcq      // non-loop fence acquisitions, in order
	exempt      map[string]bool // mutex expr -> exempt from the blocking rule
}

type fenceAcq struct {
	expr string
	pos  token.Pos
}

// stmts walks one statement list with the current held-lock set
// (canonical mutex expr -> Lock position), mutating it for this level
// and handing copies to nested branches.
func (w *walker) stmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *walker) stmt(s ast.Stmt, held map[string]token.Pos) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if key, locked, ok := w.lockOp(st.X); ok {
			if locked {
				held[key] = st.Pos()
				w.noteFence(key, st.Pos(), false)
			} else {
				delete(held, key)
			}
			return
		}
		w.checkExpr(st.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the remainder; a
		// deferred blocking call runs after the function's own unlocks.
		// Either way the lock state does not change here.
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.checkExpr(r, held)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.checkExpr(r, held)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		w.checkExpr(st.Cond, held)
		w.stmts(st.Body.List, clone(held))
		if st.Else != nil {
			w.stmt(st.Else, clone(held))
		}
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond, held)
		}
		w.loopBody(st.Body, held)
	case *ast.RangeStmt:
		w.checkExpr(st.X, held)
		w.loopBody(st.Body, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init, held)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag, held)
		}
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, clone(held))
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, clone(held))
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			w.stmts(c.(*ast.CommClause).Body, clone(held))
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	case *ast.GoStmt:
		// The goroutine runs under its own (empty) lock set; launching
		// it does not block the holder.
	case *ast.SendStmt:
		w.checkExpr(st.Value, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, held)
					}
				}
			}
		}
	}
}

// loopBody walks a loop body, additionally enforcing the sorted-order
// rule for fence mutexes acquired inside the loop.
func (w *walker) loopBody(body *ast.BlockStmt, held map[string]token.Pos) {
	inner := clone(held)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, locked, ok := w.lockOpCall(call); ok && locked && isFence(key) {
			if !w.sortedBefore(body.Pos()) {
				w.pass.Reportf(call.Pos(), "fence mutex %s acquired in a loop without a preceding sort: multi-acquisition must happen in sorted object-ID order or concurrent flushes deadlock", key)
			}
		}
		return true
	})
	w.stmts(body.List, inner)
}

// checkExpr reports blocking calls (and bare channel receives) in an
// always-evaluated expression while non-fence mutexes are held.
func (w *walker) checkExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			if w.isBlocking(nn) {
				if keys := w.heldDataLocks(held); len(keys) > 0 {
					w.pass.Reportf(nn.Pos(), "blocking call %s while holding mutex %s (locked at line %d): data mutexes must be released before any vkernel round trip or fence",
						framework.ExprString(nn.Fun), keys[0], w.pass.Fset.Position(held[keys[0]]).Line)
				}
			}
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				if keys := w.heldDataLocks(held); len(keys) > 0 {
					w.pass.Reportf(nn.Pos(), "channel receive while holding mutex %s (locked at line %d): parks the holder for an unbounded wait",
						keys[0], w.pass.Fset.Position(held[keys[0]]).Line)
				}
			}
		}
		return true
	})
}

// lockOp matches `X.Lock()` / `X.RLock()` / `X.Unlock()` / `X.RUnlock()`
// on sync mutexes, returning the canonical mutex expression and whether
// it is an acquisition.
func (w *walker) lockOp(e ast.Expr) (key string, locked, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	return w.lockOpCall(call)
}

func (w *walker) lockOpCall(call *ast.CallExpr) (key string, locked, ok bool) {
	fn := framework.CalleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return "", false, false
	}
	isMutex := framework.FuncIs(fn, "sync", "Mutex", fn.Name()) ||
		framework.FuncIs(fn, "sync", "RWMutex", fn.Name())
	if !isMutex {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		key = framework.ExprString(sel.X)
		if w.exemptMutex(sel.X) {
			w.exempt[key] = true
		}
		return key, true, true
	case "Unlock", "RUnlock":
		return framework.ExprString(sel.X), false, true
	}
	return "", false, false
}

// exemptMutex reports whether the mutex expression is exempt from the
// hold-across-blocking rule: a named fence mutex, or the home
// directory-entry mutex (matched by the receiver's type, not its
// spelling).
func (w *walker) exemptMutex(mutexExpr ast.Expr) bool {
	sel, ok := ast.Unparen(mutexExpr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if facts.FenceNames[sel.Sel.Name] {
		return true
	}
	if tv, ok := w.pass.TypesInfo.Types[sel.X]; ok &&
		framework.NamedTypeIs(tv.Type, "munin/internal/protocol", "dirEntry") {
		return true
	}
	return false
}

func (w *walker) isBlocking(call *ast.CallExpr) bool {
	return facts.IsBlocking(framework.CalleeFunc(w.pass.TypesInfo, call))
}

// runProgram is the transitive extension of the hold-across-blocking
// rule: under a held data mutex, flag any call whose callee's
// whole-program summary reaches a blocking rendezvous some frames
// down. Directly blocking callees are skipped here — the
// intraprocedural pass already reports those with a sharper message.
func runProgram(pp *framework.ProgramPass) error {
	for _, node := range pp.Prog.Nodes {
		pkg := node.Pkg
		w := &framework.LockWalker{
			Info: pkg.Info,
			OnCall: func(call *ast.CallExpr, held map[string]token.Pos) {
				dataKeys := heldDataKeys(held)
				if len(dataKeys) == 0 {
					return
				}
				callees, _ := pp.Prog.Resolve(pkg.Info, call)
				for _, callee := range callees {
					if facts.IsBlocking(callee.Fn) {
						continue // direct hit: the Run pass reports it
					}
					if !callee.Summary.Blocks {
						continue
					}
					key := dataKeys[0]
					pp.Reportf(call.Pos(), "call to %s while holding mutex %s (locked at line %d) transitively blocks: %s — release the mutex before the round trip",
						callee.Name(), framework.LockLabel(key),
						pp.Fset.Position(held[key]).Line, callee.BlockChain())
					return
				}
			},
		}
		w.Walk(node.Decl.Body)
	}
	return nil
}

// heldDataKeys filters the held set down to data mutexes: fences and
// the documented serialization exemption may be held across round
// trips.
func heldDataKeys(held map[string]token.Pos) []string {
	var keys []string
	for k := range held {
		if !facts.IsExemptFromBlockingRule(k) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// noteFence records direct (non-loop) fence acquisitions for the
// back-to-back distinct-expression check.
func (w *walker) noteFence(key string, pos token.Pos, inLoop bool) {
	if !inLoop && isFence(key) {
		w.directFence = append(w.directFence, fenceAcq{expr: key, pos: pos})
	}
}

// checkFenceOrder flags a function that directly acquires two distinct
// fence mutexes in sequence: nothing guarantees the textual order
// matches object-ID order, so the multi-acquisition must go through a
// sorted loop instead.
func (w *walker) checkFenceOrder(fn *ast.FuncDecl) {
	for i := 1; i < len(w.directFence); i++ {
		if w.directFence[i].expr != w.directFence[0].expr {
			w.pass.Reportf(w.directFence[i].pos, "second fence mutex %s acquired while %s may still be held: multi-acquisition must be sorted by object ID (lock via a sorted loop)",
				w.directFence[i].expr, w.directFence[0].expr)
			return
		}
	}
}

// sortedBefore reports whether a sort call appears before pos in the
// enclosing function.
func (w *walker) sortedBefore(pos token.Pos) bool {
	i := sort.Search(len(w.sortPos), func(i int) bool { return w.sortPos[i] >= pos })
	return i > 0
}

// sortPositions collects the positions of sort/slices ordering calls
// in the function body, ascending.
func sortPositions(pass *framework.Pass, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if isOrderingCall(fn.Pkg().Path(), fn.Name()) {
			out = append(out, call.Pos())
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isOrderingCall matches the standard-library sorting entry points
// (package sort's Slice/Sort family and package slices' Sort family).
func isOrderingCall(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable",
			"Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.Contains(name, "Sort")
	}
	return false
}

func (w *walker) heldDataLocks(held map[string]token.Pos) []string {
	var keys []string
	for k := range held {
		if !isFence(k) && !w.exempt[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func isFence(key string) bool {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	return facts.FenceNames[key]
}

func clone(m map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
