// Package regsync holds the registry synchronization tests: the
// counter registry in internal/stats must agree with the
// docs/ARCHITECTURE.md counters table, and every perf-gate key in
// internal/perfgate must still be emitted by the newest benchmark
// trajectory file. Both are cheap pure-Go tests so they run under
// plain `go test ./...` — a rename that would silently disable a
// regression gate or orphan a docs row fails CI instead.
package regsync

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"munin/internal/perfgate"
	"munin/internal/stats"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

var backtickRe = regexp.MustCompile("`([^`]+)`")

// architectureCounters extracts the counter names documented in the
// ARCHITECTURE.md counters table: every backticked token in the first
// column of the table that follows the "| Counter | Layer | Meaning |"
// header. Parametrized tokens — `<class>` placeholders, call shapes
// like `Stats()`, and suffix fragments like `.bytes` — describe
// families, not exact names, and are skipped.
func architectureCounters(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot(t), "docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	inTable := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "| Counter | Layer |"):
			inTable = true
			continue
		case !inTable:
			continue
		case !strings.HasPrefix(line, "|"):
			inTable = false
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 || strings.HasPrefix(strings.TrimSpace(cells[1]), "---") {
			continue
		}
		for _, m := range backtickRe.FindAllStringSubmatch(cells[1], -1) {
			tok := m[1]
			if strings.ContainsAny(tok, "<(") || strings.HasPrefix(tok, ".") {
				continue
			}
			names = append(names, tok)
		}
	}
	if len(names) == 0 {
		t.Fatal("no counters table found in docs/ARCHITECTURE.md")
	}
	return names
}

// TestArchitectureTableRegistered: every exact counter name the docs
// table documents must exist in the stats registry (typo'd docs rows
// would otherwise describe counters nothing increments).
func TestArchitectureTableRegistered(t *testing.T) {
	for _, name := range architectureCounters(t) {
		if !stats.IsRegistered(name) {
			t.Errorf("ARCHITECTURE.md documents counter %q but internal/stats/names.go does not register it", name)
		}
	}
}

// TestRegistryDocumented: every registered counter name must appear in
// the docs table (counters added in code without a docs row drift out
// of the paper-reproduction story).
func TestRegistryDocumented(t *testing.T) {
	documented := map[string]bool{}
	for _, name := range architectureCounters(t) {
		documented[name] = true
	}
	for _, name := range stats.Registered() {
		if !documented[name] {
			t.Errorf("counter %q is registered in internal/stats/names.go but missing from the ARCHITECTURE.md counters table", name)
		}
	}
}

// benchTrajectory is the BENCH_<n>.json shape munin-bench emits.
type benchTrajectory []struct {
	ID      string             `json:"id"`
	Metrics map[string]float64 `json:"metrics"`
}

// newestBench loads the highest-numbered BENCH_<n>.json at the repo
// root.
func newestBench(t *testing.T) benchTrajectory {
	t.Helper()
	root := repoRoot(t)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	nameRe := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	best, bestN := "", -1
	for _, e := range entries {
		m := nameRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		t.Skip("no BENCH_<n>.json trajectory files at repo root")
	}
	data, err := os.ReadFile(filepath.Join(root, best))
	if err != nil {
		t.Fatal(err)
	}
	var traj benchTrajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("%s: %v", best, err)
	}
	return traj
}

// TestPerfgateKeysLive: every gate in the perfgate spec (headline and
// absolute) must match at least one metric in the newest trajectory
// file — a bench-side metric rename must not silently turn its
// regression gate into a no-op.
func TestPerfgateKeysLive(t *testing.T) {
	traj := newestBench(t)
	metricsOf := map[string][]string{}
	for _, exp := range traj {
		for k := range exp.Metrics {
			metricsOf[exp.ID] = append(metricsOf[exp.ID], k)
		}
		sort.Strings(metricsOf[exp.ID])
	}
	var gates []perfgate.Gate
	gates = append(gates, perfgate.Headline...)
	gates = append(gates, perfgate.Absolute...)
	for _, g := range gates {
		found := false
		for _, k := range metricsOf[g.Exp] {
			if g.Match(k) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("perf gate %s matches no metric emitted by %s in the newest trajectory (keys: %v)",
				g, g.Exp, metricsOf[g.Exp])
		}
	}
}
