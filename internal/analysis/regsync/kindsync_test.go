// Message-kind synchronization: the dispatch switches in the source
// tree and the "Message kinds" table in docs/ARCHITECTURE.md must
// agree in both directions. A kind dispatched in code without a docs
// row silently drifts out of the protocol story; a docs row whose
// constant no switch dispatches describes a message nothing handles.
package regsync

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// dispatchedKinds parses every production .go file under internal/
// and collects "pkg.kindName" for each case arm of a `switch <x>.Kind`
// dispatch statement. Purely syntactic: no type information needed,
// because the muninvet msgdispatch analyzer already enforces the
// type-level invariants on the same switches.
func dispatchedKinds(t *testing.T) map[string]bool {
	t.Helper()
	root := filepath.Join(repoRoot(t), "internal")
	out := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		pkg := file.Name.Name
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			sel, ok := sw.Tag.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Kind" {
				return true
			}
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := e.(*ast.Ident); ok && strings.HasPrefix(id.Name, "kind") {
						out[pkg+"."+id.Name] = true
					}
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no dispatch switches found under internal/")
	}
	return out
}

var kindTokenRe = regexp.MustCompile(`^[a-z][a-z0-9]*\.kind[A-Za-z0-9]+$`)

// architectureKinds extracts the `pkg.kindName` tokens from the first
// column of the ARCHITECTURE.md "Message kinds" table.
func architectureKinds(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(repoRoot(t), "docs", "ARCHITECTURE.md"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	inTable := false
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "| Kind constant | Shape |"):
			inTable = true
			continue
		case !inTable:
			continue
		case !strings.HasPrefix(line, "|"):
			inTable = false
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 || strings.HasPrefix(strings.TrimSpace(cells[1]), "---") {
			continue
		}
		for _, m := range backtickRe.FindAllStringSubmatch(cells[1], -1) {
			if kindTokenRe.MatchString(m[1]) {
				names = append(names, m[1])
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("no Message kinds table found in docs/ARCHITECTURE.md")
	}
	return names
}

// TestKindTableDispatched: every docs row must name a constant some
// dispatch switch actually handles.
func TestKindTableDispatched(t *testing.T) {
	dispatched := dispatchedKinds(t)
	for _, name := range architectureKinds(t) {
		if !dispatched[name] {
			t.Errorf("ARCHITECTURE.md message table documents %q but no `switch req.Kind` case arm dispatches it", name)
		}
	}
}

// TestDispatchedKindsDocumented: every dispatched kind must have a
// docs row.
func TestDispatchedKindsDocumented(t *testing.T) {
	documented := map[string]bool{}
	for _, name := range architectureKinds(t) {
		documented[name] = true
	}
	for name := range dispatchedKinds(t) {
		if !documented[name] {
			t.Errorf("kind %q is dispatched by a `switch req.Kind` case arm but missing from the ARCHITECTURE.md message kinds table", name)
		}
	}
}
