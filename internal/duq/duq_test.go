package duq

import (
	"errors"
	"testing"
	"testing/quick"

	"munin/internal/memory"
)

func TestMarkDirtyFirstAndCombine(t *testing.T) {
	q := New()
	if !q.MarkDirty(1) {
		t.Fatal("first mark not reported first")
	}
	if q.MarkDirty(1) {
		t.Fatal("second mark reported first")
	}
	if !q.MarkDirty(2) {
		t.Fatal("new object not first")
	}
	if q.Pending() != 2 {
		t.Fatalf("pending = %d", q.Pending())
	}
	writes, combined, _, _ := q.Stats()
	if writes != 3 || combined != 1 {
		t.Fatalf("writes=%d combined=%d", writes, combined)
	}
}

func TestFlushPreservesFirstWriteOrder(t *testing.T) {
	q := New()
	// Program order of first writes: 5, 3, 9; 3 written again.
	q.MarkDirty(5)
	q.MarkDirty(3)
	q.MarkDirty(9)
	q.MarkDirty(3)
	var got []memory.ObjectID
	if err := q.Flush(func(o memory.ObjectID) error {
		got = append(got, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []memory.ObjectID{5, 3, 9}
	if len(got) != 3 || got[0] != 5 || got[1] != 3 || got[2] != 9 {
		t.Fatalf("flush order = %v, want %v", got, want)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending after flush = %d", q.Pending())
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	q := New()
	called := false
	if err := q.Flush(func(memory.ObjectID) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("emit called on empty queue")
	}
}

func TestFlushErrorKeepsRemainder(t *testing.T) {
	q := New()
	q.MarkDirty(1)
	q.MarkDirty(2)
	q.MarkDirty(3)
	boom := errors.New("boom")
	err := q.Flush(func(o memory.ObjectID) error {
		if o == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// 1 emitted; 2 and 3 remain, 2 at head.
	if q.Pending() != 2 || !q.Contains(2) || !q.Contains(3) || q.Contains(1) {
		t.Fatalf("pending=%d contains: 1=%v 2=%v 3=%v",
			q.Pending(), q.Contains(1), q.Contains(2), q.Contains(3))
	}
	var got []memory.ObjectID
	q.Flush(func(o memory.ObjectID) error { got = append(got, o); return nil })
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("retry order = %v", got)
	}
}

func TestRedirtyAfterFlushIsFirstAgain(t *testing.T) {
	q := New()
	q.MarkDirty(7)
	q.Flush(func(memory.ObjectID) error { return nil })
	if !q.MarkDirty(7) {
		t.Fatal("object not 'first' after flush")
	}
}

func TestStatsCountUpdatesAndFlushes(t *testing.T) {
	q := New()
	q.MarkDirty(1)
	q.MarkDirty(2)
	q.Flush(func(memory.ObjectID) error { return nil })
	q.MarkDirty(1)
	q.Flush(func(memory.ObjectID) error { return nil })
	q.Flush(func(memory.ObjectID) error { return nil }) // empty
	_, _, updates, flushes := q.Stats()
	if updates != 3 || flushes != 2 {
		t.Fatalf("updates=%d flushes=%d", updates, flushes)
	}
}

func TestDrainReturnsOrderWithoutClearing(t *testing.T) {
	q := New()
	q.MarkDirty(4)
	q.MarkDirty(2)
	q.MarkDirty(4)
	q.MarkDirty(6)
	got := q.Drain()
	want := []memory.ObjectID{4, 2, 6}
	if len(got) != len(want) || got[0] != 4 || got[1] != 2 || got[2] != 6 {
		t.Fatalf("drain = %v, want %v", got, want)
	}
	// Drain is a plan, not a removal: everything is still pending.
	if q.Pending() != 3 || !q.Contains(4) || !q.Contains(2) || !q.Contains(6) {
		t.Fatalf("drain removed entries: pending=%d", q.Pending())
	}
	// The returned slice is a copy: mutating it must not corrupt the queue.
	got[0] = 99
	if !q.Contains(4) || q.Contains(99) {
		t.Fatal("drain result aliases queue state")
	}
}

func TestCommitRemovesOnlyEmitted(t *testing.T) {
	q := New()
	q.MarkDirty(1)
	q.MarkDirty(2)
	q.MarkDirty(3)
	q.MarkDirty(4)
	// A batched flush may succeed out of prefix order (one destination's
	// batch landed, another's failed): commit {1, 3} only.
	q.Commit([]memory.ObjectID{1, 3})
	if q.Pending() != 2 || q.Contains(1) || q.Contains(3) {
		t.Fatalf("commit left pending=%d 1=%v 3=%v", q.Pending(), q.Contains(1), q.Contains(3))
	}
	// The survivors keep their original relative order.
	var got []memory.ObjectID
	if err := q.Flush(func(o memory.ObjectID) error { got = append(got, o); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("surviving order = %v, want [2 4]", got)
	}
}

func TestCommitCountsUpdatesAndFlushes(t *testing.T) {
	q := New()
	q.MarkDirty(1)
	q.MarkDirty(2)
	q.Commit(q.Drain())
	_, _, updates, flushes := q.Stats()
	if updates != 2 || flushes != 1 {
		t.Fatalf("updates=%d flushes=%d", updates, flushes)
	}
	// Committing objects that are not pending is a no-op — no phantom
	// flush, no double counting.
	q.Commit([]memory.ObjectID{1, 2})
	_, _, updates, flushes = q.Stats()
	if updates != 2 || flushes != 1 {
		t.Fatalf("after redundant commit: updates=%d flushes=%d", updates, flushes)
	}
}

func TestPartialCommitLeavesNoFlushCredit(t *testing.T) {
	q := New()
	q.MarkDirty(1)
	q.MarkDirty(2)
	q.Commit([]memory.ObjectID{1})
	_, _, updates, flushes := q.Stats()
	if updates != 1 || flushes != 0 {
		t.Fatalf("partial commit: updates=%d flushes=%d", updates, flushes)
	}
	q.Commit([]memory.ObjectID{2})
	_, _, updates, flushes = q.Stats()
	if updates != 2 || flushes != 1 {
		t.Fatalf("completing commit: updates=%d flushes=%d", updates, flushes)
	}
}

func TestMidFlushErrorKeepsFailedAndLaterInOrder(t *testing.T) {
	// The duq failure contract the protocol layer relies on: when a
	// flush dies partway (a batch Call failing), the failed object and
	// every later entry must still be queued, in first-modification
	// order, so the retry propagates them in program order.
	q := New()
	for _, id := range []memory.ObjectID{10, 20, 30, 40, 50} {
		q.MarkDirty(id)
	}
	boom := errors.New("link down")
	err := q.Flush(func(o memory.ObjectID) error {
		if o == 30 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var got []memory.ObjectID
	if err := q.Flush(func(o memory.ObjectID) error { got = append(got, o); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 30 || got[1] != 40 || got[2] != 50 {
		t.Fatalf("retry order = %v, want [30 40 50]", got)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending after retry = %d", q.Pending())
	}
}

func TestCombiningProperty(t *testing.T) {
	// Property: after any sequence of writes, the number of emitted
	// updates at flush equals the number of distinct objects written,
	// and writes == updates + combined.
	f := func(objs []uint8) bool {
		q := New()
		distinct := map[memory.ObjectID]bool{}
		for _, o := range objs {
			id := memory.ObjectID(o % 16)
			q.MarkDirty(id)
			distinct[id] = true
		}
		n := 0
		q.Flush(func(memory.ObjectID) error { n++; return nil })
		writes, combined, updates, _ := q.Stats()
		return n == len(distinct) && updates == int64(n) &&
			writes == updates+combined && writes == int64(len(objs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlushOrderProperty(t *testing.T) {
	// Property: flush order is exactly the order of first occurrence.
	f := func(objs []uint8) bool {
		q := New()
		var firstOrder []memory.ObjectID
		seen := map[memory.ObjectID]bool{}
		for _, o := range objs {
			id := memory.ObjectID(o)
			if q.MarkDirty(id) != !seen[id] {
				return false
			}
			if !seen[id] {
				seen[id] = true
				firstOrder = append(firstOrder, id)
			}
		}
		var got []memory.ObjectID
		q.Flush(func(o memory.ObjectID) error { got = append(got, o); return nil })
		if len(got) != len(firstOrder) {
			return false
		}
		for i := range got {
			if got[i] != firstOrder[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
