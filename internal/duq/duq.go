// Package duq implements the delayed update queue, the mechanism behind
// Munin's loose coherence (paper §3.2). Each thread owns one Queue.
// When the thread modifies a write-buffered object (write-many, result),
// the object is marked dirty in the queue; nothing is sent. When the
// thread synchronizes — lock acquire or release, barrier, thread exit —
// the pending set is propagated as one combined update (a diff against
// the object's twin) per dirty object, in the order the objects were
// first modified.
//
// The queue is a planning structure, not an emitter. The protocol layer
// flushes in two steps: Drain returns the dirty set in
// first-modification order without removing anything, the caller plans
// the whole emission at once — grouping objects by destination,
// batching the wire messages, pipelining distinct destinations — and
// then Commit removes exactly what was emitted. A flush that fails
// partway commits only its successes; the failed object and everything
// after it stay queued in their original order, so a retry re-emits
// them without reordering. The callback-per-object Flush method remains
// as the legacy serial path (and the differential test oracle for the
// batched one).
//
// Ordering: the paper requires updates to be propagated "in the order
// that they occur in the program execution" so a remote thread can never
// observe a later update while missing an earlier one. Draining in
// first-modification order preserves exactly that inter-object order.
// Within one synchronization interval, multiple writes to the same
// object are combined into a single update — the combining the paper
// credits with reducing network traffic — which is safe because no
// remote thread may legally observe intermediate states between two of
// this thread's synchronization points.
package duq

import (
	"munin/internal/memory"
)

// Queue is one thread's delayed update queue. It is not safe for
// concurrent use: exactly one thread records into and flushes it, per
// the paper's per-thread design.
type Queue struct {
	order []memory.ObjectID
	dirty map[memory.ObjectID]bool

	writes    int64 // write operations recorded
	flushes   int64 // Flush calls that emitted at least one update
	updates   int64 // combined updates emitted
	combined  int64 // writes absorbed into an already-dirty entry
	emptyFlux int64 // flushes with nothing pending
}

// New creates an empty queue.
func New() *Queue {
	return &Queue{dirty: make(map[memory.ObjectID]bool)}
}

// MarkDirty records that obj was modified by this thread. It returns
// true if this is the first modification of obj since the last flush
// (i.e. the caller should snapshot a twin if the protocol needs one).
func (q *Queue) MarkDirty(obj memory.ObjectID) (first bool) {
	q.writes++
	if q.dirty[obj] {
		q.combined++
		return false
	}
	q.dirty[obj] = true
	q.order = append(q.order, obj)
	return true
}

// Pending returns the number of distinct objects with delayed updates.
func (q *Queue) Pending() int { return len(q.order) }

// Contains reports whether obj has a pending delayed update.
func (q *Queue) Contains(obj memory.ObjectID) bool { return q.dirty[obj] }

// Drain returns the pending dirty set in first-modification order
// without removing it. The protocol layer uses it to plan a whole
// flush at once — grouping objects by destination and batching the
// wire messages — instead of being called back object-by-object. The
// caller reports what it actually emitted with Commit; until then
// every entry stays queued, preserving Flush's failure semantics. The
// returned slice is a copy the caller may keep.
func (q *Queue) Drain() []memory.ObjectID {
	if len(q.order) == 0 {
		q.emptyFlux++
		return nil
	}
	return append([]memory.ObjectID(nil), q.order...)
}

// DrainInto is Drain appending into caller-owned scratch — the
// allocation-free form the flush hot path uses, with dst retaining its
// capacity across flushes.
func (q *Queue) DrainInto(dst []memory.ObjectID) []memory.ObjectID {
	if len(q.order) == 0 {
		q.emptyFlux++
		return dst
	}
	return append(dst, q.order...)
}

// Commit removes the given emitted objects from the queue, counting
// each as one propagated update. Objects not committed stay queued in
// their original first-modification order, so a flush that fails
// partway commits only what it emitted and the failed object plus all
// later entries remain queued in order. Objects not pending are
// ignored.
func (q *Queue) Commit(emitted []memory.ObjectID) {
	if len(emitted) == 0 {
		return
	}
	// Emissions normally arrive in drain order, so a single cursor
	// matches them in O(n) without building a set (the old per-flush
	// done-map was one of the steady-state flush allocations); the inner
	// scan only runs for out-of-order commits.
	j := 0
	removed := 0
	rest := q.order[:0]
	for _, o := range q.order {
		hit := false
		if j < len(emitted) && emitted[j] == o {
			hit = true
			j++
		} else {
			for _, e := range emitted {
				if e == o {
					hit = true
					break
				}
			}
		}
		if hit && q.dirty[o] {
			delete(q.dirty, o)
			q.updates++
			removed++
			continue
		}
		rest = append(rest, o)
	}
	q.order = rest
	if removed > 0 && len(q.order) == 0 {
		q.flushes++
	}
}

// Flush emits every pending update in first-modification order by
// invoking emit for each dirty object, then clears the queue. If emit
// returns an error the flush stops and the remaining entries stay
// queued (the failed object stays queued too, at the head).
func (q *Queue) Flush(emit func(obj memory.ObjectID) error) error {
	pending := q.Drain()
	for i, obj := range pending {
		if err := emit(obj); err != nil {
			q.Commit(pending[:i])
			return err
		}
	}
	q.Commit(pending)
	return nil
}

// Stats reports the queue's counters: total writes recorded, writes
// combined into an existing entry, updates emitted, and non-empty
// flushes.
func (q *Queue) Stats() (writes, combined, updates, flushes int64) {
	return q.writes, q.combined, q.updates, q.flushes
}
