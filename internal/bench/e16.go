package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/protocol"
	"munin/internal/stats"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// E16 measures the claim behind the lease engine: writer-side messages
// per write to a read-mostly object must be FLAT in the number of
// reading members, where the directory machine's replicated mode is
// linear (every write relays a refresh to the whole copyset).
//
// Shape: K+1 OS processes over 127.0.0.1 — node 0 is the home AND the
// writer (so the fan-out, if any, is paid on the measured side), nodes
// 1..K are readers. Each reader primes a local copy, then parks in a
// blocking ready Call while the home performs W writes and measures its
// own message and clock deltas. The readers then synchronize (flush →
// lease lapse), re-read, and report the value they saw plus their
// lease/remote-read counters, so the run doubles as a correctness
// check: every reader must observe the final write under either engine.
//
// Baseline: ReadMostly + ForceReplicated on the directory engine
// (refresh mode) — the §3.3 write-update machine at its best. Lease
// runs the same object on the Tardis-style engine: a home write is a
// version bump, nothing moves until a reader synchronizes.

const (
	kindE16Hello  = msg.KindAppBase + 0x70 // reader joined (blocks until alloc)
	kindE16Ready  = msg.KindAppBase + 0x71 // reader primed (blocks until measured)
	kindE16Report = msg.KindAppBase + 0x72 // reader's post-sync verdict + counters
)

// e16Obj is the shared object's ID on every member.
const e16Obj memory.ObjectID = 1

// E16Metrics is what the home process measures and aggregates.
type E16Metrics struct {
	K            int     `json:"k"`
	Lease        bool    `json:"lease"`
	Writes       int     `json:"writes"`
	MsgsPerWrite float64 `json:"msgs_per_write"` // home-side messages per write
	NsPerWrite   float64 `json:"ns_per_write"`
	ExpiredReads int64   `json:"expired_reads"` // sum over readers
	RemoteReads  int64   `json:"remote_reads"`  // sum over readers
	Verified     bool    `json:"verified"`      // every reader saw the final write
}

// e16Topology wires K+1 processes into one mesh.
func e16Topology(addrs []string, self msg.NodeID) transport.Topology {
	peers := make(map[msg.NodeID]string, len(addrs))
	for i, a := range addrs {
		peers[msg.NodeID(i)] = a
	}
	return transport.Topology{Self: self, Peers: peers}
}

// e16Options is the object's configuration under test: the directory
// baseline replicates eagerly (refresh), the lease engine needs nothing
// but its kind.
func e16Options(lease bool) protocol.Options {
	opts := protocol.DefaultOptions()
	opts.Home = 0
	if lease {
		opts.Engine = protocol.EngineLease
	} else {
		opts.ForceReplicated = true
		opts.Update = protocol.Refresh
	}
	return opts
}

// RunE16Home runs the home+writer member: coordinate K readers through
// hello/ready/report, measure W writes in the quiet window, and print
// the aggregated metrics.
func RunE16Home(topo transport.Topology, readers, writes int, lease bool, ready *os.File) (m E16Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	clu, node, err := meshMember(topo, false)
	if err != nil {
		return m, err
	}
	defer clu.Close()

	m = E16Metrics{K: readers, Lease: lease, Writes: writes}
	q := duq.New()
	k := clu.Kernel(topo.Self)

	allocDone := make(chan struct{})
	measured := make(chan struct{})
	joinCh := make(chan struct{}, readers)
	readyCh := make(chan struct{}, readers)
	type verdict struct {
		value           uint64
		expired, remote int64
	}
	verdicts := make(chan verdict, readers)

	k.Handle(kindE16Hello, kindE16Hello, func(k *vkernel.Kernel, req *msg.Msg) {
		joinCh <- struct{}{}
		<-allocDone // the announce reaches every connected reader first
		k.Reply(req, nil)
	})
	k.Handle(kindE16Ready, kindE16Ready, func(k *vkernel.Kernel, req *msg.Msg) {
		readyCh <- struct{}{}
		<-measured
		k.Reply(req, msg.NewBuilder(8).U64(uint64(writes)).Bytes())
	})
	k.Handle(kindE16Report, kindE16Report, func(k *vkernel.Kernel, req *msg.Msg) {
		r := msg.NewReader(req.Payload)
		verdicts <- verdict{value: r.U64(), expired: int64(r.U64()), remote: int64(r.U64())}
		k.Reply(req, nil)
	})

	if ready != nil {
		fmt.Fprintln(ready, meshReadyLine)
	}

	waitN := func(ch <-chan struct{}, n int, what string) error {
		deadline := time.After(60 * time.Second)
		for i := 0; i < n; i++ {
			select {
			case <-ch:
			case <-deadline:
				return fmt.Errorf("timed out waiting for %s (%d/%d)", what, i, n)
			}
		}
		return nil
	}

	// Every reader is connected once its hello arrived; the announce
	// then reaches all of them.
	if err := waitN(joinCh, readers, "reader hellos"); err != nil {
		return m, err
	}
	node.Alloc(protocol.Meta{
		ID: e16Obj, Name: "rm", Size: 64, Annot: protocol.ReadMostly,
		Opts: e16Options(lease),
	}, nil)
	close(allocDone)

	// Readers prime their copies, then park in the ready Call — the
	// measurement window below has no traffic but the writes' own.
	if err := waitN(readyCh, readers, "reader primes"); err != nil {
		return m, err
	}

	st := clu.Stats()
	beforeM := st.Messages()
	t0 := time.Now()
	for i := 1; i <= writes; i++ {
		node.Write(q, e16Obj, 0, u64be(uint64(i)))
	}
	elapsed := time.Since(t0)
	m.MsgsPerWrite = float64(st.Messages()-beforeM) / float64(writes)
	m.NsPerWrite = float64(elapsed.Nanoseconds()) / float64(writes)
	close(measured)

	m.Verified = true
	deadline := time.After(60 * time.Second)
	for i := 0; i < readers; i++ {
		select {
		case v := <-verdicts:
			if v.value != uint64(writes) {
				m.Verified = false
			}
			m.ExpiredReads += v.expired
			m.RemoteReads += v.remote
		case <-deadline:
			return m, fmt.Errorf("timed out waiting for reader reports (%d/%d)", i, readers)
		}
	}
	return m, nil
}

// RunE16Reader runs one reading member: prime, park, synchronize,
// verify, report.
func RunE16Reader(topo transport.Topology) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if topo.Self == 0 {
		return fmt.Errorf("reader must not be node 0 (node 0 is the home)")
	}
	clu, node, err := meshMember(topo, false)
	if err != nil {
		return err
	}
	defer clu.Close()
	k := clu.Kernel(topo.Self)
	q := duq.New()

	// Join; the reply means the allocation is installed here.
	if _, err := k.Call(0, kindE16Hello, nil); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	var buf [8]byte
	node.Read(q, e16Obj, 0, buf[:]) // prime the local copy

	// Park until the home measured its writes; the reply carries the
	// final expected value.
	reply, err := k.Call(0, kindE16Ready, nil)
	if err != nil {
		return fmt.Errorf("ready: %w", err)
	}
	want := msg.NewReader(reply.Payload).U64()

	// Synchronize: the flush is the lease-lapsing sync point; the next
	// read must observe the final write under EITHER engine.
	node.FlushQueue(q)
	node.Read(q, e16Obj, 0, buf[:])
	got := beU64(buf[:])

	// Report what we saw either way — the home cross-checks the value.
	c := node.C.Snapshot()
	b := msg.NewBuilder(24)
	b.U64(got).U64(uint64(c[stats.CLeaseExpiredReads])).U64(uint64(c[stats.CRMRemoteReads]))
	if _, err := k.Call(0, kindE16Report, b.Bytes()); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if got != want {
		return fmt.Errorf("post-sync read %d, want %d", got, want)
	}
	return nil
}

func u64be(v uint64) []byte {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[7-i] = byte(v >> (8 * i))
	}
	return b[:]
}

func beU64(b []byte) uint64 {
	var v uint64
	for _, c := range b[:8] {
		v = v<<8 | uint64(c)
	}
	return v
}

// runE16Round spawns one home + K reader processes and returns the
// home's aggregated measurements.
func runE16Round(readers, writes int, lease bool) (E16Metrics, error) {
	var m E16Metrics
	addrs, err := netutil.ReserveAddrs(readers + 1)
	if err != nil {
		return m, err
	}
	home, homeOut, err := spawnMeshChild(meshChildConfig{
		Role: "e16-home", Topo: e16Topology(addrs, 0),
		Readers: readers, Writes: writes, Lease: lease,
	})
	if err != nil {
		return m, err
	}
	defer func() {
		home.Process.Kill()
		home.Wait()
	}()
	if _, err := scanForPrefix(home, homeOut, meshReadyLine, 20*time.Second); err != nil {
		return m, fmt.Errorf("home: %w", err)
	}

	kids := make([]*exec.Cmd, 0, readers)
	defer func() {
		for _, c := range kids {
			c.Process.Kill()
			c.Wait()
		}
	}()
	for i := 1; i <= readers; i++ {
		rd, _, err := spawnMeshChild(meshChildConfig{
			Role: "e16-reader", Topo: e16Topology(addrs, msg.NodeID(i)),
		})
		if err != nil {
			return m, err
		}
		kids = append(kids, rd)
	}

	line, err := scanForPrefix(home, homeOut, meshMetricsPrefix, 90*time.Second)
	if err != nil {
		return m, fmt.Errorf("home metrics: %w", err)
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, meshMetricsPrefix)), &m); err != nil {
		return m, fmt.Errorf("home metrics: %w", err)
	}
	for i, c := range kids {
		if err := c.Wait(); err != nil {
			return m, fmt.Errorf("reader %d exit: %w", i+1, err)
		}
	}
	kids = nil
	if err := home.Wait(); err != nil {
		return m, fmt.Errorf("home exit: %w", err)
	}
	return m, nil
}

// runE16RoundRetry absorbs the reserved-port bind race by retrying.
func runE16RoundRetry(readers, writes int, lease bool) (E16Metrics, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		m, err := runE16Round(readers, writes, lease)
		if err == nil {
			return m, nil
		}
		lastErr = err
	}
	return E16Metrics{}, lastErr
}

// E16 runs the fan-out experiment: K readers × 1 writer over the mesh,
// messages per write under the copyset baseline vs the lease engine.
// The nodes argument is ignored (the scenario sweeps its own K).
func E16(nodes int) *Result {
	tab := stats.NewTable("E16: write fan-out to K readers — directory copyset vs Tardis-style leases",
		"readers", "copyset msgs/write", "lease msgs/write", "copyset ns/write", "lease ns/write",
		"lease expired reads", "lease remote reads", "verified")
	res := &Result{ID: "E16", Table: tab, Metrics: map[string]float64{}}

	const writes = 200
	for _, k := range []int{1, 2, 4} {
		base, err := runE16RoundRetry(k, writes, false)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("round k=%d copyset failed: %v", k, err))
			continue
		}
		lease, err := runE16RoundRetry(k, writes, true)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("round k=%d lease failed: %v", k, err))
			continue
		}
		verified := 0.0
		if base.Verified && lease.Verified {
			verified = 1.0
		}
		tab.AddRow(k, base.MsgsPerWrite, lease.MsgsPerWrite,
			int64(base.NsPerWrite), int64(lease.NsPerWrite),
			lease.ExpiredReads, lease.RemoteReads, verified)
		key := fmt.Sprint(k)
		res.Metrics["copyset.msgs_per_write."+key] = base.MsgsPerWrite
		res.Metrics["lease.msgs_per_write."+key] = lease.MsgsPerWrite
		res.Metrics["copyset.write.ns."+key] = base.NsPerWrite
		res.Metrics["lease.write.ns."+key] = lease.NsPerWrite
		res.Metrics["lease.expired_reads."+key] = float64(lease.ExpiredReads)
		res.Metrics["lease.remote_reads."+key] = float64(lease.RemoteReads)
		res.Metrics["verified."+key] = verified
	}
	res.Notes = append(res.Notes,
		"node 0 is home AND writer, so any fan-out lands on the measured side; readers park in a blocking call during the window, leaving the wire quiet",
		"the directory baseline (ForceReplicated, refresh) relays every write to the whole copyset: messages per write grow linearly with readers",
		"the lease engine's write is a local version bump — messages per write stay flat (zero) at every K; readers pull the final version lazily at their next synchronization, and 'verified' confirms every reader saw it")
	return res
}
