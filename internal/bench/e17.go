package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"munin/internal/api"
	"munin/internal/cluster"
	"munin/internal/core"
	"munin/internal/dlock"
	"munin/internal/failpoint"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/protocol"
	"munin/internal/stats"
	"munin/internal/transport"
)

// E17 is the recovery experiment: a three-member SPMD mesh program is
// run with one member SIGKILLed at a chosen protocol step (a failpoint
// armed inside the doomed process, or a parent-driven kill while its
// gate arrival is parked on node 0), then restarted under the same node
// ID with Config.Recover. The rejoining incarnation replays the
// recovery handshake — re-announce allocations, resync the run-gate
// sequence, re-prime replicas lazily through the ordinary fault path —
// and the experiment's oracle is differential: every member's digest of
// every shared byte must equal the digest of the identical program run
// uninterrupted in one process. The headline metrics are the rejoin
// cost: wall-clock from the restarted process's first Run to its first
// completed (valid) read, and the wire messages the rejoin consumed.
//
// The crash points cover the protocol steps named by the failpoint
// package — a flush that was planned but not sent, a flush fully sent,
// a lock grant received but not recorded, a lock held inside the
// critical section, a member parked at the run gate — plus the
// stale-arrival case the failpoints cannot reach (killed after its
// exit-gate arrival was parked on node 0, exercising the gate's
// stale-arrival purge).

// E17Metrics is what each member process measures and reports.
type E17Metrics struct {
	K           int     `json:"k"`
	Self        int     `json:"self"`
	Digest      uint64  `json:"digest"`                  // this member's digest of every shared byte
	FirstReadMs float64 `json:"first_read_ms,omitempty"` // recovering member: first Run to first completed read
	RejoinMsgs  int64   `json:"rejoin_msgs,omitempty"`   // recovering member: wire messages across the whole rejoin
	Reconnects  int64   `json:"reconnects,omitempty"`    // wire.reconnects seen by this member
	Recovered   int64   `json:"recovered,omitempty"`     // member.recovered (peers whose announce this member served)
}

// e17BodyDoneLine is printed by the doomed incarnation when its program
// body (including the digest sweep) has completed — the cue for the
// parent to kill it parked at the exit gate.
const e17BodyDoneLine = "E17BODYDONE"

// e17Value is the deterministic value member m stores in its i-th
// object; determinism is what makes a partial pre-crash flush plus an
// identical redo byte-equal to the uninterrupted run.
func e17Value(m, i int) uint64 {
	return uint64(m+1)*0x9e3779b97f4a7c15 + uint64(i)*0x100000001b3 + 0xA5
}

// e17CSValue is the value written inside the critical section.
const e17CSValue = 0xC0FFEE5EED

// e17HomedLock allocates locks until one homes on node 0: the victim
// must never be a lock home, or its crash would take the lock state
// with it (crashed-home recovery is out of scope — see ARCHITECTURE).
// The loop is deterministic, so every SPMD member allocates the same
// sequence.
func e17HomedLock(sys *core.System, members int) dlock.LockID {
	for {
		l := sys.NewLock()
		if cluster.HomeOf(uint64(l), members) == 0 {
			return l
		}
	}
}

// e17HomedBarrier is the same discipline for the barrier.
func e17HomedBarrier(sys *core.System, members int) dlock.BarrierID {
	for {
		b := sys.NewBarrier()
		if cluster.HomeOf(uint64(b), members) == 0 {
			return b
		}
	}
}

// e17Recover carries the recovering incarnation's measurement state.
type e17Recover struct {
	start       time.Time
	msgs0       int64
	firstReadMs float64
}

// e17Program is the program under test, identical in every shape. Each
// member owns K disjoint write-many objects (all homed on node 0, the
// surviving home): it primes and writes them with deterministic values,
// the victim member additionally acquires a node-0-homed lock and
// writes the critical-section object, and after a barrier every member
// digests every shared byte. skipBody is the rejoin shape for crashes
// past the barrier: the body already ran to completion in the dead
// incarnation, so the fresh one goes straight to the digest sweep.
func e17Program(sys *core.System, k, members, victim int, skipBody bool,
	hold chan struct{}, mark io.Writer, rec *e17Recover) (E17Metrics, error) {
	const objSize = 64
	opts := protocol.DefaultOptions()
	opts.Home = 0
	regions := make([][]api.RegionID, members)
	for m := 0; m < members; m++ {
		regions[m] = make([]api.RegionID, k)
		for i := 0; i < k; i++ {
			regions[m][i] = sys.Alloc(fmt.Sprintf("rc%d_%d", m, i), objSize, protocol.WriteMany, opts, nil)
		}
	}
	cs := sys.Alloc("rc_cs", objSize, protocol.WriteMany, opts, nil)
	bar := e17HomedBarrier(sys, members)
	lck := e17HomedLock(sys, members)

	met := E17Metrics{K: k, Self: sys.Self()}
	digests := make([]uint64, members)
	err := sys.RunErr(members, func(c api.Ctx) {
		me := c.ThreadID()
		var b8 [8]byte
		if rec != nil && me == victim {
			// The recovering member's first read: it must serve current
			// bytes (never the dead incarnation's), and its latency from
			// the rejoin Run is the headline recovery cost.
			c.Read(regions[me][0], 0, b8[:])
			rec.firstReadMs = float64(time.Since(rec.start).Microseconds()) / 1000
		}
		if !skipBody {
			for _, r := range regions[me] {
				c.Read(r, 0, b8[:]) // prime, so the flush cost is isolated
			}
			for i, r := range regions[me] {
				api.WriteU64(c, r, 0, e17Value(me, i))
			}
			if me == victim {
				c.Acquire(lck)
				api.WriteU64(c, cs, 0, e17CSValue)
				c.Release(lck)
			}
			c.Barrier(bar, members)
		}
		full := make([]byte, objSize)
		sum := uint64(14695981039346656037)
		mix := func(r api.RegionID) {
			c.Read(r, 0, full)
			for _, bb := range full {
				sum ^= uint64(bb)
				sum *= 1099511628211
			}
		}
		for m := 0; m < members; m++ {
			for _, r := range regions[m] {
				mix(r)
			}
		}
		mix(cs)
		digests[me] = sum
		if mark != nil && me == victim {
			fmt.Fprintln(mark, e17BodyDoneLine)
		}
		if hold != nil && me != victim {
			<-hold // parent-gated exit: keeps the exit gate open past the kill
		}
	})
	if err != nil {
		return met, err
	}
	if self := sys.Self(); self >= 0 {
		met.Digest = digests[self] // mesh: only the local thread ran
	} else {
		for m := 1; m < members; m++ {
			if digests[m] != digests[0] {
				return met, fmt.Errorf("in-process digests disagree: thread %d %016x vs thread 0 %016x",
					m, digests[m], digests[0])
			}
		}
		met.Digest = digests[0]
	}
	return met, nil
}

// RunE17Member runs one member of the E17 mesh program from its child
// config. Non-victim members print READY once their listener is bound;
// the doomed victim incarnation prints the body-done cue instead (only
// reached when no failpoint fires first).
func RunE17Member(cfg meshChildConfig, out *os.File) (E17Metrics, error) {
	topo := cfg.Topo
	sys, err := core.New(core.Config{Topology: &topo, Recover: cfg.Recover})
	if err != nil {
		return E17Metrics{}, err
	}
	defer sys.Close()
	self := int(topo.Self)
	if self != cfg.Victim && out != nil {
		fmt.Fprintln(out, meshReadyLine)
	}
	var hold chan struct{}
	if cfg.HoldExit {
		hold = make(chan struct{})
		go func() {
			sc := bufio.NewScanner(os.Stdin)
			sc.Scan()
			close(hold)
		}()
	}
	var mark io.Writer
	if self == cfg.Victim && !cfg.Recover && out != nil {
		mark = out
	}
	var rec *e17Recover
	if cfg.Recover {
		rec = &e17Recover{start: time.Now(), msgs0: sys.Messages()}
	}
	m, err := e17Program(sys, cfg.K, topo.Nodes(), cfg.Victim, cfg.SkipOut, hold, mark, rec)
	if err != nil {
		return m, err
	}
	if rec != nil {
		m.FirstReadMs = rec.firstReadMs
		m.RejoinMsgs = sys.Messages() - rec.msgs0
	}
	m.Reconnects = sys.Stats().WireReconnects()
	m.Recovered = sys.NodeCounters(self)["member.recovered"]
	return m, nil
}

// runE17InProcess runs the identical program uninterrupted in one
// process: the differential oracle every post-crash digest must match.
func runE17InProcess(k, members, victim int) (E17Metrics, error) {
	sys, err := core.New(core.Config{Nodes: members})
	if err != nil {
		return E17Metrics{}, err
	}
	defer sys.Close()
	return e17Program(sys, k, members, victim, false, nil, nil, nil)
}

// e17Case names one crash point of the sweep.
type e17Case struct {
	name  string
	crash string // failpoint spec armed in the doomed incarnation; "" = parent kills it parked at the exit gate
	skip  bool   // the barrier passed before the crash: the rejoin skips the body and only verifies
}

// e17Cases is the crash-point sweep: one case per named protocol step,
// plus the stale-arrival case only a parent-driven kill can reach.
func e17Cases() []e17Case {
	return []e17Case{
		{"mid-flush-planned", failpoint.FlushPlanned, false},
		{"mid-flush-sent", failpoint.FlushSent, false},
		{"mid-grant", failpoint.LockGranted, false},
		{"holding-lock", failpoint.LockHeld, false},
		{"parked-in-run-gate", failpoint.GatePark + ":1", true},
		{"parked-arrival", "", true},
	}
}

// E17CrashPoints returns the failpoint names the E17 sweep arms, with
// any ":skip" suffix stripped (the parent-driven parked-arrival kill,
// which arms no failpoint, is excluded). TestE17CoversAllFailpoints
// asserts this set covers failpoint.Names(), so registering a new
// crash point without extending the sweep fails CI.
func E17CrashPoints() []string {
	var out []string
	for _, cs := range e17Cases() {
		if cs.crash == "" {
			continue
		}
		out = append(out, strings.SplitN(cs.crash, ":", 2)[0])
	}
	return out
}

// spawnE17Child is spawnMeshChild plus a stdin pipe, so the parent can
// release a HoldExit member after the kill.
func spawnE17Child(cfg meshChildConfig) (*exec.Cmd, *bufio.Scanner, io.WriteCloser, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, nil, err
	}
	enc, err := json.Marshal(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "MUNIN_MESH_CHILD="+string(enc))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, nil, err
	}
	return cmd, bufio.NewScanner(out), stdin, nil
}

// e17Round runs one crash-point round: spawn the survivors, spawn the
// doomed victim incarnation, let it die (failpoint crash or parent
// kill), respawn it with Config.Recover, and collect every member's
// metrics. The victim must not be node 0: node 0 is the surviving home
// of every object, lock and barrier, and the run-gate rendezvous.
func e17Round(k, members, victimID int, cs e17Case) (vic E17Metrics, surv map[int]E17Metrics, err error) {
	addrs, err := netutil.ReserveAddrs(members)
	if err != nil {
		return vic, surv, err
	}
	policy := transport.ReconnectPolicy{Enabled: true, Backoff: 25 * time.Millisecond}
	topoFor := func(self int) transport.Topology {
		peers := make(map[msg.NodeID]string, members)
		for i := 0; i < members; i++ {
			peers[msg.NodeID(i)] = addrs[i]
		}
		return transport.Topology{Self: msg.NodeID(self), Peers: peers, Reconnect: policy}
	}

	type child struct {
		cmd   *exec.Cmd
		out   *bufio.Scanner
		stdin io.WriteCloser
	}
	var survivors []int
	for i := 0; i < members; i++ {
		if i != victimID {
			survivors = append(survivors, i)
		}
	}
	procs := make(map[int]*child, members)
	defer func() {
		for _, c := range procs {
			c.stdin.Close()
			c.cmd.Process.Kill()
			c.cmd.Wait()
		}
	}()
	for _, idx := range survivors {
		cfg := meshChildConfig{
			Role: "e17-member", Topo: topoFor(idx), K: k, Victim: victimID,
			HoldExit: cs.crash == "" && idx != 0,
		}
		cmd, out, stdin, err := spawnE17Child(cfg)
		if err != nil {
			return vic, surv, err
		}
		procs[idx] = &child{cmd, out, stdin}
		if _, err := scanForPrefix(cmd, out, meshReadyLine, 20*time.Second); err != nil {
			return vic, surv, fmt.Errorf("member %d: %w", idx, err)
		}
	}

	// The doomed incarnation.
	p1, out1, stdin1, err := spawnE17Child(meshChildConfig{
		Role: "e17-member", Topo: topoFor(victimID), K: k, Victim: victimID, Crash: cs.crash,
	})
	if err != nil {
		return vic, surv, err
	}
	stdin1.Close()
	if cs.crash == "" {
		// Parked-arrival mode: wait for the body-done cue, give the exit
		// arrival time to park on node 0, then kill. The held survivors
		// keep the gate open, so the kill provably lands while the dead
		// incarnation's arrival is parked.
		if _, err := scanForPrefix(p1, out1, e17BodyDoneLine, 60*time.Second); err != nil {
			return vic, surv, fmt.Errorf("victim body: %w", err)
		}
		time.Sleep(300 * time.Millisecond)
		p1.Process.Kill()
	}
	watchdog := time.AfterFunc(60*time.Second, func() { p1.Process.Kill() })
	werr := p1.Wait()
	fired := watchdog.Stop()
	if werr == nil {
		return vic, surv, fmt.Errorf("victim (%s) exited cleanly; the crash never fired", cs.name)
	}
	if !fired {
		return vic, surv, fmt.Errorf("victim (%s) hung instead of crashing; killed by watchdog", cs.name)
	}
	for out1.Scan() { // a dead victim must never have reported results
		if strings.HasPrefix(out1.Text(), meshMetricsPrefix) {
			return vic, surv, fmt.Errorf("victim (%s) printed metrics before dying", cs.name)
		}
	}
	if cs.crash == "" {
		// Release the held survivors only now: their exit-gate arrivals
		// must find the stale arrival already purged.
		for _, idx := range survivors {
			if idx != 0 {
				fmt.Fprintln(procs[idx].stdin, "GO")
			}
		}
	}

	// The recovered incarnation.
	p2, out2, stdin2, err := spawnE17Child(meshChildConfig{
		Role: "e17-member", Topo: topoFor(victimID), K: k, Victim: victimID,
		Recover: true, SkipOut: cs.skip,
	})
	if err != nil {
		return vic, surv, err
	}
	defer func() {
		stdin2.Close()
		p2.Process.Kill()
		p2.Wait()
	}()

	parse := func(line string) (E17Metrics, error) {
		var m E17Metrics
		err := json.Unmarshal([]byte(strings.TrimPrefix(line, meshMetricsPrefix)), &m)
		return m, err
	}
	line, err := scanForPrefix(p2, out2, meshMetricsPrefix, 60*time.Second)
	if err != nil {
		return vic, surv, fmt.Errorf("recovered victim: %w", err)
	}
	if vic, err = parse(line); err != nil {
		return vic, surv, fmt.Errorf("recovered victim metrics: %w", err)
	}
	surv = make(map[int]E17Metrics, len(survivors))
	for _, idx := range survivors {
		line, err := scanForPrefix(procs[idx].cmd, procs[idx].out, meshMetricsPrefix, 60*time.Second)
		if err != nil {
			return vic, surv, fmt.Errorf("member %d: %w", idx, err)
		}
		if surv[idx], err = parse(line); err != nil {
			return vic, surv, fmt.Errorf("member %d metrics: %w", idx, err)
		}
	}
	if err := p2.Wait(); err != nil {
		return vic, surv, fmt.Errorf("recovered victim exit: %w", err)
	}
	for _, idx := range survivors {
		if err := procs[idx].cmd.Wait(); err != nil {
			return vic, surv, fmt.Errorf("member %d exit: %w", idx, err)
		}
	}
	return vic, surv, nil
}

// e17RoundRetry absorbs the preassigned-port bind race by retrying.
func e17RoundRetry(k, members, victimID int, cs e17Case) (vic E17Metrics, surv map[int]E17Metrics, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		vic, surv, err = e17Round(k, members, victimID, cs)
		if err == nil {
			return vic, surv, nil
		}
	}
	return vic, surv, err
}

// E17 runs the recovery experiment. The nodes argument is ignored: the
// scenario is fixed at three members (a surviving home, a surviving
// bystander, and the victim).
func E17(nodes int) *Result {
	const (
		k        = 8
		members  = 3
		victimID = 1
	)
	tab := stats.NewTable("E17: SIGKILL + rejoin at every protocol step — recovery converges to byte-identical memory",
		"crash point", "digest match", "1st read ms", "rejoin msgs", "home reconnects")
	res := &Result{ID: "E17", Table: tab, Metrics: map[string]float64{}}

	want, err := runE17InProcess(k, members, victimID)
	if err != nil {
		res.Notes = append(res.Notes, fmt.Sprintf("in-process oracle failed: %v", err))
		return res
	}
	points := map[string]bool{}
	for _, cs := range e17Cases() {
		vic, surv, err := e17RoundRetry(k, members, victimID, cs)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("%s failed: %v", cs.name, err))
			continue
		}
		match := 1.0
		if vic.Digest != want.Digest {
			match = 0.0
		}
		for _, m := range surv {
			if m.Digest != want.Digest {
				match = 0.0
			}
		}
		tab.AddRow(cs.name, match, fmt.Sprintf("%.2f", vic.FirstReadMs), vic.RejoinMsgs, surv[0].Reconnects)
		res.Metrics["digest.match."+cs.name] = match
		res.Metrics["reconnects."+cs.name] = float64(surv[0].Reconnects)
		if cs.crash != "" {
			points[strings.SplitN(cs.crash, ":", 2)[0]] = true
		}
		if cs.name == "mid-flush-sent" {
			res.Metrics["rejoin.first_read_ms"] = vic.FirstReadMs
			res.Metrics["rejoin.reprime_msgs"] = float64(vic.RejoinMsgs)
		}
	}
	res.Metrics["crash.points"] = float64(len(points))
	res.Notes = append(res.Notes,
		"oracle: every member's post-rejoin digest of every shared byte equals the digest of the identical program run uninterrupted in one process — deterministic values make a partial pre-crash flush plus an identical redo byte-equal",
		"the crash points are the failpoint package's named protocol steps (flush planned, flush sent, lock granted, lock held, parked at the run gate) plus the parked-arrival kill only the parent can stage",
		"rejoin cost is lazy: the handshake itself is one announce per surviving peer plus one gate resync; replicas re-prime through the ordinary read-fault path, so rejoin msgs scales with what the program actually touches",
		"out of scope (documented in ARCHITECTURE): a crashed home, a crashed node 0, and crashes outside a Run window")
	return res
}
