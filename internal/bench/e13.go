package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/stats"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// E13 is the failure-lifecycle experiment: the E12 topology (home +
// writer as separate OS processes) with the writer process KILLED
// mid-computation (SIGKILL — wire death, no goodbye) and then REJOINED
// by a fresh process under the same node ID, with the reconnect policy
// enabled on both sides. It demonstrates the three properties the
// epoch-versioned reconnect promises:
//
//  1. During the outage, exactly the calls aimed at the dead peer fail
//     — the home's in-flight call fails with *transport.ErrPeerDown
//     (call.failed_peer = 1), and a fresh probe call fails fast (well
//     under a second) instead of hanging.
//  2. After the rejoin dial, the latch clears on a fresh connection
//     epoch: the restarted writer's calls succeed, and the home can
//     call back into it (wire.reconnects >= 1, epoch advanced past the
//     dead generation).
//  3. The flush stays O(1) writer-side wire writes — before the kill
//     and after the rejoin alike.

// E13 app-level kinds (the 0x70 range; mp.go uses KindAppBase+0..6 and
// E12's done signal is +0x7E).
const (
	kindE13Done   = msg.KindAppBase + 0x7A // writer→home Call: rejoin complete, probe me
	kindE13Phase1 = msg.KindAppBase + 0x7B // writer→home Call: workload done, park a call in me
	kindE13Echo   = msg.KindAppBase + 0x7C // home→writer Call: liveness probe (replied)
	kindE13Park   = msg.KindAppBase + 0x7D // home→writer Call: intentionally never replied
)

// Output vocabulary of the E13 child processes.
const (
	e13ParkedLine    = "E13PARKED" // writer phase 1: the parked call arrived; kill me now
	e13OutagePrefix  = "E13OUTAGE "
	e13RejoinPrefix  = "E13REJOIN "
	e13ReconnectWait = 50 * time.Millisecond // policy backoff both sides use
)

// e13Outage is the home's measurement of the outage window.
type e13Outage struct {
	// ParkedDown: the call that was blocked inside the writer when it
	// was killed failed with the typed *transport.ErrPeerDown.
	ParkedDown bool `json:"parked_down"`
	// ProbeDown: a fresh call issued during the outage failed typed.
	ProbeDown bool `json:"probe_down"`
	// ProbeMs: how long the fresh call took to fail (fail-fast bound).
	ProbeMs float64 `json:"probe_ms"`
	// FailedPeer: call.failed_peer — must be exactly the one parked
	// call, nothing else.
	FailedPeer int64 `json:"failed_peer"`
}

// e13Rejoin is the home's measurement after the writer rejoined.
type e13Rejoin struct {
	// EchoOK: the home's call INTO the restarted writer succeeded —
	// the latch is cleared in both directions.
	EchoOK bool `json:"echo_ok"`
	// Reconnects: wire.reconnects at the home.
	Reconnects int64 `json:"reconnects"`
	// Epoch: the pair's connection epoch after the rejoin (the dead
	// generation was 1, so this must be >= 2).
	Epoch uint64 `json:"epoch"`
}

// RunE13Home is the home side of the kill-and-rejoin scenario: serve
// the coherence protocol with the reconnect policy on, park a call
// inside the writer when asked, measure the outage when the writer is
// killed, and probe the rejoined incarnation before exiting.
func RunE13Home(topo transport.Topology, out *os.File) error {
	clu, node, err := meshMember(topo, false)
	if err != nil {
		return err
	}
	defer clu.Close()
	_ = node
	k := clu.Kernel(topo.Self)

	parkErr := make(chan error, 1)
	k.Handle(kindE13Phase1, kindE13Phase1, func(k *vkernel.Kernel, req *msg.Msg) {
		// Park a call inside the writer: it arrives (the writer prints
		// its marker, which is the parent's cue to kill) and is never
		// replied to — the blocked call the outage must fail.
		go func() {
			_, err := k.Call(1, kindE13Park, nil)
			parkErr <- err
		}()
		k.Reply(req, nil)
	})

	done := make(chan struct{})
	k.Handle(kindE13Done, kindE13Done, func(k *vkernel.Kernel, req *msg.Msg) {
		k.Reply(req, nil)
		// The rejoined writer is up and reached us; now call INTO it —
		// the proof that our side's latch cleared too.
		go func() {
			_, echoErr := k.Call(1, kindE13Echo, nil)
			rj := e13Rejoin{
				EchoOK:     echoErr == nil,
				Reconnects: clu.Stats().WireReconnects(),
			}
			if pe, ok := clu.Network().(transport.PeerEpochs); ok {
				rj.Epoch = pe.PeerEpoch(1)
			}
			enc, _ := json.Marshal(rj)
			fmt.Fprintf(out, "%s%s\n", e13RejoinPrefix, enc)
			close(done)
		}()
	})

	// The outage watcher: when the parked call fails (the writer was
	// killed), assert the failure vocabulary and the fail-fast bound.
	go func() {
		err := <-parkErr
		var pd *transport.ErrPeerDown
		o := e13Outage{ParkedDown: errors.As(err, &pd)}
		start := time.Now()
		_, probe := k.Call(1, kindE13Echo, nil)
		o.ProbeMs = float64(time.Since(start).Nanoseconds()) / 1e6
		o.ProbeDown = errors.As(probe, &pd)
		o.FailedPeer = k.Counters()[stats.CCallFailedPeer]
		enc, _ := json.Marshal(o)
		fmt.Fprintf(out, "%s%s\n", e13OutagePrefix, enc)
	}()

	fmt.Fprintln(out, meshReadyLine)
	select {
	case <-done:
		return nil
	case <-time.After(120 * time.Second):
		return fmt.Errorf("timed out waiting for the rejoin to complete")
	}
}

// RunE13Writer is one incarnation of the writer. Phase 1 runs the
// flush workload, asks the home to park a call inside it, announces
// the parked call's arrival, and waits to be killed. Phase 2 (a fresh
// process, same node ID) reruns the flush workload over the rejoined
// pair, tells the home, waits to be probed, and leaves gracefully.
func RunE13Writer(topo transport.Topology, k, phase int, out *os.File) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if topo.Self == 0 {
		return fmt.Errorf("the writer must not be node 0 (node 0 is the home)")
	}
	clu, node, err := meshMember(topo, false)
	if err != nil {
		return err
	}
	defer clu.Close()
	kern := clu.Kernel(topo.Self)

	// Event wait replacing the old fixed 120s nap: if the harness (the
	// home's process) dies while we wait to be killed, the transport's
	// down/gone notifiers fire and we exit promptly instead of leaking
	// a sleeping process on slow runners.
	homeLost := make(chan error, 2)
	noteLost := func(err error) {
		select {
		case homeLost <- err:
		default:
		}
	}
	if pd, ok := clu.Network().(transport.PeerDownNotifier); ok {
		pd.OnPeerDown(func(peer msg.NodeID, _ uint64, err error) {
			if peer == 0 {
				noteLost(err)
			}
		})
	}
	clu.OnPeerGone(func(peer msg.NodeID, err error) {
		if peer == 0 {
			noteLost(err)
		}
	})

	echoServed := make(chan struct{})
	var echoOnce bool
	kern.Handle(kindE13Echo, kindE13Echo, func(k *vkernel.Kernel, req *msg.Msg) {
		k.Reply(req, nil)
		if !echoOnce {
			echoOnce = true
			close(echoServed)
		}
	})
	parked := make(chan struct{})
	kern.Handle(kindE13Park, kindE13Park, func(k *vkernel.Kernel, req *msg.Msg) {
		close(parked) // never replies; the reply this call wants dies with this process
	})

	// Phase 2 must not collide with phase 1's object registrations
	// still alive at the home.
	first := memory13(phase, k)
	m, err := flushWorkload(clu, node, first, k)
	if err != nil {
		return fmt.Errorf("phase %d flush: %w", phase, err)
	}
	enc, _ := json.Marshal(m)
	fmt.Fprintf(out, "%s%s\n", meshMetricsPrefix, enc)

	if phase == 1 {
		if _, err := kern.Call(0, kindE13Phase1, nil); err != nil {
			return fmt.Errorf("phase1 signal: %w", err)
		}
		select {
		case <-parked:
			fmt.Fprintln(out, e13ParkedLine) // the parent's cue to SIGKILL us
		case <-time.After(60 * time.Second):
			return fmt.Errorf("the home never parked a call in us")
		}
		// Wait for the kill. A healthy round SIGKILLs us here; the
		// event arm fires if the home died instead (broken harness),
		// and the deadline is only the last-resort leak guard.
		select {
		case lost := <-homeLost:
			return fmt.Errorf("phase 1 writer: home lost while awaiting the kill: %v", lost)
		case <-time.After(120 * time.Second):
			return fmt.Errorf("phase 1 writer was never killed")
		}
	}

	// Phase 2: the flush above already succeeded over the rejoined
	// pair; hand the home its probe window and leave cleanly.
	if _, err := kern.Call(0, kindE13Done, nil); err != nil {
		return fmt.Errorf("done signal: %w", err)
	}
	select {
	case <-echoServed:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("the home never probed the rejoined writer")
	}
	return nil
}

// memory13 returns the first object ID for an incarnation's workload.
func memory13(phase, k int) memory.ObjectID {
	return memory.ObjectID((phase-1)*k + 1)
}

// runE13Round orchestrates one kill-and-rejoin round: home up, writer
// phase 1 up, flush measured, call parked, SIGKILL, outage measured,
// writer phase 2 up, flush measured again, rejoin probed.
func runE13Round(k int) (flush1, flush2 MeshMetrics, outage e13Outage, rejoin e13Rejoin, err error) {
	fail := func(e error) (MeshMetrics, MeshMetrics, e13Outage, e13Rejoin, error) {
		return flush1, flush2, outage, rejoin, e
	}
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		return fail(err)
	}
	policy := transport.ReconnectPolicy{Enabled: true, Backoff: e13ReconnectWait}
	topoFor := func(self msg.NodeID) transport.Topology {
		return transport.Topology{
			Self:      self,
			Peers:     map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
			Reconnect: policy,
		}
	}

	home, homeOut, err := spawnMeshChild(meshChildConfig{Role: "e13-home", Topo: topoFor(0)})
	if err != nil {
		return fail(err)
	}
	defer func() {
		home.Process.Kill()
		home.Wait()
	}()
	if _, err := scanForPrefix(home, homeOut, meshReadyLine, 20*time.Second); err != nil {
		return fail(fmt.Errorf("home: %w", err))
	}

	wa, waOut, err := spawnMeshChild(meshChildConfig{Role: "e13-writer", Topo: topoFor(1), K: k, Phase: 1})
	if err != nil {
		return fail(err)
	}
	defer func() {
		wa.Process.Kill()
		wa.Wait()
	}()
	line, err := scanForPrefix(wa, waOut, meshMetricsPrefix, 30*time.Second)
	if err != nil {
		return fail(fmt.Errorf("writer phase 1: %w", err))
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, meshMetricsPrefix)), &flush1); err != nil {
		return fail(fmt.Errorf("phase 1 metrics: %w", err))
	}
	if _, err := scanForPrefix(wa, waOut, e13ParkedLine, 20*time.Second); err != nil {
		return fail(fmt.Errorf("writer phase 1 park: %w", err))
	}
	// The kill: SIGKILL, no goodbye — the home must observe wire death.
	wa.Process.Kill()
	wa.Wait()

	line, err = scanForPrefix(home, homeOut, e13OutagePrefix, 30*time.Second)
	if err != nil {
		return fail(fmt.Errorf("home outage: %w", err))
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, e13OutagePrefix)), &outage); err != nil {
		return fail(fmt.Errorf("outage metrics: %w", err))
	}

	wb, wbOut, err := spawnMeshChild(meshChildConfig{Role: "e13-writer", Topo: topoFor(1), K: k, Phase: 2})
	if err != nil {
		return fail(err)
	}
	defer func() {
		wb.Process.Kill()
		wb.Wait()
	}()
	line, err = scanForPrefix(wb, wbOut, meshMetricsPrefix, 30*time.Second)
	if err != nil {
		return fail(fmt.Errorf("writer phase 2: %w", err))
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, meshMetricsPrefix)), &flush2); err != nil {
		return fail(fmt.Errorf("phase 2 metrics: %w", err))
	}
	line, err = scanForPrefix(home, homeOut, e13RejoinPrefix, 30*time.Second)
	if err != nil {
		return fail(fmt.Errorf("home rejoin: %w", err))
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, e13RejoinPrefix)), &rejoin); err != nil {
		return fail(fmt.Errorf("rejoin metrics: %w", err))
	}
	if err := wb.Wait(); err != nil {
		return fail(fmt.Errorf("writer phase 2 exit: %w", err))
	}
	if err := home.Wait(); err != nil {
		return fail(fmt.Errorf("home exit: %w", err))
	}
	return flush1, flush2, outage, rejoin, nil
}

// runE13RoundRetry absorbs the preassigned-port bind race by retrying.
func runE13RoundRetry(k int) (MeshMetrics, MeshMetrics, e13Outage, e13Rejoin, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		f1, f2, o, r, err := runE13Round(k)
		if err == nil {
			return f1, f2, o, r, nil
		}
		lastErr = err
	}
	return MeshMetrics{}, MeshMetrics{}, e13Outage{}, e13Rejoin{}, lastErr
}

// E13 runs the kill-and-rejoin experiment. The nodes argument is
// ignored: the scenario is fixed at two processes (home + writer).
func E13(nodes int) *Result {
	tab := stats.NewTable("E13: kill-and-rejoin writer — outage fail-fast, epoch-versioned reconnect, flush still O(1)",
		"dirty objects", "flush writes (before kill)", "flush writes (after rejoin)",
		"parked call ErrPeerDown", "probe fail ms", "call.failed_peer", "reconnects", "epoch")
	res := &Result{ID: "E13", Table: tab, Metrics: map[string]float64{}}

	const k = 64
	f1, f2, outage, rejoin, err := runE13RoundRetry(k)
	if err != nil {
		res.Notes = append(res.Notes, fmt.Sprintf("round failed: %v", err))
		return res
	}
	tab.AddRow(k, f1.Writes, f2.Writes,
		outage.ParkedDown && outage.ProbeDown, fmt.Sprintf("%.1f", outage.ProbeMs),
		outage.FailedPeer, rejoin.Reconnects, rejoin.Epoch)
	res.Metrics["flush.writes.before"] = float64(f1.Writes)
	res.Metrics["flush.writes.after"] = float64(f2.Writes)
	res.Metrics["outage.typed"] = b2f(outage.ParkedDown && outage.ProbeDown)
	res.Metrics["outage.probe_ms"] = outage.ProbeMs
	res.Metrics["outage.failed_peer"] = float64(outage.FailedPeer)
	res.Metrics["rejoin.echo_ok"] = b2f(rejoin.EchoOK)
	res.Metrics["rejoin.reconnects"] = float64(rejoin.Reconnects)
	res.Metrics["rejoin.epoch"] = float64(rejoin.Epoch)
	res.Notes = append(res.Notes,
		"the writer process is SIGKILLed with a call parked inside it: the home fails exactly that call with *transport.ErrPeerDown (call.failed_peer = 1), fresh calls fail in milliseconds instead of hanging, and a restarted writer under the same node ID rejoins on a fresh connection epoch — the latch clears on both sides, nothing is replayed, and the batched flush still costs O(1) wire writes")
	return res
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
