package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/failpoint"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/protocol"
	"munin/internal/stats"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// E12 is the first experiment whose nodes are separate OS processes:
// the E11 flush workload (K dirty write-many objects homed on a remote
// node, flushed at one synchronization point) with the home and the
// writer running as two processes connected by a transport.Topology
// over 127.0.0.1 ports. E11 already showed the writer pipeline keeping
// wire writes per sync flat in K inside one process; E12 shows the
// same pipeline doing it across a real peer mesh — lazy dial, connect
// handshake, and all — and makes writer-side backpressure
// (wire.queue_stall) visible in the output.
//
// Each round re-executes this binary twice (home, then writer) with a
// MUNIN_MESH_CHILD environment config; see MeshChildMain.

// kindMeshDone is the app-level message the writer sends the home so
// it knows the round is over and can exit.
const kindMeshDone = msg.KindAppBase + 0x7E

// meshChildConfig is the JSON carried in MUNIN_MESH_CHILD.
type meshChildConfig struct {
	Role     string             `json:"role"` // "home"/"writer" (E12), "e13-home"/"e13-writer" (E13), "e14-member" (E14), "e16-home"/"e16-reader" (E16), "e17-member" (E17)
	Topo     transport.Topology `json:"topo"`
	K        int                `json:"k"`
	Serial   bool               `json:"serial"`
	Phase    int                `json:"phase,omitempty"`     // e13-writer: 1 = doomed incarnation, 2 = rejoin
	Readers  int                `json:"readers,omitempty"`   // e16-home: reading members to coordinate
	Writes   int                `json:"writes,omitempty"`    // e16-home: measured writes
	Lease    bool               `json:"lease,omitempty"`     // e16: lease engine instead of the copyset baseline
	Victim   int                `json:"victim,omitempty"`    // e17: node index that runs the crash-prone role
	Crash    string             `json:"crash,omitempty"`     // e17: failpoint spec "name[:skip]" armed at startup
	Recover  bool               `json:"recover,omitempty"`   // e17: rejoining incarnation — run the recovery handshake
	SkipOut  bool               `json:"skip_body,omitempty"` // e17: rejoin after the barrier passed — skip the body, verify only
	HoldExit bool               `json:"hold_exit,omitempty"` // e17: park this member's thread at end of body until a stdin line arrives
}

// MeshMetrics is what the writer process measures around its flush.
type MeshMetrics struct {
	K         int   `json:"k"`
	Writes    int64 `json:"writes"`     // writer-side wire writes during the flush
	Msgs      int64 `json:"msgs"`       // writer-side messages during the flush
	Stalls    int64 `json:"stalls"`     // send-queue backpressure stalls (whole run)
	StallNs   int64 `json:"stall_ns"`   // total ns spent in those stalls
	Dials     int64 `json:"dials"`      // connections dialed (whole run)
	Misrouted int64 `json:"misrouted"`  // inbound frames addressed to some other node
	DoneAcked bool  `json:"done_acked"` // the done Call's reply survived the home's shutdown
}

// meshReadyLine is printed by the home process once its listener is
// bound and handlers are registered.
const meshReadyLine = "READY"

// meshMetricsPrefix precedes the writer's JSON metrics line.
const meshMetricsPrefix = "METRICS "

// MeshChildMain is the re-exec hook for E12's child processes: if the
// MUNIN_MESH_CHILD environment variable is set, the process runs the
// configured mesh role and returns true (the caller should exit).
// main() of munin-bench and TestMain of this package both call it
// first, so E12 can spawn children whether it runs under `go test` or
// the installed binary.
func MeshChildMain() bool {
	raw := os.Getenv("MUNIN_MESH_CHILD")
	if raw == "" {
		return false
	}
	var cfg meshChildConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mesh child: bad config: %v\n", err)
		os.Exit(2)
	}
	// Arm the crash failpoint before the role runs so every protocol
	// step is covered, config first, MUNIN_FAILPOINT as the manual
	// escape hatch.
	if cfg.Crash != "" {
		if err := failpoint.ArmCrash(cfg.Crash); err != nil {
			fmt.Fprintf(os.Stderr, "mesh child: bad crash spec: %v\n", err)
			os.Exit(2)
		}
	} else if _, err := failpoint.ArmCrashFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "mesh child: %v\n", err)
		os.Exit(2)
	}
	var err error
	switch cfg.Role {
	case "home":
		err = RunMeshHome(cfg.Topo, cfg.Serial, os.Stdout)
	case "writer":
		var m MeshMetrics
		m, err = RunMeshWriter(cfg.Topo, cfg.K, cfg.Serial)
		if err == nil {
			enc, _ := json.Marshal(m)
			fmt.Printf("%s%s\n", meshMetricsPrefix, enc)
		}
	case "e13-home":
		err = RunE13Home(cfg.Topo, os.Stdout)
	case "e13-writer":
		err = RunE13Writer(cfg.Topo, cfg.K, cfg.Phase, os.Stdout)
	case "e14-member":
		var m E14Metrics
		m, err = RunE14Member(cfg.Topo, cfg.K, cfg.Serial, os.Stdout)
		if err == nil {
			enc, _ := json.Marshal(m)
			fmt.Printf("%s%s\n", meshMetricsPrefix, enc)
		}
	case "e16-home":
		var m E16Metrics
		m, err = RunE16Home(cfg.Topo, cfg.Readers, cfg.Writes, cfg.Lease, os.Stdout)
		if err == nil {
			enc, _ := json.Marshal(m)
			fmt.Printf("%s%s\n", meshMetricsPrefix, enc)
		}
	case "e16-reader":
		err = RunE16Reader(cfg.Topo)
	case "e17-member":
		var m E17Metrics
		m, err = RunE17Member(cfg, os.Stdout)
		if err == nil {
			enc, _ := json.Marshal(m)
			fmt.Printf("%s%s\n", meshMetricsPrefix, enc)
		}
	default:
		err = fmt.Errorf("unknown mesh role %q", cfg.Role)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mesh child (%s): %v\n", cfg.Role, err)
		os.Exit(1)
	}
	return true
}

// meshMember assembles one process's slice of the mesh cluster: the
// self kernel plus a Munin protocol server on top of it.
func meshMember(topo transport.Topology, serial bool) (*cluster.Cluster, *protocol.Node, error) {
	clu, err := cluster.New(cluster.Config{Topology: &topo})
	if err != nil {
		return nil, nil, err
	}
	k := clu.Kernel(topo.Self)
	node := protocol.NewNode(k, dlock.NewService(k))
	node.SetSerialFlush(serial)
	return clu, node, nil
}

// RunMeshHome runs the home side of the two-process flush scenario: it
// binds the topology's self address, serves the coherence protocol
// (allocation installs, read faults, diff merges), and exits when the
// writer signals done. ready receives one "READY" line once the
// listener is up, which is what lets a parent orchestrate startup.
func RunMeshHome(topo transport.Topology, serial bool, ready *os.File) error {
	clu, node, err := meshMember(topo, serial)
	if err != nil {
		return err
	}
	defer clu.Close()
	_ = node
	done := make(chan struct{})
	clu.Kernel(topo.Self).Handle(kindMeshDone, kindMeshDone,
		func(k *vkernel.Kernel, req *msg.Msg) {
			// Reply BEFORE signaling: the reply is then queued ahead of
			// the goodbye this process's Close emits, and the mesh's
			// goodbye drain guarantees the writer receives it — the
			// reply-vs-EOF race the PR-3 lifecycle had is closed.
			k.Reply(req, nil)
			close(done)
		})
	if ready != nil {
		fmt.Fprintln(ready, meshReadyLine)
	}
	select {
	case <-done:
		return nil
	case <-time.After(60 * time.Second):
		return fmt.Errorf("timed out waiting for the writer's done signal")
	}
}

// RunMeshWriter runs the writer side: allocate K write-many objects
// homed on node 0 (announced to the home over the mesh), prime local
// copies, dirty all K, flush once, and measure this process's wire
// writes for the flush. The done signal is sent before shutdown so the
// home exits cleanly.
//
// The protocol layer reports coherence failures as panics (an
// in-process cluster cannot lose a peer); out here a dead home is an
// operational condition, so panics from the allocate/prime path are
// converted into ordinary errors.
func RunMeshWriter(topo transport.Topology, k int, serial bool) (m MeshMetrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	if topo.Self == 0 {
		return m, fmt.Errorf("the writer must not be node 0 (node 0 is the home)")
	}
	clu, node, err := meshMember(topo, serial)
	if err != nil {
		return m, err
	}
	defer clu.Close()

	m, err = flushWorkload(clu, node, 1, k)
	if err != nil {
		return m, err
	}
	// Two-way: the home replies and then shuts down, with its goodbye
	// queued BEHIND the reply — the goodbye drain guarantees the reply
	// is delivered before the departure marker, so this Call can never
	// lose the reply-vs-EOF race that forced PR 3 to make the done
	// signal one-way.
	if _, err := clu.Kernel(topo.Self).Call(0, kindMeshDone, nil); err != nil {
		return m, fmt.Errorf("done reply lost to the shutdown: %w", err)
	}
	m.DoneAcked = true
	return m, nil
}

// flushWorkload is the measured core shared by E12 and E13 writers:
// allocate k write-many objects (IDs first..first+k-1) homed on node
// 0, prime local copies, dirty all k, flush once, and measure this
// process's wire writes for the flush.
func flushWorkload(clu *cluster.Cluster, node *protocol.Node, first memory.ObjectID, k int) (MeshMetrics, error) {
	q := duq.New()
	opts := protocol.DefaultOptions()
	opts.Home = 0
	regions := make([]memory.ObjectID, k)
	for i := range regions {
		regions[i] = first + memory.ObjectID(i)
		meta := protocol.Meta{
			ID: regions[i], Name: fmt.Sprintf("wm%d", regions[i]), Size: 64,
			Annot: protocol.WriteMany, Opts: opts,
		}
		node.Alloc(meta, nil)
	}
	// Prime the copies so the flush cost is isolated (same discipline
	// as E10/E11).
	buf := make([]byte, 8)
	for _, r := range regions {
		node.Read(q, r, 0, buf)
	}
	for _, r := range regions {
		node.Write(q, r, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}

	st := clu.Stats()
	beforeW, beforeM := st.WireWrites(), st.Messages()
	if err := node.TryFlushQueue(q); err != nil {
		return MeshMetrics{}, fmt.Errorf("flush: %w", err)
	}
	return MeshMetrics{
		K:         k,
		Writes:    st.WireWrites() - beforeW,
		Msgs:      st.Messages() - beforeM,
		Stalls:    st.WireQueueStalls(),
		StallNs:   st.WireQueueStallNs(),
		Dials:     st.WireDials(),
		Misrouted: st.WireMisrouted(),
	}, nil
}

// e12Topology builds the two-process topology over preassigned
// addresses (netutil.ReserveAddrs; runE12Round retries the round if a
// child loses the rebind race).
func e12Topology(addrs []string, self msg.NodeID) transport.Topology {
	return transport.Topology{
		Self:  self,
		Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
	}
}

// spawnMeshChild re-executes this binary with the given role config.
func spawnMeshChild(cfg meshChildConfig) (*exec.Cmd, *bufio.Scanner, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	enc, err := json.Marshal(cfg)
	if err != nil {
		return nil, nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "MUNIN_MESH_CHILD="+string(enc))
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	return cmd, bufio.NewScanner(out), nil
}

// scanForPrefix reads lines until one starts with prefix, with a
// deadline enforced by killing the process (which unblocks the scan).
func scanForPrefix(cmd *exec.Cmd, sc *bufio.Scanner, prefix string, timeout time.Duration) (string, error) {
	timer := time.AfterFunc(timeout, func() { cmd.Process.Kill() })
	defer timer.Stop()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, prefix) {
			return line, nil
		}
	}
	return "", fmt.Errorf("child exited without printing %q (or timed out)", prefix)
}

// runE12Round spawns one home + one writer process and returns the
// writer's measurements.
func runE12Round(k int, serial bool) (MeshMetrics, error) {
	var m MeshMetrics
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		return m, err
	}
	home, homeOut, err := spawnMeshChild(meshChildConfig{
		Role: "home", Topo: e12Topology(addrs, 0), Serial: serial,
	})
	if err != nil {
		return m, err
	}
	defer func() {
		home.Process.Kill()
		home.Wait()
	}()
	if _, err := scanForPrefix(home, homeOut, meshReadyLine, 20*time.Second); err != nil {
		return m, fmt.Errorf("home: %w", err)
	}

	writer, writerOut, err := spawnMeshChild(meshChildConfig{
		Role: "writer", Topo: e12Topology(addrs, 1), K: k, Serial: serial,
	})
	if err != nil {
		return m, err
	}
	defer func() {
		writer.Process.Kill()
		writer.Wait()
	}()
	line, err := scanForPrefix(writer, writerOut, meshMetricsPrefix, 30*time.Second)
	if err != nil {
		return m, fmt.Errorf("writer: %w", err)
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, meshMetricsPrefix)), &m); err != nil {
		return m, fmt.Errorf("writer metrics: %w", err)
	}
	if err := writer.Wait(); err != nil {
		return m, fmt.Errorf("writer exit: %w", err)
	}
	if err := home.Wait(); err != nil {
		return m, fmt.Errorf("home exit: %w", err)
	}
	return m, nil
}

// runE12RoundRetry absorbs the freePorts bind race by retrying.
func runE12RoundRetry(k int, serial bool) (MeshMetrics, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		m, err := runE12Round(k, serial)
		if err == nil {
			return m, nil
		}
		lastErr = err
	}
	return MeshMetrics{}, lastErr
}

// E12 runs the two-process flush experiment. The nodes argument is
// ignored: the scenario is fixed at two processes (home + writer),
// matching E11's two-node shape.
func E12(nodes int) *Result {
	tab := stats.NewTable("E12: flush across two OS processes — writer-side wire writes per synchronization",
		"dirty objects", "serial writes", "batched writes", "batched msgs", "dials", "queue stalls", "misrouted", "done acked")
	res := &Result{ID: "E12", Table: tab, Metrics: map[string]float64{}}

	for _, k := range []int{1, 16, 64} {
		serial, err := runE12RoundRetry(k, true)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("round k=%d serial failed: %v", k, err))
			continue
		}
		batched, err := runE12RoundRetry(k, false)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("round k=%d batched failed: %v", k, err))
			continue
		}
		acked := 0.0
		if serial.DoneAcked && batched.DoneAcked {
			acked = 1.0
		}
		tab.AddRow(k, serial.Writes, batched.Writes, batched.Msgs, batched.Dials, batched.Stalls,
			batched.Misrouted, acked)
		key := fmt.Sprint(k)
		res.Metrics["serial.writes."+key] = float64(serial.Writes)
		res.Metrics["batched.writes."+key] = float64(batched.Writes)
		res.Metrics["batched.msgs."+key] = float64(batched.Msgs)
		res.Metrics["stalls."+key] = float64(batched.Stalls)
		res.Metrics["misrouted."+key] = float64(batched.Misrouted)
		res.Metrics["done.acked."+key] = acked
	}
	res.Notes = append(res.Notes,
		"two separate OS processes connected by the topology map over 127.0.0.1: the writer pipeline keeps the flush at O(1) wire writes per destination exactly as in-process E11, now across a dialed peer mesh",
		"the done signal is a two-way Call whose reply rides ahead of the home's goodbye: done acked = 1 means no in-flight reply was lost to the shutdown (the PR-3 one-way workaround is gone)")
	return res
}
