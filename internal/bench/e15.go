package bench

import (
	"fmt"
	"runtime/debug"
	"testing"
	"time"

	"munin/internal/api"
	"munin/internal/bufpool"
	"munin/internal/msg"
	"munin/internal/protocol"
	"munin/internal/stats"
	"munin/internal/transport"
)

// E15 measures the zero-copy flush pipeline: steady-state heap
// allocations and latency on the send wire path, plus end-to-end
// protocol flush latency over TCP.
//
// The wire-path rows isolate exactly the machinery the PR pooled —
// pooled message build, SendOwned ownership hand-off, the writer's
// reusable frame assembly, the fence — by pointing a mesh peer at a
// transport.RawSink (a handshake-aware discard listener whose read
// loop never allocates). testing.AllocsPerRun counts mallocs across
// the whole process, so any real receiving endpoint would contaminate
// the measurement; the sink is what makes flush.allocs=0 a meaningful,
// CI-enforceable number.
//
// flush.ns.64 is the E11 workload (64 dirty write-many objects homed
// on a remote node, one synchronization) timed end to end: protocol
// plan + diff + encode + wire + home merge + acks.
//
// Both latency metrics report the MINIMUM over repeated batches, not a
// mean: the perf-trajectory gate tracks the pipeline's latency floor,
// and a minimum is robust to host scheduling interference that shifts
// a mean wholesale on shared CI runners.
func E15(nodes int) *Result {
	tab := stats.NewTable("E15: zero-copy flush — steady-state allocations and latency",
		"path", "allocs/op", "ns/op")
	res := &Result{ID: "E15", Table: tab, Metrics: map[string]float64{}}

	allocs, wireNs, err := wirePathSteadyState()
	if err != nil {
		res.Notes = append(res.Notes, fmt.Sprintf("wire path round failed: %v", err))
		return res
	}
	tab.AddRow("send wire path (SendOwned+Flush)", allocs, fmt.Sprintf("%.0f", wireNs))
	res.Metrics["flush.allocs"] = allocs
	res.Metrics["flush.wire.ns"] = wireNs

	flushNs := protocolFlushNs(64)
	tab.AddRow("protocol flush, 64 objects (TCP)", "-", fmt.Sprintf("%.0f", flushNs))
	res.Metrics["flush.ns.64"] = flushNs

	res.Notes = append(res.Notes,
		"the send wire path — pooled build, SendOwned, writer drain, fence — performs zero steady-state heap allocations (measured against a RawSink so no receiver allocations pollute the count)",
		"flush.ns.64 is the full E11 round trip: plan+diff into pooled scratch, one-pass pooled encode, coalesced write, home merge, batched ack",
		"latency rows are minima over repeated batches — the pipeline's floor, robust to scheduling noise on shared runners")
	return res
}

// wirePathSteadyState builds a one-process mesh whose only peer is a
// RawSink and measures a steady-state SendOwned+Flush: allocations per
// op (expected 0) and wall-clock ns per op.
func wirePathSteadyState() (allocs, ns float64, err error) {
	sink, err := transport.NewRawSink()
	if err != nil {
		return 0, 0, err
	}
	defer sink.Close()
	topo := transport.Topology{
		Self:  0,
		Peers: map[msg.NodeID]string{0: "127.0.0.1:0", 1: sink.Addr()},
	}
	m, err := transport.NewMeshNetwork(topo, transport.CostModel{})
	if err != nil {
		return 0, 0, err
	}
	// Kill, not Close: the measurement wants no graceful-drain wait,
	// and the sink holds no data anyone needs flushed.
	defer m.Kill()

	ep := m.Endpoint(0)
	es, ok := ep.(transport.EncodedSender)
	if !ok {
		return 0, 0, fmt.Errorf("mesh endpoint is not an EncodedSender")
	}
	seq := uint64(0)
	var sendErr error
	send := func() {
		seq++
		wb := bufpool.Get(msg.HeaderSize + 128)
		var b msg.Builder
		b.Reset(wb.B)
		b.Skip(msg.HeaderSize + 128)
		wb.B = b.Bytes()
		for i := msg.HeaderSize; i < len(wb.B); i++ {
			wb.B[i] = byte(seq)
		}
		msg.FillHeader(wb.B, msg.KindPing, 0, 0, 1, seq)
		if e := es.SendOwned(wb); e != nil && sendErr == nil {
			sendErr = e
		}
		if e := ep.Flush(); e != nil && sendErr == nil {
			sendErr = e
		}
	}

	// Warmup: dial, fault in stats counters, grow queues and pools.
	for i := 0; i < 64; i++ {
		send()
	}
	if sendErr != nil {
		return 0, 0, sendErr
	}

	// The GC clears sync.Pools; keep it out of the measurement window.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs = testing.AllocsPerRun(200, send)

	// Minimum batch average, not a global mean: the latency floor is
	// the property being tracked, and a minimum shrugs off host
	// scheduling interference that would shift a mean wholesale on a
	// shared single-core runner.
	const batches, perBatch = 20, 100
	best := 0.0
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			send()
		}
		got := float64(time.Since(start).Nanoseconds()) / perBatch
		if b == 0 || got < best {
			best = got
		}
	}
	if sendErr != nil {
		return 0, 0, sendErr
	}
	return allocs, best, nil
}

// protocolFlushNs times the batched E11 flush end to end: k dirty
// write-many objects homed on a remote node over real TCP. It reports
// the fastest of repeated write+flush rounds in one session.
func protocolFlushNs(k int) float64 {
	sys := newMuninTCP(2)
	defer sys.Close()
	opts := protocol.DefaultOptions()
	opts.Home = 0 // writer runs on node 1: every flush crosses the wire
	regions := make([]api.RegionID, k)
	for i := range regions {
		regions[i] = sys.Alloc(fmt.Sprintf("wm%d", i), 64, protocol.WriteMany, opts, nil)
	}
	var ns float64
	sys.Run(2, func(c api.Ctx) {
		if c.ThreadID() != 1 {
			return
		}
		buf := make([]byte, 8)
		for _, r := range regions {
			c.Read(r, 0, buf)
		}
		const rounds = 50
		// One untimed round primes copies, pools, and the connection.
		for _, r := range regions {
			api.WriteU64(c, r, 0, 1)
		}
		c.Flush()
		// Fastest round, not the mean: one full round (k writes + a
		// flush round trip) is tens of microseconds, so the minimum over
		// 50 rounds is the flush pipeline's latency floor with host
		// scheduling noise stripped out.
		for round := 0; round < rounds; round++ {
			start := time.Now()
			for _, r := range regions {
				api.WriteU64(c, r, 0, uint64(round+2))
			}
			c.Flush()
			got := float64(time.Since(start).Nanoseconds())
			if round == 0 || got < ns {
				ns = got
			}
		}
	})
	return ns
}
