// Package bench is the experiment harness: one function per figure,
// table, or quantitative claim in the paper, each regenerating the
// corresponding result over the simulated cluster. The experiment index
// lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"fmt"
	"strings"

	"munin/internal/api"
	"munin/internal/apps"
	"munin/internal/core"
	"munin/internal/ivy"
	"munin/internal/mp"
	"munin/internal/protocol"
	"munin/internal/stats"
	"munin/internal/study"
	"munin/internal/transport"
)

// Result is one experiment's rendered output plus headline numbers the
// tests assert on.
type Result struct {
	ID      string
	Table   *stats.Table
	Notes   []string
	Metrics map[string]float64
}

// String renders the experiment result.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== Experiment %s ===\n", r.ID)
	sb.WriteString(r.Table.String())
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

func newMunin(nodes int) *core.System {
	s, err := core.New(core.Config{Nodes: nodes})
	if err != nil {
		panic(err)
	}
	return s
}

// newMuninTCP builds a Munin system over real loopback sockets, for the
// experiments that measure the wire path itself (E11).
func newMuninTCP(nodes int) *core.System {
	s, err := core.New(core.Config{Nodes: nodes, Transport: "tcp"})
	if err != nil {
		panic(err)
	}
	return s
}

func newIvy(nodes, page int) *ivy.System {
	s, err := ivy.New(ivy.Config{Nodes: nodes, PageSize: page})
	if err != nil {
		panic(err)
	}
	return s
}

// dataMsgs / dataBytes exclude one-time allocation (control) traffic so
// the comparisons measure steady-state sharing behaviour, which is what
// the paper's traffic claims are about.
func dataMsgs(st *transport.Stats) int64 { return st.Messages() - st.ClassMessages("control") }

func dataBytes(st *transport.Stats) int64 { return st.Bytes() - st.ClassBytes("control") }

// F1 demonstrates Figure 1: the observable difference between strict
// and loose coherence. Thread B updates an object; before B reaches a
// synchronization point, a concurrent reader C on another node may
// legally observe the old value under loose coherence (Munin
// write-many), whereas strict coherence (Ivy) makes every write
// immediately visible. After synchronization both agree.
func F1(nodes int) *Result {
	tab := stats.NewTable("Figure 1: legal read results under strict vs loose coherence",
		"system", "coherence", "read before writer syncs", "read after sync")
	res := &Result{ID: "F1", Table: tab, Metrics: map[string]float64{}}

	run := func(sys api.System, name, coherence string) (before, after uint64) {
		r := sys.Alloc("x", 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		bar := sys.NewBarrier()
		sys.Run(2, func(c api.Ctx) {
			switch c.ThreadID() {
			case 0: // writer (thread B in the figure)
				api.WriteU64(c, r, 0, 41)
				c.Barrier(bar, 2) // W4 ... synch
				api.WriteU64(c, r, 0, 42)
				c.Barrier(bar, 2)
			case 1: // reader (thread C)
				c.Barrier(bar, 2)
				before = api.ReadU64(c, r, 0) // R2: before writer's next sync
				c.Barrier(bar, 2)             // writer flushed here
				after = api.ReadU64(c, r, 0)  // R3: after sync
			}
		})
		tab.AddRow(name, coherence, fmt.Sprintf("%d (41 or 42 legal)", before), after)
		return before, after
	}

	ms := newMunin(nodes)
	b1, a1 := run(ms, "munin", "loose")
	ms.Close()
	is := newIvy(nodes, 1024)
	b2, a2 := run(is, "ivy", "strict")
	is.Close()

	res.Metrics["munin.after"] = float64(a1)
	res.Metrics["ivy.after"] = float64(a2)
	res.Metrics["munin.before"] = float64(b1)
	res.Metrics["ivy.before"] = float64(b2)
	res.Notes = append(res.Notes,
		"loose coherence: the 41 seen before the sync is a legal delayed value; after the sync both systems must (and do) return 42")
	return res
}

// T1 reproduces the Section 2 sharing study across the six programs.
func T1(nodes int) *Result {
	tab := stats.NewTable("Section 2 sharing study (six programs)",
		"program", "objects", "general-rw %accesses", "steady read %", "sync/data gap ratio")
	res := &Result{ID: "T1", Table: tab, Metrics: map[string]float64{}}

	type prog struct {
		name string
		run  func(sys api.System)
	}
	progs := []prog{
		{"matmul", func(s api.System) { apps.MatMul{N: 16, Threads: 4, Seed: 1}.Run(s) }},
		{"gauss", func(s api.System) { apps.Gauss{N: 16, Threads: 4, Seed: 2}.Run(s) }},
		{"fft", func(s api.System) { apps.FFT{N: 64, Threads: 4, Seed: 3}.Run(s) }},
		// Large enough that the work queue reliably spreads ranges over
		// every thread; with a tiny array one fast thread can drain the
		// whole queue, which degenerates the array's sharing pattern.
		{"qsort", func(s api.System) { apps.QSort{N: 1500, Threads: 4, Seed: 4, Threshold: 24}.Run(s) }},
		{"tsp", func(s api.System) { apps.TSP{Cities: 7, Threads: 4, Seed: 5}.Run(s) }},
		{"life", func(s api.System) { apps.Life{Rows: 16, Cols: 12, Generations: 4, Threads: 4, Seed: 6}.Run(s) }},
	}
	var worstGeneral float64
	for _, p := range progs {
		tr := study.NewTracer(newMunin(nodes))
		p.run(tr)
		rep := tr.Classify(p.name)
		tr.Close()
		ratio := 0.0
		if rep.MeanDataGap > 0 {
			ratio = rep.MeanSyncGap / rep.MeanDataGap
		}
		g := 100 * rep.GeneralRWShare()
		if g > worstGeneral {
			worstGeneral = g
		}
		tab.AddRow(p.name, len(rep.Objects), g, 100*rep.ReadFraction(), ratio)
	}
	res.Metrics["worst.generalrw.pct"] = worstGeneral
	res.Notes = append(res.Notes,
		"paper finding 1: 'there are very few General Read-Write objects'",
		"paper finding 3: 'the overwhelming majority of all accesses are reads, except during initialization'",
		"paper finding 4: 'latency between accesses to synchronization objects is significantly higher'")
	return res
}

// E1 compares total traffic for the six applications across Munin, Ivy
// and (where implemented) hand-coded message passing.
func E1(nodes int) *Result {
	tab := stats.NewTable("E1: traffic per application (messages / KB)",
		"app", "munin msgs", "munin KB", "ivy msgs", "ivy KB", "mp msgs", "mp KB", "ivy/munin msgs")
	res := &Result{ID: "E1", Table: tab, Metrics: map[string]float64{}}

	type entry struct {
		name  string
		run   func(sys api.System)
		mpRun func(h *mp.Harness) (ok bool)
	}
	es := []entry{
		{"matmul", func(s api.System) { apps.MatMul{N: 24, Threads: nodes, Seed: 1}.Run(s) },
			func(h *mp.Harness) bool {
				m := apps.MatMul{N: 24, Threads: nodes, Seed: 1}
				h.MatMul(m.N, m.ElemA, m.ElemB)
				return true
			}},
		{"gauss", func(s api.System) { apps.Gauss{N: 24, Threads: nodes, Seed: 2}.Run(s) },
			func(h *mp.Harness) bool {
				g := apps.Gauss{N: 24, Threads: nodes, Seed: 2}
				h.Gauss(g.N, g.Elem)
				return true
			}},
		{"fft", func(s api.System) { apps.FFT{N: 128, Threads: nodes, Seed: 3}.Run(s) },
			func(h *mp.Harness) bool {
				if nodes&(nodes-1) != 0 {
					return false // binary-exchange FFT needs 2^k nodes
				}
				f := apps.FFT{N: 128, Threads: nodes, Seed: 3}
				h.FFT(f.N, f.Sample)
				return true
			}},
		{"qsort", func(s api.System) { apps.QSort{N: 512, Threads: nodes, Seed: 4, Threshold: 64}.Run(s) },
			func(h *mp.Harness) bool {
				q := apps.QSort{N: 512, Threads: nodes, Seed: 4}
				h.QSort(q.N, q.Value)
				return true
			}},
		{"tsp", func(s api.System) { apps.TSP{Cities: 8, Threads: nodes, Seed: 5}.Run(s) },
			func(h *mp.Harness) bool {
				t := apps.TSP{Cities: 8, Threads: nodes, Seed: 5}
				h.TSP(t.Cities, 3, t.Dist)
				return true
			}},
		{"life", func(s api.System) { apps.Life{Rows: 32, Cols: 24, Generations: 6, Threads: nodes, Seed: 6}.Run(s) },
			func(h *mp.Harness) bool {
				l := apps.Life{Rows: 32, Cols: 24, Generations: 6, Threads: nodes, Seed: 6}
				h.Life(l.Rows, l.Cols, l.Generations, l.AliveAtInit)
				return true
			}},
	}
	for _, e := range es {
		ms := newMunin(nodes)
		e.run(ms)
		mm, mb := dataMsgs(ms.Stats()), dataBytes(ms.Stats())
		ms.Close()

		is := newIvy(nodes, 1024)
		e.run(is)
		im, ib := dataMsgs(is.Stats()), dataBytes(is.Stats())
		is.Close()

		mpMsgs, mpBytes := "-", "-"
		if e.mpRun != nil {
			h, err := mp.NewHarness(nodes, transport.CostModel{})
			if err == nil {
				if e.mpRun(h) {
					mpMsgs = fmt.Sprintf("%d", h.Messages())
					mpBytes = fmt.Sprintf("%.1f", float64(h.Bytes())/1024)
					res.Metrics["mp."+e.name+".msgs"] = float64(h.Messages())
					res.Metrics["mp."+e.name+".bytes"] = float64(h.Bytes())
				}
				h.Close()
			}
		}
		res.Metrics["munin."+e.name+".bytes"] = float64(mb)
		ratio := float64(im) / float64(mm)
		tab.AddRow(e.name, mm, float64(mb)/1024, im, float64(ib)/1024, mpMsgs, mpBytes, ratio)
		res.Metrics["munin."+e.name+".msgs"] = float64(mm)
		res.Metrics["ivy."+e.name+".msgs"] = float64(im)
	}
	res.Notes = append(res.Notes,
		"expected shape: Munin well below Ivy on write-shared apps; Munin within a small factor of hand-coded MP")
	return res
}

// E2 reproduces the paper's matrix-multiply discussion (§3.2): under
// strict coherence the result matrix bounces between machines; with
// delayed updates the results are propagated once to their final
// destination. We sweep N and report result-object traffic.
func E2(nodes int) *Result {
	tab := stats.NewTable("E2: matmul result-matrix traffic (delayed updates vs strict)",
		"N", "munin msgs", "ivy msgs", "ivy/munin")
	res := &Result{ID: "E2", Table: tab, Metrics: map[string]float64{}}
	for _, n := range []int{16, 32, 48} {
		m := apps.MatMul{N: n, Threads: nodes, Seed: 1}
		ms := newMunin(nodes)
		m.Run(ms)
		mm := ms.Messages()
		ms.Close()
		is := newIvy(nodes, 1024)
		m.Run(is)
		im := is.Messages()
		is.Close()
		tab.AddRow(n, mm, im, float64(im)/float64(mm))
		res.Metrics[fmt.Sprintf("ratio.%d", n)] = float64(im) / float64(mm)
	}
	res.Notes = append(res.Notes, "the gap grows with N: each C row moves once under Munin, repeatedly under Ivy")
	return res
}

// E3 is the §3.4.1 dynamic decision: replication vs remote load/store
// for read-mostly data, swept over the read fraction of the access mix.
func E3(nodes int) *Result {
	tab := stats.NewTable("E3: read-mostly — remote load/store vs replication (messages)",
		"reads per write", "remote l/s msgs", "replicated msgs", "winner")
	res := &Result{ID: "E3", Table: tab, Metrics: map[string]float64{}}

	workload := func(sys api.System, readsPerWrite int, force bool) int64 {
		opts := protocol.DefaultOptions()
		opts.ForceReplicated = force
		r := sys.Alloc("rm", 64, protocol.ReadMostly, opts, nil)
		before := sys.Messages()
		sys.Run(nodes, func(c api.Ctx) {
			buf := make([]byte, 8)
			for i := 0; i < 20; i++ {
				if c.ThreadID() == 0 && i%2 == 0 {
					api.WriteU64(c, r, 0, uint64(i))
				}
				for k := 0; k < readsPerWrite/2; k++ {
					c.Read(r, 0, buf)
				}
			}
		})
		return sys.Messages() - before
	}
	var crossoverSeen bool
	prevWinner := ""
	for _, rpw := range []int{1, 2, 8, 32} {
		ms := newMunin(nodes)
		remote := workload(ms, rpw, false)
		ms.Close()
		ms2 := newMunin(nodes)
		repl := workload(ms2, rpw, true)
		ms2.Close()
		winner := "replicated"
		if remote < repl {
			winner = "remote"
		}
		if prevWinner != "" && winner != prevWinner {
			crossoverSeen = true
		}
		prevWinner = winner
		tab.AddRow(rpw, remote, repl, winner)
		res.Metrics[fmt.Sprintf("remote.%d", rpw)] = float64(remote)
		res.Metrics[fmt.Sprintf("repl.%d", rpw)] = float64(repl)
	}
	if crossoverSeen {
		res.Metrics["crossover"] = 1
	}
	res.Notes = append(res.Notes,
		"each approach wins somewhere: remote load/store when writes are frequent, replication when reads dominate (§3.4.1)")
	return res
}

// E4 is the §3.4.2 decision: invalidate vs refresh for a replicated
// object, swept over how many nodes re-read between writes (the
// Eggers-Katz locality axis).
func E4(nodes int) *Result {
	tab := stats.NewTable("E4: invalidate vs refresh for replicated copies (messages)",
		"re-readers per write", "invalidate msgs", "refresh msgs", "winner")
	res := &Result{ID: "E4", Table: tab, Metrics: map[string]float64{}}

	workload := func(sys api.System, rereaders int, mode protocol.UpdateMode) int64 {
		opts := protocol.DefaultOptions()
		opts.ForceReplicated = true
		opts.Update = mode
		opts.Home = 0
		r := sys.Alloc("rm", 64, protocol.ReadMostly, opts, nil)
		bar := sys.NewBarrier()
		before := sys.Messages()
		sys.Run(nodes, func(c api.Ctx) {
			buf := make([]byte, 8)
			c.Read(r, 0, buf) // join the copyset
			c.Barrier(bar, nodes)
			for i := 0; i < 16; i++ {
				if c.ThreadID() == 0 {
					api.WriteU64(c, r, 0, uint64(i))
				}
				c.Barrier(bar, nodes)
				if c.ThreadID() != 0 && c.ThreadID() <= rereaders {
					c.Read(r, 0, buf)
				}
				c.Barrier(bar, nodes)
			}
		})
		return sys.Messages() - before
	}
	prev := ""
	cross := false
	for _, rr := range []int{0, 1, nodes - 1} {
		ms := newMunin(nodes)
		inv := workload(ms, rr, protocol.Invalidate)
		ms.Close()
		ms2 := newMunin(nodes)
		ref := workload(ms2, rr, protocol.Refresh)
		ms2.Close()
		winner := "refresh"
		if inv < ref {
			winner = "invalidate"
		}
		if prev != "" && winner != prev {
			cross = true
		}
		prev = winner
		tab.AddRow(rr, inv, ref, winner)
		res.Metrics[fmt.Sprintf("inv.%d", rr)] = float64(inv)
		res.Metrics[fmt.Sprintf("ref.%d", rr)] = float64(ref)
	}
	if cross {
		res.Metrics["crossover"] = 1
	}
	res.Notes = append(res.Notes,
		"Eggers-Katz: invalidation wins with per-processor locality (few re-readers), refresh wins under fine-grained sharing (many re-readers)")
	return res
}
