package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"munin/internal/api"
	"munin/internal/core"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/protocol"
	"munin/internal/stats"
	"munin/internal/transport"
)

// E14 is the tentpole experiment of the SPMD runtime: a real public-API
// program (munin.Config → core.System: Alloc / NewBarrier / Run / Ctx,
// not a hand-driven protocol.Node) executed in two shapes —
//
//   - in-process, Config{Nodes: 2}: the simulated cluster E1..E11 use;
//   - two OS processes over 127.0.0.1, Config{Topology}: each process
//     one SPMD member running the identical program, deterministic
//     allocation, Run gating the cluster.
//
// and asserts the paper's transparency promise quantitatively: the
// shared-memory result is byte-identical across shapes (digest.match),
// and the delayed-update flush of K dirty objects still costs O(1)
// writer-side wire writes when the writer thread lives in its own
// process and reaches the home over the mesh (batched.writes flat in
// K; serial.writes grows as ~2K — the same separation E11/E12 showed
// one layer down).
//
// E12 drove protocol.Node by hand across two processes; E14 retires
// that asterisk — the program below never names a node, a kernel, or a
// message.

// E14Metrics is what each member process measures and reports.
type E14Metrics struct {
	K      int    `json:"k"`
	Self   int    `json:"self"`
	Digest uint64 `json:"digest"` // thread 0's view of all shared bytes (self 0 only)
	Writes int64  `json:"writes"` // this process's wire writes during the flush (self 1 only)
	Msgs   int64  `json:"msgs"`   // this process's messages during the flush (self 1 only)
}

// e14Program is the program under test, identical in every shape: K
// write-many objects homed on node 0, a two-thread team (round-robin:
// thread 0 on node 0, thread 1 on node 1). Thread 1 primes, dirties
// all K and flushes once (measuring its process's wire writes around
// the flush); thread 0 then digests every shared byte. On a mesh
// member only the local thread runs; in-process both do.
func e14Program(sys *core.System, k int) (E14Metrics, error) {
	const objSize = 64
	opts := protocol.DefaultOptions()
	opts.Home = 0
	regions := make([]api.RegionID, k)
	for i := range regions {
		regions[i] = sys.Alloc(fmt.Sprintf("wm%d", i), objSize, protocol.WriteMany, opts, nil)
	}
	bar := sys.NewBarrier()

	m := E14Metrics{K: k, Self: sys.Self()}
	err := sys.RunErr(2, func(c api.Ctx) {
		if c.ThreadID() == 1 {
			// Prime local copies so the flush cost is isolated (the
			// E10/E11/E12 discipline), then dirty every object.
			buf := make([]byte, 8)
			for _, r := range regions {
				c.Read(r, 0, buf)
			}
			for i, r := range regions {
				api.WriteU64(c, r, 0, uint64(i)*0x9e3779b97f4a7c15+1)
			}
			st := sys.Stats()
			beforeW, beforeM := st.WireWrites(), st.Messages()
			c.Flush()
			m.Writes = st.WireWrites() - beforeW
			m.Msgs = st.Messages() - beforeM
		}
		c.Barrier(bar, 2)
		if c.ThreadID() == 0 {
			buf := make([]byte, objSize)
			sum := uint64(14695981039346656037)
			for _, r := range regions {
				c.Read(r, 0, buf)
				for _, b := range buf {
					sum ^= uint64(b)
					sum *= 1099511628211
				}
			}
			m.Digest = sum
		}
	})
	return m, err
}

// RunE14Member runs one SPMD member of the two-process E14 program.
// Member 0 prints READY to ready once its listener is bound (before
// Run blocks at the enter gate), so a parent can order the spawns.
func RunE14Member(topo transport.Topology, k int, serial bool, ready *os.File) (E14Metrics, error) {
	sys, err := core.New(core.Config{Topology: &topo})
	if err != nil {
		return E14Metrics{}, err
	}
	defer sys.Close()
	sys.ProtocolNode(int(topo.Self)).SetSerialFlush(serial)
	if topo.Self == 0 && ready != nil {
		fmt.Fprintln(ready, meshReadyLine)
	}
	return e14Program(sys, k)
}

// runE14InProcess runs the identical program on the in-process
// simulated cluster and returns thread 0's digest.
func runE14InProcess(k int, serial bool) (E14Metrics, error) {
	sys, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		return E14Metrics{}, err
	}
	defer sys.Close()
	for i := 0; i < 2; i++ {
		sys.ProtocolNode(i).SetSerialFlush(serial)
	}
	return e14Program(sys, k)
}

// runE14Round spawns the two member processes and returns member 1's
// flush measurement and member 0's digest.
func runE14Round(k int, serial bool) (writer, home E14Metrics, err error) {
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		return writer, home, err
	}
	topo := func(self msg.NodeID) transport.Topology {
		return transport.Topology{
			Self:  self,
			Peers: map[msg.NodeID]string{0: addrs[0], 1: addrs[1]},
		}
	}
	m0, out0, err := spawnMeshChild(meshChildConfig{Role: "e14-member", Topo: topo(0), K: k, Serial: serial})
	if err != nil {
		return writer, home, err
	}
	defer func() {
		m0.Process.Kill()
		m0.Wait()
	}()
	if _, err := scanForPrefix(m0, out0, meshReadyLine, 20*time.Second); err != nil {
		return writer, home, fmt.Errorf("member 0: %w", err)
	}
	m1, out1, err := spawnMeshChild(meshChildConfig{Role: "e14-member", Topo: topo(1), K: k, Serial: serial})
	if err != nil {
		return writer, home, err
	}
	defer func() {
		m1.Process.Kill()
		m1.Wait()
	}()

	parse := func(line string) (E14Metrics, error) {
		var m E14Metrics
		err := json.Unmarshal([]byte(strings.TrimPrefix(line, meshMetricsPrefix)), &m)
		return m, err
	}
	line, err := scanForPrefix(m1, out1, meshMetricsPrefix, 30*time.Second)
	if err != nil {
		return writer, home, fmt.Errorf("member 1: %w", err)
	}
	if writer, err = parse(line); err != nil {
		return writer, home, fmt.Errorf("member 1 metrics: %w", err)
	}
	line, err = scanForPrefix(m0, out0, meshMetricsPrefix, 30*time.Second)
	if err != nil {
		return writer, home, fmt.Errorf("member 0: %w", err)
	}
	if home, err = parse(line); err != nil {
		return writer, home, fmt.Errorf("member 0 metrics: %w", err)
	}
	if err := m1.Wait(); err != nil {
		return writer, home, fmt.Errorf("member 1 exit: %w", err)
	}
	if err := m0.Wait(); err != nil {
		return writer, home, fmt.Errorf("member 0 exit: %w", err)
	}
	return writer, home, nil
}

// runE14RoundRetry absorbs the preassigned-port bind race by retrying.
func runE14RoundRetry(k int, serial bool) (writer, home E14Metrics, err error) {
	for attempt := 0; attempt < 3; attempt++ {
		writer, home, err = runE14Round(k, serial)
		if err == nil {
			return writer, home, nil
		}
	}
	return writer, home, err
}

// E14 runs the SPMD-runtime experiment. The nodes argument is ignored:
// the scenario is fixed at two members, matching E12's shape.
func E14(nodes int) *Result {
	tab := stats.NewTable("E14: public-API program across two OS processes — same bytes, O(1) flush writes",
		"dirty objects", "digest match", "serial writes", "batched writes", "batched msgs")
	res := &Result{ID: "E14", Table: tab, Metrics: map[string]float64{}}

	for _, k := range []int{1, 16, 64} {
		want, err := runE14InProcess(k, false)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("k=%d in-process failed: %v", k, err))
			continue
		}
		serialW, serialH, err := runE14RoundRetry(k, true)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("k=%d serial failed: %v", k, err))
			continue
		}
		batchedW, batchedH, err := runE14RoundRetry(k, false)
		if err != nil {
			res.Notes = append(res.Notes, fmt.Sprintf("k=%d batched failed: %v", k, err))
			continue
		}
		match := 0.0
		if serialH.Digest == want.Digest && batchedH.Digest == want.Digest {
			match = 1.0
		}
		tab.AddRow(k, match, serialW.Writes, batchedW.Writes, batchedW.Msgs)
		key := fmt.Sprint(k)
		res.Metrics["digest.match."+key] = match
		res.Metrics["serial.writes."+key] = float64(serialW.Writes)
		res.Metrics["batched.writes."+key] = float64(batchedW.Writes)
		res.Metrics["batched.msgs."+key] = float64(batchedW.Msgs)
	}
	res.Notes = append(res.Notes,
		"the program is written against the public DSM API only (Alloc/NewBarrier/Run/Ctx) and runs unchanged as one process with Nodes: 2 and as two SPMD processes with Config.Topology — digest match = 1 means thread 0 read byte-identical shared memory in both shapes",
		"the writer member's flush stays O(1) wire writes in K over the mesh exactly as E11 (in-process TCP) and E12 (hand-driven mesh) showed; serial writes grow linearly in K",
		"allocation is coordinator-free: each member installs its own objects from program order, verified by the Run gate's setup digest")
	return res
}
