package bench

import (
	"os"
	"strings"
	"testing"
)

// TestMain lets E12 re-execute this test binary as its home/writer
// child processes (see MeshChildMain).
func TestMain(m *testing.M) {
	if MeshChildMain() {
		return
	}
	os.Exit(m.Run())
}

// The experiment assertions below are the reproduction criteria from
// DESIGN.md §4: not absolute numbers, but the paper's shapes — who
// wins, by roughly what factor, where crossovers fall.

func TestF1LooseVsStrict(t *testing.T) {
	r := F1(2)
	// After synchronization both systems must return the new value.
	if r.Metrics["munin.after"] != 42 || r.Metrics["ivy.after"] != 42 {
		t.Fatalf("post-sync values: %+v", r.Metrics)
	}
	// Strict coherence must show the latest write even before the sync.
	if r.Metrics["ivy.before"] != 41 && r.Metrics["ivy.before"] != 42 {
		t.Fatalf("ivy pre-sync value corrupt: %v", r.Metrics["ivy.before"])
	}
	// Loose: either 41 (delayed) or 42 — both legal; just not garbage.
	if b := r.Metrics["munin.before"]; b != 41 && b != 42 && b != 0 {
		t.Fatalf("munin pre-sync value illegal: %v", b)
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Fatal("render broken")
	}
}

func TestT1SharingStudyFindings(t *testing.T) {
	r := T1(4)
	// "There are very few General Read-Write objects": under 10% of
	// accesses in every program.
	if r.Metrics["worst.generalrw.pct"] > 10 {
		t.Fatalf("general read-write share too high: %v%%", r.Metrics["worst.generalrw.pct"])
	}
	if r.Table.NumRows() != 6 {
		t.Fatalf("expected 6 programs, got %d rows", r.Table.NumRows())
	}
}

func TestE1MuninBeatsIvy(t *testing.T) {
	r := E1(4)
	// Write-shared numeric apps: Munin must move fewer messages.
	for _, app := range []string{"gauss", "fft", "life", "matmul"} {
		mu := r.Metrics["munin."+app+".msgs"]
		iv := r.Metrics["ivy."+app+".msgs"]
		if mu >= iv {
			t.Errorf("%s: munin %v msgs >= ivy %v msgs", app, mu, iv)
		}
	}
}

func TestE1MuninNearHandCodedMP(t *testing.T) {
	r := E1(4)
	// The delayed-update claim, measured in data volume: Munin ships
	// within an order of magnitude of the bytes a hand-coded
	// message-passing program ships (matmul ≈2x, life ≈4x, gauss
	// ≈10x). Message counts are further apart on gauss because the
	// DSM pays explicit barrier messages where hand-coded MP gets
	// synchronization implicitly from data arrival — the exact
	// phenomenon §3.3.2 discusses.
	for _, app := range []string{"matmul", "gauss", "life"} {
		mu := r.Metrics["munin."+app+".bytes"]
		mp := r.Metrics["mp."+app+".bytes"]
		if mp == 0 {
			t.Fatalf("no mp baseline for %s", app)
		}
		if mu > 12*mp {
			t.Errorf("%s: munin %v bytes vs mp %v bytes — more than 12x", app, mu, mp)
		}
	}
}

func TestE2ResultMatrixGapGrows(t *testing.T) {
	r := E2(4)
	if r.Metrics["ratio.16"] <= 1 {
		t.Fatalf("ivy/munin ratio at N=16 is %v, want > 1", r.Metrics["ratio.16"])
	}
	if r.Metrics["ratio.48"] <= 1 {
		t.Fatalf("ivy/munin ratio at N=48 is %v, want > 1", r.Metrics["ratio.48"])
	}
}

func TestE3ReplicationVsRemoteCrossover(t *testing.T) {
	r := E3(4)
	// At the read-heavy end replication must win.
	if r.Metrics["repl.32"] >= r.Metrics["remote.32"] {
		t.Fatalf("replication not cheaper at 32 reads/write: repl=%v remote=%v",
			r.Metrics["repl.32"], r.Metrics["remote.32"])
	}
}

func TestE4InvalidateVsRefresh(t *testing.T) {
	r := E4(4)
	// No re-readers: invalidation must win (nothing to refresh).
	if r.Metrics["inv.0"] >= r.Metrics["ref.0"] {
		t.Fatalf("invalidate not cheaper with 0 re-readers: inv=%v ref=%v",
			r.Metrics["inv.0"], r.Metrics["ref.0"])
	}
	// Everyone re-reads: refresh must win (one multicast vs N refetches).
	last := r.Metrics["inv.3"]
	lastRef := r.Metrics["ref.3"]
	if lastRef >= last {
		t.Fatalf("refresh not cheaper with all re-readers: inv=%v ref=%v", last, lastRef)
	}
}

func TestE5MigratoryCheaper(t *testing.T) {
	r := E5(3)
	if r.Metrics["migratory.perCS"] >= r.Metrics["conventional.perCS"] {
		t.Fatalf("migratory %v msgs/CS >= conventional %v msgs/CS",
			r.Metrics["migratory.perCS"], r.Metrics["conventional.perCS"])
	}
}

func TestE6EagerMovementEliminatesStalls(t *testing.T) {
	r := E6(3)
	if r.Metrics["pc.stalls"] >= r.Metrics["conventional.stalls"] {
		t.Fatalf("producer-consumer stalls %v >= conventional %v",
			r.Metrics["pc.stalls"], r.Metrics["conventional.stalls"])
	}
	// Consumers stall at most once each (registration).
	if r.Metrics["pc.stalls"] > 3 {
		t.Fatalf("pc stalls = %v, want <= nodes-1", r.Metrics["pc.stalls"])
	}
}

func TestE7CombiningFlattens(t *testing.T) {
	r := E7(2)
	if r.Metrics["flush.256"] > 2*r.Metrics["flush.1"] {
		t.Fatalf("flush messages grew with writes per interval: 1→%v, 256→%v",
			r.Metrics["flush.1"], r.Metrics["flush.256"])
	}
}

func TestE8ProxiesFree(t *testing.T) {
	r := E8(2)
	if r.Metrics["proxy.100"] != 0 {
		t.Fatalf("proxy reacquisition cost %v msgs, want 0", r.Metrics["proxy.100"])
	}
	if r.Metrics["naive.100"] < 100 {
		t.Fatalf("naive reacquisition cost %v msgs, want >= 100", r.Metrics["naive.100"])
	}
}

func TestE9FalseSharing(t *testing.T) {
	r := E9(4)
	if r.Metrics["munin.msgs"] >= r.Metrics["ivy.msgs"] {
		t.Fatalf("munin %v msgs >= ivy %v msgs under false sharing",
			r.Metrics["munin.msgs"], r.Metrics["ivy.msgs"])
	}
}

func TestE10BatchedFlushIsO1(t *testing.T) {
	r := E10(2)
	// The acceptance shape: K dirty objects homed on one remote node
	// cost 2K messages serially and O(1) batched.
	for _, k := range []float64{4, 16, 64} {
		key := map[float64]string{4: "4", 16: "16", 64: "64"}[k]
		if got := r.Metrics["serial."+key]; got != 2*k {
			t.Errorf("serial.%s = %v msgs, want %v", key, got, 2*k)
		}
		if got := r.Metrics["batched."+key]; got != 2 {
			t.Errorf("batched.%s = %v msgs, want 2", key, got)
		}
	}
	// A batch of one must not cost more than the unbatched protocol.
	if r.Metrics["batched.1"] > r.Metrics["serial.1"] {
		t.Errorf("batch of one costs %v msgs vs serial %v",
			r.Metrics["batched.1"], r.Metrics["serial.1"])
	}
}

func TestE11WireWritesFlatOverTCP(t *testing.T) {
	r := E11(2)
	// The acceptance shape: over real sockets, a batched flush of K
	// dirty objects must stay O(1) wire writes per destination while
	// the serial path pays one write per message (2K).
	for _, k := range []string{"1", "4", "16", "64"} {
		if got := r.Metrics["batched.writes."+k]; got > 3 {
			t.Errorf("batched flush of %s objects took %v wire writes, want O(1)", k, got)
		}
	}
	if s, b := r.Metrics["serial.writes.64"], r.Metrics["batched.writes.64"]; s < 16*b {
		t.Errorf("serial writes (%v) not meaningfully above batched (%v) at K=64", s, b)
	}
}

func TestE12WireWritesFlatAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in short mode")
	}
	r := E12(2)
	// The acceptance shape: two separate OS processes over the topology
	// mesh, and the batched flush still costs O(1) writer-side wire
	// writes no matter how many objects are dirty.
	for _, k := range []string{"1", "16", "64"} {
		got, ok := r.Metrics["batched.writes."+k]
		if !ok {
			t.Fatalf("round k=%s produced no metrics: %v", k, r.Notes)
		}
		if got > 3 {
			t.Errorf("batched flush of %s objects took %v wire writes across processes, want O(1)", k, got)
		}
		// The done signal is a two-way Call again: its reply must ride
		// ahead of the home's goodbye, never lost to the latch.
		if acked := r.Metrics["done.acked."+k]; acked != 1 {
			t.Errorf("round k=%s: done reply lost to the shutdown (done.acked = %v, want 1)", k, acked)
		}
		if mis := r.Metrics["misrouted."+k]; mis != 0 {
			t.Errorf("round k=%s: %v misrouted frames on a correct topology, want 0", k, mis)
		}
	}
	// The serial path pays one write per diff round trip, so it must
	// grow with K while batched stays put.
	if s, b := r.Metrics["serial.writes.64"], r.Metrics["batched.writes.64"]; s < 8*b {
		t.Errorf("serial writer-side writes (%v) not meaningfully above batched (%v) at K=64", s, b)
	}
}

// TestE13KillAndRejoin is the failure-lifecycle acceptance shape:
// during the outage exactly the blocked call fails, typed and fast;
// after the re-dial the pair is healthy on a fresh epoch; and the
// flush costs O(1) wire writes before the kill and after the rejoin.
func TestE13KillAndRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in short mode")
	}
	r := E13(2)
	if len(r.Metrics) == 0 {
		t.Fatalf("round produced no metrics: %v", r.Notes)
	}
	if got := r.Metrics["outage.typed"]; got != 1 {
		t.Errorf("outage errors were not typed *transport.ErrPeerDown (outage.typed = %v)", got)
	}
	if got := r.Metrics["outage.probe_ms"]; got > 1000 {
		t.Errorf("fresh call during the outage took %vms to fail, want < 1s", got)
	}
	if got := r.Metrics["outage.failed_peer"]; got != 1 {
		t.Errorf("call.failed_peer = %v, want exactly the one parked call", got)
	}
	if got := r.Metrics["rejoin.echo_ok"]; got != 1 {
		t.Errorf("home could not call into the rejoined writer (rejoin.echo_ok = %v)", got)
	}
	if got := r.Metrics["rejoin.reconnects"]; got < 1 {
		t.Errorf("rejoin.reconnects = %v, want >= 1", got)
	}
	if got := r.Metrics["rejoin.epoch"]; got < 2 {
		t.Errorf("rejoin.epoch = %v, want >= 2 (past the dead generation)", got)
	}
	for _, m := range []string{"flush.writes.before", "flush.writes.after"} {
		if got := r.Metrics[m]; got > 3 {
			t.Errorf("%s = %v wire writes for 64 objects, want O(1)", m, got)
		}
	}
}

// TestE14PublicAPIAcrossProcesses is the SPMD-runtime acceptance
// shape: a program written against the public DSM API produces
// byte-identical shared memory run in-process (Nodes: 2) and as two
// OS processes (Config.Topology), and its flush stays O(1) writer-side
// wire writes over the mesh.
func TestE14PublicAPIAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in short mode")
	}
	r := E14(2)
	for _, k := range []string{"1", "16", "64"} {
		match, ok := r.Metrics["digest.match."+k]
		if !ok {
			t.Fatalf("round k=%s produced no metrics: %v", k, r.Notes)
		}
		if match != 1 {
			t.Errorf("round k=%s: shared-memory digest differs between in-process and two-process runs", k)
		}
		if got := r.Metrics["batched.writes."+k]; got > 3 {
			t.Errorf("batched flush of %s objects took %v wire writes across processes, want O(1)", k, got)
		}
	}
	if s, b := r.Metrics["serial.writes.64"], r.Metrics["batched.writes.64"]; s < 8*b {
		t.Errorf("serial writer-side writes (%v) not meaningfully above batched (%v) at K=64", s, b)
	}
}

func TestE17RecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in short mode")
	}
	r := E17(3)
	if len(r.Metrics) == 0 {
		t.Fatalf("sweep produced no metrics: %v", r.Notes)
	}
	for _, cs := range e17Cases() {
		match, ok := r.Metrics["digest.match."+cs.name]
		if !ok {
			t.Errorf("crash point %s produced no digest (notes: %v)", cs.name, r.Notes)
			continue
		}
		if match != 1 {
			t.Errorf("crash point %s: post-rejoin memory not byte-identical to the uninterrupted run", cs.name)
		}
		if got := r.Metrics["reconnects."+cs.name]; got < 1 {
			t.Errorf("crash point %s: home saw no wire reconnect (%v)", cs.name, got)
		}
	}
	if got := r.Metrics["crash.points"]; got < 4 {
		t.Errorf("crash-point sweep covers %v named protocol steps, want >= 4", got)
	}
	if got := r.Metrics["rejoin.first_read_ms"]; got <= 0 {
		t.Errorf("rejoin.first_read_ms = %v, want > 0", got)
	}
	if got := r.Metrics["rejoin.reprime_msgs"]; got <= 0 {
		t.Errorf("rejoin.reprime_msgs = %v, want > 0", got)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in short mode")
	}
	results := All(3)
	if len(results) != 19 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Table.NumRows() == 0 {
			t.Errorf("experiment %s produced no rows", r.ID)
		}
	}
}
