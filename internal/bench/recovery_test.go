package bench

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestRecoveryCrashPoints is the table-driven recovery proof: one
// subtest per crash point, each killing the victim member at a named
// protocol step, rejoining it with Config.Recover, and asserting the
// differential oracle — every member's post-rejoin digest of every
// shared byte equals the digest of the identical program run
// uninterrupted in one process. e17Round itself asserts the crash
// actually happened (the doomed incarnation must die abnormally and
// must not have reported results).
func TestRecoveryCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in short mode")
	}
	const (
		k       = 4
		members = 3
		victim  = 1
	)
	want, err := runE17InProcess(k, members, victim)
	if err != nil {
		t.Fatalf("in-process oracle: %v", err)
	}
	for _, cs := range e17Cases() {
		cs := cs
		t.Run(cs.name, func(t *testing.T) {
			vic, surv, err := e17RoundRetry(k, members, victim, cs)
			if err != nil {
				t.Fatalf("round: %v", err)
			}
			if vic.Digest != want.Digest {
				t.Errorf("recovered victim digest %016x != uninterrupted-run digest %016x",
					vic.Digest, want.Digest)
			}
			for idx, m := range surv {
				if m.Digest != want.Digest {
					t.Errorf("survivor %d digest %016x != uninterrupted-run digest %016x",
						idx, m.Digest, want.Digest)
				}
				if m.Recovered < 1 {
					t.Errorf("survivor %d served no recovery announce (member.recovered = %d)", idx, m.Recovered)
				}
			}
			if surv[0].Reconnects < 1 {
				t.Errorf("home saw no wire reconnect (wire.reconnects = %d)", surv[0].Reconnects)
			}
			if vic.FirstReadMs <= 0 {
				t.Errorf("recovering member reported no first-read latency (%v ms)", vic.FirstReadMs)
			}
			if vic.RejoinMsgs <= 0 {
				t.Errorf("recovering member reported no rejoin messages (%d)", vic.RejoinMsgs)
			}
		})
	}
}

// TestRecoveryChaos is the randomized schedule: a seeded (and logged,
// for replay) sequence of kill/rejoin rounds over the three-member mesh
// workload, varying the victim, the crash point and the working-set
// size, each round held to the same differential oracle. Replay a
// failure with MUNIN_CHAOS_SEED=<seed from the log>.
func TestRecoveryChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses; skipped in short mode")
	}
	seed := time.Now().UnixNano()
	if env := os.Getenv("MUNIN_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("MUNIN_CHAOS_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (replay with MUNIN_CHAOS_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	const (
		members = 3
		iters   = 4
	)
	cases := e17Cases()
	oracle := map[int]uint64{} // k -> uninterrupted-run digest
	for i := 0; i < iters; i++ {
		cs := cases[rng.Intn(len(cases))]
		victim := 1 + rng.Intn(members-1) // never node 0, the surviving home
		k := 1 + rng.Intn(8)
		t.Logf("iter %d: crash=%s victim=%d k=%d", i, cs.name, victim, k)
		want, ok := oracle[k]
		if !ok {
			m, err := runE17InProcess(k, members, victim)
			if err != nil {
				t.Fatalf("iter %d: in-process oracle: %v", i, err)
			}
			want = m.Digest
			oracle[k] = want
		}
		vic, surv, err := e17RoundRetry(k, members, victim, cs)
		if err != nil {
			t.Fatalf("iter %d (crash=%s victim=%d k=%d): %v", i, cs.name, victim, k, err)
		}
		if vic.Digest != want {
			t.Errorf("iter %d (crash=%s victim=%d k=%d): recovered digest %016x != oracle %016x",
				i, cs.name, victim, k, vic.Digest, want)
		}
		for idx, m := range surv {
			if m.Digest != want {
				t.Errorf("iter %d (crash=%s victim=%d k=%d): survivor %d digest %016x != oracle %016x",
					i, cs.name, victim, k, idx, m.Digest, want)
			}
		}
	}
}
