package bench

import (
	"fmt"

	"munin/internal/api"
	"munin/internal/protocol"
	"munin/internal/stats"
)

// E5 measures the §3.3.3 migratory optimization: an object accessed
// only inside a critical section, compared as (a) migratory — the data
// rides inside the lock transfer — vs (b) conventional — the data moves
// through its own ownership protocol on top of the lock traffic.
func E5(nodes int) *Result {
	tab := stats.NewTable("E5: critical-section object, migratory vs conventional (messages)",
		"annotation", "total msgs", "msgs per critical section")
	res := &Result{ID: "E5", Table: tab, Metrics: map[string]float64{}}

	const rounds = 10
	run := func(annot protocol.Annotation) float64 {
		sys := newMunin(nodes)
		defer sys.Close()
		lock := sys.NewLock()
		opts := protocol.DefaultOptions()
		if annot == protocol.Migratory {
			opts.Lock = lock
		}
		r := sys.Alloc("cs", 64, annot, opts, nil)
		before := sys.Messages()
		sections := 0
		// Ring of critical sections: each thread increments in turn,
		// forcing the object (and lock) to migrate every section.
		sys.Run(nodes, func(c api.Ctx) {
			for i := 0; i < rounds; i++ {
				c.Acquire(lock)
				api.WriteU64(c, r, 0, api.ReadU64(c, r, 0)+1)
				c.Release(lock)
			}
		})
		sections = rounds * nodes
		total := sys.Messages() - before
		perCS := float64(total) / float64(sections)
		tab.AddRow(annot.String(), total, perCS)
		return perCS
	}
	mig := run(protocol.Migratory)
	conv := run(protocol.Conventional)
	res.Metrics["migratory.perCS"] = mig
	res.Metrics["conventional.perCS"] = conv
	res.Notes = append(res.Notes,
		"migratory data adds zero messages beyond the lock transfer itself; conventional pays a separate ownership round per section")
	return res
}

// E6 measures the §3.3.4 producer-consumer mechanism: eager object
// movement should eliminate consumer read faults after the first.
func E6(nodes int) *Result {
	tab := stats.NewTable("E6: producer-consumer eager movement",
		"annotation", "total msgs", "consumer stalls (read faults)")
	res := &Result{ID: "E6", Table: tab, Metrics: map[string]float64{}}

	const epochs = 12
	run := func(annot protocol.Annotation) (int64, int64) {
		sys := newMunin(nodes)
		defer sys.Close()
		r := sys.Alloc("stream", 64, annot, protocol.DefaultOptions(), nil)
		bar := sys.NewBarrier()
		before := sys.Messages()
		sys.Run(nodes, func(c api.Ctx) {
			buf := make([]byte, 8)
			for e := 0; e < epochs; e++ {
				if c.ThreadID() == 0 {
					api.WriteU64(c, r, 0, uint64(e+1))
				}
				c.Barrier(bar, nodes)
				if c.ThreadID() != 0 {
					c.Read(r, 0, buf)
				}
				c.Barrier(bar, nodes)
			}
		})
		msgs := sys.Messages() - before
		var stalls int64
		for i := 0; i < nodes; i++ {
			stalls += sys.NodeCounters(i)["fault.read"]
		}
		tab.AddRow(annot.String(), msgs, stalls)
		return msgs, stalls
	}
	_, pcStalls := run(protocol.ProducerConsumer)
	_, convStalls := run(protocol.Conventional)
	res.Metrics["pc.stalls"] = float64(pcStalls)
	res.Metrics["conventional.stalls"] = float64(convStalls)
	res.Notes = append(res.Notes,
		"with eager movement consumers fault once (registration); under invalidation they fault after every write")
	return res
}

// E7 measures delayed-update combining (§3.2): many writes inside one
// synchronization interval collapse into a single diff message.
func E7(nodes int) *Result {
	tab := stats.NewTable("E7: delayed update queue combining",
		"writes per interval", "flush msgs", "writes per message")
	res := &Result{ID: "E7", Table: tab, Metrics: map[string]float64{}}

	for _, wpi := range []int{1, 8, 64, 256} {
		sys := newMunin(2)
		opts := protocol.DefaultOptions()
		opts.Home = 0 // writer runs on node 1: every flush crosses the wire
		r := sys.Alloc("wm", 1024, protocol.WriteMany, opts, nil)
		var flushMsgs int64
		sys.Run(2, func(c api.Ctx) {
			if c.ThreadID() != 1 {
				return
			}
			// Prime the copy so the flush cost is isolated.
			buf := make([]byte, 8)
			c.Read(r, 0, buf)
			before := sys.Messages()
			for i := 0; i < wpi; i++ {
				api.WriteU64(c, r, (i%128)*8, uint64(i+1))
			}
			c.Flush()
			flushMsgs = sys.Messages() - before
		})
		sys.Close()
		tab.AddRow(wpi, flushMsgs, float64(wpi)/float64(flushMsgs))
		res.Metrics[fmt.Sprintf("flush.%d", wpi)] = float64(flushMsgs)
	}
	res.Notes = append(res.Notes,
		"message count stays flat as writes per interval grow: updates to the same object are combined")
	return res
}

// E8 measures the §3.3.8 proxy benefit: repeated acquisition of a lock
// by the same node is free with proxies and a round trip without.
func E8(nodes int) *Result {
	tab := stats.NewTable("E8: distributed locks — proxy vs naive (messages)",
		"reacquisitions", "proxy msgs", "naive msgs")
	res := &Result{ID: "E8", Table: tab, Metrics: map[string]float64{}}

	run := func(k int, naive bool) int64 {
		sys := newMunin(2)
		defer sys.Close()
		if naive {
			sys.LockService(1).SetNaive(true)
		}
		lock := sys.NewLock() // homed on node 1's peer; either way remote for someone
		var used int64
		sys.Run(2, func(c api.Ctx) {
			if c.ThreadID() != 1 {
				return
			}
			c.Acquire(lock)
			c.Release(lock)
			before := sys.Messages()
			for i := 0; i < k; i++ {
				c.Acquire(lock)
				c.Release(lock)
			}
			used = sys.Messages() - before
		})
		return used
	}
	for _, k := range []int{1, 10, 100} {
		p := run(k, false)
		n := run(k, true)
		tab.AddRow(k, p, n)
		res.Metrics[fmt.Sprintf("proxy.%d", k)] = float64(p)
		res.Metrics[fmt.Sprintf("naive.%d", k)] = float64(n)
	}
	res.Notes = append(res.Notes,
		"proxies make node-local reacquisition free; the naive server pays a round trip every time")
	return res
}

// E9 measures Ivy's false sharing (§5): per-thread counters packed into
// one page ping-pong under strict page coherence, while Munin's
// write-many objects never conflict.
func E9(nodes int) *Result {
	tab := stats.NewTable("E9: false sharing — packed counters (messages)",
		"system", "msgs", "msgs per update round")
	res := &Result{ID: "E9", Table: tab, Metrics: map[string]float64{}}

	const rounds = 20
	runIvy := func() int64 {
		sys := newIvy(nodes, 1024)
		defer sys.Close()
		// All counters in one page.
		ctrs := make([]api.RegionID, nodes)
		for i := range ctrs {
			ctrs[i] = sys.Alloc(fmt.Sprintf("ctr%d", i), 8, protocol.Conventional, protocol.DefaultOptions(), nil)
		}
		bar := sys.NewBarrier()
		before := sys.Messages()
		sys.Run(nodes, func(c api.Ctx) {
			for i := 0; i < rounds; i++ {
				api.WriteU64(c, ctrs[c.ThreadID()], 0, uint64(i))
				c.Barrier(bar, nodes)
			}
		})
		return sys.Messages() - before
	}
	runMunin := func() int64 {
		sys := newMunin(nodes)
		defer sys.Close()
		ctrs := make([]api.RegionID, nodes)
		for i := range ctrs {
			ctrs[i] = sys.Alloc(fmt.Sprintf("ctr%d", i), 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		}
		bar := sys.NewBarrier()
		before := sys.Messages()
		sys.Run(nodes, func(c api.Ctx) {
			for i := 0; i < rounds; i++ {
				api.WriteU64(c, ctrs[c.ThreadID()], 0, uint64(i))
				c.Barrier(bar, nodes)
			}
		})
		return sys.Messages() - before
	}
	iv := runIvy()
	mu := runMunin()
	tab.AddRow("ivy (1KB pages)", iv, float64(iv)/float64(rounds))
	tab.AddRow("munin (write-many)", mu, float64(mu)/float64(rounds))
	res.Metrics["ivy.msgs"] = float64(iv)
	res.Metrics["munin.msgs"] = float64(mu)
	res.Notes = append(res.Notes,
		"independent counters sharing a page contend under Ivy; Munin's per-object write-many protocol is unaffected")
	return res
}

// E10 measures the batched flush pipeline: K dirty write-many objects
// homed on one remote node, flushed at a single synchronization point.
// The serial path pays one round trip per object (2K messages); the
// batched path combines them into one batch message plus one
// acknowledgment per synchronization, so messages-per-sync stays flat
// as K grows — the same combine-at-sync argument the paper makes for
// multiple writes to one object (§3.2), lifted to multiple objects.
func E10(nodes int) *Result {
	tab := stats.NewTable("E10: flush batching — messages per synchronization",
		"dirty objects", "serial msgs", "batched msgs", "serial/batched")
	res := &Result{ID: "E10", Table: tab, Metrics: map[string]float64{}}

	run := func(k int, serial bool) int64 {
		sys := newMunin(2)
		defer sys.Close()
		opts := protocol.DefaultOptions()
		opts.Home = 0 // writer runs on node 1: every flush crosses the wire
		regions := make([]api.RegionID, k)
		for i := range regions {
			regions[i] = sys.Alloc(fmt.Sprintf("wm%d", i), 64, protocol.WriteMany, opts, nil)
		}
		if serial {
			for i := 0; i < 2; i++ {
				sys.ProtocolNode(i).SetSerialFlush(true)
			}
		}
		var flushMsgs int64
		sys.Run(2, func(c api.Ctx) {
			if c.ThreadID() != 1 {
				return
			}
			// Prime the copies so the flush cost is isolated.
			buf := make([]byte, 8)
			for _, r := range regions {
				c.Read(r, 0, buf)
			}
			for _, r := range regions {
				api.WriteU64(c, r, 0, 1)
			}
			before := sys.Messages()
			c.Flush()
			flushMsgs = sys.Messages() - before
		})
		return flushMsgs
	}

	for _, k := range []int{1, 4, 16, 64} {
		serial := run(k, true)
		batched := run(k, false)
		tab.AddRow(k, serial, batched, float64(serial)/float64(batched))
		res.Metrics[fmt.Sprintf("serial.%d", k)] = float64(serial)
		res.Metrics[fmt.Sprintf("batched.%d", k)] = float64(batched)
	}
	res.Notes = append(res.Notes,
		"serial grows as 2K (K diffs + K acks); batched stays at 2 (one batch + one ack) regardless of K")
	return res
}

// E11 runs the E10 flush workload over real TCP sockets: K dirty
// write-many objects homed on one remote node, flushed at a single
// synchronization point. E10 showed the protocol-level message count
// staying flat in K; without wire-level coalescing that win evaporates
// into one write syscall per message on a real socket. With the
// transport's per-peer writer pipeline the whole batch leaves as one
// vectored write, so syscall-level writes per sync stay flat (O(1) per
// destination) while the serial path pays O(K).
func E11(nodes int) *Result {
	tab := stats.NewTable("E11: flush over TCP — coalesced wire writes per synchronization",
		"dirty objects", "serial writes", "batched writes", "batched msgs", "serial/batched writes")
	res := &Result{ID: "E11", Table: tab, Metrics: map[string]float64{}}

	run := func(k int, serial bool) (writes, msgs int64) {
		sys := newMuninTCP(2)
		defer sys.Close()
		opts := protocol.DefaultOptions()
		opts.Home = 0 // writer runs on node 1: every flush crosses the wire
		regions := make([]api.RegionID, k)
		for i := range regions {
			regions[i] = sys.Alloc(fmt.Sprintf("wm%d", i), 64, protocol.WriteMany, opts, nil)
		}
		if serial {
			for i := 0; i < 2; i++ {
				sys.ProtocolNode(i).SetSerialFlush(true)
			}
		}
		sys.Run(2, func(c api.Ctx) {
			if c.ThreadID() != 1 {
				return
			}
			// Prime the copies so the flush cost is isolated.
			buf := make([]byte, 8)
			for _, r := range regions {
				c.Read(r, 0, buf)
			}
			for _, r := range regions {
				api.WriteU64(c, r, 0, 1)
			}
			st := sys.Stats()
			beforeW, beforeM := st.WireWrites(), st.Messages()
			c.Flush()
			writes = st.WireWrites() - beforeW
			msgs = st.Messages() - beforeM
		})
		return writes, msgs
	}

	for _, k := range []int{1, 4, 16, 64} {
		serialW, _ := run(k, true)
		batchedW, batchedM := run(k, false)
		tab.AddRow(k, serialW, batchedW, batchedM, float64(serialW)/float64(batchedW))
		res.Metrics[fmt.Sprintf("serial.writes.%d", k)] = float64(serialW)
		res.Metrics[fmt.Sprintf("batched.writes.%d", k)] = float64(batchedW)
		res.Metrics[fmt.Sprintf("batched.msgs.%d", k)] = float64(batchedM)
	}
	res.Notes = append(res.Notes,
		"serial pays ~2K write syscalls per sync (one per diff, one per ack); the writer pipeline emits the batch as one vectored write per destination, so batched writes stay flat in K")
	return res
}

// All runs every experiment and returns the results in order.
func All(nodes int) []*Result {
	return []*Result{
		F1(nodes), T1(nodes), E1(nodes), E2(nodes), E3(nodes),
		E4(nodes), E5(nodes), E6(nodes), E7(nodes), E8(nodes), E9(nodes),
		E10(nodes), E11(nodes), E12(nodes), E13(nodes), E14(nodes),
		E15(nodes), E16(nodes), E17(nodes),
	}
}
