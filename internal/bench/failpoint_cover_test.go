package bench

import (
	"testing"

	"munin/internal/failpoint"
)

// TestE17CoversAllFailpoints pins the crash matrix to the failpoint
// registry: every name failpoint.Names() exports must appear as a
// crash point in E17's sweep, so adding a failpoint without extending
// the sweep (or renaming one side) fails here instead of silently
// shrinking chaos coverage. The floor on distinct crash points is
// additionally enforced end-to-end by perfdiff's crash.points gate.
func TestE17CoversAllFailpoints(t *testing.T) {
	covered := map[string]bool{}
	for _, name := range E17CrashPoints() {
		covered[name] = true
	}
	for _, name := range failpoint.Names() {
		if !covered[name] {
			t.Errorf("failpoint %q is registered but E17's crash sweep never kills there", name)
		}
	}
	if len(covered) < len(failpoint.Names()) {
		t.Errorf("E17 covers %d distinct crash points, registry has %d", len(covered), len(failpoint.Names()))
	}
}
