// Package netutil holds small networking helpers shared by the mesh
// drivers and tests.
package netutil

import "net"

// ReserveAddrs grabs n distinct loopback TCP addresses by binding and
// immediately releasing them, so a whole mesh topology can be handed
// out before any member binds. The tiny window before the real bind is
// the standard trade for preassigning addresses up front; callers that
// can lose the race (another process stealing the port) should retry
// at their own level.
func ReserveAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}
