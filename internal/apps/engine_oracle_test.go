package apps

import (
	"testing"

	"munin/internal/core"
)

// TestStudyAppsLeaseOracle is the differential oracle over the study
// applications: every app must produce its sequential answer with the
// Tardis-style lease engine enabled for read-mostly objects, exactly as
// it does on the plain directory machine. (None of the study apps
// allocates read-mostly data today, so the knob must be a no-op for
// them — which is precisely what the oracle pins down.)
func TestStudyAppsLeaseOracle(t *testing.T) {
	newSys := func(lease bool) *core.System {
		s, err := core.New(core.Config{Nodes: 3, ReadMostlyLease: lease})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	type check struct {
		name string
		run  func(s *core.System) (got, want float64, exact bool)
	}
	checks := []check{
		{"matmul", func(s *core.System) (float64, float64, bool) {
			m := MatMul{N: 12, Threads: 3, Seed: 1}
			return m.Run(s), m.Sequential(), false
		}},
		{"gauss", func(s *core.System) (float64, float64, bool) {
			g := Gauss{N: 14, Threads: 3, Seed: 2}
			return g.Run(s), g.Sequential(), false
		}},
		{"fft", func(s *core.System) (float64, float64, bool) {
			f := FFT{N: 64, Threads: 3, Seed: 3}
			return f.Run(s), f.Sequential(), false
		}},
		{"qsort", func(s *core.System) (float64, float64, bool) {
			q := QSort{N: 120, Threads: 3, Seed: 4, Threshold: 16}
			return float64(q.Run(s)), float64(q.Sequential()), true
		}},
		{"tsp", func(s *core.System) (float64, float64, bool) {
			p := TSP{Cities: 7, Threads: 3, Seed: 5}
			return float64(p.Run(s)), float64(p.Sequential()), true
		}},
		{"life", func(s *core.System) (float64, float64, bool) {
			l := Life{Rows: 10, Cols: 8, Generations: 3, Threads: 3, Seed: 6}
			return float64(l.Run(s)), float64(l.Sequential()), true
		}},
	}

	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			for _, lease := range []bool{false, true} {
				s := newSys(lease)
				got, want, exact := c.run(s)
				s.Close()
				ok := got == want
				if !exact {
					ok = almostEq(got, want)
				}
				if !ok {
					t.Fatalf("lease=%v: %v, want %v", lease, got, want)
				}
			}
		})
	}
}
