package apps

import (
	"encoding/binary"
	"fmt"
	"time"

	"munin/internal/api"
	"munin/internal/protocol"
)

// TSP is the paper's "representative graph problem that uses central
// work queues protected by locks": branch-and-bound traveling salesman.
// The distance matrix is write-once; the work queue of partial tours
// and the global best bound are migratory objects guarded by locks, so
// both ride inside lock transfers. Workers expand partial tours up to
// a depth cutoff, then solve the remainder exhaustively in private
// memory, publishing improvements to the bound under its lock.
type TSP struct {
	Cities  int // ≤ 16
	Threads int
	Seed    int64
	// Cutoff is the tree depth at which workers stop enqueueing and
	// solve locally (default 3).
	Cutoff int
}

// Dist returns the symmetric distance between two cities (exported for
// the hand-coded message-passing baseline).
func (t TSP) Dist(i, j int) int64 { return t.dist(i, j) }

func (t TSP) dist(i, j int) int64 {
	if i == j {
		return 0
	}
	// Symmetric pseudo-random distances in [1, 100].
	a, b := i, j
	if a > b {
		a, b = b, a
	}
	x := uint64(a)*7919 + uint64(b)*104729 + uint64(t.Seed)*31
	x ^= x >> 13
	x *= 0x2545f4914f6cdd1d
	return int64(x%100) + 1
}

// Work-queue object layout (big-endian int64):
//
//	[0]  top
//	[8]  pending
//	[16] entries: each entry is cost, visitedMask, depth, path[16]
const (
	tspEntryWords = 3 + 16
	tspQCap       = 2048
)

// Best-bound object layout: [0] best cost (int64).

// Run solves the instance on sys and returns the optimal tour cost.
func (t TSP) Run(sys api.System) int64 {
	n := t.Cities
	if n > 16 {
		panic("tsp: at most 16 cities")
	}
	cutoff := t.Cutoff
	if cutoff <= 0 {
		cutoff = 3
	}

	// Distance matrix: write-once.
	db := make([]byte, n*n*8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			binary.BigEndian.PutUint64(db[(i*n+j)*8:], uint64(t.dist(i, j)))
		}
	}
	distR := sys.Alloc("tsp.dist", n*n*8, protocol.WriteOnce, protocol.DefaultOptions(), db)

	// Best bound: migratory under its own lock.
	bl := sys.NewLock()
	bopts := protocol.DefaultOptions()
	bopts.Lock = bl
	bestInit := make([]byte, 8)
	binary.BigEndian.PutUint64(bestInit, uint64(1<<62))
	bestR := sys.Alloc("tsp.best", 8, protocol.Migratory, bopts, bestInit)

	// Work queue: migratory under the queue lock, seeded with the
	// tour starting at city 0.
	ql := sys.NewLock()
	qopts := protocol.DefaultOptions()
	qopts.Lock = ql
	qinit := make([]byte, 16+tspQCap*tspEntryWords*8)
	binary.BigEndian.PutUint64(qinit[0:], 1)
	binary.BigEndian.PutUint64(qinit[8:], 1)
	// entry 0: cost=0, visited={0}, depth=1, path[0]=0
	binary.BigEndian.PutUint64(qinit[16:], 0)
	binary.BigEndian.PutUint64(qinit[24:], 1)
	binary.BigEndian.PutUint64(qinit[32:], 1)
	queueR := sys.Alloc("tsp.queue", len(qinit), protocol.Migratory, qopts, qinit)

	sys.Run(t.Threads, func(c api.Ctx) {
		// Local copy of the distance matrix (write-once replica).
		d := make([]int64, n*n)
		buf := make([]byte, n*n*8)
		c.Read(distR, 0, buf)
		for i := range d {
			d[i] = int64(binary.BigEndian.Uint64(buf[i*8:]))
		}
		b8 := make([]byte, 8)
		readI := func(r api.RegionID, off int) int64 {
			c.Read(r, off, b8)
			return int64(binary.BigEndian.Uint64(b8))
		}
		writeI := func(r api.RegionID, off int, v int64) {
			binary.BigEndian.PutUint64(b8, uint64(v))
			c.Write(r, off, b8)
		}
		readBest := func() int64 {
			c.Acquire(bl)
			v := readI(bestR, 0)
			c.Release(bl)
			return v
		}
		publishBest := func(v int64) {
			c.Acquire(bl)
			if v < readI(bestR, 0) {
				writeI(bestR, 0, v)
			}
			c.Release(bl)
		}

		var path [16]int
		for {
			// Pop one partial tour.
			c.Acquire(ql)
			top := readI(queueR, 0)
			pending := readI(queueR, 8)
			var cost, visited, depth int64
			if top > 0 {
				base := int(16 + (top-1)*tspEntryWords*8)
				cost = readI(queueR, base)
				visited = readI(queueR, base+8)
				depth = readI(queueR, base+16)
				for i := int64(0); i < depth; i++ {
					path[i] = int(readI(queueR, base+24+int(i)*8))
				}
				writeI(queueR, 0, top-1)
			}
			c.Release(ql)
			if top == 0 {
				if pending == 0 {
					return
				}
				time.Sleep(50 * time.Microsecond)
				continue
			}

			best := readBest()
			if cost >= best {
				// Pruned: this branch cannot improve the bound.
				c.Acquire(ql)
				writeI(queueR, 8, readI(queueR, 8)-1)
				c.Release(ql)
				continue
			}

			if int(depth) >= cutoff || int(depth) == n {
				// Solve the remainder exhaustively in private memory.
				if v := tspSolveLocal(n, d, path[:depth], visited, cost, best); v < best {
					publishBest(v)
				}
				c.Acquire(ql)
				writeI(queueR, 8, readI(queueR, 8)-1)
				c.Release(ql)
				continue
			}

			// Expand children onto the queue.
			last := path[depth-1]
			c.Acquire(ql)
			topNow := readI(queueR, 0)
			added := int64(0)
			for next := 1; next < n; next++ {
				if visited&(1<<next) != 0 {
					continue
				}
				ncost := cost + d[last*n+next]
				if ncost >= best {
					continue
				}
				if topNow+added >= tspQCap {
					panic("tsp: work queue overflow")
				}
				base := int(16 + (topNow+added)*tspEntryWords*8)
				writeI(queueR, base, ncost)
				writeI(queueR, base+8, visited|1<<next)
				writeI(queueR, base+16, depth+1)
				for i := int64(0); i < depth; i++ {
					writeI(queueR, base+24+int(i)*8, int64(path[i]))
				}
				writeI(queueR, base+24+int(depth)*8, int64(next))
				added++
			}
			writeI(queueR, 0, topNow+added)
			writeI(queueR, 8, readI(queueR, 8)+added-1)
			c.Release(ql)
		}
	})

	var best int64
	sys.Run(1, func(c api.Ctx) {
		c.Acquire(bl)
		b8 := make([]byte, 8)
		c.Read(bestR, 0, b8)
		best = int64(binary.BigEndian.Uint64(b8))
		c.Release(bl)
	})
	return best
}

// tspSolveLocal exhaustively extends a partial tour in local memory and
// returns the best complete-tour cost found below bound.
func tspSolveLocal(n int, d []int64, path []int, visited, cost, bound int64) int64 {
	if len(path) == n {
		total := cost + d[path[n-1]*n+path[0]]
		if total < bound {
			return total
		}
		return bound
	}
	last := path[len(path)-1]
	for next := 1; next < n; next++ {
		if visited&(1<<next) != 0 {
			continue
		}
		ncost := cost + d[last*n+next]
		if ncost >= bound {
			continue
		}
		bound = tspSolveLocal(n, d, append(path, next), visited|1<<next, ncost, bound)
	}
	return bound
}

// Sequential computes the optimal tour cost by exhaustive search.
func (t TSP) Sequential() int64 {
	n := t.Cities
	d := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i*n+j] = t.dist(i, j)
		}
	}
	path := make([]int, 1, n)
	path[0] = 0
	return tspSolveLocal(n, d, path, 1, 0, 1<<62)
}

func (t TSP) String() string { return fmt.Sprintf("tsp(C=%d,T=%d)", t.Cities, t.Threads) }
