package apps

import "math"

// partition splits [0, n) into nthreads contiguous chunks.
func partition(n, nthreads, id int) (lo, hi int) {
	per := n / nthreads
	rem := n % nthreads
	lo = id * per
	if id < rem {
		lo += id
	} else {
		lo += rem
	}
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
func absf(f float64) float64     { return math.Abs(f) }
func almostEq(a, b float64) bool { return absf(a-b) <= 1e-6*(1+absf(a)+absf(b)) }
