package apps

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"munin/internal/api"
	"munin/internal/protocol"
)

// QSort is the paper's "representative sorting problem that uses
// divide-and-conquer to dynamically subdivide the problem": parallel
// quicksort with a central work queue of ranges. The queue header is a
// migratory object guarded by a lock — the textbook critical-section
// access pattern §3.3.3 targets — so its bytes ride inside the lock
// transfer messages. The array is write-many: workers write disjoint
// ranges between synchronization points.
type QSort struct {
	N       int
	Threads int
	Seed    int64
	// Threshold below which a range is sorted locally instead of
	// being split further (default 64).
	Threshold int
}

// queue object layout (all big-endian int64):
//
//	[0]  top        stack depth
//	[8]  pending    ranges pushed but not yet fully sorted
//	[16] pairs      (lo, hi) per entry, capacity qcap
const qcap = 4096

// Value returns the i-th input element (exported for the hand-coded
// message-passing baseline, which generates the same input).
func (q QSort) Value(i int) int64 { return qsortValue(i, q.Seed) }

func qsortValue(i int, seed int64) int64 {
	x := uint64(i)*2862933555777941757 + uint64(seed) + 3037000493
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return int64(x % 1_000_000)
}

// Run sorts the array on sys and returns a positional checksum of the
// sorted array (catches both misordering and corruption).
func (q QSort) Run(sys api.System) int64 {
	n := q.N
	threshold := q.Threshold
	if threshold <= 0 {
		threshold = 64
	}
	init := make([]byte, n*8)
	for i := 0; i < n; i++ {
		binary.BigEndian.PutUint64(init[i*8:], uint64(qsortValue(i, q.Seed)))
	}
	arr := sys.Alloc("qsort.array", n*8, protocol.WriteMany, protocol.DefaultOptions(), init)

	qlock := sys.NewLock()
	qopts := protocol.DefaultOptions()
	qopts.Lock = qlock
	queue := sys.Alloc("qsort.queue", 16+qcap*16, protocol.Migratory, qopts, qsortQueueInit(n))

	sys.Run(q.Threads, func(c api.Ctx) {
		buf8 := make([]byte, 8)
		readI := func(r api.RegionID, off int) int64 {
			c.Read(r, off, buf8)
			return int64(binary.BigEndian.Uint64(buf8))
		}
		writeI := func(r api.RegionID, off int, v int64) {
			binary.BigEndian.PutUint64(buf8, uint64(v))
			c.Write(r, off, buf8)
		}
		for {
			// Pop a range (or detect completion) under the queue lock.
			c.Acquire(qlock)
			top := readI(queue, 0)
			pending := readI(queue, 8)
			var lo, hi int64
			have := false
			if top > 0 {
				lo = readI(queue, int(16+(top-1)*16))
				hi = readI(queue, int(16+(top-1)*16+8))
				writeI(queue, 0, top-1)
				have = true
			}
			c.Release(qlock)
			if !have {
				if pending == 0 {
					return
				}
				time.Sleep(50 * time.Microsecond) // queue momentarily empty
				continue
			}

			if hi-lo <= int64(threshold) {
				// Sort the small range locally and write it back.
				vals := readRange(c, arr, lo, hi)
				sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
				writeRange(c, arr, lo, vals)
				c.Acquire(qlock)
				writeI(queue, 8, readI(queue, 8)-1)
				c.Release(qlock) // flush makes the sorted bytes visible
				continue
			}

			// Partition around the median-of-three pivot.
			vals := readRange(c, arr, lo, hi)
			pivot := medianOf3(vals[0], vals[len(vals)/2], vals[len(vals)-1])
			i, j := 0, len(vals)-1
			for i <= j {
				for vals[i] < pivot {
					i++
				}
				for vals[j] > pivot {
					j--
				}
				if i <= j {
					vals[i], vals[j] = vals[j], vals[i]
					i++
					j--
				}
			}
			writeRange(c, arr, lo, vals)

			// Push the two subranges; pending: -1 +2 = +1.
			c.Acquire(qlock)
			top = readI(queue, 0)
			if top+2 > qcap {
				panic("qsort: work queue overflow")
			}
			writeI(queue, int(16+top*16), lo)
			writeI(queue, int(16+top*16+8), lo+int64(j)+1)
			writeI(queue, int(16+(top+1)*16), lo+int64(i))
			writeI(queue, int(16+(top+1)*16+8), hi)
			writeI(queue, 0, top+2)
			writeI(queue, 8, readI(queue, 8)+1)
			c.Release(qlock)
		}
	})

	// Positional checksum of the sorted array.
	var sum int64
	sys.Run(1, func(c api.Ctx) {
		vals := readRange(c, arr, 0, int64(n))
		for i, v := range vals {
			sum += int64(i+1) * v
		}
	})
	return sum
}

func qsortQueueInit(n int) []byte {
	b := make([]byte, 16+qcap*16)
	binary.BigEndian.PutUint64(b[0:], 1)  // top = 1
	binary.BigEndian.PutUint64(b[8:], 1)  // pending = 1
	binary.BigEndian.PutUint64(b[16:], 0) // range [0, n)
	binary.BigEndian.PutUint64(b[24:], uint64(n))
	return b
}

func readRange(c api.Ctx, arr api.RegionID, lo, hi int64) []int64 {
	buf := make([]byte, (hi-lo)*8)
	c.Read(arr, int(lo*8), buf)
	vals := make([]int64, hi-lo)
	for i := range vals {
		vals[i] = int64(binary.BigEndian.Uint64(buf[i*8:]))
	}
	return vals
}

func writeRange(c api.Ctx, arr api.RegionID, lo int64, vals []int64) {
	buf := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(v))
	}
	c.Write(arr, int(lo*8), buf)
}

func medianOf3(a, b, c int64) int64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Sequential computes the reference checksum.
func (q QSort) Sequential() int64 {
	vals := make([]int64, q.N)
	for i := range vals {
		vals[i] = qsortValue(i, q.Seed)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	var sum int64
	for i, v := range vals {
		sum += int64(i+1) * v
	}
	return sum
}

func (q QSort) String() string { return fmt.Sprintf("qsort(N=%d,T=%d)", q.N, q.Threads) }
