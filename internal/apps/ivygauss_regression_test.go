package apps

import (
	"encoding/binary"
	"munin/internal/api"
	"munin/internal/ivy"
	"munin/internal/protocol"
	"sync"
	"testing"
)

// Same gauss over ivy but with host-level WaitGroup barriers.
func TestGaussDebugIvyHostBarrier(t *testing.T) {
	g := Gauss{N: 20, Threads: 4, Seed: 2}
	n := g.N
	want := g.Sequential()
	s, _ := ivy.New(ivy.Config{Nodes: 4, PageSize: 256})
	defer s.Close()
	mat := s.Alloc("gauss.M", n*n*8, protocol.WriteMany, protocol.DefaultOptions(), g.initBytes())
	phases := make([]*sync.WaitGroup, n)
	for i := range phases {
		phases[i] = &sync.WaitGroup{}
		phases[i].Add(4)
	}
	s.Run(4, func(c api.Ctx) {
		T, id := c.NThreads(), c.ThreadID()
		rowBuf := make([]byte, n*8)
		pivBuf := make([]byte, n*8)
		for k := 0; k < n-1; k++ {
			c.Read(mat, k*n*8, pivBuf)
			piv := make([]float64, n)
			for j := range piv {
				piv[j] = floatFrom(binary.BigEndian.Uint64(pivBuf[j*8:]))
			}
			for r := k + 1; r < n; r++ {
				if r%T != id {
					continue
				}
				c.Read(mat, r*n*8, rowBuf)
				row := make([]float64, n)
				for j := range row {
					row[j] = floatFrom(binary.BigEndian.Uint64(rowBuf[j*8:]))
				}
				f := row[k] / piv[k]
				row[k] = 0
				for j := k + 1; j < n; j++ {
					row[j] -= f * piv[j]
				}
				for j := range row {
					binary.BigEndian.PutUint64(rowBuf[j*8:], floatBits(row[j]))
				}
				c.Write(mat, r*n*8, rowBuf)
			}
			phases[k].Done()
			phases[k].Wait()
		}
	})
	got := checksumMatrix(s, mat, n)
	if !almostEq(got, want) {
		t.Fatalf("host-barrier ivy gauss: got %v want %v", got, want)
	}
}
