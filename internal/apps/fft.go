package apps

import (
	"encoding/binary"
	"fmt"
	"math"

	"munin/internal/api"
	"munin/internal/protocol"
)

// FFT is an iterative radix-2 Cooley-Tukey transform over N complex
// points (N a power of two). The signal is one write-many object; each
// stage's butterflies are partitioned by group so concurrent writes are
// disjoint, with a barrier between stages — the paper's canonical
// predictable-access numeric workload.
type FFT struct {
	N       int // number of complex points, power of two
	Threads int
	Seed    int64
}

func (f FFT) Sample(i int) complex128 {
	re := math.Sin(2*math.Pi*float64(i)/float64(f.N) + float64(f.Seed))
	im := 0.5 * math.Cos(6*math.Pi*float64(i)/float64(f.N))
	return complex(re, im)
}

// initBytes writes the bit-reversed input signal (re, im interleaved).
func (f FFT) initBytes() []byte {
	n := f.N
	b := make([]byte, n*16)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		r := reverseBits(i, bits)
		v := f.Sample(i)
		binary.BigEndian.PutUint64(b[r*16:], floatBits(real(v)))
		binary.BigEndian.PutUint64(b[r*16+8:], floatBits(imag(v)))
	}
	return b
}

func reverseBits(x, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>i)&1
	}
	return r
}

// Run executes the FFT on sys and returns the checksum (sum of
// magnitudes) of the transformed signal.
func (f FFT) Run(sys api.System) float64 {
	n := f.N
	if n&(n-1) != 0 {
		panic("fft: N must be a power of two")
	}
	sig := sys.Alloc("fft.signal", n*16, protocol.WriteMany, protocol.DefaultOptions(), f.initBytes())
	bar := sys.NewBarrier()

	sys.Run(f.Threads, func(c api.Ctx) {
		T := c.NThreads()
		id := c.ThreadID()
		buf := make([]byte, 16)
		readC := func(i int) complex128 {
			c.Read(sig, i*16, buf)
			return complex(floatFrom(binary.BigEndian.Uint64(buf)),
				floatFrom(binary.BigEndian.Uint64(buf[8:])))
		}
		writeC := func(i int, v complex128) {
			binary.BigEndian.PutUint64(buf, floatBits(real(v)))
			binary.BigEndian.PutUint64(buf[8:], floatBits(imag(v)))
			c.Write(sig, i*16, buf)
		}
		for ln := 2; ln <= n; ln <<= 1 {
			ang := -2 * math.Pi / float64(ln)
			wl := complex(math.Cos(ang), math.Sin(ang))
			groups := n / ln
			// Cyclic group assignment: disjoint writes per thread.
			for g := id; g < groups; g += T {
				base := g * ln
				w := complex(1, 0)
				for j := 0; j < ln/2; j++ {
					u := readC(base + j)
					v := readC(base+j+ln/2) * w
					writeC(base+j, u+v)
					writeC(base+j+ln/2, u-v)
					w *= wl
				}
			}
			c.Barrier(bar, T)
		}
	})

	var sum float64
	sys.Run(1, func(c api.Ctx) {
		buf := make([]byte, 16)
		for i := 0; i < n; i++ {
			c.Read(sig, i*16, buf)
			re := floatFrom(binary.BigEndian.Uint64(buf))
			im := floatFrom(binary.BigEndian.Uint64(buf[8:]))
			sum += math.Hypot(re, im)
		}
	})
	return sum
}

// Sequential computes the reference checksum with a plain in-memory FFT
// of the same shape.
func (f FFT) Sequential() float64 {
	n := f.N
	bits := 0
	for 1<<bits < n {
		bits++
	}
	data := make([]complex128, n)
	for i := 0; i < n; i++ {
		data[reverseBits(i, bits)] = f.Sample(i)
	}
	for ln := 2; ln <= n; ln <<= 1 {
		ang := -2 * math.Pi / float64(ln)
		wl := complex(math.Cos(ang), math.Sin(ang))
		for base := 0; base < n; base += ln {
			w := complex(1, 0)
			for j := 0; j < ln/2; j++ {
				u := data[base+j]
				v := data[base+j+ln/2] * w
				data[base+j] = u + v
				data[base+j+ln/2] = u - v
				w *= wl
			}
		}
	}
	sum := 0.0
	for _, v := range data {
		sum += math.Hypot(real(v), imag(v))
	}
	return sum
}

func (f FFT) String() string { return fmt.Sprintf("fft(N=%d,T=%d)", f.N, f.Threads) }
