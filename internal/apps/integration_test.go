package apps

import (
	"testing"

	"munin/internal/core"
	"munin/internal/threads"
)

// TestAppsOverRealTCP runs representative applications over the real
// loopback TCP transport: every coherence message crosses the OS
// network stack.
func TestAppsOverRealTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration in short mode")
	}
	s, err := core.New(core.Config{Nodes: 3, Transport: "tcp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	m := MatMul{N: 12, Threads: 3, Seed: 1}
	if got := m.Run(s); !almostEq(got, m.Sequential()) {
		t.Fatalf("matmul over tcp = %v, want %v", got, m.Sequential())
	}

	l := Life{Rows: 12, Cols: 8, Generations: 3, Threads: 3, Seed: 6}
	if got := l.Run(s); got != l.Sequential() {
		t.Fatalf("life over tcp = %d, want %d", got, l.Sequential())
	}
}

// TestAppsWithBlockedPlacement verifies correctness is placement-
// independent (threads packed onto nodes instead of round robin).
func TestAppsWithBlockedPlacement(t *testing.T) {
	s, err := core.New(core.Config{Nodes: 2, Placement: threads.Blocked})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := Gauss{N: 16, Threads: 4, Seed: 2}
	if got := g.Run(s); !almostEq(got, g.Sequential()) {
		t.Fatalf("gauss blocked placement = %v, want %v", got, g.Sequential())
	}
}

// TestAppsScaleWithNodes runs gauss over 1..6 nodes: the answer must
// be identical regardless of the machine shape.
func TestAppsScaleWithNodes(t *testing.T) {
	g := Gauss{N: 18, Threads: 6, Seed: 8}
	want := g.Sequential()
	for _, nodes := range []int{1, 2, 5, 6} {
		s, err := core.New(core.Config{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Run(s); !almostEq(got, want) {
			t.Fatalf("nodes=%d: %v, want %v", nodes, got, want)
		}
		s.Close()
	}
}

// TestQSortManyThreadsFewNodes oversubscribes nodes with threads: the
// work queue must still terminate and sort correctly.
func TestQSortManyThreadsFewNodes(t *testing.T) {
	s, err := core.New(core.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q := QSort{N: 300, Threads: 8, Seed: 4, Threshold: 16}
	if got := q.Run(s); got != q.Sequential() {
		t.Fatalf("qsort oversubscribed = %d, want %d", got, q.Sequential())
	}
}
