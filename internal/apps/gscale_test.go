package apps

import (
	"munin/internal/core"
	"testing"
)

func TestGaussShapeMatrix(t *testing.T) {
	for _, tc := range []struct{ nodes, threads int }{
		{2, 2}, {2, 4}, {2, 6}, {3, 6}, {6, 6}, {1, 6},
	} {
		g := Gauss{N: 18, Threads: tc.threads, Seed: 8}
		want := g.Sequential()
		fails := 0
		for i := 0; i < 12; i++ {
			s, _ := core.New(core.Config{Nodes: tc.nodes})
			got := g.Run(s)
			s.Close()
			if !almostEq(got, want) {
				fails++
			}
		}
		t.Logf("nodes=%d threads=%d fails=%d/12", tc.nodes, tc.threads, fails)
	}
}
