package apps

import (
	"fmt"

	"munin/internal/api"
	"munin/internal/protocol"
)

// Life is the paper's "representative nearest-neighbors problem in
// which data is shared amongst neighboring processes": Conway's game
// of life on an R×C grid with dead borders, row bands per thread.
// Interior band state is private (only its owner touches it); the two
// boundary rows of each band are producer-consumer objects — produced
// by the band's owner, consumed by the adjacent band — so each
// generation's boundary exchange is an eager push rather than a
// demand fault. "Communication between processors only occurs at
// submatrix boundaries."
type Life struct {
	Rows, Cols  int
	Generations int
	Threads     int
	Seed        int64
}

func (l Life) AliveAtInit(r, c int) bool {
	x := uint64(r)*2654435761 + uint64(c)*40503 + uint64(l.Seed)
	x ^= x >> 16
	x *= 0x45d9f3b
	return x%100 < 35 // ~35% initial density
}

// Run plays the game on sys and returns the final live-cell count.
func (l Life) Run(sys api.System) int {
	R, C, T := l.Rows, l.Cols, l.Threads
	if T > R {
		panic("life: more threads than rows")
	}

	// Per-thread regions: a private band plus producer-consumer
	// boundary rows (top and bottom of the band, as the neighbors see
	// them). Boundaries are double-buffered by generation parity so a
	// neighbor one barrier ahead cannot overwrite rows still being
	// read — the same discipline a hand-coded nearest-neighbors code
	// uses for its halo exchange.
	bands := make([]api.RegionID, T)
	tops := make([]api.RegionID, 2*T) // tops[2*t+parity]
	bots := make([]api.RegionID, 2*T)
	for t := 0; t < T; t++ {
		lo, hi := partition(R, T, t)
		rows := hi - lo
		init := make([]byte, rows*C)
		for r := 0; r < rows; r++ {
			for c := 0; c < C; c++ {
				if l.AliveAtInit(lo+r, c) {
					init[r*C+c] = 1
				}
			}
		}
		bands[t] = sys.Alloc(fmt.Sprintf("life.band.%d", t), rows*C,
			protocol.Private, protocol.DefaultOptions(), init)
		for p := 0; p < 2; p++ {
			tops[2*t+p] = sys.Alloc(fmt.Sprintf("life.top.%d.%d", t, p), C,
				protocol.ProducerConsumer, protocol.DefaultOptions(), init[:C])
			bots[2*t+p] = sys.Alloc(fmt.Sprintf("life.bot.%d.%d", t, p), C,
				protocol.ProducerConsumer, protocol.DefaultOptions(), init[(rows-1)*C:])
		}
	}
	bar := sys.NewBarrier()

	sys.Run(T, func(c api.Ctx) {
		id := c.ThreadID()
		lo, hi := partition(R, T, id)
		rows := hi - lo

		cur := make([]byte, rows*C)
		c.Read(bands[id], 0, cur)
		next := make([]byte, rows*C)
		above := make([]byte, C) // neighbor's bottom row (or dead)
		below := make([]byte, C) // neighbor's top row (or dead)

		for g := 0; g < l.Generations; g++ {
			// Fetch neighbor boundaries for the current state (parity
			// g%2). After the first generation these were pushed
			// eagerly by the producers; the read is local.
			par := g % 2
			if id > 0 {
				c.Read(bots[2*(id-1)+par], 0, above)
			}
			if id < T-1 {
				c.Read(tops[2*(id+1)+par], 0, below)
			}
			rowAt := func(r int) []byte {
				switch {
				case r < 0:
					if id > 0 {
						return above
					}
					return nil
				case r >= rows:
					if id < T-1 {
						return below
					}
					return nil
				default:
					return cur[r*C : (r+1)*C]
				}
			}
			for r := 0; r < rows; r++ {
				up, mid, down := rowAt(r-1), rowAt(r), rowAt(r+1)
				for x := 0; x < C; x++ {
					n := 0
					for dx := -1; dx <= 1; dx++ {
						xx := x + dx
						if xx < 0 || xx >= C {
							continue
						}
						if up != nil && up[xx] == 1 {
							n++
						}
						if down != nil && down[xx] == 1 {
							n++
						}
						if dx != 0 && mid[xx] == 1 {
							n++
						}
					}
					alive := mid[x] == 1
					if alive && (n == 2 || n == 3) || !alive && n == 3 {
						next[r*C+x] = 1
					} else {
						next[r*C+x] = 0
					}
				}
			}
			cur, next = next, cur
			// Publish the new state (parity (g+1)%2): private band
			// locally, boundary rows to the neighbors — the eager
			// push happens when the barrier flushes the queue.
			c.Write(bands[id], 0, cur)
			c.Write(tops[2*id+(g+1)%2], 0, cur[:C])
			c.Write(bots[2*id+(g+1)%2], 0, cur[(rows-1)*C:])
			c.Barrier(bar, T)
		}
	})

	// Count live cells: bands are private, so read each from a thread
	// team of the same shape (each owner counts its own band).
	counts := make([]int, T)
	sys.Run(T, func(c api.Ctx) {
		id := c.ThreadID()
		lo, hi := partition(R, T, id)
		band := make([]byte, (hi-lo)*C)
		c.Read(bands[id], 0, band)
		n := 0
		for _, v := range band {
			if v == 1 {
				n++
			}
		}
		counts[id] = n
	})
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// Sequential computes the reference final live-cell count.
func (l Life) Sequential() int {
	R, C := l.Rows, l.Cols
	cur := make([]byte, R*C)
	for r := 0; r < R; r++ {
		for c := 0; c < C; c++ {
			if l.AliveAtInit(r, c) {
				cur[r*C+c] = 1
			}
		}
	}
	next := make([]byte, R*C)
	for g := 0; g < l.Generations; g++ {
		for r := 0; r < R; r++ {
			for c := 0; c < C; c++ {
				n := 0
				for dr := -1; dr <= 1; dr++ {
					for dc := -1; dc <= 1; dc++ {
						if dr == 0 && dc == 0 {
							continue
						}
						rr, cc := r+dr, c+dc
						if rr < 0 || rr >= R || cc < 0 || cc >= C {
							continue
						}
						if cur[rr*C+cc] == 1 {
							n++
						}
					}
				}
				alive := cur[r*C+c] == 1
				if alive && (n == 2 || n == 3) || !alive && n == 3 {
					next[r*C+c] = 1
				} else {
					next[r*C+c] = 0
				}
			}
		}
		cur, next = next, cur
	}
	total := 0
	for _, v := range cur {
		if v == 1 {
			total++
		}
	}
	return total
}

func (l Life) String() string {
	return fmt.Sprintf("life(%dx%d,G=%d,T=%d)", l.Rows, l.Cols, l.Generations, l.Threads)
}
