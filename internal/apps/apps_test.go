package apps

import (
	"testing"

	"munin/internal/api"
	"munin/internal/core"
	"munin/internal/ivy"
)

// eachSystem runs the test body over a fresh Munin and a fresh Ivy
// system, verifying the same application code is correct on both.
func eachSystem(t *testing.T, nodes int, body func(t *testing.T, sys api.System)) {
	t.Helper()
	t.Run("munin", func(t *testing.T) {
		s, err := core.New(core.Config{Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		body(t, s)
	})
	t.Run("ivy", func(t *testing.T) {
		s, err := ivy.New(ivy.Config{Nodes: nodes, PageSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		body(t, s)
	})
}

func TestMatMulMatchesSequential(t *testing.T) {
	m := MatMul{N: 24, Threads: 6, Seed: 1}
	want := m.Sequential()
	eachSystem(t, 3, func(t *testing.T, sys api.System) {
		if got := m.Run(sys); !almostEq(got, want) {
			t.Fatalf("checksum = %v, want %v", got, want)
		}
	})
}

func TestMatMulSingleThread(t *testing.T) {
	m := MatMul{N: 8, Threads: 1, Seed: 9}
	eachSystem(t, 1, func(t *testing.T, sys api.System) {
		if got := m.Run(sys); !almostEq(got, m.Sequential()) {
			t.Fatalf("checksum = %v, want %v", got, m.Sequential())
		}
	})
}

func TestGaussMatchesSequential(t *testing.T) {
	g := Gauss{N: 20, Threads: 4, Seed: 2}
	want := g.Sequential()
	eachSystem(t, 4, func(t *testing.T, sys api.System) {
		if got := g.Run(sys); !almostEq(got, want) {
			t.Fatalf("checksum = %v, want %v", got, want)
		}
	})
}

func TestFFTMatchesSequential(t *testing.T) {
	f := FFT{N: 64, Threads: 4, Seed: 3}
	want := f.Sequential()
	eachSystem(t, 4, func(t *testing.T, sys api.System) {
		if got := f.Run(sys); !almostEq(got, want) {
			t.Fatalf("checksum = %v, want %v", got, want)
		}
	})
}

func TestQSortMatchesSequential(t *testing.T) {
	q := QSort{N: 400, Threads: 4, Seed: 4, Threshold: 32}
	want := q.Sequential()
	eachSystem(t, 4, func(t *testing.T, sys api.System) {
		if got := q.Run(sys); got != want {
			t.Fatalf("checksum = %d, want %d", got, want)
		}
	})
}

func TestTSPFindsOptimalTour(t *testing.T) {
	p := TSP{Cities: 8, Threads: 4, Seed: 5}
	want := p.Sequential()
	eachSystem(t, 4, func(t *testing.T, sys api.System) {
		if got := p.Run(sys); got != want {
			t.Fatalf("best tour = %d, want %d", got, want)
		}
	})
}

func TestLifeMatchesSequential(t *testing.T) {
	l := Life{Rows: 24, Cols: 16, Generations: 4, Threads: 4, Seed: 6}
	want := l.Sequential()
	eachSystem(t, 4, func(t *testing.T, sys api.System) {
		if got := l.Run(sys); got != want {
			t.Fatalf("live cells = %d, want %d", got, want)
		}
	})
}

func TestLifeMoreGenerationsStillAgrees(t *testing.T) {
	// Longer run shakes out parity/double-buffering bugs.
	l := Life{Rows: 18, Cols: 12, Generations: 9, Threads: 3, Seed: 11}
	want := l.Sequential()
	eachSystem(t, 3, func(t *testing.T, sys api.System) {
		if got := l.Run(sys); got != want {
			t.Fatalf("live cells = %d, want %d", got, want)
		}
	})
}

func TestMuninBeatsIvyOnWriteSharedApps(t *testing.T) {
	// The headline qualitative claim (experiment E1): on write-shared
	// numeric workloads Munin's type-specific protocols move fewer
	// messages than Ivy's one-size-fits-all strict coherence.
	g := Gauss{N: 16, Threads: 4, Seed: 7}
	var muninMsgs, ivyMsgs int64

	ms, err := core.New(core.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(ms)
	muninMsgs = ms.Messages()
	ms.Close()

	is, err := ivy.New(ivy.Config{Nodes: 4, PageSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(is)
	ivyMsgs = is.Messages()
	is.Close()

	if muninMsgs >= ivyMsgs {
		t.Fatalf("munin (%d msgs) not cheaper than ivy (%d msgs) on gauss", muninMsgs, ivyMsgs)
	}
}

func TestPartitionHelper(t *testing.T) {
	covered := 0
	prev := 0
	for id := 0; id < 5; id++ {
		lo, hi := partition(17, 5, id)
		if lo != prev {
			t.Fatalf("gap at %d", id)
		}
		covered += hi - lo
		prev = hi
	}
	if covered != 17 || prev != 17 {
		t.Fatalf("covered %d", covered)
	}
}

func TestAppStringers(t *testing.T) {
	for _, s := range []string{
		MatMul{N: 1, Threads: 1}.String(),
		Gauss{N: 1, Threads: 1}.String(),
		FFT{N: 2, Threads: 1}.String(),
		QSort{N: 1, Threads: 1}.String(),
		TSP{Cities: 3, Threads: 1}.String(),
		Life{Rows: 1, Cols: 1, Threads: 1}.String(),
	} {
		if s == "" {
			t.Fatal("empty stringer")
		}
	}
}
