package apps

import (
	"encoding/binary"
	"fmt"
	"munin/internal/api"
	"munin/internal/core"
	"munin/internal/protocol"
	"sync"
	"testing"
)

func TestGaussStepwiseMultiThreadPerNode(t *testing.T) {
	g := Gauss{N: 18, Threads: 4, Seed: 8}
	n := g.N
	ref := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ref[i*n+j] = g.Elem(i, j)
		}
	}
	refAt := make([][]float64, n)
	for k := 0; k < n-1; k++ {
		refAt[k] = append([]float64(nil), ref...)
		for r := k + 1; r < n; r++ {
			f := ref[r*n+k] / ref[k*n+k]
			ref[r*n+k] = 0
			for j := k + 1; j < n; j++ {
				ref[r*n+j] -= f * ref[k*n+j]
			}
		}
	}
	for iter := 0; iter < 10; iter++ {
		s, _ := core.New(core.Config{Nodes: 2})
		mat := s.Alloc("gauss.M", n*n*8, protocol.WriteMany, protocol.DefaultOptions(), g.initBytes())
		bar := s.NewBarrier()
		var mu sync.Mutex
		var firstErr string
		rec := func(m string) {
			mu.Lock()
			if firstErr == "" {
				firstErr = m
			}
			mu.Unlock()
		}
		s.Run(4, func(c api.Ctx) {
			T, id := c.NThreads(), c.ThreadID()
			rowBuf := make([]byte, n*8)
			pivBuf := make([]byte, n*8)
			for k := 0; k < n-1; k++ {
				c.Read(mat, k*n*8, pivBuf)
				piv := make([]float64, n)
				for j := range piv {
					piv[j] = floatFrom(binary.BigEndian.Uint64(pivBuf[j*8:]))
				}
				for j := range piv {
					if !almostEq(piv[j], refAt[k][k*n+j]) {
						rec(fmt.Sprintf("iter %d step %d thread %d (node %d): pivot[%d][%d]=%v want %v (owner thread %d node %d)",
							iter, k, id, c.Node(), k, j, piv[j], refAt[k][k*n+j], k%T, (k%T)%2))
						break
					}
				}
				for r := k + 1; r < n; r++ {
					if r%T != id {
						continue
					}
					c.Read(mat, r*n*8, rowBuf)
					row := make([]float64, n)
					for j := range row {
						row[j] = floatFrom(binary.BigEndian.Uint64(rowBuf[j*8:]))
					}
					for j := range row {
						if !almostEq(row[j], refAt[k][r*n+j]) {
							rec(fmt.Sprintf("iter %d step %d thread %d (node %d): own row %d col %d =%v want %v",
								iter, k, id, c.Node(), r, j, row[j], refAt[k][r*n+j]))
							break
						}
					}
					f := row[k] / piv[k]
					row[k] = 0
					for j := k + 1; j < n; j++ {
						row[j] -= f * piv[j]
					}
					for j := range row {
						binary.BigEndian.PutUint64(rowBuf[j*8:], floatBits(row[j]))
					}
					c.Write(mat, r*n*8, rowBuf)
				}
				c.Barrier(bar, T)
			}
		})
		s.Close()
		if firstErr != "" {
			t.Fatal(firstErr)
		}
	}
}

func TestGaussCounterProbe(t *testing.T) {
	g := Gauss{N: 18, Threads: 4, Seed: 8}
	want := g.Sequential()
	for iter := 0; iter < 12; iter++ {
		s, _ := core.New(core.Config{Nodes: 2})
		got := g.Run(s)
		bad := !almostEq(got, want)
		if bad {
			for n := 0; n < 2; n++ {
				c := s.NodeCounters(n)
				t.Logf("iter %d FAIL node %d: gap=%d fault.read=%d fetch.retry=%d apply=%d diff.sent=%d race=%d",
					iter, n, c["apply.gap"], c["fault.read"], c["fetch.retry"], c["apply.received"], c["diff.sent"], c["race.detected"])
			}
			s.Close()
			return
		}
		s.Close()
	}
	t.Log("no failure in 12 iters")
}
