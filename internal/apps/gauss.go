package apps

import (
	"encoding/binary"
	"fmt"

	"munin/internal/api"
	"munin/internal/protocol"
)

// Gauss is Gaussian elimination (forward elimination) on a diagonally
// dominant N×N system — one of the paper's "well understood numeric
// problems that … access shared memory in predictable patterns". The
// matrix is a write-many object: in each step every thread updates its
// own rows (independent portions of the same object), with one barrier
// per pivot step. Delayed updates combine each thread's row updates for
// a step into a single diff.
type Gauss struct {
	N       int
	Threads int
	Seed    int64
}

func (g Gauss) Elem(i, j int) float64 {
	v := float64((int64(i)*37+int64(j)*23+g.Seed)%9-4) / 2
	if i == j {
		v += float64(4 * g.N) // diagonal dominance: stable without pivoting
	}
	return v
}

func (g Gauss) initBytes() []byte {
	n := g.N
	b := make([]byte, n*n*8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			binary.BigEndian.PutUint64(b[(i*n+j)*8:], floatBits(g.Elem(i, j)))
		}
	}
	return b
}

// Run executes forward elimination on sys and returns the checksum of
// the resulting upper-triangular matrix (sum of diagonal products is
// too unstable; we sum all entries).
func (g Gauss) Run(sys api.System) float64 {
	n := g.N
	mat := sys.Alloc("gauss.M", n*n*8, protocol.WriteMany, protocol.DefaultOptions(), g.initBytes())
	bar := sys.NewBarrier()

	sys.Run(g.Threads, func(c api.Ctx) {
		T := c.NThreads()
		id := c.ThreadID()
		rowBuf := make([]byte, n*8)
		pivBuf := make([]byte, n*8)
		for k := 0; k < n-1; k++ {
			// The owner of row k has flushed it at the previous
			// barrier; every copy has been refreshed by the home.
			c.Read(mat, k*n*8, pivBuf)
			piv := make([]float64, n)
			for j := range piv {
				piv[j] = floatFrom(binary.BigEndian.Uint64(pivBuf[j*8:]))
			}
			// Cyclic row distribution: thread id owns rows r ≡ id (mod T).
			for r := k + 1; r < n; r++ {
				if r%T != id {
					continue
				}
				c.Read(mat, r*n*8, rowBuf)
				row := make([]float64, n)
				for j := range row {
					row[j] = floatFrom(binary.BigEndian.Uint64(rowBuf[j*8:]))
				}
				factor := row[k] / piv[k]
				row[k] = 0
				for j := k + 1; j < n; j++ {
					row[j] -= factor * piv[j]
				}
				for j := range row {
					binary.BigEndian.PutUint64(rowBuf[j*8:], floatBits(row[j]))
				}
				c.Write(mat, r*n*8, rowBuf)
			}
			c.Barrier(bar, T) // flushes this step's row updates
		}
	})

	return checksumMatrix(sys, mat, n)
}

// Sequential computes the reference checksum.
func (g Gauss) Sequential() float64 {
	n := g.N
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m[i*n+j] = g.Elem(i, j)
		}
	}
	for k := 0; k < n-1; k++ {
		for r := k + 1; r < n; r++ {
			factor := m[r*n+k] / m[k*n+k]
			m[r*n+k] = 0
			for j := k + 1; j < n; j++ {
				m[r*n+j] -= factor * m[k*n+j]
			}
		}
	}
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}

func (g Gauss) String() string { return fmt.Sprintf("gauss(N=%d,T=%d)", g.N, g.Threads) }
