// Package apps implements the six shared-memory study programs from
// Section 2 of the paper — matrix multiply, Gaussian elimination, FFT,
// quicksort, traveling salesman, and life — written against the generic
// DSM interface (internal/api) exactly once, so the identical program
// runs over Munin and over the Ivy baseline.
//
// Annotation choices mirror the paper's object classes: input matrices
// are write-once, result matrices are result objects, in-place grids
// are write-many, work queues and bounds are migratory (critical-
// section data), nearest-neighbour boundaries are producer-consumer,
// and per-thread scratch is private.
package apps

import (
	"encoding/binary"
	"fmt"

	"munin/internal/api"
	"munin/internal/protocol"
)

// MatMul is the paper's matrix multiplication workload: "every thread
// computes a single element of the result matrix" (we give threads row
// bands, the standard blocked equivalent). A and B are write-once; C is
// a result object — with delayed updates "the results are propagated
// once to their final destination" instead of bouncing between caches.
type MatMul struct {
	N       int // matrix dimension
	Threads int
	Seed    int64
}

// elemA/elemB generate deterministic small integer matrices so results
// are exactly comparable across systems.
func (m MatMul) ElemA(i, j int) float64 {
	return float64((int64(i)*31+int64(j)*17+m.Seed)%7 - 3)
}

func (m MatMul) ElemB(i, j int) float64 {
	return float64((int64(i)*13+int64(j)*29+m.Seed)%5 - 2)
}

func matBytes(n int, f func(i, j int) float64) []byte {
	b := make([]byte, n*n*8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			binary.BigEndian.PutUint64(b[(i*n+j)*8:], floatBits(f(i, j)))
		}
	}
	return b
}

// Run executes the workload on sys and returns the checksum of C.
func (m MatMul) Run(sys api.System) float64 {
	n := m.N
	a := sys.Alloc("matmul.A", n*n*8, protocol.WriteOnce, protocol.DefaultOptions(), matBytes(n, m.ElemA))
	b := sys.Alloc("matmul.B", n*n*8, protocol.WriteOnce, protocol.DefaultOptions(), matBytes(n, m.ElemB))
	resOpts := protocol.DefaultOptions()
	resOpts.Home = 0
	cRegion := sys.Alloc("matmul.C", n*n*8, protocol.Result, resOpts, nil)

	sys.Run(m.Threads, func(c api.Ctx) {
		lo, hi := partition(n, c.NThreads(), c.ThreadID())
		// Read B once into thread-local scratch (each node replicates
		// the write-once object; the copy itself is a local read).
		bloc := make([]float64, n*n)
		row := make([]byte, n*8)
		for i := 0; i < n; i++ {
			c.Read(b, i*n*8, row)
			for j := 0; j < n; j++ {
				bloc[i*n+j] = floatFrom(binary.BigEndian.Uint64(row[j*8:]))
			}
		}
		arow := make([]float64, n)
		crow := make([]byte, n*8)
		for i := lo; i < hi; i++ {
			c.Read(a, i*n*8, row)
			for j := 0; j < n; j++ {
				arow[j] = floatFrom(binary.BigEndian.Uint64(row[j*8:]))
			}
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += arow[k] * bloc[k*n+j]
				}
				binary.BigEndian.PutUint64(crow[j*8:], floatBits(sum))
			}
			c.Write(cRegion, i*n*8, crow)
		}
		// Thread exit flushes the buffered result rows to the collector.
	})

	return checksumMatrix(sys, cRegion, n)
}

// checksumMatrix sums all elements of an n×n float64 region, reading
// from a single collector thread on node 0.
func checksumMatrix(sys api.System, r api.RegionID, n int) float64 {
	var sum float64
	sys.Run(1, func(c api.Ctx) {
		row := make([]byte, n*8)
		for i := 0; i < n; i++ {
			c.Read(r, i*n*8, row)
			for j := 0; j < n; j++ {
				sum += floatFrom(binary.BigEndian.Uint64(row[j*8:]))
			}
		}
	})
	return sum
}

// Sequential computes the reference checksum without any DSM.
func (m MatMul) Sequential() float64 {
	n := m.N
	sum := 0.0
	bcol := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bcol[i*n+j] = m.ElemB(i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m.ElemA(i, k) * bcol[k*n+j]
			}
			sum += s
		}
	}
	return sum
}

func (m MatMul) String() string { return fmt.Sprintf("matmul(N=%d,T=%d)", m.N, m.Threads) }
