// Package core assembles the Munin runtime: a simulated cluster with a
// per-node Munin server (internal/protocol), the distributed lock
// service (internal/dlock), and the Presto-like thread layer
// (internal/threads), exposed through the DSM interface in internal/api.
//
// This is the system the paper describes in §3.1: software coherence
// control over a message-passing substrate, with type-specific protocol
// selection per object and delayed updates flushed at synchronization
// points.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"munin/internal/api"
	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/protocol"
	"munin/internal/threads"
	"munin/internal/transport"
)

// Config configures a Munin system.
type Config struct {
	// Nodes is the number of simulated processors (>= 1).
	Nodes int
	// Transport selects "chan" (default) or "tcp".
	Transport string
	// Cost is the network cost model (zero = free, fast for tests;
	// transport.DefaultCostModel() for paper-like accounting).
	Cost transport.CostModel
	// Placement maps thread IDs to nodes; nil = round robin.
	Placement threads.Placement
}

// System is a running Munin instance. It implements api.System.
type System struct {
	cfg   Config
	clu   *cluster.Cluster
	locks []*dlock.Service
	nodes []*protocol.Node

	mu      sync.Mutex
	nextObj memory.ObjectID
	regions []memory.ObjectID // RegionID -> ObjectID
	nextLck uint32
	nextBar uint32
	nextAtm uint32
	closed  bool

	threadSeq atomic.Int64
}

var _ api.System = (*System)(nil)

// New builds and starts a Munin system.
func New(cfg Config) (*System, error) {
	clu, err := cluster.New(cluster.Config{
		Nodes: cfg.Nodes, Transport: cfg.Transport, Cost: cfg.Cost,
	})
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, clu: clu, nextObj: 1, nextLck: 1, nextBar: 1, nextAtm: 1}
	for i := 0; i < cfg.Nodes; i++ {
		k := clu.Kernel(msg.NodeID(i))
		ls := dlock.NewService(k)
		s.locks = append(s.locks, ls)
		s.nodes = append(s.nodes, protocol.NewNode(k, ls))
	}
	return s, nil
}

// Name implements api.System.
func (s *System) Name() string { return "munin" }

// Nodes implements api.System.
func (s *System) Nodes() int { return s.cfg.Nodes }

// Alloc implements api.System: creates one shared object with the given
// annotation, cluster-wide. Must run before worker threads start.
func (s *System) Alloc(name string, size int, hint protocol.Annotation, opts protocol.Options, init []byte) api.RegionID {
	s.mu.Lock()
	id := s.nextObj
	s.nextObj++
	region := api.RegionID(len(s.regions))
	s.regions = append(s.regions, id)
	s.mu.Unlock()

	if hint == protocol.Migratory && opts.Lock == 0 {
		// Allocate a dedicated lock for the migratory object if the
		// caller didn't associate one.
		opts.Lock = s.NewLock()
	}
	meta := protocol.Meta{ID: id, Name: name, Size: size, Annot: hint, Opts: opts}
	s.nodes[0].Alloc(meta, init)
	return region
}

// objectOf maps a region back to its object ID.
func (s *System) objectOf(r api.RegionID) memory.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(r) < 0 || int(r) >= len(s.regions) {
		panic(fmt.Sprintf("munin: unknown region %d", r))
	}
	return s.regions[r]
}

// NewLock implements api.System.
func (s *System) NewLock() dlock.LockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := dlock.LockID(s.nextLck)
	s.nextLck++
	return id
}

// NewBarrier implements api.System.
func (s *System) NewBarrier() dlock.BarrierID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := dlock.BarrierID(s.nextBar)
	s.nextBar++
	return id
}

// NewAtomic implements api.System.
func (s *System) NewAtomic() dlock.AtomicID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := dlock.AtomicID(s.nextAtm)
	s.nextAtm++
	return id
}

// Run implements api.System: SPMD over the cluster. Each thread gets
// its own delayed update queue, flushed at every synchronization
// operation and at thread exit.
func (s *System) Run(nthreads int, body func(c api.Ctx)) {
	threads.SPMD(s.cfg.Nodes, nthreads, s.cfg.Placement, func(t *threads.Thread) {
		c := &Ctx{
			sys:    s,
			thread: t,
			node:   s.nodes[t.Node],
			locks:  s.locks[t.Node],
			queue:  duq.New(),
		}
		defer c.exit()
		body(c)
	})
}

// Messages implements api.System.
func (s *System) Messages() int64 { return s.clu.Stats().Messages() }

// Bytes implements api.System.
func (s *System) Bytes() int64 { return s.clu.Stats().Bytes() }

// Stats exposes the underlying network accounting (modeled time,
// per-class counts) for the benchmark harness.
func (s *System) Stats() *transport.Stats { return s.clu.Stats() }

// NodeCounters returns node i's protocol counters snapshot.
func (s *System) NodeCounters(i int) map[string]int64 { return s.nodes[i].C.Snapshot() }

// LockService returns node i's lock service (for experiments that
// measure the proxy benefit directly).
func (s *System) LockService(i int) *dlock.Service { return s.locks[i] }

// ProtocolNode returns node i's Munin server (used by the sharing-study
// tracer and white-box tests).
func (s *System) ProtocolNode(i int) *protocol.Node { return s.nodes[i] }

// Close implements api.System.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.clu.Close()
}

// Ctx is one thread's handle to the Munin system. It implements api.Ctx.
type Ctx struct {
	sys    *System
	thread *threads.Thread
	node   *protocol.Node
	locks  *dlock.Service
	queue  *duq.Queue
}

var _ api.Ctx = (*Ctx)(nil)

// ThreadID implements api.Ctx.
func (c *Ctx) ThreadID() int { return c.thread.ID }

// NThreads implements api.Ctx.
func (c *Ctx) NThreads() int { return c.thread.NThreads }

// Node implements api.Ctx.
func (c *Ctx) Node() int { return int(c.thread.Node) }

// Read implements api.Ctx.
func (c *Ctx) Read(r api.RegionID, off int, buf []byte) {
	c.node.Read(c.queue, c.sys.objectOf(r), off, buf)
}

// Write implements api.Ctx.
func (c *Ctx) Write(r api.RegionID, off int, data []byte) {
	c.node.Write(c.queue, c.sys.objectOf(r), off, data)
}

// Acquire implements api.Ctx: flush, then take the distributed lock.
// Flushing before acquire keeps this thread's prior updates ordered
// before anything it does inside the critical section.
func (c *Ctx) Acquire(l dlock.LockID) {
	c.node.FlushQueue(c.queue)
	c.locks.Acquire(l)
}

// Release implements api.Ctx: flush, then release. The flush is what
// combines "data motion with synchronization": updates made inside the
// critical section are guaranteed visible before the next lock holder
// proceeds.
func (c *Ctx) Release(l dlock.LockID) {
	c.node.FlushQueue(c.queue)
	c.locks.Release(l)
}

// Barrier implements api.Ctx: flush, then wait for n participants.
func (c *Ctx) Barrier(b dlock.BarrierID, n int) {
	c.node.FlushQueue(c.queue)
	c.locks.BarrierWait(b, n)
}

// FetchAdd implements api.Ctx: flush (it is a synchronization op), then
// atomically add.
func (c *Ctx) FetchAdd(a dlock.AtomicID, delta int64) int64 {
	c.node.FlushQueue(c.queue)
	return c.locks.FetchAdd(a, delta)
}

// Flush implements api.Ctx.
func (c *Ctx) Flush() { c.node.FlushQueue(c.queue) }

// Evict drops this node's replica of a region (write-once pageout).
func (c *Ctx) Evict(r api.RegionID) { c.node.Evict(c.sys.objectOf(r)) }

// exit flushes the delayed update queue one final time ("whenever a
// thread synchronizes, including during thread exit").
func (c *Ctx) exit() { c.node.FlushQueue(c.queue) }
