// Package core assembles the Munin runtime: a cluster with a per-node
// Munin server (internal/protocol), the distributed lock service
// (internal/dlock), and the Presto-like thread layer (internal/threads),
// exposed through the DSM interface in internal/api.
//
// This is the system the paper describes in §3.1: software coherence
// control over a message-passing substrate, with type-specific protocol
// selection per object and delayed updates flushed at synchronization
// points.
//
// # One program, any cluster
//
// The same program runs in two shapes, selected by Config alone:
//
//   - In-process (Config.Nodes): every node of the simulated cluster
//     lives in this process, connected by the chan or loopback-TCP
//     transport. Run spawns the whole thread team.
//   - SPMD over the mesh (Config.Topology): this process is ONE member
//     of a multi-process cluster. Every process executes the identical
//     program; Alloc/NewLock/NewBarrier/NewAtomic assign identical IDs
//     in every process from program order alone (no coordinator — each
//     member installs its own view locally, and a setup digest checked
//     at the Run gate fails fast on divergent setup code, see gate.go);
//     Run spawns only the threads placed on this member's node and
//     doubles as a cluster-wide barrier, entering and leaving together
//     in every process. Locks, barriers and atomics ride vkernel calls
//     over the mesh to their home members exactly as they ride the
//     in-process transports.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"munin/internal/api"
	"munin/internal/cluster"
	"munin/internal/dlock"
	"munin/internal/duq"
	"munin/internal/memory"
	"munin/internal/msg"
	"munin/internal/protocol"
	"munin/internal/threads"
	"munin/internal/transport"
)

// Config configures a Munin system.
type Config struct {
	// Nodes is the number of simulated processors (>= 1). Ignored when
	// Topology is set (the topology defines the cluster size).
	Nodes int
	// Transport selects "chan" (default) or "tcp". Ignored when
	// Topology is set.
	Transport string
	// Cost is the network cost model (zero = free, fast for tests;
	// transport.DefaultCostModel() for paper-like accounting).
	Cost transport.CostModel
	// Placement maps thread IDs to nodes; nil = round robin. Every
	// member of a mesh cluster must use the same placement (it decides
	// which process runs which thread).
	Placement threads.Placement
	// Topology, when non-nil, makes this process one SPMD member of a
	// multi-process cluster: it binds the topology's self address, runs
	// only its own node's kernel/protocol/locks, executes only its own
	// share of every Run's thread team, and reaches the other members
	// over real TCP connections. Every process of the cluster must run
	// the identical program with the same topology (different Self).
	Topology *transport.Topology
	// Reconnect, when non-nil, overrides the topology's
	// reconnect-after-latch policy (mesh shape only).
	Reconnect *transport.ReconnectPolicy
	// Recover marks this process as the restarted incarnation of a
	// member rejoining a running cluster (mesh shape only, requires an
	// enabled reconnect policy, and node 0 — the gate rendezvous —
	// cannot recover). The member's first Run replaces its enter gate
	// with the recovery handshake: re-announce allocations to every
	// peer, resync the run-gate sequence with node 0, and only then
	// unblock shared-memory access (reads re-prime lazily via the
	// ordinary fault path). See internal/protocol/recovery.go.
	Recover bool
	// ReadMostlyLease routes read-mostly objects through the Tardis-style
	// lease engine instead of the directory machine: reads are served
	// from leased local replicas, writes bump a logical version at the
	// home with no invalidation multicast. Per-object Options.Engine
	// still overrides. Every SPMD member must set it identically (the
	// setup digest folds the resolved engine, so divergence fails the
	// run gate).
	ReadMostlyLease bool
}

// System is a running Munin instance. It implements api.System.
type System struct {
	cfg    Config
	clu    *cluster.Cluster
	locks  []*dlock.Service // mesh shape: only the self slot is non-nil
	nodes  []*protocol.Node // mesh shape: only the self slot is non-nil
	self   msg.NodeID       // mesh shape only; -1 in-process
	nnodes int

	mu      sync.Mutex
	nextObj memory.ObjectID
	regions []memory.ObjectID // RegionID -> ObjectID
	nextLck uint32
	nextBar uint32
	nextAtm uint32
	closed  bool

	// Setup digest: a running hash + count over every allocation the
	// program has made, identical across SPMD members when their setup
	// code is identical. The run gate exchanges it to fail fast on
	// divergence (see gate.go).
	setupSum uint64
	setupN   int

	// Run-gate state (mesh shape; gates/lostPeers meaningful on node 0
	// only).
	gateSeq   uint64
	gateMu    sync.Mutex
	gates     map[uint64]*gateInfo
	lostPeers map[msg.NodeID]error
	// downPeers are members whose wire died while a reconnect policy
	// is enabled: presumed to be restarting, so parked gates wait for
	// their recovered incarnation instead of failing (gatePeerDown).
	// Also under gateMu.
	downPeers map[msg.NodeID]error

	// recoverable is set in mesh shape when the reconnect policy is
	// enabled: a crashed peer may come back, so gates wait out an
	// outage instead of failing.
	recoverable bool
	// recoverPending arms the recovery handshake: the first Run of a
	// Config.Recover member consumes it (see RunErr).
	recoverPending atomic.Bool

	threadSeq atomic.Int64
}

var _ api.System = (*System)(nil)

// New builds and starts a Munin system: the whole simulated cluster
// in-process, or — with cfg.Topology set — this process's member of a
// multi-process SPMD cluster.
func New(cfg Config) (*System, error) {
	if cfg.Topology != nil {
		return newMeshMember(cfg)
	}
	if cfg.Recover {
		return nil, fmt.Errorf("munin: Config.Recover requires mesh shape (Config.Topology)")
	}
	clu, err := cluster.New(cluster.Config{
		Nodes: cfg.Nodes, Transport: cfg.Transport, Cost: cfg.Cost,
	})
	if err != nil {
		return nil, err
	}
	s := newSystem(cfg, clu, -1, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		k := clu.Kernel(msg.NodeID(i))
		ls := dlock.NewService(k)
		s.locks[i] = ls
		s.nodes[i] = protocol.NewNode(k, ls)
	}
	return s, nil
}

// newMeshMember assembles one SPMD member: the self node's kernel, lock
// service and protocol server, with departure-aware membership pruning
// and the run-gate handler wired up.
func newMeshMember(cfg Config) (*System, error) {
	rp := cfg.Topology.Reconnect
	if cfg.Reconnect != nil {
		rp = *cfg.Reconnect
	}
	if cfg.Recover {
		if !rp.Enabled {
			return nil, fmt.Errorf("munin: Config.Recover requires an enabled reconnect policy")
		}
		if cfg.Topology.Self == 0 {
			return nil, fmt.Errorf("munin: node 0 (the run-gate rendezvous) cannot recover")
		}
	}
	clu, err := cluster.New(cluster.Config{
		Topology: cfg.Topology, Reconnect: cfg.Reconnect, Cost: cfg.Cost,
	})
	if err != nil {
		return nil, err
	}
	self := cfg.Topology.Self
	s := newSystem(cfg, clu, self, cfg.Topology.Nodes())
	s.recoverable = rp.Enabled
	k := clu.Kernel(self)
	ls := dlock.NewService(k)
	node := protocol.NewNode(k, ls)
	s.locks[self] = ls
	s.nodes[self] = node
	// The run gate verifies every member's setup digest; a rejoining
	// member's recovery announce is verified against the same digest
	// (protocol.handleRecover).
	node.SetSetupDigest(func() (uint64, int) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.setupSum, s.setupN
	})
	// A member that departs cleanly (goodbye) is pruned from this
	// member's directory copy sets, producer/consumer caches, and
	// home-side lock queues, so a clean leave stops costing one failed
	// send per relay — and any gate still waiting on it fails with a
	// member-lost verdict instead of hanging every survivor's Run.
	clu.OnPeerGone(func(peer msg.NodeID, err error) {
		node.PeerGone(peer)
		ls.PeerGone(peer)
		s.gatePeerLost(peer, err)
	})
	// Wire death is terminal only without a reconnect policy: with one
	// enabled, the peer is presumed to be restarting, so gates wait
	// out the outage (gatePeerDown) and a completed rejoin handshake
	// clears the down mark (gatePeerBack) before any frame from the
	// fresh connection arrives.
	if pd, ok := clu.Network().(transport.PeerDownNotifier); ok {
		pd.OnPeerDown(func(peer msg.NodeID, _ uint64, err error) {
			s.gatePeerDown(peer, err)
		})
	}
	if pr, ok := clu.Network().(transport.PeerReconnectNotifier); ok {
		pr.OnPeerReconnect(func(peer msg.NodeID, _ uint64) {
			s.gatePeerBack(peer)
		})
	}
	if cfg.Recover {
		// Block shared-memory access until the recovery handshake in
		// the first Run completes — a recovering member must never
		// serve pre-crash bytes.
		node.BeginRecovery()
		s.recoverPending.Store(true)
	}
	k.Handle(kindRunGate, kindGateSync, s.dispatchGate)
	return s, nil
}

func newSystem(cfg Config, clu *cluster.Cluster, self msg.NodeID, nnodes int) *System {
	return &System{
		cfg: cfg, clu: clu, self: self, nnodes: nnodes,
		locks: make([]*dlock.Service, nnodes), nodes: make([]*protocol.Node, nnodes),
		nextObj: 1, nextLck: 1, nextBar: 1, nextAtm: 1,
		setupSum: fnvOffset,
		gates:    make(map[uint64]*gateInfo),
	}
}

// Name implements api.System.
func (s *System) Name() string { return "munin" }

// Nodes implements api.System: the whole cluster's size — for a mesh
// member, not just this process's share.
func (s *System) Nodes() int { return s.nnodes }

// Self returns this process's node ID in mesh shape, or -1 when every
// node lives in this process.
func (s *System) Self() int { return int(s.self) }

// Alloc implements api.System: creates one shared object with the given
// annotation, cluster-wide. Must run before worker threads start.
//
// Object IDs are assigned from program order alone, so an SPMD program
// whose every member executes the same setup code allocates identical
// IDs in every process with no coordinator and no announce traffic: in
// mesh shape each member installs only its own view of the object. The
// run gate's setup digest (folded here over the allocation's identity,
// options and initial contents) catches members whose setup diverged.
func (s *System) Alloc(name string, size int, hint protocol.Annotation, opts protocol.Options, init []byte) api.RegionID {
	s.mu.Lock()
	id := s.nextObj
	s.nextObj++
	region := api.RegionID(len(s.regions))
	s.regions = append(s.regions, id)
	s.mu.Unlock()

	if hint == protocol.Migratory && opts.Lock == 0 {
		// Allocate a dedicated lock for the migratory object if the
		// caller didn't associate one. Deterministic too: the lock
		// counter advances in program order like everything else.
		opts.Lock = s.NewLock()
	}
	if hint == protocol.ReadMostly && opts.Engine == protocol.EngineDefault && s.cfg.ReadMostlyLease {
		opts.Engine = protocol.EngineLease
	}
	s.recordSetup("alloc", name, size, uint8(hint),
		int64(opts.Home), uint32(opts.Lock), uint8(opts.Update),
		opts.Dynamic, opts.ForceReplicated, opts.JoinGap, uint8(opts.Engine), len(init))
	s.recordSetupRaw(init)
	meta := protocol.Meta{ID: id, Name: name, Size: size, Annot: hint, Opts: opts}
	if s.self >= 0 {
		s.nodes[s.self].InstallLocal(meta, init)
	} else {
		s.nodes[0].Alloc(meta, init)
	}
	return region
}

// objectOf maps a region back to its object ID.
func (s *System) objectOf(r api.RegionID) memory.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(r) < 0 || int(r) >= len(s.regions) {
		panic(fmt.Sprintf("munin: unknown region %d", r))
	}
	return s.regions[r]
}

// NewLock implements api.System. IDs are assigned from program order —
// deterministic across SPMD members, like Alloc.
func (s *System) NewLock() dlock.LockID {
	s.mu.Lock()
	id := dlock.LockID(s.nextLck)
	s.nextLck++
	s.mu.Unlock()
	s.recordSetup("lock", uint32(id))
	return id
}

// NewBarrier implements api.System.
func (s *System) NewBarrier() dlock.BarrierID {
	s.mu.Lock()
	id := dlock.BarrierID(s.nextBar)
	s.nextBar++
	s.mu.Unlock()
	s.recordSetup("barrier", uint32(id))
	return id
}

// NewAtomic implements api.System.
func (s *System) NewAtomic() dlock.AtomicID {
	s.mu.Lock()
	id := dlock.AtomicID(s.nextAtm)
	s.nextAtm++
	s.mu.Unlock()
	s.recordSetup("atomic", uint32(id))
	return id
}

// Run implements api.System: SPMD over the cluster. Each thread gets
// its own delayed update queue, flushed at every synchronization
// operation and at thread exit.
//
// In mesh shape Run is placement-aware and doubles as a cluster-wide
// barrier: this process spawns only the threads placed on its own node,
// and no member's Run starts its threads before every member has called
// Run (the enter gate, which also verifies the setup digest) or returns
// before every member's threads have finished (the exit gate). Run
// panics with a *SetupDivergenceError if the members' setup code
// diverged; RunErr is the error-returning form.
func (s *System) Run(nthreads int, body func(c api.Ctx)) {
	if err := s.RunErr(nthreads, body); err != nil {
		panic(err)
	}
}

// RunErr is Run with an error return instead of a panic for gate
// failures: setup divergence (*SetupDivergenceError), or a member lost
// while waiting at the gate — as the typed *transport.ErrPeerDown /
// ErrPeerGone when node 0 itself is the lost member (the gate call
// fails directly), or wrapped in node 0's member-lost verdict when a
// third member is. Panics from thread bodies still propagate as
// panics.
func (s *System) RunErr(nthreads int, body func(c api.Ctx)) error {
	run := func(t *threads.Thread) {
		c := &Ctx{
			sys:    s,
			thread: t,
			node:   s.nodes[t.Node],
			locks:  s.locks[t.Node],
			queue:  duq.New(),
		}
		defer c.exit()
		body(c)
	}
	if s.self < 0 {
		threads.SPMD(s.nnodes, nthreads, s.cfg.Placement, run)
		return nil
	}
	if s.recoverPending.CompareAndSwap(true, false) {
		// A recovering member's first Run replaces its enter gate with
		// the recovery handshake: the survivors' matching enter gate
		// completed long ago (with this member's dead incarnation),
		// and the gate resync aligns this process's sequence so its
		// exit arrival pairs with theirs.
		if err := s.recover(); err != nil {
			return err
		}
	} else if err := s.runGate(nthreads); err != nil {
		return err
	}
	threads.SPMDLocal(s.self, s.nnodes, nthreads, s.cfg.Placement, run)
	return s.runGate(nthreads)
}

// recover replays the recovery handshake for a Config.Recover member:
// re-announce this member's allocations to every peer (each survivor
// verifies them against its own and rebuilds its copy sets, ownership
// and lock queues for this node), resync the run-gate sequence with
// node 0, and release the blocked shared-memory accessors. Replicas
// re-prime lazily afterwards via the ordinary read-fault path.
func (s *System) recover() error {
	node := s.nodes[s.self]
	s.mu.Lock()
	sum, n := s.setupSum, s.setupN
	s.mu.Unlock()
	if err := node.RecoverAnnounce(sum, n); err != nil {
		return err
	}
	if err := s.resyncGate(); err != nil {
		return err
	}
	node.FinishRecovery()
	return nil
}

// Messages implements api.System. In mesh shape the count covers this
// process's wire traffic only (each member accounts its own).
func (s *System) Messages() int64 { return s.clu.Stats().Messages() }

// Bytes implements api.System.
func (s *System) Bytes() int64 { return s.clu.Stats().Bytes() }

// Stats exposes the underlying network accounting (modeled time,
// per-class counts) for the benchmark harness.
func (s *System) Stats() *transport.Stats { return s.clu.Stats() }

// mustLocal guards the per-node accessors: in mesh shape only the self
// node's state exists in this process.
func (s *System) mustLocal(i int) int {
	if i < 0 || i >= s.nnodes || s.nodes[i] == nil {
		panic(fmt.Sprintf("munin: node %d runs in another process (this one is %d)", i, s.self))
	}
	return i
}

// NodeCounters returns node i's protocol counters snapshot.
func (s *System) NodeCounters(i int) map[string]int64 { return s.nodes[s.mustLocal(i)].C.Snapshot() }

// LockService returns node i's lock service (for experiments that
// measure the proxy benefit directly).
func (s *System) LockService(i int) *dlock.Service { return s.locks[s.mustLocal(i)] }

// ProtocolNode returns node i's Munin server (used by the sharing-study
// tracer and white-box tests).
func (s *System) ProtocolNode(i int) *protocol.Node { return s.nodes[s.mustLocal(i)] }

// Close implements api.System.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.clu.Close()
}

// Ctx is one thread's handle to the Munin system. It implements api.Ctx.
type Ctx struct {
	sys    *System
	thread *threads.Thread
	node   *protocol.Node
	locks  *dlock.Service
	queue  *duq.Queue
}

var _ api.Ctx = (*Ctx)(nil)

// ThreadID implements api.Ctx.
func (c *Ctx) ThreadID() int { return c.thread.ID }

// NThreads implements api.Ctx.
func (c *Ctx) NThreads() int { return c.thread.NThreads }

// Node implements api.Ctx.
func (c *Ctx) Node() int { return int(c.thread.Node) }

// Read implements api.Ctx.
func (c *Ctx) Read(r api.RegionID, off int, buf []byte) {
	c.node.Read(c.queue, c.sys.objectOf(r), off, buf)
}

// Write implements api.Ctx.
func (c *Ctx) Write(r api.RegionID, off int, data []byte) {
	c.node.Write(c.queue, c.sys.objectOf(r), off, data)
}

// Acquire implements api.Ctx: flush, then take the distributed lock.
// Flushing before acquire keeps this thread's prior updates ordered
// before anything it does inside the critical section.
func (c *Ctx) Acquire(l dlock.LockID) {
	c.node.FlushQueue(c.queue)
	c.locks.Acquire(l)
}

// Release implements api.Ctx: flush, then release. The flush is what
// combines "data motion with synchronization": updates made inside the
// critical section are guaranteed visible before the next lock holder
// proceeds.
func (c *Ctx) Release(l dlock.LockID) {
	c.node.FlushQueue(c.queue)
	c.locks.Release(l)
}

// Barrier implements api.Ctx: flush, then wait for n participants.
func (c *Ctx) Barrier(b dlock.BarrierID, n int) {
	c.node.FlushQueue(c.queue)
	c.locks.BarrierWait(b, n)
}

// FetchAdd implements api.Ctx: flush (it is a synchronization op), then
// atomically add.
func (c *Ctx) FetchAdd(a dlock.AtomicID, delta int64) int64 {
	c.node.FlushQueue(c.queue)
	return c.locks.FetchAdd(a, delta)
}

// Flush implements api.Ctx.
func (c *Ctx) Flush() { c.node.FlushQueue(c.queue) }

// Evict drops this node's replica of a region (write-once pageout).
func (c *Ctx) Evict(r api.RegionID) { c.node.Evict(c.sys.objectOf(r)) }

// exit flushes the delayed update queue one final time ("whenever a
// thread synchronizes, including during thread exit").
func (c *Ctx) exit() { c.node.FlushQueue(c.queue) }
