package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"munin/internal/api"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/protocol"
	"munin/internal/transport"
)

// meshTopos reserves loopback addresses and builds one topology per
// member of an n-member mesh.
func meshTopos(t *testing.T, n int) []transport.Topology {
	t.Helper()
	addrs, err := netutil.ReserveAddrs(n)
	if err != nil {
		t.Fatal(err)
	}
	peers := make(map[msg.NodeID]string, n)
	for i, a := range addrs {
		peers[msg.NodeID(i)] = a
	}
	topos := make([]transport.Topology, n)
	for i := range topos {
		topos[i] = transport.Topology{Self: msg.NodeID(i), Peers: peers}
	}
	return topos
}

// spmdMembers runs program once per topology member, each member in its
// own goroutine with its own System — the in-one-test-process stand-in
// for n OS processes, crossing real loopback sockets all the same.
// Returns the per-member errors.
func spmdMembers(t *testing.T, topos []transport.Topology, program func(sys *System) error) []error {
	t.Helper()
	errs := make([]error, len(topos))
	var wg sync.WaitGroup
	for i := range topos {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys, err := New(Config{Topology: &topos[i]})
			if err != nil {
				errs[i] = err
				return
			}
			defer sys.Close()
			errs[i] = program(sys)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SPMD members deadlocked")
	}
	return errs
}

// quickstartProgram is the README program — a locked counter, a
// write-many array written by every thread at its own offset, a barrier
// — returning the final shared-memory bytes as seen by thread 0. The
// identical function runs in-process and as an SPMD mesh member.
func quickstartProgram(threads int) func(sys *System) error {
	return func(sys *System) error {
		counter := sys.Alloc("counter", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
		lock := sys.NewLock()
		arr := sys.Alloc("arr", threads*8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		bar := sys.NewBarrier()
		var out atomic.Pointer[[]byte]
		err := sys.RunErr(threads, func(c api.Ctx) {
			c.Acquire(lock)
			api.WriteU64(c, counter, 0, api.ReadU64(c, counter, 0)+1)
			c.Release(lock)
			api.WriteU64(c, arr, c.ThreadID()*8, uint64(c.ThreadID()*7+1))
			c.Barrier(bar, threads)
			if c.ThreadID() == 0 {
				buf := make([]byte, threads*8+8)
				c.Read(arr, 0, buf[:threads*8])
				c.Read(counter, 0, buf[threads*8:])
				out.Store(&buf)
			}
		})
		if err != nil {
			return err
		}
		if p := out.Load(); p != nil {
			return &resultBytes{bytes: *p}
		}
		return nil
	}
}

// resultBytes smuggles thread 0's view of shared memory out of a
// member program through the error return (nil-like success carrying
// data; filtered by callers).
type resultBytes struct{ bytes []byte }

func (r *resultBytes) Error() string { return fmt.Sprintf("result: %x", r.bytes) }

// TestMeshRunMatchesInProcess is the tentpole's acceptance shape: the
// identical program produces byte-identical shared-memory results run
// in-process with Nodes: 2 and as two SPMD mesh members.
func TestMeshRunMatchesInProcess(t *testing.T) {
	const nthreads = 8

	inProc := newSys(t, 2)
	var want []byte
	switch res := quickstartProgram(nthreads)(inProc).(type) {
	case *resultBytes:
		want = res.bytes
	default:
		t.Fatalf("in-process run: %v", res)
	}
	// Thread 0 wrote slot 0 with 1, ..., and the counter reached 8.
	if got := want[nthreads*8+7]; got != nthreads {
		t.Fatalf("in-process counter = %d, want %d", got, nthreads)
	}

	errs := spmdMembers(t, meshTopos(t, 2), quickstartProgram(nthreads))
	var got []byte
	for i, err := range errs {
		switch res := err.(type) {
		case nil:
			if i == 0 {
				t.Fatal("member 0 runs thread 0 and must report the result bytes")
			}
		case *resultBytes:
			if i != 0 {
				t.Fatalf("member %d reported result bytes; thread 0 is placed on node 0", i)
			}
			got = res.bytes
		default:
			t.Fatalf("member %d: %v", i, err)
		}
	}
	if string(got) != string(want) {
		t.Fatalf("mesh result differs from in-process:\n  mesh       %x\n  in-process %x", got, want)
	}
}

// TestMeshRunPlacement: each member executes exactly its own share of
// the team, with team-global thread IDs.
func TestMeshRunPlacement(t *testing.T) {
	const nthreads = 6
	var mu sync.Mutex
	ranOn := map[int][]int{} // member -> thread IDs it executed
	program := func(sys *System) error {
		bar := sys.NewBarrier()
		return sys.RunErr(nthreads, func(c api.Ctx) {
			mu.Lock()
			ranOn[sys.Self()] = append(ranOn[sys.Self()], c.ThreadID())
			mu.Unlock()
			if c.Node() != sys.Self() {
				t.Errorf("thread %d reports node %d inside member %d", c.ThreadID(), c.Node(), sys.Self())
			}
			c.Barrier(bar, nthreads)
		})
	}
	for i, err := range spmdMembers(t, meshTopos(t, 2), program) {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	for member, ids := range ranOn {
		for _, id := range ids {
			if id%2 != member {
				t.Fatalf("thread %d ran on member %d (round-robin places it on %d)", id, member, id%2)
			}
		}
	}
	if len(ranOn[0])+len(ranOn[1]) != nthreads {
		t.Fatalf("team executed %d threads, want %d", len(ranOn[0])+len(ranOn[1]), nthreads)
	}
}

// TestMeshSetupDivergenceDetected: members whose setup code diverged
// (different allocation sizes here) get a typed *SetupDivergenceError
// from the first Run gate, in every member — not silent corruption.
func TestMeshSetupDivergenceDetected(t *testing.T) {
	program := func(sys *System) error {
		size := 8
		if sys.Self() == 1 {
			size = 16 // the bug under test: member 1 allocates differently
		}
		sys.Alloc("x", size, protocol.WriteMany, protocol.DefaultOptions(), nil)
		return sys.RunErr(2, func(c api.Ctx) {})
	}
	for i, err := range spmdMembers(t, meshTopos(t, 2), program) {
		var div *SetupDivergenceError
		if !errors.As(err, &div) {
			t.Fatalf("member %d: err = %v, want *SetupDivergenceError", i, err)
		}
		if div.Gate != 1 {
			t.Fatalf("member %d: divergence at gate %d, want the first gate", i, div.Gate)
		}
	}
}

// TestMeshSetupDivergentOrderDetected: same allocations, different
// program order — caught too (IDs would disagree).
func TestMeshSetupDivergentOrderDetected(t *testing.T) {
	program := func(sys *System) error {
		if sys.Self() == 0 {
			sys.Alloc("a", 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
			sys.NewLock()
		} else {
			sys.NewLock()
			sys.Alloc("a", 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		}
		return sys.RunErr(2, func(c api.Ctx) {})
	}
	for i, err := range spmdMembers(t, meshTopos(t, 2), program) {
		var div *SetupDivergenceError
		if !errors.As(err, &div) {
			t.Fatalf("member %d: err = %v, want *SetupDivergenceError", i, err)
		}
	}
}

// TestMeshRunIsClusterWideBarrier: no member leaves Run before every
// member's threads have finished — state written by a slow member's
// thread is visible to setup code after Run in every member.
func TestMeshRunIsClusterWideBarrier(t *testing.T) {
	var afterRun atomic.Int32
	var finished atomic.Int32
	program := func(sys *System) error {
		sys.Alloc("x", 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		err := sys.RunErr(2, func(c api.Ctx) {
			if c.ThreadID() == 1 {
				time.Sleep(100 * time.Millisecond) // the slow member
			}
			finished.Add(1)
		})
		if err != nil {
			return err
		}
		if finished.Load() != 2 {
			t.Errorf("member %d left Run with %d/2 threads finished", sys.Self(), finished.Load())
		}
		afterRun.Add(1)
		return nil
	}
	for i, err := range spmdMembers(t, meshTopos(t, 2), program) {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	if afterRun.Load() != 2 {
		t.Fatalf("%d members completed, want 2", afterRun.Load())
	}
}

// TestMeshAccessorGuards: asking a mesh member for another node's
// state panics with a clear message instead of a nil dereference.
func TestMeshAccessorGuards(t *testing.T) {
	topos := meshTopos(t, 2)
	program := func(sys *System) error {
		if sys.Self() == 0 {
			// Our own state is reachable...
			if sys.ProtocolNode(0) == nil || sys.LockService(0) == nil {
				t.Error("self state must exist")
			}
			// ...the peer's lives in "another process".
			func() {
				defer func() {
					if recover() == nil {
						t.Error("ProtocolNode(1) on member 0 should panic")
					}
				}()
				sys.ProtocolNode(1)
			}()
		}
		return sys.RunErr(2, func(c api.Ctx) {})
	}
	for i, err := range spmdMembers(t, topos, program) {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
}

// TestMeshRunGateFailsOnLostMember: a member that departs between Runs
// fails the survivors' next Run gate with a member-lost error — the
// gate must never hang waiting for an arrival that can no longer come.
func TestMeshRunGateFailsOnLostMember(t *testing.T) {
	program := func(sys *System) error {
		sys.Alloc("x", 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		if err := sys.RunErr(3, func(c api.Ctx) {}); err != nil {
			return fmt.Errorf("first Run: %w", err)
		}
		if sys.Self() == 2 {
			return nil // leaves the computation early (spmdMembers Closes it)
		}
		err := sys.RunErr(3, func(c api.Ctx) {})
		if err == nil {
			return fmt.Errorf("member %d: second Run succeeded despite member 2 leaving", sys.Self())
		}
		if !strings.Contains(err.Error(), "lost") {
			return fmt.Errorf("member %d: second Run error %q does not report the lost member", sys.Self(), err)
		}
		return nil
	}
	for i, err := range spmdMembers(t, meshTopos(t, 3), program) {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
}
