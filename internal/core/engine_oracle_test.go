package core

import (
	"bytes"
	"testing"

	"munin/internal/api"
	"munin/internal/protocol"
)

// sumCounter adds a named protocol counter across every node.
func sumCounter(s *System, name string) int64 {
	var total int64
	for i := 0; i < s.Nodes(); i++ {
		total += s.NodeCounters(i)[name]
	}
	return total
}

// TestReadMostlyLeaseKnobRoutesEngine: the Config knob must route
// read-mostly allocations through the lease engine — visible as lease
// grants at the home — and leave them on the directory machine when off.
func TestReadMostlyLeaseKnobRoutesEngine(t *testing.T) {
	for _, lease := range []bool{false, true} {
		s, err := New(Config{Nodes: 3, ReadMostlyLease: lease})
		if err != nil {
			t.Fatal(err)
		}
		r := s.Alloc("rm", 8, protocol.ReadMostly, protocol.DefaultOptions(), nil)
		s.Run(3, func(c api.Ctx) {
			var b [8]byte
			c.Read(r, 0, b[:])
		})
		granted := sumCounter(s, "lease.granted")
		if lease && granted == 0 {
			t.Fatal("knob on: no lease was ever granted")
		}
		if !lease && granted != 0 {
			t.Fatalf("knob off: %d leases granted", granted)
		}
		s.Close()
	}
}

// TestPerObjectEngineOverride: Options.Engine selects the lease engine
// for one object without the global knob.
func TestPerObjectEngineOverride(t *testing.T) {
	s := newSys(t, 2)
	opts := protocol.DefaultOptions()
	opts.Engine = protocol.EngineLease
	r := s.Alloc("rm", 8, protocol.ReadMostly, opts, nil)
	s.Run(2, func(c api.Ctx) {
		var b [8]byte
		c.Read(r, 0, b[:])
	})
	if sumCounter(s, "lease.granted") == 0 {
		t.Fatal("per-object engine option ignored")
	}
}

// TestLeaseEngineDifferentialOracle runs one synchronized read-mostly
// workload with the lease engine on and off: every synchronized read
// must see the preceding write under both engines, and the final shared
// memory must be byte-identical.
func TestLeaseEngineDifferentialOracle(t *testing.T) {
	const nodes, threads, rounds, size = 3, 6, 8, 64

	final := func(lease bool) []byte {
		s, err := New(Config{Nodes: nodes, ReadMostlyLease: lease})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		r := s.Alloc("rm", size, protocol.ReadMostly, protocol.DefaultOptions(), nil)
		bar := s.NewBarrier()
		s.Run(threads, func(c api.Ctx) {
			for round := 0; round < rounds; round++ {
				want := uint64(round*97 + 13)
				if c.ThreadID() == round%threads {
					api.WriteU64(c, r, (round%8)*8, want)
				}
				// The barrier is a synchronization point: the write
				// happened before the writer entered it, every other
				// thread synchronized after — so the read below must
				// see it under EITHER engine (§3.2).
				c.Barrier(bar, threads)
				if got := api.ReadU64(c, r, (round%8)*8); got != want {
					t.Errorf("lease=%v round %d: thread %d read %d, want %d",
						lease, round, c.ThreadID(), got, want)
				}
				c.Barrier(bar, threads)
			}
		})
		out := make([]byte, size)
		s.Run(1, func(c api.Ctx) { c.Read(r, 0, out) })
		return out
	}

	off, on := final(false), final(true)
	if !bytes.Equal(off, on) {
		t.Fatalf("final memory diverged between engines\ndirectory: %x\nlease:     %x", off, on)
	}
	if bytes.Equal(on, make([]byte, size)) {
		t.Fatal("oracle memory all zero — vacuous")
	}
}

// TestF1WorkloadLeaseOracle replays the Figure 1 workload (write-many
// object, writer/reader around barriers) with the lease knob on and
// off: the knob must not disturb non-read-mostly coherence, and the
// post-synchronization read is 42 either way.
func TestF1WorkloadLeaseOracle(t *testing.T) {
	for _, lease := range []bool{false, true} {
		s, err := New(Config{Nodes: 2, ReadMostlyLease: lease})
		if err != nil {
			t.Fatal(err)
		}
		r := s.Alloc("x", 8, protocol.WriteMany, protocol.DefaultOptions(), nil)
		bar := s.NewBarrier()
		var before, after uint64
		s.Run(2, func(c api.Ctx) {
			switch c.ThreadID() {
			case 0:
				api.WriteU64(c, r, 0, 41)
				c.Barrier(bar, 2)
				api.WriteU64(c, r, 0, 42)
				c.Barrier(bar, 2)
			case 1:
				c.Barrier(bar, 2)
				before = api.ReadU64(c, r, 0)
				c.Barrier(bar, 2)
				after = api.ReadU64(c, r, 0)
			}
		})
		if before != 41 && before != 42 {
			t.Fatalf("lease=%v: pre-sync read %d, want 41 or 42", lease, before)
		}
		if after != 42 {
			t.Fatalf("lease=%v: post-sync read %d, want 42", lease, after)
		}
		s.Close()
	}
}
