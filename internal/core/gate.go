package core

import (
	"fmt"
	"sort"

	"munin/internal/failpoint"
	"munin/internal/msg"
	"munin/internal/stats"
	"munin/internal/vkernel"
)

// The run gate: the rendezvous that makes Run a cluster-wide barrier in
// mesh shape, and the place divergent setup code is caught.
//
// Every Run is bracketed by two gates (enter and exit), numbered by a
// per-process gate sequence that advances in program order — so gate N
// means the same point in the program in every member. Node 0 is the
// rendezvous point: members 1..n-1 send their arrival as a Call carrying
// their setup digest (running hash + record count over every
// Alloc/NewLock/NewBarrier/NewAtomic, including allocation options and
// initial contents) and the Run's thread count; node 0 parks the
// arrivals until its own program reaches the same gate, then verifies
// every member's digest against its own and releases everyone at once.
// The reply carries the verdict, so a member whose — or whose peer's —
// setup diverged gets a *SetupDivergenceError instead of undefined
// behaviour from mismatched object IDs. No extra connections and no
// coordinator state outside node 0's parked-arrival map are needed, and
// the gate costs one round trip per remote member per Run boundary.

// kindRunGate is the SPMD run-gate rendezvous message (a Call to node
// 0; the reply is the release + verdict).
const kindRunGate = msg.KindSyncBase + 1

// kindGateSync is a recovering member's gate resync (a Call to node 0
// carrying its setup digest; the reply is a verdict plus the gate
// sequence the member must adopt so its next arrival pairs with the
// survivors' — see handleGateSync).
const kindGateSync = msg.KindSyncBase + 2

// Gate verdict codes carried in the reply.
const (
	gateOK         = 0 // released: everyone arrived, digests agree
	gateDivergence = 1 // setup digests/thread counts disagree
	gateMemberLost = 2 // a member died or departed; the gate can never fill
)

// fnv constants for the setup digest (FNV-1a, 64 bit).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// recordSetup folds one allocation event into the setup digest. The
// textual encoding is not wire format — it only needs to be identical
// across members executing identical setup code. In-process systems
// skip the fold entirely: the digest is only ever read by the mesh
// run gate.
func (s *System) recordSetup(parts ...any) {
	if s.self < 0 {
		return
	}
	rec := fmt.Sprintln(parts...)
	s.mu.Lock()
	sum := s.setupSum
	for i := 0; i < len(rec); i++ {
		sum ^= uint64(rec[i])
		sum *= fnvPrime
	}
	s.setupSum = sum
	s.setupN++
	s.mu.Unlock()
}

// recordSetupRaw folds raw bytes (an allocation's initial contents)
// into the digest without text formatting — part of the preceding
// record, so it does not advance the record count.
func (s *System) recordSetupRaw(b []byte) {
	if s.self < 0 {
		return
	}
	s.mu.Lock()
	sum := s.setupSum
	for _, c := range b {
		sum ^= uint64(c)
		sum *= fnvPrime
	}
	s.setupSum = sum
	s.mu.Unlock()
}

// SetupDivergenceError reports that the members of an SPMD mesh cluster
// did not execute identical setup code: their allocation digests (or
// Run thread counts) differ, so object, lock, barrier or atomic IDs
// would no longer mean the same thing in every process. It is returned
// by RunErr (and panicked by Run) in every member, at the gate where
// the divergence was detected — before any thread touches shared
// memory with mismatched IDs.
type SetupDivergenceError struct {
	// Gate is the gate sequence number where the mismatch surfaced.
	Gate uint64
	// Detail names the diverging members and their digests.
	Detail string
}

func (e *SetupDivergenceError) Error() string {
	return fmt.Sprintf("munin: SPMD setup divergence at run gate %d: %s", e.Gate, e.Detail)
}

// gateArrival is one member's identity at a gate.
type gateArrival struct {
	node     msg.NodeID
	sum      uint64
	n        int
	nthreads int
}

// gateInfo is node 0's state for one gate: parked remote arrivals plus
// the local one.
type gateInfo struct {
	reqs     []*msg.Msg
	local    bool
	localArr gateArrival
	localRes chan error
}

func (s *System) gateInfoFor(seq uint64) *gateInfo {
	g, ok := s.gates[seq]
	if !ok {
		g = &gateInfo{localRes: make(chan error, 1)}
		s.gates[seq] = g
	}
	return g
}

// runGate brings every member of the mesh cluster to the next gate and
// returns when all have arrived and the setup digests agree.
func (s *System) runGate(nthreads int) error {
	s.mu.Lock()
	s.gateSeq++
	seq := s.gateSeq
	arr := gateArrival{node: s.self, sum: s.setupSum, n: s.setupN, nthreads: nthreads}
	s.mu.Unlock()

	if s.self != 0 {
		payload := msg.NewBuilder(32).U64(seq).U64(arr.sum).Int(arr.n).Int(arr.nthreads).Bytes()
		// The member is about to park in the gate (the Call blocks
		// until node 0's verdict): a crash here dies at — or parked in
		// — the rendezvous.
		failpoint.Hit(failpoint.GatePark)
		reply, err := s.clu.Kernel(s.self).Call(0, kindRunGate, payload)
		if err != nil {
			return fmt.Errorf("munin: run gate %d: %w", seq, err)
		}
		r := msg.NewReader(reply.Payload)
		code := r.U8()
		if code == gateOK {
			return nil
		}
		detail := r.Str()
		if r.Err() != nil {
			return fmt.Errorf("munin: run gate %d: corrupt verdict: %v", seq, r.Err())
		}
		if code == gateMemberLost {
			return fmt.Errorf("munin: run gate %d: %s", seq, detail)
		}
		return &SetupDivergenceError{Gate: seq, Detail: detail}
	}

	s.gateMu.Lock()
	g := s.gateInfoFor(seq)
	g.local = true
	g.localArr = arr
	s.progressGateLocked(seq, g)
	s.gateMu.Unlock()
	return <-g.localRes
}

// gatePeerLost records that a member died or departed and fails every
// parked — and every future — gate: with a member missing, a gate can
// never collect all arrivals, and an unfailed gate would hang every
// surviving member's Run forever. Wired to both OnPeerDown and
// OnPeerGone by newMeshMember; runs on transport goroutines, so it
// must not block (replies are asynchronous enqueues).
func (s *System) gatePeerLost(peer msg.NodeID, cause error) {
	s.gateMu.Lock()
	if s.lostPeers == nil {
		s.lostPeers = make(map[msg.NodeID]error)
	}
	if _, dup := s.lostPeers[peer]; !dup {
		s.lostPeers[peer] = cause
	}
	for seq, g := range s.gates {
		s.failGateLocked(seq, g)
	}
	s.gateMu.Unlock()
}

// failGateLocked fails one gate with the member-lost verdict. Caller
// holds s.gateMu and has at least one entry in s.lostPeers.
func (s *System) failGateLocked(seq uint64, g *gateInfo) {
	delete(s.gates, seq)
	detail := ""
	var cause error
	for peer, err := range s.lostPeers {
		if detail != "" {
			detail += "; "
		}
		detail += fmt.Sprintf("member %d lost: %v", peer, err)
		if cause == nil {
			cause = fmt.Errorf("munin: run gate %d: member %d lost: %w", seq, peer, err)
		}
	}
	payload := msg.NewBuilder(8 + len(detail)).U8(gateMemberLost).Str(detail).Bytes()
	k := s.clu.Kernel(s.self)
	for _, req := range g.reqs {
		k.Reply(req, payload)
	}
	if g.local {
		g.localRes <- cause
	}
}

// progressGateLocked advances one gate: fail it if a member has been
// lost, otherwise complete it if everyone has arrived. Caller holds
// s.gateMu.
func (s *System) progressGateLocked(seq uint64, g *gateInfo) {
	if len(s.lostPeers) > 0 {
		s.failGateLocked(seq, g)
		return
	}
	s.completeGateIfReady(seq, g)
}

// gatePeerDown handles a peer's wire death. Without a reconnect policy
// the outage is terminal — delegate to gatePeerLost, which fails every
// parked and future gate. With one, the peer is presumed to be
// restarting: record it as down (gates simply stay parked — they
// cannot fill until the recovered incarnation arrives) and let the
// rejoin handshake clear the mark. Runs on transport goroutines; must
// not block.
func (s *System) gatePeerDown(peer msg.NodeID, cause error) {
	if !s.recoverable {
		s.gatePeerLost(peer, cause)
		return
	}
	s.gateMu.Lock()
	if s.downPeers == nil {
		s.downPeers = make(map[msg.NodeID]error)
	}
	if _, dup := s.downPeers[peer]; !dup {
		s.downPeers[peer] = cause
	}
	// Purge the dead incarnation's parked arrivals right away: its
	// pending Calls died with the connection, so counting one toward a
	// gate could complete the gate without the member — survivors would
	// sail on while the recovered incarnation parks at a gate nobody
	// else will ever reach. The gate resync purges again defensively.
	purged := int64(0)
	for _, g := range s.gates {
		kept := g.reqs[:0]
		for _, pr := range g.reqs {
			if pr.From == peer {
				purged++
				continue
			}
			kept = append(kept, pr)
		}
		g.reqs = kept
	}
	s.gateMu.Unlock()
	if n := s.nodes[s.self]; n != nil {
		n.C.Add(stats.CMemberDownWait, 1)
		if purged > 0 {
			n.C.Add(stats.CGateStalePurged, purged)
		}
	}
}

// gatePeerBack clears a peer's down (and lost) mark once its wire is
// re-established — fired by the transport's reconnect notifier before
// any frame from the fresh connection is dispatched, so by the time
// the recovered member's announce or gate arrival comes in, this
// member no longer considers it missing.
func (s *System) gatePeerBack(peer msg.NodeID) {
	s.gateMu.Lock()
	delete(s.downPeers, peer)
	delete(s.lostPeers, peer)
	s.gateMu.Unlock()
	if n := s.nodes[s.self]; n != nil {
		n.C.Add(stats.CMemberReconnected, 1)
	}
}

// dispatchGate routes the gate-range messages (kindRunGate and
// kindGateSync). Registered on the self kernel of every mesh member;
// only node 0 ever receives either.
func (s *System) dispatchGate(k *vkernel.Kernel, req *msg.Msg) {
	switch req.Kind {
	case kindRunGate:
		s.handleRunGate(k, req)
	case kindGateSync:
		s.handleGateSync(req)
	}
}

// handleRunGate parks a remote member's arrival and completes the gate
// once everyone — including this process's own program — has reached
// it. Registered on the self kernel of every mesh member; only node 0
// ever receives it.
func (s *System) handleRunGate(_ *vkernel.Kernel, req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	seq := r.U64()
	if r.Err() != nil {
		s.nodes[s.self].C.Add(stats.CGateDropMalformed, 1)
		return
	}
	s.gateMu.Lock()
	g := s.gateInfoFor(seq)
	g.reqs = append(g.reqs, req)
	s.progressGateLocked(seq, g)
	s.gateMu.Unlock()
}

// completeGateIfReady releases the gate once all members have arrived:
// verify every remote digest against the local one, reply the verdict
// to every remote, deliver it to the local waiter, and forget the gate.
// Caller holds s.gateMu.
func (s *System) completeGateIfReady(seq uint64, g *gateInfo) {
	if !g.local || len(g.reqs) != s.nnodes-1 {
		return
	}
	delete(s.gates, seq)

	local := g.localArr
	var mismatches []string
	for _, req := range g.reqs {
		r := msg.NewReader(req.Payload)
		arr := gateArrival{node: req.From}
		_ = r.U64() // seq, already decoded by the handler
		arr.sum = r.U64()
		arr.n = r.Int()
		arr.nthreads = r.Int()
		switch {
		case r.Err() != nil:
			mismatches = append(mismatches,
				fmt.Sprintf("node %d: corrupt gate arrival (%v)", arr.node, r.Err()))
		case arr.sum != local.sum || arr.n != local.n || arr.nthreads != local.nthreads:
			mismatches = append(mismatches,
				fmt.Sprintf("node %d: %d setup records (digest %016x), Run(%d) vs node 0: %d (digest %016x), Run(%d)",
					arr.node, arr.n, arr.sum, arr.nthreads, local.n, local.sum, local.nthreads))
		}
	}
	sort.Strings(mismatches)

	var verdict error
	ok := len(mismatches) == 0
	detail := ""
	if !ok {
		for i, m := range mismatches {
			if i > 0 {
				detail += "; "
			}
			detail += m
		}
		verdict = &SetupDivergenceError{Gate: seq, Detail: detail}
	}
	// Every member learns the verdict — a matching member must not sail
	// on while a diverged one aborts, or the survivors would hang at
	// the next synchronization that involves the aborted member.
	b := msg.NewBuilder(8 + len(detail))
	if ok {
		b.U8(gateOK)
	} else {
		b.U8(gateDivergence).Str(detail)
	}
	payload := b.Bytes()
	k := s.clu.Kernel(s.self)
	for _, req := range g.reqs {
		k.Reply(req, payload)
	}
	g.localRes <- verdict
}

// handleGateSync serves a recovering member's gate resync on node 0:
// verify its setup digest (the recovered incarnation re-ran the same
// setup code, so any difference is divergence), forget it from the
// down/lost sets, purge its dead incarnation's parked gate arrivals
// (their pending calls died with the old connection; replying would
// address a call the new process never made), and reply the gate
// sequence it must adopt. The sequence is chosen so the member's NEXT
// arrival pairs with the survivors': the earliest gate still parked
// here minus one, or node 0's own current sequence when nothing is
// parked.
func (s *System) handleGateSync(req *msg.Msg) {
	r := msg.NewReader(req.Payload)
	sum := r.U64()
	n := r.Int()
	if r.Err() != nil {
		s.nodes[s.self].C.Add(stats.CGateDropMalformed, 1)
		return
	}
	peer := req.From
	s.mu.Lock()
	mySum, myN, mySeq := s.setupSum, s.setupN, s.gateSeq
	s.mu.Unlock()
	k := s.clu.Kernel(s.self)
	if sum != mySum || n != myN {
		detail := fmt.Sprintf("node %d: %d setup records (digest %016x) vs node 0: %d (digest %016x)",
			peer, n, sum, myN, mySum)
		k.Reply(req, msg.NewBuilder(8+len(detail)).U8(gateDivergence).Str(detail).Bytes())
		return
	}
	s.gateMu.Lock()
	delete(s.downPeers, peer)
	delete(s.lostPeers, peer)
	next := mySeq
	for seq, g := range s.gates {
		kept := g.reqs[:0]
		for _, pr := range g.reqs {
			if pr.From == peer {
				continue // stale arrival from the dead incarnation
			}
			kept = append(kept, pr)
		}
		g.reqs = kept
		if seq-1 < next {
			next = seq - 1
		}
	}
	s.gateMu.Unlock()
	if node := s.nodes[s.self]; node != nil {
		node.C.Add(stats.CRecoverGateSynced, 1)
	}
	k.Reply(req, msg.NewBuilder(16).U8(gateOK).U64(next).Bytes())
}

// resyncGate is the recovering member's side of the gate resync: send
// our setup digest to node 0, adopt the gate sequence it replies, so
// this process's next runGate arrival matches the gate the survivors
// are (or will be) parked at.
func (s *System) resyncGate() error {
	s.mu.Lock()
	sum, n := s.setupSum, s.setupN
	s.mu.Unlock()
	payload := msg.NewBuilder(24).U64(sum).Int(n).Bytes()
	reply, err := s.clu.Kernel(s.self).Call(0, kindGateSync, payload)
	if err != nil {
		return fmt.Errorf("munin: gate resync: %w", err)
	}
	r := msg.NewReader(reply.Payload)
	code := r.U8()
	if code != gateOK {
		detail := r.Str()
		if r.Err() != nil {
			return fmt.Errorf("munin: gate resync: corrupt verdict: %v", r.Err())
		}
		if code == gateDivergence {
			return &SetupDivergenceError{Detail: detail}
		}
		return fmt.Errorf("munin: gate resync: %s", detail)
	}
	next := r.U64()
	if r.Err() != nil {
		return fmt.Errorf("munin: gate resync: corrupt verdict: %v", r.Err())
	}
	s.mu.Lock()
	s.gateSeq = next
	s.mu.Unlock()
	s.nodes[s.self].C.Add(stats.CRecoverGateResync, 1)
	return nil
}
