package core

import (
	"sync/atomic"
	"testing"

	"munin/internal/api"
	"munin/internal/protocol"
)

func newSys(t *testing.T, nodes int) *System {
	t.Helper()
	s, err := New(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestSystemBasics(t *testing.T) {
	s := newSys(t, 3)
	if s.Name() != "munin" || s.Nodes() != 3 {
		t.Fatalf("name/nodes: %s %d", s.Name(), s.Nodes())
	}
}

func TestRunSPMDCountsThreads(t *testing.T) {
	s := newSys(t, 2)
	var n atomic.Int64
	s.Run(8, func(c api.Ctx) {
		n.Add(1)
		if c.NThreads() != 8 {
			t.Errorf("NThreads = %d", c.NThreads())
		}
		if c.Node() != c.ThreadID()%2 {
			t.Errorf("thread %d on node %d", c.ThreadID(), c.Node())
		}
	})
	if n.Load() != 8 {
		t.Fatalf("ran %d", n.Load())
	}
}

func TestSharedCounterUnderLock(t *testing.T) {
	s := newSys(t, 4)
	ctr := s.Alloc("counter", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	lock := s.NewLock()
	s.Run(8, func(c api.Ctx) {
		for i := 0; i < 10; i++ {
			c.Acquire(lock)
			api.WriteU64(c, ctr, 0, api.ReadU64(c, ctr, 0)+1)
			c.Release(lock)
		}
	})
	var final uint64
	s.Run(1, func(c api.Ctx) { final = api.ReadU64(c, ctr, 0) })
	if final != 80 {
		t.Fatalf("counter = %d, want 80", final)
	}
}

func TestMigratoryCounterUnderItsLock(t *testing.T) {
	s := newSys(t, 3)
	opts := protocol.DefaultOptions()
	lock := s.NewLock()
	opts.Lock = lock
	ctr := s.Alloc("mig", 8, protocol.Migratory, opts, nil)
	s.Run(6, func(c api.Ctx) {
		for i := 0; i < 5; i++ {
			c.Acquire(lock)
			api.WriteU64(c, ctr, 0, api.ReadU64(c, ctr, 0)+1)
			c.Release(lock)
		}
	})
	var final uint64
	s.Run(1, func(c api.Ctx) {
		c.Acquire(lock)
		final = api.ReadU64(c, ctr, 0)
		c.Release(lock)
	})
	if final != 30 {
		t.Fatalf("migratory counter = %d, want 30", final)
	}
}

func TestMigratoryAutoLock(t *testing.T) {
	// Alloc of a migratory object without an explicit lock allocates one;
	// access without holding it panics, which we verify indirectly by
	// checking the object works when we don't touch it at all.
	s := newSys(t, 2)
	_ = s.Alloc("auto-mig", 8, protocol.Migratory, protocol.DefaultOptions(), nil)
}

func TestWriteManyBarrierPhases(t *testing.T) {
	s := newSys(t, 4)
	grid := s.Alloc("grid", 4*8, protocol.WriteMany, protocol.DefaultOptions(), nil)
	bar := s.NewBarrier()
	s.Run(4, func(c api.Ctx) {
		id := c.ThreadID()
		// Phase 1: each thread writes its own slot.
		api.WriteU64(c, grid, id*8, uint64(id+1))
		c.Barrier(bar, 4)
		// Phase 2: every thread must see all slots.
		sum := uint64(0)
		for i := 0; i < 4; i++ {
			sum += api.ReadU64(c, grid, i*8)
		}
		if sum != 1+2+3+4 {
			t.Errorf("thread %d sum = %d, want 10", id, sum)
		}
	})
}

func TestFetchAddDistributesWork(t *testing.T) {
	s := newSys(t, 3)
	at := s.NewAtomic()
	claimed := make([]atomic.Bool, 60)
	s.Run(6, func(c api.Ctx) {
		for {
			i := c.FetchAdd(at, 1)
			if i >= int64(len(claimed)) {
				return
			}
			if claimed[i].Swap(true) {
				t.Errorf("work item %d claimed twice", i)
			}
		}
	})
	for i := range claimed {
		if !claimed[i].Load() {
			t.Fatalf("work item %d never claimed", i)
		}
	}
}

func TestResultCollectedAfterRun(t *testing.T) {
	s := newSys(t, 4)
	opts := protocol.DefaultOptions()
	opts.Home = 0
	res := s.Alloc("res", 8*8, protocol.Result, opts, nil)
	s.Run(8, func(c api.Ctx) {
		api.WriteU64(c, res, c.ThreadID()*8, uint64(c.ThreadID()*7))
		// exit flush propagates the buffered result
	})
	s.Run(1, func(c api.Ctx) {
		for i := 0; i < 8; i++ {
			if got := api.ReadU64(c, res, i*8); got != uint64(i*7) {
				t.Errorf("slot %d = %d, want %d", i, got, i*7)
			}
		}
	})
}

func TestTypedHelpers(t *testing.T) {
	s := newSys(t, 1)
	r := s.Alloc("vals", 32, protocol.Conventional, protocol.DefaultOptions(), nil)
	s.Run(1, func(c api.Ctx) {
		api.WriteF64(c, r, 0, 3.25)
		api.WriteI64(c, r, 8, -17)
		api.WriteU32(c, r, 16, 99)
		if got := api.ReadF64(c, r, 0); got != 3.25 {
			t.Errorf("f64 = %g", got)
		}
		if got := api.ReadI64(c, r, 8); got != -17 {
			t.Errorf("i64 = %d", got)
		}
		if got := api.ReadU32(c, r, 16); got != 99 {
			t.Errorf("u32 = %d", got)
		}
	})
}

func TestTrafficCountersAdvance(t *testing.T) {
	s := newSys(t, 2)
	r := s.Alloc("x", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	if s.Messages() == 0 {
		t.Fatal("alloc sent no messages") // announce traffic
	}
	before := s.Messages()
	s.Run(2, func(c api.Ctx) {
		api.WriteU64(c, r, 0, uint64(c.ThreadID()))
	})
	if s.Messages() == before {
		t.Fatal("conventional writes from two nodes sent no traffic")
	}
	if s.Bytes() <= 0 {
		t.Fatal("no bytes counted")
	}
	if s.Stats() == nil || s.NodeCounters(0) == nil {
		t.Fatal("stats accessors broken")
	}
}

func TestUnknownRegionPanics(t *testing.T) {
	s := newSys(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Run(1, func(c api.Ctx) {
		c.Read(api.RegionID(42), 0, make([]byte, 1))
	})
}

func TestCloseIdempotent(t *testing.T) {
	s, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close()
}

func TestTCPTransportEndToEnd(t *testing.T) {
	s, err := New(Config{Nodes: 2, Transport: "tcp"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctr := s.Alloc("ctr", 8, protocol.Conventional, protocol.DefaultOptions(), nil)
	lock := s.NewLock()
	s.Run(4, func(c api.Ctx) {
		c.Acquire(lock)
		api.WriteU64(c, ctr, 0, api.ReadU64(c, ctr, 0)+1)
		c.Release(lock)
	})
	var final uint64
	s.Run(1, func(c api.Ctx) { final = api.ReadU64(c, ctr, 0) })
	if final != 4 {
		t.Fatalf("tcp counter = %d, want 4", final)
	}
}
