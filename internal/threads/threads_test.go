package threads

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"munin/internal/msg"
)

func TestSPMDRunsAllThreads(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 10)
	SPMD(4, 10, nil, func(th *Thread) {
		count.Add(1)
		seen[th.ID].Store(true)
		if th.NThreads != 10 {
			t.Errorf("NThreads = %d", th.NThreads)
		}
	})
	if count.Load() != 10 {
		t.Fatalf("ran %d threads, want 10", count.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("thread %d never ran", i)
		}
	}
}

func TestSPMDRoundRobinPlacement(t *testing.T) {
	var mu sync.Mutex
	placed := map[int]msg.NodeID{}
	SPMD(3, 7, nil, func(th *Thread) {
		mu.Lock()
		placed[th.ID] = th.Node
		mu.Unlock()
	})
	for id, node := range placed {
		if node != msg.NodeID(id%3) {
			t.Fatalf("thread %d on node %d, want %d", id, node, id%3)
		}
	}
}

func TestBlockedPlacement(t *testing.T) {
	// 8 threads over 4 nodes: threads 0-1 on node 0, 2-3 on node 1, ...
	for id := 0; id < 8; id++ {
		want := msg.NodeID(id / 2)
		if got := Blocked(id, 8, 4); got != want {
			t.Fatalf("Blocked(%d,8,4) = %d, want %d", id, got, want)
		}
	}
	// Fewer threads than nodes: falls back to one per node.
	if got := Blocked(1, 2, 4); got != 1 {
		t.Fatalf("Blocked(1,2,4) = %d, want 1", got)
	}
}

func TestSPMDLocalRunsOnlyLocalShare(t *testing.T) {
	// 10 threads over 4 nodes, run node by node: every thread runs
	// exactly once across the four "processes", on its placed node,
	// with team-global ID/NThreads.
	var count atomic.Int64
	seen := make([]atomic.Int64, 10)
	for self := 0; self < 4; self++ {
		SPMDLocal(msg.NodeID(self), 4, 10, nil, func(th *Thread) {
			count.Add(1)
			seen[th.ID].Add(1)
			if th.Node != msg.NodeID(self) {
				t.Errorf("thread %d ran on self=%d but placed on node %d", th.ID, self, th.Node)
			}
			if th.NThreads != 10 {
				t.Errorf("NThreads = %d, want team-global 10", th.NThreads)
			}
		})
	}
	if count.Load() != 10 {
		t.Fatalf("ran %d threads across members, want 10", count.Load())
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("thread %d ran %d times, want exactly once", i, seen[i].Load())
		}
	}
}

func TestSPMDLocalEmptyShareReturns(t *testing.T) {
	// 2 threads on a 4-node cluster: nodes 2 and 3 have no threads.
	ran := false
	SPMDLocal(3, 4, 2, nil, func(*Thread) { ran = true })
	if ran {
		t.Fatal("node 3 should have an empty share of a 2-thread team")
	}
}

func TestSPMDLocalBadSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SPMDLocal(4, 4, 8, nil, func(*Thread) {})
}

func TestSPMDPanicsPropagate(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	SPMD(2, 4, nil, func(th *Thread) {
		if th.ID == 3 {
			panic("boom")
		}
	})
}

func TestSPMDBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SPMD(0, 1, nil, func(*Thread) {})
}

func TestPartitionCoversRangeExactly(t *testing.T) {
	f := func(n16 uint8, t8 uint8) bool {
		n := int(n16)
		nth := int(t8)%8 + 1
		covered := 0
		prevHi := 0
		for id := 0; id < nth; id++ {
			lo, hi := Partition(n, nth, id)
			if lo != prevHi {
				return false // chunks must be contiguous
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	// No chunk may differ from another by more than one element.
	lo0, hi0 := Partition(10, 3, 0)
	lo2, hi2 := Partition(10, 3, 2)
	if (hi0-lo0)-(hi2-lo2) > 1 {
		t.Fatalf("unbalanced: %d vs %d", hi0-lo0, hi2-lo2)
	}
}
