// Package threads is the Presto-like thread runtime: lightweight threads
// placed on cluster nodes, a fork/join SPMD driver, and per-thread
// context. Presto provided "parallelism (lightweight processes) and
// synchronization" for the paper's study programs; goroutines play the
// lightweight-process role here, with explicit node placement so the DSM
// layer knows which node every access comes from.
package threads

import (
	"fmt"
	"sync"

	"munin/internal/msg"
)

// Thread identifies one running thread and its placement.
type Thread struct {
	// ID is the dense thread index, 0..nthreads-1.
	ID int
	// Node is the processor the thread is placed on.
	Node msg.NodeID
	// NThreads is the total number of threads in the SPMD team.
	NThreads int
}

// Placement maps thread IDs to nodes.
type Placement func(threadID, nthreads, nodes int) msg.NodeID

// RoundRobin places thread i on node i mod nodes — the default placement,
// matching how the study programs spread threads over processors.
func RoundRobin(threadID, _, nodes int) msg.NodeID {
	return msg.NodeID(threadID % nodes)
}

// Blocked places threads in contiguous blocks: with T threads and N
// nodes, threads [k*T/N, (k+1)*T/N) run on node k.
func Blocked(threadID, nthreads, nodes int) msg.NodeID {
	if nthreads < nodes {
		return msg.NodeID(threadID % nodes)
	}
	per := (nthreads + nodes - 1) / nodes
	return msg.NodeID(threadID / per)
}

// SPMD runs body on nthreads threads placed over nodes processors and
// waits for all of them. A nil placement means RoundRobin. Panics in a
// thread body are re-raised on the caller after all threads finish or
// unwind, so tests fail loudly rather than deadlock.
func SPMD(nodes, nthreads int, place Placement, body func(t *Thread)) {
	spmd(nodes, nthreads, place, body, -1)
}

// SPMDLocal runs one process's share of an SPMD team whose threads span
// processes: the full team is nthreads threads placed over nodes
// processors, but only the threads that place puts on node self are
// spawned here — the same program running in the other processes spawns
// the rest. Thread IDs and NThreads describe the whole team, so
// Partition and per-thread work division come out identical to the
// single-process run. A self with no threads placed on it returns
// immediately (legal: a 2-thread team on a 4-process cluster).
func SPMDLocal(self msg.NodeID, nodes, nthreads int, place Placement, body func(t *Thread)) {
	if int(self) < 0 || int(self) >= nodes {
		panic(fmt.Sprintf("threads: SPMDLocal self=%d not in 0..%d", self, nodes-1))
	}
	spmd(nodes, nthreads, place, body, self)
}

// spmd is the shared driver: only < 0 means "spawn every thread".
func spmd(nodes, nthreads int, place Placement, body func(t *Thread), only msg.NodeID) {
	if nodes <= 0 || nthreads <= 0 {
		panic(fmt.Sprintf("threads: bad SPMD shape nodes=%d nthreads=%d", nodes, nthreads))
	}
	if place == nil {
		place = RoundRobin
	}
	var wg sync.WaitGroup
	panics := make(chan any, nthreads)
	for i := 0; i < nthreads; i++ {
		node := place(i, nthreads, nodes)
		if only >= 0 && node != only {
			continue
		}
		wg.Add(1)
		t := &Thread{ID: i, Node: node, NThreads: nthreads}
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			body(t)
		}()
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// Partition splits the half-open range [0, n) into nthreads contiguous
// chunks and returns thread id's chunk. Standard loop-partitioning helper
// used by the study programs.
func Partition(n, nthreads, id int) (lo, hi int) {
	per := n / nthreads
	rem := n % nthreads
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}
