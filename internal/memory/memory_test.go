package memory

import (
	"bytes"
	"math/rand"
	"runtime/debug"
	"testing"
	"testing/quick"

	"munin/internal/msg"
)

func TestDiffIdentical(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	if spans := DiffAlloc(a, append([]byte(nil), a...), 0); spans != nil {
		t.Fatalf("diff of identical = %v, want nil", spans)
	}
}

func TestDiffSingleByte(t *testing.T) {
	twin := []byte{0, 0, 0, 0}
	cur := []byte{0, 9, 0, 0}
	spans := DiffAlloc(twin, cur, 0)
	if len(spans) != 1 || spans[0].Off != 1 || !bytes.Equal(spans[0].Data, []byte{9}) {
		t.Fatalf("spans = %v", spans)
	}
}

func TestDiffMultipleRuns(t *testing.T) {
	twin := make([]byte, 10)
	cur := make([]byte, 10)
	cur[0], cur[1] = 1, 1
	cur[8], cur[9] = 2, 2
	spans := DiffAlloc(twin, cur, 0)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want 2 runs", spans)
	}
	if spans[0].Off != 0 || spans[1].Off != 8 {
		t.Fatalf("offsets = %d,%d", spans[0].Off, spans[1].Off)
	}
}

func TestDiffJoinGapMergesNearbyRuns(t *testing.T) {
	twin := make([]byte, 10)
	cur := make([]byte, 10)
	cur[0] = 1
	cur[3] = 1 // 2 equal bytes between runs
	if spans := DiffAlloc(twin, cur, 0); len(spans) != 2 {
		t.Fatalf("gap=0 spans = %v, want 2", spans)
	}
	spans := DiffAlloc(twin, cur, 4)
	if len(spans) != 1 {
		t.Fatalf("gap=4 spans = %v, want 1 merged", spans)
	}
	if spans[0].Off != 0 || spans[0].End() != 4 {
		t.Fatalf("merged span = %v", spans[0])
	}
}

func TestDiffLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DiffAlloc([]byte{1}, []byte{1, 2}, 0)
}

func TestApplySpansReconstructs(t *testing.T) {
	// Property: for random twin/cur pairs and any joinGap,
	// apply(twin, diff(twin, cur)) == cur.
	f := func(seed int64, gap8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		// Mutate a random subset.
		for i := 0; i < n/4; i++ {
			cur[rng.Intn(max(n, 1))] = byte(rng.Int())
		}
		spans := DiffAlloc(twin, cur, int(gap8)%8)
		got := append([]byte(nil), twin...)
		ApplySpans(got, spans)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplySpansOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ApplySpans(make([]byte, 4), []Span{{Off: 3, Data: []byte{1, 2}}})
}

func TestSpanBytes(t *testing.T) {
	spans := []Span{{0, []byte{1, 2}}, {10, []byte{3}}}
	if got := SpanBytes(spans); got != 3 {
		t.Fatalf("SpanBytes = %d", got)
	}
	if SpanBytes(nil) != 0 {
		t.Fatal("SpanBytes(nil) != 0")
	}
}

func TestOverlap(t *testing.T) {
	a := []Span{{0, make([]byte, 4)}} // [0,4)
	b := []Span{{4, make([]byte, 2)}} // [4,6) — adjacent, not overlapping
	c := []Span{{3, make([]byte, 2)}} // [3,5) — overlaps a and b
	if Overlap(a, b) {
		t.Fatal("adjacent spans reported overlapping")
	}
	if !Overlap(a, c) || !Overlap(c, b) {
		t.Fatal("overlapping spans not detected")
	}
	if Overlap(nil, a) {
		t.Fatal("nil overlap")
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	spans := []Span{{0, []byte{1}}, {100, []byte{2, 3, 4}}, {7, nil}}
	b := msg.NewBuilder(64)
	EncodeSpans(b, spans)
	got := DecodeSpans(msg.NewReader(b.Bytes()))
	if len(got) != len(spans) {
		t.Fatalf("got %v", got)
	}
	for i := range spans {
		if got[i].Off != spans[i].Off || !bytes.Equal(got[i].Data, spans[i].Data) {
			t.Fatalf("span %d: %v vs %v", i, got[i], spans[i])
		}
	}
}

func TestSpanCodecEmpty(t *testing.T) {
	b := msg.NewBuilder(8)
	EncodeSpans(b, nil)
	got := DecodeSpans(msg.NewReader(b.Bytes()))
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSpanCodecCorrupt(t *testing.T) {
	if got := DecodeSpans(msg.NewReader([]byte{0xff, 0xff})); got != nil {
		t.Fatalf("corrupt decode = %v, want nil", got)
	}
}

func TestDiffProperty_SpansMinimalWithZeroGap(t *testing.T) {
	// With joinGap=0, every span byte must actually differ from the twin
	// at its position... except interior bytes folded by runs — with
	// gap 0 there is no folding, so all span bytes differ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		for i := 0; i < n/3; i++ {
			p := rng.Intn(n)
			cur[p] ^= byte(rng.Intn(255) + 1)
		}
		for _, s := range DiffAlloc(twin, cur, 0) {
			for i, b := range s.Data {
				if twin[s.Off+i] == b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeTwinIsPrivate(t *testing.T) {
	a := []byte{1, 2, 3}
	tw := MakeTwin(a)
	a[0] = 9
	if tw[0] != 1 {
		t.Fatal("twin aliases original")
	}
}

func TestMakeTwinInto(t *testing.T) {
	scratch := make([]byte, 0, 16)
	a := []byte{1, 2, 3}
	tw := MakeTwinInto(scratch, a)
	a[0] = 9
	if !bytes.Equal(tw, []byte{1, 2, 3}) {
		t.Fatalf("twin = %v", tw)
	}
	if &tw[0] != &scratch[:1][0] {
		t.Fatal("MakeTwinInto did not reuse scratch storage")
	}
}

// TestDiffScratchEquivalence pins the pooled Diff (word-at-a-time equal
// scan into caller scratch) against DiffAlloc across random inputs,
// lengths straddling the 8-byte word boundary, and all small joinGaps.
func TestDiffScratchEquivalence(t *testing.T) {
	f := func(seed int64, gap8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) // covers 0, sub-word, and multi-word sizes
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		for i := 0; i < n/4; i++ {
			cur[rng.Intn(max(n, 1))] = byte(rng.Int())
		}
		gap := int(gap8) % 8
		want := DiffAlloc(twin, cur, gap)
		spans, buf := Diff(make([]Span, 0, 4), make([]byte, 0, 64), twin, cur, gap)
		if SpanBytes(spans) != len(buf) {
			return false
		}
		if len(spans) != len(want) {
			return false
		}
		for i := range want {
			if spans[i].Off != want[i].Off || !bytes.Equal(spans[i].Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDiffWordBoundaries hits the word-scan edges deterministically:
// mismatches at offsets around multiples of 8 and at the final byte.
func TestDiffWordBoundaries(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 15, 16, 17, 64} {
		for _, at := range []int{0, n / 2, n - 1} {
			twin := make([]byte, n)
			cur := make([]byte, n)
			cur[at] = 0xAA
			spans := DiffAlloc(twin, cur, 0)
			if len(spans) != 1 || spans[0].Off != at || len(spans[0].Data) != 1 {
				t.Fatalf("n=%d at=%d: spans = %v", n, at, spans)
			}
		}
	}
}

// TestDiffScratchGrowthDoesNotCorruptSpans: when the byte scratch grows
// mid-diff, spans handed out before the growth must keep their bytes.
func TestDiffScratchGrowthDoesNotCorruptSpans(t *testing.T) {
	n := 256
	twin := make([]byte, n)
	cur := make([]byte, n)
	for i := 0; i < n; i += 16 {
		cur[i] = byte(i + 1)
	}
	// Tiny scratch forces repeated growth across the diff.
	spans, _ := Diff(nil, make([]byte, 0, 1), twin, cur, 0)
	got := make([]byte, n)
	ApplySpans(got, spans)
	if !bytes.Equal(got, cur) {
		t.Fatal("spans corrupted by scratch growth")
	}
}

// TestDiffScratchZeroAllocs pins the tentpole property at its root: a
// diff into presized scratch touches the heap zero times.
func TestDiffScratchZeroAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	n := 4096
	twin := make([]byte, n)
	cur := make([]byte, n)
	for i := 0; i < n; i += 256 {
		cur[i] = 0xCC
	}
	dst := make([]Span, 0, 64)
	buf := make([]byte, 0, n)
	allocs := testing.AllocsPerRun(100, func() {
		dst, buf = Diff(dst[:0], buf[:0], twin, cur, 8)
	})
	if allocs != 0 {
		t.Fatalf("Diff into scratch allocates %.1f/op, want 0", allocs)
	}
}

func TestEncodedSpansSizeExact(t *testing.T) {
	for _, spans := range [][]Span{
		nil,
		{{0, []byte{1}}},
		{{5, make([]byte, 200)}, {1000, nil}, {2000, make([]byte, 127)}, {3000, make([]byte, 128)}},
	} {
		b := msg.NewBuilder(16)
		EncodeSpans(b, spans)
		if got, want := EncodedSpansSize(spans), b.Len(); got != want {
			t.Fatalf("EncodedSpansSize(%v) = %d, encoded %d", spans, got, want)
		}
	}
}

func TestDecodeSpansHostileCount(t *testing.T) {
	// A count word claiming 2^31 spans in a 2-byte body must be rejected
	// before it can size any allocation.
	b := msg.NewBuilder(16)
	b.U32(1 << 31).U16(0)
	r := msg.NewReader(b.Bytes())
	if got := DecodeSpans(r); got != nil {
		t.Fatalf("hostile count decoded to %v", got)
	}
	if r.Err() == nil {
		t.Fatal("hostile count left reader error-free")
	}
}

func TestDecodeSpansIntoAppendsAndAliases(t *testing.T) {
	spans := []Span{{3, []byte{1, 2}}, {9, []byte{7}}}
	b := msg.NewBuilder(64)
	EncodeSpans(b, spans)

	dst := make([]Span, 0, 4)
	buf := make([]byte, 0, 16)
	dst, buf = DecodeSpansInto(dst, buf, msg.NewReader(b.Bytes()))
	if len(dst) != 2 || SpanBytes(dst) != len(buf) {
		t.Fatalf("dst=%v |buf|=%d", dst, len(buf))
	}
	// Spans must alias the scratch: mutating buf shows through.
	buf[0] ^= 0xFF
	if dst[0].Data[0] == 1 {
		t.Fatal("decoded span does not alias scratch buffer")
	}
}

func TestDecodeSpansIntoTruncatedRestoresInputs(t *testing.T) {
	spans := []Span{{0, []byte{1, 2, 3, 4}}}
	b := msg.NewBuilder(32)
	EncodeSpans(b, spans)
	enc := b.Bytes()

	dst := make([]Span, 0, 4)
	buf := make([]byte, 0, 16)
	r := msg.NewReader(enc[:len(enc)-1])
	dst, buf = DecodeSpansInto(dst, buf, r)
	if r.Err() == nil {
		t.Fatal("truncated payload decoded cleanly")
	}
	if len(dst) != 0 || len(buf) != 0 {
		t.Fatalf("truncated decode leaked partial results: dst=%v |buf|=%d", dst, len(buf))
	}
}

func TestCloneSpansIndependent(t *testing.T) {
	src := []byte{1, 2, 3, 4}
	spans := []Span{{0, src[:2]}, {8, src[2:]}}
	clone := CloneSpans(spans)
	src[0], src[2] = 0xEE, 0xEE
	if clone[0].Data[0] != 1 || clone[1].Data[0] != 3 {
		t.Fatal("clone aliases source storage")
	}
	if CloneSpans(nil) != nil {
		t.Fatal("CloneSpans(nil) != nil")
	}
}

func benchPair(n, stride int) (twin, cur []byte) {
	twin = make([]byte, n)
	cur = make([]byte, n)
	for i := range twin {
		twin[i] = byte(i)
	}
	copy(cur, twin)
	for i := 0; i < n; i += stride {
		cur[i] ^= 0xFF
	}
	return twin, cur
}

func BenchmarkDiffScratch(b *testing.B) {
	for _, bc := range []struct {
		name      string
		n, stride int
	}{
		{"4KiB-clean", 4096, 1 << 30},
		{"4KiB-sparse", 4096, 512},
		{"64KiB-sparse", 65536, 4096},
		{"64KiB-dense", 65536, 16},
	} {
		b.Run(bc.name, func(b *testing.B) {
			twin, cur := benchPair(bc.n, bc.stride)
			dst := make([]Span, 0, 64)
			buf := make([]byte, 0, bc.n)
			b.SetBytes(int64(bc.n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, buf = Diff(dst[:0], buf[:0], twin, cur, 8)
			}
		})
	}
}

func BenchmarkDiffAlloc(b *testing.B) {
	twin, cur := benchPair(4096, 512)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DiffAlloc(twin, cur, 8)
	}
}

func BenchmarkSpanEncode(b *testing.B) {
	twin, cur := benchPair(4096, 512)
	spans := DiffAlloc(twin, cur, 8)
	enc := msg.NewBuilder(EncodedSpansSize(spans))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc.Reset(enc.Bytes()[:0])
		EncodeSpans(enc, spans)
	}
}

func BenchmarkSpanDecodeInto(b *testing.B) {
	twin, cur := benchPair(4096, 512)
	spans := DiffAlloc(twin, cur, 8)
	enc := msg.NewBuilder(EncodedSpansSize(spans))
	EncodeSpans(enc, spans)
	wire := enc.Bytes()
	dst := make([]Span, 0, len(spans))
	buf := make([]byte, 0, SpanBytes(spans))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst, buf = DecodeSpansInto(dst[:0], buf[:0], msg.NewReader(wire))
	}
}
