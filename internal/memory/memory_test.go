package memory

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"munin/internal/msg"
)

func TestDiffIdentical(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	if spans := Diff(a, append([]byte(nil), a...), 0); spans != nil {
		t.Fatalf("diff of identical = %v, want nil", spans)
	}
}

func TestDiffSingleByte(t *testing.T) {
	twin := []byte{0, 0, 0, 0}
	cur := []byte{0, 9, 0, 0}
	spans := Diff(twin, cur, 0)
	if len(spans) != 1 || spans[0].Off != 1 || !bytes.Equal(spans[0].Data, []byte{9}) {
		t.Fatalf("spans = %v", spans)
	}
}

func TestDiffMultipleRuns(t *testing.T) {
	twin := make([]byte, 10)
	cur := make([]byte, 10)
	cur[0], cur[1] = 1, 1
	cur[8], cur[9] = 2, 2
	spans := Diff(twin, cur, 0)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want 2 runs", spans)
	}
	if spans[0].Off != 0 || spans[1].Off != 8 {
		t.Fatalf("offsets = %d,%d", spans[0].Off, spans[1].Off)
	}
}

func TestDiffJoinGapMergesNearbyRuns(t *testing.T) {
	twin := make([]byte, 10)
	cur := make([]byte, 10)
	cur[0] = 1
	cur[3] = 1 // 2 equal bytes between runs
	if spans := Diff(twin, cur, 0); len(spans) != 2 {
		t.Fatalf("gap=0 spans = %v, want 2", spans)
	}
	spans := Diff(twin, cur, 4)
	if len(spans) != 1 {
		t.Fatalf("gap=4 spans = %v, want 1 merged", spans)
	}
	if spans[0].Off != 0 || spans[0].End() != 4 {
		t.Fatalf("merged span = %v", spans[0])
	}
}

func TestDiffLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Diff([]byte{1}, []byte{1, 2}, 0)
}

func TestApplySpansReconstructs(t *testing.T) {
	// Property: for random twin/cur pairs and any joinGap,
	// apply(twin, diff(twin, cur)) == cur.
	f := func(seed int64, gap8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		// Mutate a random subset.
		for i := 0; i < n/4; i++ {
			cur[rng.Intn(max(n, 1))] = byte(rng.Int())
		}
		spans := Diff(twin, cur, int(gap8)%8)
		got := append([]byte(nil), twin...)
		ApplySpans(got, spans)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplySpansOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ApplySpans(make([]byte, 4), []Span{{Off: 3, Data: []byte{1, 2}}})
}

func TestSpanBytes(t *testing.T) {
	spans := []Span{{0, []byte{1, 2}}, {10, []byte{3}}}
	if got := SpanBytes(spans); got != 3 {
		t.Fatalf("SpanBytes = %d", got)
	}
	if SpanBytes(nil) != 0 {
		t.Fatal("SpanBytes(nil) != 0")
	}
}

func TestOverlap(t *testing.T) {
	a := []Span{{0, make([]byte, 4)}} // [0,4)
	b := []Span{{4, make([]byte, 2)}} // [4,6) — adjacent, not overlapping
	c := []Span{{3, make([]byte, 2)}} // [3,5) — overlaps a and b
	if Overlap(a, b) {
		t.Fatal("adjacent spans reported overlapping")
	}
	if !Overlap(a, c) || !Overlap(c, b) {
		t.Fatal("overlapping spans not detected")
	}
	if Overlap(nil, a) {
		t.Fatal("nil overlap")
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	spans := []Span{{0, []byte{1}}, {100, []byte{2, 3, 4}}, {7, nil}}
	b := msg.NewBuilder(64)
	EncodeSpans(b, spans)
	got := DecodeSpans(msg.NewReader(b.Bytes()))
	if len(got) != len(spans) {
		t.Fatalf("got %v", got)
	}
	for i := range spans {
		if got[i].Off != spans[i].Off || !bytes.Equal(got[i].Data, spans[i].Data) {
			t.Fatalf("span %d: %v vs %v", i, got[i], spans[i])
		}
	}
}

func TestSpanCodecEmpty(t *testing.T) {
	b := msg.NewBuilder(8)
	EncodeSpans(b, nil)
	got := DecodeSpans(msg.NewReader(b.Bytes()))
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestSpanCodecCorrupt(t *testing.T) {
	if got := DecodeSpans(msg.NewReader([]byte{0xff, 0xff})); got != nil {
		t.Fatalf("corrupt decode = %v, want nil", got)
	}
}

func TestDiffProperty_SpansMinimalWithZeroGap(t *testing.T) {
	// With joinGap=0, every span byte must actually differ from the twin
	// at its position... except interior bytes folded by runs — with
	// gap 0 there is no folding, so all span bytes differ.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		twin := make([]byte, n)
		cur := make([]byte, n)
		rng.Read(twin)
		copy(cur, twin)
		for i := 0; i < n/3; i++ {
			p := rng.Intn(n)
			cur[p] ^= byte(rng.Intn(255) + 1)
		}
		for _, s := range Diff(twin, cur, 0) {
			for i, b := range s.Data {
				if twin[s.Off+i] == b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeTwinIsPrivate(t *testing.T) {
	a := []byte{1, 2, 3}
	tw := MakeTwin(a)
	a[0] = 9
	if tw[0] != 1 {
		t.Fatal("twin aliases original")
	}
}
