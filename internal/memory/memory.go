// Package memory provides the shared-object data model the coherence
// protocols operate on: byte-addressed object copies, twins (snapshots
// taken before buffered writes), and diffs (the minimal byte spans that
// changed relative to a twin).
//
// Twins and diffs are the machinery behind the paper's delayed update
// mechanism: a write-shared object is snapshotted on the first write of a
// synchronization interval; when the delayed update queue flushes, the
// runtime encodes only the spans that differ and ships those. Multiple
// writes to the same object in one interval therefore collapse into one
// message ("delaying updates allows the system to combine updates to the
// same object").
package memory

import (
	"fmt"

	"munin/internal/msg"
)

// ObjectID identifies a shared data object across the whole cluster.
type ObjectID uint32

// Span is one contiguous run of modified bytes within an object.
type Span struct {
	Off  int
	Data []byte
}

// End returns the exclusive end offset of the span.
func (s Span) End() int { return s.Off + len(s.Data) }

func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Off, s.End()) }

// MakeTwin returns a private snapshot of data.
func MakeTwin(data []byte) []byte {
	return append([]byte(nil), data...)
}

// Diff computes the byte spans where cur differs from twin. Runs of
// equal bytes shorter than joinGap between two differing runs are folded
// into one span, trading a few redundant bytes for fewer spans (the same
// space/metadata tradeoff real DSM diff encodings make). The two slices
// must be the same length.
func Diff(twin, cur []byte, joinGap int) []Span {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("memory: diff length mismatch %d vs %d", len(twin), len(cur)))
	}
	var spans []Span
	i := 0
	for i < len(cur) {
		if twin[i] == cur[i] {
			i++
			continue
		}
		// Start of a differing run.
		start := i
		last := i // last differing index seen
		j := i + 1
		for j < len(cur) {
			if twin[j] != cur[j] {
				last = j
				j++
				continue
			}
			// Equal byte: look ahead up to joinGap for another difference.
			k := j
			for k < len(cur) && k-last <= joinGap && twin[k] == cur[k] {
				k++
			}
			if k < len(cur) && k-last <= joinGap && twin[k] != cur[k] {
				last = k
				j = k + 1
				continue
			}
			break
		}
		spans = append(spans, Span{Off: start, Data: append([]byte(nil), cur[start:last+1]...)})
		i = last + 1
	}
	return spans
}

// ApplySpans writes each span into dst. Panics if a span exceeds dst.
func ApplySpans(dst []byte, spans []Span) {
	for _, s := range spans {
		if s.Off < 0 || s.End() > len(dst) {
			panic(fmt.Sprintf("memory: span %v out of range for object of size %d", s, len(dst)))
		}
		copy(dst[s.Off:], s.Data)
	}
}

// SpanBytes returns the total payload bytes across spans.
func SpanBytes(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += len(s.Data)
	}
	return n
}

// Overlap reports whether any span in a overlaps any span in b.
// Properly synchronized programs produce non-overlapping concurrent
// diffs; the write-many protocol uses this to detect data races when
// merging (a diagnostic the paper's loose-coherence definition permits
// either way, but surfacing it helps users).
func Overlap(a, b []Span) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Off < y.End() && y.Off < x.End() {
				return true
			}
		}
	}
	return false
}

// EncodeSpans appends a wire encoding of spans to b.
func EncodeSpans(b *msg.Builder, spans []Span) {
	b.U32(uint32(len(spans)))
	for _, s := range spans {
		b.U32(uint32(s.Off))
		b.BytesN(s.Data)
	}
}

// DecodeSpans reads spans encoded by EncodeSpans. The returned spans
// copy their data out of the reader's buffer.
func DecodeSpans(r *msg.Reader) []Span {
	n := int(r.U32())
	if r.Err() != nil || n < 0 {
		return nil
	}
	spans := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		off := int(r.U32())
		data := append([]byte(nil), r.BytesN()...)
		if r.Err() != nil {
			return nil
		}
		spans = append(spans, Span{Off: off, Data: data})
	}
	return spans
}
