// Package memory provides the shared-object data model the coherence
// protocols operate on: byte-addressed object copies, twins (snapshots
// taken before buffered writes), and diffs (the minimal byte spans that
// changed relative to a twin).
//
// Twins and diffs are the machinery behind the paper's delayed update
// mechanism: a write-shared object is snapshotted on the first write of a
// synchronization interval; when the delayed update queue flushes, the
// runtime encodes only the spans that differ and ships those. Multiple
// writes to the same object in one interval therefore collapse into one
// message ("delaying updates allows the system to combine updates to the
// same object").
//
// The flush hot path runs Diff on every dirty object per synchronization
// point, so Diff is written allocation-free: the caller supplies span and
// byte scratch (normally pooled via internal/bufpool) and Diff appends
// into them. DiffAlloc keeps the old allocate-per-call shape for cold
// paths and diagnostics.
package memory

import (
	"encoding/binary"
	"fmt"

	"munin/internal/msg"
)

// ObjectID identifies a shared data object across the whole cluster.
type ObjectID uint32

// Span is one contiguous run of modified bytes within an object.
type Span struct {
	Off  int
	Data []byte
}

// End returns the exclusive end offset of the span.
func (s Span) End() int { return s.Off + len(s.Data) }

func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Off, s.End()) }

// MakeTwin returns a private snapshot of data.
func MakeTwin(data []byte) []byte {
	return append([]byte(nil), data...)
}

// MakeTwinInto snapshots data into dst (reusing its storage), the
// pooled-twin counterpart of MakeTwin.
func MakeTwinInto(dst, data []byte) []byte {
	return append(dst[:0], data...)
}

// Diff computes the byte spans where cur differs from twin, appending
// the spans to dst and their payload bytes to buf; it returns both so
// callers observe append-style growth. Each returned span's Data aliases
// buf — the caller owns both scratch slices and decides when the bytes
// die (on the flush path they are pooled and released once the encoded
// message is on the wire).
//
// Runs of equal bytes shorter than joinGap between two differing runs
// are folded into one span, trading a few redundant bytes for fewer
// spans (the same space/metadata tradeoff real DSM diff encodings make).
// The two slices must be the same length.
//
// Equal runs are scanned a 64-bit word at a time: flush-time diffs are
// dominated by unchanged bytes (that is the point of diffing), so the
// equal-run scan is the loop that sets the cost of a flush.
func Diff(dst []Span, buf []byte, twin, cur []byte, joinGap int) ([]Span, []byte) {
	if len(twin) != len(cur) {
		panic(fmt.Sprintf("memory: diff length mismatch %d vs %d", len(twin), len(cur)))
	}
	n := len(cur)
	i := 0
	for i < n {
		// Skip the equal run word-at-a-time, then byte-at-a-time to find
		// the exact mismatch position (or the tail, when fewer than eight
		// bytes remain).
		for i+8 <= n && binary.LittleEndian.Uint64(twin[i:]) == binary.LittleEndian.Uint64(cur[i:]) {
			i += 8
		}
		for i < n && twin[i] == cur[i] {
			i++
		}
		if i >= n {
			break
		}
		// Start of a differing run.
		start := i
		last := i // last differing index seen
		j := i + 1
		for j < n {
			if twin[j] != cur[j] {
				last = j
				j++
				continue
			}
			// Equal byte: look ahead up to joinGap for another difference.
			k := j
			for k < n && k-last <= joinGap && twin[k] == cur[k] {
				k++
			}
			if k < n && k-last <= joinGap && twin[k] != cur[k] {
				last = k
				j = k + 1
				continue
			}
			break
		}
		off := len(buf)
		buf = append(buf, cur[start:last+1]...)
		// Three-index slice: a later append to buf must grow a new backing
		// array rather than scribble over this span's bytes.
		dst = append(dst, Span{Off: start, Data: buf[off:len(buf):len(buf)]})
		i = last + 1
	}
	return dst, buf
}

// DiffAlloc is Diff with fresh allocations — the pre-pooling shape, kept
// for cold paths (producer-consumer pushes that outlive the flush,
// race diagnostics) and tests. Returns nil when nothing differs.
func DiffAlloc(twin, cur []byte, joinGap int) []Span {
	spans, _ := Diff(nil, nil, twin, cur, joinGap)
	return spans
}

// ApplySpans writes each span into dst. Panics if a span exceeds dst.
func ApplySpans(dst []byte, spans []Span) {
	for _, s := range spans {
		if s.Off < 0 || s.End() > len(dst) {
			panic(fmt.Sprintf("memory: span %v out of range for object of size %d", s, len(dst)))
		}
		copy(dst[s.Off:], s.Data)
	}
}

// SpanBytes returns the total payload bytes across spans.
func SpanBytes(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += len(s.Data)
	}
	return n
}

// CloneSpans deep-copies spans into freshly allocated storage (one
// shared backing buffer). Receive-side decode hands out spans aliasing
// pooled scratch; any code that parks spans past the handler's return —
// e.g. out-of-order updates waiting for a sequence gap to fill — must
// clone them first or the pool will recycle the bytes underneath.
func CloneSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]Span, len(spans))
	buf := make([]byte, 0, SpanBytes(spans))
	for i, s := range spans {
		off := len(buf)
		buf = append(buf, s.Data...)
		out[i] = Span{Off: s.Off, Data: buf[off:len(buf):len(buf)]}
	}
	return out
}

// Overlap reports whether any span in a overlaps any span in b.
// Properly synchronized programs produce non-overlapping concurrent
// diffs; the write-many protocol uses this to detect data races when
// merging (a diagnostic the paper's loose-coherence definition permits
// either way, but surfacing it helps users).
func Overlap(a, b []Span) bool {
	for _, x := range a {
		for _, y := range b {
			if x.Off < y.End() && y.Off < x.End() {
				return true
			}
		}
	}
	return false
}

// EncodedSpansSize returns the exact wire size of EncodeSpans(spans),
// letting the flush path size one pooled buffer for a whole message
// before encoding instead of growing into it.
func EncodedSpansSize(spans []Span) int {
	n := 4 // count word
	for _, s := range spans {
		n += 4 + msg.UvarintLen(uint64(len(s.Data))) + len(s.Data)
	}
	return n
}

// EncodeSpans appends a wire encoding of spans to b.
func EncodeSpans(b *msg.Builder, spans []Span) {
	b.U32(uint32(len(spans)))
	for _, s := range spans {
		b.U32(uint32(s.Off))
		b.BytesN(s.Data)
	}
}

// DecodeSpansInto reads spans encoded by EncodeSpans, appending the
// span records to dst and their payload bytes to buf (both normally
// pooled scratch on the receive path; the spans alias buf, so they are
// dead once the scratch is released). On a malformed payload the inputs
// are returned unchanged and r.Err() reports the failure.
func DecodeSpansInto(dst []Span, buf []byte, r *msg.Reader) ([]Span, []byte) {
	n := int(r.U32())
	if r.Err() != nil {
		return dst, buf
	}
	// Each encoded span costs at least 5 bytes (4-byte offset plus a
	// 1-byte length prefix), so a count claiming more than fits in the
	// remaining payload is corrupt. Rejecting it here keeps a hostile
	// 32-bit count word from sizing the growth below.
	if n > r.Remaining()/5 {
		r.Fail()
		return dst, buf
	}
	d0, b0 := len(dst), len(buf)
	for i := 0; i < n; i++ {
		off := int(r.U32())
		data := r.BytesN()
		if r.Err() != nil {
			return dst[:d0], buf[:b0]
		}
		p := len(buf)
		buf = append(buf, data...)
		dst = append(dst, Span{Off: off, Data: buf[p:len(buf):len(buf)]})
	}
	return dst, buf
}

// DecodeSpans reads spans encoded by EncodeSpans into fresh storage.
// The returned spans copy their data out of the reader's buffer; nil is
// returned on malformed input (r.Err() reports why).
func DecodeSpans(r *msg.Reader) []Span {
	spans, _ := DecodeSpansInto(nil, nil, r)
	if r.Err() != nil {
		return nil
	}
	return spans
}
