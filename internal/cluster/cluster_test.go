package cluster

import (
	"testing"

	"munin/internal/msg"
	"munin/internal/vkernel"
)

func TestNewAndClose(t *testing.T) {
	for _, tr := range []string{"", "chan", "tcp"} {
		c, err := New(Config{Nodes: 3, Transport: tr})
		if err != nil {
			t.Fatalf("transport %q: %v", tr, err)
		}
		if c.Nodes() != 3 {
			t.Fatalf("nodes = %d", c.Nodes())
		}
		c.Close()
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("0 nodes accepted")
	}
	if _, err := New(Config{Nodes: 2, Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

func TestKernelsCommunicate(t *testing.T) {
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Kernel(1).Handle(msg.KindPing, msg.KindPing, func(k *vkernel.Kernel, req *msg.Msg) {
		k.Reply(req, []byte("pong"))
	})
	reply, err := c.Kernel(0).Call(1, msg.KindPing, nil)
	if err != nil || string(reply.Payload) != "pong" {
		t.Fatalf("call across cluster: %v %v", reply, err)
	}
}

func TestHomeOf(t *testing.T) {
	if HomeOf(0, 4) != 0 || HomeOf(5, 4) != 1 || HomeOf(7, 4) != 3 {
		t.Fatal("HomeOf wrong")
	}
	// Home must always be a valid node.
	for id := uint64(0); id < 100; id++ {
		h := HomeOf(id, 3)
		if h < 0 || h >= 3 {
			t.Fatalf("HomeOf(%d,3) = %d", id, h)
		}
	}
}

func TestStatsAccessible(t *testing.T) {
	c, err := New(Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Stats() == nil {
		t.Fatal("nil stats")
	}
	if err := c.Kernel(0).Send(1, msg.KindPing, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Messages() != 1 {
		t.Fatalf("messages = %d", c.Stats().Messages())
	}
}
