// Package cluster assembles the simulated distributed-memory machine: a
// network plus one vkernel per node. It is the stand-in for the paper's
// "Ethernet network of SUN workstations".
package cluster

import (
	"fmt"

	"munin/internal/msg"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// Config describes the machine to simulate.
type Config struct {
	// Nodes is the number of processors. Must be >= 1.
	Nodes int
	// Transport selects the substrate: "chan" (default, in-process with
	// modeled costs) or "tcp" (real loopback sockets).
	Transport string
	// Cost is the network cost model; zero value means free/instant,
	// which is appropriate for unit tests. Use
	// transport.DefaultCostModel() for paper-like accounting.
	Cost transport.CostModel
}

// Cluster is a running simulated machine.
type Cluster struct {
	net     transport.Network
	kernels []*vkernel.Kernel
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	var net transport.Network
	switch cfg.Transport {
	case "", "chan":
		net = transport.NewChanNetwork(cfg.Nodes, cfg.Cost)
	case "tcp":
		tn, err := transport.NewTCPNetwork(cfg.Nodes, cfg.Cost)
		if err != nil {
			return nil, err
		}
		net = tn
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", cfg.Transport)
	}
	c := &Cluster{net: net}
	c.kernels = make([]*vkernel.Kernel, cfg.Nodes)
	for i := range c.kernels {
		c.kernels[i] = vkernel.New(net, msg.NodeID(i))
	}
	return c, nil
}

// Nodes returns the number of processors.
func (c *Cluster) Nodes() int { return len(c.kernels) }

// Kernel returns node n's vkernel.
func (c *Cluster) Kernel(n msg.NodeID) *vkernel.Kernel { return c.kernels[n] }

// Stats returns the network traffic accounting.
func (c *Cluster) Stats() *transport.Stats { return c.net.Stats() }

// Close shuts down the cluster and waits for all dispatchers to exit.
func (c *Cluster) Close() {
	for _, k := range c.kernels {
		k.Close()
	}
	c.net.Close()
	for _, k := range c.kernels {
		k.Wait()
	}
}

// HomeOf maps an object/lock identifier to its home node by simple
// modular hashing — the static distribution the paper's prototype used
// for directory and lock management.
func HomeOf(id uint64, nodes int) msg.NodeID {
	return msg.NodeID(id % uint64(nodes))
}
