// Package cluster assembles the distributed-memory machine: a network
// plus vkernels on top of it. It is the stand-in for the paper's
// "Ethernet network of SUN workstations".
//
// Two shapes exist. The in-process shape (chan or loopback-TCP
// transport) builds every node's kernel in one process — the default
// for experiments and tests. The mesh shape (Config.Topology set)
// builds ONE node of a multi-process cluster: this process binds its
// topology address, runs only its own kernel, and reaches the other
// nodes over real TCP connections; the other processes run the
// remaining node IDs with the same topology.
package cluster

import (
	"fmt"

	"munin/internal/msg"
	"munin/internal/transport"
	"munin/internal/vkernel"
)

// Config describes the machine to simulate.
type Config struct {
	// Nodes is the number of processors. Must be >= 1. Ignored when
	// Topology is set (the topology defines the cluster size).
	Nodes int
	// Transport selects the substrate: "chan" (default, in-process with
	// modeled costs) or "tcp" (real loopback sockets). Ignored when
	// Topology is set.
	Transport string
	// Cost is the network cost model; zero value means free/instant,
	// which is appropriate for unit tests. Use
	// transport.DefaultCostModel() for paper-like accounting.
	Cost transport.CostModel
	// Topology, when non-nil, makes this process one member of a
	// multi-process mesh: it runs only the topology's self node and
	// dials the other nodes at their topology addresses.
	Topology *transport.Topology
	// Reconnect, when non-nil, overrides the topology's
	// reconnect-after-latch policy (mesh shape only). Nil keeps
	// whatever the topology carries — by default the permanent latch.
	Reconnect *transport.ReconnectPolicy
}

// Cluster is a running machine — or, in mesh shape, this process's
// member of one.
type Cluster struct {
	net     transport.Network
	kernels []*vkernel.Kernel // mesh shape: only the self slot is non-nil
	self    msg.NodeID        // mesh shape only; -1 in-process
}

// New builds and starts a cluster (or, with cfg.Topology, this
// process's node of one).
func New(cfg Config) (*Cluster, error) {
	if cfg.Topology != nil {
		topo := *cfg.Topology
		if cfg.Reconnect != nil {
			topo.Reconnect = *cfg.Reconnect
		}
		return newMeshNode(topo, cfg.Cost)
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	var net transport.Network
	switch cfg.Transport {
	case "", "chan":
		net = transport.NewChanNetwork(cfg.Nodes, cfg.Cost)
	case "tcp":
		tn, err := transport.NewTCPNetwork(cfg.Nodes, cfg.Cost)
		if err != nil {
			return nil, err
		}
		net = tn
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q", cfg.Transport)
	}
	c := &Cluster{net: net, self: -1}
	c.kernels = make([]*vkernel.Kernel, cfg.Nodes)
	for i := range c.kernels {
		c.kernels[i] = vkernel.New(net, msg.NodeID(i))
	}
	return c, nil
}

// newMeshNode starts one node of a multi-process cluster: bind the
// topology's self address, run the self kernel, dial peers lazily.
func newMeshNode(topo transport.Topology, cost transport.CostModel) (*Cluster, error) {
	mn, err := transport.NewMeshNetwork(topo, cost)
	if err != nil {
		return nil, err
	}
	c := &Cluster{net: mn, self: topo.Self}
	c.kernels = make([]*vkernel.Kernel, topo.Nodes())
	c.kernels[topo.Self] = vkernel.New(mn, topo.Self)
	return c, nil
}

// Nodes returns the number of processors in the cluster (for a mesh
// node, the whole cluster's size, not just this process's share).
func (c *Cluster) Nodes() int { return len(c.kernels) }

// Self returns this process's node ID in mesh shape, or -1 when every
// node lives in this process.
func (c *Cluster) Self() msg.NodeID { return c.self }

// Kernel returns node n's vkernel. In mesh shape only the self node's
// kernel exists in this process; asking for another panics.
func (c *Cluster) Kernel(n msg.NodeID) *vkernel.Kernel {
	k := c.kernels[n]
	if k == nil {
		panic(fmt.Sprintf("cluster: node %d runs in another process (this one is %d)", n, c.self))
	}
	return k
}

// Stats returns the network traffic accounting.
func (c *Cluster) Stats() *transport.Stats { return c.net.Stats() }

// Network returns the underlying transport, for callers that need the
// transport-specific surfaces (transport.Leaver, transport.PeerEpochs,
// ...) the Network interface does not promise.
func (c *Cluster) Network() transport.Network { return c.net }

// OnPeerGone registers fn to run when a peer departs cleanly (goodbye
// handshake), on transports that report departures (the mesh); a no-op
// elsewhere. The SPMD runtime (internal/core) and tests use it to wire
// departure-aware membership pruning — protocol.Node.PeerGone and
// dlock.Service.PeerGone — to the transport's notification, so a clean
// leave stops costing one failed send per relay.
func (c *Cluster) OnPeerGone(fn func(peer msg.NodeID, err error)) {
	if gn, ok := c.net.(transport.PeerGoneNotifier); ok {
		gn.OnPeerGone(fn)
	}
}

// Close shuts down the cluster (this process's node, in mesh shape)
// and waits for all local dispatchers to exit. On the mesh transport
// this is a graceful departure: the goodbye handshake drains
// everything already sent, so peers mark this node departed
// (*transport.ErrPeerGone) instead of latching it as dead.
func (c *Cluster) Close() {
	for _, k := range c.kernels {
		if k != nil {
			k.Close()
		}
	}
	c.net.Close()
	for _, k := range c.kernels {
		if k != nil {
			k.Wait()
		}
	}
}

// Kill tears this member down abruptly — no goodbye — so remote peers
// observe wire death (*transport.ErrPeerDown) exactly as if the
// process had crashed. Falls back to Close on transports without an
// abrupt path. This is the chaos/test hook.
func (c *Cluster) Kill() {
	for _, k := range c.kernels {
		if k != nil {
			k.Close()
		}
	}
	if killer, ok := c.net.(interface{ Kill() error }); ok {
		killer.Kill()
	} else {
		c.net.Close()
	}
	for _, k := range c.kernels {
		if k != nil {
			k.Wait()
		}
	}
}

// HomeOf maps an object/lock identifier to its home node by simple
// modular hashing — the static distribution the paper's prototype used
// for directory and lock management.
func HomeOf(id uint64, nodes int) msg.NodeID {
	return msg.NodeID(id % uint64(nodes))
}
