// Package bufpool is the buffer arena behind the zero-allocation flush
// pipeline: a set of size-classed sync.Pools handing out reusable byte
// buffers for twins, diff span data, and marshalled message bodies.
//
// The hot path discipline (see docs/ARCHITECTURE.md, "Buffer ownership
// & lifecycle") is strict single-owner: whoever holds the *Buffer may
// write B and must either pass ownership on or call Release exactly
// once. Pools store *Buffer handles, not raw []byte — putting a slice
// into a sync.Pool would box it into an interface and allocate on every
// Put, which is precisely the hot-path allocation this package exists
// to remove.
package bufpool

import (
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from minClassBytes to maxClassBytes.
// Requests above the largest class fall through to a plain allocation
// that is dropped on Release (pooling pathological sizes would pin
// memory for no steady-state benefit).
const (
	minClassShift = 6  // 64 B: a small diff span or control payload
	maxClassShift = 20 // 1 MiB: comfortably above any benchmarked object
	numClasses    = maxClassShift - minClassShift + 1
	minClassBytes = 1 << minClassShift
	maxClassBytes = 1 << maxClassShift
)

// Buffer is one pooled byte buffer. B always has length zero and
// capacity at least the size requested from Get; owners extend it with
// append or by reslicing within capacity.
type Buffer struct {
	B     []byte
	class int8 // size-class index; -1 for oversize (not pooled)
}

var pools [numClasses]sync.Pool

// Counters observe pool behaviour (they are not part of ownership):
// gets, releases, fresh allocations (pool miss or post-GC refill), and
// oversize requests that bypassed the pool entirely.
var gets, puts, news, oversize atomic.Int64

// classFor returns the smallest class index whose capacity holds n, or
// -1 if n exceeds the largest class.
func classFor(n int) int8 {
	c := int8(0)
	size := minClassBytes
	for size < n {
		size <<= 1
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// Get returns a buffer with len(B) == 0 and cap(B) >= n. The caller
// owns it until Release (or until ownership is explicitly handed to
// another stage, e.g. the transport writer via SendOwned).
func Get(n int) *Buffer {
	gets.Add(1)
	c := classFor(n)
	if c < 0 {
		oversize.Add(1)
		return &Buffer{B: make([]byte, 0, n), class: -1}
	}
	if v := pools[c].Get(); v != nil {
		b := v.(*Buffer)
		b.B = b.B[:0]
		return b
	}
	news.Add(1)
	return &Buffer{B: make([]byte, 0, minClassBytes<<c), class: c}
}

// Release returns the buffer to its pool. It must be called exactly
// once by the final owner; the buffer (and any slice aliasing B) must
// not be touched afterwards. Releasing nil is a no-op so owners can be
// handed around as optional.
func (b *Buffer) Release() {
	if b == nil {
		return
	}
	puts.Add(1)
	if b.class < 0 {
		return // oversize: let the GC have it
	}
	b.B = b.B[:0]
	pools[b.class].Put(b)
}

// Stats returns the arena counters: Get calls, Release calls, fresh
// allocations (misses), and oversize bypasses. A steady-state hot path
// should hold news and oversize flat while gets and puts climb.
func Stats() (getN, putN, newN, oversizeN int64) {
	return gets.Load(), puts.Load(), news.Load(), oversize.Load()
}
