package bufpool

import (
	"runtime/debug"
	"testing"
)

func TestGetCapacityAndClass(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096, 1 << 20} {
		b := Get(n)
		if len(b.B) != 0 {
			t.Fatalf("Get(%d): len=%d, want 0", n, len(b.B))
		}
		if cap(b.B) < n {
			t.Fatalf("Get(%d): cap=%d < request", n, cap(b.B))
		}
		b.Release()
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	b := Get(maxClassBytes + 1)
	if b.class != -1 {
		t.Fatalf("oversize buffer got class %d, want -1", b.class)
	}
	if cap(b.B) < maxClassBytes+1 {
		t.Fatalf("oversize cap=%d too small", cap(b.B))
	}
	b.Release() // must not panic or pool it
}

func TestReuseSameClass(t *testing.T) {
	b := Get(128)
	b.B = append(b.B, make([]byte, 100)...)
	p := &b.B[0]
	b.Release()
	c := Get(128)
	defer c.Release()
	if len(c.B) != 0 {
		t.Fatalf("reused buffer has len %d, want 0", len(c.B))
	}
	// Same class and nothing else contending: the pool should hand the
	// same backing storage straight back on this goroutine.
	if cap(c.B) >= 1 && &c.B[:1][0] != p {
		t.Log("pool did not reuse backing array (legal, but unexpected in a quiet test)")
	}
}

func TestReleaseNil(t *testing.T) {
	var b *Buffer
	b.Release() // no-op
}

// TestSteadyStateZeroAllocs pins the arena's own hot path: once warm,
// Get+Release must not touch the heap. GC is disabled around the
// measurement because a collection clears sync.Pool and would show up
// as a spurious refill allocation.
func TestSteadyStateZeroAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 16; i++ {
		Get(4096).Release()
	}
	allocs := testing.AllocsPerRun(100, func() {
		b := Get(4096)
		b.B = append(b.B, 1, 2, 3)
		b.Release()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Release allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkGetRelease(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(4096)
		buf.Release()
	}
}
