package dlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"munin/internal/cluster"
	"munin/internal/msg"
	"munin/internal/netutil"
	"munin/internal/transport"
)

// meshPair builds a two-member mesh — two separate MeshNetworks over
// real loopback sockets, the same shape two OS processes have — with a
// lock service on each member's kernel, and wires each service's
// PeerGone pruning to the transport's departure notification exactly as
// the SPMD runtime (internal/core) does.
func meshPair(t *testing.T) [2]struct {
	Clu *cluster.Cluster
	Svc *Service
} {
	t.Helper()
	addrs, err := netutil.ReserveAddrs(2)
	if err != nil {
		t.Fatal(err)
	}
	peers := map[msg.NodeID]string{0: addrs[0], 1: addrs[1]}
	var out [2]struct {
		Clu *cluster.Cluster
		Svc *Service
	}
	for i := range out {
		topo := transport.Topology{Self: msg.NodeID(i), Peers: peers}
		clu, err := cluster.New(cluster.Config{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(clu.Kernel(msg.NodeID(i)))
		clu.OnPeerGone(func(peer msg.NodeID, _ error) { svc.PeerGone(peer) })
		out[i].Clu = clu
		out[i].Svc = svc
	}
	return out
}

// TestMeshBarrierAcrossMembers is the cross-process barrier test: two
// mesh members, several threads on each, all meeting at one distributed
// barrier repeatedly. The arrivals are vkernel Calls that ride the real
// mesh to the barrier's home (lock/barrier IDs hash across members), so
// this is the synchronization shape the SPMD runtime's programs use —
// hammered under -race in CI.
func TestMeshBarrierAcrossMembers(t *testing.T) {
	pair := meshPair(t)
	defer pair[1].Clu.Close()
	defer pair[0].Clu.Close()

	const (
		perSide = 3
		total   = 2 * perSide
		rounds  = 20
	)
	// Both barrier homes get exercised: barrier 2 homes on member 0,
	// barrier 3 on member 1.
	for _, bar := range []BarrierID{2, 3} {
		var phase atomic.Int64
		var wg sync.WaitGroup
		for side := 0; side < 2; side++ {
			svc := pair[side].Svc
			for th := 0; th < perSide; th++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						svc.BarrierWait(bar, total)
						// Everyone observes the same phase count modulo
						// stragglers: no thread may be a full round ahead.
						p := phase.Add(1)
						if got, want := (p-1)/total, int64(r); got != want && got != want+1 {
							t.Errorf("barrier %d: arrival %d seen in round %d, want %d", bar, p, got, want)
						}
					}
				}()
			}
		}
		wg.Wait()
		if got := phase.Load(); got != total*rounds {
			t.Fatalf("barrier %d: %d arrivals, want %d", bar, got, total*rounds)
		}
	}
}

// TestMeshLockAcrossMembers: mutual exclusion holds when the lock's
// proxy ownership migrates between mesh members.
func TestMeshLockAcrossMembers(t *testing.T) {
	pair := meshPair(t)
	defer pair[1].Clu.Close()
	defer pair[0].Clu.Close()

	const lock = LockID(7)
	var inCS, violations atomic.Int32
	var wg sync.WaitGroup
	for side := 0; side < 2; side++ {
		svc := pair[side].Svc
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					svc.Acquire(lock)
					if inCS.Add(1) != 1 {
						violations.Add(1)
					}
					inCS.Add(-1)
					svc.Release(lock)
				}
			}()
		}
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations across mesh members", violations.Load())
	}
}

// TestPeerGonePrunesLockQueue: a member departs while queued for (and
// then while owning) a lock; the home prunes it so the remaining member
// is granted the lock instead of deadlocking behind a waiter or owner
// that no longer exists.
func TestPeerGoneReleasesDepartedOwner(t *testing.T) {
	pair := meshPair(t)
	defer pair[0].Clu.Close()

	// Lock 2 homes on member 0. Member 1 acquires it (becoming owner
	// via its proxy) and then leaves without releasing.
	const lock = LockID(2)
	pair[1].Svc.Acquire(lock)
	pair[1].Clu.Close() // graceful: goodbye, not wire death

	// The home observes the departure and force-releases; member 0 must
	// then acquire without deadlock.
	done := make(chan struct{})
	go func() {
		pair[0].Svc.Acquire(lock)
		pair[0].Svc.Release(lock)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acquire after owner departed deadlocked: PeerGone did not release the lock")
	}
	if got := pair[0].Clu.Kernel(0).C.Get("dlock.gone_owner"); got != 1 {
		t.Fatalf("dlock.gone_owner = %d, want 1", got)
	}
}
